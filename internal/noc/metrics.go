package noc

import (
	"strconv"

	"github.com/disco-sim/disco/internal/metrics"
)

// DefaultSampleInterval is the metrics time-series sampling period
// (cycles) used when AttachMetrics is called with interval 0.
const DefaultSampleInterval = 256

// AttachMetrics registers the network's observability surface in reg
// under the "noc" scope — aggregate counters and latency accumulators,
// per-router/per-port/per-engine counters — and arms periodic
// time-series sampling every interval cycles (0 = DefaultSampleInterval).
//
// The registry observes the simulator's native counters through
// closures, so attaching metrics adds no per-cycle cost beyond the
// sampling tick; exports evaluate live state, so export after the run
// (or at any quiescent point).
func (n *Network) AttachMetrics(reg *metrics.Registry, interval uint64) {
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	n.mreg = reg
	n.minterval = interval
	reg.SetInterval(interval)

	s := reg.Scope("noc")
	s.CounterFunc("injected", func() uint64 { return n.stats.Injected })
	s.CounterFunc("ejected", func() uint64 { return n.stats.Ejected })
	s.CounterFunc("flit_hops", func() uint64 { return n.stats.FlitHops })
	s.CounterFunc("ejected_wrong_form", func() uint64 { return n.stats.EjectedWrongForm })
	s.CounterFunc("engine_cycles_on_packets", func() uint64 { return n.stats.PktEngineCycles })
	s.CounterFunc("engine_cycles_exposed", func() uint64 { return n.stats.PktEngineExposed })
	s.GaugeFunc("overlap_ratio", func() float64 { return n.stats.OverlapRatio() })
	// Engine aggregates fold over routers at snapshot time (see Stats).
	s.CounterFunc("compressions", func() uint64 { return n.Stats().Compressions })
	s.CounterFunc("decompressions", func() uint64 { return n.Stats().Decompressions })
	s.CounterFunc("engine_releases", func() uint64 { return n.Stats().EngineReleases })
	s.CounterFunc("engine_failures", func() uint64 { return n.Stats().EngineFailures })
	s.ObserveMean("packet_latency", &n.stats.PacketLatency)
	s.ObserveMean("data_latency", &n.stats.DataLatency)
	s.ObserveMean("queue_cycles", &n.stats.QueueCycles)
	s.ObserveMean("delay.queue", &n.stats.QueueDelay)
	s.ObserveMean("delay.engine", &n.stats.EngineDelay)
	s.ObserveMean("delay.serialization", &n.stats.SerialDelay)
	for class := ClassRequest; class <= ClassCoherence; class++ {
		c := class
		s.Scope("class", c.String()).CounterFunc("flit_hops",
			func() uint64 { return n.stats.FlitHopsByClass[c] })
	}

	for _, r := range n.Routers {
		r := r
		rs := s.Scope("router", strconv.Itoa(r.id))
		rs.CounterFunc("flits_switched", func() uint64 { return r.flitsSwitched })
		rs.CounterFunc("flits_ejected", func() uint64 { return r.flitsEjected })
		rs.GaugeFunc("buffered_flits", func() float64 { return float64(r.bufferedFlits()) })
		for p := Port(0); p < Local; p++ {
			p := p
			if n.cfg.neighbor(r.id, p) < 0 {
				continue
			}
			rs.Scope("port", p.String()).CounterFunc("link_flits",
				func() uint64 { return r.linkFlits[p] })
		}
		if r.engine != nil {
			es := rs.Scope("engine")
			es.CounterFunc("starts", func() uint64 { return r.engineStarts })
			es.CounterFunc("releases", func() uint64 { return r.engineReleases })
			es.CounterFunc("compressions", func() uint64 { return r.engine.Compressions })
			es.CounterFunc("decompressions", func() uint64 { return r.engine.Decompressions })
			es.CounterFunc("failures", func() uint64 { return r.engine.Failures })
			es.CounterFunc("busy_cycles", func() uint64 { return r.engine.BusyCycles })
		}
		if n.fault != nil {
			fs := rs.Scope("fault")
			fs.CounterFunc("engine_faults", func() uint64 { return r.faultEngineFaults })
			fs.CounterFunc("breaker_trips", func() uint64 { return r.breakerTrips })
			fs.GaugeFunc("breaker_open", func() float64 {
				if r.breakerOpen {
					return 1
				}
				return 0
			})
			fs.CounterFunc("payload_flips", func() uint64 { return r.faultPayloadFlips })
			fs.CounterFunc("credit_drops", func() uint64 { return r.faultCreditDrops })
			fs.CounterFunc("recoveries", func() uint64 { return r.faultRecoveries })
		}
	}

	if n.fault != nil {
		fs := s.Scope("fault")
		fs.CounterFunc("sink_recoveries", func() uint64 { return n.sinkRecoveries })
		fs.CounterFunc("credits_lost", func() uint64 { return n.creditsLost })
		fs.CounterFunc("credits_healed", func() uint64 { return n.creditsHealed })
		fs.GaugeFunc("credits_outstanding", func() float64 { return float64(len(n.creditRestores) - n.creditHead) })
	}

	// Time-series probes: the network-wide pulse over time.
	reg.AddSample("noc.injected", func() float64 { return float64(n.stats.Injected) })
	reg.AddSample("noc.ejected", func() float64 { return float64(n.stats.Ejected) })
	reg.AddSample("noc.flit_hops", func() float64 { return float64(n.stats.FlitHops) })
	reg.AddSample("noc.link_util_mean", func() float64 { _, mean := n.LinkUtilization(); return mean })
	reg.AddSample("noc.buffered_flits", func() float64 { return float64(n.bufferedFlits()) })
	reg.AddSample("noc.engines_busy", func() float64 { return float64(n.enginesBusy()) })
	reg.AddSample("noc.overlap_ratio", func() float64 { return n.stats.OverlapRatio() })
}

// sampleMetrics feeds the time-series sampler on the configured cycle
// grid; called from Step after the cycle counter advances.
func (n *Network) sampleMetrics() {
	if n.mreg == nil || n.Cycle%n.minterval != 0 {
		return
	}
	n.mreg.Sample(n.Cycle)
}

// bufferedFlits sums occupied buffer slots over the router's input VCs.
func (r *Router) bufferedFlits() int {
	occ := 0
	r.eachVC(func(_ Port, _ int, e *vcBuf) { occ += e.stored })
	return occ
}

// bufferedFlits sums occupied buffer slots over the whole fabric.
func (n *Network) bufferedFlits() int {
	occ := 0
	for _, r := range n.Routers {
		occ += r.bufferedFlits()
	}
	return occ
}

// enginesBusy counts routers whose DISCO engine has a job in flight.
func (n *Network) enginesBusy() int {
	busy := 0
	for _, r := range n.Routers {
		if r.engine != nil && r.engine.Busy() {
			busy++
		}
	}
	return busy
}
