package noc

// vcState tracks a virtual channel through the router pipeline.
type vcState int

const (
	vcFree   vcState = iota // no packet
	vcRoute                 // head arrived, awaiting route computation
	vcVA                    // routed, awaiting downstream VC allocation
	vcActive                // allocated, flits may traverse the switch
)

// lockState is the DISCO engine lock on a VC's packet.
type lockState int

const (
	lockNone lockState = iota
	// lockPending: the shadow packet is intact; a mis-predicted grant may
	// still release it (non-blocking compression, Section 3.2 step 3).
	lockPending
	// lockCommitted: the engine owns the payload; the packet must wait for
	// completion before it can be scheduled.
	lockCommitted
)

// vcBuf is one input virtual channel holding (at most) one packet.
//
// Flit accounting: `arrived` counts flits that have entered this router
// (head included); `ready` counts flits available to the switch (arrived
// flits, or flits streamed out of the DISCO engine after a transform);
// `sent` counts flits forwarded; `stored` counts buffer slots currently
// held; `reserved` counts flits in flight on the incoming link.
//
// These counters are conserved quantities: they feed occupancy(), which
// feeds the credit backpressure and the DISCO confidence-counter inputs
// (Eq. 1/Eq. 2 remote and local pressure). They must be mutated only
// through the accessor methods below, which maintain the coupled
// updates — the creditaccess analyzer in internal/lint enforces this.
type vcBuf struct {
	pkt      *Packet
	arrived  int
	ready    int
	sent     int
	stored   int
	reserved int
	state    vcState
	outPort  Port
	outVC    int

	// owner/bit tie the VC into its router's live-occupancy bitmask: bit
	// is set in owner.live exactly while the VC holds or expects a flit
	// (pkt != nil or reserved != 0). The compute stages iterate the mask
	// instead of scanning every VC. Both are wired once at construction
	// and survive reset; every pkt/reserved transition calls syncLive.
	// All such transitions happen in serial regions (the Step prologue,
	// the commit phases, NI injection), so the mask is never written
	// concurrently. owner is nil for detached buffers in unit tests.
	owner *Router
	bit   uint64

	lock     lockState
	absorbed int // payload flits handed to the engine

	// lostCredits counts credits lost to fault injection on the incoming
	// link: each one holds a buffer slot hostage (the upstream believes
	// it is occupied) until the link-level recovery restores it.
	lostCredits int

	// lostArb marks a VA/SA loss this cycle (DISCO candidate filter).
	lostArb bool
	// waitCycles accumulates cycles the packet spent buffered here while
	// unable to move (the queuing delay DISCO overlaps).
	waitCycles uint64
}

// reset clears the VC for reuse. In-flight flits keep their reservation
// and lost credits stay lost until their recovery lands.
func (v *vcBuf) reset() {
	*v = vcBuf{
		reserved: v.reserved, lostCredits: v.lostCredits,
		owner: v.owner, bit: v.bit,
	}
	v.syncLive()
}

// occupancy is the number of buffer slots this VC consumes now or next
// cycle; a lost credit occupies a slot from the upstream's point of view.
func (v *vcBuf) occupancy() int { return v.stored + v.reserved + v.lostCredits }

// syncLive updates the owning router's live mask to match the VC's
// pkt/reserved state. Called by every accessor that can flip it.
func (v *vcBuf) syncLive() {
	if v.owner == nil {
		return
	}
	if v.pkt != nil || v.reserved != 0 {
		v.owner.live |= v.bit
	} else {
		v.owner.live &^= v.bit
	}
}

// attachPacket anchors a newly arriving packet's head to this VC (link
// arrival prologue, NI fill).
func (v *vcBuf) attachPacket(p *Packet) {
	v.pkt = p
	v.state = vcRoute
	v.syncLive()
}

// syncReady keeps ready mirroring arrived flits while the engine does
// not own the payload (after a commit the engine streams flits out
// itself, so ready is frozen until the transform lands).
func (v *vcBuf) syncReady() {
	if v.lock != lockCommitted {
		v.ready = v.arrived
	}
}

// reserveSlot accounts one flit put in flight on the incoming link: the
// sender holds a credit for it until it lands.
func (v *vcBuf) reserveSlot() {
	v.reserved++
	v.syncLive()
}

// acceptFlit lands one link flit: the reservation converts into an
// occupied buffer slot and an arrived flit.
func (v *vcBuf) acceptFlit() {
	v.reserved--
	v.stored++
	v.arrived++
	v.syncReady()
	v.syncLive()
}

// acceptNIFlit lands one flit from the local network interface, which
// streams without link reservations.
func (v *vcBuf) acceptNIFlit() {
	v.arrived++
	v.stored++
	v.syncReady()
}

// forwardFlit accounts one flit traversing the switch out of this VC.
func (v *vcBuf) forwardFlit() {
	v.sent++
	if v.stored > 0 {
		v.stored--
	}
}

// beginShadowJob starts a DISCO engine job on this VC's packet with
// resident payload flits already absorbed; the shadow copy stays intact
// so a mis-predicted grant can still release it (Section 3.2 step 3).
func (v *vcBuf) beginShadowJob(resident int) {
	v.absorbed = resident
	v.lock = lockPending
}

// releaseShadow aborts a pending job because the packet won arbitration
// after all: the untouched shadow flits become schedulable again.
func (v *vcBuf) releaseShadow() {
	v.lock = lockNone
	v.absorbed = 0
	v.ready = v.arrived
}

// commitJob transitions a pending job to committed. For compression the
// shadow is dropped: the absorbed payload slots are freed (the head
// flit keeps anchoring the VC) — Section 3.2 step 3 / 3.3A.
func (v *vcBuf) commitJob(dropShadow bool) {
	v.lock = lockCommitted
	if dropShadow {
		v.stored -= v.absorbed
		if v.stored < 1 {
			v.stored = 1
		}
	}
}

// absorbPayload hands n freshly arrived payload flits to the engine:
// their buffer slots are freed, the head flit keeps the VC anchored.
func (v *vcBuf) absorbPayload(n int) {
	v.absorbed += n
	v.stored -= n
	if v.stored < 1 {
		v.stored = 1
	}
}

// restockCompressed installs the compressed form produced by the
// engine: the packet restarts with flits buffered flits, nothing sent.
func (v *vcBuf) restockCompressed(flits int) {
	v.arrived = flits
	v.ready = flits
	v.sent = 0
	v.stored = flits
	v.lock = lockNone
	v.absorbed = 0
}

// restockDecompressed installs the decompressed form: the engine
// streams the expansion, so stored slots are left unchanged.
func (v *vcBuf) restockDecompressed(flits int) {
	v.arrived = flits
	v.ready = flits
	v.sent = 0
	v.lock = lockNone
}

// dropCredit loses one credit of this VC to fault injection: the slot
// reads as occupied to the upstream until restoreCredit.
func (v *vcBuf) dropCredit() { v.lostCredits++ }

// restoreCredit returns one lost credit (link-level recovery).
func (v *vcBuf) restoreCredit() {
	if v.lostCredits > 0 {
		v.lostCredits--
	}
}

// abortJob ends an engine job without a transform (incompressible
// content or no flit win): the shadow flits become schedulable again.
func (v *vcBuf) abortJob() {
	v.ready = v.arrived
	v.lock = lockNone
	v.absorbed = 0
}
