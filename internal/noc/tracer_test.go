package noc

import (
	"errors"
	"strings"
	"testing"
)

func TestCountingTracerEventLifecycle(t *testing.T) {
	cfg := discoConfig()
	n := mustNet(t, cfg)
	tr := NewCountingTracer()
	n.SetTracer(tr)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if tr.Counts[EvInject] != id || tr.Counts[EvEject] != id {
		t.Errorf("inject/eject events %d/%d, want %d", tr.Counts[EvInject], tr.Counts[EvEject], id)
	}
	// Every packet is routed at least once per hop; at minimum id times.
	if tr.Counts[EvRoute] < id {
		t.Errorf("route events %d < packets %d", tr.Counts[EvRoute], id)
	}
	// Engine lifecycle consistency: starts = done + fail + release.
	starts := tr.Counts[EvEngineStart]
	ends := tr.Counts[EvEngineDone] + tr.Counts[EvEngineFail] + tr.Counts[EvEngineRelease]
	if starts == 0 {
		t.Fatal("no engine activity under congestion")
	}
	if starts != ends {
		t.Errorf("engine starts %d != completions %d (done=%d fail=%d rel=%d)",
			starts, ends, tr.Counts[EvEngineDone], tr.Counts[EvEngineFail], tr.Counts[EvEngineRelease])
	}
	// Commits never exceed starts.
	if tr.Counts[EvEngineCommit] > starts {
		t.Error("more commits than starts")
	}
}

func TestWriterTracerFormatsAndFilters(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb, Filter: func(kind string, _ *Packet) bool {
		return kind == EvEject
	}}
	cfg := DefaultConfig()
	n := mustNet(t, cfg)
	n.SetTracer(tr)
	n.Inject(NewControlPacket(1, 0, 3, ClassRequest))
	if !n.RunUntilQuiescent(1000) {
		t.Fatal("no drain")
	}
	out := sb.String()
	if !strings.Contains(out, "eject") || strings.Contains(out, "inject") {
		t.Errorf("filter not applied:\n%s", out)
	}
	if tr.Count != 1 {
		t.Errorf("Count = %d, want 1", tr.Count)
	}
	// Nil-packet events format without crashing.
	tr.Filter = nil
	tr.Event(5, 2, "custom", nil)
	if !strings.Contains(sb.String(), "custom") {
		t.Error("nil-packet event not formatted")
	}
}

func TestWriterTracerFilteredEventsNotCounted(t *testing.T) {
	// Count must tally only emitted events: a filtered event contributes
	// neither output bytes nor a Count increment, so Count stays an exact
	// record count for the file that was actually written.
	var sb strings.Builder
	tr := &WriterTracer{W: &sb, Filter: func(kind string, _ *Packet) bool {
		return kind == EvEject
	}}
	tr.Event(1, 0, EvInject, nil)
	tr.Event(2, 0, EvRoute, nil)
	if tr.Count != 0 {
		t.Fatalf("Count = %d after filtered events, want 0", tr.Count)
	}
	if sb.Len() != 0 {
		t.Fatalf("filtered events produced output: %q", sb.String())
	}
	tr.Event(3, 0, EvEject, nil)
	tr.Event(4, 0, EvInject, nil) // filtered again
	if tr.Count != 1 {
		t.Errorf("Count = %d, want 1 (only the eject passed the filter)", tr.Count)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != int(tr.Count) {
		t.Errorf("Count %d != %d written lines", tr.Count, lines)
	}
}

// failingWriter errors after limit bytes have been accepted.
type failingWriter struct {
	limit    int
	written  int
	closed   bool
	closeErr error
}

var errDiskFull = errors.New("disk full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		return 0, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func (f *failingWriter) Close() error {
	f.closed = true
	return f.closeErr
}

func TestWriterTracerLatchesFirstError(t *testing.T) {
	fw := &failingWriter{limit: 40} // room for one event line, not two
	tr := &WriterTracer{W: fw}
	tr.Event(1, 0, "first", nil)
	if tr.Err != nil {
		t.Fatalf("first event failed unexpectedly: %v", tr.Err)
	}
	tr.Event(2, 0, "second", nil)
	if !errors.Is(tr.Err, errDiskFull) {
		t.Fatalf("Err = %v, want errDiskFull", tr.Err)
	}
	// Once latched, further events are dropped and the error survives.
	count := tr.Count
	tr.Event(3, 0, "third", nil)
	if tr.Count != count {
		t.Error("event counted after the tracer latched an error")
	}
	if !errors.Is(tr.Err, errDiskFull) {
		t.Error("latched error was overwritten")
	}
}

func TestBufferedTracerEmptyTraceCloses(t *testing.T) {
	// Closing a tracer that never saw an event is valid: no output, no
	// error, underlying closer still closed.
	fw := &failingWriter{limit: 1 << 20}
	tr := NewBufferedTracer(fw)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close on empty trace: %v", err)
	}
	if fw.written != 0 {
		t.Errorf("empty trace wrote %d bytes", fw.written)
	}
	if !fw.closed {
		t.Error("underlying closer not closed")
	}
}

func TestBufferedTracerFlushesOnClose(t *testing.T) {
	fw := &failingWriter{limit: 1 << 20}
	tr := NewBufferedTracer(fw)
	tr.Event(7, 3, "route", nil)
	if fw.written != 0 {
		t.Fatal("event bypassed the buffer; buffering is not happening")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if fw.written == 0 {
		t.Error("Close did not flush the buffered event")
	}
}

func TestBufferedTracerSurfacesFlushError(t *testing.T) {
	fw := &failingWriter{limit: 0} // everything fails at flush time
	tr := NewBufferedTracer(fw)
	tr.Event(7, 3, "route", nil)
	if err := tr.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close = %v, want errDiskFull", err)
	}
	if !errors.Is(tr.Err, errDiskFull) {
		t.Error("flush error not latched in Err")
	}
	if !fw.closed {
		t.Error("writer left open after failed flush")
	}
}

func TestBufferedTracerSurfacesCloseError(t *testing.T) {
	fw := &failingWriter{limit: 1 << 20, closeErr: errors.New("close failed")}
	tr := NewBufferedTracer(fw)
	if err := tr.Close(); err == nil || err.Error() != "close failed" {
		t.Fatalf("Close = %v, want close failed", err)
	}
}

func TestBufferedTracerPlainWriter(t *testing.T) {
	// A writer without Close (e.g. strings.Builder) is flushed only.
	var sb strings.Builder
	tr := NewBufferedTracer(&sb)
	tr.Event(7, 3, "route", nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(sb.String(), "route") {
		t.Error("flushed output missing the event")
	}
}
