package noc

import (
	"strings"
	"testing"
)

func TestCountingTracerEventLifecycle(t *testing.T) {
	cfg := discoConfig()
	n := mustNet(t, cfg)
	tr := NewCountingTracer()
	n.SetTracer(tr)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if tr.Counts[EvInject] != id || tr.Counts[EvEject] != id {
		t.Errorf("inject/eject events %d/%d, want %d", tr.Counts[EvInject], tr.Counts[EvEject], id)
	}
	// Every packet is routed at least once per hop; at minimum id times.
	if tr.Counts[EvRoute] < id {
		t.Errorf("route events %d < packets %d", tr.Counts[EvRoute], id)
	}
	// Engine lifecycle consistency: starts = done + fail + release.
	starts := tr.Counts[EvEngineStart]
	ends := tr.Counts[EvEngineDone] + tr.Counts[EvEngineFail] + tr.Counts[EvEngineRelease]
	if starts == 0 {
		t.Fatal("no engine activity under congestion")
	}
	if starts != ends {
		t.Errorf("engine starts %d != completions %d (done=%d fail=%d rel=%d)",
			starts, ends, tr.Counts[EvEngineDone], tr.Counts[EvEngineFail], tr.Counts[EvEngineRelease])
	}
	// Commits never exceed starts.
	if tr.Counts[EvEngineCommit] > starts {
		t.Error("more commits than starts")
	}
}

func TestWriterTracerFormatsAndFilters(t *testing.T) {
	var sb strings.Builder
	tr := &WriterTracer{W: &sb, Filter: func(kind string, _ *Packet) bool {
		return kind == EvEject
	}}
	cfg := DefaultConfig()
	n := mustNet(t, cfg)
	n.SetTracer(tr)
	n.Inject(NewControlPacket(1, 0, 3, ClassRequest))
	if !n.RunUntilQuiescent(1000) {
		t.Fatal("no drain")
	}
	out := sb.String()
	if !strings.Contains(out, "eject") || strings.Contains(out, "inject") {
		t.Errorf("filter not applied:\n%s", out)
	}
	if tr.Count != 1 {
		t.Errorf("Count = %d, want 1", tr.Count)
	}
	// Nil-packet events format without crashing.
	tr.Filter = nil
	tr.Event(5, 2, "custom", nil)
	if !strings.Contains(sb.String(), "custom") {
		t.Error("nil-packet event not formatted")
	}
}
