package noc

import (
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
)

func TestParsePattern(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "hotspot", "bitcomp"} {
		if _, err := ParsePattern(name); err != nil {
			t.Errorf("ParsePattern(%q): %v", name, err)
		}
	}
	if _, err := ParsePattern("spiral"); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestTrafficPatternsDest(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	cfg := DefaultTraffic()
	cfg.Pattern = Transpose
	g := NewTrafficGen(n, cfg)
	if d := g.dest(1); d != 4 { // (1,0) -> (0,1) = node 4
		t.Errorf("transpose dest(1) = %d, want 4", d)
	}
	cfg.Pattern = BitComplement
	g = NewTrafficGen(n, cfg)
	if d := g.dest(0); d != 15 {
		t.Errorf("bitcomp dest(0) = %d, want 15", d)
	}
	cfg.Pattern = Hotspot
	cfg.HotNode = 5
	g = NewTrafficGen(n, cfg)
	hot := 0
	for i := 0; i < 1000; i++ {
		if g.dest(0) == 5 {
			hot++
		}
	}
	if hot < 400 {
		t.Errorf("hotspot share %d/1000 too low", hot)
	}
}

func TestTrafficGenDrains(t *testing.T) {
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	g := NewTrafficGen(n, DefaultTraffic())
	for i := 0; i < 3000; i++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(300000) {
		t.Fatal("network did not drain")
	}
	s := n.Stats()
	if s.Injected != g.Generated || s.Ejected != s.Injected {
		t.Errorf("conservation: gen=%d inj=%d ej=%d", g.Generated, s.Injected, s.Ejected)
	}
	if g.Generated == 0 {
		t.Error("no packets generated")
	}
}

func TestTrafficLatencyRisesWithLoad(t *testing.T) {
	lat := func(rate float64) float64 {
		n := mustNet(t, DefaultConfig())
		cfg := DefaultTraffic()
		cfg.InjectionRate = rate
		g := NewTrafficGen(n, cfg)
		for i := 0; i < 5000; i++ {
			g.Step()
			n.Step()
		}
		n.RunUntilQuiescent(500000)
		s := n.Stats()
		return s.PacketLatency.Mean()
	}
	low, high := lat(0.005), lat(0.06)
	if high <= low {
		t.Errorf("latency should rise with load: %.1f -> %.1f", low, high)
	}
}

func TestFlitHopsByClassResponseDominates(t *testing.T) {
	// Section 3.3C: response (data) packets carry 9 flits vs 1 for
	// control, so they dominate link bandwidth even at equal packet
	// counts.
	n := mustNet(t, DefaultConfig())
	cfg := DefaultTraffic()
	cfg.DataFraction = 0.5
	g := NewTrafficGen(n, cfg)
	for i := 0; i < 4000; i++ {
		g.Step()
		n.Step()
	}
	n.RunUntilQuiescent(200000)
	s := n.Stats()
	resp := s.FlitHopsByClass[ClassResponse]
	ctl := s.FlitHopsByClass[ClassRequest] + s.FlitHopsByClass[ClassCoherence]
	if resp <= 2*ctl {
		t.Errorf("response flits (%d) should dominate control flits (%d)", resp, ctl)
	}
	if resp+ctl != s.FlitHops {
		t.Errorf("class split (%d) does not sum to total (%d)", resp+ctl, s.FlitHops)
	}
}

func TestSweepCurveShape(t *testing.T) {
	cfg := DefaultSweep()
	cfg.Rates = []float64{0.005, 0.04}
	cfg.WarmCycles = 4000
	pts, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Saturated || pts[0].Saturated {
		t.Fatal("moderate loads should not saturate")
	}
	if pts[1].AvgLatency <= pts[0].AvgLatency {
		t.Errorf("latency should grow with load: %.1f -> %.1f", pts[0].AvgLatency, pts[1].AvgLatency)
	}
	if pts[0].Throughput <= 0 {
		t.Error("throughput missing")
	}
	s := FormatSweep(pts)
	if s == "" || !containsAll(s, "rate", "#") {
		t.Errorf("FormatSweep output malformed:\n%s", s)
	}
}

func TestSweepSaturationDetected(t *testing.T) {
	cfg := DefaultSweep()
	cfg.Traffic.Pattern = Hotspot
	cfg.Traffic.HotNode = 0
	cfg.Rates = []float64{0.3}
	cfg.WarmCycles = 6000
	cfg.DrainBudget = 8000 // deliberately tight
	pts, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Saturated {
		t.Error("extreme hotspot load should be flagged saturated")
	}
	if out := FormatSweep(pts); !containsAll(out, "SATURATED") {
		t.Error("saturated point not rendered")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
