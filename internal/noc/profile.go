package noc

import "github.com/disco-sim/disco/internal/obs"

// This file is the network's attachment point for the obs stage-level
// wall-clock profiler. The hooks obey two standing invariants:
//
//   - Purely observational: the profiler only ever RECEIVES timestamps;
//     no simulation decision reads them, so artifacts are byte-identical
//     with profiling on or off (the golden gates assert it).
//   - Alloc-free: every hook is a nil-guarded int64 stamp — Step's
//     hot-path no-allocation contract (discolint hotalloc) holds with
//     profiling armed or not.
//
// Wall-clock access itself lives behind obs.Clock: internal/obs is the
// one package the nodeterminism analyzer sanctions for time.Now, and
// sim-core never touches the time package directly.

// AttachProfiler arms stage-level profiling for subsequent Steps; nil
// disarms it. Size the profiler for the engine's worker count
// (obs.NewPhaseProfiler(n.Workers())) so compute lanes are attributed
// per pool worker — a profiler with fewer lanes still works, folding
// out-of-range workers into the driver lane.
func (n *Network) AttachProfiler(p *obs.PhaseProfiler) { n.prof = p }

// Profiler returns the attached profiler (nil when disarmed).
func (n *Network) Profiler() *obs.PhaseProfiler { return n.prof }

// profClock returns a wall-clock stamp when profiling is armed, else 0.
func (n *Network) profClock() int64 {
	if n.prof == nil {
		return 0
	}
	return obs.Clock()
}

// profMark attributes the span since start to ph on the driver lane and
// returns a fresh stamp for the next region; a no-op returning 0 when
// profiling is disarmed.
func (n *Network) profMark(ph obs.Phase, start int64) int64 {
	if n.prof == nil {
		return 0
	}
	n.prof.Observe(0, ph, start)
	return obs.Clock()
}
