package noc

import (
	"fmt"
	"strings"
)

// This file is the network's structured diagnostic surface, built for the
// cmp progress watchdog: when a run stops making forward progress the
// watchdog captures a Snapshot, attaches it to the *StallError, and dumps
// the in-flight packets to the tracer — so a wedged simulation produces a
// forensic picture instead of a bare timeout.

// VCSnapshot is the state of one occupied input virtual channel.
type VCSnapshot struct {
	Port        string `json:"port"`
	VC          int    `json:"vc"`
	PacketID    uint64 `json:"packet"`
	Src         int    `json:"src"`
	Dst         int    `json:"dst"`
	Class       string `json:"class"`
	State       string `json:"state"`
	Lock        string `json:"lock,omitempty"`
	OutPort     string `json:"out_port,omitempty"`
	Arrived     int    `json:"arrived"`
	Ready       int    `json:"ready"`
	Sent        int    `json:"sent"`
	Stored      int    `json:"stored"`
	Reserved    int    `json:"reserved,omitempty"`
	LostCredits int    `json:"lost_credits,omitempty"`
	FlitCount   int    `json:"flits"`
	WaitCycles  uint64 `json:"wait_cycles"`
}

// EngineSnapshot is the state of one busy DISCO engine.
type EngineSnapshot struct {
	JobKind    string `json:"job"`
	JobState   string `json:"state"`
	PacketID   uint64 `json:"packet"`
	Faulted    bool   `json:"faulted,omitempty"`
	BusyCycles uint64 `json:"busy_cycles"`
}

// RouterSnapshot is the state of one router that holds work. Routers that
// are completely idle are omitted from the Snapshot.
type RouterSnapshot struct {
	ID               int             `json:"id"`
	BreakerOpen      bool            `json:"breaker_open,omitempty"`
	BreakerOpenUntil uint64          `json:"breaker_open_until,omitempty"`
	Engine           *EngineSnapshot `json:"engine,omitempty"`
	VCs              []VCSnapshot    `json:"vcs,omitempty"`
}

// Snapshot is a structured picture of everything in flight: per-router VC
// occupancy and credits, engine and breaker state, link flits, and NI
// backlogs. It serializes to JSON and renders with String.
type Snapshot struct {
	Cycle       uint64           `json:"cycle"`
	Injected    uint64           `json:"injected"`
	Ejected     uint64           `json:"ejected"`
	LinkFlits   int              `json:"link_flits_in_flight"`
	NIBacklog   map[int]int      `json:"ni_backlog,omitempty"`
	Routers     []RouterSnapshot `json:"routers,omitempty"`
	Fault       *FaultStats      `json:"fault,omitempty"`
	PacketCount int              `json:"packets_in_network"`
}

func (s vcState) String() string {
	switch s {
	case vcFree:
		return "free"
	case vcRoute:
		return "route"
	case vcVA:
		return "va"
	case vcActive:
		return "active"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

func (l lockState) String() string {
	switch l {
	case lockNone:
		return ""
	case lockPending:
		return "pending"
	case lockCommitted:
		return "committed"
	}
	return fmt.Sprintf("lock(%d)", int(l))
}

// Snapshot captures the network's in-flight state for diagnostics. It is
// read-only and safe to take at any cycle boundary.
func (n *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		Cycle:     n.Cycle,
		Injected:  n.stats.Injected,
		Ejected:   n.stats.Ejected,
		LinkFlits: len(n.pending),
		Fault:     n.FaultStats(),
	}
	for node := range n.ni {
		if b := n.InjectQueueLen(node); b > 0 {
			if s.NIBacklog == nil {
				s.NIBacklog = make(map[int]int)
			}
			s.NIBacklog[node] = b
		}
	}
	seen := make(map[uint64]bool)
	for _, r := range n.Routers {
		rs := RouterSnapshot{
			ID:               r.id,
			BreakerOpen:      r.breakerOpen,
			BreakerOpenUntil: r.breakerOpenUntil,
		}
		if r.engine != nil && r.engine.Busy() {
			j := r.engine.Current()
			rs.Engine = &EngineSnapshot{
				JobKind:    j.Kind.String(),
				JobState:   j.State.String(),
				PacketID:   j.PacketID,
				Faulted:    j.Faulted,
				BusyCycles: r.engine.BusyCycles,
			}
		}
		r.eachVC(func(p Port, v int, e *vcBuf) {
			if e.pkt == nil && e.reserved == 0 && e.lostCredits == 0 {
				return
			}
			vs := VCSnapshot{
				Port:        p.String(),
				VC:          v,
				Arrived:     e.arrived,
				Ready:       e.ready,
				Sent:        e.sent,
				Stored:      e.stored,
				Reserved:    e.reserved,
				LostCredits: e.lostCredits,
				State:       e.state.String(),
				Lock:        e.lock.String(),
			}
			if e.pkt != nil {
				vs.PacketID = e.pkt.ID
				vs.Src = e.pkt.Src
				vs.Dst = e.pkt.Dst
				vs.Class = e.pkt.Class.String()
				vs.FlitCount = e.pkt.FlitCount
				vs.WaitCycles = e.waitCycles
				if e.state >= vcVA {
					vs.OutPort = e.outPort.String()
				}
				if !seen[e.pkt.ID] {
					seen[e.pkt.ID] = true
					s.PacketCount++
				}
			}
			rs.VCs = append(rs.VCs, vs)
		})
		if rs.Engine != nil || len(rs.VCs) > 0 || rs.BreakerOpen {
			s.Routers = append(s.Routers, rs)
		}
	}
	return s
}

// Summary is a one-line headline for logs.
func (s *Snapshot) Summary() string {
	return fmt.Sprintf("cycle %d: %d packet(s) in network, %d link flit(s) in flight, %d router(s) occupied, injected %d / ejected %d",
		s.Cycle, s.PacketCount, s.LinkFlits, len(s.Routers), s.Injected, s.Ejected)
}

// String renders the full diagnostic picture, one router per stanza.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network snapshot @ %s\n", s.Summary())
	if len(s.NIBacklog) > 0 {
		fmt.Fprintf(&b, "  NI backlog:")
		for node := 0; node < 4096; node++ { // deterministic order over map
			if q, ok := s.NIBacklog[node]; ok {
				fmt.Fprintf(&b, " n%d=%d", node, q)
			}
		}
		b.WriteByte('\n')
	}
	for _, r := range s.Routers {
		fmt.Fprintf(&b, "  router %d", r.ID)
		if r.BreakerOpen {
			fmt.Fprintf(&b, " [breaker OPEN until cycle %d]", r.BreakerOpenUntil)
		}
		b.WriteByte('\n')
		if r.Engine != nil {
			fmt.Fprintf(&b, "    engine: %s pkt=%d state=%s faulted=%v busy=%d\n",
				r.Engine.JobKind, r.Engine.PacketID, r.Engine.JobState,
				r.Engine.Faulted, r.Engine.BusyCycles)
		}
		for _, v := range r.VCs {
			fmt.Fprintf(&b, "    %s/vc%d:", v.Port, v.VC)
			if v.PacketID != 0 || v.Class != "" {
				fmt.Fprintf(&b, " pkt=%d %d->%d %s flits=%d", v.PacketID, v.Src, v.Dst, v.Class, v.FlitCount)
			}
			fmt.Fprintf(&b, " state=%s", v.State)
			if v.Lock != "" {
				fmt.Fprintf(&b, " lock=%s", v.Lock)
			}
			if v.OutPort != "" {
				fmt.Fprintf(&b, " out=%s", v.OutPort)
			}
			fmt.Fprintf(&b, " arr=%d rdy=%d sent=%d stored=%d", v.Arrived, v.Ready, v.Sent, v.Stored)
			if v.Reserved > 0 {
				fmt.Fprintf(&b, " resv=%d", v.Reserved)
			}
			if v.LostCredits > 0 {
				fmt.Fprintf(&b, " lost-credits=%d", v.LostCredits)
			}
			if v.WaitCycles > 0 {
				fmt.Fprintf(&b, " waited=%d", v.WaitCycles)
			}
			b.WriteByte('\n')
		}
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, "  fault: %s\n", s.Fault)
	}
	return b.String()
}

// DumpStall emits one EvStall trace event per distinct in-flight packet,
// so trace consumers (discotrace, lifetime tracking) see exactly which
// packets were wedged when the watchdog fired.
func (n *Network) DumpStall() {
	seen := make(map[uint64]bool)
	for _, r := range n.Routers {
		r.eachVC(func(_ Port, _ int, e *vcBuf) {
			if e.pkt == nil || seen[e.pkt.ID] {
				return
			}
			seen[e.pkt.ID] = true
			n.trace(r.id, EvStall, e.pkt)
		})
	}
}
