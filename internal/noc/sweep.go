package noc

import (
	"fmt"
	"strings"
)

// SweepPoint is one measurement of the classic latency-vs-offered-load
// curve (Dally & Towles-style network characterization).
type SweepPoint struct {
	// InjectionRate is the offered load (packets/node/cycle).
	InjectionRate float64
	// AvgLatency is the mean packet latency at that load (cycles).
	AvgLatency float64
	// Throughput is the accepted load (packets/node/cycle).
	Throughput float64
	// Saturated marks points where the network failed to drain in the
	// allotted time (offered load beyond saturation).
	Saturated bool
	// Compressions/Decompressions report DISCO engine activity.
	Compressions   uint64
	Decompressions uint64
}

// SweepConfig parameterizes a load sweep.
type SweepConfig struct {
	// Net is the network configuration (reconstructed per point).
	Net Config
	// Traffic is the load shape; InjectionRate is overridden per point.
	Traffic TrafficConfig
	// Rates are the offered loads to measure.
	Rates []float64
	// WarmCycles of traffic before the drain phase.
	WarmCycles int
	// DrainBudget bounds the drain phase (cycles); exceeding it marks the
	// point saturated.
	DrainBudget uint64
}

// DefaultSweep returns a standard uniform-traffic sweep on the Table 2
// network.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Net:         DefaultConfig(),
		Traffic:     DefaultTraffic(),
		Rates:       []float64{0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.1},
		WarmCycles:  10000,
		DrainBudget: 600000,
	}
}

// Sweep measures the latency-vs-load curve. Each point runs an
// independent deterministic simulation.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		net, err := New(cfg.Net)
		if err != nil {
			return nil, err
		}
		tc := cfg.Traffic
		tc.InjectionRate = rate
		gen := NewTrafficGen(net, tc)
		for i := 0; i < cfg.WarmCycles; i++ {
			gen.Step()
			net.Step()
		}
		drained := net.RunUntilQuiescent(cfg.DrainBudget)
		s := net.Stats()
		pt := SweepPoint{
			InjectionRate:  rate,
			AvgLatency:     s.PacketLatency.Mean(),
			Throughput:     float64(s.Ejected) / float64(net.Cycle) / float64(cfg.Net.Nodes()),
			Saturated:      !drained,
			Compressions:   s.Compressions,
			Decompressions: s.Decompressions,
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatSweep renders the curve as a table with an ASCII latency bar.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	maxLat := 1.0
	for _, p := range points {
		if !p.Saturated && p.AvgLatency > maxLat {
			maxLat = p.AvgLatency
		}
	}
	fmt.Fprintf(&b, "%-8s %-10s %-12s %s\n", "rate", "latency", "throughput", "")
	for _, p := range points {
		if p.Saturated {
			fmt.Fprintf(&b, "%-8.3f %-10s %-12.4f SATURATED\n", p.InjectionRate, "-", p.Throughput)
			continue
		}
		bar := strings.Repeat("#", int(p.AvgLatency/maxLat*40+0.5))
		fmt.Fprintf(&b, "%-8.3f %-10.1f %-12.4f %s\n", p.InjectionRate, p.AvgLatency, p.Throughput, bar)
	}
	return b.String()
}
