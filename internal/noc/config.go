package noc

import (
	"fmt"

	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/fault"
)

// Port identifies one router port. Local connects the router to its tile's
// network interface.
type Port int

// Router ports.
const (
	East Port = iota
	West
	North
	South
	Local
	NumPorts
)

// String implements fmt.Stringer.
func (p Port) String() string {
	switch p {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	}
	return "?"
}

// opposite returns the peer's port for a link leaving via p.
func (p Port) opposite() Port {
	switch p {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	panic("noc: Local port has no opposite")
}

// Routing selects the routing algorithm.
type Routing int

// Routing algorithms. All three are deadlock-free on a mesh.
const (
	// XY is dimension-ordered, X first (Table 2's configuration).
	XY Routing = iota
	// YX is dimension-ordered, Y first.
	YX
	// WestFirst is the turn-model adaptive algorithm: westbound hops are
	// taken first (deterministically); all other minimal directions are
	// chosen adaptively by downstream congestion.
	WestFirst
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	switch r {
	case XY:
		return "xy"
	case YX:
		return "yx"
	case WestFirst:
		return "west-first"
	}
	return fmt.Sprintf("routing(%d)", int(r))
}

// FlowControl selects the switching policy (Section 3.3A discusses the
// interaction of each with in-network compression).
type FlowControl int

// Flow-control policies.
const (
	// Wormhole forwards flits as they arrive; packets may spread over
	// multiple routers (Table 2's configuration). In-network compression
	// then needs DISCO's separate-flit support or deep buffers.
	Wormhole FlowControl = iota
	// VirtualCutThrough forwards like wormhole but only allocates a
	// downstream VC that can hold the whole packet, so a blocked packet
	// collects entirely in one router. Requires BufDepth >= packet size.
	VirtualCutThrough
	// StoreAndForward holds every packet until fully received before
	// forwarding. Requires BufDepth >= packet size.
	StoreAndForward
)

// String implements fmt.Stringer.
func (f FlowControl) String() string {
	switch f {
	case Wormhole:
		return "wormhole"
	case VirtualCutThrough:
		return "vct"
	case StoreAndForward:
		return "saf"
	}
	return fmt.Sprintf("flowcontrol(%d)", int(f))
}

// Config describes the network. Zero values are filled by Default().
type Config struct {
	// K is the mesh radix (K×K routers). Table 2 uses 4 and 8.
	K int
	// VCs is the number of virtual channels per input port (Table 2: 2).
	VCs int
	// BufDepth is the per-VC buffer depth in flits (Table 2: 8).
	BufDepth int
	// FlowControl is the switching policy (default Wormhole, as Table 2).
	FlowControl FlowControl
	// Routing selects the routing algorithm (Table 2 uses XY).
	Routing Routing
	// Disco enables DISCO in-router compression when non-nil.
	Disco *disco.Config
	// Fault arms deterministic fault injection when non-nil and at least
	// one class rate is nonzero (see internal/fault). A nil or silent
	// spec adds zero overhead and leaves every artifact byte-identical.
	Fault *fault.Spec
}

// DefaultConfig returns the Table 2 network: 4×4 mesh, 2 VCs, 8-flit
// buffers, no DISCO.
func DefaultConfig() Config {
	return Config{K: 4, VCs: 2, BufDepth: 8}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("noc: mesh radix K must be >= 2, got %d", c.K)
	}
	if c.VCs < 1 {
		return fmt.Errorf("noc: need at least one VC, got %d", c.VCs)
	}
	if int(NumPorts)*c.VCs > 64 {
		// The router's live-occupancy bitmask assigns every VC one bit of
		// a uint64 (see Router.live), which caps VCs at 12 per port.
		return fmt.Errorf("noc: at most %d VCs per port (live-mask width), got %d",
			64/int(NumPorts), c.VCs)
	}
	if c.BufDepth < 2 {
		return fmt.Errorf("noc: buffer depth must be >= 2, got %d", c.BufDepth)
	}
	if c.FlowControl != Wormhole && c.BufDepth < maxPacketFlits {
		// VCT and store-and-forward hold whole packets in one VC; checked
		// here (not at Inject time) so misconfiguration fails before the
		// run starts instead of panicking mid-simulation.
		return fmt.Errorf("noc: %v flow control requires BufDepth >= %d for whole data packets, got %d",
			c.FlowControl, maxPacketFlits, c.BufDepth)
	}
	if c.Disco != nil {
		if err := c.Disco.Validate(); err != nil {
			return err
		}
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns the node count K*K.
func (c *Config) Nodes() int { return c.K * c.K }

// XY returns node id's mesh coordinates.
func (c *Config) XY(id int) (x, y int) { return id % c.K, id / c.K }

// NodeAt returns the node id at mesh coordinates (x, y).
func (c *Config) NodeAt(x, y int) int { return y*c.K + x }

// Hops returns the Manhattan (XY-routed) hop distance between two nodes.
func (c *Config) Hops(a, b int) int {
	ax, ay := c.XY(a)
	bx, by := c.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

// routePort computes the dimension-ordered output port at node `here`
// for a packet destined to dst (X first by default, Y first with YX;
// Local when arrived). WestFirst adaptivity is resolved in the router,
// which has congestion visibility; this returns its deterministic
// fallback.
func (c *Config) routePort(here, dst int) Port {
	hx, hy := c.XY(here)
	dx, dy := c.XY(dst)
	if c.Routing == YX {
		switch {
		case dy > hy:
			return South
		case dy < hy:
			return North
		case dx > hx:
			return East
		case dx < hx:
			return West
		}
		return Local
	}
	switch {
	case dx > hx:
		return East
	case dx < hx:
		return West
	case dy > hy:
		return South
	case dy < hy:
		return North
	}
	return Local
}

// adaptivePorts lists the minimal productive ports WestFirst may choose
// among at `here` for dst. Empty means Local (arrived). When dst lies to
// the west the only legal choice is West (turn-model restriction).
func (c *Config) adaptivePorts(here, dst int) []Port {
	hx, hy := c.XY(here)
	dx, dy := c.XY(dst)
	if dx < hx {
		return []Port{West}
	}
	var out []Port
	if dx > hx {
		out = append(out, East)
	}
	if dy > hy {
		out = append(out, South)
	} else if dy < hy {
		out = append(out, North)
	}
	return out
}

// neighbor returns the node id adjacent to `here` through port p, or -1
// at the mesh edge.
func (c *Config) neighbor(here int, p Port) int {
	x, y := c.XY(here)
	switch p {
	case East:
		x++
	case West:
		x--
	case North:
		y--
	case South:
		y++
	default:
		return -1
	}
	if x < 0 || x >= c.K || y < 0 || y >= c.K {
		return -1
	}
	return c.NodeAt(x, y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
