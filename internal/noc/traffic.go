package noc

import (
	"fmt"
	"math/rand"

	"github.com/disco-sim/disco/internal/compress"
)

// Pattern is a synthetic traffic pattern for NoC-only studies
// (Booksim-style).
type Pattern int

// Traffic patterns.
const (
	// Uniform sends each packet to a uniformly random other node.
	Uniform Pattern = iota
	// Transpose sends (x,y) -> (y,x).
	Transpose
	// Hotspot sends a share of traffic to one hot node (an MC-like sink).
	Hotspot
	// BitComplement sends node i to N-1-i.
	BitComplement
)

// ParsePattern maps a name to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "transpose":
		return Transpose, nil
	case "hotspot":
		return Hotspot, nil
	case "bitcomp":
		return BitComplement, nil
	}
	return 0, fmt.Errorf("noc: unknown traffic pattern %q", s)
}

// TrafficConfig drives a synthetic open-loop load.
type TrafficConfig struct {
	// Pattern selects destinations.
	Pattern Pattern
	// InjectionRate is the per-node probability of generating a packet
	// each cycle.
	InjectionRate float64
	// DataFraction is the share of packets that carry a cache-block
	// payload (the rest are single-flit control packets).
	DataFraction float64
	// CompressibleFraction is the share of data payloads that compress
	// well under the delta scheme.
	CompressibleFraction float64
	// HotNode receives half the traffic under Hotspot.
	HotNode int
	// Seed makes the load deterministic.
	Seed int64
}

// DefaultTraffic returns a moderate mixed load.
func DefaultTraffic() TrafficConfig {
	return TrafficConfig{
		Pattern:              Uniform,
		InjectionRate:        0.02,
		DataFraction:         0.5,
		CompressibleFraction: 0.7,
		Seed:                 1,
	}
}

// TrafficGen injects synthetic packets into a network.
type TrafficGen struct {
	cfg    TrafficConfig
	net    *Network
	rng    *rand.Rand
	alg    compress.Algorithm
	nextID uint64
	// Generated counts injected packets.
	Generated uint64
}

// NewTrafficGen builds a generator bound to net. Core-bound data packets
// are injected in compressed form when their payload compresses (as LLC
// bank responses would be), so in-network decompression is exercised.
func NewTrafficGen(net *Network, cfg TrafficConfig) *TrafficGen {
	return &TrafficGen{
		cfg: cfg, net: net,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		alg: compress.NewDelta(),
	}
}

// dest picks a destination for src under the pattern.
func (g *TrafficGen) dest(src int) int {
	k := g.net.cfg.K
	n := g.net.cfg.Nodes()
	switch g.cfg.Pattern {
	case Transpose:
		x, y := g.net.cfg.XY(src)
		return g.net.cfg.NodeAt(y, x)
	case BitComplement:
		return n - 1 - src
	case Hotspot:
		if g.rng.Float64() < 0.5 {
			return g.cfg.HotNode
		}
	}
	_ = k
	for {
		d := g.rng.Intn(n)
		if d != src {
			return d
		}
	}
}

// payload synthesizes a block, compressible or not. The block comes
// from the network's arena and is fully overwritten either way, so a
// recycled block never leaks stale content.
func (g *TrafficGen) payload() []byte {
	b := g.net.takeBlock()
	if g.rng.Float64() < g.cfg.CompressibleFraction {
		base := g.rng.Uint64()
		for i := 0; i < 8; i++ {
			v := base + uint64(g.rng.Intn(200))
			for j := 0; j < 8; j++ {
				b[i*8+j] = byte(v >> uint(8*j))
			}
		}
	} else {
		_, _ = g.rng.Read(b) // documented to never fail
	}
	return b
}

// Step possibly injects one packet per node this cycle. Call before
// Network.Step.
func (g *TrafficGen) Step() {
	for src := 0; src < g.net.cfg.Nodes(); src++ {
		if g.rng.Float64() >= g.cfg.InjectionRate {
			continue
		}
		dst := g.dest(src)
		if dst == src {
			continue
		}
		g.nextID++
		g.Generated++
		if g.rng.Float64() < g.cfg.DataFraction {
			// Alternate bank-bound (wants compressed, injected raw like a
			// writeback) and core-bound (injected compressed like an LLC
			// response) payload directions.
			wantCompressed := g.nextID%2 == 0
			blk := g.payload()
			p := initDataPacket(g.net.takePacket(), g.nextID, src, dst, blk, wantCompressed)
			if !wantCompressed {
				if c := g.alg.Compress(blk); !c.Stored {
					p.ApplyCompression(c)
				}
			}
			g.net.Inject(p)
		} else {
			class := ClassRequest
			if g.nextID%3 == 0 {
				class = ClassCoherence
			}
			g.net.Inject(initControlPacket(g.net.takePacket(), g.nextID, src, dst, class))
		}
	}
}
