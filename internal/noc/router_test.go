package noc

import (
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
)

func TestDownstreamOccupancy(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	r0 := n.Routers[0]
	r1 := n.Routers[1]
	if got := r0.downstreamOccupancy(East); got != 0 {
		t.Fatalf("empty downstream occupancy = %d", got)
	}
	// Stuff two flits into router 1's West input.
	r1.in[West][0].stored = 2
	if got := r0.downstreamOccupancy(East); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
	r1.in[West][1].reserved = 3
	if got := r0.downstreamOccupancy(East); got != 5 {
		t.Errorf("occupancy with reservations = %d, want 5", got)
	}
	if got := r0.downstreamOccupancy(Local); got != 0 {
		t.Errorf("local port occupancy should be 0, got %d", got)
	}
}

func TestLocalContention(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	r := n.Routers[5]
	self := &r.in[West][0]
	other := &r.in[North][0]
	other.pkt = NewControlPacket(1, 0, 0, ClassRequest)
	other.state = vcActive
	other.outPort = East
	other.stored = 4
	other.syncLive() // direct pkt write above bypassed attachPacket
	if got := r.localContention(East, self); got != 4 {
		t.Errorf("localContention = %d, want 4", got)
	}
	if got := r.localContention(West, self); got != 0 {
		t.Errorf("other port contention = %d, want 0", got)
	}
	// Self is excluded.
	if got := r.localContention(East, other); got != 0 {
		t.Errorf("self-exclusion failed: %d", got)
	}
}

func TestPriorityRuleDemotesUncompressed(t *testing.T) {
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	r := n.Routers[0]
	ctrl := NewControlPacket(1, 0, 1, ClassRequest)
	dataRaw := NewDataPacket(2, 0, 1, compressibleBlock(1), true) // compressible, uncompressed
	dataCore := NewDataPacket(3, 0, 1, compressibleBlock(2), false)
	if r.priority(ctrl) != 2 {
		t.Error("control packets keep high priority")
	}
	if r.priority(dataRaw) != 1 {
		t.Error("compressible-uncompressed bank-bound packet should be demoted")
	}
	if r.priority(dataCore) != 2 {
		t.Error("core-bound raw packet keeps high priority (it is in wanted form)")
	}
	dataRaw.CompressionFailed = true
	if r.priority(dataRaw) != 2 {
		t.Error("failed-compression packet should regain high priority")
	}
	// Rule off: everything is equal.
	dc.LowPriorityRule = false
	dataRaw.CompressionFailed = false
	if r.priority(dataRaw) != 2 {
		t.Error("rule off should not demote")
	}
}

func TestBusyReportsEngine(t *testing.T) {
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	r := n.Routers[3]
	if r.busy() {
		t.Fatal("fresh router should be idle")
	}
	r.engine.StartDecompress(1, compress.Compressed{Stored: true, SizeBits: 512, Payload: make([]byte, 64)}, 0)
	if !r.busy() {
		t.Error("router with busy engine must not be skipped")
	}
}

func TestNonBlockingReleaseHappensUnderLightLoad(t *testing.T) {
	// A single compressible packet with a clear path: the arbitrator may
	// start a job right before the port frees; over many packets some
	// releases must occur and none may corrupt delivery.
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewSC2()) // slow engine: wide release window
	sc2 := dc.Algorithm.(*compress.SC2)
	blocks := make([][]byte, 64)
	for i := range blocks {
		blocks[i] = compressibleBlock(int64(i))
	}
	sc2.Train(blocks)
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	delivered := 0
	n.OnEject = func(_ int, p *Packet) { delivered++ }
	id := uint64(0)
	for wave := 0; wave < 40; wave++ {
		for src := 0; src < 16; src += 3 {
			if src == 6 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 6, blocks[int(id)%64], true))
		}
		n.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if uint64(delivered) != id {
		t.Fatalf("delivered %d of %d", delivered, id)
	}
	s := n.Stats()
	if s.EngineReleases == 0 {
		t.Log("note: no shadow releases occurred in this scenario (allowed but unusual)")
	}
}

func TestVCStateProgression(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	n.Inject(NewControlPacket(1, 0, 3, ClassRequest))
	n.Step() // injection: head lands in local VC, state=vcRoute
	e := &n.Routers[0].in[Local][0]
	if e.pkt == nil {
		t.Fatal("head not injected")
	}
	if e.state != vcRoute {
		t.Fatalf("state after injection = %d, want vcRoute", e.state)
	}
	n.Step() // RC ran at end of previous step? RC runs within Step; after this head is routed
	if e.state < vcVA {
		t.Fatalf("state after RC = %d, want >= vcVA", e.state)
	}
	if e.outPort != East {
		t.Errorf("routed to %v, want E", e.outPort)
	}
	n.Step()
	if e.state != vcActive && e.pkt != nil {
		t.Errorf("state after VA = %d, want vcActive", e.state)
	}
}

func TestAdaptiveDiscoRuns(t *testing.T) {
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	dc.Adaptive = true
	dc.AdaptiveGain = 1
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 1; src < 16; src++ {
			id++
			n.Inject(NewDataPacket(id, src, 0, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.Injected != s.Ejected {
		t.Error("adaptive mode broke conservation")
	}
	if s.Compressions == 0 {
		t.Error("adaptive mode should still compress under congestion")
	}
}

func TestBlockingEngineModeNeverReleases(t *testing.T) {
	// With NonBlocking off, shadow packets are not schedulable while the
	// engine holds them, so no releases can ever occur — and everything
	// still drains.
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	dc.NonBlocking = false
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 25; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("blocking mode did not drain")
	}
	s := n.Stats()
	if s.EngineReleases != 0 {
		t.Errorf("blocking mode released %d shadows", s.EngineReleases)
	}
	if s.Compressions == 0 {
		t.Error("blocking mode should still compress")
	}
	if s.Injected != s.Ejected {
		t.Error("conservation violated")
	}
}

func TestCompressCoreBoundOption(t *testing.T) {
	// With CompressCoreBound on, even core-bound (raw-wanted) payloads are
	// compression candidates; everything must still deliver intact.
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	dc.CompressCoreBound = true
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 25; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			// Core-bound: wants uncompressed at destination.
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), false))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.Injected != s.Ejected {
		t.Error("conservation violated")
	}
}
