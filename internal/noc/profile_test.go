package noc

import (
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/obs"
)

// runProfiledLoad is runGoldenLoad with a profiler attached (nil p runs
// unprofiled), returning the text trace for identity comparison.
func runProfiledLoad(t *testing.T, workers int, p *obs.PhaseProfiler) string {
	t.Helper()
	cfg := discoConfig()
	tc := DefaultTraffic()
	tc.Seed, tc.InjectionRate = 42, 0.06
	n := mustNet(t, cfg)
	defer n.Close()
	n.SetWorkers(workers)
	n.AttachProfiler(p)
	var sb strings.Builder
	n.SetTracer(&WriterTracer{W: &sb})
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 800; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	return sb.String()
}

// TestProfilerIsPurelyObservational is the engine-level half of the
// obs byte-identity gate: the same load traces identically with and
// without a profiler attached, serial and parallel.
func TestProfilerIsPurelyObservational(t *testing.T) {
	want := runProfiledLoad(t, 1, nil)
	for _, workers := range []int{1, 4} {
		p := obs.NewPhaseProfiler(workers)
		got := runProfiledLoad(t, workers, p)
		if got != want {
			diffTraces(t, "profiled", want, got)
		}
		if p.Steps() == 0 {
			t.Errorf("workers=%d: profiler counted no steps", workers)
		}
		for _, ph := range []obs.Phase{obs.PhaseEngine, obs.PhaseSA, obs.PhaseAlloc, obs.PhaseCommit, obs.PhaseOther} {
			if p.TotalNS(ph) <= 0 {
				t.Errorf("workers=%d: phase %s accumulated nothing", workers, ph)
			}
		}
		if workers > 1 && p.TotalNS(obs.PhaseBarrier) <= 0 {
			t.Errorf("workers=%d: no barrier time recorded on the parallel engine", workers)
		}
	}
}

// TestProfilerWorkerLanes pins the lane attribution contract: on the
// parallel engine the pool workers (lanes >= 1) record compute time of
// their own, not just the driver.
func TestProfilerWorkerLanes(t *testing.T) {
	const workers = 4
	p := obs.NewPhaseProfiler(workers)
	runProfiledLoad(t, workers, p)
	var laneCompute int64
	for lane := 1; lane < workers; lane++ {
		for _, ph := range []obs.Phase{obs.PhaseEngine, obs.PhaseSA, obs.PhaseAlloc} {
			laneCompute += p.PhaseNS(lane, ph)
		}
	}
	if laneCompute <= 0 {
		t.Error("pool worker lanes recorded no compute time")
	}
	if p.PhaseNS(0, obs.PhaseBarrier) <= 0 {
		t.Error("driver lane recorded no barrier wait")
	}
}
