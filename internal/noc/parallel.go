package noc

import (
	"sync"
	"sync/atomic"

	"github.com/disco-sim/disco/internal/obs"
)

// This file is the parallel half of the two-phase cycle engine (see
// DESIGN.md §9). Every pipeline stage is split into a COMPUTE part that
// reads only prior-cycle state and writes only router-local state (so
// routers can be processed in any order, including concurrently) and a
// COMMIT part that applies the staged effects serially in canonical
// router-index order. The serial engine and the parallel engine run the
// exact same code — the pool only changes which goroutine executes a
// router's compute — so artifacts are byte-identical at any worker count.

// workerPool shards a stage's per-router compute across a bounded set of
// goroutines. The pool follows internal/simrun's worker conventions:
// fixed goroutines parked on wake channels, an atomic cursor handing out
// indices, and the caller participating as one of the workers.
type workerPool struct {
	extra int // parked goroutines; total workers = extra + the caller
	wake  []chan struct{}
	wg    sync.WaitGroup

	// Per-run job state: written by the caller before the wake sends
	// (which publish it to the workers) and read-only during the run.
	// The stage's inputs are pool fields rather than a closure so a Step
	// allocates nothing per stage.
	routers []*Router
	busy    []bool
	fn      func(*Router)
	n       int
	cursor  atomic.Int64

	// Profiling inputs for the current run (nil prof = disarmed), set by
	// the caller with the rest of the job state: each worker attributes
	// its own work() span to (its lane, phase). Published to the workers
	// by the wake sends like every other job field.
	prof  *obs.PhaseProfiler
	phase obs.Phase
}

// newWorkerPool starts extra parked worker goroutines.
func newWorkerPool(extra int) *workerPool {
	p := &workerPool{extra: extra, wake: make([]chan struct{}, extra)}
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		// Worker i samples into profiler lane i+1 (lane 0 is the caller).
		lane := i + 1
		go func() {
			for range ch {
				if prof := p.prof; prof != nil {
					start := obs.Clock()
					p.work()
					prof.Observe(lane, p.phase, start)
				} else {
					p.work()
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// poolChunk is how many indices a worker claims per cursor bump. Router
// computes are short, so claiming one at a time would spend more on
// cache-line contention over the cursor than on the work; a modest chunk
// amortizes it while still balancing load across workers.
const poolChunk = 8

// run applies fn to every busy router, sharded across the workers, and
// returns once all calls completed (the commit barrier). With a profiler
// armed, the caller attributes its own share to (lane 0, phase) and the
// wait for the other workers to PhaseBarrier; the parked workers stamp
// their own lanes (see newWorkerPool).
func (p *workerPool) run(routers []*Router, busy []bool, fn func(*Router), prof *obs.PhaseProfiler, phase obs.Phase) {
	p.routers, p.busy, p.fn, p.n = routers, busy, fn, len(routers)
	p.prof, p.phase = prof, phase
	p.cursor.Store(0)
	p.wg.Add(p.extra)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	if prof == nil {
		p.work() // the calling goroutine is a worker too
		p.wg.Wait()
	} else {
		start := obs.Clock()
		p.work()
		wait := obs.Clock()
		prof.Observe(0, phase, start)
		p.wg.Wait()
		prof.Observe(0, obs.PhaseBarrier, wait)
	}
	p.routers, p.busy, p.fn, p.prof = nil, nil, nil, nil
}

// work drains chunks of indices until the cursor runs past the job size.
func (p *workerPool) work() {
	for {
		end := int(p.cursor.Add(poolChunk))
		start := end - poolChunk
		if start >= p.n {
			return
		}
		if end > p.n {
			end = p.n
		}
		for i := start; i < end; i++ {
			if p.busy[i] {
				p.fn(p.routers[i])
			}
		}
	}
}

// stop releases the parked goroutines. The pool must be idle.
func (p *workerPool) stop() {
	for _, ch := range p.wake {
		close(ch)
	}
}

// SetWorkers configures phase-1 compute parallelism for subsequent Steps:
// workers <= 1 runs compute inline (the serial engine), larger counts
// shard it across a pool of that many workers (the calling goroutine
// included). Results are byte-identical at any setting. A pool holds
// parked goroutines; call Close (or SetWorkers(1)) when done with a
// parallel network to release them.
func (n *Network) SetWorkers(workers int) {
	if n.pool != nil {
		if workers == n.pool.extra+1 {
			return
		}
		n.pool.stop()
		n.pool = nil
	}
	if workers > 1 {
		n.pool = newWorkerPool(workers - 1)
	}
}

// Workers reports the configured phase-1 worker count (1 = serial).
func (n *Network) Workers() int {
	if n.pool == nil {
		return 1
	}
	return n.pool.extra + 1
}

// Close releases the worker-pool goroutines (no-op on a serial network).
// The network remains usable afterwards on the serial engine.
func (n *Network) Close() { n.SetWorkers(1) }

// RunParallel is RunUntilQuiescent with the per-cycle compute phase
// sharded across workers; the commit phase stays serial in canonical
// router order, so traces, stats and metrics are byte-identical to a
// serial run. The previous worker setting is restored on return.
func (n *Network) RunParallel(workers int, maxCycles uint64) bool {
	prev := n.Workers()
	n.SetWorkers(workers)
	ok := n.RunUntilQuiescent(maxCycles)
	n.SetWorkers(prev)
	return ok
}

// AtCommitBoundary reports whether the network is between cycles: all
// staged effects of the previous Step are committed and no compute is in
// flight. Observers (stats, snapshots, the cmp progress watchdog) must
// only sample at commit boundaries — mid-step state is partially staged
// and, on the parallel engine, written concurrently.
func (n *Network) AtCommitBoundary() bool { return !n.stepping }

// runStage applies f to every busy router: inline in index order on the
// serial engine, sharded across the pool otherwise. f must follow the
// compute-phase contract — read prior-cycle state, write only
// router-local state (staged effects, own scratch, own VC/engine fields).
// ph names the stage for the profiler (ignored when disarmed).
func (n *Network) runStage(busy []bool, ph obs.Phase, f func(*Router)) {
	if n.pool == nil {
		start := n.profClock()
		for i, r := range n.Routers {
			if busy[i] {
				f(r)
			}
		}
		if n.prof != nil {
			n.prof.Observe(0, ph, start)
		}
		return
	}
	n.pool.run(n.Routers, busy, f, n.prof, ph)
}

// flushTraces replays the trace events staged by a parallel compute
// region in canonical order: routers by index, events in program order.
// On the serial engine compute-phase traces emit inline (Router.trace)
// and the buffers are always empty — see the trace comment for why the
// two renderings are byte-identical anyway.
func (n *Network) flushTraces(busy []bool) {
	if n.pool == nil {
		return
	}
	for i, r := range n.Routers {
		if !busy[i] {
			continue
		}
		for j := range r.traceBuf {
			st := &r.traceBuf[j]
			n.trace(r.id, st.kind, st.pkt)
			st.pkt = nil
		}
		r.traceBuf = r.traceBuf[:0]
	}
}

// stagedTrace is one trace event deferred to the next serial flush: the
// trace call both stamps the packet's Lifetime and feeds the tracer, and
// neither may run concurrently (packets can be visible to two routers).
type stagedTrace struct {
	kind string
	pkt  *Packet
}

// trace records an event from a compute phase: inline on the serial
// engine, staged for the canonical-order flush on the parallel one.
// The renderings match byte for byte because every compute-phase trace
// call sits AFTER its branch's packet mutations and nothing else in the
// stage may write the packet (stage exclusivity), so the packet state
// at the call already equals the end-of-stage state the flush sees.
// Commit phases call Network.trace directly (they already run in
// canonical order).
func (r *Router) trace(kind string, pkt *Packet) {
	if r.net.pool == nil {
		r.net.trace(r.id, kind, pkt)
		return
	}
	if pkt == nil && r.net.tracer == nil {
		return // nothing to stamp, nothing to emit
	}
	r.traceBuf = append(r.traceBuf, stagedTrace{kind: kind, pkt: pkt})
}
