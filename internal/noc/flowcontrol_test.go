package noc

import (
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
)

func TestFlowControlStrings(t *testing.T) {
	if Wormhole.String() != "wormhole" || VirtualCutThrough.String() != "vct" ||
		StoreAndForward.String() != "saf" || FlowControl(9).String() == "" {
		t.Error("FlowControl strings wrong")
	}
}

func TestSAFRequiresDeepBuffers(t *testing.T) {
	// SAF and VCT hold whole packets in one VC, so too-shallow buffers are
	// a configuration error caught by Validate before the run starts (they
	// used to panic at Inject time, mid-simulation).
	for _, fc := range []FlowControl{StoreAndForward, VirtualCutThrough} {
		cfg := DefaultConfig()
		cfg.FlowControl = fc
		if err := cfg.Validate(); err == nil {
			t.Errorf("%v with %d-deep buffers should fail validation (packets are %d flits)",
				fc, cfg.BufDepth, maxPacketFlits)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New should reject %v with shallow buffers", fc)
		}
		cfg.BufDepth = maxPacketFlits
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v with %d-deep buffers should validate: %v", fc, cfg.BufDepth, err)
		}
	}
}

func TestSAFSlowerThanWormhole(t *testing.T) {
	lat := func(fc FlowControl) uint64 {
		cfg := DefaultConfig()
		cfg.FlowControl = fc
		cfg.BufDepth = 12
		n := mustNet(t, cfg)
		var e uint64
		n.OnEject = func(_ int, p *Packet) { e = p.EjectCycle - p.InjectCycle }
		n.Inject(NewDataPacket(1, 0, 15, compressibleBlock(1), false))
		if !n.RunUntilQuiescent(5000) {
			t.Fatalf("%v did not drain", fc)
		}
		return e
	}
	wh, saf, vct := lat(Wormhole), lat(StoreAndForward), lat(VirtualCutThrough)
	// SAF pays full serialization per hop; wormhole/VCT pipeline it.
	if saf <= wh+20 {
		t.Errorf("SAF latency %d should far exceed wormhole %d on a 6-hop path", saf, wh)
	}
	// Unloaded VCT behaves like wormhole.
	if vct != wh {
		t.Errorf("unloaded VCT (%d) should match wormhole (%d)", vct, wh)
	}
}

func TestFlowControlConservation(t *testing.T) {
	for _, fc := range []FlowControl{VirtualCutThrough, StoreAndForward} {
		cfg := DefaultConfig()
		cfg.FlowControl = fc
		cfg.BufDepth = 12
		dc := disco.DefaultConfig(compress.NewDelta())
		cfg.Disco = &dc
		n := mustNet(t, cfg)
		id := uint64(0)
		for wave := 0; wave < 15; wave++ {
			for src := 0; src < 16; src++ {
				if src == 9 {
					continue
				}
				id++
				n.Inject(NewDataPacket(id, src, 9, compressibleBlock(int64(id)), true))
			}
			n.Step()
		}
		if !n.RunUntilQuiescent(400000) {
			t.Fatalf("%v: no drain", fc)
		}
		s := n.Stats()
		if s.Injected != s.Ejected {
			t.Errorf("%v: conservation violated", fc)
		}
	}
}

func TestVCTWholePacketCompressionWithoutSeparateFlit(t *testing.T) {
	// Section 3.3A: VCT keeps whole packets in one node, so compression
	// works even with SeparateFlit disabled (unlike wormhole+8-deep).
	cfg := DefaultConfig()
	cfg.FlowControl = VirtualCutThrough
	cfg.BufDepth = 12
	dc := disco.DefaultConfig(compress.NewDelta())
	dc.SeparateFlit = false
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 0; src < 16; src++ {
			if src == 9 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 9, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if c := n.Stats().Compressions; c == 0 {
		t.Error("VCT should enable whole-packet compression without separate-flit support")
	}
}
