package noc

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/fault"
)

// faultConfig returns a DISCO network config with the given fault spec.
func faultConfig(spec fault.Spec) Config {
	cfg := discoConfig()
	cfg.Fault = &spec
	return cfg
}

// injectMixedLoad injects waves of data packets in both conversion
// directions — compressed LLC responses heading to cores (decompress in
// flight) and uncompressed blocks heading to banks (compress in flight) —
// recording each packet's functional content by ID in origin. Install
// OnEject before calling: the load steps the network between waves, so
// ejections start before it returns.
func injectMixedLoad(t *testing.T, n *Network, waves int, origin map[uint64][]byte) {
	t.Helper()
	alg := compress.NewDelta()
	cfg := n.Config()
	nodes := cfg.Nodes()
	id := uint64(0)
	for wave := 0; wave < waves; wave++ {
		for src := 0; src < nodes; src++ {
			dst := (src + 5 + wave) % nodes
			if dst == src {
				continue
			}
			id++
			block := compressibleBlock(int64(id))
			origin[id] = block
			if src%2 == 0 {
				comp := alg.Compress(block)
				if comp.Stored {
					t.Fatalf("test block %d unexpectedly incompressible", id)
				}
				n.Inject(NewCompressedDataPacket(id, src, dst, block, comp, false))
			} else {
				n.Inject(NewDataPacket(id, src, dst, block, true))
			}
		}
		for i := 0; i < 3; i++ {
			n.Step()
		}
	}
}

// verifyDelivered asserts a delivered packet's functional content matches
// what was injected — in either wire form.
func verifyDelivered(t *testing.T, origin map[uint64][]byte, pkt *Packet) {
	t.Helper()
	want, ok := origin[pkt.ID]
	if !ok {
		t.Fatalf("packet %d delivered but never injected", pkt.ID)
	}
	if pkt.Compressed {
		got, err := compress.NewDelta().Decompress(pkt.Comp)
		if err != nil {
			t.Errorf("packet %d delivered with undecodable payload: %v", pkt.ID, err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Errorf("packet %d delivered corrupt compressed payload", pkt.ID)
		}
		return
	}
	if !bytes.Equal(pkt.Block, want) {
		t.Errorf("packet %d delivered corrupt block", pkt.ID)
	}
}

// TestEngineFaultRecovery arms a 100% engine fault rate: every DISCO job
// faults, holds the engine for the stuck window, then aborts. Every
// packet must still be delivered intact (the shadow packet continues in
// its pre-engine form) and the per-router circuit breakers must trip.
func TestEngineFaultRecovery(t *testing.T) {
	cfg := faultConfig(fault.Spec{Seed: 3, EngineRate: 1, EngineStuck: 8, BreakerK: 3, BreakerCooldown: 64})
	n := mustNet(t, cfg)
	origin := map[uint64][]byte{}
	delivered := 0
	n.OnEject = func(_ int, pkt *Packet) {
		if pkt.Class == ClassResponse {
			verifyDelivered(t, origin, pkt)
			delivered++
		}
	}
	injectMixedLoad(t, n, 10, origin)
	if !n.RunUntilQuiescent(100000) {
		t.Fatalf("network did not drain under engine faults:\n%s", n.Snapshot())
	}
	if delivered != len(origin) {
		t.Errorf("delivered %d of %d packets", delivered, len(origin))
	}
	fs := n.FaultStats()
	if fs == nil || fs.EngineFaults == 0 {
		t.Fatalf("expected injected engine faults, got %+v", fs)
	}
	if fs.BreakerTrips == 0 {
		t.Errorf("100%% fault rate with K=3 should trip breakers: %s", fs)
	}
	st := n.Stats()
	if st.Compressions != 0 || st.Decompressions != 0 {
		t.Errorf("every job faults; no transform should complete (comp=%d decomp=%d)",
			st.Compressions, st.Decompressions)
	}
}

// TestPayloadIntegrityUnderFlips is the end-to-end integrity property:
// under injected payload bit-flips every delivered cache block is
// byte-identical to the injected one — corruption is always caught (at an
// in-network decompression or at the sink) and recovered from the
// retained original, never silently delivered.
func TestPayloadIntegrityUnderFlips(t *testing.T) {
	cfg := faultConfig(fault.Spec{Seed: 11, PayloadRate: 0.1})
	n := mustNet(t, cfg)
	origin := map[uint64][]byte{}
	delivered := 0
	n.OnEject = func(_ int, pkt *Packet) {
		if pkt.Class == ClassResponse {
			verifyDelivered(t, origin, pkt)
			delivered++
		}
	}
	injectMixedLoad(t, n, 25, origin)
	if !n.RunUntilQuiescent(100000) {
		t.Fatalf("network did not drain under payload flips:\n%s", n.Snapshot())
	}
	if delivered != len(origin) {
		t.Errorf("delivered %d of %d packets", delivered, len(origin))
	}
	fs := n.FaultStats()
	if fs == nil || fs.PayloadFlips == 0 {
		t.Fatalf("load produced no payload flips (rate too low for this load?): %+v", fs)
	}
	if fs.EngineRecoveries+fs.SinkRecoveries == 0 {
		t.Errorf("flips injected but nothing recovered: %s", fs)
	}
	t.Logf("fault stats: %s", fs)
}

// TestCreditLossHeals drops link credits at a low rate and checks the
// network still drains, with every lost credit eventually restored by the
// link-level recovery.
func TestCreditLossHeals(t *testing.T) {
	cfg := faultConfig(fault.Spec{Seed: 5, CreditRate: 0.02, CreditRecovery: 64})
	n := mustNet(t, cfg)
	origin := map[uint64][]byte{}
	n.OnEject = func(_ int, pkt *Packet) {
		if pkt.Class == ClassResponse {
			verifyDelivered(t, origin, pkt)
		}
	}
	injectMixedLoad(t, n, 10, origin)
	if !n.RunUntilQuiescent(100000) {
		t.Fatalf("network did not drain under credit loss:\n%s", n.Snapshot())
	}
	fs := n.FaultStats()
	if fs == nil || fs.CreditsDropped == 0 {
		t.Fatalf("load dropped no credits: %+v", fs)
	}
	// Step past the last scheduled recovery: all credits must return.
	for i := uint64(0); i < cfg.Fault.CreditRecovery+1; i++ {
		n.Step()
	}
	fs = n.FaultStats()
	if fs.CreditsOutstanding != 0 || fs.CreditsRestored != fs.CreditsDropped {
		t.Errorf("credits not fully healed: %s", fs)
	}
}

// TestFaultDeterminism checks the injector is part of the deterministic
// state: identical fault specs and seeds give byte-identical traces and
// identical fault counters.
func TestFaultDeterminism(t *testing.T) {
	spec := fault.Spec{Seed: 9, EngineRate: 0.05, PayloadRate: 0.01, CreditRate: 0.01}
	run := func() (string, *FaultStats) {
		cfg := faultConfig(spec)
		n := mustNet(t, cfg)
		var sb bytes.Buffer
		n.SetTracer(&WriterTracer{W: &sb})
		origin := map[uint64][]byte{}
		n.OnEject = func(_ int, pkt *Packet) {
			if pkt.Class == ClassResponse {
				verifyDelivered(t, origin, pkt)
			}
		}
		injectMixedLoad(t, n, 8, origin)
		if !n.RunUntilQuiescent(100000) {
			t.Fatalf("network did not drain:\n%s", n.Snapshot())
		}
		return sb.String(), n.FaultStats()
	}
	tr1, fs1 := run()
	tr2, fs2 := run()
	if tr1 != tr2 {
		t.Error("same fault seed produced diverging traces")
	}
	if !reflect.DeepEqual(fs1, fs2) {
		t.Errorf("fault stats differ between identical runs:\n  %s\n  %s", fs1, fs2)
	}
	if fs1.EngineFaults == 0 && fs1.PayloadFlips == 0 && fs1.CreditsDropped == 0 {
		t.Error("fault run injected nothing; determinism check is vacuous")
	}
}

// TestFaultLayerZeroOverheadOff is the zero-overhead-off gate: with the
// fault layer compiled in but disabled — whether by a nil spec or an
// all-zero one — traces, stats, metrics and binary-trace artifacts must
// stay byte-identical to a fault-free configuration.
func TestFaultLayerZeroOverheadOff(t *testing.T) {
	silent := discoConfig()
	silent.Fault = &fault.Spec{} // armed struct, all rates zero => disabled
	baseTrace, baseStats := runSeededLoad(t, 42)
	offTrace, offStats := runSeededLoadCfg(t, silent, 42)
	if baseTrace != offTrace {
		t.Error("silent fault spec changed the event trace")
	}
	if !reflect.DeepEqual(baseStats, offStats) {
		t.Errorf("silent fault spec changed stats:\n  base: %+v\n  off:  %+v", baseStats, offStats)
	}
	mj1, sc1, bin1 := runInstrumentedLoad(t, 42)
	mj2, sc2, bin2 := runInstrumentedLoadCfg(t, silent, 42)
	if !bytes.Equal(mj1, mj2) {
		t.Error("silent fault spec changed metrics JSON")
	}
	if !bytes.Equal(sc1, sc2) {
		t.Error("silent fault spec changed time-series CSV")
	}
	if !bytes.Equal(bin1, bin2) {
		t.Error("silent fault spec changed the binary trace")
	}
	if n := mustNet(t, silent); n.FaultEnabled() || n.FaultStats() != nil {
		t.Error("silent spec must not arm the injector")
	}
}
