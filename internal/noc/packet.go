// Package noc is a cycle-accurate simulator of the paper's on-chip
// network (Table 2): a k×k mesh of 3-stage wormhole routers with XY
// routing, per-port virtual channels, credit-style backpressure and
// single-flit-per-port-per-cycle crossbars, optionally extended with the
// DISCO in-router de/compression machinery of Sections 3.1–3.3.
//
// The simulator models flits at packet granularity: each virtual channel
// holds at most one packet at a time (atomic VC allocation) and tracks how
// many of its flits have arrived, are buffered, and have been forwarded.
// This reproduces wormhole timing — serialization, head-of-line stalls,
// packets spread across multiple routers — without per-flit objects.
package noc

import (
	"encoding/binary"
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/fault"
)

// Class is the traffic class of a packet, mirroring the three packet
// types of a cache-coherent CMP (Section 3.3C).
type Class int

// Packet classes.
const (
	// ClassRequest carries a command to a bank/directory/MC (single flit).
	ClassRequest Class = iota
	// ClassResponse carries a cache-block payload.
	ClassResponse
	// ClassCoherence carries invalidations/acks (single flit).
	ClassCoherence
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassCoherence:
		return "coherence"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Packet is one NoC packet. Data packets carry their functional payload so
// in-network compression is real, not statistical.
type Packet struct {
	ID    uint64
	Src   int
	Dst   int
	Class Class

	// Compressible marks a data payload eligible for DISCO treatment.
	Compressible bool
	// Compressed is the packet's current wire form.
	Compressed bool
	// CompressionFailed latches an engine abort on incompressible content
	// so later routers do not retry.
	CompressionFailed bool
	// WantCompressedAtDst is the form the destination consumes: true for
	// NUCA banks (compressed LLC), false for cores and memory controllers.
	WantCompressedAtDst bool

	// Block is the uncompressed payload (BlockSize bytes) for data
	// packets; nil for control packets. It is retained while compressed so
	// the simulator can re-derive flit values.
	Block []byte
	// Comp is the compressed encoding; valid only while Compressed.
	Comp compress.Compressed
	// PayloadBytes is the current wire payload size.
	PayloadBytes int
	// FlitCount is head flit + payload flits in the current form.
	FlitCount int

	// Timing and bookkeeping.
	InjectCycle uint64
	EjectCycle  uint64
	Hops        int
	Conversions int    // in-network de/compressions applied to this packet
	Queueing    uint64 // cycles spent buffered while unable to move
	// Life records lifecycle stamps and engine-overlap accounting; see
	// Lifetime and (*Packet).Breakdown.
	Life Lifetime

	// Meta lets the protocol layer attach a transaction reference.
	Meta any

	// pooled marks a packet born from the network's arena (takePacket):
	// eject may reclaim it when nothing retains ejected packets. Packets
	// built by the exported constructors are never reclaimed.
	pooled bool
}

// flitsFor returns head + payload flits for a payload of n bytes.
func flitsFor(n int) int {
	if n == 0 {
		return 1
	}
	return 1 + (n+compress.FlitBytes-1)/compress.FlitBytes
}

// maxPacketFlits is the largest packet the simulator builds: a head flit
// plus an uncompressed cache block.
const maxPacketFlits = 1 + compress.BlockSize/compress.FlitBytes

// initControlPacket fills p as a single-flit request/coherence packet:
// an empty payload riding a lone head flit.
func initControlPacket(p *Packet, id uint64, src, dst int, class Class) *Packet {
	p.ID, p.Src, p.Dst, p.Class = id, src, dst, class
	p.PayloadBytes = 0
	p.FlitCount = flitsFor(0)
	return p
}

// initDataPacket fills p as an uncompressed response packet carrying
// block.
func initDataPacket(p *Packet, id uint64, src, dst int, block []byte, wantCompressed bool) *Packet {
	if len(block) != compress.BlockSize {
		panic(fmt.Sprintf("noc: data packet payload must be %d bytes", compress.BlockSize))
	}
	p.ID, p.Src, p.Dst, p.Class = id, src, dst, ClassResponse
	p.Compressible = true
	p.WantCompressedAtDst = wantCompressed
	p.Block = block
	p.PayloadBytes = compress.BlockSize
	p.FlitCount = flitsFor(compress.BlockSize)
	return p
}

// NewControlPacket builds a single-flit request/coherence packet.
func NewControlPacket(id uint64, src, dst int, class Class) *Packet {
	return initControlPacket(&Packet{}, id, src, dst, class)
}

// NewDataPacket builds an uncompressed response packet carrying block.
func NewDataPacket(id uint64, src, dst int, block []byte, wantCompressed bool) *Packet {
	return initDataPacket(&Packet{}, id, src, dst, block, wantCompressed)
}

// NewCompressedDataPacket builds a response packet already in compressed
// form (e.g. read from a compressed LLC bank).
func NewCompressedDataPacket(id uint64, src, dst int, block []byte, comp compress.Compressed, wantCompressed bool) *Packet {
	p := NewDataPacket(id, src, dst, block, wantCompressed)
	p.ApplyCompression(comp)
	return p
}

// ApplyCompression switches the packet to compressed form.
func (p *Packet) ApplyCompression(c compress.Compressed) {
	p.Compressed = true
	p.Comp = c
	p.PayloadBytes = c.SizeBytes()
	p.FlitCount = flitsFor(p.PayloadBytes)
}

// ApplyDecompression switches the packet back to raw form.
func (p *Packet) ApplyDecompression(block []byte) {
	p.Compressed = false
	p.Block = block
	p.Comp = compress.Compressed{}
	p.PayloadBytes = compress.BlockSize
	p.FlitCount = flitsFor(compress.BlockSize)
}

// corruptPayloadBit flips one bit of the compressed payload,
// copy-on-write: the original encoding slice is shared with the endpoint
// compression caches and with other packets carrying the same block, so
// it must never be mutated in place. The flit count is unchanged — a
// flipped bit corrupts content, not length.
func (p *Packet) corruptPayloadBit(bit int) {
	p.Comp.Payload = fault.FlipBit(p.Comp.Payload, bit)
}

// PayloadFlits returns the packet's current payload flit count.
func (p *Packet) PayloadFlits() int { return p.FlitCount - 1 }

// payloadFlitValues returns the packet's payload as 8-byte flit values in
// its UNCOMPRESSED form — these are what a DISCO compression engine
// absorbs. Only valid for data packets.
func (p *Packet) payloadFlitValues(from, n int) []uint64 {
	return p.payloadFlitValuesInto(make([]uint64, 0, n), from, n)
}

// payloadFlitValuesInto is payloadFlitValues appending into a caller
// scratch buffer: the cycle loop feeds the engine from a per-router
// array, so no per-absorb slice is allocated. The engine copies what it
// keeps (IncrementalDelta reads flit values; streaming mode appends
// bytes), so the scratch may be reused immediately.
func (p *Packet) payloadFlitValuesInto(buf []uint64, from, n int) []uint64 {
	for i := from; i < from+n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p.Block[i*compress.FlitBytes:]))
	}
	return buf
}

// InWantedForm reports whether the packet's current form matches what its
// destination consumes; a mismatched packet pays a residual conversion at
// ejection.
func (p *Packet) InWantedForm() bool {
	if !p.Compressible {
		return true
	}
	return p.Compressed == p.WantCompressedAtDst
}
