package noc

// Analytical latency model used to validate the simulator (and to reason
// about results without running it). Under zero load, a packet's latency
// decomposes as
//
//	T0 = Toverhead + H * Thop + (F-1)
//
// where H is the hop count, Thop the pipelined per-hop head latency
// (route + allocate + traverse, overlapped with the next router's work),
// Toverhead covers NI injection plus ejection, and F-1 is the
// serialization of the body flits behind the head. The tests in
// model_test.go assert the cycle-accurate simulator matches this formula
// exactly at zero load — a standard sanity anchor for NoC simulators.

// Latency-model constants of this router implementation.
const (
	// ModelHopCycles is the steady-state per-hop head latency of the
	// 3-stage pipeline (route/allocate/traverse, one new head per hop
	// every 3 cycles at zero load).
	ModelHopCycles = 3
	// ModelOverheadCycles covers NI injection plus the ejection router's
	// residual processing.
	ModelOverheadCycles = 3
)

// ZeroLoadLatency predicts the uncontended latency of a packet with
// flitCount flits over `hops` links (Manhattan distance between source
// and destination).
func ZeroLoadLatency(hops, flitCount int) uint64 {
	if hops == 0 {
		return 0 // NI loopback is immediate in this model
	}
	return uint64(ModelOverheadCycles + hops*ModelHopCycles + (flitCount - 1))
}

// ZeroLoadLatencyFor predicts the uncontended latency between two nodes
// of this network for a packet with flitCount flits.
func (n *Network) ZeroLoadLatencyFor(src, dst, flitCount int) uint64 {
	return ZeroLoadLatency(n.cfg.Hops(src, dst), flitCount)
}

// MeanZeroLoadLatency averages the prediction over all (src,dst) pairs
// under uniform traffic — the intercept of the latency-vs-load curve.
func (n *Network) MeanZeroLoadLatency(flitCount int) float64 {
	nodes := n.cfg.Nodes()
	var sum float64
	pairs := 0
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			sum += float64(n.ZeroLoadLatencyFor(s, d, flitCount))
			pairs++
		}
	}
	return sum / float64(pairs)
}
