package noc

import (
	"reflect"
	"strings"
	"testing"
)

// quickSweep is a reduced sweep that still exercises warm + drain.
func quickSweep() SweepConfig {
	cfg := DefaultSweep()
	cfg.Rates = []float64{0.01, 0.04}
	cfg.WarmCycles = 600
	cfg.DrainBudget = 200000
	return cfg
}

func TestSweepMeasuresEachRate(t *testing.T) {
	cfg := quickSweep()
	pts, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(pts) != len(cfg.Rates) {
		t.Fatalf("got %d points, want %d", len(pts), len(cfg.Rates))
	}
	for i, p := range pts {
		if p.InjectionRate != cfg.Rates[i] {
			t.Errorf("point %d rate %v, want %v", i, p.InjectionRate, cfg.Rates[i])
		}
		if p.Saturated {
			t.Errorf("rate %v saturated at light load", p.InjectionRate)
		}
		if p.AvgLatency <= 0 {
			t.Errorf("rate %v: non-positive latency %v", p.InjectionRate, p.AvgLatency)
		}
		// Accepted load can never exceed what was offered (plus nothing is
		// created in the network), and under a drained run it must be > 0.
		if p.Throughput <= 0 || p.Throughput > p.InjectionRate*1.05 {
			t.Errorf("rate %v: throughput %v out of (0, rate]", p.InjectionRate, p.Throughput)
		}
	}
	// More load => more contention: latency must not go down.
	if pts[1].AvgLatency < pts[0].AvgLatency {
		t.Errorf("latency fell with load: %v -> %v", pts[0].AvgLatency, pts[1].AvgLatency)
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := quickSweep()
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("Sweep#1: %v", err)
	}
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("Sweep#2: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config, different curves:\n%v\n%v", a, b)
	}
}

func TestSweepEngineActivityWithDisco(t *testing.T) {
	cfg := quickSweep()
	cfg.Net = discoConfig()
	cfg.Traffic.DataFraction = 1.0
	cfg.Rates = []float64{0.06}
	pts, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if pts[0].Compressions == 0 && pts[0].Decompressions == 0 {
		t.Error("DISCO sweep point shows no engine activity")
	}
}

func TestSweepRejectsBadConfig(t *testing.T) {
	cfg := quickSweep()
	cfg.Net.K = 0
	if _, err := Sweep(cfg); err == nil {
		t.Fatal("Sweep accepted an invalid network config")
	}
}

func TestFormatSweep(t *testing.T) {
	out := FormatSweep([]SweepPoint{
		{InjectionRate: 0.01, AvgLatency: 20, Throughput: 0.01},
		{InjectionRate: 0.5, Saturated: true, Throughput: 0.11},
	})
	if !strings.Contains(out, "SATURATED") {
		t.Errorf("saturated point not marked:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("latency bar missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + two points
		t.Errorf("got %d lines, want 3:\n%s", len(lines), out)
	}
}
