package noc

import (
	"bytes"
	"math/bits"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
)

// Router is one mesh router: a 3-stage pipeline (RC → VA/SA → ST+LT) with
// an optional DISCO engine + arbitrator.
type Router struct {
	id  int
	net *Network

	// vcs is the flat per-router VC storage, port-major (index p*VCs+v);
	// in[p] are per-port views into it. One contiguous array keeps the
	// whole input stage in a few cache lines and gives every VC a stable
	// bit position in the live mask.
	vcs      []vcBuf
	in       [NumPorts][]vcBuf
	outOwner [NumPorts][]*Packet // downstream VC allocation table
	vaRR     [NumPorts]int       // VA round-robin pointers (per output port)
	saRR     [NumPorts]int       // SA round-robin pointers (per output port)

	// live has bit p*VCs+v set exactly while in[p][v] holds or expects a
	// flit (pkt != nil or reserved != 0); vcBuf.syncLive maintains it from
	// the serial regions only. The compute stages iterate set bits in
	// ascending order — identical to the old port-major scan, so arbitration
	// order (and every artifact) is unchanged. Config.Validate caps
	// NumPorts*VCs at 64 bits.
	live uint64

	// neigh/oppIn cache the mesh wiring (wired once after construction):
	// the router behind each output port and its input VCs facing us.
	// They replace per-cycle Config.neighbor arithmetic on the hot paths.
	neigh [NumPorts]*Router
	oppIn [NumPorts][]vcBuf

	engine   *disco.Engine
	engineVC *vcBuf // VC whose packet the engine is processing

	// Stats.
	flitsSwitched  uint64
	flitsEjected   uint64
	engineStarts   uint64
	engineReleases uint64
	// linkFlits counts flits sent out of each port (link utilization).
	linkFlits [NumPorts]uint64

	// congestionEWMA tracks buffered-flit occupancy over capacity for
	// the adaptive-threshold extension (disco.Config.Adaptive).
	congestionEWMA float64

	// Fault injection state (all zero / dormant unless net.fault != nil).
	// The circuit breaker implements graceful degradation: after K
	// consecutive engine faults the arbitrator stops feeding this
	// router's engine (selective-compression bypass, Section 3.3C) and
	// re-arms once the cooldown elapses.
	breakerConsec     int
	breakerOpen       bool
	breakerOpenUntil  uint64
	breakerTrips      uint64
	faultEngineFaults uint64
	faultPayloadFlips uint64
	faultCreditDrops  uint64
	faultRecoveries   uint64 // corrupt payloads recovered at this engine

	// Per-cycle scratch buffers (avoid per-cycle allocation).
	vaReqs  [NumPorts][]*vcBuf
	saWants [NumPorts][]saWant
	arbVCs  []*vcBuf
	arbCand []disco.Candidate
	// flitScratch backs the flit-value slices fed to the engine (job
	// start, fragment absorb). The engine copies what it keeps, so the
	// array is reusable immediately.
	flitScratch [maxPacketFlits - 1]uint64

	// Staged effects of the two-phase engine (see DESIGN.md §9): the
	// compute phase of a stage records every effect that touches shared
	// state here; the commit phase applies them in canonical router
	// order. All are reused scratch, reset by their commit. On the serial
	// engine the stall bookkeeping commits in place instead (see
	// computeSA), so saStalls stays empty.
	traceBuf    []stagedTrace // compute-phase trace events (parallel only)
	saWinners   []*vcBuf      // SA winners, in output-port order
	saStalls    []saStall     // SA stall bookkeeping on shared Packet fields
	arbPick     *vcBuf        // DISCO arbitration pick (engine start at commit)
	arbPickCand disco.Candidate
}

// saWant is one switch-allocation request.
type saWant struct {
	e    *vcBuf
	ip   Port
	prio int
}

// saStall records one cycle of switch-allocation stall bookkeeping. A
// wormhole packet can be buffered in two routers at once, so these
// increments hit fields both routers can reach — they are staged during
// compute and applied at the serial commit.
type saStall struct {
	pkt         *Packet
	engineStall bool
}

// busy reports whether the router holds or expects any flit.
func (r *Router) busy() bool {
	return r.live != 0 || (r.engine != nil && r.engine.Busy())
}

// newRouter wires one router. The neighbor caches are filled by
// wireNeighbors once every router exists.
func newRouter(id int, net *Network) *Router {
	r := &Router{id: id, net: net}
	vcs := net.cfg.VCs
	r.vcs = make([]vcBuf, int(NumPorts)*vcs)
	for p := Port(0); p < NumPorts; p++ {
		r.in[p] = r.vcs[int(p)*vcs : (int(p)+1)*vcs]
		for v := 0; v < vcs; v++ {
			e := &r.in[p][v]
			e.owner = r
			e.bit = 1 << uint(int(p)*vcs+v)
		}
		r.outOwner[p] = make([]*Packet, vcs)
	}
	if net.cfg.Disco != nil {
		r.engine = disco.NewEngine(net.cfg.Disco.Algorithm)
		if net.fault != nil {
			if spec := net.fault.Spec(); spec.EngineRate > 0 {
				r.engine.SetFaultOracle(net.fault.EngineFault, spec.EngineStuck)
			}
		}
	}
	return r
}

// wireNeighbors resolves the mesh wiring into direct references; called
// by New after all routers are constructed.
func (r *Router) wireNeighbors() {
	for p := East; p < Local; p++ {
		nb := r.net.cfg.neighbor(r.id, p)
		if nb < 0 {
			continue
		}
		d := r.net.Routers[nb]
		r.neigh[p] = d
		r.oppIn[p] = d.in[p.opposite()]
	}
}

// eachVC iterates input VCs in deterministic order.
func (r *Router) eachVC(f func(p Port, v int, e *vcBuf)) {
	for p := Port(0); p < NumPorts; p++ {
		for v := range r.in[p] {
			f(p, v, &r.in[p][v])
		}
	}
}

// downstream returns the router behind output port p, or nil for Local /
// mesh edge.
func (r *Router) downstream(p Port) *Router { return r.neigh[p] }

// downstreamOccupancy sums occupied+reserved slots of the downstream input
// buffers behind port p — the credit_in-derived remote pressure of Fig. 3.
// oppIn[p] is nil (zero iterations) for Local and mesh-edge ports.
func (r *Router) downstreamOccupancy(p Port) int {
	down := r.oppIn[p]
	occ := 0
	for i := range down {
		occ += down[i].occupancy()
	}
	return occ
}

// localContention sums buffered flits of OTHER VCs heading for output port
// p — the credit_out-derived local pressure of Fig. 3. Only live VCs can
// hold buffered flits, so the scan walks the live mask.
func (r *Router) localContention(p Port, self *vcBuf) int {
	occ := 0
	for m := r.live; m != 0; m &= m - 1 {
		e := &r.vcs[bits.TrailingZeros64(m)]
		if e != self && e.pkt != nil && e.state >= vcVA && e.outPort == p {
			occ += e.stored
		}
	}
	return occ
}

// --- Pipeline stages -------------------------------------------------
//
// Each stage is split into a compute part (reads prior-cycle state,
// writes only router-local state — safe to run concurrently across
// routers) and, where the stage has shared effects, a commit part the
// network applies serially in router-index order. computeAlloc fuses
// VA, RC and the DISCO arbitration compute: within a router they run in
// the classic stage order, and none of them writes state another
// router's compute reads.

// computeAlloc runs the allocation-side computes for one router.
func (r *Router) computeAlloc() {
	r.computeVA()
	r.computeRC()
	r.computeArb()
}

// computeRC computes output ports for newly arrived heads.
func (r *Router) computeRC() {
	for m := r.live; m != 0; m &= m - 1 {
		e := &r.vcs[bits.TrailingZeros64(m)]
		if e.state != vcRoute {
			continue
		}
		e.outPort = r.routeFor(e.pkt.Dst)
		e.state = vcVA
		r.trace(EvRoute, e.pkt)
	}
}

// routeFor resolves the output port, applying WestFirst adaptivity (pick
// the least-congested legal minimal direction) when configured.
func (r *Router) routeFor(dst int) Port {
	cfg := &r.net.cfg
	if cfg.Routing != WestFirst {
		return cfg.routePort(r.id, dst)
	}
	cands := cfg.adaptivePorts(r.id, dst)
	switch len(cands) {
	case 0:
		return Local
	case 1:
		return cands[0]
	}
	best := cands[0]
	bestOcc := r.downstreamOccupancy(best)
	for _, p := range cands[1:] {
		if occ := r.downstreamOccupancy(p); occ < bestOcc {
			best, bestOcc = p, occ
		}
	}
	return best
}

// computeVA allocates downstream VCs: one grant per output port per
// cycle, round-robin among requesters, atomic (a downstream VC is
// granted only when completely free). The grant table (outOwner) is
// upstream-local and a downstream VC has exactly one owning upstream, so
// the whole stage is compute-safe: it reads remote pkt/reserved fields no
// concurrent compute writes.
func (r *Router) computeVA() {
	reqs := &r.vaReqs
	for p := Port(0); p < NumPorts; p++ {
		reqs[p] = reqs[p][:0]
	}
	for m := r.live; m != 0; m &= m - 1 {
		e := &r.vcs[bits.TrailingZeros64(m)]
		if e.state != vcVA {
			continue
		}
		if e.outPort == Local {
			// Ejection needs no downstream VC.
			e.outVC = -1
			e.state = vcActive
			continue
		}
		reqs[e.outPort] = append(reqs[e.outPort], e)
	}
	for p := Port(0); p < NumPorts; p++ {
		cand := reqs[p]
		if len(cand) == 0 {
			continue
		}
		down := r.oppIn[p]
		if down == nil {
			// Edge port: XY routing never requests it; defensive.
			continue
		}
		// Find a free downstream VC.
		free := -1
		for v := range r.outOwner[p] {
			if r.outOwner[p][v] == nil && down[v].pkt == nil && down[v].reserved == 0 {
				free = v
				break
			}
		}
		if free < 0 {
			for _, e := range cand {
				e.lostArb = true
			}
			continue
		}
		win := cand[r.vaRR[p]%len(cand)]
		r.vaRR[p]++
		win.outVC = free
		win.state = vcActive
		r.outOwner[p][free] = win.pkt
		r.trace(EvVAGrant, win.pkt)
		for _, e := range cand {
			if e != win {
				e.lostArb = true
			}
		}
	}
}

// schedulable reports whether VC e may request the switch this cycle.
func (r *Router) schedulable(e *vcBuf) bool {
	switch e.lock {
	case lockCommitted:
		return false
	case lockPending:
		cfg := r.net.cfg.Disco
		if cfg == nil || !cfg.NonBlocking {
			return false
		}
	}
	return r.schedulableIgnoringLock(e)
}

// schedulableIgnoringLock is schedulable without the engine-lock check:
// it reports whether e could request the switch if the DISCO engine did
// not hold its packet. A locked VC that passes this check is stalled
// SOLELY by the engine — the exposed (non-overlapped) part of the
// transform latency tracked in Lifetime.EngineStall.
func (r *Router) schedulableIgnoringLock(e *vcBuf) bool {
	if e.state != vcActive || e.sent >= e.ready {
		return false
	}
	if r.net.cfg.FlowControl == StoreAndForward && e.arrived < e.pkt.FlitCount {
		return false // the whole packet must be stored before forwarding
	}
	if e.outPort != Local {
		if r.oppIn[e.outPort][e.outVC].occupancy() >= r.net.cfg.BufDepth {
			return false // no credit
		}
	}
	return true
}

// priority implements the scheduling policy of Section 3.3B: control and
// compressed-response packets share the high priority; compressible but
// still-uncompressed packets are demoted when the rule is on.
func (r *Router) priority(p *Packet) int {
	cfg := r.net.cfg.Disco
	if cfg != nil && cfg.LowPriorityRule &&
		p.Compressible && !p.Compressed && !p.CompressionFailed && p.WantCompressedAtDst {
		return 1
	}
	return 2
}

// computeSA arbitrates the crossbar (one flit per input port and per
// output port) against prior-cycle credit state. Winners are staged (in
// output-port order) for commitSA to traverse. Stall bookkeeping lands on
// shared Packet fields: on the serial engine it commits in place (the
// counters are only read at ejection, and a packet this router stalls
// cannot eject elsewhere the same cycle — the head router must hold every
// flit before ejecting, so this router released the packet at least one
// cycle earlier); under the parallel engine, where two routers can reach
// the same packet concurrently, it is staged for commitSA. Round-robin
// pointers, wait counters and lostArb flags are router-local and advance
// in place.
func (r *Router) computeSA() {
	var inUsed [NumPorts]bool
	wants := &r.saWants
	for p := Port(0); p < NumPorts; p++ {
		wants[p] = wants[p][:0]
	}
	// Inline stall commits need more than a serial engine: tracers
	// snapshot pkt.Queueing/EngineStall into every record, and a wormhole
	// packet stalled here can be granted (and traced) at its head router
	// the same cycle — so with a tracer attached the stalls stay staged,
	// keeping the artifact byte-identical at every worker count. Without
	// a tracer the counters are only read at ejection, which can never
	// land in the same cycle as an upstream stall (the head router must
	// hold every flit to eject, so the upstream released the packet at
	// least a cycle earlier).
	inline := r.net.pool == nil && r.net.tracer == nil
	vcs := r.net.cfg.VCs
	for m := r.live; m != 0; m &= m - 1 {
		idx := bits.TrailingZeros64(m)
		e := &r.vcs[idx]
		if e.pkt == nil {
			continue
		}
		if r.schedulable(e) {
			ip := Port(idx / vcs)
			wants[e.outPort] = append(wants[e.outPort], saWant{e, ip, r.priority(e.pkt)})
		} else if e.state >= vcVA && e.stored > 0 {
			// Buffered but unable to move: queueing time DISCO can use.
			e.waitCycles++
			engineStall := e.lock != lockNone && r.schedulableIgnoringLock(e)
			if inline {
				e.pkt.Queueing++
				if engineStall {
					// The engine lock is the only blocker: this stall
					// cycle is exposed engine latency, not overlap.
					e.pkt.Life.EngineStall++
				}
			} else {
				r.saStalls = append(r.saStalls, saStall{pkt: e.pkt, engineStall: engineStall})
			}
			if e.state == vcActive && e.sent < e.ready && e.lock == lockNone {
				e.lostArb = true // blocked on credits: a contention loser too
			}
		}
	}
	for p := Port(0); p < NumPorts; p++ {
		cand := wants[p]
		if len(cand) == 0 {
			continue
		}
		// Highest priority first; round-robin among equals; skip used
		// input ports.
		best := -1
		n := len(cand)
		start := r.saRR[p] % n
		for off := 0; off < n; off++ {
			i := (start + off) % n
			if inUsed[cand[i].ip] {
				continue
			}
			if best == -1 || cand[i].prio > cand[best].prio {
				best = i
			}
		}
		if best == -1 {
			for _, w := range cand {
				w.e.lostArb = true
				w.e.waitCycles++
				if inline {
					w.e.pkt.Queueing++
				} else {
					r.saStalls = append(r.saStalls, saStall{pkt: w.e.pkt})
				}
			}
			continue
		}
		r.saRR[p]++
		for i, w := range cand {
			if i != best {
				w.e.lostArb = true
				w.e.waitCycles++
				if inline {
					w.e.pkt.Queueing++
				} else {
					r.saStalls = append(r.saStalls, saStall{pkt: w.e.pkt})
				}
			}
		}
		winner := cand[best]
		inUsed[winner.ip] = true
		r.saWinners = append(r.saWinners, winner.e)
	}
}

// commitSA applies this router's staged switch-allocation effects: the
// stall counters (parallel engine only — the serial engine committed
// them during computeSA), then the winner traversals (flit moves, credit
// reservations, ejections, fault draws) in output-port order. Called by
// the network serially in router-index order — a winner's credit check
// stays valid because its downstream VC has exactly one upstream owner,
// and that owner is this traversal.
func (r *Router) commitSA() {
	for i := range r.saStalls {
		st := &r.saStalls[i]
		st.pkt.Queueing++
		if st.engineStall {
			st.pkt.Life.EngineStall++
		}
		st.pkt = nil
	}
	r.saStalls = r.saStalls[:0]
	for i, e := range r.saWinners {
		r.traverse(e)
		r.saWinners[i] = nil
	}
	r.saWinners = r.saWinners[:0]
}

// traverse moves one flit of e's packet through the crossbar.
func (r *Router) traverse(e *vcBuf) {
	if e.lock == lockPending {
		// Mis-predicted stall: release the shadow packet (non-blocking
		// compression) and invalidate the engine job.
		r.engine.Release(e.pkt.ID)
		r.engineVC = nil
		e.releaseShadow()
		r.engineReleases++
		r.net.trace(r.id, EvEngineRelease, e.pkt)
	}
	pkt := e.pkt
	e.forwardFlit()
	if e.sent == 1 {
		r.net.trace(r.id, EvSAGrant, pkt)
	}
	r.flitsSwitched++
	if e.outPort == Local {
		r.flitsEjected++
		if e.sent == pkt.FlitCount {
			pkt.Hops++
			r.net.eject(r.id, pkt)
			e.reset()
		}
		return
	}
	d := r.neigh[e.outPort]
	ip := e.outPort.opposite()
	dst := &r.oppIn[e.outPort][e.outVC]
	if f := r.net.fault; f != nil {
		if e.sent == 1 && pkt.Compressed && len(pkt.Comp.Payload) > 0 && f.PayloadFlip() {
			// Bit-flip the compressed payload as its head flit enters the
			// link: every downstream consumer (engine or sink) sees the
			// corrupt encoding.
			pkt.corruptPayloadBit(f.BitIndex(len(pkt.Comp.Payload) * 8))
			r.faultPayloadFlips++
			r.net.trace(r.id, EvPayloadFlip, pkt)
		}
		if f.CreditLoss() {
			// Lose the credit for this flit's slot: the upstream keeps
			// seeing the slot occupied until link-level recovery returns
			// it (scheduleCreditRestore).
			dst.dropCredit()
			r.faultCreditDrops++
			r.net.trace(r.id, EvCreditDrop, pkt)
			r.net.scheduleCreditRestore(dst)
		}
	}
	dst.reserveSlot()
	r.net.pending = append(r.net.pending, arrival{
		router: d, port: ip, vc: e.outVC, pkt: pkt,
		head: e.sent == 1, tail: e.sent == pkt.FlitCount,
	})
	r.net.stats.FlitHops++
	r.net.stats.FlitHopsByClass[pkt.Class]++
	r.linkFlits[e.outPort]++
	if e.sent == pkt.FlitCount {
		pkt.Hops++
		r.outOwner[e.outPort][e.outVC] = nil
		e.reset()
	}
}

// --- DISCO stages ------------------------------------------------------

// computeEngine advances the router's DISCO engine: commits pending
// jobs, absorbs newly arrived fragments, applies finished transforms.
// Everything it touches is exclusive to this router — its engine, its
// VCs, and the engine job's packet (at most one engine holds a packet at
// a time) — so the whole stage is compute-safe; under the parallel
// engine its trace events are staged and flushed in canonical order. The shared fault oracle is NOT
// consulted here: engine faults are drawn at job start (commitArb), and
// Engine.Tick is oracle-free by construction.
func (r *Router) computeEngine() {
	if r.engine == nil {
		return
	}
	e := r.engineVC
	if e != nil && e.pkt != nil && r.engine.Busy() {
		// Engine service time attributed to the packet (overlap
		// accounting; the exposed subset is counted in stageSA).
		e.pkt.Life.EngineCycles++
	}
	done := r.engine.Tick(r.net.Cycle)
	if done != nil {
		r.engineVC = nil
		if e != nil && (e.pkt == nil || e.pkt.ID != done.PacketID) {
			e = nil // packet left via non-blocking release already
		}
		if done.Faulted {
			// Injected transient engine fault: the job held the engine
			// busy for its stuck window and then aborted. The shadow
			// packet is intact (same non-blocking mechanism as a
			// mis-predicted release) — and may already have escaped
			// through it — so recovery is simply dropping the job: the
			// packet continues in its pre-engine form. The fault is
			// counted either way; it wedged the engine regardless of
			// where the packet went. No CompressionFailed latch: the
			// fault is transient, not a property of the content.
			var pkt *Packet
			if e != nil {
				pkt = e.pkt
			}
			r.trace(EvEngineFault, pkt)
			r.noteEngineFault()
			if e != nil {
				e.abortJob()
			}
			return
		}
		if e == nil {
			return
		}
		switch {
		case done.State == disco.JobDone && done.Kind == disco.JobCompress:
			r.breakerConsec = 0
			res := done.Result()
			if newFlits := flitsFor(res.SizeBytes()); newFlits >= e.pkt.FlitCount ||
				newFlits > r.net.cfg.BufDepth {
				// No flit win, or the result would not fit the VC: treat
				// as incompressible.
				e.pkt.CompressionFailed = true
				e.abortJob()
				r.trace(EvEngineDone, e.pkt)
				return
			}
			e.pkt.ApplyCompression(res)
			e.pkt.Conversions++
			e.restockCompressed(e.pkt.FlitCount)
			r.trace(EvEngineDone, e.pkt)
		case done.State == disco.JobDone && done.Kind == disco.JobDecompress:
			r.breakerConsec = 0
			if r.net.fault != nil && !bytes.Equal(done.Block(), e.pkt.Block) {
				// The decode "succeeded" but produced the wrong bytes — an
				// injected bit-flip that stayed inside the code space.
				// Recover from the retained original.
				r.recoverCorrupt(e)
				return
			}
			e.pkt.ApplyDecompression(done.Block())
			e.pkt.Conversions++
			e.restockDecompressed(e.pkt.FlitCount)
			r.trace(EvEngineDone, e.pkt)
		case done.Kind == disco.JobDecompress && r.net.fault != nil:
			// Decode error (compress.ErrCorrupt) under fault injection: an
			// in-flight bit-flip was detected. Deliver the retained
			// uncompressed original instead of the corrupt encoding.
			r.recoverCorrupt(e)
		default: // aborted (incompressible content)
			e.pkt.CompressionFailed = true
			e.abortJob()
			r.trace(EvEngineFail, e.pkt)
		}
		return
	}
	if e == nil {
		return
	}
	job := r.engine.Current()
	if job == nil {
		return
	}
	// Commit transition: the shadow is dropped, absorbed payload slots are
	// freed (Section 3.2 step 3 / 3.3A separate compression).
	if job.State == disco.JobCommitted && e.lock == lockPending {
		e.commitJob(job.Kind == disco.JobCompress)
		r.trace(EvEngineCommit, e.pkt)
	}
	// Feed fragments that arrived since the last service.
	if job.Kind == disco.JobCompress && e.lock == lockCommitted {
		avail := e.arrived - 1 // payload flits here
		if n := avail - e.absorbed; n > 0 {
			r.engine.Absorb(e.pkt.payloadFlitValuesInto(r.flitScratch[:0], e.absorbed, n))
			e.absorbPayload(n)
		}
	}
}

// computeArb runs the DISCO arbitrator (Fig. 3): gather this cycle's
// VA/SA losers, score them with the confidence counter, and stage the
// best candidate. Candidate scoring (SelectCandidateAt, Thresholds,
// Confidence) is pure and the occupancy reads see only prior-cycle
// state, so the whole selection is compute-safe; the engine start is
// deferred to commitArb because it draws from the shared fault oracle.
// Every VC scan walks the live mask: lostArb and stored>0 both imply a
// resident packet, so idle VCs have nothing to contribute.
func (r *Router) computeArb() {
	cfg := r.net.cfg.Disco
	if cfg == nil {
		return
	}
	if r.breakerOpen {
		if r.net.Cycle < r.breakerOpenUntil {
			// Circuit breaker open: this router's engine is bypassed
			// (selective-compression fallback). Consume this cycle's
			// lostArb flags so they do not go stale.
			for m := r.live; m != 0; m &= m - 1 {
				r.vcs[bits.TrailingZeros64(m)].lostArb = false
			}
			return
		}
		r.breakerOpen = false
		r.breakerConsec = 0
		r.trace(EvBreakerArm, nil)
	}
	engineFree := !r.engine.Busy()
	r.arbVCs = r.arbVCs[:0]
	r.arbCand = r.arbCand[:0]
	for m := r.live; m != 0; m &= m - 1 {
		e := &r.vcs[bits.TrailingZeros64(m)]
		lost := e.lostArb
		e.lostArb = false
		if !engineFree || !lost || e.pkt == nil || e.sent > 0 || e.lock != lockNone || e.state < vcVA {
			continue
		}
		pkt := e.pkt
		if !pkt.Compressible || pkt.CompressionFailed {
			continue
		}
		if cfg.ResponseOnly && pkt.Class != ClassResponse {
			continue
		}
		fullyArrived := e.arrived == pkt.FlitCount
		var decompress bool
		switch {
		case pkt.Compressed && !pkt.WantCompressedAtDst && fullyArrived:
			decompress = true
		case !pkt.Compressed && (pkt.WantCompressedAtDst || cfg.CompressCoreBound):
			if !cfg.SeparateFlit && !fullyArrived {
				continue
			}
			if e.arrived < 2 {
				continue // need at least one payload flit to absorb
			}
		default:
			continue
		}
		r.arbVCs = append(r.arbVCs, e)
		r.arbCand = append(r.arbCand, disco.Candidate{
			RemoteOccupancy: r.downstreamOccupancy(e.outPort),
			LocalOccupancy:  r.localContention(e.outPort, e),
			HopsRemaining:   r.net.cfg.Hops(r.id, pkt.Dst),
			Decompress:      decompress,
		})
	}
	if cfg.Adaptive {
		occ := 0
		for m := r.live; m != 0; m &= m - 1 {
			occ += r.vcs[bits.TrailingZeros64(m)].stored
		}
		capacity := float64(int(NumPorts) * r.net.cfg.VCs * r.net.cfg.BufDepth)
		r.congestionEWMA = 0.95*r.congestionEWMA + 0.05*float64(occ)/capacity
	}
	if len(r.arbVCs) == 0 {
		return
	}
	ccth, cdth := cfg.Thresholds(r.congestionEWMA)
	pick := cfg.SelectCandidateAt(r.arbCand, ccth, cdth)
	if pick < 0 {
		return
	}
	r.arbPick = r.arbVCs[pick]
	r.arbPickCand = r.arbCand[pick]
}

// commitArb starts the engine on the candidate computeArb staged. This
// is the commit half of the arbitration stage: StartCompress /
// StartDecompress draw from the shared fault-injection PRNG, so job
// starts must happen serially in canonical router order.
func (r *Router) commitArb() {
	sel := r.arbPick
	if sel == nil {
		return
	}
	r.arbPick = nil
	pkt := sel.pkt
	if r.arbPickCand.Decompress {
		r.engine.StartDecompress(pkt.ID, pkt.Comp, r.net.Cycle)
		sel.beginShadowJob(0)
	} else {
		resident := sel.arrived - 1
		job := r.engine.StartCompress(pkt.ID, pkt.payloadFlitValuesInto(r.flitScratch[:0], 0, resident),
			compress.BlockSize/compress.FlitBytes, r.net.Cycle)
		job.SetBlock(pkt.Block)
		sel.beginShadowJob(resident)
	}
	r.engineVC = sel
	r.engineStarts++
	r.net.trace(r.id, EvEngineStart, pkt)
}

// noteEngineFault accounts one injected engine fault and advances the
// circuit breaker: after BreakerK consecutive faults the router stops
// feeding its engine until the cooldown elapses (graceful degradation
// to plain forwarding, mirroring the paper's selective-compression
// bypass of Section 3.3C).
func (r *Router) noteEngineFault() {
	r.faultEngineFaults++
	r.breakerConsec++
	spec := r.net.fault.Spec()
	if !r.breakerOpen && r.breakerConsec >= spec.BreakerK {
		r.breakerOpen = true
		r.breakerOpenUntil = r.net.Cycle + spec.BreakerCooldown
		r.breakerTrips++
		r.trace(EvBreakerTrip, nil)
	}
}

// recoverCorrupt handles a decompression whose input was hit by an
// injected bit-flip (decode error, or a decode that silently produced
// the wrong bytes): the packet's retained uncompressed original — the
// same shadow content the non-blocking release path relies on — is
// delivered instead, so corruption is never propagated.
func (r *Router) recoverCorrupt(e *vcBuf) {
	r.faultRecoveries++
	e.pkt.ApplyDecompression(e.pkt.Block)
	e.pkt.Conversions++
	e.restockDecompressed(e.pkt.FlitCount)
	r.trace(EvFaultRecover, e.pkt)
}

// Engine exposes the router's DISCO engine for diagnostics (nil when
// DISCO is disabled).
func (r *Router) Engine() *disco.Engine { return r.engine }
