package noc

import (
	"bufio"
	"fmt"
	"io"
)

// Tracer receives structured simulator events. Attach one with
// Network.SetTracer to debug routing, arbitration and DISCO engine
// decisions; the zero-overhead default is no tracer.
type Tracer interface {
	// Event is called with the cycle, the router (or -1 for NI-level
	// events), a short event kind, and the packet involved (may be nil).
	Event(cycle uint64, router int, kind string, pkt *Packet)
}

// Event kinds emitted by the simulator.
const (
	EvInject        = "inject"         // packet entered an NI queue
	EvEject         = "eject"          // packet fully delivered
	EvRoute         = "route"          // RC computed an output port
	EvVAGrant       = "va-grant"       // downstream VC allocated
	EvSAGrant       = "sa-grant"       // first flit crossed the switch
	EvEngineStart   = "engine-start"   // DISCO job started (pending)
	EvEngineCommit  = "engine-commit"  // shadow dropped, job committed
	EvEngineDone    = "engine-done"    // transform applied
	EvEngineRelease = "engine-release" // shadow released (mis-prediction)
	EvEngineFail    = "engine-fail"    // incompressible content

	// Fault-injection and resilience events (internal/fault; emitted only
	// when an injector is armed, so fault-free traces are unchanged).
	EvEngineFault  = "engine-fault"  // injected engine fault (stuck-busy abort)
	EvBreakerTrip  = "breaker-trip"  // engine circuit breaker opened (bypass)
	EvBreakerArm   = "breaker-rearm" // breaker cooldown elapsed; engine re-enabled
	EvPayloadFlip  = "payload-flip"  // injected bit-flip in a compressed payload
	EvFaultRecover = "fault-recover" // corrupt payload recovered via the original
	EvCreditDrop   = "credit-drop"   // injected credit loss on a link
	EvStall        = "stall"         // watchdog diagnostic (in-flight packet dump)
)

// SetTracer attaches t (nil detaches).
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// trace records the event in the packet's lifetime record and emits it
// if a tracer is attached.
func (n *Network) trace(router int, kind string, pkt *Packet) {
	if pkt != nil {
		pkt.Life.observe(kind, n.Cycle)
	}
	if n.tracer != nil {
		n.tracer.Event(n.Cycle, router, kind, pkt)
	}
}

// WriterTracer formats events one per line to an io.Writer.
type WriterTracer struct {
	W io.Writer
	// Filter, when non-nil, drops events for which it returns false.
	Filter func(kind string, pkt *Packet) bool
	// Count tallies emitted events.
	Count uint64
	// Err latches the first write error; once set, later events are
	// dropped (a truncated trace must not masquerade as a complete one).
	Err error
}

// Event implements Tracer.
func (t *WriterTracer) Event(cycle uint64, router int, kind string, pkt *Packet) {
	if t.Err != nil {
		return
	}
	if t.Filter != nil && !t.Filter(kind, pkt) {
		return
	}
	t.Count++
	if pkt == nil {
		_, t.Err = fmt.Fprintf(t.W, "%8d r%02d %-14s\n", cycle, router, kind)
		return
	}
	form := "raw"
	if pkt.Compressed {
		form = "comp"
	}
	_, t.Err = fmt.Fprintf(t.W, "%8d r%02d %-14s pkt=%d %d->%d %s %s flits=%d\n",
		cycle, router, kind, pkt.ID, pkt.Src, pkt.Dst, pkt.Class, form, pkt.FlitCount)
}

// BufferedTracer is a WriterTracer behind a bufio layer with a Close
// that flushes — the right tracer for writing large traces to files.
type BufferedTracer struct {
	WriterTracer
	bw     *bufio.Writer
	closer io.Closer
}

// NewBufferedTracer wraps w. When w is also an io.Closer (e.g. an
// *os.File), Close closes it after flushing.
func NewBufferedTracer(w io.Writer) *BufferedTracer {
	t := &BufferedTracer{bw: bufio.NewWriter(w)}
	t.W = t.bw
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// Close flushes buffered events and closes the underlying writer when
// it is a Closer. Closing an empty trace is valid and writes nothing.
// The first error (from tracing, flushing or closing) is returned and
// latched in Err.
func (t *BufferedTracer) Close() error {
	err := t.bw.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	if t.Err == nil {
		t.Err = err
	}
	return t.Err
}

// CountingTracer counts events by kind (cheap assertion helper).
type CountingTracer struct {
	Counts map[string]uint64
}

// NewCountingTracer returns an empty counter.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{Counts: make(map[string]uint64)}
}

// Event implements Tracer.
func (t *CountingTracer) Event(_ uint64, _ int, kind string, _ *Packet) {
	t.Counts[kind]++
}
