package noc

import "testing"

// measureZeroLoad runs one packet through an otherwise empty network.
func measureZeroLoad(t *testing.T, src, dst, flits int) uint64 {
	t.Helper()
	n := mustNet(t, DefaultConfig())
	var lat uint64
	n.OnEject = func(_ int, p *Packet) { lat = p.EjectCycle - p.InjectCycle }
	var p *Packet
	if flits == 1 {
		p = NewControlPacket(1, src, dst, ClassRequest)
	} else {
		p = NewDataPacket(1, src, dst, compressibleBlock(1), false)
	}
	n.Inject(p)
	if !n.RunUntilQuiescent(5000) {
		t.Fatal("no drain")
	}
	return lat
}

// The simulator must match the analytical zero-load model exactly: this
// pins the pipeline depth so an accidental change to stage ordering shows
// up as a test failure, not a silent calibration shift.
func TestZeroLoadModelMatchesSimulator(t *testing.T) {
	cases := []struct {
		src, dst, flits int
	}{
		{0, 1, 1},  // 1 hop control
		{0, 3, 1},  // 3 hops control
		{0, 15, 1}, // 6 hops control
		{0, 1, 9},  // 1 hop data
		{0, 15, 9}, // 6 hops data
		{5, 6, 9},
		{12, 3, 1},
	}
	cfg := DefaultConfig()
	for _, c := range cases {
		want := ZeroLoadLatency(cfg.Hops(c.src, c.dst), c.flits)
		got := measureZeroLoad(t, c.src, c.dst, c.flits)
		if got != want {
			t.Errorf("%d->%d (%d flits): simulated %d, model %d",
				c.src, c.dst, c.flits, got, want)
		}
	}
}

func TestZeroLoadLoopback(t *testing.T) {
	if ZeroLoadLatency(0, 9) != 0 {
		t.Error("loopback should be 0")
	}
}

func TestMeanZeroLoadLatency(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	m := n.MeanZeroLoadLatency(1)
	// 4x4 mesh mean hops = 8/3; mean latency between the 1-hop (9) and
	// 6-hop (29) extremes.
	lo := float64(ZeroLoadLatency(1, 1))
	hi := float64(ZeroLoadLatency(6, 1))
	if m <= lo || m >= hi {
		t.Errorf("mean %f outside (%f, %f)", m, lo, hi)
	}
}

// Under load the simulator can only be slower than the zero-load model —
// a cheap lower-bound property over random pairs.
func TestModelIsLowerBoundUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	n := mustNet(t, cfg)
	viol := 0
	n.OnEject = func(_ int, p *Packet) {
		lat := p.EjectCycle - p.InjectCycle
		bound := ZeroLoadLatency(cfg.Hops(p.Src, p.Dst), p.FlitCount)
		// NI queueing (several packets per node) makes even the first
		// packets wait; the bound applies to network time, so allow the
		// injection-queue slack of the packets queued ahead.
		if lat+5 < bound {
			viol++
		}
	}
	g := NewTrafficGen(n, DefaultTraffic())
	for i := 0; i < 4000; i++ {
		g.Step()
		n.Step()
	}
	n.RunUntilQuiescent(200000)
	if viol > 0 {
		t.Errorf("%d packets beat the zero-load bound", viol)
	}
}
