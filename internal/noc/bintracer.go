package noc

import (
	"bufio"
	"io"

	"github.com/disco-sim/disco/internal/tracefmt"
)

// BinaryTracer writes events in the compact binary trace format of
// internal/tracefmt — the right tracer for long runs, where text traces
// grow unbounded. Eject records carry the packet's final latency
// breakdown counters, so cmd/discotrace can reconstruct per-packet
// queue/serialization/engine components and the overlap ratio offline.
//
// Like WriterTracer it latches the first write error and drops later
// events: a truncated trace must not masquerade as a complete one.
type BinaryTracer struct {
	w      *bufio.Writer
	closer io.Closer
	buf    []byte

	// Count tallies emitted records.
	Count uint64
	// Err latches the first write error.
	Err error
}

// NewBinaryTracer wraps w and writes the format header for a network of
// nodes nodes (use net.Config().Nodes(); 0 when unknown). When w is
// also an io.Closer (e.g. an *os.File), Close closes it after flushing.
func NewBinaryTracer(w io.Writer, nodes int) *BinaryTracer {
	t := &BinaryTracer{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	_, t.Err = t.w.Write(tracefmt.AppendHeader(nil, nodes))
	return t
}

// Event implements Tracer.
func (t *BinaryTracer) Event(cycle uint64, router int, kind string, pkt *Packet) {
	if t.Err != nil {
		return
	}
	code := tracefmt.KindFromString(kind)
	if code == tracefmt.KindInvalid {
		return // unknown event kinds are not representable; skip
	}
	rec := tracefmt.Record{Cycle: cycle, Router: router, Kind: code}
	if pkt != nil {
		rec.HasPacket = true
		var flags uint8
		if pkt.Compressed {
			flags |= tracefmt.PFCompressed
		}
		if pkt.Compressible {
			flags |= tracefmt.PFCompressible
		}
		if pkt.CompressionFailed {
			flags |= tracefmt.PFFailed
		}
		if pkt.WantCompressedAtDst {
			flags |= tracefmt.PFWantComp
		}
		rec.Pkt = tracefmt.PacketInfo{
			ID:           pkt.ID,
			Src:          pkt.Src,
			Dst:          pkt.Dst,
			Class:        uint8(pkt.Class),
			Flags:        flags,
			Flits:        pkt.FlitCount,
			Hops:         pkt.Hops,
			Conversions:  pkt.Conversions,
			Queueing:     pkt.Queueing,
			EngineCycles: pkt.Life.EngineCycles,
			EngineStall:  pkt.Life.EngineStall,
		}
	}
	t.buf = tracefmt.AppendRecord(t.buf[:0], &rec)
	if _, err := t.w.Write(t.buf); err != nil {
		t.Err = err
		return
	}
	t.Count++
}

// Close flushes buffered records and closes the underlying writer when
// it is a Closer. The first error (tracing, flushing or closing) is
// returned and latched in Err.
func (t *BinaryTracer) Close() error {
	err := t.w.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	if t.Err == nil {
		t.Err = err
	}
	return t.Err
}
