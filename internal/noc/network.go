package noc

import (
	"bytes"
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/obs"
	"github.com/disco-sim/disco/internal/stats"
)

// arrival is a flit in flight on a link, applied at the start of the next
// cycle (1-cycle link traversal).
type arrival struct {
	router *Router
	port   Port
	vc     int
	pkt    *Packet
	head   bool
	tail   bool
}

// niState is a node's injection side: a FIFO of packets plus per-VC
// streaming state. The NI fills every free local input VC (so backlogged
// packets are visible to the router — and to the DISCO engine) but feeds
// at most one flit per cycle over the NI link, round-robin across the
// active streams.
type niState struct {
	// queue is an index-fronted FIFO: qhead marks the first waiting
	// packet, and a drained queue resets to [:0] so the backing array is
	// reused. Popping by reslicing instead would shrink append's spare
	// capacity with every pop and force a reallocation every few pushes.
	queue    []*Packet
	qhead    int
	stream   []*Packet // per local VC: packet being streamed, nil if idle
	streamed []int     // flits already streamed into the VC
	active   int       // non-nil entries of stream (injection fast path)
	rr       int       // round-robin pointer over VCs
}

// qlen is the number of waiting packets.
func (ni *niState) qlen() int { return len(ni.queue) - ni.qhead }

// qpop removes and returns the oldest waiting packet.
func (ni *niState) qpop() *Packet {
	p := ni.queue[ni.qhead]
	ni.queue[ni.qhead] = nil
	ni.qhead++
	if ni.qhead == len(ni.queue) {
		ni.queue = ni.queue[:0]
		ni.qhead = 0
	}
	return p
}

// setStream opens a stream on VC v; clearStream closes it. All stream
// slot writes go through these so active stays exact — stepInjection
// skips a node entirely when it has no queue and no open stream.
func (ni *niState) setStream(v int, p *Packet) {
	ni.stream[v] = p
	ni.streamed[v] = 0
	ni.active++
}

func (ni *niState) clearStream(v int) {
	ni.stream[v] = nil
	ni.active--
}

// Stats aggregates network-level counters.
type Stats struct {
	Injected uint64
	Ejected  uint64
	// FlitHops counts flit-link traversals between routers (energy model
	// input); ejections and injections are counted separately.
	FlitHops      uint64
	FlitsSwitched uint64 // crossbar traversals (incl. ejection)
	// FlitHopsByClass splits FlitHops by traffic class (request/response/
	// coherence) — the Section 3.3C observation that response payloads
	// dominate bandwidth, which justifies compressing only them.
	FlitHopsByClass [3]uint64
	// PacketLatency tracks inject→eject latency of ejected packets.
	PacketLatency stats.Mean
	// DataLatency tracks the same for response packets only.
	DataLatency stats.Mean
	// QueueCycles tracks per-packet accumulated stall cycles.
	QueueCycles stats.Mean
	// QueueDelay/EngineDelay/SerialDelay are the per-packet latency
	// breakdown components of ejected packets (see LatencyBreakdown).
	QueueDelay  stats.Mean
	EngineDelay stats.Mean
	SerialDelay stats.Mean
	// PktEngineCycles sums engine service time over ejected packets;
	// PktEngineExposed is the subset that surfaced as stall cycles. The
	// difference is the engine latency hidden under queuing — see
	// Stats.OverlapRatio.
	PktEngineCycles  uint64
	PktEngineExposed uint64
	// Engine statistics summed over routers.
	Compressions   uint64
	Decompressions uint64
	EngineReleases uint64
	EngineFailures uint64
	EngineBusy     uint64
	// EjectedWrongForm counts data packets that reached their destination
	// in the wrong form and need a residual conversion at the NI.
	EjectedWrongForm uint64
}

// OverlapRatio reports the fraction of DISCO engine service time (over
// ejected packets) that was hidden under stall cycles the packet would
// have paid anyway — the paper's Section 3.2 overlap claim as a single
// number. 0 when no packet was engine-processed.
func (s *Stats) OverlapRatio() float64 {
	if s.PktEngineCycles == 0 {
		return 0
	}
	return float64(s.PktEngineCycles-s.PktEngineExposed) / float64(s.PktEngineCycles)
}

// Network is the mesh simulator. Create with New, drive with Step.
type Network struct {
	cfg     Config
	Routers []*Router
	Cycle   uint64

	ni          []niState
	pending     []arrival
	busyScratch []bool
	stats       Stats

	// Packet/block arenas: ejected pool-born packets (and their payload
	// blocks) are recycled at the NI instead of feeding the garbage
	// collector. Fixed-capacity, index-managed (push/pop by pktFree /
	// blkFree, never append) so Step stays allocation-free. Recycling is
	// disabled whenever anyone can retain a packet past ejection — an
	// OnEject observer, a tracer, or the fault layer (see eject).
	pktPool []*Packet
	pktFree int
	blkPool [][]byte
	blkFree int

	// Two-phase engine state (see parallel.go / DESIGN.md §9): pool
	// shards compute phases across workers (nil = serial engine);
	// stepping is true while a Step is applying staged effects, so
	// observers can refuse to sample mid-cycle state.
	pool     *workerPool
	stepping bool

	// OnEject is called when a packet fully leaves the network at node.
	// The NI-level residual de/compression latency is the receiver's
	// concern (see internal/cmp); the network only reports the event.
	OnEject func(node int, pkt *Packet)

	tracer Tracer

	// Fault injection (nil unless cfg.Fault arms at least one class).
	fault          *fault.Injector
	creditRestores []creditRestore
	// creditHead indexes the first undelivered entry of creditRestores;
	// popping by index (instead of reslicing the front away) lets the
	// drained queue reset to [:0] and reuse its backing array.
	creditHead     int
	sinkRecoveries uint64
	creditsLost    uint64
	creditsHealed  uint64
	decoders       map[string]compress.Algorithm // sink-verification decoders

	// Metrics attachment (see AttachMetrics).
	mreg      *metrics.Registry
	minterval uint64

	// Stage-level wall-clock profiler (see profile.go); nil unless
	// AttachProfiler armed it. Purely observational by contract.
	prof *obs.PhaseProfiler
}

// creditRestore schedules the return of one fault-dropped credit. The
// recovery delay is a constant, so the queue is naturally ordered by at.
type creditRestore struct {
	at uint64
	vc *vcBuf
}

// New builds a network from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Everything the cycle loop touches is sized here, once: Step and the
	// stages it drives must not allocate (enforced by discolint hotalloc).
	n := &Network{
		cfg:         cfg,
		ni:          make([]niState, cfg.Nodes()),
		busyScratch: make([]bool, cfg.Nodes()),
		decoders:    make(map[string]compress.Algorithm),
	}
	for i := range n.ni {
		n.ni[i].stream = make([]*Packet, cfg.VCs)
		n.ni[i].streamed = make([]int, cfg.VCs)
	}
	if cfg.Fault.Enabled() {
		n.fault = fault.NewInjector(*cfg.Fault)
		if cfg.Disco != nil {
			// Sink verification must decode with the live instance:
			// statistical compressors (SC², FVC) need their trained
			// tables, which a fresh constructor would lack.
			n.RegisterDecoder(cfg.Disco.Algorithm)
		}
	}
	n.Routers = make([]*Router, cfg.Nodes())
	for i := range n.Routers {
		n.Routers[i] = newRouter(i, n)
	}
	for _, r := range n.Routers {
		r.wireNeighbors()
	}
	// Arena capacity: in-flight packets are bounded by buffer space, but
	// NI backlogs near saturation push the live population well past it;
	// 16 per node covers a loaded mesh, and overflow simply allocates as
	// before (the arena is an optimization, never a limit).
	poolCap := 16 * cfg.Nodes()
	n.pktPool = make([]*Packet, poolCap)
	n.blkPool = make([][]byte, poolCap)
	return n, nil
}

// takePacket pops a recycled packet, or allocates one when the arena is
// empty. Pool-born packets are marked pooled so eject knows it may
// reclaim them.
func (n *Network) takePacket() *Packet {
	if n.pktFree == 0 {
		return &Packet{pooled: true}
	}
	n.pktFree--
	p := n.pktPool[n.pktFree]
	n.pktPool[n.pktFree] = nil
	return p
}

// takeBlock pops a recycled payload block, or allocates a fresh one.
func (n *Network) takeBlock() []byte {
	if n.blkFree == 0 {
		return make([]byte, compress.BlockSize)
	}
	n.blkFree--
	b := n.blkPool[n.blkFree]
	n.blkPool[n.blkFree] = nil
	return b
}

// recyclePacket returns a fully ejected pool-born packet (and its block)
// to the arenas. Only called from eject, and only when nothing can
// retain the packet (no observer, no tracer, no fault layer).
func (n *Network) recyclePacket(p *Packet) {
	if b := p.Block; len(b) == compress.BlockSize && n.blkFree < len(n.blkPool) {
		n.blkPool[n.blkFree] = b
		n.blkFree++
	}
	*p = Packet{pooled: true}
	if n.pktFree < len(n.pktPool) {
		n.pktPool[n.pktFree] = p
		n.pktFree++
	}
}

// FaultEnabled reports whether a fault injector is armed.
func (n *Network) FaultEnabled() bool { return n.fault != nil }

// RegisterDecoder makes alg available to the fault layer's sink
// integrity check. Callers that inject pre-compressed payloads encoded
// by a stateful (trained) compressor should register that instance.
func (n *Network) RegisterDecoder(alg compress.Algorithm) {
	if alg == nil {
		return
	}
	if n.decoders == nil {
		n.decoders = make(map[string]compress.Algorithm)
	}
	n.decoders[alg.Name()] = alg
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Inject queues a packet for injection at its source node's NI.
func (n *Network) Inject(p *Packet) {
	if p.Src < 0 || p.Src >= n.cfg.Nodes() || p.Dst < 0 || p.Dst >= n.cfg.Nodes() {
		// A protocol bug, not a configuration error: geometry limits are
		// rejected by Config.Validate before the network exists.
		panic(fmt.Sprintf("noc: inject with bad src/dst %d->%d", p.Src, p.Dst))
	}
	if p.Src == p.Dst {
		// Local delivery bypasses the network (NI loopback).
		p.InjectCycle = n.Cycle
		n.stats.Injected++
		n.eject(p.Dst, p)
		return
	}
	p.InjectCycle = n.Cycle
	n.stats.Injected++
	n.trace(p.Src, EvInject, p)
	n.ni[p.Src].queue = append(n.ni[p.Src].queue, p)
}

// InjectQueueLen returns the backlog at node's NI.
func (n *Network) InjectQueueLen(node int) int {
	ni := &n.ni[node]
	l := ni.qlen()
	for _, p := range ni.stream {
		if p != nil {
			l++
		}
	}
	return l
}

// eject delivers a packet to the node's NI.
func (n *Network) eject(node int, pkt *Packet) {
	if n.fault != nil {
		n.verifyAtSink(node, pkt)
	}
	pkt.EjectCycle = n.Cycle
	n.stats.Ejected++
	lat := float64(pkt.EjectCycle - pkt.InjectCycle)
	n.stats.PacketLatency.Add(lat)
	n.stats.QueueCycles.Add(float64(pkt.Queueing))
	bd := pkt.Breakdown()
	n.stats.QueueDelay.Add(float64(bd.Queue))
	n.stats.EngineDelay.Add(float64(bd.Engine))
	n.stats.SerialDelay.Add(float64(bd.Serialization))
	n.stats.PktEngineCycles += bd.EngineBusy
	n.stats.PktEngineExposed += bd.Engine
	if pkt.Class == ClassResponse {
		n.stats.DataLatency.Add(lat)
	}
	if !pkt.InWantedForm() {
		n.stats.EjectedWrongForm++
	}
	n.trace(node, EvEject, pkt)
	if n.OnEject != nil {
		n.OnEject(node, pkt)
		return
	}
	// Reclaim pool-born packets, but only when nothing could have kept a
	// reference: OnEject hands the packet to the protocol layer, tracers
	// may retain staged events past this cycle, and the fault layer's
	// shadow semantics rely on retained blocks.
	if pkt.pooled && n.tracer == nil && n.fault == nil {
		n.recyclePacket(pkt)
	}
}

// verifyAtSink is the end-to-end integrity check active whenever fault
// injection is armed: a compressed payload that no longer decodes to the
// packet's retained original (a bit-flip that survived to the sink) is
// recovered by delivering the uncompressed original instead — the
// shadow-packet guarantee extended to the NI. Corruption is therefore
// always caught and recovered, never silently delivered.
func (n *Network) verifyAtSink(node int, pkt *Packet) {
	if n.fault.Spec().PayloadRate <= 0 ||
		!pkt.Compressed || !pkt.Compressible || len(pkt.Block) == 0 {
		return
	}
	if block, err := n.decodeComp(pkt.Comp); err == nil && bytes.Equal(block, pkt.Block) {
		return
	}
	n.sinkRecoveries++
	n.trace(node, EvFaultRecover, pkt)
	pkt.ApplyDecompression(pkt.Block)
}

// decodeComp decompresses an encoding with a per-algorithm decoder cache
// (the sink check must not disturb any engine state).
func (n *Network) decodeComp(c compress.Compressed) ([]byte, error) {
	alg, ok := n.decoders[c.Alg]
	if !ok {
		alg, _ = compress.New(c.Alg) // nil for unknown names
		n.decoders[c.Alg] = alg
	}
	if alg == nil {
		return nil, fmt.Errorf("noc: no decoder for algorithm %q", c.Alg)
	}
	return alg.Decompress(c)
}

// Step advances the network by one cycle of the two-phase engine: each
// pipeline stage runs its compute over all busy routers (sharded across
// the worker pool when one is set — see parallel.go), then commits the
// staged effects serially in canonical router-index order. The stage
// sequence matches the classic serial phase order (engines, SA+ST, VA,
// RC, DISCO arbitration, NI injection), so results — including the trace
// byte stream — are identical at any worker count.
func (n *Network) Step() {
	n.stepping = true
	// Profiling stamps (profile.go): t threads through the serial
	// regions on the driver lane; compute-stage and barrier attribution
	// on the parallel engine happens inside runStage/workerPool.
	t := n.profClock()
	// Serial prologue: due credit recoveries land (fault injection only;
	// the queue is ordered by restore cycle), then link arrivals land in
	// input buffers — these are last cycle's committed effects becoming
	// this cycle's prior state.
	for n.creditHead < len(n.creditRestores) && n.creditRestores[n.creditHead].at <= n.Cycle {
		n.creditRestores[n.creditHead].vc.restoreCredit()
		n.creditsHealed++
		n.creditHead++
	}
	if n.creditHead == len(n.creditRestores) {
		// Queue drained: reset to the front so the backing array is
		// reused instead of regrown (amortized zero-allocation).
		n.creditRestores = n.creditRestores[:0]
		n.creditHead = 0
	}
	pend := n.pending
	n.pending = n.pending[:0]
	for _, a := range pend {
		e := &a.router.in[a.port][a.vc]
		if a.head {
			if e.pkt != nil {
				panic("noc: head flit arrived at occupied VC")
			}
			e.attachPacket(a.pkt)
		}
		e.acceptFlit()
	}
	// Idle routers (no flits present or expected) skip all stages.
	// busyScratch is sized once in New (the router count is fixed).
	busy := n.busyScratch[:len(n.Routers)]
	for i, r := range n.Routers {
		busy[i] = r.busy()
	}
	t = n.profMark(obs.PhaseOther, t)
	if n.pool == nil {
		// Serial engine: the same stage sequence with direct dispatch.
		// Compute and commit must NOT fuse per router even serially —
		// e.g. a committed traversal shrinks a VC's occupancy, which
		// the upstream router's SA credit check reads; fusing would let
		// later routers see same-cycle commits that the two-phase
		// engine (and any parallel run) orders after the barrier.
		for i, r := range n.Routers {
			if busy[i] {
				r.computeEngine()
			}
		}
		t = n.profMark(obs.PhaseEngine, t)
		for i, r := range n.Routers {
			if busy[i] {
				r.computeSA()
			}
		}
		t = n.profMark(obs.PhaseSA, t)
		for i, r := range n.Routers {
			if busy[i] {
				r.commitSA()
			}
		}
		t = n.profMark(obs.PhaseCommit, t)
		for i, r := range n.Routers {
			if busy[i] {
				r.computeAlloc()
			}
		}
		t = n.profMark(obs.PhaseAlloc, t)
		for i, r := range n.Routers {
			if busy[i] {
				r.commitArb()
			}
		}
		t = n.profMark(obs.PhaseCommit, t)
	} else {
		// Stage: DISCO engines (commit, absorb, complete) — pure
		// compute, no shared effects beyond the staged traces.
		n.runStage(busy, obs.PhaseEngine, (*Router).computeEngine)
		t = n.profClock()
		n.flushTraces(busy)
		t = n.profMark(obs.PhaseCommit, t)
		// Stage: switch allocation — compute arbitrates against
		// prior-cycle credits, commit applies stall bookkeeping and
		// winner traversals (flit moves, credit reservations,
		// ejections, fault draws).
		n.runStage(busy, obs.PhaseSA, (*Router).computeSA)
		t = n.profClock()
		for i, r := range n.Routers {
			if busy[i] {
				r.commitSA()
			}
		}
		t = n.profMark(obs.PhaseCommit, t)
		// Stage: allocation-side computes (VA, RC, DISCO arbitration
		// fused per router), then the arbitration commit (engine job
		// starts). Alloc compute and commit do NOT fuse per router even
		// serially: both emit traces, and fusing would interleave them
		// differently than the staged flush.
		n.runStage(busy, obs.PhaseAlloc, (*Router).computeAlloc)
		t = n.profClock()
		n.flushTraces(busy)
		for i, r := range n.Routers {
			if busy[i] {
				r.commitArb()
			}
		}
		t = n.profMark(obs.PhaseCommit, t)
	}
	// Serial epilogue: NI injection (one flit per node per cycle).
	for node := range n.ni {
		n.stepInjection(node)
	}
	n.Cycle++
	n.stepping = false
	n.sampleMetrics()
	if n.prof != nil {
		n.prof.Observe(0, obs.PhaseOther, t)
		n.prof.AddStep()
	}
}

// stepInjection assigns queued packets to free local input VCs and
// streams one flit over the NI link (round-robin across active streams).
func (n *Network) stepInjection(node int) {
	ni := &n.ni[node]
	if ni.qlen() == 0 && ni.active == 0 {
		return // nothing queued, nothing streaming
	}
	r := n.Routers[node]
	// Fill free VCs from the queue so waiting packets are buffered where
	// the router (and the DISCO arbitrator) can see them.
	for v := range r.in[Local] {
		if ni.qlen() == 0 {
			break
		}
		e := &r.in[Local][v]
		if ni.stream[v] == nil && e.pkt == nil && e.reserved == 0 {
			ni.setStream(v, ni.qpop())
			e.attachPacket(ni.stream[v])
		}
	}
	// One flit of NI link bandwidth, round-robin over active streams.
	vcs := n.cfg.VCs
	for off := 0; off < vcs; off++ {
		v := (ni.rr + off) % vcs
		p := ni.stream[v]
		if p == nil {
			continue
		}
		e := &r.in[Local][v]
		if e.pkt != p {
			// The packet left the VC entirely (possible for transformed
			// or short packets); its remaining flits were already
			// accounted.
			ni.clearStream(v)
			continue
		}
		if ni.streamed[v] >= p.FlitCount {
			ni.clearStream(v)
			continue
		}
		if e.occupancy() >= n.cfg.BufDepth {
			continue // buffer full; try another stream
		}
		ni.streamed[v]++
		e.acceptNIFlit()
		if ni.streamed[v] >= p.FlitCount {
			ni.clearStream(v)
		}
		ni.rr = (v + 1) % vcs
		return
	}
}

// Quiescent reports whether no packet is anywhere in the network (buffers,
// links, NIs).
func (n *Network) Quiescent() bool {
	if len(n.pending) > 0 {
		return false
	}
	for i := range n.ni {
		if n.ni[i].qlen() > 0 {
			return false
		}
		for _, p := range n.ni[i].stream {
			if p != nil {
				return false
			}
		}
	}
	for _, r := range n.Routers {
		if r.live != 0 {
			return false
		}
	}
	return true
}

// RunUntilQuiescent steps until the network drains or maxCycles elapse;
// it returns false on timeout (useful for deadlock detection in tests).
func (n *Network) RunUntilQuiescent(maxCycles uint64) bool {
	for i := uint64(0); i < maxCycles; i++ {
		if n.Quiescent() {
			return true
		}
		n.Step()
	}
	return n.Quiescent()
}

// LinkUtilization reports per-link flit utilization (flits sent over
// elapsed cycles) as (max, mean) over all inter-router links. Useful to
// judge how congested the fabric — as opposed to the endpoints — is.
func (n *Network) LinkUtilization() (max, mean float64) {
	if n.Cycle == 0 {
		return 0, 0
	}
	links := 0
	var sum float64
	for _, r := range n.Routers {
		for p := Port(0); p < Local; p++ {
			if n.cfg.neighbor(r.id, p) < 0 {
				continue
			}
			links++
			u := float64(r.linkFlits[p]) / float64(n.Cycle)
			sum += u
			if u > max {
				max = u
			}
		}
	}
	if links == 0 {
		return 0, 0
	}
	return max, sum / float64(links)
}

// scheduleCreditRestore queues the link-level recovery of one credit
// dropped on vc.
func (n *Network) scheduleCreditRestore(vc *vcBuf) {
	n.creditsLost++
	n.creditRestores = append(n.creditRestores,
		creditRestore{at: n.Cycle + n.fault.Spec().CreditRecovery, vc: vc})
}

// FaultStats aggregates the fault-injection and recovery counters. It is
// reported (and serialized) only when an injector is armed, so fault-free
// results stay byte-identical to a build without the fault layer.
type FaultStats struct {
	// EngineFaults counts injected engine faults (stuck-busy aborts).
	EngineFaults uint64
	// BreakerTrips counts circuit-breaker openings (engine bypass after
	// K consecutive faults); BreakerOpen counts engines bypassed now.
	BreakerTrips uint64
	BreakerOpen  int
	// PayloadFlips counts injected bit-flips; EngineRecoveries counts
	// corrupt payloads caught at an in-network decompression and
	// recovered from the retained original (shadow semantics), and
	// SinkRecoveries the same at ejection.
	PayloadFlips     uint64
	EngineRecoveries uint64
	SinkRecoveries   uint64
	// CreditsDropped/CreditsRestored count link credit losses and their
	// recoveries; CreditsOutstanding is the gap at snapshot time.
	CreditsDropped     uint64
	CreditsRestored    uint64
	CreditsOutstanding int
}

// Recoveries sums every recovery path (engine faults are recovered by
// definition: the shadow packet continues uncompressed).
func (f *FaultStats) Recoveries() uint64 {
	return f.EngineFaults + f.EngineRecoveries + f.SinkRecoveries
}

// String renders a compact summary.
func (f *FaultStats) String() string {
	return fmt.Sprintf(
		"engine faults %d (breaker trips %d, open %d); payload flips %d (recovered %d in-network, %d at sink); credits lost %d (restored %d, outstanding %d)",
		f.EngineFaults, f.BreakerTrips, f.BreakerOpen,
		f.PayloadFlips, f.EngineRecoveries, f.SinkRecoveries,
		f.CreditsDropped, f.CreditsRestored, f.CreditsOutstanding)
}

// FaultStats folds the per-router fault counters into one snapshot, or
// nil when fault injection is not armed.
func (n *Network) FaultStats() *FaultStats {
	if n.fault == nil {
		return nil
	}
	fs := &FaultStats{
		SinkRecoveries:  n.sinkRecoveries,
		CreditsDropped:  n.creditsLost,
		CreditsRestored: n.creditsHealed,
	}
	for _, r := range n.Routers {
		fs.EngineFaults += r.faultEngineFaults
		fs.BreakerTrips += r.breakerTrips
		if r.breakerOpen {
			fs.BreakerOpen++
		}
		fs.PayloadFlips += r.faultPayloadFlips
		fs.EngineRecoveries += r.faultRecoveries
	}
	fs.CreditsOutstanding = int(fs.CreditsDropped - fs.CreditsRestored)
	return fs
}

// Stats returns a snapshot of the network counters, folding in per-router
// engine statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	for _, r := range n.Routers {
		s.FlitsSwitched += r.flitsSwitched
		s.EngineReleases += uint64(r.engineReleases)
		if r.engine != nil {
			s.Compressions += r.engine.Compressions
			s.Decompressions += r.engine.Decompressions
			s.EngineFailures += r.engine.Failures
			s.EngineBusy += r.engine.BusyCycles
		}
	}
	return s
}
