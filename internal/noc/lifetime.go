package noc

// Lifetime is a packet's lifecycle record: first-occurrence cycle
// stamps for each pipeline milestone plus the engine-overlap
// accounting that makes the paper's Section 3.2 claim — de/compression
// latency hidden under NoC queuing — directly measurable.
//
// Stamps are stored as cycle+1 so the zero value means "never
// happened" (cycle 0 is a valid simulation cycle); use the accessor
// methods, which decode and report presence.
type Lifetime struct {
	routeStamp uint64
	vaStamp    uint64
	saStamp    uint64
	engStart   uint64
	engCommit  uint64
	engEnd     uint64
	// EngineCycles counts cycles this packet spent with a DISCO engine
	// job in flight (summed over jobs if the packet is processed at
	// more than one router).
	EngineCycles uint64
	// EngineStall counts the subset of stall cycles where the engine
	// lock was the ONLY reason the packet could not move — the exposed
	// (non-overlapped) part of the engine latency. Its complement,
	// EngineCycles - EngineStall, is the hidden part.
	EngineStall uint64
}

// observe records the first occurrence of each traced milestone.
func (l *Lifetime) observe(kind string, cycle uint64) {
	stamp := cycle + 1
	switch kind {
	case EvRoute:
		if l.routeStamp == 0 {
			l.routeStamp = stamp
		}
	case EvVAGrant:
		if l.vaStamp == 0 {
			l.vaStamp = stamp
		}
	case EvSAGrant:
		if l.saStamp == 0 {
			l.saStamp = stamp
		}
	case EvEngineStart:
		if l.engStart == 0 {
			l.engStart = stamp
		}
	case EvEngineCommit:
		if l.engCommit == 0 {
			l.engCommit = stamp
		}
	case EvEngineDone, EvEngineFail, EvEngineRelease, EvEngineFault, EvFaultRecover:
		if l.engEnd == 0 {
			l.engEnd = stamp
		}
	}
}

// decode converts a stamp back to (cycle, happened).
func decode(stamp uint64) (uint64, bool) {
	if stamp == 0 {
		return 0, false
	}
	return stamp - 1, true
}

// RouteCycle returns the first RC completion cycle.
func (l *Lifetime) RouteCycle() (uint64, bool) { return decode(l.routeStamp) }

// VAGrantCycle returns the first downstream-VC grant cycle.
func (l *Lifetime) VAGrantCycle() (uint64, bool) { return decode(l.vaStamp) }

// SAGrantCycle returns the cycle the first flit crossed a crossbar.
func (l *Lifetime) SAGrantCycle() (uint64, bool) { return decode(l.saStamp) }

// EngineStartCycle returns the first DISCO job start cycle.
func (l *Lifetime) EngineStartCycle() (uint64, bool) { return decode(l.engStart) }

// EngineCommitCycle returns the first job-commit cycle.
func (l *Lifetime) EngineCommitCycle() (uint64, bool) { return decode(l.engCommit) }

// EngineEndCycle returns the first job-end cycle (done, fail or
// release).
func (l *Lifetime) EngineEndCycle() (uint64, bool) { return decode(l.engEnd) }

// LatencyBreakdown splits a delivered packet's inject→eject latency
// into its three components (all in cycles):
//
//	Serialization — head pipeline traversal, link hops and flit
//	                streaming: Total minus all recorded stall cycles;
//	Queue         — stall cycles from contention and backpressure
//	                (lost arbitration, exhausted credits);
//	Engine        — stall cycles attributable solely to a DISCO engine
//	                lock (the exposed part of the transform latency).
//
// EngineBusy is the total engine service time spent on the packet and
// EngineHidden the part of it that coincided with cycles the packet
// could not have moved anyway — the overlap the paper's scheduling is
// designed to maximize.
type LatencyBreakdown struct {
	Total         uint64
	Queue         uint64
	Engine        uint64
	Serialization uint64

	EngineBusy   uint64
	EngineHidden uint64
}

// OverlapRatio is EngineHidden / EngineBusy — 1.0 when the transform
// was entirely hidden under queuing, 0 when fully exposed. Packets the
// engine never touched report 0 (filter with EngineBusy > 0).
func (b LatencyBreakdown) OverlapRatio() float64 {
	if b.EngineBusy == 0 {
		return 0
	}
	return float64(b.EngineHidden) / float64(b.EngineBusy)
}

// Breakdown computes the latency breakdown of an ejected packet. A
// wormhole packet spread over several routers can accrue stall cycles
// at more than one of them in the same cycle, so the stall total is
// clamped to the packet latency before splitting.
func (p *Packet) Breakdown() LatencyBreakdown {
	total := p.EjectCycle - p.InjectCycle
	stall := p.Queueing
	if stall > total {
		stall = total
	}
	engine := p.Life.EngineStall
	if engine > stall {
		engine = stall
	}
	hidden := uint64(0)
	if p.Life.EngineCycles > p.Life.EngineStall {
		hidden = p.Life.EngineCycles - p.Life.EngineStall
	}
	return LatencyBreakdown{
		Total:         total,
		Queue:         stall - engine,
		Engine:        engine,
		Serialization: total - stall,
		EngineBusy:    p.Life.EngineCycles,
		EngineHidden:  hidden,
	}
}
