package noc

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/metrics"
)

// runSeededLoad drives a DISCO-equipped network under a seeded synthetic
// load and returns the full event trace plus the final counters. Two
// calls with the same seed must be indistinguishable: the simulator has
// no other entropy source (enforced by the nodeterminism analyzer).
func runSeededLoad(t *testing.T, seed int64) (string, Stats) {
	t.Helper()
	return runSeededLoadCfg(t, discoConfig(), seed)
}

// runSeededLoadCfg is runSeededLoad with an explicit network config, so
// fault-injection tests can reuse the same deterministic load.
func runSeededLoadCfg(t *testing.T, cfg Config, seed int64) (string, Stats) {
	t.Helper()
	n := mustNet(t, cfg)
	var sb strings.Builder
	n.SetTracer(&WriterTracer{W: &sb})
	tc := DefaultTraffic()
	tc.Seed = seed
	tc.InjectionRate = 0.05
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 2000; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	return sb.String(), n.Stats()
}

// TestSameSeedByteIdenticalTrace is the determinism regression gate:
// identical seeds must give byte-identical traces and equal statistics.
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	trace1, stats1 := runSeededLoad(t, 42)
	trace2, stats2 := runSeededLoad(t, 42)
	if trace1 == "" {
		t.Fatal("empty trace; load generated no events")
	}
	if trace1 != trace2 {
		// Report the first diverging line, not megabytes of trace.
		l1 := strings.Split(trace1, "\n")
		l2 := strings.Split(trace2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(l1), len(l2))
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Errorf("stats differ between identical runs:\n  run1: %+v\n  run2: %+v", stats1, stats2)
	}
}

// runInstrumentedLoad is runSeededLoad with the full telemetry surface
// attached: a metrics registry (JSON + series CSV exports) and a binary
// tracer. It returns all three serialized artifacts.
func runInstrumentedLoad(t *testing.T, seed int64) (metricsJSON, seriesCSV, binTrace []byte) {
	t.Helper()
	return runInstrumentedLoadCfg(t, discoConfig(), seed)
}

// runInstrumentedLoadCfg is runInstrumentedLoad with an explicit config.
func runInstrumentedLoadCfg(t *testing.T, cfg Config, seed int64) (metricsJSON, seriesCSV, binTrace []byte) {
	t.Helper()
	n := mustNet(t, cfg)
	reg := metrics.NewRegistry()
	n.AttachMetrics(reg, 128)
	var bin bytes.Buffer
	bt := NewBinaryTracer(&bin, cfg.Nodes())
	n.SetTracer(bt)
	tc := DefaultTraffic()
	tc.Seed = seed
	tc.InjectionRate = 0.05
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 2000; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	var mj, sc bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := reg.WriteSeriesCSV(&sc); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	return mj.Bytes(), sc.Bytes(), bin.Bytes()
}

// TestSameSeedByteIdenticalTelemetry extends the determinism gate to the
// telemetry layer: same-seed runs must export byte-identical metrics
// JSON, time-series CSV and binary traces. Any map-ordered or
// wall-clock-tainted path through the exporters breaks this.
func TestSameSeedByteIdenticalTelemetry(t *testing.T) {
	mj1, sc1, bin1 := runInstrumentedLoad(t, 42)
	mj2, sc2, bin2 := runInstrumentedLoad(t, 42)
	if len(mj1) == 0 || len(sc1) == 0 || len(bin1) == 0 {
		t.Fatalf("empty artifact: metrics=%d series=%d trace=%d bytes",
			len(mj1), len(sc1), len(bin1))
	}
	if !bytes.Equal(mj1, mj2) {
		t.Error("metrics JSON differs between identical runs")
	}
	if !bytes.Equal(sc1, sc2) {
		t.Error("time-series CSV differs between identical runs")
	}
	if !bytes.Equal(bin1, bin2) {
		if len(bin1) != len(bin2) {
			t.Fatalf("binary traces differ in length: %d vs %d bytes", len(bin1), len(bin2))
		}
		for i := range bin1 {
			if bin1[i] != bin2[i] {
				t.Fatalf("binary traces diverge at byte %d", i)
			}
		}
	}
}

// TestDifferentSeedsDiverge guards the guard: if seeds were ignored the
// identical-trace test above would pass vacuously.
func TestDifferentSeedsDiverge(t *testing.T) {
	trace1, _ := runSeededLoad(t, 1)
	trace2, _ := runSeededLoad(t, 2)
	if trace1 == trace2 {
		t.Error("different seeds produced identical traces; the seed is not reaching the load")
	}
}

// --- Golden byte-identity suite: serial vs parallel engine -------------
//
// The two-phase engine's whole contract (DESIGN.md §9) is that the worker
// count is invisible in every artifact. These tests pin it: the same
// seeded load must produce byte-identical traces, stats, metrics JSON,
// series CSV and binary traces at workers ∈ {1, 2, 4, 8}, across mesh
// sizes, traffic patterns, and with fault injection armed.

// goldenWorkers are the worker counts the suite sweeps; 1 is the serial
// engine (no pool), the rest shard compute across a pool.
var goldenWorkers = []int{1, 2, 4, 8}

// goldenCases spans the configuration axes the engine shards over.
var goldenCases = []struct {
	name    string
	cfg     func() Config
	traffic func() TrafficConfig
}{
	{"mesh4-uniform", discoConfig, func() TrafficConfig {
		tc := DefaultTraffic()
		tc.Seed, tc.InjectionRate = 42, 0.06
		return tc
	}},
	{"mesh4-hotspot", discoConfig, func() TrafficConfig {
		tc := DefaultTraffic()
		tc.Pattern, tc.HotNode = Hotspot, 5
		tc.Seed, tc.InjectionRate = 7, 0.05
		return tc
	}},
	{"mesh8-transpose", func() Config {
		cfg := discoConfig()
		cfg.K = 8
		return cfg
	}, func() TrafficConfig {
		tc := DefaultTraffic()
		tc.Pattern = Transpose
		tc.Seed, tc.InjectionRate = 11, 0.04
		return tc
	}},
	{"mesh4-faults", func() Config {
		return faultConfig(fault.Spec{Seed: 9, EngineRate: 0.05, EngineStuck: 8,
			BreakerK: 3, BreakerCooldown: 64,
			PayloadRate: 0.01, CreditRate: 0.01, CreditRecovery: 32})
	}, func() TrafficConfig {
		tc := DefaultTraffic()
		tc.Seed, tc.InjectionRate = 13, 0.06
		return tc
	}},
}

// runGoldenLoad drives cfg under tc at the given phase-1 worker count and
// returns the full event trace and the final counters.
func runGoldenLoad(t *testing.T, cfg Config, tc TrafficConfig, workers int) (string, Stats) {
	t.Helper()
	n := mustNet(t, cfg)
	defer n.Close()
	n.SetWorkers(workers)
	var sb strings.Builder
	n.SetTracer(&WriterTracer{W: &sb})
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 1500; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	return sb.String(), n.Stats()
}

// diffTraces reports the first diverging line of two traces.
func diffTraces(t *testing.T, label, want, got string) {
	t.Helper()
	lw := strings.Split(want, "\n")
	lg := strings.Split(got, "\n")
	for i := 0; i < len(lw) && i < len(lg); i++ {
		if lw[i] != lg[i] {
			t.Fatalf("%s: traces diverge at line %d:\n  serial:   %s\n  parallel: %s",
				label, i+1, lw[i], lg[i])
		}
	}
	t.Fatalf("%s: traces differ in length: %d vs %d lines", label, len(lw), len(lg))
}

// TestGoldenByteIdentityAcrossWorkers is the golden gate for the
// two-phase engine: trace and stats byte-identity against the serial
// engine at every worker count, for every configuration axis.
func TestGoldenByteIdentityAcrossWorkers(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			wantTrace, wantStats := runGoldenLoad(t, c.cfg(), c.traffic(), 1)
			if wantTrace == "" {
				t.Fatal("empty trace; load generated no events")
			}
			for _, w := range goldenWorkers[1:] {
				gotTrace, gotStats := runGoldenLoad(t, c.cfg(), c.traffic(), w)
				if gotTrace != wantTrace {
					diffTraces(t, fmt.Sprintf("workers=%d", w), wantTrace, gotTrace)
				}
				if !reflect.DeepEqual(wantStats, gotStats) {
					t.Errorf("workers=%d: stats differ from serial:\n  serial:   %+v\n  parallel: %+v",
						w, wantStats, gotStats)
				}
			}
		})
	}
}

// runGoldenInstrumented is runGoldenLoad with the telemetry surface
// attached (metrics registry + binary tracer) instead of a text tracer.
func runGoldenInstrumented(t *testing.T, cfg Config, tc TrafficConfig, workers int) (metricsJSON, seriesCSV, binTrace []byte) {
	t.Helper()
	n := mustNet(t, cfg)
	defer n.Close()
	n.SetWorkers(workers)
	reg := metrics.NewRegistry()
	n.AttachMetrics(reg, 128)
	var bin bytes.Buffer
	bt := NewBinaryTracer(&bin, cfg.Nodes())
	n.SetTracer(bt)
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 1500; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	var mj, sc bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := reg.WriteSeriesCSV(&sc); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	return mj.Bytes(), sc.Bytes(), bin.Bytes()
}

// TestGoldenTelemetryAcrossWorkers extends the golden gate to every
// serialized artifact: metrics JSON, time-series CSV and the binary
// trace must be byte-identical to the serial engine's at any worker
// count, including with fault injection armed.
func TestGoldenTelemetryAcrossWorkers(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			mj1, sc1, bin1 := runGoldenInstrumented(t, c.cfg(), c.traffic(), 1)
			if len(mj1) == 0 || len(sc1) == 0 || len(bin1) == 0 {
				t.Fatalf("empty artifact: metrics=%d series=%d trace=%d bytes",
					len(mj1), len(sc1), len(bin1))
			}
			for _, w := range goldenWorkers[1:] {
				mj2, sc2, bin2 := runGoldenInstrumented(t, c.cfg(), c.traffic(), w)
				if !bytes.Equal(mj1, mj2) {
					t.Errorf("workers=%d: metrics JSON differs from serial", w)
				}
				if !bytes.Equal(sc1, sc2) {
					t.Errorf("workers=%d: time-series CSV differs from serial", w)
				}
				if !bytes.Equal(bin1, bin2) {
					t.Errorf("workers=%d: binary trace differs from serial", w)
				}
			}
		})
	}
}

// TestRunParallelMatchesSerialDrain exercises the RunParallel entry
// point itself: a backlogged network drained by RunParallel must end in
// the same state as one drained serially, and the worker setting must be
// restored afterwards.
func TestRunParallelMatchesSerialDrain(t *testing.T) {
	build := func() *Network {
		n := mustNet(t, discoConfig())
		tc := DefaultTraffic()
		tc.Seed, tc.InjectionRate = 3, 0.1
		g := NewTrafficGen(n, tc)
		for cycle := 0; cycle < 500; cycle++ {
			g.Step()
			n.Step()
		}
		return n
	}
	ns := build()
	if !ns.RunUntilQuiescent(100000) {
		t.Fatal("serial drain failed")
	}
	want := ns.Stats()
	np := build()
	defer np.Close()
	if !np.RunParallel(4, 100000) {
		t.Fatal("parallel drain failed")
	}
	if got := np.Workers(); got != 1 {
		t.Errorf("RunParallel left workers=%d, want 1 restored", got)
	}
	if got := np.Stats(); !reflect.DeepEqual(want, got) {
		t.Errorf("RunParallel end state differs from serial:\n  serial:   %+v\n  parallel: %+v", want, got)
	}
}
