package noc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/metrics"
)

// runSeededLoad drives a DISCO-equipped network under a seeded synthetic
// load and returns the full event trace plus the final counters. Two
// calls with the same seed must be indistinguishable: the simulator has
// no other entropy source (enforced by the nodeterminism analyzer).
func runSeededLoad(t *testing.T, seed int64) (string, Stats) {
	t.Helper()
	return runSeededLoadCfg(t, discoConfig(), seed)
}

// runSeededLoadCfg is runSeededLoad with an explicit network config, so
// fault-injection tests can reuse the same deterministic load.
func runSeededLoadCfg(t *testing.T, cfg Config, seed int64) (string, Stats) {
	t.Helper()
	n := mustNet(t, cfg)
	var sb strings.Builder
	n.SetTracer(&WriterTracer{W: &sb})
	tc := DefaultTraffic()
	tc.Seed = seed
	tc.InjectionRate = 0.05
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 2000; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	return sb.String(), n.Stats()
}

// TestSameSeedByteIdenticalTrace is the determinism regression gate:
// identical seeds must give byte-identical traces and equal statistics.
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	trace1, stats1 := runSeededLoad(t, 42)
	trace2, stats2 := runSeededLoad(t, 42)
	if trace1 == "" {
		t.Fatal("empty trace; load generated no events")
	}
	if trace1 != trace2 {
		// Report the first diverging line, not megabytes of trace.
		l1 := strings.Split(trace1, "\n")
		l2 := strings.Split(trace2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(l1), len(l2))
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Errorf("stats differ between identical runs:\n  run1: %+v\n  run2: %+v", stats1, stats2)
	}
}

// runInstrumentedLoad is runSeededLoad with the full telemetry surface
// attached: a metrics registry (JSON + series CSV exports) and a binary
// tracer. It returns all three serialized artifacts.
func runInstrumentedLoad(t *testing.T, seed int64) (metricsJSON, seriesCSV, binTrace []byte) {
	t.Helper()
	return runInstrumentedLoadCfg(t, discoConfig(), seed)
}

// runInstrumentedLoadCfg is runInstrumentedLoad with an explicit config.
func runInstrumentedLoadCfg(t *testing.T, cfg Config, seed int64) (metricsJSON, seriesCSV, binTrace []byte) {
	t.Helper()
	n := mustNet(t, cfg)
	reg := metrics.NewRegistry()
	n.AttachMetrics(reg, 128)
	var bin bytes.Buffer
	bt := NewBinaryTracer(&bin, cfg.Nodes())
	n.SetTracer(bt)
	tc := DefaultTraffic()
	tc.Seed = seed
	tc.InjectionRate = 0.05
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 2000; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain")
	}
	if err := bt.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	var mj, sc bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := reg.WriteSeriesCSV(&sc); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	return mj.Bytes(), sc.Bytes(), bin.Bytes()
}

// TestSameSeedByteIdenticalTelemetry extends the determinism gate to the
// telemetry layer: same-seed runs must export byte-identical metrics
// JSON, time-series CSV and binary traces. Any map-ordered or
// wall-clock-tainted path through the exporters breaks this.
func TestSameSeedByteIdenticalTelemetry(t *testing.T) {
	mj1, sc1, bin1 := runInstrumentedLoad(t, 42)
	mj2, sc2, bin2 := runInstrumentedLoad(t, 42)
	if len(mj1) == 0 || len(sc1) == 0 || len(bin1) == 0 {
		t.Fatalf("empty artifact: metrics=%d series=%d trace=%d bytes",
			len(mj1), len(sc1), len(bin1))
	}
	if !bytes.Equal(mj1, mj2) {
		t.Error("metrics JSON differs between identical runs")
	}
	if !bytes.Equal(sc1, sc2) {
		t.Error("time-series CSV differs between identical runs")
	}
	if !bytes.Equal(bin1, bin2) {
		if len(bin1) != len(bin2) {
			t.Fatalf("binary traces differ in length: %d vs %d bytes", len(bin1), len(bin2))
		}
		for i := range bin1 {
			if bin1[i] != bin2[i] {
				t.Fatalf("binary traces diverge at byte %d", i)
			}
		}
	}
}

// TestDifferentSeedsDiverge guards the guard: if seeds were ignored the
// identical-trace test above would pass vacuously.
func TestDifferentSeedsDiverge(t *testing.T) {
	trace1, _ := runSeededLoad(t, 1)
	trace2, _ := runSeededLoad(t, 2)
	if trace1 == trace2 {
		t.Error("different seeds produced identical traces; the seed is not reaching the load")
	}
}
