package noc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/disco-sim/disco/internal/fault"
)

// propertySeed seeds the trial generator. Trials are derived from it
// deterministically and each trial logs its full configuration, so a
// failing trial can be replayed exactly.
const propertySeed = 0xD15C0

// checkCreditInvariants asserts, at a commit boundary, that no VC has a
// negative conserved counter and none is overbooked beyond its buffer
// depth — the "credits never go negative" property in both directions.
func checkCreditInvariants(t *testing.T, n *Network, cycle uint64) {
	t.Helper()
	depth := n.Config().BufDepth
	for _, r := range n.Routers {
		r.eachVC(func(p Port, v int, e *vcBuf) {
			if e.stored < 0 || e.reserved < 0 || e.lostCredits < 0 {
				t.Fatalf("cycle %d r%d port%d/vc%d: negative counters stored=%d reserved=%d lostCredits=%d",
					cycle, r.id, int(p), v, e.stored, e.reserved, e.lostCredits)
			}
			// Physical slots never exceed the buffer depth. occupancy()
			// may: a fault-dropped credit (lostCredits) overbooks the VC
			// from the upstream's view on purpose, until recovery.
			if phys := e.stored + e.reserved; phys > depth {
				t.Fatalf("cycle %d r%d port%d/vc%d: %d physical slots exceed buffer depth %d (a credit went negative)",
					cycle, r.id, int(p), v, phys, depth)
			}
		})
	}
}

// inFlightPackets returns the set of distinct packets anywhere in the
// network: NI queues and streams, input VCs, and flits on links. A
// wormhole packet can be visible in several places at once, hence the
// set rather than a sum.
func inFlightPackets(n *Network) map[*Packet]bool {
	set := make(map[*Packet]bool)
	for i := range n.ni {
		for _, p := range n.ni[i].queue[n.ni[i].qhead:] {
			set[p] = true
		}
		for _, p := range n.ni[i].stream {
			if p != nil {
				set[p] = true
			}
		}
	}
	for _, r := range n.Routers {
		r.eachVC(func(_ Port, _ int, e *vcBuf) {
			if e.pkt != nil {
				set[e.pkt] = true
			}
		})
	}
	for _, a := range n.pending {
		set[a.pkt] = true
	}
	return set
}

// checkConservation asserts packets injected = ejected + in flight.
func checkConservation(t *testing.T, n *Network, cycle uint64) {
	t.Helper()
	st := n.Stats()
	inflight := uint64(len(inFlightPackets(n)))
	if st.Injected != st.Ejected+inflight {
		t.Fatalf("cycle %d: conservation violated: injected %d != ejected %d + in-flight %d",
			cycle, st.Injected, st.Ejected, inflight)
	}
}

// runConservationTrial drives one randomized load on one engine,
// checking the conservation properties at commit boundaries throughout
// and the reclamation properties after the drain.
func runConservationTrial(t *testing.T, cfg Config, tc TrafficConfig, workers int) Stats {
	t.Helper()
	n := mustNet(t, cfg)
	defer n.Close()
	n.SetWorkers(workers)
	g := NewTrafficGen(n, tc)
	for cycle := 0; cycle < 1200; cycle++ {
		g.Step()
		n.Step()
		if cycle%64 == 0 {
			checkCreditInvariants(t, n, n.Cycle)
			checkConservation(t, n, n.Cycle)
		}
	}
	if !n.RunUntilQuiescent(200000) {
		t.Fatal("network did not drain")
	}
	checkCreditInvariants(t, n, n.Cycle)
	st := n.Stats()
	if st.Injected != st.Ejected {
		t.Errorf("after drain: injected %d != ejected %d", st.Injected, st.Ejected)
	}
	if in := len(inFlightPackets(n)); in != 0 {
		t.Errorf("after drain: %d packets still in flight", in)
	}
	// Shadow-packet slots always reclaimed: no VC may keep an engine
	// lock, absorbed payload, or buffer slots once its packet is gone.
	for _, r := range n.Routers {
		r.eachVC(func(p Port, v int, e *vcBuf) {
			if e.pkt != nil || e.lock != lockNone || e.absorbed != 0 || e.stored != 0 || e.reserved != 0 {
				t.Errorf("r%d port%d/vc%d not reclaimed after drain: pkt=%v lock=%d absorbed=%d stored=%d reserved=%d",
					r.id, int(p), v, e.pkt != nil, e.lock, e.absorbed, e.stored, e.reserved)
			}
		})
	}
	return st
}

// TestConservationProperties is the property-based layer of the golden
// suite: randomized (seed-logged) loads across patterns, rates, mesh
// sizes and one fault configuration, each run on the serial and the
// parallel engine, asserting the quick-check style invariants — flits
// injected = ejected + in flight, credits never negative, shadow slots
// always reclaimed — plus serial/parallel stats identity. Runs under
// -race in CI (see the test-race-parallel target).
func TestConservationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed))
	t.Logf("property trial generator seed: %#x", propertySeed)
	patterns := []Pattern{Uniform, Transpose, Hotspot, BitComplement}
	for trial := 0; trial < 6; trial++ {
		cfg := discoConfig()
		if trial == 3 {
			cfg.K = 8
		}
		if trial == 5 {
			cfg.Fault = &fault.Spec{Seed: rng.Int63(), EngineRate: 0.02, EngineStuck: 8,
				BreakerK: 4, BreakerCooldown: 64,
				PayloadRate: 0.005, CreditRate: 0.005, CreditRecovery: 32}
		}
		tc := TrafficConfig{
			Pattern:              patterns[rng.Intn(len(patterns))],
			InjectionRate:        0.01 + 0.07*rng.Float64(),
			DataFraction:         0.3 + 0.6*rng.Float64(),
			CompressibleFraction: 0.3 + 0.6*rng.Float64(),
			HotNode:              rng.Intn(cfg.Nodes()),
			Seed:                 rng.Int63(),
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Logf("K=%d fault=%v traffic=%+v", cfg.K, cfg.Fault != nil, tc)
			serial := runConservationTrial(t, cfg, tc, 1)
			parallel := runConservationTrial(t, cfg, tc, 4)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("serial and parallel stats diverge:\n  serial:   %+v\n  parallel: %+v",
					serial, parallel)
			}
		})
	}
}
