package noc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
)

// mustNet builds a network or fails the test.
func mustNet(t testing.TB, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// compressibleBlock returns a delta-compressible 64-byte block seeded by s.
func compressibleBlock(s int64) []byte {
	b := make([]byte, compress.BlockSize)
	base := uint64(0x7F00_0000_0000) + uint64(s)*4096
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i))
	}
	return b
}

// randomBlock returns an incompressible block.
func randomBlock(s int64) []byte {
	rng := rand.New(rand.NewSource(s))
	b := make([]byte, compress.BlockSize)
	rng.Read(b)
	return b
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 1, VCs: 2, BufDepth: 8},
		{K: 4, VCs: 0, BufDepth: 8},
		{K: 4, VCs: 2, BufDepth: 1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestTopologyHelpers(t *testing.T) {
	c := Config{K: 4, VCs: 2, BufDepth: 8}
	if c.Nodes() != 16 {
		t.Error("Nodes wrong")
	}
	x, y := c.XY(7)
	if x != 3 || y != 1 {
		t.Errorf("XY(7) = %d,%d", x, y)
	}
	if c.NodeAt(3, 1) != 7 {
		t.Error("NodeAt wrong")
	}
	if c.Hops(0, 15) != 6 {
		t.Errorf("Hops(0,15) = %d, want 6", c.Hops(0, 15))
	}
	// XY routing goes X first.
	if p := c.routePort(0, 3); p != East {
		t.Errorf("routePort(0,3) = %v, want E", p)
	}
	if p := c.routePort(3, 15); p != South {
		t.Errorf("routePort(3,15) = %v, want S", p)
	}
	if p := c.routePort(5, 5); p != Local {
		t.Errorf("routePort(5,5) = %v, want L", p)
	}
	if c.neighbor(0, West) != -1 || c.neighbor(0, North) != -1 {
		t.Error("edge neighbors should be -1")
	}
	if c.neighbor(0, East) != 1 || c.neighbor(0, South) != 4 {
		t.Error("interior neighbors wrong")
	}
	for _, p := range []Port{East, West, North, South} {
		if p.opposite().opposite() != p {
			t.Errorf("opposite not involutive for %v", p)
		}
	}
}

func TestPortAndClassStrings(t *testing.T) {
	if East.String() != "E" || Local.String() != "L" || Port(9).String() != "?" {
		t.Error("Port strings wrong")
	}
	if ClassRequest.String() != "request" || ClassResponse.String() != "response" ||
		ClassCoherence.String() != "coherence" || Class(9).String() == "" {
		t.Error("Class strings wrong")
	}
}

func TestFlitsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 8: 2, 9: 3, 17: 4, 64: 9}
	for bytes, want := range cases {
		if got := flitsFor(bytes); got != want {
			t.Errorf("flitsFor(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestSingleControlPacketDelivery(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	var got *Packet
	n.OnEject = func(node int, p *Packet) {
		if node != 15 {
			t.Errorf("ejected at node %d, want 15", node)
		}
		got = p
	}
	p := NewControlPacket(1, 0, 15, ClassRequest)
	n.Inject(p)
	if !n.RunUntilQuiescent(1000) {
		t.Fatal("network did not drain")
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Hops != 7 {
		t.Errorf("Hops = %d, want 7 (6 links + ejection router)", got.Hops)
	}
	lat := got.EjectCycle - got.InjectCycle
	// 1 injection + 3 cycles per router on 7 routers = 22-ish; assert a
	// tight deterministic band.
	if lat < 15 || lat > 30 {
		t.Errorf("zero-load latency = %d, outside [15,30]", lat)
	}
}

func TestZeroLoadLatencyMonotonicInDistance(t *testing.T) {
	lat := func(dst int) uint64 {
		n := mustNet(t, DefaultConfig())
		var e uint64
		n.OnEject = func(_ int, p *Packet) { e = p.EjectCycle - p.InjectCycle }
		n.Inject(NewControlPacket(1, 0, dst, ClassRequest))
		if !n.RunUntilQuiescent(1000) {
			t.Fatal("no drain")
		}
		return e
	}
	l1, l2, l3 := lat(1), lat(3), lat(15)
	if !(l1 < l2 && l2 < l3) {
		t.Errorf("latency not monotonic: %d %d %d", l1, l2, l3)
	}
}

func TestDataPacketSerialization(t *testing.T) {
	// A 9-flit data packet takes ~8 extra cycles vs a 1-flit packet on the
	// same path.
	run := func(data bool) uint64 {
		n := mustNet(t, DefaultConfig())
		var e uint64
		n.OnEject = func(_ int, p *Packet) { e = p.EjectCycle - p.InjectCycle }
		if data {
			n.Inject(NewDataPacket(1, 0, 5, compressibleBlock(1), false))
		} else {
			n.Inject(NewControlPacket(1, 0, 5, ClassRequest))
		}
		if !n.RunUntilQuiescent(2000) {
			t.Fatal("no drain")
		}
		return e
	}
	dc, dd := run(false), run(true)
	if dd < dc+7 || dd > dc+12 {
		t.Errorf("data packet latency %d vs control %d: serialization off", dd, dc)
	}
}

func TestLocalLoopback(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	delivered := false
	n.OnEject = func(node int, p *Packet) { delivered = node == 3 }
	n.Inject(NewControlPacket(1, 3, 3, ClassRequest))
	if !delivered {
		t.Error("src==dst should deliver immediately via NI loopback")
	}
}

func TestInjectPanicsOnBadNodes(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Inject(NewControlPacket(1, 0, 99, ClassRequest))
}

func TestManyPacketsConservation(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	ejected := 0
	n.OnEject = func(_ int, _ *Packet) { ejected++ }
	const N = 400
	id := uint64(0)
	for i := 0; i < N; i++ {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		id++
		if i%3 == 0 {
			n.Inject(NewDataPacket(id, src, dst, compressibleBlock(int64(i)), false))
		} else {
			n.Inject(NewControlPacket(id, src, dst, ClassRequest))
		}
		if i%4 == 3 {
			n.Step()
		}
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("network did not drain: possible deadlock")
	}
	if ejected != N {
		t.Errorf("ejected %d packets, want %d", ejected, N)
	}
	s := n.Stats()
	if s.Injected != N || s.Ejected != N {
		t.Errorf("stats injected/ejected = %d/%d, want %d", s.Injected, s.Ejected, N)
	}
	if s.PacketLatency.N() != N {
		t.Error("latency samples missing")
	}
}

// discoConfig builds a 4x4 DISCO network with the delta algorithm.
func discoConfig() Config {
	cfg := DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	return cfg
}

func TestDiscoCompressionUnderCongestion(t *testing.T) {
	// Many bank->memory-controller style packets (uncompressed, want
	// compressed at dst is bank-direction; here: srcs all over send data
	// packets WantCompressedAtDst=true to one hot node => congestion at
	// the column, DISCO should compress some packets in flight.
	cfg := discoConfig()
	n := mustNet(t, cfg)
	origin := map[uint64][]byte{}
	ej := 0
	n.OnEject = func(node int, p *Packet) {
		ej++
		// Functional integrity: whatever form it is in, the content must
		// match what was sent.
		var blk []byte
		if p.Compressed {
			var err error
			blk, err = cfg.Disco.Algorithm.Decompress(p.Comp)
			if err != nil {
				t.Fatalf("packet %d: corrupt payload: %v", p.ID, err)
			}
		} else {
			blk = p.Block
		}
		if !bytes.Equal(blk, origin[p.ID]) {
			t.Fatalf("packet %d: payload corrupted in flight", p.ID)
		}
	}
	id := uint64(0)
	for wave := 0; wave < 30; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			blk := compressibleBlock(int64(id))
			origin[id] = blk
			n.Inject(NewDataPacket(id, src, 5, blk, true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(200000) {
		t.Fatal("network did not drain")
	}
	s := n.Stats()
	if int(s.Ejected) != ej || ej != int(id) {
		t.Fatalf("ejected %d, want %d", ej, id)
	}
	if s.Compressions == 0 {
		t.Error("congested DISCO network should compress some packets")
	}
}

func TestDiscoDecompressionTowardCore(t *testing.T) {
	// Compressed packets (as read from a compressed LLC) heading to a
	// "core" (WantCompressedAtDst=false) under congestion: DISCO should
	// decompress some in flight; all must eject with intact content.
	cfg := discoConfig()
	alg := cfg.Disco.Algorithm
	n := mustNet(t, cfg)
	origin := map[uint64][]byte{}
	decompressedInFlight := 0
	wrongForm := 0
	n.OnEject = func(node int, p *Packet) {
		if !p.Compressed {
			decompressedInFlight++
			if !bytes.Equal(p.Block, origin[p.ID]) {
				t.Fatalf("packet %d corrupted", p.ID)
			}
		} else {
			wrongForm++
			blk, err := alg.Decompress(p.Comp)
			if err != nil || !bytes.Equal(blk, origin[p.ID]) {
				t.Fatalf("packet %d corrupted (compressed form)", p.ID)
			}
		}
	}
	id := uint64(0)
	for wave := 0; wave < 30; wave++ {
		for src := 0; src < 16; src++ {
			if src == 10 {
				continue
			}
			id++
			blk := compressibleBlock(int64(id) * 7)
			origin[id] = blk
			c := alg.Compress(blk)
			n.Inject(NewCompressedDataPacket(id, src, 10, blk, c, false))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(200000) {
		t.Fatal("no drain")
	}
	s := n.Stats()
	if s.Decompressions == 0 {
		t.Error("expected in-flight decompressions under congestion")
	}
	if decompressedInFlight == 0 {
		t.Error("no packet ejected in decompressed form")
	}
	if uint64(wrongForm) != s.EjectedWrongForm {
		t.Errorf("wrong-form count mismatch: %d vs stat %d", wrongForm, s.EjectedWrongForm)
	}
}

func TestDiscoIncompressiblePacketsStillFlow(t *testing.T) {
	cfg := discoConfig()
	n := mustNet(t, cfg)
	ej := 0
	n.OnEject = func(_ int, p *Packet) {
		ej++
		if p.Compressed {
			t.Error("random payload should never arrive compressed")
		}
	}
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 1; src < 16; src++ {
			id++
			n.Inject(NewDataPacket(id, src, 0, randomBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(200000) {
		t.Fatal("no drain")
	}
	if uint64(ej) != id {
		t.Errorf("ejected %d, want %d", ej, id)
	}
}

func TestDiscoReducesFlitTrafficOnCompressibleFlow(t *testing.T) {
	// Same workload with and without DISCO: DISCO must move fewer
	// flit-hops (compressed packets are shorter).
	run := func(useDisco bool) uint64 {
		cfg := DefaultConfig()
		if useDisco {
			dc := disco.DefaultConfig(compress.NewDelta())
			cfg.Disco = &dc
		}
		n := mustNet(t, cfg)
		id := uint64(0)
		for wave := 0; wave < 40; wave++ {
			for src := 0; src < 16; src++ {
				if src == 5 {
					continue
				}
				id++
				n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
			}
			n.Step()
		}
		if !n.RunUntilQuiescent(400000) {
			t.Fatal("no drain")
		}
		return n.Stats().FlitHops
	}
	plain, withDisco := run(false), run(true)
	if withDisco >= plain {
		t.Errorf("DISCO flit-hops %d >= plain %d; compression saved no traffic", withDisco, plain)
	}
}

func TestSeparateFlitDisabledBlocksNineFlitCompression(t *testing.T) {
	// With SeparateFlit off and 8-deep VCs, a 9-flit packet can never be
	// wholly resident, so compression count must be zero (Section 3.3A).
	cfg := discoConfig()
	cfg.Disco.SeparateFlit = false
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if c := n.Stats().Compressions; c != 0 {
		t.Errorf("whole-packet-only mode compressed %d packets with 8-deep VCs", c)
	}
}

func TestSeparateFlitDisabledDeepBuffersCompress(t *testing.T) {
	// Same but with 12-deep VCs: whole packets fit, compression resumes
	// (the paper's "deep input buffers" alternative).
	cfg := discoConfig()
	cfg.Disco.SeparateFlit = false
	cfg.BufDepth = 12
	n := mustNet(t, cfg)
	id := uint64(0)
	for wave := 0; wave < 20; wave++ {
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			id++
			n.Inject(NewDataPacket(id, src, 5, compressibleBlock(int64(id)), true))
		}
		n.Step()
	}
	if !n.RunUntilQuiescent(400000) {
		t.Fatal("no drain")
	}
	if c := n.Stats().Compressions; c == 0 {
		t.Error("deep buffers should allow whole-packet compression")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		cfg := discoConfig()
		n := mustNet(t, cfg)
		rng := rand.New(rand.NewSource(77))
		id := uint64(0)
		for i := 0; i < 300; i++ {
			id++
			src, dst := rng.Intn(16), rng.Intn(16)
			n.Inject(NewDataPacket(id, src, dst, compressibleBlock(int64(i)), rng.Intn(2) == 0))
			n.Step()
		}
		n.RunUntilQuiescent(400000)
		s := n.Stats()
		return s.FlitHops, s.Compressions, uint64(s.PacketLatency.Mean() * 1000)
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("simulation is not deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestQuiescentInitially(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	if !n.Quiescent() {
		t.Error("fresh network should be quiescent")
	}
	n.Inject(NewControlPacket(1, 0, 1, ClassRequest))
	if n.Quiescent() {
		t.Error("network with queued packet should not be quiescent")
	}
}

func TestInjectQueueLen(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	for i := 0; i < 3; i++ {
		n.Inject(NewControlPacket(uint64(i+1), 0, 1, ClassRequest))
	}
	if got := n.InjectQueueLen(0); got != 3 {
		t.Errorf("InjectQueueLen = %d, want 3", got)
	}
	n.Step()
	// The 1-flit head packet finished streaming within the step.
	if got := n.InjectQueueLen(0); got != 2 {
		t.Errorf("after step InjectQueueLen = %d, want 2", got)
	}
}

func TestPacketFormHelpers(t *testing.T) {
	blk := compressibleBlock(1)
	p := NewDataPacket(1, 0, 1, blk, true)
	if p.FlitCount != 9 || p.PayloadFlits() != 8 {
		t.Errorf("uncompressed data packet flits = %d", p.FlitCount)
	}
	if p.InWantedForm() {
		t.Error("uncompressed packet wanting compressed is in wrong form")
	}
	alg := compress.NewDelta()
	c := alg.Compress(blk)
	p.ApplyCompression(c)
	if !p.Compressed || p.FlitCount != flitsFor(c.SizeBytes()) {
		t.Error("ApplyCompression wrong")
	}
	if !p.InWantedForm() {
		t.Error("compressed packet wanting compressed should be in form")
	}
	p.ApplyDecompression(blk)
	if p.Compressed || p.FlitCount != 9 || p.PayloadBytes != 64 {
		t.Error("ApplyDecompression wrong")
	}
	ctrl := NewControlPacket(2, 0, 1, ClassCoherence)
	if !ctrl.InWantedForm() {
		t.Error("control packets are always in wanted form")
	}
}

func TestNewDataPacketPanicsOnShortBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDataPacket(1, 0, 1, make([]byte, 3), false)
}

func TestHotspotStressNoDeadlockProperty(t *testing.T) {
	// Heavy randomized mixed traffic against every flow-control corner:
	// everything must drain and every payload must survive.
	for _, seed := range []int64{1, 2, 3} {
		cfg := discoConfig()
		n := mustNet(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		origin := map[uint64][]byte{}
		alg := cfg.Disco.Algorithm
		n.OnEject = func(_ int, p *Packet) {
			ref, okRef := origin[p.ID]
			if !okRef {
				return // control packet
			}
			blk := p.Block
			if p.Compressed {
				var err error
				blk, err = alg.Decompress(p.Comp)
				if err != nil {
					t.Fatalf("seed %d pkt %d corrupt", seed, p.ID)
				}
			}
			if !bytes.Equal(blk, ref) {
				t.Fatalf("seed %d pkt %d payload mismatch", seed, p.ID)
			}
		}
		id := uint64(0)
		for i := 0; i < 600; i++ {
			id++
			src, dst := rng.Intn(16), rng.Intn(16)
			switch rng.Intn(4) {
			case 0:
				n.Inject(NewControlPacket(id, src, dst, ClassRequest))
			case 1:
				blk := compressibleBlock(int64(id))
				origin[id] = blk
				n.Inject(NewDataPacket(id, src, dst, blk, rng.Intn(2) == 0))
			case 2:
				blk := randomBlock(int64(id))
				origin[id] = blk
				n.Inject(NewDataPacket(id, src, dst, blk, true))
			default:
				blk := compressibleBlock(int64(id) * 3)
				origin[id] = blk
				c := alg.Compress(blk)
				n.Inject(NewCompressedDataPacket(id, src, dst, blk, c, rng.Intn(2) == 1))
			}
			if rng.Intn(2) == 0 {
				n.Step()
			}
		}
		if !n.RunUntilQuiescent(500000) {
			t.Fatalf("seed %d: network did not drain (deadlock?)", seed)
		}
		s := n.Stats()
		if s.Injected != s.Ejected {
			t.Fatalf("seed %d: conservation violated %d != %d", seed, s.Injected, s.Ejected)
		}
	}
}

func TestYXRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = YX
	if p := cfg.routePort(0, 5); p != South { // (0,0)->(1,1): Y first
		t.Errorf("YX routePort(0,5) = %v, want S", p)
	}
	if p := cfg.routePort(4, 5); p != East { // same row: X
		t.Errorf("YX routePort(4,5) = %v, want E", p)
	}
	n := mustNet(t, cfg)
	delivered := false
	n.OnEject = func(node int, _ *Packet) { delivered = node == 15 }
	n.Inject(NewControlPacket(1, 0, 15, ClassRequest))
	if !n.RunUntilQuiescent(1000) || !delivered {
		t.Error("YX routing failed to deliver")
	}
}

func TestLinkUtilization(t *testing.T) {
	n := mustNet(t, DefaultConfig())
	max0, mean0 := n.LinkUtilization()
	if max0 != 0 || mean0 != 0 {
		t.Error("fresh network should have zero utilization")
	}
	g := NewTrafficGen(n, DefaultTraffic())
	for i := 0; i < 3000; i++ {
		g.Step()
		n.Step()
	}
	n.RunUntilQuiescent(100000)
	max, mean := n.LinkUtilization()
	if !(max > 0 && mean > 0 && max >= mean && max <= 1.0) {
		t.Errorf("utilization out of range: max=%.3f mean=%.3f", max, mean)
	}
}

func TestWestFirstRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = WestFirst
	// Westbound destinations are deterministic.
	if ps := cfg.adaptivePorts(5, 4); len(ps) != 1 || ps[0] != West {
		t.Errorf("westbound adaptivePorts = %v", ps)
	}
	// East+south destinations offer two choices.
	if ps := cfg.adaptivePorts(0, 5); len(ps) != 2 {
		t.Errorf("diagonal adaptivePorts = %v", ps)
	}
	if Routing(9).String() == "" || WestFirst.String() != "west-first" {
		t.Error("Routing strings wrong")
	}
	// Functional: heavy diagonal traffic drains and balances over both
	// minimal paths.
	n := mustNet(t, cfg)
	ej := 0
	n.OnEject = func(_ int, _ *Packet) { ej++ }
	id := uint64(0)
	for wave := 0; wave < 50; wave++ {
		id++
		n.Inject(NewDataPacket(id, 0, 15, compressibleBlock(int64(id)), false))
		n.Step()
	}
	if !n.RunUntilQuiescent(200000) {
		t.Fatal("west-first did not drain")
	}
	if uint64(ej) != id {
		t.Errorf("delivered %d of %d", ej, id)
	}
	// Both south-out of router 0 and east-out must have carried flits
	// (adaptive spreading); strictly XY would use East only at router 0.
	r0 := n.Routers[0]
	if r0.linkFlits[East] == 0 || r0.linkFlits[South] == 0 {
		t.Errorf("no adaptive spreading: east=%d south=%d", r0.linkFlits[East], r0.linkFlits[South])
	}
}

func TestWestFirstConservationUnderRandomTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = WestFirst
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	n := mustNet(t, cfg)
	rng := rand.New(rand.NewSource(13))
	id := uint64(0)
	for i := 0; i < 800; i++ {
		id++
		src, dst := rng.Intn(16), rng.Intn(16)
		n.Inject(NewDataPacket(id, src, dst, compressibleBlock(int64(id)), rng.Intn(2) == 0))
		if i%2 == 0 {
			n.Step()
		}
	}
	if !n.RunUntilQuiescent(500000) {
		t.Fatal("west-first+DISCO deadlocked")
	}
	s := n.Stats()
	if s.Injected != s.Ejected {
		t.Error("conservation violated")
	}
}
