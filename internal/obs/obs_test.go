package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/metrics"
)

func TestProfilerAccumulation(t *testing.T) {
	p := NewPhaseProfiler(2)
	start := Clock()
	p.Observe(0, PhaseEngine, start-1000) // pretend the stage started 1µs+ ago
	p.Observe(1, PhaseCommit, start-2000)
	p.AddStep()
	p.AddStep()

	if got := p.Steps(); got != 2 {
		t.Fatalf("Steps = %d, want 2", got)
	}
	if ns := p.PhaseNS(0, PhaseEngine); ns < 1000 {
		t.Errorf("lane 0 engine = %dns, want >= 1000", ns)
	}
	if ns := p.PhaseNS(1, PhaseCommit); ns < 2000 {
		t.Errorf("lane 1 commit = %dns, want >= 2000", ns)
	}
	if ns := p.TotalNS(PhaseEngine); ns != p.PhaseNS(0, PhaseEngine) {
		t.Errorf("TotalNS(engine) = %d, want lane-0 value %d", ns, p.PhaseNS(0, PhaseEngine))
	}

	// Out-of-range lanes fold into lane 0 instead of writing out of bounds.
	before := p.PhaseNS(0, PhaseSA)
	p.Observe(7, PhaseSA, start-500)
	if p.PhaseNS(0, PhaseSA) <= before {
		t.Error("out-of-range lane did not fold into lane 0")
	}

	p.Reset()
	if p.Steps() != 0 || p.TotalNS(PhaseEngine) != 0 {
		t.Error("Reset did not zero the accumulators")
	}
}

func TestProfilerClamp(t *testing.T) {
	if got := NewPhaseProfiler(0).Workers(); got != 1 {
		t.Errorf("NewPhaseProfiler(0).Workers() = %d, want 1", got)
	}
	if got := NewPhaseProfiler(-3).Workers(); got != 1 {
		t.Errorf("NewPhaseProfiler(-3).Workers() = %d, want 1", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := []string{"engine", "sa", "alloc", "commit", "barrier", "other"}
	phases := Phases()
	if len(phases) != int(NumPhases) {
		t.Fatalf("Phases() has %d entries, want %d", len(phases), NumPhases)
	}
	for i, ph := range phases {
		if ph.String() != want[i] {
			t.Errorf("phase %d String = %q, want %q", i, ph, want[i])
		}
	}
	if got := Phase(200).String(); got != "phase(?)" {
		t.Errorf("unknown phase String = %q", got)
	}
}

func TestReportAndScalingCSV(t *testing.T) {
	p := NewPhaseProfiler(2)
	base := Clock()
	p.Observe(0, PhaseEngine, base-4_000_000)
	p.Observe(1, PhaseBarrier, base-1_000_000)
	for i := 0; i < 100; i++ {
		p.AddStep()
	}
	r := p.Report()
	if r.Steps != 100 || r.Workers != 2 {
		t.Fatalf("report = %d steps / %d workers, want 100/2", r.Steps, r.Workers)
	}
	if r.PhaseNS(PhaseEngine) < 4_000_000 {
		t.Errorf("engine ns = %d, want >= 4ms", r.PhaseNS(PhaseEngine))
	}
	if r.TotalNS() < r.PhaseNS(PhaseEngine)+r.PhaseNS(PhaseBarrier) {
		t.Error("TotalNS smaller than the sum of two observed phases")
	}
	if r.CyclesPerSec() <= 0 {
		t.Error("CyclesPerSec not positive for a live run")
	}

	s := r.String()
	for _, want := range []string{"cycles/sec", "engine", "barrier", "per-lane"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}

	var csv strings.Builder
	if err := WriteScalingCSV(&csv, []int{2}, []Report{r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("scaling CSV has %d lines, want 2:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "workers,cycles,elapsed_ns,cycles_per_sec,engine_ns") {
		t.Errorf("bad CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2,100,") {
		t.Errorf("bad CSV row %q", lines[1])
	}
	if err := WriteScalingCSV(io.Discard, []int{1, 2}, []Report{r}); err == nil {
		t.Error("mismatched workers/reports lengths not rejected")
	}
}

func TestAttachMetricsRendersPrometheus(t *testing.T) {
	p := NewPhaseProfiler(2)
	p.Observe(0, PhaseEngine, Clock()-1_000_000)
	p.AddStep()
	reg := metrics.NewRegistry()
	p.AttachMetrics(reg)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf, Namespace); err != nil {
		t.Fatal(err)
	}
	txt := buf.String()
	for _, want := range []string{
		"disco_obs_profile_steps 1",
		"# TYPE disco_obs_profile_cycles_per_sec gauge",
		"disco_obs_profile_phase_engine_seconds",
		"disco_obs_profile_lane_1_barrier_seconds",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("exposition missing %q:\n%s", want, txt)
		}
	}
	if err := metrics.CheckPrometheusText(strings.NewReader(txt)); err != nil {
		t.Errorf("profiler exposition fails lint: %v", err)
	}
}

func TestReporter(t *testing.T) {
	var buf strings.Builder
	r := NewReporter(&buf, "discosim")
	r.Infof("simrun: %d cells", 7)
	r.Warnf("manifest not saved: %v", "disk full")
	r.Block("stall snapshot", "line one\nline two\n")
	r.Block("empty", "")
	got := buf.String()
	want := "discosim: simrun: 7 cells\n" +
		"discosim: warning: manifest not saved: disk full\n" +
		"discosim: stall snapshot\n  line one\n  line two\n" +
		"discosim: empty\n"
	if got != want {
		t.Errorf("reporter output:\n%q\nwant:\n%q", got, want)
	}

	var nilRep *Reporter
	nilRep.Infof("dropped")
	nilRep.Warnf("dropped")
	nilRep.Block("dropped", "body")
}

func TestServerPublishedEndpoints(t *testing.T) {
	s := NewServer()

	// Before anything is published, /status degrades to an empty object.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if got := rec.Body.String(); got != "{}\n" {
		t.Errorf("empty /status = %q", got)
	}

	if err := s.PublishStatus(map[string]any{"cycle": 42, "mode": "disco"}); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.Scope("noc").Counter("injected").Add(9)
	if err := s.PublishMetricsExport(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if doc["cycle"].(float64) != 42 {
		t.Errorf("/status cycle = %v", doc["cycle"])
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "disco_noc_injected 9") {
		t.Errorf("/metrics missing published counter:\n%s", body)
	}
	if err := metrics.CheckPrometheusText(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics fails lint: %v", err)
	}
}

func TestServerLiveOverrides(t *testing.T) {
	s := NewServer()
	if err := s.PublishStatus(map[string]int{"published": 1}); err != nil {
		t.Fatal(err)
	}
	s.SetLiveStatus(func() any { return map[string]int{"live": 2} })
	s.SetLiveMetrics(func() []byte {
		return []byte("# TYPE disco_live_cells counter\ndisco_live_cells 3\n")
	})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if !strings.Contains(rec.Body.String(), "\"live\": 2") {
		t.Errorf("live status did not take precedence: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "disco_live_cells 3") {
		t.Errorf("live metrics not appended: %s", rec.Body.String())
	}
	if err := metrics.CheckPrometheusText(strings.NewReader(rec.Body.String())); err != nil {
		t.Errorf("combined /metrics fails lint: %v", err)
	}
}

func TestServerStartServesOverTCP(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", s.Addr(), addr)
	}

	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status over TCP: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
