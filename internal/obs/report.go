package obs

import (
	"fmt"
	"io"
	"strings"

	"github.com/disco-sim/disco/internal/metrics"
)

// Report is an immutable sample of a PhaseProfiler: per-lane per-phase
// nanoseconds plus the step count and elapsed wall clock, taken at one
// instant so the derived views (String, CSV row, metrics) agree with
// each other.
type Report struct {
	Workers   int
	Steps     uint64
	ElapsedNS int64
	// LaneNS[lane][phase] is accumulated nanoseconds.
	LaneNS [][NumPhases]int64
}

// Report samples the profiler.
func (p *PhaseProfiler) Report() Report {
	r := Report{
		Workers:   len(p.lanes),
		Steps:     p.steps.Load(),
		ElapsedNS: p.Elapsed(),
		LaneNS:    make([][NumPhases]int64, len(p.lanes)),
	}
	for i := range p.lanes {
		for ph := range p.lanes[i].ns {
			r.LaneNS[i][ph] = p.lanes[i].ns[ph].Load()
		}
	}
	return r
}

// PhaseNS sums one phase across all lanes.
func (r Report) PhaseNS(ph Phase) int64 {
	var sum int64
	for i := range r.LaneNS {
		sum += r.LaneNS[i][ph]
	}
	return sum
}

// TotalNS sums every phase across all lanes (total attributed work,
// which exceeds elapsed wall clock when compute shards overlap).
func (r Report) TotalNS() int64 {
	var sum int64
	for _, ph := range Phases() {
		sum += r.PhaseNS(ph)
	}
	return sum
}

// CyclesPerSec is the headline throughput: simulated cycles per
// wall-clock second.
func (r Report) CyclesPerSec() float64 {
	if r.ElapsedNS <= 0 {
		return 0
	}
	return float64(r.Steps) / (float64(r.ElapsedNS) / 1e9)
}

// String renders the human report: headline line, then one row per
// phase with total milliseconds and share of attributed time, then a
// per-lane matrix when more than one lane was active.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d cycles in %.3fs (%.0f cycles/sec, %d worker(s))\n",
		r.Steps, float64(r.ElapsedNS)/1e9, r.CyclesPerSec(), r.Workers)
	total := r.TotalNS()
	for _, ph := range Phases() {
		ns := r.PhaseNS(ph)
		share := 0.0
		if total > 0 {
			share = 100 * float64(ns) / float64(total)
		}
		fmt.Fprintf(&b, "  %-8s %10.3fms %6.2f%%\n", ph, float64(ns)/1e6, share)
	}
	if r.Workers > 1 {
		fmt.Fprintf(&b, "  per-lane (ms):")
		for _, ph := range Phases() {
			fmt.Fprintf(&b, " %s", ph)
		}
		b.WriteByte('\n')
		for i := range r.LaneNS {
			fmt.Fprintf(&b, "    lane %d:", i)
			for _, ph := range Phases() {
				fmt.Fprintf(&b, " %.1f", float64(r.LaneNS[i][ph])/1e6)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ScalingHeader is the CSV header for scaling-curve artifacts; rows
// come from Report.ScalingRow.
func ScalingHeader() string {
	cols := []string{"workers", "cycles", "elapsed_ns", "cycles_per_sec"}
	for _, ph := range Phases() {
		cols = append(cols, ph.String()+"_ns")
	}
	return strings.Join(cols, ",")
}

// ScalingRow renders one CSV row for a sweep cell run at the given
// worker count.
func (r Report) ScalingRow(workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d,%d,%d,%.1f", workers, r.Steps, r.ElapsedNS, r.CyclesPerSec())
	for _, ph := range Phases() {
		fmt.Fprintf(&b, ",%d", r.PhaseNS(ph))
	}
	return b.String()
}

// WriteScalingCSV writes a full scaling-curve artifact: the header and
// one row per (workers, report) pair.
func WriteScalingCSV(w io.Writer, workers []int, reports []Report) error {
	if len(workers) != len(reports) {
		return fmt.Errorf("obs: %d worker counts but %d reports", len(workers), len(reports))
	}
	if _, err := io.WriteString(w, ScalingHeader()+"\n"); err != nil {
		return err
	}
	for i, r := range reports {
		if _, err := io.WriteString(w, r.ScalingRow(workers[i])+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// AttachMetrics registers the profiler's live state on a metrics
// registry under an "obs" scope. The registry MUST be a dedicated
// observability registry, never the simulation's artifact registry:
// wall-clock values are nondeterministic by nature and would break the
// byte-identity of -metrics exports. The /metrics endpoint serves both
// registries side by side.
func (p *PhaseProfiler) AttachMetrics(reg *metrics.Registry) {
	s := reg.Scope("obs", "profile")
	s.CounterFunc("steps", p.Steps)
	s.GaugeFunc("elapsed_seconds", func() float64 { return float64(p.Elapsed()) / 1e9 })
	s.GaugeFunc("cycles_per_sec", func() float64 { return p.Report().CyclesPerSec() })
	for _, ph := range Phases() {
		ph := ph
		s.Scope("phase", ph.String()).GaugeFunc("seconds", func() float64 {
			return float64(p.TotalNS(ph)) / 1e9
		})
	}
	for i := range p.lanes {
		i := i
		ls := s.Scope("lane", fmt.Sprint(i))
		for _, ph := range Phases() {
			ph := ph
			ls.Scope(ph.String()).GaugeFunc("seconds", func() float64 {
				return float64(p.PhaseNS(i, ph)) / 1e9
			})
		}
	}
}
