// Package obs is the simulator's runtime observability layer: a
// stage-level wall-clock profiler for the two-phase cycle engine, a
// structured stderr reporter, and an HTTP endpoint serving metrics and
// live status.
//
// The package's hard invariant is that it is purely observational:
// nothing here may feed back into simulation state, so artifacts
// (traces, stats, metrics exports) are byte-identical with observability
// on or off — the golden gates in obs_test and internal/noc enforce it.
//
// obs is the repo's one sanctioned wall-clock island. The nodeterminism
// analyzer bans time.Now from every sim-core package but exempts this
// one: profiler samples are written to per-worker lanes (write-local, no
// cross-goroutine contention beyond atomic adds) and only ever READ at
// commit boundaries, so wall-clock values cannot perturb the simulated
// schedule. The phasesafety analyzer closes the loophole from the other
// side: calling into obs from compute-phase router code is a finding —
// sampling belongs to the Step driver, never to sharded compute.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one timed region of a Network.Step — the pipeline
// stages of the two-phase engine plus the synchronization they need.
type Phase uint8

// Profiled phases. Compute phases (Engine, SA, Alloc) are attributed
// per worker on the parallel engine; Commit, Barrier and Other always
// accrue to lane 0 (the Step driver).
const (
	// PhaseEngine is the DISCO engine-service compute stage.
	PhaseEngine Phase = iota
	// PhaseSA is the switch-allocation compute stage.
	PhaseSA
	// PhaseAlloc is the fused VA+RC+DISCO-arbitration compute stage.
	PhaseAlloc
	// PhaseCommit covers the serial commit halves (SA commit, arb
	// commit) and the canonical-order staged-trace flushes.
	PhaseCommit
	// PhaseBarrier is time the Step driver spends waiting for pool
	// workers to drain a compute stage.
	PhaseBarrier
	// PhaseOther is everything else in a Step: link-arrival prologue,
	// NI injection epilogue, metrics sampling.
	PhaseOther
	// NumPhases bounds the phase space.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseEngine:
		return "engine"
	case PhaseSA:
		return "sa"
	case PhaseAlloc:
		return "alloc"
	case PhaseCommit:
		return "commit"
	case PhaseBarrier:
		return "barrier"
	case PhaseOther:
		return "other"
	}
	return "phase(?)"
}

// Phases lists every phase in display order.
func Phases() []Phase {
	return []Phase{PhaseEngine, PhaseSA, PhaseAlloc, PhaseCommit, PhaseBarrier, PhaseOther}
}

// Clock returns a monotonic wall-clock stamp in nanoseconds. It is the
// sampling primitive the noc hooks use so that no sim-core package ever
// touches the time package directly.
func Clock() int64 { return int64(time.Since(clockEpoch)) }

// clockEpoch anchors Clock; only durations (differences of stamps) are
// ever used, so the epoch itself is arbitrary.
var clockEpoch = time.Now()

// lane is one worker's phase accumulators. The padding keeps adjacent
// workers' hot counters off each other's cache lines: lanes are written
// concurrently by different pool goroutines during a sharded stage.
type lane struct {
	ns [NumPhases]atomic.Int64
	_  [64]byte
}

// PhaseProfiler accumulates wall-clock nanoseconds per pipeline phase
// per worker. Writes are lane-local atomic adds (safe under the pool's
// concurrency and cheap enough for per-stage sampling); reads — Report,
// the HTTP status probe — may happen from any goroutine at any time and
// see a consistent-enough live picture, with exact totals guaranteed at
// commit boundaries (the pool barrier orders every lane write before the
// driver continues).
//
// A nil *PhaseProfiler is inert: the noc hooks check for nil before
// taking any stamp, so an unprofiled run pays one predictable branch per
// stage and nothing else.
type PhaseProfiler struct {
	lanes []lane
	steps atomic.Uint64
	start int64
}

// NewPhaseProfiler returns a profiler with workers lanes (lane 0 is the
// Step driver; pool workers use 1..workers-1). workers < 1 is clamped
// to 1.
func NewPhaseProfiler(workers int) *PhaseProfiler {
	if workers < 1 {
		workers = 1
	}
	return &PhaseProfiler{lanes: make([]lane, workers), start: Clock()}
}

// Workers returns the lane count.
func (p *PhaseProfiler) Workers() int { return len(p.lanes) }

// Observe adds the elapsed time since the start stamp to (lane, phase).
// Lanes beyond the configured worker count fold into lane 0 so a
// worker-count change after attachment cannot write out of bounds.
func (p *PhaseProfiler) Observe(lane int, phase Phase, start int64) {
	if lane < 0 || lane >= len(p.lanes) {
		lane = 0
	}
	p.lanes[lane].ns[phase].Add(Clock() - start)
}

// AddStep counts one completed Network.Step.
func (p *PhaseProfiler) AddStep() { p.steps.Add(1) }

// Steps returns the completed-step count.
func (p *PhaseProfiler) Steps() uint64 { return p.steps.Load() }

// Elapsed returns wall-clock nanoseconds since construction (or the
// last Reset).
func (p *PhaseProfiler) Elapsed() int64 { return Clock() - p.start }

// PhaseNS returns the accumulated nanoseconds for (lane, phase).
func (p *PhaseProfiler) PhaseNS(lane int, phase Phase) int64 {
	if lane < 0 || lane >= len(p.lanes) {
		return 0
	}
	return p.lanes[lane].ns[phase].Load()
}

// TotalNS sums a phase over all lanes.
func (p *PhaseProfiler) TotalNS(phase Phase) int64 {
	var sum int64
	for i := range p.lanes {
		sum += p.lanes[i].ns[phase].Load()
	}
	return sum
}

// Reset zeroes every accumulator and restarts the elapsed clock (used
// between scaling-curve cells so one profiler can serve a sweep).
func (p *PhaseProfiler) Reset() {
	for i := range p.lanes {
		for ph := range p.lanes[i].ns {
			p.lanes[i].ns[ph].Store(0)
		}
	}
	p.steps.Store(0)
	p.start = Clock()
}
