package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Reporter is the single structured channel for human-facing diagnostic
// output. discosim used to hand-roll three stderr formats (the simrun
// cache-stats line, the stall-snapshot dump, ad-hoc error lines); every
// such message now flows through one Reporter so the output shares a
// prefix, single-line messages and multi-line blocks render uniformly,
// and concurrent writers (the scheduler's drain goroutines, deferred
// summaries) cannot interleave mid-line.
type Reporter struct {
	mu  sync.Mutex
	w   io.Writer
	tag string
}

// NewReporter returns a reporter writing "tag: ..."-prefixed messages
// to w. A nil *Reporter is valid and discards everything, so callers
// can thread one through without nil checks at every site.
func NewReporter(w io.Writer, tag string) *Reporter {
	return &Reporter{w: w, tag: tag}
}

// Infof writes one prefixed line.
func (r *Reporter) Infof(format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = fmt.Fprintf(r.w, "%s: %s\n", r.tag, fmt.Sprintf(format, args...))
}

// Warnf writes one prefixed line marked as a warning — degraded but
// non-fatal conditions (a manifest that failed to save, a corrupt
// entry quarantined) that should stand out from progress chatter.
func (r *Reporter) Warnf(format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = fmt.Fprintf(r.w, "%s: warning: %s\n", r.tag, fmt.Sprintf(format, args...))
}

// Block writes a prefixed title line followed by the body, each body
// line indented two spaces. Used for multi-line payloads — the stall
// snapshot, the profiler table — so they read as one unit under the
// reporter's prefix.
func (r *Reporter) Block(title, body string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = fmt.Fprintf(r.w, "%s: %s\n", r.tag, title)
	body = strings.TrimRight(body, "\n")
	if body == "" {
		return
	}
	for _, line := range strings.Split(body, "\n") {
		_, _ = fmt.Fprintf(r.w, "  %s\n", line)
	}
}
