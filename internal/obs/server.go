package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"github.com/disco-sim/disco/internal/metrics"
)

// Server is the HTTP observability endpoint: /metrics (Prometheus text
// exposition), /status (live JSON), and /debug/pprof.
//
// Concurrency contract — the reason the endpoint cannot perturb or race
// the simulation:
//
//   - Boundary-published data (PublishStatus, PublishMetricsExport) is
//     snapshotted and pre-rendered by the SIMULATION goroutine at a
//     commit boundary, then swapped in through an atomic pointer.
//     Handlers only ever read immutable byte slices; they never touch
//     live sim state.
//   - Live data (SetLiveStatus, SetLiveMetrics) is rendered per request
//     on the HANDLER goroutine, so the closures must be internally
//     thread-safe. The two users are the profiler registry (atomic
//     lane counters) and simrun campaign stats (mutex-protected).
type Server struct {
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener
	done chan struct{}

	status  atomic.Pointer[[]byte] // published /status JSON
	promtxt atomic.Pointer[[]byte] // published /metrics exposition text

	liveStatus  atomic.Pointer[func() any]
	liveMetrics atomic.Pointer[func() []byte]
}

// Namespace is the Prometheus namespace every exposition family is
// prefixed with.
const Namespace = "disco"

// NewServer builds an unstarted server with its routes registered.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux(), done: make(chan struct{})}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Start listens on addr ("":0" picks a free port) and serves in a
// background goroutine. It returns the bound address, so callers that
// asked for :0 — the HTTP smoke tests — learn where to connect.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere useful to go — the endpoint is best-effort by design.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down and waits for the serve goroutine.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// ServeHTTP exposes the mux directly (handler-level tests hit it
// without a listener).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PublishStatus marshals v and swaps it in as the /status document.
// Call from the simulation goroutine at a commit boundary so v is a
// coherent picture (noc.Snapshot + campaign fields).
func (s *Server) PublishStatus(v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	s.status.Store(&data)
	return nil
}

// PublishMetricsExport renders already-taken registry exports as
// Prometheus text and swaps them in as the /metrics document. Call from
// the simulation goroutine at a commit boundary: the snapshots are
// taken there (coherent), and the handler serves the immutable bytes.
func (s *Server) PublishMetricsExport(exports ...metrics.Export) error {
	var buf []byte
	w := &appendWriter{buf: &buf}
	for _, ex := range exports {
		if err := metrics.WritePrometheusExport(w, Namespace, ex); err != nil {
			return err
		}
	}
	s.promtxt.Store(&buf)
	return nil
}

// SetLiveStatus installs a per-request /status builder for callers with
// no commit boundary to publish from (simrun campaigns). fn runs on the
// handler goroutine and must be thread-safe. It takes precedence over
// published status.
func (s *Server) SetLiveStatus(fn func() any) { s.liveStatus.Store(&fn) }

// SetLiveMetrics installs a per-request exposition-text appender whose
// output is served after any published text. fn runs on the handler
// goroutine and must be thread-safe.
func (s *Server) SetLiveMetrics(fn func() []byte) { s.liveMetrics.Store(&fn) }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if p := s.promtxt.Load(); p != nil {
		_, _ = w.Write(*p)
	}
	if fn := s.liveMetrics.Load(); fn != nil {
		_, _ = w.Write((*fn)())
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if fn := s.liveStatus.Load(); fn != nil {
		data, err := json.MarshalIndent((*fn)(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n'))
		return
	}
	if p := s.status.Load(); p != nil {
		_, _ = w.Write(*p)
		return
	}
	_, _ = w.Write([]byte("{}\n"))
}

// appendWriter adapts an append-to-slice sink to io.Writer.
type appendWriter struct{ buf *[]byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}
