// Package experiments regenerates every table and figure of the DISCO
// paper's evaluation (Section 4) on the Go reproduction platform:
//
//	Table 1 — compression-scheme parameters (latencies, measured ratios)
//	Fig. 5  — on-chip data access latency, delta compression, 4×4 CMP
//	Fig. 6  — the same with FPC and SC²
//	Fig. 7  — memory-subsystem energy, normalized to the no-compression
//	          baseline
//	Fig. 8  — scalability: 2×2 / 4×4 / 8×8 meshes
//	§4.3    — area overhead table
//
// Each experiment returns structured rows (for tests and benches) and a
// formatted table (for the CLI). Runs are deterministic for a fixed seed.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/energy"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/stats"
	"github.com/disco-sim/disco/internal/trace"
)

// Opts bound an experiment's cost.
type Opts struct {
	// Ops / Warmup are per-core measured / warmup memory operations.
	Ops, Warmup int
	// Benchmarks selects profiles (nil = all 12).
	Benchmarks []string
	// Seed drives the deterministic workloads.
	Seed int64
	// Runner optionally supplies a shared parallel scheduler and memo
	// cache (see internal/simrun); sharing one across experiments
	// dedupes their common baseline cells. Nil gives each experiment a
	// private runner at default parallelism. Results are reduced in
	// submission order, so every artifact is byte-identical whatever
	// the worker count or cache setting.
	Runner *simrun.Runner `json:"-"`
}

// Default returns the full-fidelity settings used for EXPERIMENTS.md.
func Default() Opts { return Opts{Ops: 12000, Warmup: 6000, Seed: 1} }

// Quick returns reduced settings for benches and CI.
func Quick() Opts {
	return Opts{Ops: 2500, Warmup: 1500, Seed: 1,
		Benchmarks: []string{"bodytrack", "canneal", "freqmine", "x264"}}
}

// profiles resolves the benchmark list.
func (o Opts) profiles() ([]trace.Profile, error) {
	if o.Benchmarks == nil {
		return trace.Profiles(), nil
	}
	var out []trace.Profile
	for _, n := range o.Benchmarks {
		p, ok := trace.ByName(n)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// runner resolves the cell scheduler, creating a private one (default
// parallelism, memoization on) when the caller did not share one.
func (o Opts) runner() *simrun.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return simrun.New(0, true)
}

// newAlg builds a fresh algorithm instance per run (SC² carries trained
// state, so sharing across systems would leak information).
func newAlg(name string) compress.Algorithm {
	a, err := compress.New(name)
	if err != nil {
		panic(err)
	}
	return a
}

// submitCfg fingerprints the cell build describes and schedules it; the
// runner invokes build again on execution so every simulation gets fresh
// algorithm state.
func submitCfg(r *simrun.Runner, build func() cmp.Config) *simrun.Future {
	cfg := build()
	return r.Submit(simrun.KeyFor(&cfg), func() (cmp.Results, error) {
		c := build()
		sys, err := cmp.New(c)
		if err != nil {
			return cmp.Results{}, err
		}
		return sys.Run()
	})
}

// submitOne schedules one (mode, algorithm, profile) full-system
// simulation cell.
func submitOne(r *simrun.Runner, mode cmp.Mode, alg string, prof trace.Profile, o Opts, k int) *simrun.Future {
	return submitCfg(r, func() cmp.Config {
		var a compress.Algorithm
		if mode != cmp.Baseline {
			a = newAlg(alg)
		}
		cfg := cmp.DefaultConfig(mode, a, prof)
		cfg.OpsPerCore = o.Ops
		cfg.WarmupOps = o.Warmup
		cfg.Seed = o.Seed
		if k != 0 {
			cfg.K = k
		}
		return cfg
	})
}

// table renders rows with a header through a tabwriter.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// --- Table 1 ---------------------------------------------------------------

// Table1Row is one compression scheme's parameters: the hardware latencies
// (pinned constants) and the compression ratio measured on the synthetic
// PARSEC block population.
type Table1Row struct {
	Scheme    string
	CompLat   int
	DecompLat int
	Ratio     float64
	// PaperRatio is Table 1's published value (0 when the paper leaves it
	// blank), kept for EXPERIMENTS.md comparison.
	PaperRatio float64
}

// Table1Result is the regenerated Table 1.
type Table1Result struct{ Rows []Table1Row }

// Table1 measures every implemented scheme over a sample of all profiles'
// blocks (SC² is trained on a disjoint sample first, mirroring its
// hardware sampling phase).
func Table1(o Opts) (Table1Result, error) {
	profs, err := o.profiles()
	if err != nil {
		return Table1Result{}, err
	}
	paper := map[string]float64{"fpc": 1.5, "sfpc": 1.33, "bdi": 1.57, "sc2": 2.4, "delta": 1.57}
	var res Table1Result
	for _, name := range []string{"delta", "bdi", "fpc", "sfpc", "cpack", "sc2", "fvc"} {
		raw, comp := 0, 0
		// SC² is a *statistical* compressor: its value table is trained
		// per workload (the hardware samples the running application), so
		// the ratio is measured with one freshly trained instance per
		// profile. The stateless schemes are unaffected by the split.
		for _, p := range profs {
			alg := newAlg(name)
			var train, test [][]byte
			for i := 0; i < 800; i++ {
				addr := trace.PrivateBase(i%8) + uint64(i)*13
				if i%5 != 0 {
					train = append(train, p.Content(addr))
				} else {
					test = append(test, p.Content(addr))
				}
			}
			switch a := alg.(type) {
			case *compress.SC2:
				a.Train(train)
			case *compress.FVC:
				a.Train(train)
			}
			for _, b := range test {
				c := alg.Compress(b)
				raw += compress.BlockSize
				comp += c.SizeBytes()
			}
		}
		a := newAlg(name)
		res.Rows = append(res.Rows, Table1Row{
			Scheme:     name,
			CompLat:    a.CompLatency(),
			DecompLat:  a.DecompLatency(),
			Ratio:      float64(raw) / float64(comp),
			PaperRatio: paper[name],
		})
	}
	return res, nil
}

// Table renders the result.
func (r Table1Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperRatio > 0 {
			paper = fmt.Sprintf("%.2f", row.PaperRatio)
		}
		rows = append(rows, []string{
			row.Scheme,
			fmt.Sprintf("%d cyc", row.CompLat),
			fmt.Sprintf("%d cyc", row.DecompLat),
			fmt.Sprintf("%.2f", row.Ratio),
			paper,
		})
	}
	return table([]string{"scheme", "comp", "decomp", "ratio(meas)", "ratio(paper)"}, rows)
}

// --- Fig. 5 / Fig. 6 -------------------------------------------------------

// LatencyRow is one benchmark's normalized on-chip data access latency
// (Ideal = 1.0), the paper's Figs. 5/6/8 metric.
type LatencyRow struct {
	Bench string
	CC    float64
	CNC   float64
	DISCO float64
	// Raw ideal latency in cycles (denominator), for diagnostics.
	IdealCycles float64
}

// LatencyResult is a Fig. 5-style experiment outcome.
type LatencyResult struct {
	Algorithm string
	Rows      []LatencyRow
	GMean     LatencyRow
}

// latencyFigure runs CC/CNC/DISCO/Ideal for every benchmark with one
// algorithm at mesh radix k.
func latencyFigure(alg string, o Opts, k int) (LatencyResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return LatencyResult{}, err
	}
	res := LatencyResult{Algorithm: alg}
	r := o.runner()
	modes := []cmp.Mode{cmp.Ideal, cmp.CC, cmp.CNC, cmp.DISCO}
	futs := make([][]*simrun.Future, len(profs))
	for i, p := range profs {
		for _, m := range modes {
			futs[i] = append(futs[i], submitOne(r, m, alg, p, o, k))
		}
	}
	var gcc, gcnc, gdisco []float64
	for i, p := range profs {
		ideal, err := futs[i][0].Wait()
		if err != nil {
			return res, err
		}
		cc, err := futs[i][1].Wait()
		if err != nil {
			return res, err
		}
		cnc, err := futs[i][2].Wait()
		if err != nil {
			return res, err
		}
		d, err := futs[i][3].Wait()
		if err != nil {
			return res, err
		}
		row := LatencyRow{
			Bench:       p.Name,
			CC:          cc.AvgMissLatency / ideal.AvgMissLatency,
			CNC:         cnc.AvgMissLatency / ideal.AvgMissLatency,
			DISCO:       d.AvgMissLatency / ideal.AvgMissLatency,
			IdealCycles: ideal.AvgMissLatency,
		}
		res.Rows = append(res.Rows, row)
		gcc = append(gcc, row.CC)
		gcnc = append(gcnc, row.CNC)
		gdisco = append(gdisco, row.DISCO)
	}
	res.GMean = LatencyRow{
		Bench: "gmean",
		CC:    stats.GeoMean(gcc),
		CNC:   stats.GeoMean(gcnc),
		DISCO: stats.GeoMean(gdisco),
	}
	return res, nil
}

// Fig5 regenerates Figure 5: normalized latency with the paper's
// delta-based compressor on the 4×4 CMP.
func Fig5(o Opts) (LatencyResult, error) { return latencyFigure("delta", o, 0) }

// Fig6 regenerates Figure 6: the same experiment with FPC and SC².
func Fig6(o Opts) (map[string]LatencyResult, error) {
	out := make(map[string]LatencyResult, 2)
	for _, alg := range []string{"fpc", "sc2"} {
		r, err := latencyFigure(alg, o, 0)
		if err != nil {
			return nil, err
		}
		out[alg] = r
	}
	return out, nil
}

// Table renders a latency figure.
func (r LatencyResult) Table() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range append(r.Rows, r.GMean) {
		rows = append(rows, []string{
			row.Bench,
			fmt.Sprintf("%.3f", row.CC),
			fmt.Sprintf("%.3f", row.CNC),
			fmt.Sprintf("%.3f", row.DISCO),
		})
	}
	return fmt.Sprintf("normalized on-chip data access latency (Ideal=1.0), algorithm=%s\n%s",
		r.Algorithm, table([]string{"benchmark", "CC", "CNC", "DISCO"}, rows))
}

// DiscoGainOverCC returns the gmean latency advantage of DISCO over CC in
// percent (the paper's headline number).
func (r LatencyResult) DiscoGainOverCC() float64 {
	return (r.GMean.CC - r.GMean.DISCO) / r.GMean.CC * 100
}

// DiscoGainOverCNC is the same against CNC.
func (r LatencyResult) DiscoGainOverCNC() float64 {
	return (r.GMean.CNC - r.GMean.DISCO) / r.GMean.CNC * 100
}

// --- Fig. 7 ----------------------------------------------------------------

// EnergyRow is one benchmark's memory-subsystem energy normalized to the
// no-compression baseline.
type EnergyRow struct {
	Bench string
	CC    float64
	CNC   float64
	DISCO float64
	// DiscoBreakdown keeps the absolute component split for the report.
	DiscoBreakdown energy.Breakdown
}

// EnergyResult is the Fig. 7 outcome.
type EnergyResult struct {
	Rows  []EnergyRow
	GMean EnergyRow
}

// Fig7 regenerates Figure 7 with the delta compressor.
func Fig7(o Opts) (EnergyResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return EnergyResult{}, err
	}
	var res EnergyResult
	r := o.runner()
	modes := []cmp.Mode{cmp.Baseline, cmp.CC, cmp.CNC, cmp.DISCO}
	futs := make([][]*simrun.Future, len(profs))
	for i, p := range profs {
		for _, m := range modes {
			futs[i] = append(futs[i], submitOne(r, m, "delta", p, o, 0))
		}
	}
	var gcc, gcnc, gdisco []float64
	for i, p := range profs {
		base, err := futs[i][0].Wait()
		if err != nil {
			return res, err
		}
		cc, err := futs[i][1].Wait()
		if err != nil {
			return res, err
		}
		cnc, err := futs[i][2].Wait()
		if err != nil {
			return res, err
		}
		d, err := futs[i][3].Wait()
		if err != nil {
			return res, err
		}
		bt := base.Energy.OnChip()
		row := EnergyRow{
			Bench:          p.Name,
			CC:             cc.Energy.OnChip() / bt,
			CNC:            cnc.Energy.OnChip() / bt,
			DISCO:          d.Energy.OnChip() / bt,
			DiscoBreakdown: d.Energy,
		}
		res.Rows = append(res.Rows, row)
		gcc = append(gcc, row.CC)
		gcnc = append(gcnc, row.CNC)
		gdisco = append(gdisco, row.DISCO)
	}
	res.GMean = EnergyRow{
		Bench: "gmean",
		CC:    stats.GeoMean(gcc),
		CNC:   stats.GeoMean(gcnc),
		DISCO: stats.GeoMean(gdisco),
	}
	return res, nil
}

// Table renders the energy figure.
func (r EnergyResult) Table() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range append(r.Rows, r.GMean) {
		rows = append(rows, []string{
			row.Bench,
			fmt.Sprintf("%.3f", row.CC),
			fmt.Sprintf("%.3f", row.CNC),
			fmt.Sprintf("%.3f", row.DISCO),
		})
	}
	return "on-chip memory-subsystem energy (NoC+NUCA) normalized to no-compression baseline (delta)\n" +
		table([]string{"benchmark", "CC", "CNC", "DISCO"}, rows)
}

// --- Fig. 8 ----------------------------------------------------------------

// ScaleRow is one mesh size's gmean normalized latency for CC and DISCO
// plus DISCO's gain, the paper's scalability metric.
type ScaleRow struct {
	K         int
	Banks     int
	CC        float64
	DISCO     float64
	GainPct   float64
	Benchmark string // "gmean" over the option set
}

// ScaleResult is the Fig. 8 outcome.
type ScaleResult struct{ Rows []ScaleRow }

// Fig8 regenerates Figure 8: 2×2, 4×4 and 8×8 meshes (4/16/64 NUCA
// banks) with the delta compressor.
func Fig8(o Opts) (ScaleResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return ScaleResult{}, err
	}
	var res ScaleResult
	r := o.runner()
	ks := []int{2, 4, 8}
	modes := []cmp.Mode{cmp.Ideal, cmp.CC, cmp.DISCO}
	futs := make(map[int][][]*simrun.Future, len(ks))
	for _, k := range ks {
		ops := o
		if k == 8 && ops.Ops > 4000 {
			// 64-core runs are ~8x the work; cap them to keep the figure
			// affordable without changing its trend.
			ops.Ops, ops.Warmup = 4000, 2000
		}
		fs := make([][]*simrun.Future, len(profs))
		for i, p := range profs {
			for _, m := range modes {
				fs[i] = append(fs[i], submitOne(r, m, "delta", p, ops, k))
			}
		}
		futs[k] = fs
	}
	for _, k := range ks {
		var gcc, gdisco []float64
		for i := range profs {
			ideal, err := futs[k][i][0].Wait()
			if err != nil {
				return res, err
			}
			cc, err := futs[k][i][1].Wait()
			if err != nil {
				return res, err
			}
			d, err := futs[k][i][2].Wait()
			if err != nil {
				return res, err
			}
			gcc = append(gcc, cc.AvgMissLatency/ideal.AvgMissLatency)
			gdisco = append(gdisco, d.AvgMissLatency/ideal.AvgMissLatency)
		}
		row := ScaleRow{
			K: k, Banks: k * k,
			CC:        stats.GeoMean(gcc),
			DISCO:     stats.GeoMean(gdisco),
			Benchmark: "gmean",
		}
		row.GainPct = (row.CC - row.DISCO) / row.CC * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the scalability figure.
func (r ScaleResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", row.K, row.K),
			fmt.Sprintf("%d", row.Banks),
			fmt.Sprintf("%.3f", row.CC),
			fmt.Sprintf("%.3f", row.DISCO),
			fmt.Sprintf("%.1f%%", row.GainPct),
		})
	}
	return "scalability: gmean normalized latency vs mesh size (delta)\n" +
		table([]string{"mesh", "banks", "CC", "DISCO", "DISCO gain"}, rows)
}

// --- §4.3 area ---------------------------------------------------------------

// AreaTable renders the Section 4.3 overhead comparison.
func AreaTable() string {
	rows := [][]string{}
	for _, mode := range []string{"baseline", "cc", "cnc", "disco"} {
		a := energy.Area(mode, 16, 4)
		rows = append(rows, []string{
			mode,
			fmt.Sprintf("%d", a.Engines),
			fmt.Sprintf("%.3f mm2", a.EngineTotal),
			fmt.Sprintf("%.1f%%", a.OverheadVsRouterPct),
			fmt.Sprintf("%.2f%%", a.OverheadVsCachePct),
		})
	}
	return "area overhead, 16 tiles, 4MB NUCA, 45nm (Section 4.3)\n" +
		table([]string{"design", "engines", "engine area", "vs router", "vs 4MB NUCA"}, rows)
}
