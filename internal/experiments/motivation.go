package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/simrun"
)

// MotivationRow quantifies, per benchmark, the observations that motivate
// the DISCO design (Sections 1 and 3.3): how much of the NoC bandwidth
// response payloads occupy (the 3.3C selective-compression argument), how
// much queueing time packets accumulate (the overlap opportunity), and
// how much of DISCO's conversion work ends up hidden in-network versus
// paid residually at ejection.
type MotivationRow struct {
	Bench string
	// ResponseFlitShare is response flits over all flits moved (Section
	// 3.3C: "response packet ... occupies the majority of on-chip
	// bandwidth").
	ResponseFlitShare float64
	// AvgQueueing is the mean per-packet stall (cycles) — the idle time
	// DISCO harvests.
	AvgQueueing float64
	// InNetworkOps / ResidualOps split DISCO's conversions into hidden
	// (router engines) and paid (NI ejection).
	InNetworkOps uint64
	ResidualOps  uint64
	// HiddenShare = InNetworkOps / (InNetworkOps + ResidualOps).
	HiddenShare float64
}

// MotivationResult aggregates the study.
type MotivationResult struct{ Rows []MotivationRow }

// Motivation runs DISCO over the option set's benchmarks and extracts the
// motivational statistics.
func Motivation(o Opts) (MotivationResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return MotivationResult{}, err
	}
	var res MotivationResult
	rn := o.runner()
	futs := make([]*simrun.Future, len(profs))
	for i, p := range profs {
		futs[i] = submitOne(rn, cmp.DISCO, "delta", p, o, 0)
	}
	for i, p := range profs {
		r, err := futs[i].Wait()
		if err != nil {
			return res, err
		}
		inNet := r.Net.Compressions + r.Net.Decompressions
		row := MotivationRow{
			Bench: p.Name,
			ResponseFlitShare: float64(r.Net.FlitHopsByClass[noc.ClassResponse]) /
				float64(maxU64(r.Net.FlitHops, 1)),
			AvgQueueing:  r.Net.QueueCycles.Mean(),
			InNetworkOps: inNet,
			ResidualOps:  r.ResidualOps,
		}
		if inNet+r.ResidualOps > 0 {
			row.HiddenShare = float64(inNet) / float64(inNet+r.ResidualOps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Table renders the study.
func (r MotivationResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Bench,
			fmt.Sprintf("%.0f%%", row.ResponseFlitShare*100),
			fmt.Sprintf("%.1f", row.AvgQueueing),
			fmt.Sprintf("%d", row.InNetworkOps),
			fmt.Sprintf("%d", row.ResidualOps),
			fmt.Sprintf("%.1f%%", row.HiddenShare*100),
		})
	}
	return "DISCO motivation statistics (delta, 4x4)\n" +
		table([]string{"benchmark", "resp flit share", "queueing", "in-net ops", "residual", "hidden"}, rows)
}
