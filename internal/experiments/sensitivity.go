package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/trace"
)

// SensitivityRow is one NoC design point's outcome: CC and DISCO
// normalized latency (Ideal = 1.0) over the option set's benchmarks. The
// paper remarks (end of Section 3.2) that the best thresholds "depend on
// the NoC congestion condition and the configuration of NoC as well, i.e.
// the stage number, VC depth and flow-control method" — this study sweeps
// those axes.
type SensitivityRow struct {
	Label       string
	VCs         int
	BufDepth    int
	FlowControl string
	CC          float64
	DISCO       float64
	GainPct     float64
}

// SensitivityResult collects the sweep.
type SensitivityResult struct{ Rows []SensitivityRow }

// sensitivityPoints enumerates the swept design points.
func sensitivityPoints() []struct {
	label    string
	vcs, buf int
	fc       noc.FlowControl
} {
	return []struct {
		label    string
		vcs, buf int
		fc       noc.FlowControl
	}{
		{"wormhole 2vc x 4", 2, 4, noc.Wormhole},
		{"wormhole 2vc x 8 (Table 2)", 2, 8, noc.Wormhole},
		{"wormhole 2vc x 16", 2, 16, noc.Wormhole},
		{"wormhole 4vc x 8", 4, 8, noc.Wormhole},
		{"vct 2vc x 12", 2, 12, noc.VirtualCutThrough},
		{"saf 2vc x 12", 2, 12, noc.StoreAndForward},
	}
}

// Sensitivity sweeps VC count, buffer depth and flow control, measuring
// CC vs DISCO (delta compression) at each point.
func Sensitivity(o Opts) (SensitivityResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return SensitivityResult{}, err
	}
	var res SensitivityResult
	r := o.runner()
	points := sensitivityPoints()
	modes := []cmp.Mode{cmp.Ideal, cmp.CC, cmp.DISCO}
	futs := make([][][]*simrun.Future, len(points))
	for pi, pt := range points {
		pt := pt
		submitPoint := func(mode cmp.Mode, p trace.Profile) *simrun.Future {
			return submitCfg(r, func() cmp.Config {
				cfg := cmp.DefaultConfig(mode, compress.NewDelta(), p)
				cfg.OpsPerCore = o.Ops
				cfg.WarmupOps = o.Warmup
				cfg.Seed = o.Seed
				cfg.VCs = pt.vcs
				cfg.BufDepth = pt.buf
				cfg.FlowControl = pt.fc
				return cfg
			})
		}
		futs[pi] = make([][]*simrun.Future, len(profs))
		for i, p := range profs {
			for _, m := range modes {
				futs[pi][i] = append(futs[pi][i], submitPoint(m, p))
			}
		}
	}
	for pi, pt := range points {
		sumCC, sumD := 0.0, 0.0
		for i := range profs {
			ideal, err := futs[pi][i][0].Wait()
			if err != nil {
				return res, err
			}
			cc, err := futs[pi][i][1].Wait()
			if err != nil {
				return res, err
			}
			d, err := futs[pi][i][2].Wait()
			if err != nil {
				return res, err
			}
			sumCC += cc.AvgMissLatency / ideal.AvgMissLatency
			sumD += d.AvgMissLatency / ideal.AvgMissLatency
		}
		n := float64(len(profs))
		row := SensitivityRow{
			Label: pt.label, VCs: pt.vcs, BufDepth: pt.buf,
			FlowControl: pt.fc.String(),
			CC:          sumCC / n, DISCO: sumD / n,
		}
		row.GainPct = (row.CC - row.DISCO) / row.CC * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep.
func (r SensitivityResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.3f", row.CC),
			fmt.Sprintf("%.3f", row.DISCO),
			fmt.Sprintf("%.1f%%", row.GainPct),
		})
	}
	return "NoC sensitivity: CC vs DISCO normalized latency (delta)\n" +
		table([]string{"design point", "CC", "DISCO", "DISCO gain"}, rows)
}
