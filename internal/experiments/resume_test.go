package experiments

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/store"
)

// TestKillResumeByteIdentity is the crash-safety contract end to end:
// a campaign interrupted mid-flight (graceful drain, results persisted
// to the content-addressed store) and then resumed over the same cache
// directory must produce artifacts byte-identical to an uninterrupted
// run — with at least part of the work replayed from disk rather than
// re-simulated.
func TestKillResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-resume test runs full simulations")
	}
	dir := t.TempDir()
	openStore := func() *store.Store {
		s, err := store.Open(dir, store.Options{Version: "resume-test"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Reference: the uninterrupted artifact set, no persistence at all.
	ref := parallelArtifacts(t, simrun.New(4, true))

	// First campaign: interrupt once a few cells have completed. The
	// drain lets in-flight cells finish and persist; queued cells cancel.
	r1 := simrun.New(4, true)
	r1.SetStore(openStore())
	interrupted := make(chan struct{})
	go func() {
		defer close(interrupted)
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			if r1.Stats().Done >= 3 {
				r1.Interrupt()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	o := Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions", "vips"}, Runner: r1}
	_, err := RunAll(o)
	<-interrupted
	r1.Quiesce()
	if err == nil {
		// The tiny campaign can win the race and finish before the
		// interrupt lands; the test still proves disk replay below.
		t.Log("campaign completed before the interrupt landed")
	} else if !errors.Is(err, simrun.ErrInterrupted) {
		t.Fatalf("interrupted RunAll error = %v, want wrapped ErrInterrupted", err)
	}
	if got := r1.Stats(); got.Done == 0 {
		t.Fatal("no cells completed before the interrupt; nothing to resume from")
	}

	// Resumed campaign: fresh runner (a new "process") over the same
	// store. Artifacts must match the uninterrupted reference exactly.
	r2 := simrun.New(4, true)
	r2.SetStore(openStore())
	got := parallelArtifacts(t, r2)
	if !bytes.Equal(got, ref) {
		t.Errorf("resumed artifacts differ from the uninterrupted run (len %d vs %d)",
			len(got), len(ref))
	}
	st := r2.Stats()
	if st.DiskHits == 0 {
		t.Errorf("resumed campaign replayed nothing from disk (stats %+v)", st)
	}
	if st.Quarantined != 0 {
		t.Errorf("resume quarantined %d entries; the interrupted run left corruption behind", st.Quarantined)
	}
}
