package experiments

import (
	"bytes"
	"testing"

	"github.com/disco-sim/disco/internal/simrun"
)

// parallelArtifacts runs a representative artifact set (full report JSON,
// the Fig. 5 table, the batch CSV) under one scheduler configuration and
// returns the concatenated bytes.
func parallelArtifacts(t *testing.T, r *simrun.Runner) []byte {
	t.Helper()
	o := Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions", "vips"}, Runner: r}
	var out bytes.Buffer
	rep, err := RunAll(o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	out.Write(data)
	f5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(f5.Table())
	if err := BatchCSV(o, "delta", &out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParallelRunsAreByteIdentical is the scheduler's determinism
// contract: worker count and memo cache must not change a single artifact
// byte relative to the serial, uncached harness.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism test runs full simulations")
	}
	ref := parallelArtifacts(t, simrun.New(1, false))
	variants := []struct {
		name   string
		runner *simrun.Runner
	}{
		{"j=1 cache", simrun.New(1, true)},
		{"j=8 no-cache", simrun.New(8, false)},
		{"j=8 cache", simrun.New(8, true)},
	}
	for _, v := range variants {
		got := parallelArtifacts(t, v.runner)
		if !bytes.Equal(got, ref) {
			t.Errorf("%s: artifacts differ from serial uncached run (len %d vs %d)",
				v.name, len(got), len(ref))
		}
	}
}

// TestRunAllSharesBaselines checks the cross-figure memoization: one
// RunAll invocation must dedupe the baseline cells Fig. 5, Fig. 7, Fig. 8
// and the ablation share.
func TestRunAllSharesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("memoization test runs full simulations")
	}
	r := simrun.New(4, true)
	o := Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions"}, Runner: r}
	if _, err := RunAll(o); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Hits == 0 {
		t.Errorf("RunAll produced no cache hits (stats %+v); shared baselines are not deduped", st)
	}
	if st.Executed+st.Hits != st.Submitted {
		t.Errorf("stats do not add up: %+v", st)
	}
}
