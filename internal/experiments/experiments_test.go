package experiments

import (
	"strings"
	"testing"
)

// tinyOpts keeps unit-test runtime low; shape assertions use Quick() in
// the separate -short-skipped tests.
func tinyOpts() Opts {
	return Opts{Ops: 800, Warmup: 500, Seed: 1, Benchmarks: []string{"bodytrack", "canneal"}}
}

func TestOptsProfiles(t *testing.T) {
	o := Opts{}
	ps, err := o.profiles()
	if err != nil || len(ps) != 12 {
		t.Fatalf("all profiles: %d, %v", len(ps), err)
	}
	o.Benchmarks = []string{"vips"}
	ps, err = o.profiles()
	if err != nil || len(ps) != 1 || ps[0].Name != "vips" {
		t.Fatal("single benchmark selection failed")
	}
	o.Benchmarks = []string{"nope"}
	if _, err := o.profiles(); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(Opts{Benchmarks: []string{"bodytrack", "freqmine", "x264"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("expected 7 schemes, got %d", len(r.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Scheme] = row
		if row.Ratio < 1.0 || row.Ratio > 6 {
			t.Errorf("%s ratio %.2f implausible", row.Scheme, row.Ratio)
		}
	}
	// Table 1 shape: SC2 is the strongest, SFPC weaker than FPC.
	if byName["sc2"].Ratio <= byName["sfpc"].Ratio {
		t.Errorf("sc2 (%.2f) should beat sfpc (%.2f)", byName["sc2"].Ratio, byName["sfpc"].Ratio)
	}
	if byName["sfpc"].Ratio > byName["fpc"].Ratio {
		t.Errorf("sfpc (%.2f) should not beat fpc (%.2f)", byName["sfpc"].Ratio, byName["fpc"].Ratio)
	}
	if !strings.Contains(r.Table(), "sc2") {
		t.Error("table rendering missing rows")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	r, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	g := r.GMean
	// Paper shape: every mode is at or above Ideal, and DISCO is the best
	// of the three real designs.
	for _, v := range []float64{g.CC, g.CNC, g.DISCO} {
		if v < 0.98 {
			t.Errorf("normalized latency %.3f below Ideal", v)
		}
	}
	if !(g.DISCO < g.CC) {
		t.Errorf("DISCO (%.3f) should beat CC (%.3f)", g.DISCO, g.CC)
	}
	if r.DiscoGainOverCC() <= 0 {
		t.Errorf("gain over CC = %.1f%%, want > 0", r.DiscoGainOverCC())
	}
	if !strings.Contains(r.Table(), "gmean") {
		t.Error("table missing gmean")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	// Capacity-pressure benchmarks: compression's energy win (fewer DRAM
	// trips, less traffic, shorter runtime) only materializes when the
	// footprint stresses the LLC.
	o := Opts{Ops: 2000, Warmup: 1500, Seed: 1, Benchmarks: []string{"canneal", "streamcluster"}}
	r, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	g := r.GMean
	for _, v := range []float64{g.CC, g.CNC, g.DISCO} {
		if v >= 1.1 || v < 0.4 {
			t.Errorf("normalized energy %.3f implausible", v)
		}
	}
	if g.DISCO >= 1.0 {
		t.Errorf("DISCO energy %.3f should undercut the baseline", g.DISCO)
	}
	if g.DISCO > g.CC || g.DISCO > g.CNC {
		t.Errorf("DISCO (%.3f) should be cheapest (CC %.3f, CNC %.3f)", g.DISCO, g.CC, g.CNC)
	}
}

func TestAblationVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	o := Opts{Ops: 800, Warmup: 500, Seed: 1, Benchmarks: []string{"canneal"}}
	r, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ablationVariants()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	vals := map[string]float64{}
	for _, row := range r.Rows {
		if row.Normalized < 0.9 || row.Normalized > 2 {
			t.Errorf("%s: normalized %.3f implausible", row.Variant, row.Normalized)
		}
		vals[row.Variant] = row.Normalized
	}
	if !strings.Contains(r.Table(), "full") {
		t.Error("table missing variants")
	}
}

func TestAreaTable(t *testing.T) {
	s := AreaTable()
	for _, want := range []string{"disco", "cnc", "17.2%"} {
		if !strings.Contains(s, want) {
			t.Errorf("area table missing %q:\n%s", want, s)
		}
	}
}

func TestQuickAndDefaultOpts(t *testing.T) {
	d, q := Default(), Quick()
	if d.Ops <= q.Ops {
		t.Error("default should be bigger than quick")
	}
	if q.Benchmarks == nil {
		t.Error("quick should subset benchmarks")
	}
}

func TestChartsRender(t *testing.T) {
	lr := LatencyResult{
		Algorithm: "delta",
		Rows:      []LatencyRow{{Bench: "canneal", CC: 1.2, CNC: 1.1, DISCO: 1.05}},
		GMean:     LatencyRow{Bench: "gmean", CC: 1.2, CNC: 1.1, DISCO: 1.05},
	}
	c := lr.Chart()
	if !strings.Contains(c, "canneal") || !strings.Contains(c, "#") {
		t.Errorf("latency chart malformed:\n%s", c)
	}
	er := EnergyResult{
		Rows:  []EnergyRow{{Bench: "x264", CC: 0.8, CNC: 0.79, DISCO: 0.78}},
		GMean: EnergyRow{Bench: "gmean", CC: 0.8, CNC: 0.79, DISCO: 0.78},
	}
	if c := er.Chart(); !strings.Contains(c, "x264") {
		t.Errorf("energy chart malformed:\n%s", c)
	}
	sr := ScaleResult{Rows: []ScaleRow{{K: 4, Banks: 16, CC: 1.1, DISCO: 1.05, GainPct: 5}}}
	if c := sr.Chart(); !strings.Contains(c, "4x4") {
		t.Errorf("scale chart malformed:\n%s", c)
	}
}

func TestMotivationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	o := Opts{Ops: 800, Warmup: 400, Seed: 1, Benchmarks: []string{"canneal"}}
	r, err := Motivation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	// Section 3.3C: response payloads must dominate link bandwidth.
	if row.ResponseFlitShare < 0.5 {
		t.Errorf("response flit share %.2f should exceed 0.5", row.ResponseFlitShare)
	}
	if row.HiddenShare < 0 || row.HiddenShare > 1 {
		t.Errorf("hidden share %.2f out of range", row.HiddenShare)
	}
	if !strings.Contains(r.Table(), "canneal") {
		t.Error("table missing rows")
	}
}

func TestReportJSON(t *testing.T) {
	rep := &Report{Opts: Quick()}
	t1 := Table1Result{Rows: []Table1Row{{Scheme: "delta", Ratio: 1.4}}}
	rep.Table1 = &t1
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"delta"`, `"table1"`, `"Ops"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestSensitivitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system sweep")
	}
	o := Opts{Ops: 600, Warmup: 300, Seed: 1, Benchmarks: []string{"canneal"}}
	r, err := Sensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(sensitivityPoints()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CC < 0.95 || row.CC > 2.5 || row.DISCO < 0.95 || row.DISCO > 2.5 {
			t.Errorf("%s: implausible ratios CC=%.3f DISCO=%.3f", row.Label, row.CC, row.DISCO)
		}
		// DISCO should not lose to CC at any design point.
		if row.DISCO > row.CC*1.03 {
			t.Errorf("%s: DISCO (%.3f) worse than CC (%.3f)", row.Label, row.DISCO, row.CC)
		}
	}
	if !strings.Contains(r.Table(), "Table 2") {
		t.Error("table missing the Table 2 design point")
	}
}

func TestComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	o := Opts{Ops: 800, Warmup: 400, Seed: 1, Benchmarks: []string{"x264"}}
	r, err := Composition(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 modes", len(r.Rows))
	}
	for _, row := range r.Rows {
		sum := row.NoCShare + row.CacheShr + row.CompShare + row.LeakShare
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: shares sum to %.3f", row.Mode, sum)
		}
		if row.Mode == "baseline" && row.CompShare != 0 {
			t.Error("baseline has no compressor energy")
		}
	}
	if !strings.Contains(r.Table(), "x264") {
		t.Error("table malformed")
	}
}

func TestBatchCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	o := Opts{Ops: 400, Warmup: 200, Seed: 1, Benchmarks: []string{"swaptions"}}
	var sb strings.Builder
	if err := BatchCSV(o, "delta", &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+5 { // header + 5 modes
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "benchmark,mode") {
		t.Errorf("header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], "swaptions,baseline,none") {
		t.Errorf("first row wrong: %s", lines[1])
	}
	if err := BatchCSV(Opts{Benchmarks: []string{"bogus"}}, "delta", &sb); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunAllIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	o := Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions"}}
	rep, err := RunAll(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table1 == nil || rep.Fig5 == nil || rep.Fig6 == nil ||
		rep.Fig7 == nil || rep.Fig8 == nil || rep.Ablation == nil {
		t.Fatal("report incomplete")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 1000 {
		t.Errorf("JSON suspiciously small: %d bytes", len(data))
	}
}
