package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment results")

// TestFig5Golden compares the Quick-opts Figure 5 result against a
// committed golden file, with a tolerance wide enough to absorb benign
// calibration drift but tight enough to catch ordering flips or broken
// mechanisms. Regenerate with: go test ./internal/experiments -run Golden -update
func TestFig5Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	o := Opts{Ops: 1500, Warmup: 800, Seed: 1, Benchmarks: []string{"bodytrack", "canneal"}}
	got, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig5_quick_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, _ := json.MarshalIndent(got, "", "  ")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no golden file (%v); run with -update to create", err)
	}
	var want LatencyResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	const tol = 0.05 // 5% of normalized latency
	check := func(name string, g, w float64) {
		if math.Abs(g-w) > tol {
			t.Errorf("%s drifted: got %.3f, golden %.3f (tol %.2f)", name, g, w, tol)
		}
	}
	check("gmean.CC", got.GMean.CC, want.GMean.CC)
	check("gmean.CNC", got.GMean.CNC, want.GMean.CNC)
	check("gmean.DISCO", got.GMean.DISCO, want.GMean.DISCO)
	// The ordering must hold regardless of drift.
	if !(got.GMean.DISCO < got.GMean.CC) {
		t.Errorf("ordering violated: DISCO %.3f !< CC %.3f", got.GMean.DISCO, got.GMean.CC)
	}
}
