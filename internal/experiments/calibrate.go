package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/simrun"
)

// CalibrationPoint is one (CCth, CDth) grid point's outcome.
type CalibrationPoint struct {
	CCth, CDth float64
	// Latency is the mean normalized latency (Ideal = 1.0) over the
	// option set's benchmarks.
	Latency float64
	// EngineOps is the total in-network de/compression count (diagnostic:
	// thresholds too high starve the engines, too low waste energy).
	EngineOps uint64
	// Releases counts shadow-packet releases (mis-predictions).
	Releases uint64
}

// CalibrationResult is a threshold-sweep outcome; Best is the point with
// the lowest latency.
type CalibrationResult struct {
	Points []CalibrationPoint
	Best   CalibrationPoint
}

// CalibrateThresholds reproduces the paper's empirical parameter training
// (end of Section 3.2: "we use the real workload traces ... to train the
// empirical parameters"): it sweeps the CCth × CDth grid with the delta
// compressor and reports normalized latency per point.
func CalibrateThresholds(o Opts, ccths, cdths []float64) (CalibrationResult, error) {
	if len(ccths) == 0 {
		ccths = []float64{0, 1, 2, 4}
	}
	if len(cdths) == 0 {
		cdths = []float64{-2, 0, 2}
	}
	profs, err := o.profiles()
	if err != nil {
		return CalibrationResult{}, err
	}
	rn := o.runner()
	idealFuts := make([]*simrun.Future, len(profs))
	for i, p := range profs {
		idealFuts[i] = submitOne(rn, cmp.Ideal, "delta", p, o, 0)
	}
	type gridPoint struct {
		cc, cd float64
		futs   []*simrun.Future
	}
	var grid []gridPoint
	for _, cc := range ccths {
		for _, cd := range cdths {
			cc, cd := cc, cd
			gp := gridPoint{cc: cc, cd: cd}
			for _, p := range profs {
				gp.futs = append(gp.futs, submitVariant(rn, p, o, func(c *disco.Config) {
					c.CCth, c.CDth = cc, cd
				}))
			}
			grid = append(grid, gp)
		}
	}
	ideal := make([]float64, len(profs))
	for i := range profs {
		r, err := idealFuts[i].Wait()
		if err != nil {
			return CalibrationResult{}, err
		}
		ideal[i] = r.AvgMissLatency
	}
	var res CalibrationResult
	for _, gp := range grid {
		var pt CalibrationPoint
		pt.CCth, pt.CDth = gp.cc, gp.cd
		sum := 0.0
		for i := range profs {
			r, err := gp.futs[i].Wait()
			if err != nil {
				return res, err
			}
			sum += r.AvgMissLatency / ideal[i]
			pt.EngineOps += r.Net.Compressions + r.Net.Decompressions
			pt.Releases += r.Net.EngineReleases
		}
		pt.Latency = sum / float64(len(profs))
		res.Points = append(res.Points, pt)
		if res.Best.Latency == 0 || pt.Latency < res.Best.Latency {
			res.Best = pt
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r CalibrationResult) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		mark := ""
		if p == r.Best {
			mark = "  <- best"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.CCth),
			fmt.Sprintf("%.1f", p.CDth),
			fmt.Sprintf("%.3f", p.Latency),
			fmt.Sprintf("%d", p.EngineOps),
			fmt.Sprintf("%d%s", p.Releases, mark),
		})
	}
	return "threshold calibration (delta; normalized latency, Ideal=1.0)\n" +
		table([]string{"CCth", "CDth", "latency", "engine ops", "releases"}, rows)
}
