package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/trace"
)

// AblationRow is one DISCO policy variant's gmean normalized latency
// (Ideal = 1.0) over the option set's benchmarks.
type AblationRow struct {
	Variant    string
	Normalized float64
}

// AblationResult collects the design-choice study of DESIGN.md §5.
type AblationResult struct{ Rows []AblationRow }

// ablationVariants enumerates the mechanisms Sections 3.2–3.3 introduce.
func ablationVariants() []struct {
	name string
	mut  func(*disco.Config)
} {
	return []struct {
		name string
		mut  func(*disco.Config)
	}{
		{"full", func(*disco.Config) {}},
		{"blocking-engine", func(c *disco.Config) { c.NonBlocking = false }},
		{"no-separate-flit", func(c *disco.Config) { c.SeparateFlit = false }},
		{"no-low-priority", func(c *disco.Config) { c.LowPriorityRule = false }},
		{"compress-all-classes", func(c *disco.Config) { c.ResponseOnly = false }},
		{"always-confident", func(c *disco.Config) { c.CCth, c.CDth = -1e9, -1e9; c.Beta = 0 }},
		{"never-confident", func(c *disco.Config) { c.CCth, c.CDth = 1e9, 1e9 }},
		{"adaptive-thresholds", func(c *disco.Config) { c.Adaptive = true; c.AdaptiveGain = 1 }},
	}
}

// Ablation measures each DISCO variant against the Ideal baseline.
func Ablation(o Opts) (AblationResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return AblationResult{}, err
	}
	ideal := make([]float64, len(profs))
	for i, p := range profs {
		r, err := runOne(cmp.Ideal, "delta", p, o, 0)
		if err != nil {
			return AblationResult{}, err
		}
		ideal[i] = r.AvgMissLatency
	}
	var res AblationResult
	for _, v := range ablationVariants() {
		sum, n := 0.0, 0
		for i, p := range profs {
			r, err := runVariant(p, o, v.mut)
			if err != nil {
				return res, err
			}
			sum += r.AvgMissLatency / ideal[i]
			n++
		}
		res.Rows = append(res.Rows, AblationRow{Variant: v.name, Normalized: sum / float64(n)})
	}
	return res, nil
}

// runVariant runs one DISCO system with a mutated policy config.
func runVariant(p trace.Profile, o Opts, mut func(*disco.Config)) (cmp.Results, error) {
	alg := newAlg("delta")
	cfg := cmp.DefaultConfig(cmp.DISCO, alg, p)
	cfg.OpsPerCore = o.Ops
	cfg.WarmupOps = o.Warmup
	cfg.Seed = o.Seed
	dc := disco.DefaultConfig(alg)
	mut(&dc)
	cfg.Disco = &dc
	sys, err := cmp.New(cfg)
	if err != nil {
		return cmp.Results{}, err
	}
	return sys.Run()
}

// Table renders the ablation study.
func (r AblationResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, fmt.Sprintf("%.3f", row.Normalized)})
	}
	return "DISCO policy ablation: mean normalized latency (Ideal=1.0, delta)\n" +
		table([]string{"variant", "latency"}, rows)
}
