package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/trace"
)

// AblationRow is one DISCO policy variant's gmean normalized latency
// (Ideal = 1.0) over the option set's benchmarks.
type AblationRow struct {
	Variant    string
	Normalized float64
}

// AblationResult collects the design-choice study of DESIGN.md §5.
type AblationResult struct{ Rows []AblationRow }

// ablationVariants enumerates the mechanisms Sections 3.2–3.3 introduce.
func ablationVariants() []struct {
	name string
	mut  func(*disco.Config)
} {
	return []struct {
		name string
		mut  func(*disco.Config)
	}{
		{"full", func(*disco.Config) {}},
		{"blocking-engine", func(c *disco.Config) { c.NonBlocking = false }},
		{"no-separate-flit", func(c *disco.Config) { c.SeparateFlit = false }},
		{"no-low-priority", func(c *disco.Config) { c.LowPriorityRule = false }},
		{"compress-all-classes", func(c *disco.Config) { c.ResponseOnly = false }},
		{"always-confident", func(c *disco.Config) { c.CCth, c.CDth = -1e9, -1e9; c.Beta = 0 }},
		{"never-confident", func(c *disco.Config) { c.CCth, c.CDth = 1e9, 1e9 }},
		{"adaptive-thresholds", func(c *disco.Config) { c.Adaptive = true; c.AdaptiveGain = 1 }},
	}
}

// Ablation measures each DISCO variant against the Ideal baseline.
func Ablation(o Opts) (AblationResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return AblationResult{}, err
	}
	r := o.runner()
	variants := ablationVariants()
	idealFuts := make([]*simrun.Future, len(profs))
	for i, p := range profs {
		idealFuts[i] = submitOne(r, cmp.Ideal, "delta", p, o, 0)
	}
	varFuts := make([][]*simrun.Future, len(variants))
	for vi, v := range variants {
		for _, p := range profs {
			varFuts[vi] = append(varFuts[vi], submitVariant(r, p, o, v.mut))
		}
	}
	ideal := make([]float64, len(profs))
	for i := range profs {
		res, err := idealFuts[i].Wait()
		if err != nil {
			return AblationResult{}, err
		}
		ideal[i] = res.AvgMissLatency
	}
	var res AblationResult
	for vi, v := range variants {
		sum, n := 0.0, 0
		for i := range profs {
			r, err := varFuts[vi][i].Wait()
			if err != nil {
				return res, err
			}
			sum += r.AvgMissLatency / ideal[i]
			n++
		}
		res.Rows = append(res.Rows, AblationRow{Variant: v.name, Normalized: sum / float64(n)})
	}
	return res, nil
}

// submitVariant schedules one DISCO system with a mutated policy config.
func submitVariant(r *simrun.Runner, p trace.Profile, o Opts, mut func(*disco.Config)) *simrun.Future {
	return submitCfg(r, func() cmp.Config {
		alg := newAlg("delta")
		cfg := cmp.DefaultConfig(cmp.DISCO, alg, p)
		cfg.OpsPerCore = o.Ops
		cfg.WarmupOps = o.Warmup
		cfg.Seed = o.Seed
		dc := disco.DefaultConfig(alg)
		mut(&dc)
		cfg.Disco = &dc
		return cfg
	})
}

// Table renders the ablation study.
func (r AblationResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, fmt.Sprintf("%.3f", row.Normalized)})
	}
	return "DISCO policy ablation: mean normalized latency (Ideal=1.0, delta)\n" +
		table([]string{"variant", "latency"}, rows)
}
