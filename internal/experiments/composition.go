package experiments

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/energy"
	"github.com/disco-sim/disco/internal/simrun"
)

// CompositionRow is one mode's absolute on-chip energy split for a single
// benchmark — the "where does the energy go" companion to Fig. 7, useful
// for judging which components a result is sensitive to.
type CompositionRow struct {
	Mode      string
	Breakdown energy.Breakdown
	// Shares of the on-chip total (router+link / cache / compressor /
	// leakage).
	NoCShare  float64
	CacheShr  float64
	CompShare float64
	LeakShare float64
}

// CompositionResult is the per-mode energy composition of one benchmark.
type CompositionResult struct {
	Bench string
	Rows  []CompositionRow
}

// Composition measures the energy split of every mode on one benchmark
// (the first of the option set).
func Composition(o Opts) (CompositionResult, error) {
	profs, err := o.profiles()
	if err != nil {
		return CompositionResult{}, err
	}
	p := profs[0]
	res := CompositionResult{Bench: p.Name}
	rn := o.runner()
	modes := []cmp.Mode{cmp.Baseline, cmp.Ideal, cmp.CC, cmp.CNC, cmp.DISCO}
	futs := make([]*simrun.Future, 0, len(modes))
	for _, mode := range modes {
		futs = append(futs, submitOne(rn, mode, "delta", p, o, 0))
	}
	for mi, mode := range modes {
		r, err := futs[mi].Wait()
		if err != nil {
			return res, err
		}
		b := r.Energy
		total := b.OnChip()
		row := CompositionRow{Mode: mode.String(), Breakdown: b}
		if total > 0 {
			row.NoCShare = (b.RouterDyn + b.LinkDyn) / total
			row.CacheShr = b.CacheDyn / total
			row.CompShare = b.CompDyn / total
			row.LeakShare = b.Leakage / total
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the composition.
func (r CompositionResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode,
			fmt.Sprintf("%.1f uJ", row.Breakdown.OnChip()/1e6),
			fmt.Sprintf("%.0f%%", row.NoCShare*100),
			fmt.Sprintf("%.0f%%", row.CacheShr*100),
			fmt.Sprintf("%.1f%%", row.CompShare*100),
			fmt.Sprintf("%.0f%%", row.LeakShare*100),
		})
	}
	return fmt.Sprintf("on-chip energy composition, %s (delta)\n", r.Bench) +
		table([]string{"mode", "total", "NoC", "cache", "compressor", "leakage"}, rows)
}
