package experiments

import (
	"strings"
	"testing"
)

func TestCalibrateThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system sweep")
	}
	o := Opts{Ops: 700, Warmup: 400, Seed: 1, Benchmarks: []string{"canneal"}}
	r, err := CalibrateThresholds(o, []float64{0, 2}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(r.Points))
	}
	if r.Best.Latency <= 0 {
		t.Error("best point not selected")
	}
	// Lower thresholds mean the engines trigger at least as often.
	if r.Points[0].CCth < r.Points[1].CCth && r.Points[0].EngineOps < r.Points[1].EngineOps {
		t.Errorf("lower threshold produced fewer engine ops: %+v", r.Points)
	}
	if !strings.Contains(r.Table(), "best") {
		t.Error("table missing best marker")
	}
}

func TestCalibrateDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system sweep")
	}
	// Empty grids fall back to the default sweep; just check they expand.
	o := Opts{Ops: 300, Warmup: 200, Seed: 1, Benchmarks: []string{"swaptions"}}
	r, err := CalibrateThresholds(o, nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("default CCth grid should have 4 points, got %d", len(r.Points))
	}
}
