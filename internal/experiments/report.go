package experiments

import (
	"encoding/json"
	"fmt"

	"github.com/disco-sim/disco/internal/simrun"
)

// Report bundles every experiment's structured results for machine
// consumption (JSON), so downstream tooling can plot or diff runs.
type Report struct {
	Opts     Opts                     `json:"opts"`
	Table1   *Table1Result            `json:"table1,omitempty"`
	Fig5     *LatencyResult           `json:"fig5,omitempty"`
	Fig6     map[string]LatencyResult `json:"fig6,omitempty"`
	Fig7     *EnergyResult            `json:"fig7,omitempty"`
	Fig8     *ScaleResult             `json:"fig8,omitempty"`
	Ablation *AblationResult          `json:"ablation,omitempty"`
}

// RunAll executes every experiment and collects the structured results.
// All figures share one runner, so their common baseline cells (e.g. the
// Ideal/CC/CNC delta runs of Fig. 5, Fig. 7 and the ablation) simulate
// exactly once.
func RunAll(o Opts) (*Report, error) {
	if o.Runner == nil {
		o.Runner = simrun.New(0, true)
	}
	rep := &Report{Opts: o}
	t1, err := Table1(o)
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	rep.Table1 = &t1
	f5, err := Fig5(o)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	rep.Fig5 = &f5
	f6, err := Fig6(o)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	rep.Fig6 = f6
	f7, err := Fig7(o)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	rep.Fig7 = &f7
	f8, err := Fig8(o)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	rep.Fig8 = &f8
	ab, err := Ablation(o)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	rep.Ablation = &ab
	return rep, nil
}

// JSON serializes the report (stable field order, indented).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
