package experiments

import (
	"fmt"
	"strings"
)

// Chart renders a LatencyResult as an ASCII grouped bar chart, the
// terminal equivalent of the paper's Figure 5/6 bar plots. Bars start at
// 1.0 (Ideal) so the overhead each scheme adds is what gets drawn.
func (r LatencyResult) Chart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "normalized latency overhead over Ideal (algorithm=%s)\n", r.Algorithm)
	maxOver := 0.01
	rows := append(append([]LatencyRow(nil), r.Rows...), r.GMean)
	for _, row := range rows {
		for _, v := range []float64{row.CC, row.CNC, row.DISCO} {
			if v-1 > maxOver {
				maxOver = v - 1
			}
		}
	}
	bar := func(v float64) string {
		n := int((v - 1) / maxOver * 44)
		if n < 0 {
			n = 0
		}
		return strings.Repeat("#", n)
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s CC    %5.3f |%s\n", row.Bench, row.CC, bar(row.CC))
		fmt.Fprintf(&b, "%-14s CNC   %5.3f |%s\n", "", row.CNC, bar(row.CNC))
		fmt.Fprintf(&b, "%-14s DISCO %5.3f |%s\n", "", row.DISCO, bar(row.DISCO))
	}
	return b.String()
}

// Chart renders an EnergyResult as an ASCII bar chart (baseline = 1.0;
// shorter bars are better).
func (r EnergyResult) Chart() string {
	var b strings.Builder
	b.WriteString("energy relative to uncompressed baseline (1.0 = full bar)\n")
	rows := append(append([]EnergyRow(nil), r.Rows...), r.GMean)
	bar := func(v float64) string {
		n := int(v * 44)
		if n < 0 {
			n = 0
		}
		if n > 60 {
			n = 60
		}
		return strings.Repeat("#", n)
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s CC    %5.3f |%s\n", row.Bench, row.CC, bar(row.CC))
		fmt.Fprintf(&b, "%-14s CNC   %5.3f |%s\n", "", row.CNC, bar(row.CNC))
		fmt.Fprintf(&b, "%-14s DISCO %5.3f |%s\n", "", row.DISCO, bar(row.DISCO))
	}
	return b.String()
}

// Chart renders the Fig. 8 scalability rows.
func (r ScaleResult) Chart() string {
	var b strings.Builder
	b.WriteString("DISCO gain over CC vs mesh size\n")
	for _, row := range r.Rows {
		n := int(row.GainPct * 2)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%dx%d (%2d banks) %5.1f%% |%s\n", row.K, row.K, row.Banks,
			row.GainPct, strings.Repeat("#", n))
	}
	return b.String()
}
