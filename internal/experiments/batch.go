package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/simrun"
)

// BatchCSV runs every (benchmark × mode) combination with the given
// algorithm and streams one CSV row per run — the raw-data companion to
// the figure harnesses, for external plotting or spreadsheet analysis.
func BatchCSV(o Opts, alg string, w io.Writer) error {
	profs, err := o.profiles()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "mode", "algorithm",
		"onchip_latency", "total_latency", "cycles",
		"l1_misses", "l2_misses", "dram_accesses",
		"flit_hops", "in_network_ops", "residual_ops",
		"onchip_energy_pj", "total_energy_pj",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	modes := []cmp.Mode{cmp.Baseline, cmp.Ideal, cmp.CC, cmp.CNC, cmp.DISCO}
	rn := o.runner()
	futs := make([][]*simrun.Future, len(profs))
	for i, p := range profs {
		for _, mode := range modes {
			futs[i] = append(futs[i], submitOne(rn, mode, alg, p, o, 0))
		}
	}
	for i := range profs {
		for mi := range modes {
			r, err := futs[i][mi].Wait()
			if err != nil {
				return err
			}
			row := []string{
				r.Benchmark, r.Mode.String(), r.Algorithm,
				fmt.Sprintf("%.2f", r.AvgMissLatency),
				fmt.Sprintf("%.2f", r.AvgMissTotal),
				fmt.Sprintf("%d", r.Cycles),
				fmt.Sprintf("%d", r.L1Misses),
				fmt.Sprintf("%d", r.L2Misses),
				fmt.Sprintf("%d", r.DramAccesses),
				fmt.Sprintf("%d", r.Net.FlitHops),
				fmt.Sprintf("%d", r.Net.Compressions+r.Net.Decompressions),
				fmt.Sprintf("%d", r.ResidualOps),
				fmt.Sprintf("%.0f", r.Energy.OnChip()),
				fmt.Sprintf("%.0f", r.Energy.Total()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
	}
	cw.Flush()
	return cw.Error()
}
