package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/metrics"
)

// startServer boots a Server on a loopback listener and returns it with
// its address. Cleanup shuts it down with a generous deadline.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// echoOnce runs one complete client stream against addr: dial,
// handshake, write payload, half-close, verify the echo byte-exactly.
func echoOnce(addr, codec string, payload []byte) error {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = nc.Close() }()
	if err := nc.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return err
	}
	c, err := Client(nc, codec)
	if err != nil {
		return err
	}
	if err := nc.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return err
	}
	var got []byte
	readErr := make(chan error, 1)
	go func() {
		b, err := io.ReadAll(c)
		got = b
		readErr <- err
	}()
	if _, err := c.Write(payload); err != nil {
		<-readErr
		return fmt.Errorf("write: %w", err)
	}
	if err := c.CloseWrite(); err != nil {
		<-readErr
		return err
	}
	if err := <-readErr; err != nil {
		return fmt.Errorf("read: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("echo mismatch: got %d bytes, want %d", len(got), len(payload))
	}
	return nil
}

// TestServerConcurrentEcho: many concurrent streams across all codecs,
// every one byte-exact. Run under -race this also exercises the
// metrics atomics from many goroutines.
func TestServerConcurrentEcho(t *testing.T) {
	srv, addr := startServer(t, Options{})
	const n = 40
	codecs := compress.Names()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := testPayload(64*10 + i) // vary alignment per stream
			if err := echoOnce(addr, codecs[i%len(codecs)], payload); err != nil {
				errs <- fmt.Errorf("stream %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All streams closed cleanly: totals balanced, nothing active.
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 0 })
	st := srv.Status()
	if st.Accepted != n {
		t.Fatalf("accepted %d, want %d", st.Accepted, n)
	}
	if st.ConnErrors != 0 || st.HandshakeErrors != 0 {
		t.Fatalf("unexpected errors in %+v", st)
	}
	if st.BlocksIn == 0 || st.BlocksIn != st.BlocksOut {
		t.Fatalf("echo block totals unbalanced: in=%d out=%d", st.BlocksIn, st.BlocksOut)
	}
	if st.BytesIn != st.BytesOut {
		t.Fatalf("echo byte totals unbalanced: in=%d out=%d", st.BytesIn, st.BytesOut)
	}
	var sum uint64
	for _, c := range st.StreamsByCodec {
		sum += c
	}
	if sum != n {
		t.Fatalf("streams_by_codec sums to %d, want %d", sum, n)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %s", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerGracefulDrain: Shutdown must let an in-flight stream finish
// and then return nil; new dials must not be served while draining.
func TestServerGracefulDrain(t *testing.T) {
	srv, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Open a stream and park it mid-conversation.
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc.Close() }()
	c, err := Client(nc, "delta")
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(640)
	if _, err := c.Write(payload[:320]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 1 })

	// Start the drain; it must block on the live stream.
	shutErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutErr <- srv.Shutdown(ctx) }()

	// New connections must not be served while draining: either the
	// dial fails outright (listener closed) or the handshake dies.
	waitFor(t, time.Second, func() bool {
		nc2, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			return true
		}
		_ = nc2.SetDeadline(time.Now().Add(500 * time.Millisecond))
		_, herr := Client(nc2, "delta")
		_ = nc2.Close()
		return herr != nil
	})

	// The parked stream still works mid-drain, then completes.
	var got []byte
	readErr := make(chan error, 1)
	go func() {
		b, err := io.ReadAll(c)
		got = b
		readErr <- err
	}()
	if _, err := c.Write(payload[320:]); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := <-readErr; err != nil {
		t.Fatalf("drain-phase read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("drain-phase echo corrupt")
	}

	if err := <-shutErr; err != nil {
		t.Fatalf("graceful Shutdown returned %v, want nil", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	if !srv.Status().Draining {
		t.Fatalf("status should report draining after Shutdown")
	}
}

// TestServerForcedDrain: a stream that never finishes forces Shutdown
// to expire its context, force-close the conn, and return ctx.Err().
func TestServerForcedDrain(t *testing.T) {
	srv, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	nc, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc.Close() }()
	c, err := Client(nc, "none")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(testPayload(64)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 1 })
	// ... and then the client goes silent, holding the stream open.

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %s — conns were not force-closed", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 0 })
}

// TestServerMaxConnsBackpressure: with MaxConns=2, a third stream is
// not served until one of the first two finishes — and is served then.
func TestServerMaxConnsBackpressure(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConns: 2})

	// Occupy both permits with parked streams.
	parked := make([]*Conn, 2)
	for i := range parked {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nc.Close() })
		c, err := Client(nc, "none")
		if err != nil {
			t.Fatal(err)
		}
		parked[i] = c
	}
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 2 })

	// The third stream: the server won't even accept it, so it sits in
	// the listen backlog. Prove it is NOT served while the permits are
	// held, then release a permit and prove it completes.
	done := make(chan error, 1)
	go func() { done <- echoOnce(addr, "delta", testPayload(256)) }()
	select {
	case err := <-done:
		t.Fatalf("third stream completed while MaxConns held (err=%v)", err)
	case <-time.After(150 * time.Millisecond):
		// still queued — backpressure holding
	}
	if got := srv.ActiveConns(); got != 2 {
		t.Fatalf("active=%d while at the bound, want 2", got)
	}

	// Finish one parked stream; the queued dial must now be served.
	if err := parked[0].CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(parked[0]); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued stream after permit release: %v", err)
	}

	if err := parked[1].CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(parked[1]); err != nil {
		t.Fatal(err)
	}
}

// TestServerMetricsScopeLifecycle: a live conn's per-conn scope is
// visible in the Prometheus render; after it closes, the scope is gone
// and its counters are folded into the aggregate families.
func TestServerMetricsScopeLifecycle(t *testing.T) {
	srv, addr := startServer(t, Options{})

	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc.Close() }()
	c, err := Client(nc, "delta")
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(64 * 4)
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has echoed at least one block back.
	buf := make([]byte, 64)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	text := string(srv.M.RenderPrometheus())
	if err := metrics.CheckPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("live render not lintable: %v\n%s", err, text)
	}
	if !strings.Contains(text, "disco_stream_conn_1_blocks_in") {
		t.Fatalf("live render missing per-conn scope for conn 1:\n%s", text)
	}
	if !strings.Contains(text, "disco_stream_conns_active 1\n") {
		t.Fatalf("live render missing active gauge:\n%s", text)
	}

	// Close the stream; the scope must retire and the totals must keep
	// every block it moved.
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(c); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return srv.ActiveConns() == 0 })

	text = string(srv.M.RenderPrometheus())
	if err := metrics.CheckPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("post-close render not lintable: %v", err)
	}
	if strings.Contains(text, "disco_stream_conn_1_blocks_in") {
		t.Fatalf("per-conn scope survived the close:\n%s", text)
	}
	bi, bo, byi, byo, wi, wo := srv.M.Totals()
	if byi != uint64(len(payload)) || byo != uint64(len(payload)) {
		t.Fatalf("folded byte totals %d/%d, want %d", byi, byo, len(payload))
	}
	if bi != 4 || bo != 4 {
		t.Fatalf("folded block totals %d/%d, want 4/4", bi, bo)
	}
	if wi == 0 || wo == 0 {
		t.Fatalf("wire byte totals not folded: %d/%d", wi, wo)
	}
	if !strings.Contains(text, "disco_stream_codec_delta_streams 1\n") {
		t.Fatalf("per-codec family missing after close:\n%s", text)
	}
}

// TestServerPerConnScopeBound: the render caps per-conn scopes at
// maxPerConnScopes even with more live conns than that.
func TestServerPerConnScopeBound(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < maxPerConnScopes+16; i++ {
		cs := m.OpenConn()
		cs.Codec = "none"
		m.Handshook(cs)
	}
	text := string(m.RenderPrometheus())
	if err := metrics.CheckPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("render not lintable: %v", err)
	}
	if n := strings.Count(text, "# TYPE disco_stream_conn_"); n != 6*maxPerConnScopes {
		t.Fatalf("%d per-conn families rendered, want %d (cap %d scopes × 6 families)",
			n, 6*maxPerConnScopes, maxPerConnScopes)
	}
	if !strings.Contains(text, fmt.Sprintf("disco_stream_conns_active %d", maxPerConnScopes+16)) {
		t.Fatalf("aggregate gauge must still count every conn:\n%s", text)
	}
}

// TestServerRejectsBadHandshakes: protocol garbage and unknown codecs
// are counted, never crash the accept loop, and later good streams
// still work.
func TestServerRejectsBadHandshakes(t *testing.T) {
	srv, addr := startServer(t, Options{Codecs: []string{"delta", "none"}, HandshakeTimeout: 500 * time.Millisecond})

	// Garbage magic.
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte("PROXY TCP4 whatever\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = nc.Close()

	// Codec outside the allowlist gets the typed reject.
	nc2, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = nc2.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := Client(nc2, "fpc"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("allowlist reject: %v, want ErrUnknownCodec", err)
	}
	_ = nc2.Close()

	waitFor(t, 2*time.Second, func() bool { return srv.M.HandshakeErrors.Load() == 2 })

	// The server is unharmed.
	if err := echoOnce(addr, "delta", testPayload(128)); err != nil {
		t.Fatalf("good stream after rejects: %v", err)
	}
	st := srv.Status()
	if st.Accepted != 1 || st.HandshakeErrors != 2 {
		t.Fatalf("status after rejects: %+v", st)
	}
}

// TestNewServerValidation: bad configs fail at construction.
func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Options{Codecs: []string{"delta", "nope"}}); err == nil {
		t.Fatalf("unknown allowlist codec accepted")
	}
	if _, err := NewServer(Options{MaxConns: -1}); err == nil {
		t.Fatalf("negative MaxConns accepted")
	}
}

// TestServeAfterShutdown: a drained server refuses to serve again.
func TestServeAfterShutdown(t *testing.T) {
	srv, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	// Don't race the drain against Serve's own startup.
	waitFor(t, time.Second, func() bool { return srv.Status().Listen != "" })
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after Shutdown: %v, want ErrClosed", err)
	}
}
