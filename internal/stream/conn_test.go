package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/compress"
)

// pipePair builds a handshaken client/server Conn pair over net.Pipe.
func pipePair(t *testing.T, codec string) (*Conn, *Conn) {
	t.Helper()
	cn, sn := net.Pipe()
	t.Cleanup(func() { _ = cn.Close(); _ = sn.Close() })
	// net.Pipe is synchronous: the two handshake halves must overlap.
	var (
		srv    *Conn
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = Accept(sn, nil)
	}()
	cli, err := Client(cn, codec)
	wg.Wait()
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if srvErr != nil {
		t.Fatalf("server handshake: %v", srvErr)
	}
	return cli, srv
}

// testPayload is a deterministic byte stream mixing compressible and
// incompressible spans.
func testPayload(n int) []byte {
	out := make([]byte, n)
	seed := uint64(0xC0FFEE)
	for i := 0; i < n; i += 8 {
		var b [8]byte
		switch (i / 64) % 3 {
		case 0: // drifting counter
			binary.LittleEndian.PutUint64(b[:], uint64(0x1000+i))
		case 1: // zeros
		case 2: // pseudorandom
			seed += 0x9E3779B97F4A7C15
			z := seed
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			binary.LittleEndian.PutUint64(b[:], z^(z>>27))
		}
		copy(out[i:], b[:])
	}
	return out
}

// TestConnRoundTripAllCodecs pushes a mixed payload both directions
// through a pipe pair for every registry codec.
func TestConnRoundTripAllCodecs(t *testing.T) {
	for _, codec := range compress.Names() {
		t.Run(codec, func(t *testing.T) {
			cli, srv := pipePair(t, codec)
			if cli.Codec() != codec || srv.Codec() != codec {
				t.Fatalf("negotiated %q/%q, want %q", cli.Codec(), srv.Codec(), codec)
			}
			payload := testPayload(64*40 + 17) // deliberately not block-aligned

			var wg sync.WaitGroup
			wg.Add(1)
			var echoed []byte
			var echoErr error
			go func() { // server: echo everything, then half-close
				defer wg.Done()
				echoed, echoErr = io.ReadAll(srv)
				if echoErr == nil {
					if _, err := srv.Write(echoed); err != nil {
						echoErr = err
						return
					}
					echoErr = srv.CloseWrite()
				}
			}()

			// Client: write in awkward chunk sizes, half-close, read back.
			for off := 0; off < len(payload); {
				n := min(97, len(payload)-off)
				if _, err := cli.Write(payload[off : off+n]); err != nil {
					t.Fatalf("write: %v", err)
				}
				off += n
			}
			if err := cli.CloseWrite(); err != nil {
				t.Fatalf("close-write: %v", err)
			}
			back, err := io.ReadAll(cli)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			wg.Wait()
			if echoErr != nil {
				t.Fatalf("server echo: %v", echoErr)
			}
			if !bytes.Equal(echoed, payload) {
				t.Fatalf("server received corrupted payload")
			}
			if !bytes.Equal(back, payload) {
				t.Fatalf("client read back corrupted payload")
			}
		})
	}
}

// TestConnPartialWriteVisible: a sub-block Write must reach the peer
// without waiting for more bytes (the zero-padded partial frame).
func TestConnPartialWriteVisible(t *testing.T) {
	cli, srv := pipePair(t, "delta")
	msg := []byte("hello, disco")
	go func() { _, _ = cli.Write(msg) }()
	buf := make([]byte, 64)
	n, err := srv.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("got %q, want %q", buf[:n], msg)
	}
}

// TestConnWriteAfterCloseWrite must fail with ErrClosed.
func TestConnWriteAfterCloseWrite(t *testing.T) {
	cli, srv := pipePair(t, "none")
	go func() {
		_, _ = io.Copy(io.Discard, srv)
	}()
	if err := cli.CloseWrite(); err != nil {
		t.Fatalf("close-write: %v", err)
	}
	if _, err := cli.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after CloseWrite: %v, want ErrClosed", err)
	}
	if err := cli.CloseWrite(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double CloseWrite: %v, want ErrClosed", err)
	}
}

// TestConnEOFAfterHalfClose: the reader drains buffered blocks, then
// sees io.EOF, and keeps seeing it.
func TestConnEOFAfterHalfClose(t *testing.T) {
	cli, srv := pipePair(t, "fpc")
	payload := testPayload(200)
	go func() {
		_, _ = cli.Write(payload)
		_ = cli.CloseWrite()
	}()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("drained payload corrupt")
	}
	if _, err := srv.Read(make([]byte, 8)); err != io.EOF {
		t.Fatalf("post-EOF read: %v, want io.EOF", err)
	}
}

// rawFramePeer handshakes as a client over a pipe and then lets the
// test inject raw frame bytes at the server's Conn.
func rawFramePeer(t *testing.T) (raw net.Conn, srv *Conn) {
	t.Helper()
	cn, sn := net.Pipe()
	t.Cleanup(func() { _ = cn.Close(); _ = sn.Close() })
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = Accept(sn, nil)
	}()
	if err := writeHello(cn, "delta"); err != nil {
		t.Fatal(err)
	}
	if err := readReply(cn, "delta"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return cn, srv
}

// TestConnMalformedFrames drives every frame-validation branch: the
// read side must fail with ErrProtocol (and stay failed), never panic
// or read unbounded bytes.
func TestConnMalformedFrames(t *testing.T) {
	mk := func(mode byte, n byte, sizeBits, plen uint16, payload []byte) []byte {
		var hdr [frameHeaderLen]byte
		hdr[0], hdr[1] = mode, n
		binary.LittleEndian.PutUint16(hdr[2:], sizeBits)
		binary.LittleEndian.PutUint16(hdr[4:], plen)
		return append(hdr[:], payload...)
	}
	cases := map[string][]byte{
		"unknown-mode":      mk(7, 1, 8, 1, []byte{0}),
		"zero-block-bytes":  mk(byte(compress.ModeStored), 0, 512, 64, make([]byte, 64)),
		"oversize-block":    mk(byte(compress.ModeStored), 65, 512, 64, make([]byte, 64)),
		"oversize-payload":  mk(byte(compress.ModeStored), 64, 512, 65, make([]byte, 65)),
		"zero-payload":      mk(byte(compress.ModeDirect), 64, 8, 0, nil),
		"oversize-sizebits": mk(byte(compress.ModeDirect), 64, 513, 8, make([]byte, 8)),
		"zero-sizebits":     mk(byte(compress.ModeDirect), 64, 0, 8, make([]byte, 8)),
		"stored-wrong-len":  mk(byte(compress.ModeStored), 64, 512, 10, make([]byte, 10)),
		"residual-no-base":  mk(byte(compress.ModeResidual), 64, 80, 10, make([]byte, 10)),
		"garbage-direct":    mk(byte(compress.ModeDirect), 64, 300, 37, bytes.Repeat([]byte{0xFF}, 37)),
		"close-with-fields": mk(frameClose, 1, 0, 0, nil),
		"truncated-header":  {0x00, 0x01},
		"truncated-payload": mk(byte(compress.ModeStored), 64, 512, 64, make([]byte, 20)),
	}
	for name, wire := range cases {
		t.Run(name, func(t *testing.T) {
			raw, srv := rawFramePeer(t)
			go func() {
				_, _ = raw.Write(wire)
				_ = raw.Close() // for the truncation cases
			}()
			_, err := srv.Read(make([]byte, 64))
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("got %v, want ErrProtocol", err)
			}
			// The failure latches.
			if _, err2 := srv.Read(make([]byte, 64)); !errors.Is(err2, ErrProtocol) {
				t.Fatalf("second read: %v, want latched ErrProtocol", err2)
			}
		})
	}
}

// TestConnAbruptClose: the peer vanishing without a close frame
// surfaces as an error (EOF at a frame boundary), not a hang.
func TestConnAbruptClose(t *testing.T) {
	raw, srv := rawFramePeer(t)
	_ = raw.Close()
	if _, err := srv.Read(make([]byte, 8)); err == nil {
		t.Fatalf("read after abrupt close returned no error")
	}
}

// TestConnLargeTransfer streams 1 MiB both ways to shake out any
// state desync that only appears after many retrain/base cycles.
func TestConnLargeTransfer(t *testing.T) {
	cli, srv := pipePair(t, "delta")
	payload := testPayload(1 << 20)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var readErr error
	go func() {
		defer wg.Done()
		got, readErr = io.ReadAll(srv)
	}()
	if _, err := cli.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("1 MiB transfer corrupted")
	}
}

// TestConnDeadlinePropagates: deadlines on the wrapped conn bound
// blocked Reads (never-hangs at the data layer too).
func TestConnDeadlinePropagates(t *testing.T) {
	cli, _ := pipePair(t, "none")
	if err := cli.NetConn().SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Read(make([]byte, 8))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("got %v, want a timeout", err)
	}
}
