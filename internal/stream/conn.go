package stream

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/disco-sim/disco/internal/compress"
)

// connBufSize sizes the per-connection bufio buffers. One frame is at
// most frameHeaderLen+maxFramePayload = 70 bytes; 1 KiB batches a
// dozen frames per syscall while keeping per-conn memory small enough
// that thousands of concurrent streams stay in tens of megabytes.
const connBufSize = 1024

// defaultHandshakeTimeout bounds how long either end waits for the
// peer's half of the handshake. A stalled or half-sent hello must
// produce a typed error, never a hang.
const defaultHandshakeTimeout = 10 * time.Second

// connBufs is the pooled per-connection buffered I/O pair — the server
// recycles these across connections (the PR 8 arena discipline applied
// to the accept loop: steady-state serving reuses, it does not grow).
type connBufs struct {
	br *bufio.Reader
	bw *bufio.Writer
}

var bufPool = sync.Pool{New: func() any {
	return &connBufs{
		br: bufio.NewReaderSize(nil, connBufSize),
		bw: bufio.NewWriterSize(nil, connBufSize),
	}
}}

// Conn is one compressed stream over a net.Conn: an io.ReadWriteCloser
// whose Write frames bytes into 64-byte blocks compressed against the
// stream's persistent state, and whose Read reverses it. The two
// directions carry independent state, so Read and Write are safe to
// use concurrently (one reader plus one writer; neither method is
// reentrant).
type Conn struct {
	nc    net.Conn
	codec string
	bufs  *connBufs
	stats *ConnStats // nil on client conns without metrics

	wmu     sync.Mutex
	bw      *bufio.Writer
	enc     *compress.Stateful
	wblock  [compress.BlockSize]byte
	whdr    [frameHeaderLen]byte
	wclosed bool

	rmu      sync.Mutex
	br       *bufio.Reader
	dec      *compress.Stateful
	rhdr     [frameHeaderLen]byte
	rscratch [maxFramePayload]byte
	rblock   [compress.BlockSize]byte
	rbuf     []byte // unread tail of rblock
	reof     bool
	rerr     error
}

// newConn wraps nc after a successful handshake. Each direction gets
// its own codec instance: trainable codecs hold per-direction tables.
func newConn(nc net.Conn, codec string, stats *ConnStats) (*Conn, error) {
	encAlg, err := compress.New(codec)
	if err != nil {
		return nil, err
	}
	decAlg, err := compress.New(codec)
	if err != nil {
		return nil, err
	}
	bufs := bufPool.Get().(*connBufs)
	bufs.br.Reset(nc)
	bufs.bw.Reset(nc)
	return &Conn{
		nc: nc, codec: codec, bufs: bufs, stats: stats,
		bw: bufs.bw, br: bufs.br,
		enc: compress.NewStateful(encAlg),
		dec: compress.NewStateful(decAlg),
	}, nil
}

// Client performs the client handshake over nc, negotiating codec, and
// returns the wrapped stream. The handshake runs under the default
// deadline; use ClientTimeout to pick another.
func Client(nc net.Conn, codec string) (*Conn, error) {
	return ClientTimeout(nc, codec, defaultHandshakeTimeout)
}

// ClientTimeout is Client with an explicit handshake deadline
// (0 disables it).
func ClientTimeout(nc net.Conn, codec string, timeout time.Duration) (*Conn, error) {
	if err := armDeadline(nc, timeout); err != nil {
		return nil, err
	}
	if err := writeHello(nc, codec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncatedHello, err)
	}
	if err := readReply(nc, codec); err != nil {
		return nil, err
	}
	if err := armDeadline(nc, 0); err != nil {
		return nil, err
	}
	return newConn(nc, codec, nil)
}

// AcceptOptions parameterizes the server side of a handshake.
type AcceptOptions struct {
	// Allowed restricts negotiable codecs (nil accepts the registry).
	Allowed func(string) bool
	// HandshakeTimeout bounds the handshake (0 = the default).
	HandshakeTimeout time.Duration
	// Stats, when non-nil, receives this connection's counters.
	Stats *ConnStats
}

// Accept performs the server handshake over nc and returns the wrapped
// stream. On error the caller still owns nc (and should close it); the
// reject reply, when one applies, has already been sent.
func Accept(nc net.Conn, opts *AcceptOptions) (*Conn, error) {
	var o AcceptOptions
	if opts != nil {
		o = *opts
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = defaultHandshakeTimeout
	}
	if err := armDeadline(nc, o.HandshakeTimeout); err != nil {
		return nil, err
	}
	codec, err := serverHandshake(nc, o.Allowed)
	if err != nil {
		return nil, err
	}
	if err := armDeadline(nc, 0); err != nil {
		return nil, err
	}
	if o.Stats != nil {
		o.Stats.Codec = codec
	}
	return newConn(nc, codec, o.Stats)
}

// armDeadline sets (or clears, for d == 0) the connection deadline.
func armDeadline(nc net.Conn, d time.Duration) error {
	if d == 0 {
		return nc.SetDeadline(time.Time{})
	}
	return nc.SetDeadline(time.Now().Add(d))
}

// Codec returns the negotiated codec name.
func (c *Conn) Codec() string { return c.codec }

// NetConn returns the underlying connection (for deadline control).
func (c *Conn) NetConn() net.Conn { return c.nc }

// Write frames p into 64-byte blocks, compresses each against the
// stream state and flushes the result. A trailing partial block is
// zero-padded (its frame records the true byte count), so every Write
// is fully visible to the peer's Read when Write returns.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wclosed {
		return 0, ErrClosed
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		var blk []byte
		if n >= compress.BlockSize {
			n = compress.BlockSize
			blk = p[:compress.BlockSize]
		} else {
			c.wblock = [compress.BlockSize]byte{}
			copy(c.wblock[:], p)
			blk = c.wblock[:]
		}
		sb := c.enc.Encode(blk)
		putFrameHeader(&c.whdr, byte(sb.Mode), n, sb.SizeBits, len(sb.Payload))
		if _, err := c.bw.Write(c.whdr[:]); err != nil {
			return total, err
		}
		if _, err := c.bw.Write(sb.Payload); err != nil {
			return total, err
		}
		if c.stats != nil {
			c.stats.BlocksOut.Add(1)
			c.stats.BytesOut.Add(uint64(n))
			c.stats.WireBytesOut.Add(uint64(frameHeaderLen + len(sb.Payload)))
		}
		total += n
		p = p[n:]
	}
	if err := c.bw.Flush(); err != nil {
		return total, err
	}
	return total, nil
}

// CloseWrite half-closes the stream: the peer's Read drains buffered
// data and then returns io.EOF. The read direction stays usable.
func (c *Conn) CloseWrite() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wclosed {
		return ErrClosed
	}
	c.wclosed = true
	putFrameHeader(&c.whdr, frameClose, 0, 0, 0)
	if _, err := c.bw.Write(c.whdr[:]); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	// Propagate the half-close to transports that support it (TCP FIN),
	// so a peer reading the raw conn also observes EOF.
	if hc, ok := c.nc.(interface{ CloseWrite() error }); ok {
		_ = hc.CloseWrite()
	}
	return nil
}

// Read decodes frames into application bytes. It returns io.EOF after
// the peer's half-close, and ErrProtocol (wrapped) on any malformed or
// corrupt frame — a broken stream never resynchronizes.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		if c.rerr != nil {
			return 0, c.rerr
		}
		if c.reof {
			return 0, io.EOF
		}
		f, err := readFrame(c.br, &c.rhdr, c.rscratch[:])
		if err != nil {
			c.rerr = err
			return 0, err
		}
		if f.mode == frameClose {
			c.reof = true
			return 0, io.EOF
		}
		out, err := c.dec.Decode(compress.StatefulBlock{
			Mode:     compress.BlockMode(f.mode),
			SizeBits: f.sizeBits,
			Payload:  f.payload,
		})
		if err != nil {
			c.rerr = fmt.Errorf("%w: block decode: %v", ErrProtocol, err)
			return 0, c.rerr
		}
		copy(c.rblock[:], out)
		c.rbuf = c.rblock[:f.n]
		if c.stats != nil {
			c.stats.BlocksIn.Add(1)
			c.stats.BytesIn.Add(uint64(f.n))
			c.stats.WireBytesIn.Add(uint64(frameHeaderLen + len(f.payload)))
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close closes the underlying connection. It does not flush: call
// CloseWrite first for a graceful end-of-stream.
func (c *Conn) Close() error { return c.nc.Close() }

// release returns the pooled buffers. Only the server calls it, after
// its serve loop has fully finished with the conn — a released conn
// must never see another Read or Write.
func (c *Conn) release() {
	bufs := c.bufs
	if bufs == nil {
		return
	}
	c.bufs = nil
	bufs.br.Reset(nil)
	bufs.bw.Reset(nil)
	bufPool.Put(bufs)
}
