package stream

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/obs"
)

// ConnStats is one connection's counters. The serve and handler
// goroutines share them through atomics, so the live /metrics endpoint
// can read an in-flight connection without a lock.
type ConnStats struct {
	ID    uint64
	Codec string

	BlocksIn     atomic.Uint64 // decoded frames
	BlocksOut    atomic.Uint64 // encoded frames
	BytesIn      atomic.Uint64 // application bytes received
	BytesOut     atomic.Uint64 // application bytes sent
	WireBytesIn  atomic.Uint64 // frame bytes received (header + payload)
	WireBytesOut atomic.Uint64 // frame bytes sent
}

// connTotals is the fold of one or many ConnStats.
type connTotals struct {
	blocksIn, blocksOut       uint64
	bytesIn, bytesOut         uint64
	wireBytesIn, wireBytesOut uint64
}

func (t *connTotals) add(cs *ConnStats) {
	t.blocksIn += cs.BlocksIn.Load()
	t.blocksOut += cs.BlocksOut.Load()
	t.bytesIn += cs.BytesIn.Load()
	t.bytesOut += cs.BytesOut.Load()
	t.wireBytesIn += cs.WireBytesIn.Load()
	t.wireBytesOut += cs.WireBytesOut.Load()
}

// Metrics aggregates a server's stream counters with a per-connection
// scope lifecycle: OpenConn registers a live scope (exported under
// stream.conn.<id> while the connection is active), CloseConn folds the
// connection's totals into the cumulative aggregate and retires the
// scope. The registry snapshot is rebuilt per request, so thousands of
// short-lived connections never grow a persistent registry.
type Metrics struct {
	Accepted        atomic.Uint64 // handshakes completed
	HandshakeErrors atomic.Uint64 // handshakes failed (any fault class)
	ConnErrors      atomic.Uint64 // streams torn down by a mid-stream error
	Refused         atomic.Uint64 // connections refused while draining

	mu       sync.Mutex
	nextID   uint64
	active   map[uint64]*ConnStats
	closed   connTotals        // fold of every retired connection
	byCodec  map[string]uint64 // completed handshakes per codec
	perConnN int               // per-conn scopes to export (bounded)
}

// maxPerConnScopes bounds how many per-connection scopes one /metrics
// render includes (lowest IDs first): the endpoint must stay readable
// and cheap with thousands of live streams. The aggregate families
// always cover every connection.
const maxPerConnScopes = 64

// NewMetrics returns an empty aggregate.
func NewMetrics() *Metrics {
	return &Metrics{
		active:   make(map[uint64]*ConnStats),
		byCodec:  make(map[string]uint64),
		perConnN: maxPerConnScopes,
	}
}

// OpenConn registers a new live connection and returns its stats.
// Codec is filled in by the handshake (via AcceptOptions.Stats).
func (m *Metrics) OpenConn() *ConnStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	cs := &ConnStats{ID: m.nextID}
	m.active[cs.ID] = cs
	return cs
}

// Handshook records a completed handshake for cs's codec.
func (m *Metrics) Handshook(cs *ConnStats) {
	m.Accepted.Add(1)
	m.mu.Lock()
	m.byCodec[cs.Codec]++
	m.mu.Unlock()
}

// CloseConn retires a live connection: its totals fold into the
// cumulative aggregate and its per-conn scope disappears.
func (m *Metrics) CloseConn(cs *ConnStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, cs.ID)
	m.closed.add(cs)
}

// ActiveConns reports the number of live connections.
func (m *Metrics) ActiveConns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Totals returns the aggregate over closed and live connections.
func (m *Metrics) Totals() (blocksIn, blocksOut, bytesIn, bytesOut, wireIn, wireOut uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.closed
	for _, cs := range m.active {
		t.add(cs)
	}
	return t.blocksIn, t.blocksOut, t.bytesIn, t.bytesOut, t.wireBytesIn, t.wireBytesOut
}

// registry builds a point-in-time metrics.Registry snapshot. The
// registry itself is single-threaded, so it is built fresh per call
// from atomic reads under the map lock and then rendered immediately.
func (m *Metrics) registry() *metrics.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()

	reg := metrics.NewRegistry()
	s := reg.Scope("stream")
	s.Counter("conns.accepted").Add(m.Accepted.Load())
	s.Counter("conns.handshake_errors").Add(m.HandshakeErrors.Load())
	s.Counter("conns.errors").Add(m.ConnErrors.Load())
	s.Counter("conns.refused").Add(m.Refused.Load())
	s.Gauge("conns.active").Set(float64(len(m.active)))

	t := m.closed
	ids := make([]uint64, 0, len(m.active))
	for id := range m.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t.add(m.active[id])
	}
	s.Counter("blocks.in").Add(t.blocksIn)
	s.Counter("blocks.out").Add(t.blocksOut)
	s.Counter("bytes.in").Add(t.bytesIn)
	s.Counter("bytes.out").Add(t.bytesOut)
	s.Counter("wire_bytes.in").Add(t.wireBytesIn)
	s.Counter("wire_bytes.out").Add(t.wireBytesOut)

	codecs := make([]string, 0, len(m.byCodec))
	for name := range m.byCodec {
		codecs = append(codecs, name)
	}
	sort.Strings(codecs)
	for _, name := range codecs {
		s.Scope("codec", name).Counter("streams").Add(m.byCodec[name])
	}

	for i, id := range ids {
		if i >= m.perConnN {
			break
		}
		cs := m.active[id]
		cscope := s.Scope("conn", fmt.Sprintf("%d", id))
		cscope.Counter("blocks.in").Add(cs.BlocksIn.Load())
		cscope.Counter("blocks.out").Add(cs.BlocksOut.Load())
		cscope.Counter("bytes.in").Add(cs.BytesIn.Load())
		cscope.Counter("bytes.out").Add(cs.BytesOut.Load())
		cscope.Counter("wire_bytes.in").Add(cs.WireBytesIn.Load())
		cscope.Counter("wire_bytes.out").Add(cs.WireBytesOut.Load())
	}
	return reg
}

// RenderPrometheus renders the current snapshot as Prometheus text —
// the closure discod installs as the obs.Server's live /metrics
// source. Safe to call from any goroutine.
func (m *Metrics) RenderPrometheus() []byte {
	var buf []byte
	w := appendWriter{&buf}
	if err := m.registry().WritePrometheus(w, obs.Namespace); err != nil {
		// The only failure mode is an invalid family name, which would
		// be a bug in this file, not a runtime condition.
		return []byte("# stream metrics render error: " + err.Error() + "\n")
	}
	return buf
}

// appendWriter adapts an append-to-slice sink to io.Writer.
type appendWriter struct{ buf *[]byte }

func (a appendWriter) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}
