package stream

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// acceptResult carries the server half of a handshake attempt.
type acceptResult struct {
	conn *Conn
	err  error
}

// acceptAsync runs Accept on sn with a short handshake deadline so no
// fault case can hang the test.
func acceptAsync(sn net.Conn, allowed func(string) bool) <-chan acceptResult {
	ch := make(chan acceptResult, 1)
	go func() {
		c, err := Accept(sn, &AcceptOptions{
			Allowed:          allowed,
			HandshakeTimeout: 500 * time.Millisecond,
		})
		ch <- acceptResult{c, err}
	}()
	return ch
}

// TestHandshakeFaultMatrix is the ISSUE's fault matrix: every way a
// handshake can go wrong must produce its typed error on the right
// end, and must do so within the deadline — never a hang.
func TestHandshakeFaultMatrix(t *testing.T) {
	t.Run("wrong-magic", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		// Exactly the fixed-header length: net.Pipe writes only complete
		// once fully consumed, and the server stops reading at the magic.
		if _, err := cn.Write([]byte("GET / ")); err != nil {
			t.Fatal(err)
		}
		if r := <-res; !errors.Is(r.err, ErrBadMagic) {
			t.Fatalf("server got %v, want ErrBadMagic", r.err)
		}
	})

	t.Run("unknown-codec", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		errc := make(chan error, 1)
		go func() {
			_, err := Client(cn, "snappy")
			errc <- err
		}()
		if r := <-res; !errors.Is(r.err, ErrUnknownCodec) {
			t.Fatalf("server got %v, want ErrUnknownCodec", r.err)
		}
		if err := <-errc; !errors.Is(err, ErrUnknownCodec) {
			t.Fatalf("client got %v, want ErrUnknownCodec", err)
		}
	})

	t.Run("allowlisted-out", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		res := acceptAsync(sn, func(name string) bool { return name == "delta" })
		errc := make(chan error, 1)
		go func() {
			_, err := Client(cn, "fpc") // real codec, not allowlisted
			errc <- err
		}()
		if r := <-res; !errors.Is(r.err, ErrUnknownCodec) {
			t.Fatalf("server got %v, want ErrUnknownCodec", r.err)
		}
		if err := <-errc; !errors.Is(err, ErrUnknownCodec) {
			t.Fatalf("client got %v, want ErrUnknownCodec", err)
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		errc := make(chan error, 1)
		go func() {
			// A future-version hello: magic ok, version 99. Only the
			// fixed header — the server rejects at the version byte and
			// never reads a codec name, and an unconsumed tail would
			// strand this pipe write.
			if _, err := cn.Write(append(magic[:], 99, 5)); err != nil {
				errc <- err
				return
			}
			errc <- readReply(cn, "delta")
		}()
		if r := <-res; !errors.Is(r.err, ErrVersionSkew) {
			t.Fatalf("server got %v, want ErrVersionSkew", r.err)
		}
		if err := <-errc; !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("client got %v, want ErrVersionSkew", err)
		}
	})

	t.Run("truncated-hello", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		if _, err := cn.Write(magic[:2]); err != nil { // two bytes, then gone
			t.Fatal(err)
		}
		_ = cn.Close()
		if r := <-res; !errors.Is(r.err, ErrTruncatedHello) {
			t.Fatalf("server got %v, want ErrTruncatedHello", r.err)
		}
	})

	t.Run("truncated-codec-name", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		// Header claims a 10-byte codec name, delivers 3, disappears.
		if _, err := cn.Write(append(magic[:], Version, 10, 'd', 'e', 'l')); err != nil {
			t.Fatal(err)
		}
		_ = cn.Close()
		if r := <-res; !errors.Is(r.err, ErrTruncatedHello) {
			t.Fatalf("server got %v, want ErrTruncatedHello", r.err)
		}
	})

	t.Run("stalled-hello-times-out", func(t *testing.T) {
		// The "never hangs" guarantee: a peer that connects and sends
		// half a hello then stalls must be cut off by the deadline.
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		start := time.Now()
		res := acceptAsync(sn, nil)
		if _, err := cn.Write(magic[:3]); err != nil {
			t.Fatal(err)
		}
		r := <-res
		if !errors.Is(r.err, ErrTruncatedHello) {
			t.Fatalf("server got %v, want ErrTruncatedHello (deadline)", r.err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("handshake took %s — the deadline did not bound it", elapsed)
		}
	})

	t.Run("oversize-codec-name", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		res := acceptAsync(sn, nil)
		errc := make(chan error, 1)
		go func() {
			buf := append(magic[:], Version, 255)
			if _, err := cn.Write(buf); err != nil {
				errc <- err
				return
			}
			errc <- readReply(cn, string(make([]byte, 255)))
		}()
		if r := <-res; !errors.Is(r.err, ErrUnknownCodec) {
			t.Fatalf("server got %v, want ErrUnknownCodec", r.err)
		}
		if err := <-errc; !errors.Is(err, ErrUnknownCodec) {
			t.Fatalf("client got %v, want ErrUnknownCodec", err)
		}
	})

	t.Run("client-rejects-bad-reply-magic", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		go func() {
			_, _ = readHello(sn)
			_, _ = sn.Write([]byte("NOPE....."))
		}()
		_, err := ClientTimeout(cn, "delta", time.Second)
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("client got %v, want ErrBadMagic", err)
		}
	})

	t.Run("client-rejects-unknown-status", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		go func() {
			_, _ = readHello(sn)
			_, _ = sn.Write(append(magic[:], Version, 77, 0))
		}()
		_, err := ClientTimeout(cn, "delta", time.Second)
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("client got %v, want ErrRejected", err)
		}
	})

	t.Run("client-rejects-wrong-echo", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		go func() {
			_, _ = readHello(sn)
			_ = writeReply(sn, statusOK, "fpc") // accepted the wrong codec
		}()
		_, err := ClientTimeout(cn, "delta", time.Second)
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("client got %v, want ErrRejected", err)
		}
	})

	t.Run("client-empty-codec", func(t *testing.T) {
		cn, sn := net.Pipe()
		defer func() { _ = cn.Close(); _ = sn.Close() }()
		if _, err := ClientTimeout(cn, "", time.Second); !errors.Is(err, ErrTruncatedHello) && !errors.Is(err, ErrUnknownCodec) {
			t.Fatalf("got %v, want a typed handshake error", err)
		}
	})

	t.Run("server-vanishes-before-reply", func(t *testing.T) {
		cn, sn := net.Pipe()
		go func() {
			_, _ = readHello(sn)
			_ = sn.Close()
		}()
		_, err := ClientTimeout(cn, "delta", time.Second)
		if !errors.Is(err, ErrTruncatedHello) {
			t.Fatalf("client got %v, want ErrTruncatedHello", err)
		}
		_ = cn.Close()
	})
}

// TestHandshakeHappyPathEchoes: the reply must echo the codec and the
// version, proving both ends agreed on the same stream parameters.
func TestHandshakeHappyPathEchoes(t *testing.T) {
	cn, sn := net.Pipe()
	defer func() { _ = cn.Close(); _ = sn.Close() }()
	var wg sync.WaitGroup
	wg.Add(1)
	var srvCodec string
	var srvErr error
	go func() {
		defer wg.Done()
		srvCodec, srvErr = serverHandshake(sn, nil)
	}()
	if err := writeHello(cn, "sc2"); err != nil {
		t.Fatal(err)
	}
	if err := readReply(cn, "sc2"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil || srvCodec != "sc2" {
		t.Fatalf("server handshake: codec=%q err=%v", srvCodec, srvErr)
	}
}

// TestReadHelloEOFBeforeAnyByte: an immediately-closed conn is a
// truncated hello, not a crash.
func TestReadHelloEOFBeforeAnyByte(t *testing.T) {
	cn, sn := net.Pipe()
	_ = cn.Close()
	_, err := readHello(sn)
	if !errors.Is(err, ErrTruncatedHello) {
		t.Fatalf("got %v, want ErrTruncatedHello", err)
	}
	_ = sn.Close()
	if !errors.Is(err, ErrTruncatedHello) || errors.Is(err, io.EOF) {
		// the io.EOF must be wrapped inside the typed error's message,
		// not exposed as the identity
		t.Fatalf("typed error identity lost: %v", err)
	}
}
