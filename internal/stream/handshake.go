package stream

import (
	"errors"
	"fmt"
	"io"

	"github.com/disco-sim/disco/internal/compress"
)

// writeHello sends the client hello.
func writeHello(w io.Writer, codec string) error {
	if len(codec) == 0 || len(codec) > maxCodecName {
		return fmt.Errorf("%w: codec name %q", ErrUnknownCodec, codec)
	}
	buf := make([]byte, 0, len(magic)+2+len(codec))
	buf = append(buf, magic[:]...)
	buf = append(buf, Version, byte(len(codec)))
	buf = append(buf, codec...)
	_, err := w.Write(buf)
	return err
}

// readHello parses a client hello. Fault mapping (the server's half of
// the handshake-fault matrix):
//
//	short read / EOF        → ErrTruncatedHello
//	wrong magic             → ErrBadMagic
//	version != Version      → ErrVersionSkew
//	absurd codec length     → ErrUnknownCodec
func readHello(r io.Reader) (codec string, err error) {
	var fixed [len(magic) + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return "", fmt.Errorf("%w: %v", ErrTruncatedHello, err)
	}
	if [4]byte(fixed[:4]) != magic {
		return "", ErrBadMagic
	}
	if fixed[4] != Version {
		return "", fmt.Errorf("%w: peer speaks v%d, this end v%d", ErrVersionSkew, fixed[4], Version)
	}
	n := int(fixed[5])
	if n == 0 || n > maxCodecName {
		return "", fmt.Errorf("%w: codec name length %d", ErrUnknownCodec, n)
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", fmt.Errorf("%w: %v", ErrTruncatedHello, err)
	}
	return string(name), nil
}

// writeReply sends the server reply: status 0 echoes the accepted
// codec, nonzero rejects with an empty codec field.
func writeReply(w io.Writer, status byte, codec string) error {
	if status != statusOK {
		codec = ""
	}
	buf := make([]byte, 0, len(magic)+3+len(codec))
	buf = append(buf, magic[:]...)
	buf = append(buf, Version, status, byte(len(codec)))
	buf = append(buf, codec...)
	_, err := w.Write(buf)
	return err
}

// readReply parses the server reply on the client side and maps reject
// statuses to the same typed errors the server saw.
func readReply(r io.Reader, wantCodec string) error {
	var fixed [len(magic) + 3]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncatedHello, err)
	}
	if [4]byte(fixed[:4]) != magic {
		return ErrBadMagic
	}
	if fixed[4] != Version {
		return fmt.Errorf("%w: server speaks v%d, this end v%d", ErrVersionSkew, fixed[4], Version)
	}
	status, n := fixed[5], int(fixed[6])
	switch status {
	case statusOK:
	case statusUnknownCodec:
		return fmt.Errorf("%w: server rejected codec %q", ErrUnknownCodec, wantCodec)
	case statusVersionSkew:
		return ErrVersionSkew
	default:
		return fmt.Errorf("%w: status %d", ErrRejected, status)
	}
	if n > maxCodecName {
		return fmt.Errorf("%w: echoed codec length %d", ErrRejected, n)
	}
	echo := make([]byte, n)
	if _, err := io.ReadFull(r, echo); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncatedHello, err)
	}
	if string(echo) != wantCodec {
		return fmt.Errorf("%w: server accepted %q, asked for %q", ErrRejected, string(echo), wantCodec)
	}
	return nil
}

// serverHandshake runs the accept side over nc: read the hello,
// validate the codec against allowed (nil = the full registry), reply.
// On failure the typed error is returned after a best-effort reject
// reply; the caller closes nc.
func serverHandshake(rw io.ReadWriter, allowed func(string) bool) (string, error) {
	codec, err := readHello(rw)
	if err != nil {
		status := byte(statusUnknownCodec)
		if errors.Is(err, ErrVersionSkew) {
			status = statusVersionSkew
		}
		// The hello never parsed; the peer may be gone or not speaking
		// this protocol at all, so the reject reply is best-effort.
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncatedHello) {
			_ = writeReply(rw, status, "")
		}
		return "", err
	}
	ok := allowed == nil || allowed(codec)
	if ok {
		if _, err := compress.New(codec); err != nil {
			ok = false
		}
	}
	if !ok {
		_ = writeReply(rw, statusUnknownCodec, "")
		return "", fmt.Errorf("%w: %q", ErrUnknownCodec, codec)
	}
	if err := writeReply(rw, statusOK, codec); err != nil {
		return "", err
	}
	return codec, nil
}
