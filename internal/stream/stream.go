// Package stream lifts the DISCO codec suite out of the simulator into
// a network-facing streaming layer (ROADMAP item 1, in the style of
// ZipLine's in-network line-speed compression): a net.Conn-wrapping
// Conn that frames application bytes into the paper's 64-byte blocks,
// compresses each block with a negotiated registry codec through a
// per-stream persistent delta base (compress.Stateful), and a Server
// that multiplexes thousands of such streams with bounded memory.
//
// # Wire protocol (version 1)
//
// A connection opens with a fixed-size-prefix handshake:
//
//	client hello:  magic "DSCO" | version u8 | codecLen u8 | codec bytes
//	server reply:  magic "DSCO" | version u8 | status  u8 | codecLen u8 | codec bytes
//
// status 0 accepts (echoing the codec); nonzero rejects and the server
// closes the connection. Every handshake failure surfaces as one of the
// typed errors below (ErrBadMagic, ErrVersionSkew, ErrUnknownCodec,
// ErrTruncatedHello) on at least one end, and both ends run the
// handshake under a deadline so a half-sent hello can never hang a
// peer.
//
// After the handshake each direction is an independent sequence of
// block frames (the two directions carry separate compression state):
//
//	frame: mode u8 | n u8 | sizeBits u16le | payloadLen u16le | payload
//
// mode is a compress.BlockMode (stored / direct / residual) or
// frameClose (0xFF, the half-close marker: n, sizeBits and payloadLen
// are zero). n is the count of application bytes in the decoded block
// (1..64); a partial block is zero-padded to 64 bytes before encoding
// and both sides fold the PADDED block into the stream state, so the
// delta base never depends on application chunk boundaries.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/disco-sim/disco/internal/compress"
)

// Version is the protocol version this tree speaks.
const Version = 1

// magic opens every hello and every reply.
var magic = [4]byte{'D', 'S', 'C', 'O'}

// maxCodecName bounds the codec-name field of a hello: nothing the
// registry can produce comes close, and the bound keeps a hostile
// hello from making the server buffer arbitrary bytes.
const maxCodecName = 32

// frameClose is the half-close frame mode: the sender is done writing.
const frameClose = 0xFF

// frameHeaderLen is the fixed frame-header size.
const frameHeaderLen = 6

// maxFramePayload bounds one frame's payload. A stored block is
// exactly compress.BlockSize bytes and every non-stored encoding is
// strictly smaller, so anything larger is protocol corruption.
const maxFramePayload = compress.BlockSize

// Handshake status codes carried in the server reply.
const (
	statusOK           = 0
	statusUnknownCodec = 1
	statusVersionSkew  = 2
)

// Typed handshake and framing errors. The handshake-fault matrix test
// pins each fault class to its error.
var (
	// ErrBadMagic: the peer's first bytes were not the protocol magic.
	ErrBadMagic = errors.New("stream: bad protocol magic")
	// ErrVersionSkew: the peer speaks a different protocol version.
	ErrVersionSkew = errors.New("stream: protocol version skew")
	// ErrUnknownCodec: the requested codec is not in the registry (or
	// not in the server's allowlist).
	ErrUnknownCodec = errors.New("stream: unknown codec")
	// ErrTruncatedHello: the connection ended (or timed out) mid-
	// handshake.
	ErrTruncatedHello = errors.New("stream: truncated handshake")
	// ErrRejected: the server rejected the handshake with a status this
	// client does not know (forward compatibility: new status codes
	// must not be mistaken for success).
	ErrRejected = errors.New("stream: handshake rejected")
	// ErrProtocol: a malformed data frame after a successful handshake.
	ErrProtocol = errors.New("stream: protocol violation")
	// ErrClosed: operation on a closed or half-closed stream.
	ErrClosed = errors.New("stream: closed")
)

// frame is one decoded data-frame header.
type frame struct {
	mode     byte
	n        int // application bytes in the decoded block
	sizeBits int
	payload  []byte // points into the caller's scratch; valid until next read
}

// putFrameHeader encodes a frame header into buf.
func putFrameHeader(buf *[frameHeaderLen]byte, mode byte, n, sizeBits, payloadLen int) {
	buf[0] = mode
	buf[1] = byte(n)
	binary.LittleEndian.PutUint16(buf[2:], uint16(sizeBits))
	binary.LittleEndian.PutUint16(buf[4:], uint16(payloadLen))
}

// readFrame reads one frame from r into scratch (which must hold
// maxFramePayload bytes). It validates every field so a corrupt or
// hostile peer yields ErrProtocol, never a panic or an unbounded read.
// A clean EOF before any header byte is reported as io.EOF (the peer
// dropped without half-closing — the caller decides how strict to be).
func readFrame(r io.Reader, hdr *[frameHeaderLen]byte, scratch []byte) (frame, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return frame{}, fmt.Errorf("%w: truncated frame header", ErrProtocol)
		}
		return frame{}, err
	}
	f := frame{
		mode:     hdr[0],
		n:        int(hdr[1]),
		sizeBits: int(binary.LittleEndian.Uint16(hdr[2:])),
	}
	plen := int(binary.LittleEndian.Uint16(hdr[4:]))
	if f.mode == frameClose {
		if f.n != 0 || f.sizeBits != 0 || plen != 0 {
			return frame{}, fmt.Errorf("%w: close frame with nonzero fields", ErrProtocol)
		}
		return f, nil
	}
	switch compress.BlockMode(f.mode) {
	case compress.ModeStored, compress.ModeDirect, compress.ModeResidual:
	default:
		return frame{}, fmt.Errorf("%w: unknown frame mode %#x", ErrProtocol, f.mode)
	}
	if f.n < 1 || f.n > compress.BlockSize {
		return frame{}, fmt.Errorf("%w: block byte count %d out of range", ErrProtocol, f.n)
	}
	if plen < 1 || plen > maxFramePayload {
		return frame{}, fmt.Errorf("%w: frame payload length %d out of range", ErrProtocol, plen)
	}
	if f.sizeBits < 1 || f.sizeBits > 8*compress.BlockSize {
		return frame{}, fmt.Errorf("%w: encoded size %d bits out of range", ErrProtocol, f.sizeBits)
	}
	f.payload = scratch[:plen]
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, fmt.Errorf("%w: truncated frame payload", ErrProtocol)
	}
	return f, nil
}
