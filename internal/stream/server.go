package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/obs"
)

// Options parameterizes a Server.
type Options struct {
	// Codecs is the negotiable-codec allowlist (nil/empty = the full
	// registry). Unknown names are a construction error, not a silent
	// accept-nothing server.
	Codecs []string
	// MaxConns bounds concurrently served connections; the accept loop
	// stops accepting while at the bound (kernel-backlog backpressure),
	// so server memory stays proportional to MaxConns, not to demand.
	// 0 means DefaultMaxConns.
	MaxConns int
	// HandshakeTimeout bounds each connection's handshake (0 = 10s).
	HandshakeTimeout time.Duration
	// Rep receives accept-loop diagnostics (nil discards).
	Rep *obs.Reporter
}

// DefaultMaxConns is the concurrent-connection bound when Options
// leaves MaxConns zero.
const DefaultMaxConns = 4096

// Server is the discod core: it accepts connections, handshakes a
// codec for each, and serves the echo loop — every decoded block is
// re-compressed through the return direction's stream state and sent
// back. One goroutine per connection; per-conn buffers come from the
// shared pool; per-conn backpressure is the synchronous echo loop
// itself (a slow reader stalls its own stream's reads, nothing else).
type Server struct {
	opts    Options
	allowed map[string]bool
	M       *Metrics

	sem chan struct{} // MaxConns permits

	mu       sync.Mutex
	ln       net.Listener
	conns    map[uint64]net.Conn // raw conns, for force-close
	draining bool

	wg sync.WaitGroup // live serve goroutines
}

// NewServer validates opts and builds an idle server.
func NewServer(opts Options) (*Server, error) {
	var allowed map[string]bool
	if len(opts.Codecs) > 0 {
		allowed = make(map[string]bool, len(opts.Codecs))
		for _, name := range opts.Codecs {
			if _, err := compress.New(name); err != nil {
				return nil, fmt.Errorf("stream: codec allowlist: %w", err)
			}
			allowed[name] = true
		}
	}
	if opts.MaxConns == 0 {
		opts.MaxConns = DefaultMaxConns
	}
	if opts.MaxConns < 1 {
		return nil, fmt.Errorf("stream: MaxConns %d out of range", opts.MaxConns)
	}
	return &Server{
		opts:    opts,
		allowed: allowed,
		M:       NewMetrics(),
		sem:     make(chan struct{}, opts.MaxConns),
		conns:   make(map[uint64]net.Conn),
	}, nil
}

// Serve accepts on ln until Shutdown (which returns nil here) or a
// fatal listener error. Call from at most one goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		// Backpressure: a permit is held from before Accept to the end
		// of the connection's serve loop, so at most MaxConns streams
		// (and their buffers) exist at once.
		s.sem <- struct{}{}
		nc, err := ln.Accept()
		if err != nil {
			<-s.sem
			if s.isDraining() {
				return nil
			}
			return err
		}
		if s.isDraining() {
			// Raced a late arrival past the listener close.
			s.M.Refused.Add(1)
			_ = nc.Close()
			<-s.sem
			continue
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// track registers a raw conn for force-close; untrack removes it.
func (s *Server) track(id uint64, nc net.Conn) { s.mu.Lock(); s.conns[id] = nc; s.mu.Unlock() }
func (s *Server) untrack(id uint64)            { s.mu.Lock(); delete(s.conns, id); s.mu.Unlock() }

// serveConn runs one connection: handshake, echo loop, teardown.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer func() { _ = nc.Close() }()

	cs := s.M.OpenConn()
	defer s.M.CloseConn(cs)
	s.track(cs.ID, nc)
	defer s.untrack(cs.ID)

	c, err := Accept(nc, &AcceptOptions{
		Allowed: func(name string) bool {
			return s.allowed == nil || s.allowed[name]
		},
		HandshakeTimeout: s.opts.HandshakeTimeout,
		Stats:            cs,
	})
	if err != nil {
		s.M.HandshakeErrors.Add(1)
		s.opts.Rep.Infof("handshake from %s failed: %v", nc.RemoteAddr(), err)
		return
	}
	s.M.Handshook(cs)
	defer c.release()

	// The echo loop: Read decompresses a block, Write recompresses it
	// through the return direction's persistent state. io.CopyBuffer
	// keeps it allocation-free per block at the loop level.
	var buf [compress.BlockSize]byte
	_, err = io.CopyBuffer(onlyWriter{c}, onlyReader{c}, buf[:])
	if err == nil {
		// Client half-closed; flush our half-close and let the client
		// drain.
		err = c.CloseWrite()
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		s.M.ConnErrors.Add(1)
		s.opts.Rep.Infof("stream %d (%s) aborted: %v", cs.ID, c.Codec(), err)
	}
}

// onlyReader / onlyWriter hide Conn's other methods from io.CopyBuffer
// so it cannot bypass the buffer via WriteTo/ReadFrom detection.
type onlyReader struct{ io.Reader }
type onlyWriter struct{ io.Writer }

// Shutdown drains the server: stop accepting, let in-flight streams
// finish, force-close whatever remains when ctx expires. It returns
// nil after a clean drain and ctx.Err() after a forced one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Forced drain: close every live raw conn; their serve loops error
	// out and the WaitGroup drains.
	s.mu.Lock()
	for _, nc := range s.conns {
		_ = nc.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// ActiveConns reports the number of live connections (handshaking or
// serving).
func (s *Server) ActiveConns() int { return s.M.ActiveConns() }

// Status is the /status document discod serves.
type Status struct {
	Listen          string            `json:"listen"`
	Draining        bool              `json:"draining"`
	ActiveConns     int               `json:"active_conns"`
	Accepted        uint64            `json:"accepted"`
	HandshakeErrors uint64            `json:"handshake_errors"`
	ConnErrors      uint64            `json:"conn_errors"`
	Refused         uint64            `json:"refused"`
	BlocksIn        uint64            `json:"blocks_in"`
	BlocksOut       uint64            `json:"blocks_out"`
	BytesIn         uint64            `json:"bytes_in"`
	BytesOut        uint64            `json:"bytes_out"`
	WireBytesIn     uint64            `json:"wire_bytes_in"`
	WireBytesOut    uint64            `json:"wire_bytes_out"`
	StreamsByCodec  map[string]uint64 `json:"streams_by_codec"`
}

// Status snapshots the server for the live /status endpoint. Safe from
// any goroutine.
func (s *Server) Status() Status {
	s.mu.Lock()
	addr := ""
	if s.ln != nil {
		addr = s.ln.Addr().String()
	}
	draining := s.draining
	s.mu.Unlock()

	byCodec := make(map[string]uint64)
	s.M.mu.Lock()
	for name, n := range s.M.byCodec {
		byCodec[name] = n
	}
	s.M.mu.Unlock()

	bi, bo, byi, byo, wi, wo := s.M.Totals()
	return Status{
		Listen:          addr,
		Draining:        draining,
		ActiveConns:     s.M.ActiveConns(),
		Accepted:        s.M.Accepted.Load(),
		HandshakeErrors: s.M.HandshakeErrors.Load(),
		ConnErrors:      s.M.ConnErrors.Load(),
		Refused:         s.M.Refused.Load(),
		BlocksIn:        bi,
		BlocksOut:       bo,
		BytesIn:         byi,
		BytesOut:        byo,
		WireBytesIn:     wi,
		WireBytesOut:    wo,
		StreamsByCodec:  byCodec,
	}
}
