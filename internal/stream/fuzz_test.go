package stream

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/compress"
)

// FuzzStreamRoundTrip is the differential fuzz gate from the CI stream
// job: an arbitrary byte stream, pushed through a handshaken Conn pair
// under a fuzzer-chosen codec and fuzzer-chosen write granularity, must
// come out bit-exact on the other side — and the same bytes replayed
// as raw wire frames into a server Conn must either decode or fail with
// a typed error, never panic or hang.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(64), []byte("hello, disco"))
	f.Add(uint8(1), uint8(1), make([]byte, 3*compress.BlockSize))
	f.Add(uint8(2), uint8(97), bytes.Repeat([]byte{0xAB, 0xCD}, 200))
	f.Add(uint8(3), uint8(13), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(4), uint8(200), bytes.Repeat([]byte{0xFF}, compress.BlockSize+1))
	f.Add(uint8(5), uint8(32), testPayload(640))
	f.Add(uint8(6), uint8(7), []byte{0xFF, 0x40, 0x00, 0x02, 0x41, 0x00, 0x00})
	f.Add(uint8(7), uint8(255), testPayload(64*9+5))

	codecs := compress.Names()
	f.Fuzz(func(t *testing.T, codecSel, chunkSel uint8, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		codec := codecs[int(codecSel)%len(codecs)]
		chunk := int(chunkSel)
		if chunk == 0 {
			chunk = 1
		}
		roundTrip(t, codec, chunk, payload)
		rawFrames(t, codec, payload)
	})
}

// roundTrip pushes payload through a client→server Conn pair and
// asserts the bytes survive exactly.
func roundTrip(t *testing.T, codec string, chunk int, payload []byte) {
	cn, sn := net.Pipe()
	defer func() { _ = cn.Close(); _ = sn.Close() }()
	deadline := time.Now().Add(30 * time.Second)
	_ = cn.SetDeadline(deadline)
	_ = sn.SetDeadline(deadline)

	var (
		srv    *Conn
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = Accept(sn, nil)
	}()
	cli, err := Client(cn, codec)
	wg.Wait()
	if err != nil || srvErr != nil {
		t.Fatalf("handshake: client=%v server=%v", err, srvErr)
	}
	// Client clears its handshake deadline; re-arm the fuzz bound.
	_ = cn.SetDeadline(deadline)

	var got []byte
	readErr := make(chan error, 1)
	go func() {
		b, err := io.ReadAll(srv)
		got = b
		readErr <- err
	}()
	for off := 0; off < len(payload); {
		n := chunk
		if off+n > len(payload) {
			n = len(payload) - off
		}
		if _, err := cli.Write(payload[off : off+n]); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
		off += n
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatalf("close-write: %v", err)
	}
	if err := <-readErr; err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip corrupted: sent %d bytes, got %d", len(payload), len(got))
	}
}

// rawFrames replays the fuzz payload as raw post-handshake wire bytes:
// whatever the fuzzer invents, the frame layer must either decode it or
// reject it with a typed error — and must terminate.
func rawFrames(t *testing.T, codec string, wire []byte) {
	cn, sn := net.Pipe()
	defer func() { _ = cn.Close(); _ = sn.Close() }()
	deadline := time.Now().Add(30 * time.Second)
	_ = cn.SetDeadline(deadline)
	_ = sn.SetDeadline(deadline)

	var (
		srv    *Conn
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, srvErr = Accept(sn, nil)
	}()
	if err := writeHello(cn, codec); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := readReply(cn, codec); err != nil {
		t.Fatalf("reply: %v", err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server handshake: %v", srvErr)
	}

	go func() {
		_, _ = cn.Write(wire)
		_ = cn.Close()
	}()
	buf := make([]byte, 4096)
	for {
		_, err := srv.Read(buf)
		if err == nil {
			continue
		}
		if err != io.EOF && !errors.Is(err, ErrProtocol) && !errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, net.ErrClosed) {
			t.Fatalf("raw frame replay: unexpected error class %v", err)
		}
		return
	}
}
