package simrun

import (
	"fmt"
	"strings"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/disco"
)

// Key fingerprints one simulation cell: every configuration field that
// can affect a deterministic run's Results. Two cells with equal keys
// produce identical Results (the simulator is a pure function of its
// configuration), so the runner may serve one from the other's run.
//
// The headline fields are broken out for debuggability; Config carries a
// canonical encoding of everything else (profile shape, cache geometry,
// NoC parameters, the effective DISCO policy), so distinct
// configurations can never alias.
type Key struct {
	Mode      string
	Algorithm string
	Benchmark string
	K         int
	Ops       int
	Warmup    int
	Seed      int64
	// Config is the canonical encoding of the remaining knobs.
	Config string
	// Volatile marks cells that must never be memoized: externally
	// supplied access streams are not captured by the fingerprint.
	Volatile bool
}

// String renders a compact identifier (diagnostics, logs).
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s k=%d ops=%d+%d seed=%d", k.Mode, k.Algorithm, k.Benchmark,
		k.K, k.Ops, k.Warmup, k.Seed)
}

// Canonical renders the full fingerprint — every field that
// distinguishes one deterministic cell from another — as one string.
// It is the persistent store's content address (String omits Config,
// so two cells differing only in, say, VC depth would alias there).
// Volatile is excluded: volatile cells are never cached at any tier.
func (k Key) Canonical() string {
	return fmt.Sprintf("mode=%s|alg=%s|bench=%s|k=%d|ops=%d|warmup=%d|seed=%d|cfg=%s",
		k.Mode, k.Algorithm, k.Benchmark, k.K, k.Ops, k.Warmup, k.Seed, k.Config)
}

// KeyFor fingerprints cfg. The algorithm contributes only its name: all
// instances of one scheme behave identically given the same training
// input, and training is itself a deterministic function of the
// configuration (see cmp.System.trainSC2).
func KeyFor(cfg *cmp.Config) Key {
	alg := "none"
	if cfg.Algorithm != nil {
		alg = cfg.Algorithm.Name()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "prof=%+v", cfg.Profile)
	fmt.Fprintf(&b, "|mc=%d,%v|max=%d|mshr=%d|pref=%d",
		cfg.MCNode, cfg.ExtraMCNodes, cfg.MaxCycles, cfg.MSHRs, cfg.PrefetchDegree)
	fmt.Fprintf(&b, "|l1=%dx%d|bank=%dx%d|tagf=%d",
		cfg.L1Sets, cfg.L1Ways, cfg.BankSets, cfg.BankWays, cfg.TagFactor)
	fmt.Fprintf(&b, "|noc=%d,%d,%v|lat=%d,%d",
		cfg.VCs, cfg.BufDepth, cfg.FlowControl, cfg.BankLatency, cfg.TagLatency)
	fmt.Fprintf(&b, "|disco=%s", discoFingerprint(cfg))
	return Key{
		Mode:      cfg.Mode.String(),
		Algorithm: alg,
		Benchmark: cfg.Profile.Name,
		K:         cfg.K,
		Ops:       cfg.OpsPerCore,
		Warmup:    cfg.WarmupOps,
		Seed:      cfg.Seed,
		Config:    b.String(),
		Volatile:  cfg.Streams != nil,
	}
}

// discoFingerprint encodes the effective DISCO policy. Only DISCO mode
// consults cfg.Disco; a nil override is expanded to the defaults so a
// caller that spells out disco.DefaultConfig dedupes with one that
// leaves the field nil.
func discoFingerprint(cfg *cmp.Config) string {
	if cfg.Mode != cmp.DISCO {
		return "-"
	}
	dc := cfg.Disco
	if dc == nil {
		d := disco.DefaultConfig(cfg.Algorithm)
		dc = &d
	}
	return fmt.Sprintf("g=%g,a=%g,b=%g,cc=%g,cd=%g,nb=%t,sf=%t,lp=%t,ro=%t,cb=%t,ad=%t,ag=%g",
		dc.Gamma, dc.Alpha, dc.Beta, dc.CCth, dc.CDth,
		dc.NonBlocking, dc.SeparateFlit, dc.LowPriorityRule, dc.ResponseOnly,
		dc.CompressCoreBound, dc.Adaptive, dc.AdaptiveGain)
}
