package simrun

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/cmp"
)

// testKey builds a distinct, memoizable key.
func testKey(i int) Key {
	return Key{Mode: "disco", Algorithm: "delta", Benchmark: "bodytrack",
		K: 4, Ops: 100, Warmup: 50, Seed: 1, Config: fmt.Sprintf("cell-%d", i)}
}

func TestSingleFlightMemoization(t *testing.T) {
	r := New(4, true)
	var execs atomic.Int64
	gate := make(chan struct{})
	run := func() (cmp.Results, error) {
		execs.Add(1)
		<-gate // hold the cell in flight so later submissions must join it
		return cmp.Results{Cycles: 42}, nil
	}
	const n = 10
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = r.Submit(testKey(7), run)
	}
	close(gate)
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil || res.Cycles != 42 {
			t.Fatalf("future %d: res=%+v err=%v", i, res, err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("executed %d times, want 1 (single-flight)", got)
	}
	st := r.Stats()
	if st.Submitted != n || st.Executed != 1 || st.Hits != n-1 {
		t.Errorf("stats = %+v, want %d submitted / 1 executed / %d hits", st, n, n-1)
	}
}

func TestNoMemoRunsEveryCell(t *testing.T) {
	r := New(2, false)
	var execs atomic.Int64
	run := func() (cmp.Results, error) { execs.Add(1); return cmp.Results{}, nil }
	for i := 0; i < 5; i++ {
		if _, err := r.Submit(testKey(1), run).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 5 {
		t.Errorf("executed %d times, want 5 with memoization off", got)
	}
	if r.Memoized() {
		t.Error("Memoized() should be false")
	}
}

func TestVolatileKeysNeverCached(t *testing.T) {
	r := New(2, true)
	var execs atomic.Int64
	run := func() (cmp.Results, error) { execs.Add(1); return cmp.Results{}, nil }
	k := testKey(3)
	k.Volatile = true
	for i := 0; i < 3; i++ {
		if _, err := r.Submit(k, run).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("executed %d times, want 3 for a volatile key", got)
	}
}

func TestWorkerBound(t *testing.T) {
	const workers = 3
	r := New(workers, false)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	run := func() (cmp.Results, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return cmp.Results{}, nil
	}
	futs := make([]*Future, 16)
	for i := range futs {
		futs[i] = r.Submit(testKey(i), run)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestFirstErrorCancelsQueuedCells(t *testing.T) {
	r := New(1, true) // one worker serializes execution order
	boom := errors.New("deadlock")
	first := r.Submit(testKey(0), func() (cmp.Results, error) { return cmp.Results{}, boom })
	second := r.Submit(testKey(1), func() (cmp.Results, error) {
		t.Error("canceled cell must not simulate")
		return cmp.Results{}, nil
	})
	if _, err := first.Wait(); !errors.Is(err, boom) {
		t.Fatalf("first cell error = %v, want %v", err, boom)
	}
	if _, err := second.Wait(); !errors.Is(err, boom) {
		t.Errorf("canceled cell error = %v, want wrapped %v", err, boom)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if w := New(0, true).Workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	if w := New(7, true).Workers(); w != 7 {
		t.Errorf("explicit workers = %d, want 7", w)
	}
}

func TestPanicBecomesError(t *testing.T) {
	r := New(2, false)
	boom := r.Submit(testKey(1), func() (cmp.Results, error) {
		panic("wedged configuration")
	})
	_, err := boom.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "wedged configuration" || len(pe.Stack) == 0 {
		t.Errorf("panic error missing value/stack: %+v", pe)
	}
	// The panic cancels the queue like any other failure...
	late, err := func() (cmp.Results, error) {
		return r.Submit(testKey(2), func() (cmp.Results, error) {
			return cmp.Results{Cycles: 1}, nil
		}).Wait()
	}()
	if err == nil && late.Cycles != 1 {
		t.Errorf("post-panic cell neither ran nor was canceled: %+v", late)
	}
	if err != nil && !errors.As(err, &pe) {
		t.Errorf("cancellation should wrap the panic error, got: %v", err)
	}
	// ...and, crucially, the worker goroutine survived to serve it either way.
}
