// Package simrun schedules full-system simulation cells over a bounded
// worker pool with single-flight result memoization.
//
// A cell is one (mode, algorithm, benchmark, configuration) simulation —
// the unit every figure harness in internal/experiments iterates over.
// Cells are embarrassingly parallel (each cmp.System is self-contained
// and deterministic for a fixed seed), so the runner executes them
// concurrently; because results are reduced by the caller in submission
// order, every table, figure, CSV and metrics artifact is byte-identical
// to a serial run regardless of worker count.
//
// The memo cache dedupes repeated cells within and across experiments in
// one process: Fig. 5, Fig. 7 and the ablation all need the same
// Ideal/CC/CNC delta baselines, and re-running them is pure waste. The
// cache is single-flight — two submissions of the same Key share one
// simulation even when both arrive before it finishes.
package simrun

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/disco-sim/disco/internal/cmp"
)

// Runner executes simulation cells on a bounded worker pool. Queued
// cells run in FIFO submission order (with one worker this is exactly
// the serial harness's execution order); workers are spawned on demand
// and exit when the queue drains, so an idle runner holds no goroutines.
type Runner struct {
	workers int

	mu       sync.Mutex
	queue    []*job
	active   int           // running worker goroutines
	cache    map[Key]*cell // single-flight memo (nil when memoization is off)
	hits     uint64
	executed uint64
	done     uint64 // cells completed (simulated or canceled)
	canceled bool
	firstErr error
}

// job pairs a cell with the closure that simulates it.
type job struct {
	c   *cell
	run func() (cmp.Results, error)
}

// cell is one in-flight or completed simulation shared by all futures
// with the same Key.
type cell struct {
	done chan struct{}
	res  cmp.Results
	err  error
}

// Future is a handle to one submitted cell.
type Future struct{ c *cell }

// Wait blocks until the cell completes and returns its result. Waiting
// in submission order yields exactly the serial harness's reduction
// order, which is what keeps artifacts byte-identical.
func (f *Future) Wait() (cmp.Results, error) {
	<-f.c.done
	return f.c.res, f.c.err
}

// Stats summarizes a runner's activity.
type Stats struct {
	// Submitted counts Submit calls.
	Submitted uint64
	// Hits counts submissions served from the memo cache (including
	// joins on a still-running cell).
	Hits uint64
	// Executed counts simulations actually run.
	Executed uint64
	// Done counts distinct cells whose futures have completed (simulated
	// or canceled) — the live campaign-progress number the obs /status
	// endpoint reports while experiments run.
	Done uint64
}

// New returns a runner with the given worker count (<= 0 selects
// runtime.GOMAXPROCS(0)) and, when memo is true, an in-process
// single-flight result cache.
func New(workers int, memo bool) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers}
	if memo {
		r.cache = make(map[Key]*cell)
	}
	return r
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Memoized reports whether the result cache is enabled.
func (r *Runner) Memoized() bool { return r.cache != nil }

// Stats snapshots the activity counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{Submitted: r.hits + r.executed, Hits: r.hits, Executed: r.executed, Done: r.done}
}

// Submit schedules run under key and returns a future for its result.
// Identical keys are single-flighted: only the first submission
// simulates, later ones share the same cell (volatile keys always run).
// After any cell fails, queued cells are canceled with an error that
// wraps the first failure.
func (r *Runner) Submit(key Key, run func() (cmp.Results, error)) *Future {
	r.mu.Lock()
	if r.cache != nil && !key.Volatile {
		if c, ok := r.cache[key]; ok {
			r.hits++
			r.mu.Unlock()
			return &Future{c}
		}
	}
	c := &cell{done: make(chan struct{})}
	if r.cache != nil && !key.Volatile {
		r.cache[key] = c
	}
	r.executed++
	r.queue = append(r.queue, &job{c: c, run: run})
	if r.active < r.workers {
		r.active++
		go r.drain()
	}
	r.mu.Unlock()
	return &Future{c}
}

// drain is one worker: it pops queued cells FIFO until none remain.
func (r *Runner) drain() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.active--
			r.mu.Unlock()
			return
		}
		j := r.queue[0]
		r.queue = r.queue[1:]
		canceled, firstErr := r.canceled, r.firstErr
		r.mu.Unlock()
		if canceled {
			j.c.err = fmt.Errorf("simrun: canceled after earlier failure: %w", firstErr)
			close(j.c.done)
			r.mu.Lock()
			r.done++
			r.mu.Unlock()
			continue
		}
		j.c.res, j.c.err = runCell(j.run)
		r.mu.Lock()
		if j.c.err != nil && !r.canceled {
			r.canceled, r.firstErr = true, j.c.err
		}
		r.done++
		r.mu.Unlock()
		close(j.c.done)
	}
}

// PanicError is a cell panic converted into an ordinary error: one
// pathological configuration must fail its own future (and cancel the
// queue like any other failure), not tear down the worker goroutine and
// every sibling experiment with it.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack),
	// captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("simrun: cell panicked: %v", e.Value)
}

// runCell invokes one cell's simulation closure, converting a panic into
// a *PanicError result.
func runCell(run func() (cmp.Results, error)) (res cmp.Results, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = cmp.Results{}, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return run()
}
