// Package simrun schedules full-system simulation cells over a bounded
// worker pool with single-flight result memoization.
//
// A cell is one (mode, algorithm, benchmark, configuration) simulation —
// the unit every figure harness in internal/experiments iterates over.
// Cells are embarrassingly parallel (each cmp.System is self-contained
// and deterministic for a fixed seed), so the runner executes them
// concurrently; because results are reduced by the caller in submission
// order, every table, figure, CSV and metrics artifact is byte-identical
// to a serial run regardless of worker count.
//
// The memo cache dedupes repeated cells within and across experiments in
// one process: Fig. 5, Fig. 7 and the ablation all need the same
// Ideal/CC/CNC delta baselines, and re-running them is pure waste. The
// cache is single-flight — two submissions of the same Key share one
// simulation even when both arrive before it finishes.
//
// Two optional layers make campaigns crash-safe (DESIGN.md §13):
//
//   - SetStore attaches a persistent content-addressed tier
//     (internal/store) consulted behind the in-process map, so a killed
//     campaign resumes from disk instead of from zero. Only successful
//     results are ever persisted; a corrupt entry quarantines and
//     recomputes.
//   - SetRetry arms bounded, deterministic per-cell retry for transient
//     failures (cell panics, injected I/O errors), so one flaky cell no
//     longer cancels a 136-cell campaign; terminal failures surface as
//     *CellError, recorded rather than silently dropped.
//
// Neither layer is armed by default: a plain New runner behaves exactly
// as it always has.
package simrun

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/store"
)

// ErrInterrupted marks cells canceled by a graceful drain: Interrupt
// stops the runner from starting queued cells, and every such cell's
// future fails with an error wrapping this sentinel. A campaign that
// exits on it is resumable — completed cells are already durable in
// the persistent store.
var ErrInterrupted = errors.New("simrun: campaign interrupted")

// Runner executes simulation cells on a bounded worker pool. Queued
// cells run in FIFO submission order (with one worker this is exactly
// the serial harness's execution order); workers are spawned on demand
// and exit when the queue drains, so an idle runner holds no goroutines.
type Runner struct {
	workers int

	mu        sync.Mutex
	idle      *sync.Cond // broadcast when the last worker exits
	queue     []*job
	active    int           // running worker goroutines
	cache     map[Key]*cell // single-flight memo (nil when memoization is off)
	submitted uint64
	hits      uint64
	executed  uint64
	retries   uint64
	done      uint64 // cells completed (simulated, replayed or canceled)
	canceled  bool
	firstErr  error
	drained   bool // Interrupt called: stop starting queued cells

	store    *store.Store // persistent second tier (nil = off)
	retry    RetryPolicy
	sleep    func(time.Duration) // backoff sleeper (tests stub it)
	observer func(Outcome)       // campaign bookkeeping hook
}

// job pairs a cell with its key and the closure that simulates it.
type job struct {
	c   *cell
	key Key
	run func() (cmp.Results, error)
}

// cell is one in-flight or completed simulation shared by all futures
// with the same Key.
type cell struct {
	done chan struct{}
	res  cmp.Results
	err  error
}

// Future is a handle to one submitted cell.
type Future struct{ c *cell }

// Wait blocks until the cell completes and returns its result. Waiting
// in submission order yields exactly the serial harness's reduction
// order, which is what keeps artifacts byte-identical.
func (f *Future) Wait() (cmp.Results, error) {
	<-f.c.done
	return f.c.res, f.c.err
}

// Stats summarizes a runner's activity.
type Stats struct {
	// Submitted counts Submit calls.
	Submitted uint64
	// Hits counts submissions served from the in-process memo cache
	// (including joins on a still-running cell).
	Hits uint64
	// DiskHits counts cells replayed from the persistent store instead
	// of simulated (0 without SetStore).
	DiskHits uint64
	// Executed counts simulation attempts actually run, retries
	// included.
	Executed uint64
	// Retries counts re-executions after a transient failure.
	Retries uint64
	// Quarantined counts persistent-store entries renamed aside after
	// failing verification (each one was recomputed, never replayed).
	Quarantined uint64
	// Done counts distinct cells whose futures have completed (simulated
	// or canceled) — the live campaign-progress number the obs /status
	// endpoint reports while experiments run.
	Done uint64
}

// RetryPolicy bounds per-cell retry of transient failures. Backoff is
// deterministic — BaseDelay doubling per retry up to MaxDelay, no
// jitter — so a flaky campaign replays identically.
type RetryPolicy struct {
	// MaxAttempts caps executions per cell, first try included; values
	// below 2 disable retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = no cap).
	MaxDelay time.Duration
}

// DefaultRetry is the campaign policy discosim arms: three attempts
// with 50ms/100ms backoffs.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}
}

// delay returns the deterministic backoff preceding the given retry
// (retry 1 = first re-execution).
func (p RetryPolicy) delay(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Outcome describes one completed distinct cell for campaign
// bookkeeping (manifests): memo-cache joins do not produce outcomes,
// disk replays and cancellations do.
type Outcome struct {
	Key Key
	// FromDisk marks results replayed from the persistent store.
	FromDisk bool
	// Attempts counts executions including retries (0 when nothing ran:
	// disk replays and cancellations).
	Attempts int
	// Err is the terminal error: nil for done cells, wrapping
	// ErrInterrupted for drained cells, the cancellation cause for
	// cells canceled after an earlier failure, a *CellError otherwise.
	Err error
}

// New returns a runner with the given worker count (<= 0 selects
// runtime.GOMAXPROCS(0)) and, when memo is true, an in-process
// single-flight result cache.
func New(workers int, memo bool) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers, sleep: time.Sleep}
	r.idle = sync.NewCond(&r.mu)
	if memo {
		r.cache = make(map[Key]*cell)
	}
	return r
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Memoized reports whether the result cache is enabled.
func (r *Runner) Memoized() bool { return r.cache != nil }

// SetStore attaches a persistent result store as the second cache tier.
// Call before the first Submit.
func (r *Runner) SetStore(s *store.Store) { r.store = s }

// Store returns the attached persistent store (nil when off).
func (r *Runner) Store() *store.Store { return r.store }

// SetRetry arms per-cell retry. Call before the first Submit.
func (r *Runner) SetRetry(p RetryPolicy) { r.retry = p }

// SetObserver installs a campaign bookkeeping hook invoked (from
// worker goroutines, unsynchronized with each other) once per distinct
// completed cell. Call before the first Submit.
func (r *Runner) SetObserver(fn func(Outcome)) { r.observer = fn }

// Stats snapshots the activity counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	st := Stats{Submitted: r.submitted, Hits: r.hits, Executed: r.executed,
		Retries: r.retries, Done: r.done}
	r.mu.Unlock()
	if r.store != nil {
		ss := r.store.Stats()
		st.DiskHits = ss.Hits
		st.Quarantined = ss.Quarantined
	}
	return st
}

// Interrupt begins a graceful drain: in-flight cells finish (and their
// results are persisted when a store is attached), queued cells are
// canceled with an error wrapping ErrInterrupted, and new submissions
// are canceled on arrival. Safe to call from a signal handler
// goroutine; idempotent.
func (r *Runner) Interrupt() {
	r.mu.Lock()
	r.drained = true
	r.mu.Unlock()
}

// Quiesce blocks until no cell is queued or executing — after an
// Interrupt this is the "finish in-flight cells" barrier a graceful
// shutdown waits on before flushing the campaign manifest.
func (r *Runner) Quiesce() {
	r.mu.Lock()
	for r.active > 0 || len(r.queue) > 0 {
		r.idle.Wait()
	}
	r.mu.Unlock()
}

// Submit schedules run under key and returns a future for its result.
// Identical keys are single-flighted: only the first submission
// simulates, later ones share the same cell (volatile keys always run).
// After any cell fails terminally, queued cells are canceled with an
// error that wraps the first failure.
func (r *Runner) Submit(key Key, run func() (cmp.Results, error)) *Future {
	r.mu.Lock()
	r.submitted++
	if r.cache != nil && !key.Volatile {
		if c, ok := r.cache[key]; ok {
			r.hits++
			r.mu.Unlock()
			return &Future{c}
		}
	}
	c := &cell{done: make(chan struct{})}
	if r.cache != nil && !key.Volatile {
		r.cache[key] = c
	}
	r.queue = append(r.queue, &job{c: c, key: key, run: run})
	if r.active < r.workers {
		r.active++
		go r.drain()
	}
	r.mu.Unlock()
	return &Future{c}
}

// drain is one worker: it pops queued cells FIFO until none remain.
func (r *Runner) drain() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.active--
			if r.active == 0 {
				r.idle.Broadcast()
			}
			r.mu.Unlock()
			return
		}
		j := r.queue[0]
		r.queue = r.queue[1:]
		canceled, firstErr, drained := r.canceled, r.firstErr, r.drained
		r.mu.Unlock()
		switch {
		case drained:
			r.finish(j, cmp.Results{}, fmt.Errorf("simrun: cell canceled by drain: %w", ErrInterrupted),
				Outcome{Key: j.key, Err: ErrInterrupted})
			continue
		case canceled:
			err := fmt.Errorf("simrun: canceled after earlier failure: %w", firstErr)
			r.finish(j, cmp.Results{}, err, Outcome{Key: j.key, Err: err})
			continue
		}
		// Persistent tier: replay a durably cached result instead of
		// simulating. Get verifies the entry end to end; corruption
		// quarantines and falls through to recomputation.
		if r.store != nil && !j.key.Volatile {
			if res, ok := r.store.Get(j.key.Canonical()); ok {
				r.finish(j, res, nil, Outcome{Key: j.key, FromDisk: true})
				continue
			}
		}
		res, attempts, err := r.runWithRetry(j)
		if err == nil && r.store != nil && !j.key.Volatile {
			// A failed Put is counted by the store and must not fail the
			// cell: the result is in hand, only its durability is lost.
			_ = r.store.Put(j.key.Canonical(), res)
		}
		r.finish(j, res, err, Outcome{Key: j.key, Attempts: attempts, Err: err})
	}
}

// runWithRetry executes one cell, retrying transient failures under
// the armed policy with deterministic backoff.
func (r *Runner) runWithRetry(j *job) (cmp.Results, int, error) {
	max := r.retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	attempt := 0
	for {
		attempt++
		r.mu.Lock()
		r.executed++
		r.mu.Unlock()
		res, err := runCell(j.run)
		if err == nil {
			return res, attempt, nil
		}
		if attempt >= max || !IsTransient(err) {
			return cmp.Results{}, attempt, &CellError{Key: j.key, Attempts: attempt, Err: err}
		}
		r.mu.Lock()
		stop := r.drained || r.canceled
		if !stop {
			r.retries++
		}
		r.mu.Unlock()
		if stop {
			// The campaign is draining or canceled: give up without
			// burning the remaining attempts.
			return cmp.Results{}, attempt, &CellError{Key: j.key, Attempts: attempt, Err: err}
		}
		r.sleep(r.retry.delay(attempt))
	}
}

// finish completes one distinct cell: publish the result, drop errored
// cells from the memo cache (a failure must never be replayed as if it
// were a result), arm cancellation on terminal failures, and notify
// the campaign observer.
func (r *Runner) finish(j *job, res cmp.Results, err error, out Outcome) {
	j.c.res, j.c.err = res, err
	r.mu.Lock()
	if err != nil {
		if r.cache != nil && r.cache[j.key] == j.c {
			delete(r.cache, j.key)
		}
		if !r.canceled && !errors.Is(err, ErrInterrupted) {
			r.canceled, r.firstErr = true, err
		}
	}
	r.done++
	r.mu.Unlock()
	close(j.c.done)
	if r.observer != nil {
		r.observer(out)
	}
}

// CellError is a cell's terminal failure after the retry policy is
// exhausted (Attempts executions). It wraps the last underlying error.
type CellError struct {
	Key      Key
	Attempts int
	Err      error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("simrun: cell %s failed after %d attempt(s): %v", e.Key, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// PanicError is a cell panic converted into an ordinary error: one
// pathological configuration must fail its own future (and cancel the
// queue like any other failure), not tear down the worker goroutine and
// every sibling experiment with it.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack),
	// captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("simrun: cell panicked: %v", e.Value)
}

// IsTransient reports whether err is worth retrying: cell panics
// (*PanicError) and any error exposing Transient() bool — the contract
// injected I/O failures use — qualify. Watchdog stalls and
// configuration errors are deterministic and do not.
func IsTransient(err error) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return false
}

// runCell invokes one cell's simulation closure, converting a panic into
// a *PanicError result.
func runCell(run func() (cmp.Results, error)) (res cmp.Results, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = cmp.Results{}, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return run()
}
