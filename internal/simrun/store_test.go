package simrun

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/store"
)

// corruptOneEntry flips one byte in the single .cell entry under dir.
func corruptOneEntry(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cell") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no entry to corrupt")
}

// storeResults builds a small but non-trivial Results fixture (the
// Mean accumulators exercise the binary round-trip path).
func storeResults(i int) cmp.Results {
	var r cmp.Results
	r.Mode = cmp.DISCO
	r.Benchmark = "bodytrack"
	r.Algorithm = "delta"
	r.Cycles = uint64(1000 + i)
	r.AvgMissLatency = 17.25 + float64(i)
	for j := 0; j <= i%4+2; j++ {
		r.Net.PacketLatency.Add(float64(j) * 3.5)
		r.Net.QueueCycles.Add(float64(i+j) * 0.25)
	}
	return r
}

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{Version: "simrun-test"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiskTierReplaysAcrossRunners is the resume contract at the
// runner level: a second runner (a new "process") over the same cache
// directory replays the first runner's results from disk, bit-exact,
// without re-simulating.
func TestDiskTierReplaysAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int32
	want := storeResults(1)
	run := func() (cmp.Results, error) {
		execs.Add(1)
		return want, nil
	}

	r1 := New(2, true)
	r1.SetStore(testStore(t, dir))
	got, err := r1.Submit(testKey(1), run).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("first run returned wrong results")
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}

	r2 := New(2, true)
	r2.SetStore(testStore(t, dir))
	got2, err := r2.Submit(testKey(1), run).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Error("disk replay is not bit-exact")
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("executions = %d after replay, want still 1", n)
	}
	st := r2.Stats()
	if st.DiskHits != 1 || st.Executed != 0 {
		t.Errorf("stats = %+v, want 1 disk hit and 0 executions", st)
	}
}

// TestVolatileCellsNeverPersist: externally-streamed cells are not
// captured by the fingerprint, so they must bypass the disk tier in
// both directions.
func TestVolatileCellsNeverPersist(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	key.Volatile = true
	var execs atomic.Int32
	run := func() (cmp.Results, error) {
		execs.Add(1)
		return storeResults(2), nil
	}
	for _, r := range []*Runner{New(1, true), New(1, true)} {
		r.SetStore(testStore(t, dir))
		if _, err := r.Submit(key, run).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("executions = %d, want 2 (volatile cells always run)", n)
	}
	if s := testStore(t, dir); true {
		if _, ok := s.Get(key.Canonical()); ok {
			t.Error("a volatile cell was persisted")
		}
	}
}

// TestErroredCellsNeverMemoizedOrPersisted is the regression test for
// the failure-memoization hazard: a failed cell must vanish from the
// in-process memo and must never reach the disk tier, so a later
// campaign retries it instead of replaying the failure.
func TestErroredCellsNeverMemoizedOrPersisted(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	key := testKey(1)

	r1 := New(1, true)
	r1.SetStore(testStore(t, dir))
	if _, err := r1.Submit(key, func() (cmp.Results, error) {
		return cmp.Results{}, boom
	}).Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	r1.mu.Lock()
	_, memoized := r1.cache[key]
	r1.mu.Unlock()
	if memoized {
		t.Error("errored cell left in the memo cache")
	}
	if _, ok := testStore(t, dir).Get(key.Canonical()); ok {
		t.Error("errored cell persisted to the disk tier")
	}

	// A fresh runner over the same store re-executes instead of
	// replaying anything.
	var execs atomic.Int32
	want := storeResults(3)
	r2 := New(1, true)
	r2.SetStore(testStore(t, dir))
	got, err := r2.Submit(key, func() (cmp.Results, error) {
		execs.Add(1)
		return want, nil
	}).Wait()
	if err != nil || execs.Load() != 1 {
		t.Fatalf("retry after failure: err=%v execs=%d, want success on a real execution", err, execs.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("retry returned wrong results")
	}
}

// TestRetryTransientThenSuccess: a cell that panics twice and then
// succeeds completes under a 3-attempt policy, with deterministic
// doubling backoff and correct counters.
func TestRetryTransientThenSuccess(t *testing.T) {
	r := New(1, true)
	r.SetRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second})
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	attempts := 0
	want := storeResults(4)
	got, err := r.Submit(testKey(1), func() (cmp.Results, error) {
		attempts++
		if attempts < 3 {
			panic("flaky")
		}
		return want, nil
	}).Wait()
	if err != nil {
		t.Fatalf("cell failed despite succeeding within the policy: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("retried cell returned wrong results")
	}
	st := r.Stats()
	if st.Executed != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 executions / 2 retries", st)
	}
	wantSleeps := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if !reflect.DeepEqual(slept, wantSleeps) {
		t.Errorf("backoffs = %v, want %v", slept, wantSleeps)
	}
}

// TestRetryExhaustedIsCellError: persistent transient failure becomes
// a *CellError carrying the attempt count and the last cause.
func TestRetryExhaustedIsCellError(t *testing.T) {
	dir := t.TempDir()
	r := New(1, true)
	r.SetStore(testStore(t, dir))
	r.SetRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond})
	r.sleep = func(time.Duration) {}
	key := testKey(1)
	_, err := r.Submit(key, func() (cmp.Results, error) {
		panic("always broken")
	}).Wait()
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", ce.Attempts)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Error("CellError does not expose the underlying *PanicError")
	}
	if st := r.Stats(); st.Executed != 2 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 2 executions / 1 retry", st)
	}
	if _, ok := testStore(t, dir).Get(key.Canonical()); ok {
		t.Error("terminally failed cell persisted to the disk tier")
	}
}

// TestNonTransientNotRetried: deterministic failures (configuration
// errors, watchdog stalls) burn exactly one attempt.
func TestNonTransientNotRetried(t *testing.T) {
	r := New(1, true)
	r.SetRetry(DefaultRetry())
	r.sleep = func(time.Duration) { t.Error("backoff slept for a non-transient failure") }
	_, err := r.Submit(testKey(1), func() (cmp.Results, error) {
		return cmp.Results{}, errors.New("bad config")
	}).Wait()
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("err = %v, want *CellError after exactly 1 attempt", err)
	}
	if st := r.Stats(); st.Executed != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want 1 execution / 0 retries", st)
	}
}

// TestInterruptDrains: Interrupt lets the in-flight cell finish (and
// persist), cancels the queued remainder with ErrInterrupted, and
// Quiesce blocks until everything settles. The observer sees every
// distinct cell exactly once with the right disposition.
func TestInterruptDrains(t *testing.T) {
	dir := t.TempDir()
	r := New(1, true)
	r.SetStore(testStore(t, dir))
	var outcomes atomic.Int32
	var canceledOutcomes atomic.Int32
	r.SetObserver(func(out Outcome) {
		outcomes.Add(1)
		if out.Err != nil {
			if !errors.Is(out.Err, ErrInterrupted) {
				t.Errorf("canceled outcome error = %v, want wrapped ErrInterrupted", out.Err)
			}
			if out.Attempts != 0 {
				t.Errorf("canceled outcome attempts = %d, want 0", out.Attempts)
			}
			canceledOutcomes.Add(1)
		}
	})
	release := make(chan struct{})
	started := make(chan struct{})
	want := storeResults(5)
	first := r.Submit(testKey(0), func() (cmp.Results, error) {
		close(started)
		<-release
		return want, nil
	})
	var rest []*Future
	for i := 1; i < 4; i++ {
		i := i
		rest = append(rest, r.Submit(testKey(i), func() (cmp.Results, error) {
			return storeResults(i), nil
		}))
	}
	<-started
	r.Interrupt()
	close(release)
	r.Quiesce()

	if got, err := first.Wait(); err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("in-flight cell did not finish cleanly: err=%v", err)
	}
	if _, ok := testStore(t, dir).Get(testKey(0).Canonical()); !ok {
		t.Error("in-flight cell's result not persisted before shutdown")
	}
	for i, f := range rest {
		if _, err := f.Wait(); !errors.Is(err, ErrInterrupted) {
			t.Errorf("queued cell %d: err = %v, want wrapped ErrInterrupted", i+1, err)
		}
		if _, ok := testStore(t, dir).Get(testKey(i + 1).Canonical()); ok {
			t.Errorf("canceled cell %d was persisted", i+1)
		}
	}
	// Submissions after the drain cancel immediately too.
	if _, err := r.Submit(testKey(9), func() (cmp.Results, error) {
		t.Error("post-drain submission executed")
		return cmp.Results{}, nil
	}).Wait(); !errors.Is(err, ErrInterrupted) {
		t.Errorf("post-drain submission err = %v, want wrapped ErrInterrupted", err)
	}
	if st := r.Stats(); st.Done != 5 {
		t.Errorf("done = %d, want 5", st.Done)
	}
	if outcomes.Load() != 5 || canceledOutcomes.Load() != 4 {
		t.Errorf("observer saw %d outcomes (%d canceled), want 5 (4 canceled)",
			outcomes.Load(), canceledOutcomes.Load())
	}
}

// TestQuarantinedEntryRecomputes wires the corruption path through the
// runner: a corrupt entry must be quarantined and transparently
// recomputed, surfacing in Stats.Quarantined.
func TestQuarantinedEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	want := storeResults(6)
	s1 := testStore(t, dir)
	if err := s1.Put(key.Canonical(), want); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk (flip one byte mid-file).
	corruptOneEntry(t, dir)

	var execs atomic.Int32
	r := New(1, true)
	r.SetStore(testStore(t, dir))
	got, err := r.Submit(key, func() (cmp.Results, error) {
		execs.Add(1)
		return want, nil
	}).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 1 {
		t.Error("corrupt entry was not recomputed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recomputed results are wrong")
	}
	st := r.Stats()
	if st.Quarantined != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 quarantined / 0 disk hits", st)
	}
	// The recomputed result was re-persisted: a fresh runner replays it.
	r2 := New(1, true)
	r2.SetStore(testStore(t, dir))
	if _, err := r2.Submit(key, func() (cmp.Results, error) {
		t.Error("replay after recompute executed the cell")
		return cmp.Results{}, nil
	}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryDelaySchedule(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
	want := []time.Duration{50, 100, 200, 300, 300}
	for i, w := range want {
		if got := p.delay(i + 1); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}
