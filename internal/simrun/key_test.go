package simrun

import (
	"testing"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/trace"
)

// discoCfg builds a DISCO-mode config with an optional policy mutation.
func discoCfg(t *testing.T, mut func(*disco.Config)) cmp.Config {
	t.Helper()
	prof, ok := trace.ByName("bodytrack")
	if !ok {
		t.Fatal("profile missing")
	}
	alg := compress.NewDelta()
	cfg := cmp.DefaultConfig(cmp.DISCO, alg, prof)
	if mut != nil {
		dc := disco.DefaultConfig(alg)
		mut(&dc)
		cfg.Disco = &dc
	}
	return cfg
}

func TestKeyDistinguishesDiscoConfigs(t *testing.T) {
	base := discoCfg(t, nil)
	baseKey := KeyFor(&base)
	muts := map[string]func(*disco.Config){
		"blocking":      func(c *disco.Config) { c.NonBlocking = false },
		"no-sep-flit":   func(c *disco.Config) { c.SeparateFlit = false },
		"no-low-prio":   func(c *disco.Config) { c.LowPriorityRule = false },
		"all-classes":   func(c *disco.Config) { c.ResponseOnly = false },
		"thresholds":    func(c *disco.Config) { c.CCth, c.CDth = -1e9, -1e9 },
		"beta":          func(c *disco.Config) { c.Beta = 0 },
		"adaptive":      func(c *disco.Config) { c.Adaptive = true; c.AdaptiveGain = 1 },
		"gamma":         func(c *disco.Config) { c.Gamma = 0.25 },
		"core-bound":    func(c *disco.Config) { c.CompressCoreBound = true },
		"cc-threshold":  func(c *disco.Config) { c.CCth = 2 },
		"cd-threshold":  func(c *disco.Config) { c.CDth = 2 },
		"adaptive-gain": func(c *disco.Config) { c.Adaptive = true; c.AdaptiveGain = 0.5 },
	}
	seen := map[Key]string{baseKey: "default"}
	for name, mut := range muts {
		cfg := discoCfg(t, mut)
		k := KeyFor(&cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q aliases %q: %v", name, prev, k)
		}
		seen[k] = name
	}
}

func TestKeyExpandsDefaultDiscoConfig(t *testing.T) {
	// An explicit DefaultConfig must dedupe with a nil (defaulted) one.
	nilCfg := discoCfg(t, nil)
	explicit := discoCfg(t, func(*disco.Config) {})
	if KeyFor(&nilCfg) != KeyFor(&explicit) {
		t.Error("explicit default DISCO config should produce the same key as nil")
	}
}

func TestKeySeparatesModesAndWorkloads(t *testing.T) {
	prof, _ := trace.ByName("bodytrack")
	other, _ := trace.ByName("canneal")
	mk := func(mode cmp.Mode, p trace.Profile, mut func(*cmp.Config)) Key {
		cfg := cmp.DefaultConfig(mode, compress.NewDelta(), p)
		if mut != nil {
			mut(&cfg)
		}
		return KeyFor(&cfg)
	}
	keys := []Key{
		mk(cmp.Ideal, prof, nil),
		mk(cmp.CC, prof, nil),
		mk(cmp.DISCO, prof, nil),
		mk(cmp.DISCO, other, nil),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.K = 8 }),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.Seed = 2 }),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.OpsPerCore = 999 }),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.VCs = 4 }),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.BufDepth = 16 }),
		mk(cmp.DISCO, prof, func(c *cmp.Config) { c.PrefetchDegree = 2 }),
	}
	seen := map[Key]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Errorf("key %d aliases key %d: %v", i, j, k)
		}
		seen[k] = i
	}
	// And the same config twice must collide (that is the memo hit).
	if mk(cmp.DISCO, prof, nil) != mk(cmp.DISCO, prof, nil) {
		t.Error("identical configs should share a key")
	}
}

func TestKeyMarksStreamsVolatile(t *testing.T) {
	prof, _ := trace.ByName("bodytrack")
	cfg := cmp.DefaultConfig(cmp.DISCO, compress.NewDelta(), prof)
	cfg.Streams = make([]trace.Stream, cfg.K*cfg.K)
	if !KeyFor(&cfg).Volatile {
		t.Error("externally supplied streams must disable memoization")
	}
}
