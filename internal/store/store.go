// Package store is the persistent, content-addressed result cache
// behind resumable experiment campaigns (DESIGN.md §13).
//
// Each entry holds one serialized cmp.Results keyed by the canonical
// simrun configuration fingerprint plus a code-version stamp, so a
// cache directory can only ever replay results the exact same code
// would recompute. Durability follows the classic protocol: write to a
// unique temp file, fsync, atomically rename into place, fsync the
// directory. Every entry carries a SHA-256 checksum over its payload;
// a read that fails verification (torn write, truncation, bit flip)
// quarantines the file aside and reports a miss, so corruption is
// always repaired by recomputation and can never propagate into an
// artifact.
//
// The store is deliberately ignorant of scheduling: internal/simrun
// wires it in as the second cache tier behind its in-process
// single-flight map.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"

	"github.com/disco-sim/disco/internal/cmp"
)

// magic opens every entry file; the trailing digit is the format
// version, bumped on any layout change.
var magic = [4]byte{'D', 'S', 'T', '1'}

// headerSize is magic + uint32 payload length + SHA-256 checksum.
const headerSize = 4 + 4 + sha256.Size

// entrySuffix names committed entries; quarantineSuffix marks entries
// renamed aside after failing verification.
const (
	entrySuffix      = ".cell"
	quarantineSuffix = ".quarantined"
)

// entry is the gob payload of one cache file. Key and Version repeat
// the identity the file name was derived from, so a read verifies the
// full fingerprint rather than trusting the hash alone.
type entry struct {
	Key     string
	Version string
	Results cmp.Results
}

// Stats counts the store's activity. All counters are cumulative since
// Open.
type Stats struct {
	// Hits / Misses count Get outcomes (a quarantined or version-alien
	// entry is a miss).
	Hits, Misses uint64
	// Puts counts entries durably committed.
	Puts uint64
	// Quarantined counts entries renamed aside after failing checksum,
	// framing or fingerprint verification.
	Quarantined uint64
	// PutErrors / GetErrors count I/O failures (a failed Put never
	// leaves a visible entry; a failed Get reports a miss).
	PutErrors, GetErrors uint64
}

// Options configure Open.
type Options struct {
	// Version is the code-version stamp mixed into every entry's
	// identity; empty selects VersionStamp().
	Version string
	// FS overrides the filesystem (nil = OSFS); tests inject faults
	// through it.
	FS FS
}

// Store is a persistent result cache rooted at one directory. It is
// safe for concurrent use.
type Store struct {
	dir     string
	version string
	fs      FS
	pid     int

	mu    sync.Mutex
	stats Stats
	seq   uint64 // uniquifies temp and quarantine names
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	version := opts.Version
	if version == "" {
		version = VersionStamp()
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &Store{dir: dir, version: version, fs: fs, pid: os.Getpid()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the effective code-version stamp.
func (s *Store) Version() string { return s.version }

// Stats snapshots the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// EntryName returns the file basename an entry for key lives under:
// the hex SHA-256 of the version stamp and the canonical key. The
// content address commits to both, so entries written by other code
// versions can never alias.
func (s *Store) EntryName(key string) string {
	h := sha256.New()
	_, _ = h.Write([]byte(s.version)) // hash.Hash.Write never errors
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil)[:16]) + entrySuffix
}

// Get looks key up, verifying the entry end to end. Any verification
// failure quarantines the file and reports a miss; I/O errors also
// report a miss (the campaign recomputes instead of failing).
func (s *Store) Get(key string) (cmp.Results, bool) {
	name := filepath.Join(s.dir, s.EntryName(key))
	data, err := s.fs.ReadFile(name)
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		if !os.IsNotExist(err) {
			s.stats.GetErrors++
		}
		s.mu.Unlock()
		return cmp.Results{}, false
	}
	res, err := decodeEntry(data, key, s.version)
	if err != nil {
		s.quarantine(name)
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return cmp.Results{}, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return res, true
}

// Put durably commits res under key: unique temp file → write → fsync
// → close → rename → directory fsync. On any failure the temp file is
// removed and no entry becomes visible, so readers only ever observe
// absent or fully committed entries.
func (s *Store) Put(key string, res cmp.Results) error {
	data, err := encodeEntry(key, s.version, res)
	if err != nil {
		return s.putErr(fmt.Errorf("store: encode %s: %w", key, err))
	}
	final := filepath.Join(s.dir, s.EntryName(key))
	s.mu.Lock()
	s.seq++
	tmp := fmt.Sprintf("%s.tmp.%d.%d", final, s.pid, s.seq)
	s.mu.Unlock()
	f, err := s.fs.Create(tmp)
	if err != nil {
		return s.putErr(fmt.Errorf("store: create temp: %w", err))
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return s.putErr(fmt.Errorf("store: write temp: %w", err))
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return s.putErr(fmt.Errorf("store: fsync temp: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return s.putErr(fmt.Errorf("store: close temp: %w", err))
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return s.putErr(fmt.Errorf("store: commit rename: %w", err))
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The entry is visible but its directory record may not survive
		// a crash; surface the error so the campaign can report it.
		return s.putErr(fmt.Errorf("store: fsync dir: %w", err))
	}
	s.mu.Lock()
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// putErr counts one failed Put.
func (s *Store) putErr(err error) error {
	s.mu.Lock()
	s.stats.PutErrors++
	s.mu.Unlock()
	return err
}

// quarantine renames a verification-failing entry aside (preserving it
// for post-mortems) and counts it. A rename failure falls back to
// removal; if even that fails the entry stays, but the next Put
// atomically replaces it, so the campaign still converges.
func (s *Store) quarantine(name string) {
	s.mu.Lock()
	s.stats.Quarantined++
	s.seq++
	aside := fmt.Sprintf("%s%s.%d.%d", name, quarantineSuffix, s.pid, s.seq)
	s.mu.Unlock()
	if err := s.fs.Rename(name, aside); err != nil {
		_ = s.fs.Remove(name)
	}
}

// encodeEntry frames one entry: magic, payload length, SHA-256 over
// the payload, then the gob payload itself.
func encodeEntry(key, version string, res cmp.Results) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(entry{Key: key, Version: version, Results: res}); err != nil {
		return nil, err
	}
	buf := make([]byte, headerSize+payload.Len())
	copy(buf, magic[:])
	binary.LittleEndian.PutUint32(buf[4:], uint32(payload.Len()))
	sum := sha256.Sum256(payload.Bytes())
	copy(buf[8:], sum[:])
	copy(buf[headerSize:], payload.Bytes())
	return buf, nil
}

// decodeEntry verifies framing, checksum and fingerprint, returning
// the stored results only when every check passes.
func decodeEntry(data []byte, key, version string) (cmp.Results, error) {
	if len(data) < headerSize {
		return cmp.Results{}, fmt.Errorf("store: entry truncated to %d bytes", len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return cmp.Results{}, fmt.Errorf("store: bad magic %q", data[:4])
	}
	plen := binary.LittleEndian.Uint32(data[4:])
	payload := data[headerSize:]
	if uint32(len(payload)) != plen {
		return cmp.Results{}, fmt.Errorf("store: payload is %d bytes, header says %d", len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[8:headerSize]) {
		return cmp.Results{}, fmt.Errorf("store: checksum mismatch")
	}
	var e entry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return cmp.Results{}, fmt.Errorf("store: decode: %w", err)
	}
	if e.Key != key || e.Version != version {
		return cmp.Results{}, fmt.Errorf("store: fingerprint mismatch (hash alias)")
	}
	return e.Results, nil
}

// VersionStamp derives the default code-version stamp from the build
// info: VCS revision plus dirty flag when the binary was stamped,
// otherwise the main module version. Unstamped development builds all
// share the "dev" stamp — delete the cache directory (or pass an
// explicit Options.Version) when changing code that alters results.
func VersionStamp() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", ""
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		return rev + dirty
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "dev"
}
