package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/cmp"
)

// testResults builds a Results fixture exercising every encoding shape
// that matters: unsigned counters, floats, and the stats.Mean
// accumulators (unexported fields, round-tripped via MarshalBinary).
func testResults(seed int64) cmp.Results {
	var r cmp.Results
	r.Mode = cmp.DISCO
	r.Benchmark = fmt.Sprintf("bench%d", seed)
	r.Algorithm = "delta"
	r.Cycles = uint64(10_000 + seed)
	r.AvgMissLatency = 21.5 + float64(seed)/7
	r.AvgMissTotal = 90.25 + float64(seed)
	r.Misses = uint64(seed * 13)
	r.L1Hits, r.L1Misses = uint64(seed*31), uint64(seed*5)
	r.Net.Injected = uint64(seed * 3)
	r.Net.Ejected = uint64(seed * 3)
	r.Net.FlitHopsByClass = [3]uint64{uint64(seed), uint64(seed * 2), uint64(seed * 3)}
	for i := int64(0); i <= 8+seed%5; i++ {
		r.Net.PacketLatency.Add(float64(i) * 1.37)
		r.Net.QueueCycles.Add(float64(i+seed) * 0.61)
		r.Net.QueueDelay.Add(1.0 / float64(i+1))
	}
	return r
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Version == "" {
		opts.Version = "test-v1"
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	want := testResults(3)
	if err := s.Put("cell-a", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("cell-a")
	if !ok {
		t.Fatal("Get missed a just-committed entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := s.Get("cell-b"); ok {
		t.Error("Get hit an absent key")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 put / 1 hit / 1 miss", st)
	}
}

// TestVersionIsolation: entries are content-addressed by version stamp
// too, so a store opened under different code can never replay them.
func TestVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{Version: "rev-a"})
	if err := s1.Put("cell", testResults(1)); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{Version: "rev-b"})
	if _, ok := s2.Get("cell"); ok {
		t.Error("a rev-b store replayed a rev-a entry")
	}
	if _, ok := s1.Get("cell"); !ok {
		t.Error("the writing store no longer sees its own entry")
	}
}

// TestFingerprintMismatchRejected covers the hash-alias defense: even
// when the file name matches, a payload recorded under a different key
// or version must fail verification.
func TestFingerprintMismatchRejected(t *testing.T) {
	data, err := encodeEntry("key-a", "v1", testResults(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeEntry(data, "key-a", "v1"); err != nil {
		t.Fatalf("pristine entry rejected: %v", err)
	}
	if _, err := decodeEntry(data, "key-b", "v1"); err == nil {
		t.Error("entry decoded under the wrong key")
	}
	if _, err := decodeEntry(data, "key-a", "v2"); err == nil {
		t.Error("entry decoded under the wrong version")
	}
}

// TestCorruptionNeverPropagates is the store's core safety property:
// any single bit flip, truncation or trailing-garbage append makes Get
// report a miss and quarantine the file — never return wrong results —
// and a subsequent Put/Get converges back to the correct value.
func TestCorruptionNeverPropagates(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := testResults(7)
	const key = "cell-corrupt"
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, s.EntryName(key))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	type corruption struct {
		name string
		data []byte
	}
	var cases []corruption
	// Bit flips: every header byte plus a random sample of the payload.
	for off := 0; off < headerSize; off++ {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 1 << uint(rng.Intn(8))
		cases = append(cases, corruption{fmt.Sprintf("flip@%d", off), mut})
	}
	for i := 0; i < 64; i++ {
		off := headerSize + rng.Intn(len(pristine)-headerSize)
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 1 << uint(rng.Intn(8))
		cases = append(cases, corruption{fmt.Sprintf("flip@%d", off), mut})
	}
	// Truncations: empty, mid-header, header-only, and a random sample
	// of payload cut points (torn writes land here).
	cuts := []int{0, 1, headerSize - 1, headerSize, len(pristine) - 1}
	for i := 0; i < 16; i++ {
		cuts = append(cuts, rng.Intn(len(pristine)))
	}
	for _, n := range cuts {
		cases = append(cases, corruption{fmt.Sprintf("trunc@%d", n), pristine[:n]})
	}
	cases = append(cases, corruption{"append-garbage", append(append([]byte(nil), pristine...), 0xAA)})

	for _, c := range cases {
		before := s.Stats().Quarantined
		if err := os.WriteFile(path, c.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if res, ok := s.Get(key); ok {
			// The one thing that must never happen: corruption served as
			// a result. (Even bitwise-equal would mean verification is
			// not doing its job.)
			t.Fatalf("%s: Get returned ok for a corrupted entry (res %+v)", c.name, res)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupted entry still visible under its name", c.name)
		}
		if got := s.Stats().Quarantined; got != before+1 {
			t.Errorf("%s: quarantined count %d, want %d", c.name, got, before+1)
		}
		// Recompute path: a fresh Put converges back to the truth.
		if err := s.Put(key, want); err != nil {
			t.Fatalf("%s: re-put: %v", c.name, err)
		}
		got, ok := s.Get(key)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: store did not converge after recompute (ok=%v)", c.name, ok)
		}
	}
	// Every quarantined file is preserved aside for post-mortems.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	aside := 0
	for _, e := range entries {
		if strings.Contains(e.Name(), quarantineSuffix) {
			aside++
		}
	}
	if aside != len(cases) {
		t.Errorf("%d quarantine files on disk, want %d", aside, len(cases))
	}
}

// TestTornWriteQuarantines drives the ShortWrite torn-write simulation
// end to end: the Put "succeeds" (as a crash after a partial write
// would appear to), and the next Get detects, quarantines, misses.
func TestTornWriteQuarantines(t *testing.T) {
	dir := t.TempDir()
	torn := &InjectFS{Base: OSFS{}, ShortWrite: headerSize + 5}
	s := openTest(t, dir, Options{FS: torn})
	if err := s.Put("cell", testResults(4)); err != nil {
		t.Fatalf("torn write surfaced as a Put error: %v", err)
	}
	if _, ok := s.Get("cell"); ok {
		t.Fatal("Get served a torn entry")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	// A healthy store over the same directory recovers by recomputing.
	s2 := openTest(t, dir, Options{})
	want := testResults(4)
	if err := s2.Put("cell", want); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("cell"); !ok || !reflect.DeepEqual(got, want) {
		t.Error("store did not converge after the torn write")
	}
}

// TestPutFailuresLeaveNoEntry fails each step of the durability
// protocol in turn and checks the invariant: a failed Put returns an
// error and leaves nothing visible — no entry, no temp residue.
func TestPutFailuresLeaveNoEntry(t *testing.T) {
	errInjected := errors.New("injected fault")
	for _, op := range []string{"create", "write", "sync", "close", "rename"} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			fs := &InjectFS{Base: OSFS{}}
			s := openTest(t, dir, Options{FS: fs})
			fs.Hook = func(gotOp, name string) error {
				if gotOp == op {
					return errInjected
				}
				return nil
			}
			err := s.Put("cell", testResults(5))
			if !errors.Is(err, errInjected) {
				t.Fatalf("Put error = %v, want wrapped injected fault", err)
			}
			fs.Hook = nil
			if _, ok := s.Get("cell"); ok {
				t.Error("entry visible after failed Put")
			}
			files, rerr := os.ReadDir(dir)
			if rerr != nil {
				t.Fatal(rerr)
			}
			for _, f := range files {
				if strings.Contains(f.Name(), ".tmp.") {
					t.Errorf("temp residue left behind: %s", f.Name())
				}
				if strings.HasSuffix(f.Name(), entrySuffix) {
					t.Errorf("committed entry after failed Put: %s", f.Name())
				}
			}
			if st := s.Stats(); st.PutErrors != 1 {
				t.Errorf("PutErrors = %d, want 1", st.PutErrors)
			}
		})
	}
}

// TestSyncDirFailureIsReported: after the rename the entry is
// legitimately visible, but the weaker durability must still surface
// as a Put error so campaigns can report it.
func TestSyncDirFailureIsReported(t *testing.T) {
	errInjected := errors.New("injected fault")
	fs := &InjectFS{Base: OSFS{}}
	s := openTest(t, t.TempDir(), Options{FS: fs})
	fs.Hook = func(op, name string) error {
		if op == "syncdir" {
			return errInjected
		}
		return nil
	}
	if err := s.Put("cell", testResults(6)); !errors.Is(err, errInjected) {
		t.Fatalf("Put error = %v, want wrapped injected fault", err)
	}
	fs.Hook = nil
	if _, ok := s.Get("cell"); !ok {
		t.Error("renamed entry should remain readable after a syncdir failure")
	}
}

func TestGetReadErrorIsMiss(t *testing.T) {
	errInjected := errors.New("injected fault")
	fs := &InjectFS{Base: OSFS{}}
	s := openTest(t, t.TempDir(), Options{FS: fs})
	if err := s.Put("cell", testResults(8)); err != nil {
		t.Fatal(err)
	}
	fs.Hook = func(op, name string) error {
		if op == "readfile" {
			return errInjected
		}
		return nil
	}
	if _, ok := s.Get("cell"); ok {
		t.Error("Get reported a hit through a failing read")
	}
	st := s.Stats()
	if st.GetErrors != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want 1 GetError and no quarantine (the file may be fine)", st)
	}
	fs.Hook = nil
	if _, ok := s.Get("cell"); !ok {
		t.Error("entry unreadable after the transient read fault cleared")
	}
}

func TestManifestRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if s.HasManifest() {
		t.Error("fresh store claims a manifest")
	}
	m := NewManifest(s.Version())
	m.Record(CellRecord{Key: "b", Entry: "b.cell", Status: StatusDone, Source: SourceSimulated, Attempts: 1})
	m.Record(CellRecord{Key: "a", Entry: "a.cell", Status: StatusFailed, Attempts: 3, Error: "boom"})
	m.Record(CellRecord{Key: "c", Entry: "c.cell", Status: StatusCanceled, Error: "interrupted"})
	// Upsert: a resumed cell's record replaces the original.
	m.Record(CellRecord{Key: "a", Entry: "a.cell", Status: StatusDone, Source: SourceDisk})
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	if !s.HasManifest() {
		t.Fatal("HasManifest false after save")
	}
	got, err := s.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != s.Version() {
		t.Errorf("version = %q, want %q", got.Version, s.Version())
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d, want 3", got.Len())
	}
	done, failed, canceled := got.Counts()
	if done != 2 || failed != 0 || canceled != 1 {
		t.Errorf("counts = %d/%d/%d, want 2 done, 0 failed, 1 canceled", done, failed, canceled)
	}
	for i, want := range []string{"a", "b", "c"} {
		if got.Cells[i].Key != want {
			t.Errorf("cell %d key = %q, want %q (manifest must be key-sorted)", i, got.Cells[i].Key, want)
		}
	}
}

// TestManifestSaveFailureKeepsOld: the manifest rename is atomic, so a
// failed save leaves the previous ledger intact.
func TestManifestSaveFailureKeepsOld(t *testing.T) {
	errInjected := errors.New("injected fault")
	fs := &InjectFS{Base: OSFS{}}
	s := openTest(t, t.TempDir(), Options{FS: fs})
	m1 := NewManifest(s.Version())
	m1.Record(CellRecord{Key: "a", Status: StatusDone})
	if err := s.SaveManifest(m1); err != nil {
		t.Fatal(err)
	}
	m2 := NewManifest(s.Version())
	m2.Record(CellRecord{Key: "a", Status: StatusDone})
	m2.Record(CellRecord{Key: "b", Status: StatusDone})
	fs.Hook = func(op, name string) error {
		if op == "rename" {
			return errInjected
		}
		return nil
	}
	if err := s.SaveManifest(m2); !errors.Is(err, errInjected) {
		t.Fatalf("SaveManifest error = %v, want wrapped injected fault", err)
	}
	fs.Hook = nil
	got, err := s.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("manifest has %d cells after failed save, want the original 1", got.Len())
	}
}

// TestEntryNameStability pins the content address: same key and
// version always map to the same file; any ingredient change remaps.
func TestEntryNameStability(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{Version: "v"})
	s2 := openTest(t, dir, Options{Version: "v"})
	if s1.EntryName("k") != s2.EntryName("k") {
		t.Error("same key+version produced different entry names")
	}
	if s1.EntryName("k") == s1.EntryName("k2") {
		t.Error("different keys share an entry name")
	}
	s3 := openTest(t, dir, Options{Version: "v2"})
	if s1.EntryName("k") == s3.EntryName("k") {
		t.Error("different versions share an entry name")
	}
	if !strings.HasSuffix(s1.EntryName("k"), entrySuffix) {
		t.Errorf("entry name %q missing %q suffix", s1.EntryName("k"), entrySuffix)
	}
}
