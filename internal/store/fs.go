package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store's durability protocol
// needs. It exists so the fault-injection tests can fail any single
// operation (create, write, sync, close, rename) and prove the store
// never leaves a readable-but-wrong entry behind; production code uses
// OSFS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making a prior rename durable.
	SyncDir(dir string) error
}

// File is a writable handle with explicit durability.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close releases the handle (data durability comes from Sync).
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS. Directory fsync is advisory on platforms that
// do not support it; the error from Sync is still surfaced so the
// injectable FS can exercise the failure path.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// InjectFS wraps a base FS and fails selected operations — the harness
// behind the store's rename/fsync/torn-write error-path tests. Hook is
// consulted before every operation with the operation name ("mkdir",
// "create", "write", "sync", "close", "readfile", "rename", "remove",
// "syncdir") and the file path; a non-nil return aborts that operation.
// ShortWrite > 0 truncates every write to at most that many bytes while
// still reporting full success, simulating a torn write that a later
// crash makes visible.
type InjectFS struct {
	Base FS
	Hook func(op, name string) error
	// ShortWrite caps the bytes any single file accepts (0 = off).
	ShortWrite int
}

func (f *InjectFS) hook(op, name string) error {
	if f.Hook == nil {
		return nil
	}
	return f.Hook(op, name)
}

// MkdirAll implements FS.
func (f *InjectFS) MkdirAll(dir string) error {
	if err := f.hook("mkdir", dir); err != nil {
		return err
	}
	return f.Base.MkdirAll(dir)
}

// Create implements FS.
func (f *InjectFS) Create(name string) (File, error) {
	if err := f.hook("create", name); err != nil {
		return nil, err
	}
	base, err := f.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, name: name, base: base}, nil
}

// ReadFile implements FS.
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	if err := f.hook("readfile", name); err != nil {
		return nil, err
	}
	return f.Base.ReadFile(name)
}

// Rename implements FS.
func (f *InjectFS) Rename(oldname, newname string) error {
	if err := f.hook("rename", oldname); err != nil {
		return err
	}
	return f.Base.Rename(oldname, newname)
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	if err := f.hook("remove", name); err != nil {
		return err
	}
	return f.Base.Remove(name)
}

// SyncDir implements FS.
func (f *InjectFS) SyncDir(dir string) error {
	if err := f.hook("syncdir", dir); err != nil {
		return err
	}
	return f.Base.SyncDir(dir)
}

// injectFile applies the wrapper's hook and short-write cap to one file.
type injectFile struct {
	fs      *InjectFS
	name    string
	base    File
	written int
}

func (w *injectFile) Write(p []byte) (int, error) {
	if err := w.fs.hook("write", w.name); err != nil {
		return 0, err
	}
	n := len(p)
	if cap := w.fs.ShortWrite; cap > 0 {
		room := cap - w.written
		if room < 0 {
			room = 0
		}
		if room < n {
			// Persist only the prefix but report success: the damage
			// surfaces on the next read, exactly like a torn write.
			if _, err := w.base.Write(p[:room]); err != nil {
				return 0, err
			}
			w.written += room
			return len(p), nil
		}
	}
	m, err := w.base.Write(p)
	w.written += m
	if err != nil {
		return m, err
	}
	if m != n {
		return m, fmt.Errorf("store: short write to %s: %d of %d bytes", filepath.Base(w.name), m, n)
	}
	return m, nil
}

func (w *injectFile) Sync() error {
	if err := w.fs.hook("sync", w.name); err != nil {
		return err
	}
	return w.base.Sync()
}

func (w *injectFile) Close() error {
	if err := w.fs.hook("close", w.name); err != nil {
		_ = w.base.Close() // release the handle even when injecting failure
		return err
	}
	return w.base.Close()
}
