package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// ManifestName is the campaign manifest's file name inside a cache
// directory.
const ManifestName = "manifest.json"

// Cell statuses recorded in a manifest.
const (
	StatusDone     = "done"     // results produced (simulated or replayed)
	StatusFailed   = "failed"   // terminal failure after retries
	StatusCanceled = "canceled" // never ran: queue canceled or drained
)

// Cell sources recorded in a manifest.
const (
	SourceSimulated = "simulated" // computed in this campaign
	SourceDisk      = "disk"      // replayed from the persistent store
)

// CellRecord is one campaign cell's outcome.
type CellRecord struct {
	// Key is the human-readable cell identifier (simrun.Key.String).
	Key string `json:"key"`
	// Entry is the store file basename the cell's results live under.
	Entry string `json:"entry"`
	// Status is done, failed or canceled.
	Status string `json:"status"`
	// Source distinguishes simulated results from disk replays (set for
	// done cells only).
	Source string `json:"source,omitempty"`
	// Attempts counts executions including retries (0 for disk hits and
	// canceled cells).
	Attempts int `json:"attempts,omitempty"`
	// Error is the terminal error text for failed/canceled cells.
	Error string `json:"error,omitempty"`
}

// Manifest records a campaign's distinct cells and their outcomes —
// the resumability ledger a killed campaign leaves behind. Durability
// of results lives in the store entries themselves; the manifest is
// the human- and tool-readable account of what happened. It is safe
// for concurrent use.
type Manifest struct {
	mu sync.Mutex
	// Version is the code-version stamp the campaign ran under.
	Version string `json:"version"`
	// Cells holds one record per distinct cell, sorted by key on save.
	Cells []CellRecord `json:"cells"`
}

// NewManifest returns an empty manifest for the given version stamp.
func NewManifest(version string) *Manifest { return &Manifest{Version: version} }

// Record upserts one cell's record (keyed by CellRecord.Key).
func (m *Manifest) Record(rec CellRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.Cells {
		if m.Cells[i].Key == rec.Key {
			m.Cells[i] = rec
			return
		}
	}
	m.Cells = append(m.Cells, rec)
}

// Counts tallies the records by status: done, failed, canceled.
func (m *Manifest) Counts() (done, failed, canceled int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.Cells {
		switch c.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		case StatusCanceled:
			canceled++
		}
	}
	return done, failed, canceled
}

// Len returns the number of recorded cells.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Cells)
}

// SaveManifest writes m into the store's directory with the same
// atomic temp-fsync-rename protocol entries use.
func (s *Store) SaveManifest(m *Manifest) error {
	m.mu.Lock()
	sort.Slice(m.Cells, func(i, j int) bool { return m.Cells[i].Key < m.Cells[j].Key })
	data, err := json.MarshalIndent(struct {
		Version string       `json:"version"`
		Cells   []CellRecord `json:"cells"`
	}{m.Version, m.Cells}, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	final := filepath.Join(s.dir, ManifestName)
	s.mu.Lock()
	s.seq++
	tmp := fmt.Sprintf("%s.tmp.%d.%d", final, s.pid, s.seq)
	s.mu.Unlock()
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create manifest temp: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: fsync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return s.fs.SyncDir(s.dir)
}

// LoadManifest reads the manifest from the store's directory. A
// missing file returns (nil, os.ErrNotExist)-wrapped error; a corrupt
// manifest is an error (the caller decides whether to start fresh —
// result durability never depends on it).
func (s *Store) LoadManifest() (*Manifest, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &struct {
		Version *string       `json:"version"`
		Cells   *[]CellRecord `json:"cells"`
	}{&m.Version, &m.Cells}); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	return &m, nil
}

// HasManifest reports whether the store directory holds a readable
// manifest.
func (s *Store) HasManifest() bool {
	_, err := s.fs.ReadFile(filepath.Join(s.dir, ManifestName))
	return err == nil
}
