package lint

import (
	"go/types"
	"strings"
)

// PhaseSafety enforces the two-phase cycle engine's compute-phase write
// contract (DESIGN.md §9/§10) interprocedurally inside internal/noc.
//
// The parallel engine runs every (*Router).compute* stage concurrently
// across routers and relies on a contract no test can fully pin: compute
// code reads prior-cycle state freely but may WRITE only state owned by
// its router — its own fields, its own VC buffers and engine scratch,
// and its staged-effect slices. The analyzer computes the closure of
// functions reachable from the compute-phase roots (methods on Router
// named compute*) over the package call graph and reports:
//
//   - any field write whose target chain reaches another Router or the
//     Network (including writes through local aliases of foreign state,
//     e.g. `dst := d.in[ip][v]; dst.reserved++`);
//   - any call that mutates a foreign Router or the Network, however
//     deep the write is (mutation facts are propagated to callers);
//   - any direct (*Network).trace emission — compute phases must stage
//     events through the (*Router).trace wrapper so the parallel flush
//     can replay them in canonical order;
//   - any call into internal/obs — the observability package is the
//     sanctioned wall-clock island, but its clock may be read only by
//     the engine driver and the worker loop, which bracket whole
//     stages. A compute method timing itself would read the wall clock
//     once per router per cycle and skew the very phase attribution
//     the profiler exists to report.
//
// commit* methods are the serial half of the engine and are exempt:
// traversal is pruned at any function whose name starts with "commit",
// and at the (*Router).trace staging wrapper itself.
var PhaseSafety = &Analyzer{
	Name:  "phasesafety",
	Doc:   "compute-phase code may write only its own router's state; cross-router/Network writes and direct trace emission are findings",
	Match: isNocCore,
	Run:   runPhaseSafety,
}

// isNocCore restricts an analyzer to the NoC cycle-engine package.
func isNocCore(path string) bool {
	return strings.HasSuffix(path, "internal/noc")
}

// isObsFunc reports whether fn belongs to internal/obs, the sanctioned
// observability (wall-clock) package.
func isObsFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	return pkg != nil && isObsPkg(pkg.Path())
}

func runPhaseSafety(pass *Pass) error {
	pf := pass.facts()
	roots := pf.rootsNamed("Router", func(name string) bool {
		return strings.HasPrefix(name, "compute")
	})
	if len(roots) == 0 {
		return nil
	}
	for _, ff := range pf.orderedReachable(roots, phaseSafetySkip) {
		checkPhaseWrites(pass, pf, ff)
	}
	return nil
}

// phaseSafetySkip prunes the traversal at commit-phase roots (the serial
// half of a stage — cross-router effects are their whole point) and at
// the (*Router).trace staging wrapper (the one sanctioned path from a
// compute phase to the tracer).
func phaseSafetySkip(fn *types.Func) bool {
	if strings.HasPrefix(fn.Name(), "commit") {
		return true
	}
	return fn.Name() == "trace" && recvTypeName(fn) == "Router"
}

// checkPhaseWrites reports every compute-phase contract violation in one
// reachable function.
func checkPhaseWrites(pass *Pass, pf *pkgFacts, ff *funcFacts) {
	where := funcDisplayName(ff.fn)
	for _, w := range ff.writes {
		if kind := classifyForeign(pass, ff, w.expr); kind != foreignNone {
			pass.Reportf(w.pos, "compute-phase write to %s (%s in %s); stage the effect for a commit phase instead",
				kind, exprString(w.expr), where)
		}
	}
	for _, cs := range ff.calls {
		if isObsFunc(cs.callee) {
			pass.Reportf(cs.pos, "compute-phase call to obs.%s (in %s); wall-clock observation belongs to the engine driver and worker loop, not compute code whose timing it would skew", cs.callee.Name(), where)
			continue
		}
		if cs.callee.Name() == "trace" && recvTypeName(cs.callee) == "Network" {
			pass.Reportf(cs.pos, "direct trace emission from compute phase (%s); use the (*Router).trace staging wrapper so events flush in canonical order", where)
			continue
		}
		callee := pf.funcs[cs.callee]
		if callee == nil {
			continue // cross-package leaf: outside this contract's scope
		}
		if callee.mutatesRecv && cs.recv != nil {
			if kind := classifyForeign(pass, ff, cs.recv); kind != foreignNone {
				pass.Reportf(cs.pos, "compute-phase call %s.%s mutates %s (in %s); stage the effect for a commit phase instead",
					exprString(cs.recv), cs.callee.Name(), kind, where)
			}
		}
		for i, arg := range cs.args {
			if i >= len(callee.mutatesParam) || !callee.mutatesParam[i] {
				continue
			}
			if kind := classifyForeign(pass, ff, arg); kind != foreignNone {
				pass.Reportf(cs.pos, "compute-phase call %s(...) mutates %s through argument %s (in %s); stage the effect for a commit phase instead",
					cs.callee.Name(), kind, exprString(arg), where)
			}
		}
	}
}
