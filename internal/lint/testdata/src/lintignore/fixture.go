// Package fixture exercises the lintignore auditor, run together with
// nodeterminism so used/stale verdicts are grounded in real findings.
// Audit findings land on the directive's own line, where a trailing
// comment would become part of the parsed reason — the wants below use
// the harness's line-offset form instead.
package fixture

import "time"

// Justified reads the wall clock under a well-formed, used suppression
// (allowed: no nodeterminism finding, no audit finding).
func Justified() int64 {
	//lint:ignore nodeterminism fixture demonstrating a justified suppression
	return time.Now().Unix()
}

// Typo names an analyzer outside the inventory: the directive suppresses
// nothing, so the wall-clock finding survives alongside the audit's.
func Typo() int64 {
	//lint:ignore nodetreminism the misspelling makes this a no-op
	return time.Now().Unix() // want "time.Now reads the wall clock"
	// want-2 "names unknown analyzer"
}

// Unjustified suppresses the finding but carries no reason.
func Unjustified() int64 {
	//lint:ignore nodeterminism
	return time.Now().Unix()
	// want-2 "has no reason"
}

// Anonymous has a directive with no analyzer name at all.
func Anonymous() int64 {
	//lint:ignore
	return time.Now().Unix() // want "time.Now reads the wall clock"
	// want-2 "missing an analyzer name"
}

// Stale suppresses nothing: the next line is clean.
func Stale() int {
	//lint:ignore nodeterminism nothing here triggers the analyzer
	return 4
	// want-2 "suppresses nothing; remove the stale directive"
}
