// Package fixture exercises the errchecksim analyzer: dropped errors on
// I/O paths versus the allowed discard idioms.
package fixture

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Drops silently discards error results (forbidden).
func Drops(w io.Writer, f *os.File) {
	fmt.Fprintf(w, "x") // want "error result of fmt.Fprintf is silently dropped"
	f.Sync()            // want "error result of f.Sync is silently dropped"
}

// Checked propagates the error (allowed).
func Checked(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "x"); err != nil {
		return err
	}
	return nil
}

// Explicit discards visibly or defers cleanup (allowed).
func Explicit(f *os.File) {
	_ = f.Sync()
	defer f.Close()
}

// Infallible writes to writers that cannot fail and to the console
// (allowed).
func Infallible(b *strings.Builder) {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "x")
	b.WriteString("x")
	fmt.Fprintf(b, "x")
}
