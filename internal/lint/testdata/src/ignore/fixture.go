// Package fixture exercises the //lint:ignore suppression directive:
// every finding here is justified away, so a run must report nothing.
package fixture

import "time"

// Stamp reads the wall clock but carries a suppression on the
// preceding line.
func Stamp() int64 {
	//lint:ignore nodeterminism fixture demonstrating suppression
	return time.Now().Unix()
}

// StampInline carries the suppression on the same line.
func StampInline() int64 {
	return time.Now().Unix() //lint:ignore all fixture demonstrating suppression
}
