// Package fixture exercises the nodeterminism analyzer: one flagged and
// one allowed variant of each rule.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Stamp reads the wall clock (forbidden in the sim core).
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// GlobalRand draws from the process-global generator (forbidden).
func GlobalRand() int {
	return rand.Intn(8) // want "rand.Intn uses process-global RNG state"
}

// InjectedRand draws from an injected, seeded generator (allowed).
func InjectedRand(rng *rand.Rand) int {
	return rng.Intn(8)
}

// SeededSource constructs a deterministic generator (allowed).
func SeededSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// PrintMap emits output in map order (forbidden).
func PrintMap(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "Println inside range over map emits output"
	}
}

// CollectUnsorted accumulates map keys without sorting (forbidden).
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map is order-dependent"
	}
	return keys
}

// CollectSorted accumulates map keys and sorts them (allowed).
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocalAccumulation appends to a loop-local slice (allowed: the order
// cannot escape an iteration).
func LocalAccumulation(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var squares []int
		for _, v := range vs {
			squares = append(squares, v*v)
		}
		total += len(squares)
	}
	return total
}

// SyncMapIter iterates a sync.Map (forbidden: Range order is
// unspecified).
func SyncMapIter(sm *sync.Map) int {
	count := 0
	sm.Range(func(k, v any) bool { // want "sync.Map.Range iterates in nondeterministic order"
		count++
		return true
	})
	return count
}

// OrderedIter walks sorted keys of a plain map (allowed).
func OrderedIter(m map[int]int, keys []int) int {
	sum := 0
	sort.Ints(keys)
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// MultiReadySelect races two channels (forbidden: the runtime picks a
// ready case pseudo-randomly).
func MultiReadySelect(a, b chan int) int {
	select { // want "select with 2 communication cases chooses pseudo-randomly"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SingleSelect polls one channel with a default arm (allowed: only one
// communication case, so no pseudo-random choice).
func SingleSelect(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}
