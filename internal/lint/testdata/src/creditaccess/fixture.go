// Package fixture exercises the creditaccess analyzer with a miniature
// vcBuf: credit fields may be written only by vcBuf methods.
package fixture

type vcBuf struct {
	stored   int
	reserved int
	arrived  int

	waitCycles uint64
}

// acceptFlit is an accessor method: writes are allowed here.
func (v *vcBuf) acceptFlit() {
	v.reserved--
	v.stored++
	v.arrived++
}

// steal mutates credit state from outside the owning type (forbidden).
func steal(v *vcBuf) {
	v.stored-- // want "direct write to vcBuf.stored outside its accessor methods"
	v.waitCycles++
}

// assign uses plain assignment rather than inc/dec (still forbidden).
func assign(v *vcBuf) {
	v.reserved = 0 // want "direct write to vcBuf.reserved outside its accessor methods"
}

// reader only reads credit state (allowed).
func reader(v *vcBuf) int {
	return v.stored + v.reserved
}

type other struct{ stored int }

// fine writes a same-named field of an unrelated type (allowed).
func fine(o *other) {
	o.stored++
}
