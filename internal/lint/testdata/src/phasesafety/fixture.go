// Package fixture exercises the phasesafety analyzer: the two-phase
// engine's compute-phase write contract. Methods named compute* are the
// roots; they may write only their own router's state, and may not read
// the sanctioned wall-clock island (internal/obs). commit* methods and
// the (*Router).trace staging wrapper are exempt.
package fixture

import "github.com/disco-sim/disco/internal/obs"

// Packet is payload state that can be visible to several routers.
type Packet struct{ hops int }

// vcState is one virtual-channel slot.
type vcState struct {
	pkt      *Packet
	reserved int
}

// Network mimics the sim's global state root.
type Network struct {
	Routers []*Router
	cycle   uint64
	events  int
}

// trace is the Network-level emitter; only commit phases may call it.
func (n *Network) trace(id int, kind string, p *Packet) {
	n.events++
}

// Router is the per-node unit; a compute phase owns exactly one.
type Router struct {
	id       int
	net      *Network
	in       [][]*vcState
	stalls   int
	staged   []int
	traceBuf []string
}

// trace stages an event (the sanctioned compute-phase path).
func (r *Router) trace(kind string, p *Packet) {
	r.traceBuf = append(r.traceBuf, kind)
}

// downstream returns a neighboring router (foreign state).
func (r *Router) downstream() *Router {
	return r.net.Routers[(r.id+1)%len(r.net.Routers)]
}

// bump mutates its receiver.
func (r *Router) bump() { r.stalls++ }

// touch mutates its Router parameter.
func touch(d *Router) { d.stalls++ }

// computeOwn writes only its own state and stages its trace (allowed).
func (r *Router) computeOwn() {
	r.stalls++
	r.staged = append(r.staged, r.id)
	r.in[0][0].reserved++
	r.trace("own", nil)
}

// computeCross writes a neighbor's field directly (forbidden).
func (r *Router) computeCross() {
	d := r.net.Routers[r.id+1]
	d.stalls++ // want "compute-phase write to another router"
}

// computeAlias writes foreign state through a local alias chain
// (forbidden: provenance survives the rebinding).
func (r *Router) computeAlias() {
	d := r.downstream()
	e := d.in[0][0]
	e.reserved++ // want "compute-phase write to another router"
}

// computeGlobal writes Network-global state (forbidden).
func (r *Router) computeGlobal() {
	r.net.cycle++ // want "compute-phase write to Network-global state"
}

// computeEmit emits a trace directly instead of staging (forbidden).
func (r *Router) computeEmit() {
	r.net.trace(r.id, "emit", nil) // want "direct trace emission from compute phase"
}

// computeMutateCall mutates a foreign router through a method whose
// write is one call deep (forbidden: mutation facts propagate).
func (r *Router) computeMutateCall() {
	r.downstream().bump() // want "mutates another router"
}

// computeMutateArg passes a foreign router into a mutating parameter
// slot (forbidden).
func (r *Router) computeMutateArg() {
	touch(r.net.Routers[0]) // want "mutates another router through argument"
}

// computeDeep reaches a violating helper two calls down; the finding
// lands at the helper's write site.
func (r *Router) computeDeep() { r.spill() }

func (r *Router) spill() {
	r.net.Routers[0].stalls++ // want "compute-phase write to another router"
}

// computeTimed reads the observability clock from compute code
// (forbidden: per-router wall-clock reads skew the phase attribution
// the profiler reports; only the engine driver and worker loop may
// bracket stages).
func (r *Router) computeTimed() {
	start := obs.Clock() // want "compute-phase call to obs.Clock"
	r.stalls += int(start & 1)
}

// computeObserved reaches the profiler through a helper one call down;
// the finding lands at the helper's call site.
func (r *Router) computeObserved(p *obs.PhaseProfiler) { r.sample(p) }

func (r *Router) sample(p *obs.PhaseProfiler) {
	p.Observe(0, obs.PhaseEngine, 0) // want "compute-phase call to obs.Observe"
}

// commitTimed reads the clock from the serial half (allowed: traversal
// prunes at commit*, whose cross-cutting effects are sanctioned).
func (r *Router) commitTimed() {
	r.stalls += int(obs.Clock() & 1)
}

// driverStep is not a compute root, so its obs use is the sanctioned
// driver-side pattern and produces no finding.
func (r *Router) driverStep(p *obs.PhaseProfiler) {
	start := obs.Clock()
	r.computeOwn()
	p.Observe(0, obs.PhaseEngine, start)
}

// computeThenCommit hands off to the serial half; traversal prunes at
// commit* so the cross-router writes below are allowed.
func (r *Router) computeThenCommit() {
	r.commitApply()
}

// commitApply is the commit phase: cross-router effects are its job.
func (r *Router) commitApply() {
	r.net.Routers[0].stalls++
	r.net.cycle++
	r.net.trace(r.id, "commit", nil)
}
