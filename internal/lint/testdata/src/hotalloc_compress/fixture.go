// Package fixture exercises the hotalloc analyzer's codec roots: the
// word-parallel kernel entry points (Probe, ProbeSizeBits,
// CompressFromProbe) are per-block hot paths exactly like Compress, so
// heap allocations reachable from them are findings unless recycled,
// escaping, or on an init path.
package fixture

// BlockProbe mimics the shared word-parallel scan result.
type BlockProbe struct {
	lanes [8]uint64
	notes []int
}

// Codec mimics a probe-capable compressor.
type Codec struct {
	scratch []byte
}

// NewCodec is an init path: construction may allocate freely.
func NewCodec() *Codec { return &Codec{scratch: make([]byte, 64)} }

// Probe is a kernel root: the per-block shared scan must not allocate.
func (c *Codec) Probe(p *BlockProbe, src []byte) {
	p.lanes[0] = uint64(src[0])
	p.notes = append(p.notes, 1) // want "heap allocation on the hot path"
}

// ProbeSizeBits is a kernel root: sizing from a probe is pure math.
func (c *Codec) ProbeSizeBits(p *BlockProbe) (int, bool) {
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(p.lanes[0])) // allowed: recycled scratch
	return len(c.scratch) * 8, true
}

// CompressFromProbe is a kernel root; its encoding is the function's
// product (allowed: escaping result), but per-call scratch is not.
func (c *Codec) CompressFromProbe(p *BlockProbe) []byte {
	tmp := make([]uint64, 8) // want "heap allocation on the hot path"
	tmp[0] = p.lanes[0]
	out := make([]byte, 0, 8)
	out = append(out, byte(tmp[0])) // allowed: bound to the returned value
	return out
}
