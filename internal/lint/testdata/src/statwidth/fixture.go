// Package fixture exercises the statwidth analyzer: counter widths and
// narrowing conversions.
package fixture

// wide declares 64-bit counters (allowed).
type wide struct {
	total uint64
	hits  uint64
	ratio float64
}

// narrow declares undersized counters (forbidden).
type narrow struct {
	total uint32 // want "counter field total is 32-bit"
	hits  uint16 // want "counter field hits is 16-bit"
	label string
}

// Truncate narrows an integer (forbidden).
func Truncate(x uint64) uint32 {
	return uint32(x) // want "narrowing conversion uint32"
}

// Widen grows the representation (allowed).
func Widen(x uint32) uint64 {
	return uint64(x)
}

// Bucket converts float bucketing math (allowed).
func Bucket(x float64) int {
	return int(x)
}
