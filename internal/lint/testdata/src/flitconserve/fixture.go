// Package fixture exercises the flitconserve analyzer with a miniature
// packet: payload mutations must recompute the flit count.
package fixture

// Packet mirrors the payload/flit coupling of noc.Packet.
type Packet struct {
	PayloadBytes int
	FlitCount    int
	Block        []byte
	Compressed   bool
	Hops         int
}

func flitsFor(n int) int { return 1 + (n+7)/8 }

// Shrink recomputes the flit count with the payload (allowed).
func Shrink(p *Packet, n int) {
	p.PayloadBytes = n
	p.FlitCount = flitsFor(n)
}

// Corrupt changes the payload size and forgets the flit count
// (forbidden: the classic separate-compression merge bug).
func Corrupt(p *Packet, n int) {
	p.PayloadBytes = n // want "Corrupt mutates payload field PayloadBytes without recomputing FlitCount"
}

// Pad grows the flit count without touching the payload (forbidden).
func Pad(p *Packet) {
	p.FlitCount++ // want "Pad changes FlitCount without a payload mutation"
}

// Bookkeep touches unrelated fields only (allowed).
func Bookkeep(p *Packet) {
	p.Hops++
}

// NewData constructs with both fields (allowed).
func NewData(n int) *Packet {
	return &Packet{PayloadBytes: n, FlitCount: flitsFor(n)}
}

// NewBroken constructs with a payload but no flit count (forbidden).
func NewBroken(n int) *Packet {
	return &Packet{PayloadBytes: n} // want "packet literal sets payload fields but not FlitCount"
}

// NewControl carries no payload: one head flit is consistent (allowed).
func NewControl() *Packet {
	return &Packet{FlitCount: 1}
}
