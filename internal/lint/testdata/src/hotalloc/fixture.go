// Package fixture exercises the hotalloc analyzer: heap allocations
// reachable from the cycle-loop root (*Network).Step are findings
// unless they are recycled scratch, escape as the function's product,
// or sit on an allowlisted init path.
package fixture

// Network mimics the cycle-loop owner.
type Network struct {
	scratch []int
	items   []int
	lookup  map[string]int
}

// NewNetwork is an init path: construction may allocate freely.
func NewNetwork() *Network {
	return &Network{lookup: make(map[string]int)}
}

// Step is the hot-path root.
func (n *Network) Step() {
	n.scratch = n.scratch[:0]
	n.scratch = append(n.scratch, 1) // allowed: recycled scratch
	n.grow()
	n.alloc()
	n.dispatch()
	n.initTables() // allowed: traversal prunes at init*
	_ = n.produce()
}

// grow appends into a field slice that is never reset (forbidden).
func (n *Network) grow() {
	n.items = append(n.items, 1) // want "heap allocation on the hot path"
}

// alloc creates per-cycle scratch that neither escapes nor recycles
// (forbidden, all three forms).
func (n *Network) alloc() {
	buf := make([]int, 8)       // want "heap allocation on the hot path"
	m := map[string]int{"k": 1} // want "heap allocation on the hot path"
	p := &Network{}             // want "heap allocation on the hot path"
	buf[0] = len(m) + len(p.items)
}

// dispatch builds a capturing closure every cycle (forbidden).
func (n *Network) dispatch() {
	f := func() { n.items[0] = 1 } // want "heap allocation on the hot path"
	f()
}

// initTables is allowlisted by name: reallocation is its job.
func (n *Network) initTables() {
	n.lookup = make(map[string]int, 64)
}

// produce's allocation is bound to the returned value (allowed: the
// function's product must be fresh).
func (n *Network) produce() []int {
	out := make([]int, 0, 4)
	out = append(out, n.items...)
	return out
}
