// Package fixture exercises the hotalloc analyzer: heap allocations
// reachable from the cycle-loop root (*Network).Step are findings
// unless they are recycled scratch, escape as the function's product,
// or sit on an allowlisted init path.
package fixture

// Packet mimics a pooled cycle-loop object.
type Packet struct{ id int }

// Network mimics the cycle-loop owner.
type Network struct {
	scratch []int
	items   []int
	lookup  map[string]int

	// Fixed-capacity index-managed arena (the packet-pool idiom): push
	// and pop move pktFree, never append, so recycling is alloc-free.
	pktPool []*Packet
	pktFree int
}

// NewNetwork is an init path: construction may allocate freely.
func NewNetwork() *Network {
	return &Network{lookup: make(map[string]int), pktPool: make([]*Packet, 8)}
}

// Step is the hot-path root.
func (n *Network) Step() {
	n.scratch = n.scratch[:0]
	n.scratch = append(n.scratch, 1) // allowed: recycled scratch
	n.grow()
	n.alloc()
	n.dispatch()
	n.initTables() // allowed: traversal prunes at init*
	_ = n.produce()
	n.recycle(n.pop())
}

// pop takes a packet out of the arena by index (allowed: no allocation;
// the empty-arena fallback escapes as the function's product).
func (n *Network) pop() *Packet {
	if n.pktFree == 0 {
		return &Packet{}
	}
	n.pktFree--
	p := n.pktPool[n.pktFree]
	n.pktPool[n.pktFree] = nil
	return p
}

// recycle returns a packet to the arena by index push (allowed: index
// store into a fixed-capacity pool, never an append).
func (n *Network) recycle(p *Packet) {
	*p = Packet{}
	if n.pktFree < len(n.pktPool) {
		n.pktPool[n.pktFree] = p
		n.pktFree++
	}
}

// grow appends into a field slice that is never reset (forbidden).
func (n *Network) grow() {
	n.items = append(n.items, 1) // want "heap allocation on the hot path"
}

// alloc creates per-cycle scratch that neither escapes nor recycles
// (forbidden, all three forms).
func (n *Network) alloc() {
	buf := make([]int, 8)       // want "heap allocation on the hot path"
	m := map[string]int{"k": 1} // want "heap allocation on the hot path"
	p := &Network{}             // want "heap allocation on the hot path"
	buf[0] = len(m) + len(p.items)
}

// dispatch builds a capturing closure every cycle (forbidden).
func (n *Network) dispatch() {
	f := func() { n.items[0] = 1 } // want "heap allocation on the hot path"
	f()
}

// initTables is allowlisted by name: reallocation is its job.
func (n *Network) initTables() {
	n.lookup = make(map[string]int, 64)
}

// produce's allocation is bound to the returned value (allowed: the
// function's product must be fresh).
func (n *Network) produce() []int {
	out := make([]int, 0, 4)
	out = append(out, n.items...)
	return out
}
