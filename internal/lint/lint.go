// Package lint implements discolint, a static-analysis suite enforcing
// the simulator's determinism and conservation invariants (run it with
// `go run ./cmd/discolint ./...`). The framework mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built on the standard library only (go/ast, go/types, go/parser), so
// the repo stays dependency-free.
//
// Analyzers:
//
//	nodeterminism — no wall-clock time, no global math/rand, no
//	                order-dependent iteration over maps in the sim core
//	creditaccess  — credit/occupancy fields of noc's virtual channels may
//	                be written only by vcBuf accessor methods
//	flitconserve  — payload-size mutations must recompute the flit count
//	errchecksim   — no silently dropped errors on I/O paths
//	statwidth     — no narrowing conversions or <64-bit counters in stats
//
// A finding can be suppressed with a justification comment on the same
// or the preceding line:
//
//	//lint:ignore <analyzer> <reason>
//
// Suppressions must be recorded in CHANGES.md so re-anchors can audit
// them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Match restricts the analyzer to packages for which it returns
	// true (nil = all packages).
	Match func(pkgPath string) bool
	// Run performs the analysis.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path (fixtures may override it to
	// impersonate a sim-core package).
	PkgPath string

	// pkg backs the interprocedural fact cache (see callgraph.go).
	pkg   *Package
	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as file:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ignoreRe matches suppression directives: the comment must START with
// the marker (prose that merely mentions //lint:ignore, like this
// sentence, is not a directive). Everything after the marker is parsed
// by newDirective so malformed directives (missing name or reason) can
// be audited instead of silently ignored.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\b(.*)`)

// directive is one parsed //lint:ignore comment. The lintignore analyzer
// audits the whole set after a run: unknown analyzer names, missing
// reasons, and directives that suppressed nothing are findings.
type directive struct {
	pos    token.Position
	name   string // analyzer name or "all"; "" when missing
	reason string
	used   bool // suppressed at least one finding this run
}

// newDirective parses the text after "//lint:ignore".
func newDirective(pos token.Position, rest string) *directive {
	d := &directive{pos: pos}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		d.name = fields[0]
		d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	}
	return d
}

// parseDirectives collects every suppression directive of the package in
// source order.
func parseDirectives(pkg *Package) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				dirs = append(dirs, newDirective(pkg.Fset.Position(c.Pos()), m[1]))
			}
		}
	}
	return dirs
}

// Run executes the analyzers over pkg and returns the surviving
// (non-suppressed) findings sorted by position. The lintignore analyzer
// is special: it runs last, over the directive set and the raw findings
// of this run, so it can tell which suppressions actually fired.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var auditor *Analyzer
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == ignoreAuditorName {
			auditor = a
			continue
		}
		// An analyzer counts as "ran" even when Match filters it out of
		// this package: it then trivially produced no findings here, so a
		// directive naming it is provably stale.
		ran[a.Name] = true
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			pkg:      pkg,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	dirs := parseDirectives(pkg)
	diags = filterIgnored(diags, dirs)
	if auditor != nil && (auditor.Match == nil || auditor.Match(pkg.Path)) {
		audit := auditDirectives(dirs, ran)
		diags = append(diags, filterIgnored(audit, dirs)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// filterIgnored drops findings covered by a //lint:ignore directive on
// the same line or the line directly above, marking fired directives as
// used for the lintignore audit.
func filterIgnored(diags []Diagnostic, dirs []*directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		drop := false
		for _, dir := range dirs {
			if dir.name != d.Analyzer && dir.name != "all" {
				continue
			}
			if dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line != d.Pos.Line && dir.pos.Line+1 != d.Pos.Line {
				continue
			}
			dir.used = true
			drop = true
		}
		if !drop {
			kept = append(kept, d)
		}
	}
	return kept
}

// isSimCore reports whether path is one of the cycle-level simulator
// packages where the determinism policy applies.
func isSimCore(path string) bool {
	for _, sub := range []string{"internal/noc", "internal/cmp", "internal/disco", "internal/cache", "internal/trace"} {
		if strings.HasSuffix(path, sub) || strings.Contains(path, sub+"/") {
			return true
		}
	}
	return false
}

// funcFor returns the top-level function declaration enclosing pos in
// file, or nil (for analyzers that need a finding's context).
func funcFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
