// Package lint implements discolint, a static-analysis suite enforcing
// the simulator's determinism and conservation invariants (run it with
// `go run ./cmd/discolint ./...`). The framework mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built on the standard library only (go/ast, go/types, go/parser), so
// the repo stays dependency-free.
//
// Analyzers:
//
//	nodeterminism — no wall-clock time, no global math/rand, no
//	                order-dependent iteration over maps in the sim core
//	creditaccess  — credit/occupancy fields of noc's virtual channels may
//	                be written only by vcBuf accessor methods
//	flitconserve  — payload-size mutations must recompute the flit count
//	errchecksim   — no silently dropped errors on I/O paths
//	statwidth     — no narrowing conversions or <64-bit counters in stats
//
// A finding can be suppressed with a justification comment on the same
// or the preceding line:
//
//	//lint:ignore <analyzer> <reason>
//
// Suppressions must be recorded in CHANGES.md so re-anchors can audit
// them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Match restricts the analyzer to packages for which it returns
	// true (nil = all packages).
	Match func(pkgPath string) bool
	// Run performs the analysis.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path (fixtures may override it to
	// impersonate a sim-core package).
	PkgPath string

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as file:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.Info.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ignoreRe matches suppression directives.
var ignoreRe = regexp.MustCompile(`//lint:ignore\s+(\S+)\s+\S`)

// Run executes the analyzers over pkg and returns the surviving
// (non-suppressed) findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = filterIgnored(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// filterIgnored drops findings covered by a //lint:ignore directive on
// the same line or the line directly above.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	// ignored["file:line"] holds the analyzer names suppressed there.
	ignored := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					ignored[key] = append(ignored[key], m[1])
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		drop := false
		for _, name := range ignored[key] {
			if name == d.Analyzer || name == "all" {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, d)
		}
	}
	return kept
}

// isSimCore reports whether path is one of the cycle-level simulator
// packages where the determinism policy applies.
func isSimCore(path string) bool {
	for _, sub := range []string{"internal/noc", "internal/cmp", "internal/disco", "internal/cache", "internal/trace"} {
		if strings.HasSuffix(path, sub) || strings.Contains(path, sub+"/") {
			return true
		}
	}
	return false
}

// funcFor returns the top-level function declaration enclosing pos in
// file, or nil (for analyzers that need a finding's context).
func funcFor(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
