package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// NoDeterminism enforces the simulator's reproducibility policy inside
// the sim-core packages (internal/{noc,cmp,disco,cache,trace}):
//
//   - no wall-clock reads (time.Now/Since/Until) — cycle counts are the
//     only clock;
//   - no top-level math/rand functions (process-global RNG state) — all
//     randomness must flow through an injected, explicitly seeded
//     *rand.Rand;
//   - no map iteration that feeds output or order-dependent
//     accumulation — identical seeds must give byte-identical traces
//     and stats;
//   - no sync.Map iteration (Range visits entries in unspecified order,
//     on top of sync.Map being concurrency machinery the two-phase
//     engine's staged effects are designed to avoid);
//   - no select over multiple ready channels — the runtime picks a case
//     pseudo-randomly, so replaying a seed would not replay the
//     schedule.
//
// internal/obs is the one sanctioned exception: it exists to observe
// wall-clock time (and uses atomics to do so race-free), and is
// engineered so nothing it measures can flow back into simulation
// state. The carve-out is explicit in Match rather than implicit in
// the sim-core list so the policy survives package moves; the
// phasesafety analyzer closes the loop by flagging compute-phase code
// that calls into internal/obs.
var NoDeterminism = &Analyzer{
	Name:  "nodeterminism",
	Doc:   "forbid wall-clock, global math/rand and unordered map iteration in sim-core packages",
	Match: func(path string) bool { return isSimCore(path) && !isObsPkg(path) },
	Run:   runNoDeterminism,
}

// isObsPkg reports whether path is the internal/obs observability
// package — the sanctioned home for wall-clock reads.
func isObsPkg(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs") ||
		strings.Contains(path, "internal/obs/")
}

// globalRandFuncs are the math/rand (and v2) top-level functions backed
// by the process-global generator.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

// wallClockFuncs are the time-package entry points that read the wall
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// ioCallRe matches function names that emit output.
var ioCallRe = regexp.MustCompile(`^(Print|Printf|Println|Fprint|Fprintf|Fprintln|Write|WriteString|WriteByte|WriteRune)$`)

func runNoDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath := importedPkgPath(pass, n.X)
				switch pkgPath {
				case "time":
					if wallClockFuncs[n.Sel.Name] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulators must be cycle-driven (use the simulated clock)", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[n.Sel.Name] {
						pass.Reportf(n.Pos(), "rand.%s uses process-global RNG state; inject a seeded *rand.Rand instead", n.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			case *ast.CallExpr:
				checkSyncMapRange(pass, n)
			case *ast.SelectStmt:
				checkMultiReadySelect(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSyncMapRange flags sync.Map.Range calls: iteration order is
// unspecified, so any effect of the callback is nondeterministic.
func checkSyncMapRange(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return
	}
	named := namedOf(pass.TypeOf(sel.X))
	if named == nil || named.Obj().Name() != "Map" {
		return
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Path() != "sync" {
		return
	}
	pass.Reportf(call.Pos(), "sync.Map.Range iterates in nondeterministic order; use an ordered structure (sorted keys, slices) in sim-core packages")
}

// checkMultiReadySelect flags select statements with two or more
// communication cases: when several are ready the runtime chooses
// pseudo-randomly, which no seed replays.
func checkMultiReadySelect(pass *Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(), "select with %d communication cases chooses pseudo-randomly among ready channels; sim-core scheduling must be deterministic (single channel + explicit ordering)", comms)
	}
}

// importedPkgPath returns the import path when e is a package
// identifier, else "".
func importedPkgPath(pass *Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// checkMapRange flags range-over-map loops whose body emits output or
// accumulates into an outer variable (both observe Go's randomized map
// order).
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fn := funcFor(file, rs.Pos())
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if ioCallRe.MatchString(fun.Sel.Name) {
				pass.Reportf(call.Pos(), "%s inside range over map emits output in nondeterministic order; iterate sorted keys instead", fun.Sel.Name)
			}
		case *ast.Ident:
			if fun.Name != "append" || len(call.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				return true
			}
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[dst]
			if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
				return true // declared inside the loop: order cannot escape
			}
			if sortedLater(pass, fn, obj) {
				return true
			}
			pass.Reportf(call.Pos(), "append to %s inside range over map is order-dependent; sort %s afterwards or iterate sorted keys", dst.Name, dst.Name)
		}
		return true
	})
}

// sortedLater reports whether fn contains a sort/slices call applied to
// obj, which makes the accumulation order-insensitive.
func sortedLater(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPkgPath(pass, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
