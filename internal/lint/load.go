package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints that did not prevent
	// analysis (analyzers run best-effort on partially broken packages).
	TypeErrors []error

	// facts caches the interprocedural analysis of this package so the
	// call graph is built once per package, not once per analyzer (see
	// callgraph.go).
	facts *pkgFacts
}

// Loader resolves and type-checks packages of one module plus their
// standard-library dependencies. Dependency packages are checked from
// GOROOT source with function bodies ignored (only their exported API is
// needed), so no export data, go/packages or network access is required.
type Loader struct {
	fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	ctx        build.Context
	// imports caches dependency packages (API only) for the importer.
	imports map[string]*types.Package
	// fallback resolves exotic import configurations (e.g. GOROOT
	// layouts this loader does not know) via the compiler if available.
	fallback types.Importer
}

// NewLoader builds a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Disable cgo so constrained files resolve to their pure-Go
	// fallbacks; the analysis never needs C symbol info.
	ctx.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		ctx:        ctx,
		imports:    make(map[string]*types.Package),
		fallback:   importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and path.
func findModule(dir string) (string, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// dirFor maps an import path to a source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("lint: cannot resolve import %q", path)
}

// goFiles lists the build-constrained .go files of dir.
func (l *Loader) goFiles(dir string) ([]string, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]string, 0, len(bp.GoFiles))
	for _, f := range bp.GoFiles {
		files = append(files, filepath.Join(dir, f))
	}
	return files, nil
}

// Import implements types.Importer for dependency resolution during
// type checking. Dependencies are checked without function bodies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return l.importFallback(path, err)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return l.importFallback(path, err)
	}
	cfg := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error:            func(error) {}, // tolerate issues in dependency bodies
	}
	pkg, err := cfg.Check(path, l.fset, files, nil)
	if err != nil && (pkg == nil || !pkg.Complete()) {
		return l.importFallback(path, err)
	}
	l.imports[path] = pkg
	return pkg, nil
}

// importFallback retries an import through the compiler's source
// importer before giving up.
func (l *Loader) importFallback(path string, cause error) (*types.Package, error) {
	if l.fallback != nil {
		if pkg, err := l.fallback.Import(path); err == nil {
			l.imports[path] = pkg
			return pkg, nil
		}
	}
	return nil, cause
}

// parseDir parses every build-selected file of dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load parses and fully type-checks the package in dir under import
// path pkgPath, recording complete type info for analysis. Type errors
// are collected, not fatal: analyzers run best-effort.
func (l *Loader) Load(dir, pkgPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg := &Package{Path: pkgPath, Dir: dir, Fset: l.fset}
	cfg := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(pkgPath, l.fset, files, info)
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// LoadPatterns expands go-style package patterns ("./...", "./internal/noc")
// relative to the module root and loads each package. Directories named
// testdata, hidden directories, and directories without Go files are
// skipped.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkDirs(l.ModuleDir, dirSet); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walkDirs(root, dirSet); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
			// A named pattern that matches nothing must be an error, not a
			// silent clean run (a typo'd path in CI would otherwise pass).
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("lint: pattern %q matches no directory", pat)
			}
			dirSet[dir] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		if !l.hasGoFiles(dir) {
			continue
		}
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkDirs collects candidate package directories under root.
func (l *Loader) walkDirs(root string, out map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		out[path] = true
		return nil
	})
}

// hasGoFiles reports whether dir contains at least one buildable Go file.
func (l *Loader) hasGoFiles(dir string) bool {
	files, err := l.goFiles(dir)
	return err == nil && len(files) > 0
}
