package lint

import (
	"go/ast"
	"go/types"
)

// FlitConserve guards the packet-size/flit-count coupling. A NoC packet
// carries both its wire payload size (PayloadBytes, plus the Block/Comp
// payload forms and the Compressed flag) and the derived FlitCount; the
// separate-compression merge path's classic bug is mutating one without
// the other, which silently breaks flit conservation (the router streams
// the wrong number of flits and the invariant checks fire far from the
// cause). The analyzer applies to any struct that declares both a
// PayloadBytes and a FlitCount field and enforces, per function:
//
//   - a write to PayloadBytes/Block/Comp/Compressed requires a write to
//     FlitCount in the same function (as ApplyCompression does);
//   - a write to FlitCount requires a payload-field write;
//   - a composite literal that sets payload fields must set FlitCount.
var FlitConserve = &Analyzer{
	Name: "flitconserve",
	Doc:  "payload-size mutations of packet-like structs must recompute the flit count",
	Run:  runFlitConserve,
}

// payloadFields are the wire-form fields whose mutation changes the
// payload size.
var payloadFields = map[string]bool{
	"PayloadBytes": true, "Block": true, "Comp": true, "Compressed": true,
}

func runFlitConserve(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFlitFunc(pass, fd)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if ok {
				checkFlitLiteral(pass, lit)
			}
			return true
		})
	}
	return nil
}

// checkFlitFunc enforces the paired-write rule inside one function.
func checkFlitFunc(pass *Pass, fd *ast.FuncDecl) {
	var payloadWrites, flitWrites []*ast.SelectorExpr
	record := func(lhs ast.Expr) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isPacketLike(pass.TypeOf(sel.X)) {
			return
		}
		switch {
		case payloadFields[sel.Sel.Name]:
			payloadWrites = append(payloadWrites, sel)
		case sel.Sel.Name == "FlitCount":
			flitWrites = append(flitWrites, sel)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	if len(payloadWrites) > 0 && len(flitWrites) == 0 {
		sel := payloadWrites[0]
		pass.Reportf(sel.Pos(), "%s mutates payload field %s without recomputing FlitCount", fd.Name.Name, sel.Sel.Name)
	}
	if len(flitWrites) > 0 && len(payloadWrites) == 0 {
		sel := flitWrites[0]
		pass.Reportf(sel.Pos(), "%s changes FlitCount without a payload mutation to justify it", fd.Name.Name)
	}
}

// checkFlitLiteral flags packet-like composite literals that set payload
// fields but omit FlitCount.
func checkFlitLiteral(pass *Pass, lit *ast.CompositeLit) {
	if !isPacketLike(pass.TypeOf(lit)) {
		return
	}
	var payload ast.Expr
	hasFlits := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if payloadFields[key.Name] && payload == nil {
			payload = kv.Key
		}
		if key.Name == "FlitCount" {
			hasFlits = true
		}
	}
	if payload != nil && !hasFlits {
		pass.Reportf(payload.Pos(), "packet literal sets payload fields but not FlitCount")
	}
}

// isPacketLike reports whether t (or *t) is a struct declaring both
// PayloadBytes and FlitCount fields.
func isPacketLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasPayload, hasFlits := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "PayloadBytes":
			hasPayload = true
		case "FlitCount":
			hasFlits = true
		}
	}
	return hasPayload && hasFlits
}
