package lint

// analysistest-style fixture harness: each analyzer runs over a small
// package under testdata/src/<name>/ whose sources carry
// `// want "regex"` comments marking the expected findings. The harness
// fails on any unmatched expectation and any unexpected diagnostic, so
// fixtures pin both the flagged and the allowed patterns.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// wantRe matches want comments. The optional signed offset re-anchors
// the expectation to another line: `// want-2 "x"` expects the finding
// two lines above. lintignore findings sit on the directive's own line,
// where a trailing comment would become part of the parsed reason, so
// their wants must live elsewhere.
var wantRe = regexp.MustCompile(`//\s*want([+-]\d+)?\s+"([^"]*)"`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseExpectations scans the fixture sources for want comments.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("open fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[2], err)
			}
			offset := 0
			if m[1] != "" {
				offset, err = strconv.Atoi(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want offset %q: %v", e.Name(), line, m[1], err)
				}
			}
			wants = append(wants, &expectation{file: e.Name(), line: line + offset, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan fixture: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close fixture: %v", err)
		}
	}
	return wants
}

// loadFixture type-checks testdata/src/<fixture>/ under the given
// import path (fixtures impersonate sim-core packages to satisfy an
// analyzer's Match filter).
func loadFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir, pkgPath)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	return pkg
}

// runFixture checks one analyzer's diagnostics against the fixture's
// want comments.
func runFixture(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	runFixtureSuite(t, []*Analyzer{a}, fixture, pkgPath)
}

// runFixtureSuite is runFixture for several analyzers run together (the
// lintignore auditor needs the other analyzers' raw findings).
func runFixtureSuite(t *testing.T, as []*Analyzer, fixture, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, fixture, pkgPath)
	wants := parseExpectations(t, pkg.Dir)
	diags, err := Run(pkg, as)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestNoDeterminismFixture(t *testing.T) {
	runFixture(t, NoDeterminism, "nodeterminism", "fixturemod/internal/noc")
}

func TestCreditAccessFixture(t *testing.T) {
	runFixture(t, CreditAccess, "creditaccess", "fixturemod/internal/noc")
}

func TestFlitConserveFixture(t *testing.T) {
	runFixture(t, FlitConserve, "flitconserve", "fixturemod/fixture")
}

func TestErrcheckSimFixture(t *testing.T) {
	runFixture(t, ErrcheckSim, "errchecksim", "fixturemod/fixture")
}

func TestStatWidthFixture(t *testing.T) {
	runFixture(t, StatWidth, "statwidth", "fixturemod/internal/stats")
}

func TestPhaseSafetyFixture(t *testing.T) {
	runFixture(t, PhaseSafety, "phasesafety", "fixturemod/internal/noc")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc", "fixturemod/internal/noc")
}

func TestHotAllocKernelFixture(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc_compress", "fixturemod/internal/compress")
}

// TestLintIgnoreFixture runs the auditor together with nodeterminism so
// used/stale verdicts are grounded in a real analyzer's findings.
func TestLintIgnoreFixture(t *testing.T) {
	runFixtureSuite(t, []*Analyzer{NoDeterminism, LintIgnore}, "lintignore", "fixturemod/internal/noc")
}

// TestIgnoreDirective pins the suppression syntax: both same-line and
// preceding-line //lint:ignore comments silence a finding.
func TestIgnoreDirective(t *testing.T) {
	runFixture(t, NoDeterminism, "ignore", "fixturemod/internal/noc")
}

// TestNoDeterminismSanctionsObs pins the observability carve-out: the
// very sources that produce wall-clock and map-order findings inside
// internal/noc are exempt when they live in internal/obs, the one
// sanctioned wall-clock island (its measurements never flow back into
// simulation state; phasesafety polices the reverse direction).
func TestNoDeterminismSanctionsObs(t *testing.T) {
	pkg := loadFixture(t, "nodeterminism", "fixturemod/internal/obs")
	diags, err := Run(pkg, []*Analyzer{NoDeterminism})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("nodeterminism fired inside internal/obs: %s", d)
	}
}

// TestMatchScoping runs a scoped analyzer over a package outside its
// domain: no diagnostics may fire even though the source would be
// flagged inside internal/noc.
func TestMatchScoping(t *testing.T) {
	pkg := loadFixture(t, "creditaccess", "fixturemod/unrelated")
	diags, err := Run(pkg, []*Analyzer{CreditAccess})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("creditaccess fired outside internal/noc: %s", d)
	}
}

// TestAllInventory pins the analyzer suite: a rename or omission here
// breaks CI wiring and the README docs.
func TestAllInventory(t *testing.T) {
	want := []string{
		"nodeterminism", "creditaccess", "flitconserve", "errchecksim",
		"statwidth", "phasesafety", "hotalloc", "lintignore",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc string", a.Name)
		}
	}
}
