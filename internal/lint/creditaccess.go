package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CreditAccess protects the flit/credit conservation bookkeeping of the
// NoC's virtual channels. The fields of vcBuf that feed buffer
// occupancy — and through it the confidence-counter inputs of DISCO's
// Eq. 1/Eq. 2 (remote and local pressure) — may be mutated only by
// vcBuf's own accessor methods, which maintain the coupled updates
// (e.g. a link arrival consumes a reservation AND occupies a slot AND
// advances the arrival count). A stray `e.stored--` in a pipeline stage
// silently corrupts credit accounting; this analyzer makes that a lint
// error instead of a simulation heisenbug.
var CreditAccess = &Analyzer{
	Name: "creditaccess",
	Doc:  "credit/occupancy fields of noc.vcBuf may be written only by vcBuf accessor methods",
	Match: func(path string) bool {
		return strings.HasSuffix(path, "internal/noc")
	},
	Run: runCreditAccess,
}

// creditFields are the conserved per-VC counters.
var creditFields = map[string]bool{
	"stored": true, "reserved": true, "arrived": true,
	"ready": true, "sent": true, "absorbed": true,
	"lostCredits": true,
}

func runCreditAccess(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if receiverIsVCBuf(fd) {
				continue // accessor methods own the fields
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkCreditWrite(pass, fd, lhs)
					}
				case *ast.IncDecStmt:
					checkCreditWrite(pass, fd, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// checkCreditWrite reports lhs when it is a credit field of a vcBuf.
func checkCreditWrite(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || !creditFields[sel.Sel.Name] {
		return
	}
	if !isVCBufType(pass.TypeOf(sel.X)) {
		return
	}
	pass.Reportf(sel.Pos(), "direct write to vcBuf.%s outside its accessor methods breaks credit conservation; add or use a vcBuf method (func %s)", sel.Sel.Name, fd.Name.Name)
}

// receiverIsVCBuf reports whether fd is a method on vcBuf / *vcBuf.
func receiverIsVCBuf(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "vcBuf"
}

// isVCBufType reports whether t is vcBuf or *vcBuf.
func isVCBufType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "vcBuf"
}
