package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// StatWidth guards the statistics package against quiet truncation.
// Simulator counters run for billions of cycles; a 32-bit counter or a
// narrowing conversion on an aggregation path wraps silently and skews
// every derived figure. Inside internal/stats the analyzer flags:
//
//   - integer→integer conversions to a strictly narrower type
//     (uint64→uint32, int→int16, ...); float→int conversions are
//     bucketing math and stay allowed;
//   - counter-named struct fields (count/total/hits/... suffixes)
//     declared narrower than 64 bits.
var StatWidth = &Analyzer{
	Name: "statwidth",
	Doc:  "no narrowing integer conversions or sub-64-bit counters in internal/stats",
	Match: func(path string) bool {
		return strings.HasSuffix(path, "internal/stats")
	},
	Run: runStatWidth,
}

// counterNameRe matches field names that denote monotonically growing
// tallies.
var counterNameRe = regexp.MustCompile(`(?i)(count|counts|counter|total|totals|hits|misses|samples|ops|cycles|overflow|injected|ejected)$`)

func runStatWidth(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNarrowingConv(pass, n)
			case *ast.StructType:
				checkCounterFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkNarrowingConv flags T(x) when both are integers and T is
// strictly narrower than x's type.
func checkNarrowingConv(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := intBits(tv.Type)
	src := intBits(pass.TypeOf(call.Args[0]))
	if dst == 0 || src == 0 {
		return
	}
	if dst < src {
		pass.Reportf(call.Pos(), "narrowing conversion %s(%s) can silently truncate a counter; keep 64-bit arithmetic", types.TypeString(tv.Type, nil), types.TypeString(pass.TypeOf(call.Args[0]), nil))
	}
}

// checkCounterFields flags counter-named struct fields declared
// narrower than 64 bits.
func checkCounterFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		bits := intBits(pass.TypeOf(field.Type))
		if bits == 0 || bits >= 64 {
			continue
		}
		for _, name := range field.Names {
			if counterNameRe.MatchString(name.Name) {
				pass.Reportf(name.Pos(), "counter field %s is %d-bit; simulator counters must be 64-bit (uint64)", name.Name, bits)
			}
		}
	}
}

// intBits returns the width in bits of an integer type (int/uint/uintptr
// count as 64 on the supported 64-bit targets), or 0 for non-integers.
func intBits(t types.Type) int {
	if t == nil {
		return 0
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch basic.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64
	}
	return 0
}
