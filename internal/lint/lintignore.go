package lint

import "fmt"

// ignoreAuditorName is the lintignore analyzer's name; Run special-cases
// it because the audit needs the whole run's raw findings, not one
// package pass.
const ignoreAuditorName = "lintignore"

// LintIgnore audits the //lint:ignore suppression directives themselves.
// Suppressions are the escape hatch of every other analyzer, so they rot
// in exactly the ways nothing else checks: the analyzer they name gets
// renamed, the justification is omitted, or the flagged code is deleted
// and the directive keeps suppressing nothing. Each of those is a
// finding:
//
//   - a directive with no analyzer name, or naming an analyzer outside
//     the suite inventory (typos silently suppress nothing);
//   - a directive with no reason — every suppression must carry its
//     justification inline (and be recorded in CHANGES.md);
//   - a directive that suppressed no finding during this run, provided
//     the named analyzer actually ran (with -analyzers subsets the
//     verdict would be unsound, so it is skipped).
//
// The analyzer has no Run of its own: lint.Run executes the audit last,
// against the directive set and the pre-suppression findings of the
// other analyzers.
var LintIgnore = &Analyzer{
	Name: ignoreAuditorName,
	Doc:  "audit //lint:ignore directives: unknown analyzer names, missing reasons, stale suppressions",
	Run:  func(*Pass) error { return nil }, // special-cased in Run
}

// auditDirectives produces the lintignore findings for one package run.
// ran holds the names of the analyzers that participated (Match filtered
// or not — an analyzer scoped away from this package trivially produced
// no findings here, so a directive naming it is provably stale).
func auditDirectives(dirs []*directive, ran map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	allRan := true
	for _, a := range All() {
		known[a.Name] = true
		if a.Name != ignoreAuditorName && !ran[a.Name] {
			allRan = false
		}
	}
	var out []Diagnostic
	report := func(d *directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: ignoreAuditorName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range dirs {
		if d.name == "" {
			report(d, "//lint:ignore directive is missing an analyzer name")
			continue
		}
		if d.name != "all" && !known[d.name] {
			report(d, "//lint:ignore names unknown analyzer %q (inventory: go run ./cmd/discolint -list)", d.name)
			continue
		}
		if d.reason == "" {
			report(d, "//lint:ignore %s has no reason; every suppression must carry its justification", d.name)
		}
		if d.used || d.name == ignoreAuditorName {
			continue
		}
		// Stale-directive verdicts need the named analyzer to have run.
		if (d.name == "all" && allRan) || (d.name != "all" && ran[d.name]) {
			report(d, "//lint:ignore %s suppresses nothing; remove the stale directive", d.name)
		}
	}
	return out
}
