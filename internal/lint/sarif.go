package lint

// Minimal SARIF 2.1.0 writer so CI can upload discolint findings as a
// standard artifact (and code-scanning UIs can ingest them). Only the
// subset discolint needs is modeled; the structs marshal to the schema's
// field names.

import (
	"encoding/json"
	"io"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a single-run SARIF 2.1.0 log.
// Artifact URIs are module-relative (slash-separated) so the log is
// portable across checkouts and CI workspaces.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, moduleDir string) error {
	driver := sarifDriver{
		Name:           "discolint",
		InformationURI: "https://github.com/disco-sim/disco",
		Rules:          make([]sarifRule, 0, len(analyzers)),
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: baselineRel(moduleDir, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
