package lint

import (
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-alloc hot-path goal (ROADMAP item 2)
// interprocedurally: no heap allocation may be reachable from the
// per-cycle and per-block entry points, because a single allocation in
// NoCStep or a codec multiplies by millions of cycles/blocks per run.
//
// Per-package roots (the call graph does not cross packages; each
// package's contract is rooted at its own entry points):
//
//	internal/noc       (*Network).Step       — the cycle loop
//	internal/disco     (*Engine).Tick        — per-cycle engine service
//	internal/compress  Compress / Decompress — the codec block paths
//
// Exemptions, in order of preference when fixing a finding:
//
//   - recycled scratch: appends into a slot that is reset with
//     `s = s[:0]` anywhere in the package amortize to zero in steady
//     state (the staged-effect idiom of internal/noc);
//   - escaping results: an allocation bound to a returned value is the
//     function's product, not scratch — codec output buffers must be
//     fresh because payloads are retained by packets and caches;
//   - init paths: traversal is pruned at functions named new*/New*/
//     init*/Init* — construction may allocate, cycles may not.
//
// Anything else needs a justified //lint:ignore hotalloc (recorded in
// CHANGES.md), e.g. a one-time lazy init or a fault-injection-only path.
var HotAlloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "no heap allocation reachable from the cycle loop or codec entry points (recycled scratch, escaping results and init paths exempt)",
	Match: isHotPathPkg,
	Run:   runHotAlloc,
}

// isHotPathPkg restricts hotalloc to the packages holding hot-path roots.
func isHotPathPkg(path string) bool {
	for _, sub := range []string{"internal/noc", "internal/disco", "internal/compress"} {
		if strings.HasSuffix(path, sub) {
			return true
		}
	}
	return false
}

// hotAllocRoots resolves the hot-path entry points of the package under
// analysis.
func hotAllocRoots(pass *Pass, pf *pkgFacts) []*types.Func {
	switch {
	case strings.HasSuffix(pass.PkgPath, "internal/noc"):
		return pf.rootsNamed("Network", func(name string) bool { return name == "Step" })
	case strings.HasSuffix(pass.PkgPath, "internal/disco"):
		return pf.rootsNamed("Engine", func(name string) bool { return name == "Tick" })
	case strings.HasSuffix(pass.PkgPath, "internal/compress"):
		// Probe/ProbeSizeBits/CompressFromProbe are the word-parallel
		// kernel entry points (DESIGN.md §12): the fused probe path runs
		// once per block, same as Compress.
		return pf.rootsNamed("", func(name string) bool {
			switch name {
			case "Compress", "Decompress",
				"Probe", "ProbeInto", "ProbeSizeBits", "CompressFromProbe":
				return true
			}
			return false
		})
	}
	return nil
}

// isInitPath reports whether fn is an allowlisted construction/setup
// function: allocation is its job, and the cycle loop only reaches it
// through explicit reconfiguration, not steady-state stepping.
func isInitPath(fn *types.Func) bool {
	name := fn.Name()
	return hasPrefixFold(name, "new") || hasPrefixFold(name, "init")
}

func runHotAlloc(pass *Pass) error {
	pf := pass.facts()
	roots := hotAllocRoots(pass, pf)
	if len(roots) == 0 {
		return nil
	}
	for _, ff := range pf.orderedReachable(roots, isInitPath) {
		where := funcDisplayName(ff.fn)
		for _, a := range ff.allocs {
			if a.recycled || a.escapes {
				continue
			}
			pass.Reportf(a.pos, "heap allocation on the hot path (%s: %s in %s); hoist it to an init path, recycle scratch with s = s[:0], or justify with //lint:ignore hotalloc",
				a.kind, a.desc, where)
		}
	}
	return nil
}
