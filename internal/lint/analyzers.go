package lint

// All returns the discolint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		CreditAccess,
		FlitConserve,
		ErrcheckSim,
		StatWidth,
		PhaseSafety,
		HotAlloc,
		LintIgnore,
	}
}
