package lint

// Interprocedural analysis framework (PR 6). The single-function AST
// matching of the original analyzers cannot enforce contracts that span
// calls — "no allocation reachable from the cycle loop", "no cross-router
// write reachable from a compute-phase root". This file builds, per
// package:
//
//   - a static call graph (direct calls, method calls on concrete
//     receivers, method expressions, and functions passed as call
//     arguments — which covers the two-phase engine's
//     runStage((*Router).computeX) dispatch);
//   - per-function facts: allocation sites (make/new/escaping composite
//     literals/capturing closures/growing appends), map-iteration sites,
//     field writes with their target expression, and whether the
//     function mutates its receiver or pointer parameters;
//   - a fixpoint propagation of the mutation facts through the graph, so
//     "d.bump()" on a foreign router is a finding even though bump's
//     write is three calls deep.
//
// Facts are computed once per package and cached on the Package; the
// phasesafety and hotalloc analyzers are built on top. The graph is
// per-package: cross-package callees are unresolved leaves, which is the
// right approximation here — each analyzer declares roots inside the
// package whose contract it enforces.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocKind classifies a heap-allocation site.
type allocKind int

const (
	allocMake    allocKind = iota // make(T, ...)
	allocNew                      // new(T)
	allocCompLit                  // &T{...}, []T{...}, map[K]V{...}
	allocClosure                  // func literal capturing outer variables
	allocAppend                   // append that can grow a non-local slice
)

// String names the allocation kind for diagnostics.
func (k allocKind) String() string {
	switch k {
	case allocMake:
		return "make"
	case allocNew:
		return "new"
	case allocCompLit:
		return "composite literal"
	case allocClosure:
		return "capturing closure"
	case allocAppend:
		return "growing append"
	}
	return "alloc"
}

// allocSite is one potential heap allocation inside a function.
type allocSite struct {
	pos  token.Pos
	kind allocKind
	desc string
	// recycled marks an append into a slice slot that is reset with
	// s = s[:0] somewhere in the package: amortized to zero allocations
	// in steady state (the staged-effect and pending-arrival scratch
	// idiom of internal/noc).
	recycled bool
	// escapes marks an allocation bound to a value the enclosing
	// function returns — the function's product rather than scratch
	// (codec output buffers must be fresh: payloads are retained by
	// caches and packets and shared copy-on-write).
	escapes bool
}

// fieldWrite is one assignment/inc-dec through a selector chain.
type fieldWrite struct {
	pos  token.Pos
	expr ast.Expr // the written expression, e.g. d.stalls
	// root is the object the selector chain starts at (variable,
	// parameter, receiver), or nil when the chain roots at a call result
	// or other non-identifier expression.
	root types.Object
}

// callSite is one resolved static call.
type callSite struct {
	pos    token.Pos
	callee *types.Func
	// recv is the receiver expression for method calls (nil for plain
	// function calls and for function values passed as arguments).
	recv ast.Expr
	// recvRoot is the resolved root object of recv (nil when unknown).
	recvRoot types.Object
	// args are the call's argument expressions (indexed like the
	// callee's parameters for non-variadic matching; nil for function
	// values passed as arguments).
	args []ast.Expr
	// argRoots are the resolved root objects of args (nil per entry when
	// unknown).
	argRoots []types.Object
}

// funcFacts are the per-function analysis facts.
type funcFacts struct {
	fn   *types.Func
	decl *ast.FuncDecl
	file *ast.File

	calls     []callSite
	allocs    []allocSite
	mapRanges []token.Pos // positions of range statements over maps

	// recvObj/paramObjs resolve the receiver and parameter variables.
	recvObj   types.Object
	paramObjs []types.Object

	// mutatesRecv/mutatesParam are fixpoint facts: the function writes a
	// field of its receiver / i-th parameter, directly or via calls.
	mutatesRecv  bool
	mutatesParam []bool

	// writes are the function's field writes (used by phasesafety).
	writes []fieldWrite

	// tainted holds local variables initialized from expressions that
	// reach outside the function's own state (another router, the
	// network) — phasesafety provenance for writes through local
	// aliases like `dst := d.in[ip][v]`.
	tainted map[types.Object]bool
}

// pkgFacts caches the interprocedural facts of one package.
type pkgFacts struct {
	funcs map[*types.Func]*funcFacts
	// order preserves source order for deterministic iteration.
	order []*funcFacts
}

// facts returns the package's interprocedural facts, computing and
// caching them on first use.
func (p *Pass) facts() *pkgFacts {
	if p.pkg.facts == nil {
		p.pkg.facts = computeFacts(p)
	}
	return p.pkg.facts
}

// computeFacts builds the call graph and per-function facts for the
// package under analysis.
func computeFacts(pass *Pass) *pkgFacts {
	pf := &pkgFacts{funcs: make(map[*types.Func]*funcFacts)}
	recycledSlots := collectRecycledSlots(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := analyzeFunc(pass, fd, file, obj, recycledSlots)
			pf.funcs[obj] = ff
			pf.order = append(pf.order, ff)
		}
	}
	propagateMutation(pf)
	return pf
}

// slotKey identifies a slice storage slot for the recycled-scratch rule:
// either a (named type, field) pair rendered as "T.f" for struct fields,
// or the types.Object of a package-level or local variable.
type slotKey any

// collectRecycledSlots finds every `s = s[:0]` reset in the package and
// returns the slot keys so appends into those slots count as amortized.
func collectRecycledSlots(pass *Pass) map[slotKey]bool {
	out := make(map[slotKey]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != len(as.Lhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				sl, ok := rhs.(*ast.SliceExpr)
				if !ok || sl.High == nil || sl.Slice3 {
					continue
				}
				if !isZeroConst(pass, sl.High) || (sl.Low != nil && !isZeroConst(pass, sl.Low)) {
					continue
				}
				if key := slotOf(pass, as.Lhs[i]); key != nil {
					out[key] = true
				}
			}
			return true
		})
	}
	return out
}

// isZeroConst reports whether e is the constant 0.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// slotOf resolves the storage slot of a slice expression: struct fields
// map to a "T.f" key (so r.saStalls and any alias of it share a slot),
// plain variables map to their object. Index expressions resolve to
// their base's slot (wants[p] shares saWants' slot).
func slotOf(pass *Pass, e ast.Expr) slotKey {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		// A local alias introduced by `x := recv.field` or `x := &recv.field`
		// shares the field's slot; resolve through single-assignment defs.
		if v, ok := obj.(*types.Var); ok {
			if key, ok := aliasSlot(pass, v); ok {
				return key
			}
		}
		return obj
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(pass.TypeOf(e.X)); named != nil {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return nil
	case *ast.IndexExpr:
		return slotOf(pass, e.X)
	case *ast.StarExpr:
		return slotOf(pass, e.X)
	}
	return nil
}

// aliasSlot resolves a local variable to the slot of its initializer
// (`reqs := &r.vaReqs` shares Router.vaReqs' slot). Single-assignment
// defines only; reassigned aliases keep their own object as the slot.
func aliasSlot(pass *Pass, v *types.Var) (slotKey, bool) {
	for _, file := range pass.Files {
		if file.Pos() > v.Pos() || v.Pos() > file.End() {
			continue
		}
		var key slotKey
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[id] != v {
					continue
				}
				rhs := ast.Unparen(as.Rhs[i])
				if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					rhs = ast.Unparen(ue.X)
				}
				switch rhs := rhs.(type) {
				case *ast.SelectorExpr:
					key = slotOf(pass, rhs)
				case *ast.IndexExpr:
					key = slotOf(pass, rhs)
				}
			}
			return key == nil
		})
		if key != nil {
			return key, true
		}
	}
	return nil, false
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// analyzeFunc computes the intra-function facts of one declaration in a
// single walk over the body. Allocation sites are classified wherever
// they appear (call arguments included); escape marking happens in a
// post-pass once the return statements and assignment bindings are
// known.
func analyzeFunc(pass *Pass, fd *ast.FuncDecl, file *ast.File, obj *types.Func, recycled map[slotKey]bool) *funcFacts {
	ff := &funcFacts{fn: obj, decl: fd, file: file, tainted: make(map[types.Object]bool)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		ff.recvObj = pass.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	sig := obj.Type().(*types.Signature)
	ff.paramObjs = make([]types.Object, sig.Params().Len())
	ff.mutatesParam = make([]bool, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		ff.paramObjs[i] = sig.Params().At(i)
	}

	returned := returnedIdents(pass, fd)
	// bindings records each RHS expression span with the object it is
	// assigned to (for the escape rule): an allocation anywhere inside the
	// RHS — w := bitWriter{buf: make(...)} included — is bound to the LHS.
	// returnRanges are the spans of return statements (allocations inside
	// them escape by construction).
	type span struct{ lo, hi token.Pos }
	type bindSpan struct {
		span
		obj types.Object
	}
	var bindings []bindSpan
	var returnRanges []span
	// consumedLit marks composite literals already charged to an
	// enclosing &T{...} so they are not double-counted.
	consumedLit := make(map[ast.Node]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ff.recordWrite(pass, lhs)
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						o := pass.Info.Defs[id]
						if o == nil {
							o = pass.Info.Uses[id]
						}
						if o != nil {
							bindings = append(bindings, bindSpan{span{rhs.Pos(), rhs.End()}, o})
							if exprReachesForeign(pass, ff, rhs) {
								ff.tainted[o] = true
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if i < len(n.Names) {
					if o := pass.Info.Defs[n.Names[i]]; o != nil {
						bindings = append(bindings, bindSpan{span{val.Pos(), val.End()}, o})
						if exprReachesForeign(pass, ff, val) {
							ff.tainted[o] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			ff.recordWrite(pass, n.X)
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					ff.mapRanges = append(ff.mapRanges, n.Pos())
				}
			}
		case *ast.ReturnStmt:
			returnRanges = append(returnRanges, span{n.Pos(), n.End()})
		case *ast.CallExpr:
			ff.recordCall(pass, n)
			if site, ok := ff.classifyAllocCall(pass, n, recycled); ok {
				ff.allocs = append(ff.allocs, site)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					consumedLit[cl] = true
					ff.allocs = append(ff.allocs, allocSite{pos: n.Pos(), kind: allocCompLit, desc: exprString(n)})
				}
			}
		case *ast.CompositeLit:
			if consumedLit[n] {
				return true
			}
			if t := pass.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					ff.allocs = append(ff.allocs, allocSite{pos: n.Pos(), kind: allocCompLit, desc: exprString(n)})
				}
			}
		case *ast.FuncLit:
			if capturesOutside(pass, n) {
				ff.allocs = append(ff.allocs, allocSite{
					pos: n.Pos(), kind: allocClosure,
					desc: "func literal capturing outer variables",
				})
			}
			return true // still walk the body: its effects run in this context
		}
		return true
	})

	for i := range ff.allocs {
		a := &ff.allocs[i]
		for _, b := range bindings {
			if b.lo <= a.pos && a.pos < b.hi && returned[b.obj] {
				a.escapes = true
			}
		}
		for _, r := range returnRanges {
			if r.lo <= a.pos && a.pos < r.hi {
				a.escapes = true
			}
		}
	}
	return ff
}

// returnedIdents collects every identifier object mentioned inside the
// function's return statements (plus named results): allocations bound
// to them are the function's product, not scratch.
func returnedIdents(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function's returns are not ours
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// recordWrite classifies one assignment target as a field write.
func (ff *funcFacts) recordWrite(pass *Pass, lhs ast.Expr) {
	root, isField := writeRoot(pass, lhs)
	if !isField {
		// Plain variable assignment (x = ...): not a field write.
		return
	}
	ff.writes = append(ff.writes, fieldWrite{pos: lhs.Pos(), expr: lhs, root: root})
	if root != nil {
		if root == ff.recvObj {
			ff.mutatesRecv = true
		}
		for i, p := range ff.paramObjs {
			if root == p {
				ff.mutatesParam[i] = true
			}
		}
	}
}

// writeRoot peels a selector/index/deref chain and returns the root
// identifier's object (nil for non-ident roots) and whether the target
// is a field/element rather than a plain variable.
func writeRoot(pass *Pass, e ast.Expr) (types.Object, bool) {
	isField := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			isField = true
			e = x.X
		case *ast.IndexExpr:
			isField = true
			e = x.X
		case *ast.StarExpr:
			isField = true
			e = x.X
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			return obj, isField
		default:
			return nil, isField
		}
	}
}

// classifyAllocCall recognizes make/new/append allocation calls.
func (ff *funcFacts) classifyAllocCall(pass *Pass, n *ast.CallExpr, recycled map[slotKey]bool) (allocSite, bool) {
	id, ok := ast.Unparen(n.Fun).(*ast.Ident)
	if !ok {
		return allocSite{}, false
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return allocSite{}, false
	}
	switch id.Name {
	case "make":
		return allocSite{pos: n.Pos(), kind: allocMake, desc: exprString(n)}, true
	case "new":
		return allocSite{pos: n.Pos(), kind: allocNew, desc: exprString(n)}, true
	case "append":
		if len(n.Args) == 0 {
			return allocSite{}, false
		}
		if obj, isField := writeRoot(pass, n.Args[0]); !isField && obj != nil && isFuncLocal(obj, ff.decl) {
			// Growing a function-local slice: charged to the local's own
			// creation site (or it escapes and the escape rule applies);
			// skip to avoid double reporting.
			return allocSite{}, false
		}
		site := allocSite{pos: n.Pos(), kind: allocAppend, desc: "append to " + exprString(n.Args[0])}
		if key := slotOf(pass, n.Args[0]); key != nil && recycled[key] {
			site.recycled = true
		}
		return site, true
	}
	return allocSite{}, false
}

// isFuncLocal reports whether obj is declared inside fd's body (not a
// parameter, receiver, or package-level variable).
func isFuncLocal(obj types.Object, fd *ast.FuncDecl) bool {
	if obj == nil || fd.Body == nil {
		return false
	}
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}

// capturesOutside reports whether the func literal references variables
// declared outside itself (a capturing closure, which heap-allocates).
func capturesOutside(pass *Pass, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pkg := v.Pkg(); pkg == nil {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: no capture
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
		}
		return true
	})
	return captured
}

// recordCall resolves a call's static callee: direct function calls,
// method calls on concrete receivers, method expressions, and in-package
// functions passed as arguments (the runStage((*Router).computeX)
// dispatch idiom).
func (ff *funcFacts) recordCall(pass *Pass, call *ast.CallExpr) {
	if fn, recv := staticCallee(pass, call.Fun); fn != nil {
		cs := callSite{pos: call.Pos(), callee: fn, recv: recv, args: call.Args}
		if recv != nil {
			cs.recvRoot, _ = writeRoot(pass, recv)
		}
		cs.argRoots = make([]types.Object, len(call.Args))
		for i, arg := range call.Args {
			cs.argRoots[i], _ = writeRoot(pass, arg)
		}
		ff.calls = append(ff.calls, cs)
	}
	for _, arg := range call.Args {
		if fn, _ := staticCallee(pass, arg); fn != nil {
			// A function value passed into a call: assume the callee may
			// invoke it (sound for reachability).
			ff.calls = append(ff.calls, callSite{pos: arg.Pos(), callee: fn})
		}
	}
}

// staticCallee resolves e to a *types.Func when it statically names a
// function or method; for method-value selections it also returns the
// receiver expression.
func staticCallee(pass *Pass, e ast.Expr) (*types.Func, ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[e].(*types.Func); ok {
			return fn, nil
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, nil
			}
			if sel.Kind() == types.MethodExpr {
				return fn, nil // (*Router).computeX: no receiver at this site
			}
			return fn, e.X
		}
		// Package-qualified name (pkg.Func).
		if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok {
			return fn, nil
		}
	}
	return nil, nil
}

// propagateMutation closes mutatesRecv/mutatesParam over the call graph:
// a method that calls another mutator on its own receiver (or passes its
// receiver/params into mutating parameter slots) is itself a mutator.
func propagateMutation(pf *pkgFacts) {
	changed := true
	for changed {
		changed = false
		for _, ff := range pf.order {
			for _, cs := range ff.calls {
				callee := pf.funcs[cs.callee]
				if callee == nil {
					continue
				}
				if callee.mutatesRecv && cs.recvRoot != nil {
					changed = markMutation(ff, cs.recvRoot) || changed
				}
				for i, root := range cs.argRoots {
					if root == nil || i >= len(callee.mutatesParam) || !callee.mutatesParam[i] {
						continue
					}
					changed = markMutation(ff, root) || changed
				}
			}
		}
	}
}

// markMutation records that ff mutates obj when obj is its receiver or a
// parameter; reports whether a fact changed.
func markMutation(ff *funcFacts, obj types.Object) bool {
	changed := false
	if obj == ff.recvObj && !ff.mutatesRecv {
		ff.mutatesRecv = true
		changed = true
	}
	for i, p := range ff.paramObjs {
		if obj == p && !ff.mutatesParam[i] {
			ff.mutatesParam[i] = true
			changed = true
		}
	}
	return changed
}

// reachableFrom computes the closure of functions reachable from roots
// over the package call graph. skip prunes traversal (the function and
// everything only reachable through it are excluded).
func (pf *pkgFacts) reachableFrom(roots []*types.Func, skip func(*types.Func) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if pf.funcs[r] != nil && (skip == nil || !skip(r)) {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cs := range pf.funcs[fn].calls {
			if cs.callee == nil || seen[cs.callee] || pf.funcs[cs.callee] == nil {
				continue
			}
			if skip != nil && skip(cs.callee) {
				continue
			}
			seen[cs.callee] = true
			stack = append(stack, cs.callee)
		}
	}
	return seen
}

// orderedReachable returns the reachable set as funcFacts in source
// order, for deterministic diagnostics.
func (pf *pkgFacts) orderedReachable(roots []*types.Func, skip func(*types.Func) bool) []*funcFacts {
	seen := pf.reachableFrom(roots, skip)
	out := make([]*funcFacts, 0, len(seen))
	for _, ff := range pf.order {
		if seen[ff.fn] {
			out = append(out, ff)
		}
	}
	return out
}

// rootsNamed collects the package's functions whose (method) name
// matches pred, optionally restricted to methods on the named receiver
// type.
func (pf *pkgFacts) rootsNamed(recvType string, pred func(name string) bool) []*types.Func {
	var out []*types.Func
	for _, ff := range pf.order {
		if !pred(ff.fn.Name()) {
			continue
		}
		if recvType != "" && recvTypeName(ff.fn) != recvType {
			continue
		}
		out = append(out, ff.fn)
	}
	return out
}

// recvTypeName returns the name of fn's receiver's named type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// Foreign-state classification results for classifyForeign.
const (
	foreignNone    = ""
	foreignRouter  = "another router"
	foreignNetwork = "Network-global state"
)

// classifyForeign reports whether e contains a sub-expression that
// reaches state outside the enclosing function's own router: an
// expression of type Router that is not the receiver or a parameter, an
// expression of type Network, or a use of an already-tainted local.
// Used both to taint local variables at their initialization and to
// classify write targets (phasesafety). Cross-router beats
// Network-global when both appear in the chain — a write to
// net.Routers[i].f targets that router, the network is just the path.
func classifyForeign(pass *Pass, ff *funcFacts, e ast.Expr) string {
	kind := foreignNone
	mark := func(k string) {
		if kind == foreignNone || k == foreignRouter {
			kind = k
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if kind == foreignRouter {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		named := namedOf(pass.TypeOf(ex))
		name := ""
		if named != nil {
			name = named.Obj().Name()
		}
		switch name {
		case "Network", "Router":
			foreign := foreignRouter
			if name == "Network" {
				foreign = foreignNetwork
			}
			id, ok := ast.Unparen(ex).(*ast.Ident)
			if !ok {
				// A selector (r.net), call result (r.downstream(p)) or
				// index (net.Routers[i]): state beyond the vouched roots.
				mark(foreign)
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj == nil || ff.tainted[obj] {
				mark(foreign)
				return true
			}
			if obj == ff.recvObj {
				// Own receiver: a (*Network).helper reached in traversal
				// writes its own fields; the violation is the call site
				// that handed compute a Network, and that is where the
				// finding lands (trace/mutation call checks).
				return true
			}
			for _, p := range ff.paramObjs {
				if obj == p {
					return true // the caller vouched for this value
				}
			}
			mark(foreign)
		default:
			if id, ok := ast.Unparen(ex).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && ff.tainted[obj] {
					mark(foreignRouter)
				}
			}
		}
		return true
	})
	return kind
}

// exprReachesForeign is classifyForeign as a predicate (local taint).
func exprReachesForeign(pass *Pass, ff *funcFacts, e ast.Expr) bool {
	return classifyForeign(pass, ff, e) != foreignNone
}

// exprString renders a (small) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.CompositeLit:
		if e.Type != nil {
			return exprString(e.Type) + "{...}"
		}
		return "{...}"
	case *ast.ArrayType:
		return "[]" + exprString(e.Elt)
	case *ast.MapType:
		return fmt.Sprintf("map[%s]%s", exprString(e.Key), exprString(e.Value))
	default:
		return "expr"
	}
}

// funcDisplayName renders fn for diagnostics: "(*Router).computeSA" or
// "stepInjection".
func funcDisplayName(fn *types.Func) string {
	if recv := recvTypeName(fn); recv != "" {
		return "(*" + recv + ")." + fn.Name()
	}
	return fn.Name()
}

// hasPrefixFold reports whether name starts with prefix, ignoring the
// case of the first rune (New/new, Init/init).
func hasPrefixFold(name, prefix string) bool {
	return strings.HasPrefix(strings.ToLower(name), strings.ToLower(prefix))
}
