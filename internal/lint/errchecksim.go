package lint

import (
	"go/ast"
	"go/types"
)

// ErrcheckSim flags silently dropped errors: a call used as a bare
// statement whose results include an error. Trace and result files are
// the simulator's ground truth — a swallowed short-write turns into a
// silently truncated trace and a wrong figure.
//
// Deliberate discards stay possible and visible:
//
//   - assign the error to _ explicitly (`_ = w.Flush()`), or
//   - defer the call (`defer f.Close()`), the conventional cleanup idiom.
//
// Writers that cannot fail (strings.Builder, bytes.Buffer — their Write
// methods are documented to always return a nil error) and console
// logging (fmt.Print* and fmt.Fprint* to os.Stdout/os.Stderr) are
// exempt, as are writes through a *text/tabwriter.Writer, which buffers
// and surfaces its error at Flush — checking Flush is what matters.
var ErrcheckSim = &Analyzer{
	Name: "errchecksim",
	Doc:  "calls returning an error must not be used as bare statements",
	Run:  runErrcheckSim,
}

func runErrcheckSim(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false // deferred cleanup may drop its error
			}
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || allowedDrop(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently dropped; handle it or assign to _ explicitly", calleeName(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// allowedDrop whitelists console logging and writers that cannot fail.
func allowedDrop(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print*/Fprint* handling.
	if importedPkgPath(pass, sel.X) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true // stdout console logging
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && infallibleWriter(pass, call.Args[0])
		}
		return false
	}
	// Methods on infallible writers (Builder.WriteString and friends).
	if selInfo, ok := pass.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
		return infallibleWriterType(selInfo.Recv())
	}
	return false
}

// infallibleWriter reports whether e is a writer whose errors are
// either impossible or surfaced elsewhere.
func infallibleWriter(pass *Pass, e ast.Expr) bool {
	// os.Stdout / os.Stderr: console logging.
	if sel, ok := e.(*ast.SelectorExpr); ok && importedPkgPath(pass, sel.X) == "os" {
		if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
			return true
		}
	}
	return infallibleWriterType(pass.TypeOf(e))
}

// infallibleWriterType matches the concrete writer types exempted in
// the analyzer doc.
func infallibleWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "text/tabwriter.Writer":
		return true
	}
	return false
}

// calleeName renders the called expression for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return "(...)." + fun.Sel.Name
	}
	return "call"
}
