package lint

// Baseline support: a committed inventory of known findings so CI can
// fail only on NEW findings while the repo is being swept. Entries are
// keyed by (analyzer, module-relative file, message) with an occurrence
// count — line numbers are deliberately excluded so unrelated edits
// above a known finding do not churn the baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the committed findings inventory (lint-baseline.json).
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one known finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is module-relative and slash-separated, so the baseline is
	// portable across checkouts.
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// key identifies a finding class within the baseline maps.
func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// baselineRel maps a diagnostic's absolute filename to the baseline's
// module-relative form.
func baselineRel(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// NewBaseline aggregates diags into a canonical (sorted, counted)
// baseline.
func NewBaseline(diags []Diagnostic, moduleDir string) *Baseline {
	counts := make(map[string]*BaselineEntry)
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     baselineRel(moduleDir, d.Pos.Filename),
			Message:  d.Message,
		}
		k := e.key()
		if have, ok := counts[k]; ok {
			have.Count++
			continue
		}
		e.Count = 1
		counts[k] = &e
	}
	b := &Baseline{Version: 1, Findings: make([]BaselineEntry, 0, len(counts))}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parse baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// WriteFile writes the baseline in its canonical form.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FilterNew returns the diags not covered by the baseline: for each
// finding class, occurrences beyond the baselined count are new.
func (b *Baseline) FilterNew(diags []Diagnostic, moduleDir string) []Diagnostic {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[e.key()] += e.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		k := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     baselineRel(moduleDir, d.Pos.Filename),
			Message:  d.Message,
		}.key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// Equal reports whether two baselines cover the identical finding set
// (the lint-baseline guard test: the committed file must match a fresh
// sweep, so fixed findings cannot linger as stale entries).
func (b *Baseline) Equal(other *Baseline) bool {
	if len(b.Findings) != len(other.Findings) {
		return false
	}
	for i := range b.Findings {
		if b.Findings[i] != other.Findings[i] {
			return false
		}
	}
	return true
}
