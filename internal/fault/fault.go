// Package fault is the simulator's deterministic fault-injection layer.
//
// A Spec describes which fault classes are armed and how aggressively;
// an Injector draws from per-class seeded PRNG streams so that enabling
// or tuning one class never perturbs the draw sequence of another, and
// the same (workload seed, fault seed) pair always yields the same fault
// schedule. The three classes mirror the failure modes an in-network
// compression fabric is exposed to:
//
//   - engine: a DISCO de/compression engine suffers a transient fault —
//     it goes stuck-busy for EngineStuck cycles and then aborts its job
//     (the router recovers via the shadow packet and, after BreakerK
//     consecutive faults, bypasses the engine through a circuit breaker);
//   - payload: a bit-flip corrupts a compressed payload on a link (the
//     decoder's ErrCorrupt / a content mismatch triggers shadow recovery,
//     so the uncompressed original is still delivered);
//   - credit: a flow-control credit is lost on a link and restored only
//     after CreditRecovery cycles (transient backpressure; a permanent
//     loss wedges the fabric, which the cmp watchdog diagnoses).
//
// Zero overhead when disabled: a nil *Spec (or one with all rates zero)
// never constructs an Injector, and every hook in internal/noc gates on
// a nil check before touching fault state.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Defaults used by ParseSpec and NewInjector for unset knobs.
const (
	// DefaultEngineStuck is the stuck-busy window of a faulted engine.
	DefaultEngineStuck = 32
	// DefaultBreakerK is the consecutive-fault count that trips a
	// router's engine circuit breaker.
	DefaultBreakerK = 4
	// DefaultBreakerCooldown is how long (cycles) a tripped breaker
	// keeps the engine bypassed before re-arming.
	DefaultBreakerCooldown = 2048
	// DefaultCreditRecovery is how long (cycles) a lost credit stays
	// lost before the link-level recovery restores it.
	DefaultCreditRecovery = 512
)

// Spec describes one fault-injection campaign. The zero value (all rates
// zero) is a valid "armed but silent" spec: Enabled reports false and no
// injector is built, which is what the zero-overhead-off determinism
// gate exercises.
type Spec struct {
	// Seed drives the injector's PRNG streams, independently of the
	// workload seed so fault schedules can be varied in isolation.
	Seed int64

	// EngineRate is the per-job probability that a DISCO engine suffers
	// a transient fault (stuck-busy then abort).
	EngineRate float64
	// EngineStuck is the stuck-busy duration in cycles (0 = default).
	EngineStuck int
	// BreakerK trips a router's engine breaker after this many
	// consecutive engine faults (0 = default; negative disables).
	BreakerK int
	// BreakerCooldown is the breaker's open window in cycles (0 = default).
	BreakerCooldown uint64

	// PayloadRate is the per-link-traversal probability that a
	// compressed packet's payload takes a bit-flip.
	PayloadRate float64

	// CreditRate is the per-link-traversal probability that one credit
	// of the destination VC is lost.
	CreditRate float64
	// CreditRecovery is the cycles until a lost credit is restored
	// (0 = default).
	CreditRecovery uint64
}

// Enabled reports whether any fault class can fire.
func (s *Spec) Enabled() bool {
	return s != nil && (s.EngineRate > 0 || s.PayloadRate > 0 || s.CreditRate > 0)
}

// Validate reports spec errors.
func (s *Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"engine", s.EngineRate}, {"payload", s.PayloadRate}, {"credit", s.CreditRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %g out of [0,1]", r.name, r.v)
		}
	}
	if s.EngineStuck < 0 {
		return fmt.Errorf("fault: negative engine stuck window %d", s.EngineStuck)
	}
	return nil
}

// String renders the spec in ParseSpec syntax (only armed classes).
func (s *Spec) String() string {
	var parts []string
	add := func(k string, v string) { parts = append(parts, k+"="+v) }
	if s.EngineRate > 0 {
		add("engine", strconv.FormatFloat(s.EngineRate, 'g', -1, 64))
		add("stuck", strconv.Itoa(s.orStuck()))
		add("k", strconv.Itoa(s.orBreakerK()))
		add("cooldown", strconv.FormatUint(s.orCooldown(), 10))
	}
	if s.PayloadRate > 0 {
		add("payload", strconv.FormatFloat(s.PayloadRate, 'g', -1, 64))
	}
	if s.CreditRate > 0 {
		add("credit", strconv.FormatFloat(s.CreditRate, 'g', -1, 64))
		add("recover", strconv.FormatUint(s.orRecovery(), 10))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

func (s *Spec) orStuck() int {
	if s.EngineStuck > 0 {
		return s.EngineStuck
	}
	return DefaultEngineStuck
}

func (s *Spec) orBreakerK() int {
	if s.BreakerK != 0 {
		return s.BreakerK
	}
	return DefaultBreakerK
}

func (s *Spec) orCooldown() uint64 {
	if s.BreakerCooldown > 0 {
		return s.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (s *Spec) orRecovery() uint64 {
	if s.CreditRecovery > 0 {
		return s.CreditRecovery
	}
	return DefaultCreditRecovery
}

// ParseSpec parses a comma-separated key=value fault spec, e.g.
//
//	engine=0.02,stuck=32,k=4,cooldown=2048,payload=0.001,credit=0.005,recover=512
//
// Keys: engine/payload/credit (rates in [0,1]), stuck (cycles), k
// (breaker threshold), cooldown (cycles), recover (cycles). Unset knobs
// take the package defaults at injection time. The empty string is a
// valid, disabled spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	if strings.TrimSpace(text) == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "engine", "payload", "credit":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad %s rate %q: %v", k, v, err)
			}
			switch k {
			case "engine":
				s.EngineRate = f
			case "payload":
				s.PayloadRate = f
			case "credit":
				s.CreditRate = f
			}
		case "stuck", "k":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad %s value %q: %v", k, v, err)
			}
			if k == "stuck" {
				s.EngineStuck = n
			} else {
				s.BreakerK = n
			}
		case "cooldown", "recover":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad %s value %q: %v", k, v, err)
			}
			if k == "cooldown" {
				s.BreakerCooldown = n
			} else {
				s.CreditRecovery = n
			}
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			s.Seed = n
		default:
			return Spec{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// splitmix64 decorrelates the per-class stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Injector draws fault decisions from per-class PRNG streams. Each class
// owns its stream, so arming or tuning one class leaves the others'
// schedules untouched; a class with rate zero never draws at all.
type Injector struct {
	spec    Spec
	engine  *rand.Rand
	payload *rand.Rand
	credit  *rand.Rand
}

// NewInjector builds an injector for spec (defaults resolved). The
// caller should only construct one when spec.Enabled() — a silent
// injector costs a draw per hook even though it never fires.
func NewInjector(spec Spec) *Injector {
	spec.EngineStuck = spec.orStuck()
	spec.BreakerK = spec.orBreakerK()
	spec.BreakerCooldown = spec.orCooldown()
	spec.CreditRecovery = spec.orRecovery()
	stream := func(class uint64) *rand.Rand {
		return rand.New(rand.NewSource(int64(splitmix64(uint64(spec.Seed) ^ class*0x9E3779B97F4A7C15))))
	}
	return &Injector{
		spec:    spec,
		engine:  stream(1),
		payload: stream(2),
		credit:  stream(3),
	}
}

// Spec returns the injector's resolved spec (defaults filled in).
func (i *Injector) Spec() Spec { return i.spec }

// EngineFault decides whether the engine job being started faults.
func (i *Injector) EngineFault() bool {
	if i.spec.EngineRate <= 0 {
		return false
	}
	return i.engine.Float64() < i.spec.EngineRate
}

// PayloadFlip decides whether a compressed payload entering a link takes
// a bit-flip.
func (i *Injector) PayloadFlip() bool {
	if i.spec.PayloadRate <= 0 {
		return false
	}
	return i.payload.Float64() < i.spec.PayloadRate
}

// BitIndex picks the bit (within nbits) a payload flip lands on; it
// draws from the payload stream so flip positions ride the same
// deterministic schedule as flip decisions.
func (i *Injector) BitIndex(nbits int) int {
	if nbits <= 0 {
		return 0
	}
	return i.payload.Intn(nbits)
}

// CreditLoss decides whether a link traversal loses a credit.
func (i *Injector) CreditLoss() bool {
	if i.spec.CreditRate <= 0 {
		return false
	}
	return i.credit.Float64() < i.spec.CreditRate
}

// FlipBit returns a copy of payload with the given bit inverted. It
// never mutates payload in place: compressed encodings are shared
// between packets and the endpoint compression caches, so corruption
// must be copy-on-write.
func FlipBit(payload []byte, bit int) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	if len(out) > 0 {
		bit %= len(out) * 8
		if bit < 0 {
			bit += len(out) * 8
		}
		out[bit/8] ^= 1 << uint(bit%8)
	}
	return out
}
