package fault

import (
	"bytes"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec("engine=0.02,stuck=40,k=3,cooldown=1000,payload=0.001,credit=0.005,recover=256,seed=9")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.EngineRate != 0.02 || s.EngineStuck != 40 || s.BreakerK != 3 ||
		s.BreakerCooldown != 1000 || s.PayloadRate != 0.001 ||
		s.CreditRate != 0.005 || s.CreditRecovery != 256 || s.Seed != 9 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
	if !s.Enabled() {
		t.Error("spec with nonzero rates should be enabled")
	}
	re, err := ParseSpec(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	re.Seed = s.Seed // String omits the seed (a flag, not a class knob)
	if re != s {
		t.Errorf("String/ParseSpec not a fixed point:\n  %+v\n  %+v", s, re)
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	s, err := ParseSpec("")
	if err != nil || s.Enabled() {
		t.Errorf("empty spec should parse as disabled, got %+v, %v", s, err)
	}
	for _, bad := range []string{
		"engine", "engine=2.0", "engine=-1", "warp=0.1", "stuck=x", "cooldown=-4",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecNilEnabled(t *testing.T) {
	var s *Spec
	if s.Enabled() {
		t.Error("nil spec enabled")
	}
	if !(&Spec{PayloadRate: 0.5}).Enabled() {
		t.Error("payload-only spec should be enabled")
	}
	if (&Spec{Seed: 7}).Enabled() {
		t.Error("all-zero-rate spec should be disabled")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	spec := Spec{Seed: 5, EngineRate: 0.3, PayloadRate: 0.2, CreditRate: 0.1}
	draw := func() (out []bool) {
		in := NewInjector(spec)
		for n := 0; n < 200; n++ {
			out = append(out, in.EngineFault(), in.PayloadFlip(), in.CreditLoss())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed injectors diverge at draw %d", i)
		}
	}
	fired := false
	for _, v := range a {
		fired = fired || v
	}
	if !fired {
		t.Error("no fault fired in 200 draws at these rates")
	}
}

// TestClassStreamsIndependent is the per-class-stream guarantee: arming
// an extra class must not perturb the schedules of the others.
func TestClassStreamsIndependent(t *testing.T) {
	seq := func(spec Spec) (out []bool) {
		in := NewInjector(spec)
		for n := 0; n < 100; n++ {
			out = append(out, in.CreditLoss())
		}
		return out
	}
	creditOnly := seq(Spec{Seed: 11, CreditRate: 0.2})
	withOthers := seq(Spec{Seed: 11, CreditRate: 0.2, EngineRate: 0.5, PayloadRate: 0.5})
	for i := range creditOnly {
		if creditOnly[i] != withOthers[i] {
			t.Fatalf("credit schedule changed at draw %d when other classes were armed", i)
		}
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := NewInjector(Spec{Seed: 1, PayloadRate: 1})
	for n := 0; n < 100; n++ {
		if in.EngineFault() || in.CreditLoss() {
			t.Fatal("zero-rate class fired")
		}
		if !in.PayloadFlip() {
			t.Fatal("rate-1 class did not fire")
		}
	}
}

func TestInjectorResolvesDefaults(t *testing.T) {
	in := NewInjector(Spec{EngineRate: 0.1, CreditRate: 0.1})
	s := in.Spec()
	if s.EngineStuck != DefaultEngineStuck || s.BreakerK != DefaultBreakerK ||
		s.BreakerCooldown != DefaultBreakerCooldown || s.CreditRecovery != DefaultCreditRecovery {
		t.Errorf("defaults not resolved: %+v", s)
	}
}

func TestFlipBitCopyOnWrite(t *testing.T) {
	orig := []byte{0x00, 0xFF, 0x55}
	keep := append([]byte(nil), orig...)
	flipped := FlipBit(orig, 9) // bit 1 of byte 1
	if !bytes.Equal(orig, keep) {
		t.Fatal("FlipBit mutated its input")
	}
	if bytes.Equal(flipped, orig) {
		t.Fatal("FlipBit returned an unmodified copy")
	}
	if flipped[1] != 0xFF^0x02 {
		t.Errorf("wrong bit flipped: got %#x", flipped[1])
	}
	// Flipping the same bit twice restores the original.
	if back := FlipBit(flipped, 9); !bytes.Equal(back, orig) {
		t.Error("double flip did not round-trip")
	}
	if out := FlipBit(nil, 3); len(out) != 0 {
		t.Error("flip of empty payload should be empty")
	}
}

func TestBitIndexInRange(t *testing.T) {
	in := NewInjector(Spec{Seed: 2, PayloadRate: 1})
	for n := 0; n < 1000; n++ {
		if b := in.BitIndex(24); b < 0 || b >= 24 {
			t.Fatalf("bit index %d out of range", b)
		}
	}
	if in.BitIndex(0) != 0 {
		t.Error("BitIndex(0) should be 0")
	}
}
