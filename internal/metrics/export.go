package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// MeanExport is the JSON shape of an observed stats.Mean.
type MeanExport struct {
	N      uint64  `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// HistExport is the JSON shape of an observed stats.Histogram.
type HistExport struct {
	N        uint64  `json:"n"`
	Mean     float64 `json:"mean"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Max      float64 `json:"max"`
	Overflow uint64  `json:"overflow"`
}

// SeriesExport is the JSON shape of the time-series block.
type SeriesExport struct {
	IntervalCycles uint64      `json:"interval_cycles"`
	Columns        []string    `json:"columns"`
	Rows           [][]float64 `json:"rows"`
}

// Export is the full JSON document. Maps marshal with sorted keys, so
// the document is byte-deterministic for identical registry state.
type Export struct {
	Counters   map[string]uint64     `json:"counters"`
	Gauges     map[string]float64    `json:"gauges"`
	Means      map[string]MeanExport `json:"means"`
	Histograms map[string]HistExport `json:"histograms"`
	Series     SeriesExport          `json:"series"`
}

// Snapshot evaluates every metric (observed closures included) and
// returns the export document.
func (r *Registry) Snapshot() Export {
	ex := Export{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Means:      map[string]MeanExport{},
		Histograms: map[string]HistExport{},
		Series: SeriesExport{
			IntervalCycles: r.interval,
			Columns:        r.SampleColumns(),
			Rows:           r.rows,
		},
	}
	if ex.Series.Rows == nil {
		ex.Series.Rows = [][]float64{}
	}
	if ex.Series.Columns == nil {
		ex.Series.Columns = []string{}
	}
	r.root.walk(func(name string, e *entry) {
		switch {
		case e.counter != nil:
			ex.Counters[name] = e.counter.Get()
		case e.counterFunc != nil:
			ex.Counters[name] = e.counterFunc()
		case e.gauge != nil:
			ex.Gauges[name] = e.gauge.Get()
		case e.gaugeFunc != nil:
			ex.Gauges[name] = e.gaugeFunc()
		case e.mean != nil:
			m := e.mean
			ex.Means[name] = MeanExport{N: m.N(), Mean: m.Mean(),
				StdDev: m.StdDev(), Min: m.Min(), Max: m.Max()}
		case e.hist != nil:
			h := e.hist
			ex.Histograms[name] = HistExport{N: h.N(), Mean: h.Mean(),
				P50: h.Percentile(50), P95: h.Percentile(95), P99: h.Percentile(99),
				Max: h.Max(), Overflow: h.Overflow()}
		}
	})
	return ex
}

// WriteJSON writes the indented JSON export document.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteCSV writes the scalar metrics as sorted "name,kind,value" rows
// (means and histograms contribute their summary statistics as
// dotted sub-names).
func (r *Registry) WriteCSV(w io.Writer) error {
	ex := r.Snapshot()
	rows := make([]string, 0, len(ex.Counters)+len(ex.Gauges)+4*len(ex.Means))
	for n, v := range ex.Counters {
		rows = append(rows, fmt.Sprintf("%s,counter,%d", n, v))
	}
	for n, v := range ex.Gauges {
		rows = append(rows, fmt.Sprintf("%s,gauge,%s", n, fmtF(v)))
	}
	for n, m := range ex.Means {
		rows = append(rows,
			fmt.Sprintf("%s.n,mean,%d", n, m.N),
			fmt.Sprintf("%s.mean,mean,%s", n, fmtF(m.Mean)),
			fmt.Sprintf("%s.stddev,mean,%s", n, fmtF(m.StdDev)),
			fmt.Sprintf("%s.max,mean,%s", n, fmtF(m.Max)))
	}
	for n, h := range ex.Histograms {
		rows = append(rows,
			fmt.Sprintf("%s.n,hist,%d", n, h.N),
			fmt.Sprintf("%s.p50,hist,%s", n, fmtF(h.P50)),
			fmt.Sprintf("%s.p95,hist,%s", n, fmtF(h.P95)),
			fmt.Sprintf("%s.max,hist,%s", n, fmtF(h.Max)))
	}
	sort.Strings(rows)
	if _, err := io.WriteString(w, "name,kind,value\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV writes the sampled time series: a "cycle,<col>,..."
// header then one row per sample.
func (r *Registry) WriteSeriesCSV(w io.Writer) error {
	header := "cycle"
	for _, c := range r.SampleColumns() {
		header += "," + c
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	for _, row := range r.rows {
		line := ""
		for i, v := range row {
			if i > 0 {
				line += ","
			}
			line += fmtF(v)
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// fmtF formats a float deterministically (shortest round-trip form, the
// same rule encoding/json uses).
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
