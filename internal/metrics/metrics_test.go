package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/stats"
)

func TestScopeHierarchyAndNames(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("noc", "router", "3")
	if s.Name() != "noc.router.3" {
		t.Errorf("scope name = %q", s.Name())
	}
	if r.Scope("noc").Scope("router", "3") != s {
		t.Error("Scope should return the same node for the same path")
	}
	c := s.Counter("flits")
	c.Add(2)
	c.Inc()
	if c.Get() != 3 {
		t.Errorf("counter = %d, want 3", c.Get())
	}
	ex := r.Snapshot()
	if ex.Counters["noc.router.3.flits"] != 3 {
		t.Errorf("export counters = %v", ex.Counters)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric registration should panic")
		}
	}()
	r := NewRegistry()
	r.Scope("a").Counter("x")
	r.Scope("a").Counter("x")
}

func TestObservedMetricsEvaluatedAtExport(t *testing.T) {
	r := NewRegistry()
	native := uint64(0)
	r.Scope("sim").CounterFunc("ticks", func() uint64 { return native })
	level := 0.0
	r.Scope("sim").GaugeFunc("level", func() float64 { return level })
	var m stats.Mean
	r.Scope("sim").ObserveMean("lat", &m)
	h := stats.NewHistogram(4, 10)
	r.Scope("sim").ObserveHistogram("dist", h)

	native = 42
	level = 0.5
	m.Add(10)
	m.Add(20)
	h.Add(35)

	ex := r.Snapshot()
	if ex.Counters["sim.ticks"] != 42 {
		t.Errorf("observed counter = %d, want 42", ex.Counters["sim.ticks"])
	}
	if ex.Gauges["sim.level"] != 0.5 {
		t.Errorf("observed gauge = %g", ex.Gauges["sim.level"])
	}
	if got := ex.Means["sim.lat"]; got.N != 2 || got.Mean != 15 {
		t.Errorf("observed mean = %+v", got)
	}
	if got := ex.Histograms["sim.dist"]; got.N != 1 || got.Max != 35 {
		t.Errorf("observed histogram = %+v", got)
	}
}

func TestSampling(t *testing.T) {
	r := NewRegistry()
	r.SetInterval(100)
	v := 0.0
	r.AddSample("load", func() float64 { return v })
	for cycle := uint64(100); cycle <= 300; cycle += 100 {
		v += 1
		r.Sample(cycle)
	}
	rows := r.SampleRows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[2][0] != 300 || rows[2][1] != 3 {
		t.Errorf("last row = %v, want [300 3]", rows[2])
	}
	var buf bytes.Buffer
	if err := r.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "cycle,load\n100,1\n200,2\n300,3\n"
	if buf.String() != want {
		t.Errorf("series CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONExportDeterministicAndValid(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.SetInterval(10)
		for _, name := range []string{"z", "a", "m"} {
			c := r.Scope("noc", name).Counter("events")
			c.Add(7)
		}
		g := r.Scope("noc").Gauge("occupancy")
		g.Set(0.25)
		m := r.Scope("cmp").Mean("miss_latency")
		m.Add(12.5)
		r.AddSample("x", func() float64 { return 1 })
		r.Sample(10)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical registries should export byte-identical JSON")
	}
	var doc Export
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Counters["noc.a.events"] != 7 || doc.Series.IntervalCycles != 10 {
		t.Errorf("round-tripped export wrong: %+v", doc)
	}
}

func TestCSVExportSorted(t *testing.T) {
	r := NewRegistry()
	r.Scope("b").Counter("x").Inc()
	r.Scope("a").Counter("y").Inc()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "name,kind,value" {
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[1] != "a.y,counter,1" || lines[2] != "b.x,counter,1" {
		t.Errorf("csv rows not sorted: %v", lines[1:])
	}
}

func TestEmptyRegistryExports(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Export
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Counters) != 0 || len(doc.Series.Rows) != 0 {
		t.Error("empty registry should export empty sections")
	}
}
