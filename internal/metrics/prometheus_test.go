package metrics

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ ns, in, want string }{
		{"disco", "noc.router.3.link_flits", "disco_noc_router_3_link_flits"},
		{"disco", "cmp.tile.0.l1_hits", "disco_cmp_tile_0_l1_hits"},
		{"", "a-b c", "a_b_c"},
		{"", "0abc", "_0abc"},
		{"", "", "_"},
	}
	for _, c := range cases {
		if got := PromName(c.ns, c.in); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.ns, c.in, got, c.want)
		}
	}
}

func TestWritePrometheusDeterministicAndLintable(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Scope("noc").Counter("injected").Add(12)
		r.Scope("noc").Gauge("util").Set(0.25)
		m := r.Scope("noc").Mean("latency")
		m.Add(10)
		m.Add(30)
		h := r.Scope("cmp").Histogram("miss", 100, 10)
		h.Add(55)
		var b strings.Builder
		if err := r.WritePrometheus(&b, "disco"); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Error("identical registries rendered different exposition text")
	}

	for _, want := range []string{
		"# TYPE disco_noc_injected counter\ndisco_noc_injected 12\n",
		"# TYPE disco_noc_util gauge\ndisco_noc_util 0.25\n",
		"# TYPE disco_noc_latency summary\n",
		"disco_noc_latency_sum 40\n",
		"disco_noc_latency_count 2\n",
		"disco_cmp_miss{quantile=\"0.5\"}",
		"disco_cmp_miss_count 1\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition missing %q:\n%s", want, a)
		}
	}
	if err := CheckPrometheusText(strings.NewReader(a)); err != nil {
		t.Errorf("own exposition fails lint: %v", err)
	}
}

func TestCheckPrometheusText(t *testing.T) {
	good := "# HELP x helps\n# TYPE x counter\nx 1\n" +
		"# TYPE q summary\nq{quantile=\"0.5\"} 2.5\nq_sum 5\nq_count 2\n\n"
	if err := CheckPrometheusText(strings.NewReader(good)); err != nil {
		t.Errorf("valid text rejected: %v", err)
	}

	bad := []struct{ name, text string }{
		{"undeclared sample", "x 1\n"},
		{"bad value", "# TYPE x counter\nx one\n"},
		{"bad type", "# TYPE x widget\nx 1\n"},
		{"bad name", "# TYPE 9x counter\n9x 1\n"},
		{"malformed comment", "# NOPE x\n"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"1\" 2\n"},
	}
	for _, c := range bad {
		if err := CheckPrometheusText(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.text)
		}
	}
}
