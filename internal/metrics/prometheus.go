package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4) for the obs HTTP endpoint's /metrics handler.
// The rendering inherits the registry's determinism contract: families
// appear in sorted name order, so identical registry state produces
// byte-identical exposition text.
//
// Mapping from the registry's metric kinds:
//
//	counter         -> counter
//	gauge           -> gauge
//	mean            -> summary (_sum/_count)
//	histogram       -> summary with p50/p95/p99 quantile labels
//
// Dotted registry names become underscore-joined Prometheus names under
// a namespace prefix: noc.router.3.link_flits -> disco_noc_router_3_link_flits.

// PromName converts a dotted registry name into a legal Prometheus
// metric name under namespace: dots become underscores and any
// character outside [a-zA-Z0-9_:] is replaced with '_'. A leading
// digit (impossible with a non-empty namespace) is prefixed with '_'.
func PromName(namespace, dotted string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for _, c := range dotted {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" {
		return "_"
	}
	if s[0] >= '0' && s[0] <= '9' {
		return "_" + s
	}
	return s
}

// WritePrometheus snapshots the registry and writes the exposition
// text under the namespace prefix.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	return WritePrometheusExport(w, namespace, r.Snapshot())
}

// WritePrometheusExport writes an already-taken Export as exposition
// text. Splitting snapshot from render lets the cmp probe snapshot at a
// commit boundary and the HTTP handler serve the pre-rendered bytes
// without ever touching live simulation state.
func WritePrometheusExport(w io.Writer, namespace string, ex Export) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(ex.Counters))
	for n := range ex.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(namespace, n)
		_, _ = fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, ex.Counters[n])
	}

	names = names[:0]
	for n := range ex.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(namespace, n)
		_, _ = fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promF(ex.Gauges[n]))
	}

	names = names[:0]
	for n := range ex.Means {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := ex.Means[n]
		pn := PromName(namespace, n)
		_, _ = fmt.Fprintf(bw, "# TYPE %s summary\n", pn)
		_, _ = fmt.Fprintf(bw, "%s_sum %s\n", pn, promF(m.Mean*float64(m.N)))
		_, _ = fmt.Fprintf(bw, "%s_count %d\n", pn, m.N)
	}

	names = names[:0]
	for n := range ex.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := ex.Histograms[n]
		pn := PromName(namespace, n)
		_, _ = fmt.Fprintf(bw, "# TYPE %s summary\n", pn)
		_, _ = fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", pn, promF(h.P50))
		_, _ = fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", pn, promF(h.P95))
		_, _ = fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", pn, promF(h.P99))
		_, _ = fmt.Fprintf(bw, "%s_sum %s\n", pn, promF(h.Mean*float64(h.N)))
		_, _ = fmt.Fprintf(bw, "%s_count %d\n", pn, h.N)
	}

	return bw.Flush()
}

// promF formats a sample value: Prometheus accepts Go's shortest
// round-trip float form, including NaN/Inf spellings.
func promF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CheckPrometheusText lints exposition text: every line must be a
// comment (# HELP / # TYPE with a known type), blank, or a sample whose
// name is legal and whose value parses as a float; sample base names
// must have been declared by a preceding TYPE line. It is the validator
// behind the CI /metrics smoke test — deliberately stricter than a
// scraper, which would forgive an undeclared family.
func CheckPrometheusText(r io.Reader) error {
	typed := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[1] == "HELP" {
				continue
			}
			if len(f) == 4 && f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
					if !validPromName(f[2]) {
						return fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, f[2])
					}
					typed[f[2]] = true
					continue
				}
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, f[3])
			}
			return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
		}
		name, value := line, ""
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			name, value = line[:i], line[i+1:]
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated label set in %q", lineNo, line)
			}
			name = name[:i]
		}
		if !validPromName(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		if !typed[name] && !typed[strings.TrimSuffix(name, "_sum")] &&
			!typed[strings.TrimSuffix(name, "_count")] &&
			!typed[strings.TrimSuffix(name, "_bucket")] {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
	}
	return sc.Err()
}

// validPromName reports whether s is a legal Prometheus metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
