// Package metrics is the simulator's observability registry: a
// hierarchical, deterministic set of named counters, gauges and
// distribution accumulators (reusing internal/stats), plus a periodic
// time-series sampler. Scopes mirror the hardware hierarchy
// (noc.router.3.port.E.link_flits), so exports read like a floorplan.
//
// Determinism is a hard requirement: the registry never reads the wall
// clock, all exports iterate names in sorted order, and the sampler is
// driven by the simulated cycle counter — same-seed runs must produce
// byte-identical exports (the determinism regression in internal/noc
// asserts this).
//
// Hot-path philosophy: the simulator keeps its native uint64 counters;
// the registry mostly *observes* them through closures (CounterFunc,
// GaugeFunc, ObserveMean, ObserveHistogram) that are evaluated only at
// sampling points and at export. Owned Counter/Gauge metrics exist for
// code that has no native counter to observe.
package metrics

import (
	"sort"

	"github.com/disco-sim/disco/internal/stats"
)

// Counter is an owned monotonically increasing uint64 metric.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v += delta }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v }

// Gauge is an owned instantaneous float64 metric.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Get returns the current value.
func (g *Gauge) Get() float64 { return g.v }

// entry is one registered metric: exactly one of the fields is set.
type entry struct {
	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	mean        *stats.Mean
	hist        *stats.Histogram
}

// Registry is the root of a metric hierarchy plus the time-series
// sampler. Construct with NewRegistry.
type Registry struct {
	root *Scope

	interval uint64 // informational: cycles between samples
	samples  []probe
	rows     [][]float64
}

// probe is one time-series column: a name and its sampling closure.
type probe struct {
	name string
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.root = &Scope{reg: r, children: map[string]*Scope{}, entries: map[string]*entry{}}
	return r
}

// Root returns the unnamed root scope.
func (r *Registry) Root() *Scope { return r.root }

// Scope descends from the root through parts (creating scopes as
// needed): reg.Scope("noc", "router", "3").
func (r *Registry) Scope(parts ...string) *Scope { return r.root.Scope(parts...) }

// SetInterval records the sampling interval (cycles) for the export
// header. The registry does not schedule samples itself — the simulator
// calls Sample on its own cycle grid.
func (r *Registry) SetInterval(cycles uint64) { r.interval = cycles }

// Interval returns the recorded sampling interval.
func (r *Registry) Interval() uint64 { return r.interval }

// AddSample registers a time-series probe. Columns appear in the export
// in registration order; register before the first Sample call.
func (r *Registry) AddSample(name string, fn func() float64) {
	r.samples = append(r.samples, probe{name: name, fn: fn})
}

// Sample evaluates every probe and appends one time-series row
// [cycle, v1, v2, ...].
func (r *Registry) Sample(cycle uint64) {
	row := make([]float64, 0, len(r.samples)+1)
	row = append(row, float64(cycle))
	for _, p := range r.samples {
		row = append(row, p.fn())
	}
	r.rows = append(r.rows, row)
}

// SampleColumns returns the time-series column names (without the
// leading cycle column).
func (r *Registry) SampleColumns() []string {
	out := make([]string, len(r.samples))
	for i, p := range r.samples {
		out[i] = p.name
	}
	return out
}

// SampleRows returns the recorded time-series rows.
func (r *Registry) SampleRows() [][]float64 { return r.rows }

// Scope is one level of the metric hierarchy.
type Scope struct {
	reg      *Registry
	prefix   string // "" for root, else "a.b.c"
	children map[string]*Scope
	entries  map[string]*entry
}

// Scope descends through parts, creating scopes as needed.
func (s *Scope) Scope(parts ...string) *Scope {
	cur := s
	for _, p := range parts {
		next, ok := cur.children[p]
		if !ok {
			next = &Scope{reg: cur.reg, prefix: join(cur.prefix, p),
				children: map[string]*Scope{}, entries: map[string]*entry{}}
			cur.children[p] = next
		}
		cur = next
	}
	return cur
}

// Name returns the scope's full dotted prefix ("" for the root).
func (s *Scope) Name() string { return s.prefix }

// join concatenates dotted name parts.
func join(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

// register installs e under name, panicking on duplicates (a duplicate
// registration is a wiring bug, not a runtime condition).
func (s *Scope) register(name string, e *entry) {
	if _, dup := s.entries[name]; dup {
		panic("metrics: duplicate metric " + join(s.prefix, name))
	}
	s.entries[name] = e
}

// Counter registers and returns an owned counter.
func (s *Scope) Counter(name string) *Counter {
	c := &Counter{}
	s.register(name, &entry{counter: c})
	return c
}

// CounterFunc registers an observed counter: fn is evaluated at export.
func (s *Scope) CounterFunc(name string, fn func() uint64) {
	s.register(name, &entry{counterFunc: fn})
}

// Gauge registers and returns an owned gauge.
func (s *Scope) Gauge(name string) *Gauge {
	g := &Gauge{}
	s.register(name, &entry{gauge: g})
	return g
}

// GaugeFunc registers an observed gauge: fn is evaluated at export.
func (s *Scope) GaugeFunc(name string, fn func() float64) {
	s.register(name, &entry{gaugeFunc: fn})
}

// ObserveMean registers an existing stats.Mean accumulator; the
// simulator keeps feeding it, the registry exports its summary.
func (s *Scope) ObserveMean(name string, m *stats.Mean) {
	s.register(name, &entry{mean: m})
}

// ObserveHistogram registers an existing stats.Histogram.
func (s *Scope) ObserveHistogram(name string, h *stats.Histogram) {
	s.register(name, &entry{hist: h})
}

// Histogram builds, registers and returns a new histogram.
func (s *Scope) Histogram(name string, buckets int, width float64) *stats.Histogram {
	h := stats.NewHistogram(buckets, width)
	s.register(name, &entry{hist: h})
	return h
}

// Mean builds, registers and returns a new mean accumulator.
func (s *Scope) Mean(name string) *stats.Mean {
	m := &stats.Mean{}
	s.register(name, &entry{mean: m})
	return m
}

// walk visits every entry in the subtree deterministically: a scope's
// own entries in sorted name order, then its child scopes in sorted
// order. Exports that need global name ordering sort the collected
// names themselves.
func (s *Scope) walk(visit func(name string, e *entry)) {
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		visit(join(s.prefix, n), s.entries[n])
	}
	kids := make([]string, 0, len(s.children))
	for n := range s.children {
		kids = append(kids, n)
	}
	sort.Strings(kids)
	for _, n := range kids {
		s.children[n].walk(visit)
	}
}
