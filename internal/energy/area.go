package energy

// Area model (Section 4.3): the paper synthesizes the 3-stage router and
// the DISCO de/compressor+arbitrator in FreePDK45 and reports the engine
// at +17.2 % of router area, which is <1 % of a 4 MB NUCA cache; CNC
// (bank compressors + NI compressors) costs about twice DISCO's overhead.

// Area constants in mm² at 45 nm.
const (
	// RouterAreaMM2 is a 5-port, 2-VC, 8-flit-deep 64-bit router
	// (Orion 2.0-era estimate).
	RouterAreaMM2 = 0.10
	// EngineAreaFraction is the DISCO engine+arbitrator as a fraction of
	// router area (paper: 17.2 %).
	EngineAreaFraction = 0.172
	// CacheMM2PerMB is NUCA SRAM density with peripheral circuitry
	// (CACTI 6.0, 45 nm ≈ 7 mm²/MB).
	CacheMM2PerMB = 7.0
)

// EngineAreaMM2 is one de/compression engine + arbitrator.
const EngineAreaMM2 = RouterAreaMM2 * EngineAreaFraction

// AreaReport summarizes a design point's silicon budget.
type AreaReport struct {
	Mode        string
	Tiles       int
	CacheMB     float64
	RouterTotal float64 // mm², all routers, engines excluded
	Engines     int
	EngineTotal float64 // mm², all de/compression engines
	CacheTotal  float64 // mm²
	// OverheadVsRouterPct is engine area over router area (per tile).
	OverheadVsRouterPct float64
	// OverheadVsCachePct is total engine area over total cache area.
	OverheadVsCachePct float64
}

// enginesFor returns the engine count of each comparison mode.
func enginesFor(mode string, tiles int) int {
	switch mode {
	case "baseline", "ideal":
		return 0
	case "cc":
		return tiles // one per bank
	case "cnc":
		return 2 * tiles // one per bank + one per NI
	case "disco":
		return tiles // one per router
	}
	return 0
}

// Area computes the report for a mode ("baseline", "cc", "cnc", "disco",
// "ideal") with the given tile count and total cache size.
func Area(mode string, tiles int, cacheMB float64) AreaReport {
	engines := enginesFor(mode, tiles)
	r := AreaReport{
		Mode:        mode,
		Tiles:       tiles,
		CacheMB:     cacheMB,
		RouterTotal: RouterAreaMM2 * float64(tiles),
		Engines:     engines,
		EngineTotal: EngineAreaMM2 * float64(engines),
		CacheTotal:  CacheMM2PerMB * cacheMB,
	}
	if engines > 0 {
		r.OverheadVsRouterPct = EngineAreaFraction * float64(engines) / float64(tiles) * 100
		r.OverheadVsCachePct = r.EngineTotal / r.CacheTotal * 100
	}
	return r
}
