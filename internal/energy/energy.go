// Package energy is the Orion-2.0 / CACTI / Design-Compiler stand-in of
// the evaluation (Section 4.2 "Energy Study" and Section 4.3 "Overhead
// Estimation"): constant per-event energies and per-structure leakage
// powers at 45 nm-era magnitudes, plus an area table for the router, the
// DISCO engine (+17.2 % of a router, per the paper's synthesis) and the
// NUCA cache.
//
// Figure 7 reports energy *normalized to the uncompressed baseline*, so
// only the relative magnitudes of these constants matter; they are chosen
// from the Orion 2.0 / CACTI 6.0 literature range and documented per
// field.
package energy

import "fmt"

// Params holds per-event dynamic energies (pJ) and per-structure leakage
// (pJ per cycle at 2 GHz; 1 mW ≙ 0.5 pJ/cycle).
type Params struct {
	// RouterFlit is buffer write+read, crossbar and arbitration energy
	// for one 64-bit flit through one router (Orion 2.0, 45 nm ≈ 6 pJ).
	RouterFlit float64
	// LinkFlit is one flit over one 1 mm inter-tile link (≈ 2.5 pJ).
	LinkFlit float64
	// L1Access is one 32 KB L1 access (≈ 20 pJ).
	L1Access float64
	// BankAccess is one 256 KB NUCA bank data access (CACTI ≈ 300 pJ).
	BankAccess float64
	// BankTagProbe is a tag-only probe (directory lookups, misses).
	BankTagProbe float64
	// DramAccess is one 64 B off-chip access including I/O (≈ 15 nJ).
	DramAccess float64

	// RouterLeak, BankLeak, L1Leak are per-structure leakage in pJ/cycle.
	RouterLeak float64
	BankLeak   float64
	L1Leak     float64
	// EngineLeak is one de/compression engine's leakage (pJ/cycle); the
	// paper's synthesis puts the DISCO engine+arbitrator at 17.2 % of a
	// router.
	EngineLeak float64
}

// DefaultParams returns the 45 nm parameter set described above.
func DefaultParams() Params {
	return Params{
		RouterFlit:   6.0,
		LinkFlit:     2.5,
		L1Access:     20.0,
		BankAccess:   300.0,
		BankTagProbe: 35.0,
		DramAccess:   15000.0,
		RouterLeak:   2.5,
		BankLeak:     10.0,
		L1Leak:       1.0,
		EngineLeak:   2.5 * 0.172,
	}
}

// CompressorOpEnergy returns the dynamic energy (pJ) of one block
// compression or decompression for the named algorithm, scaled by
// pipeline complexity (delta adders vs. Huffman decode trees).
func CompressorOpEnergy(alg string) float64 {
	switch alg {
	case "delta":
		return 3.0
	case "bdi":
		return 3.5
	case "fvc":
		return 2.0
	case "sfpc":
		return 4.5
	case "fpc":
		return 6.0
	case "cpack":
		return 8.0
	case "sc2":
		return 12.0
	case "none", "":
		return 0
	}
	return 6.0 // unknown algorithms get a middle-of-the-road estimate
}

// Counts are the event totals a simulation produces.
type Counts struct {
	Cycles uint64

	FlitHops      uint64 // link traversals
	FlitsSwitched uint64 // router crossbar traversals

	L1Accesses   uint64
	BankAccesses uint64 // data-array accesses
	// BankBytes is the total data-array bytes moved; compressed lines
	// touch fewer segments, so their dynamic energy scales down. 0 falls
	// back to BankAccesses x 64 B.
	BankBytes    uint64
	BankProbes   uint64 // tag-only probes
	DramAccesses uint64

	CompOps   uint64 // block compressions (anywhere)
	DecompOps uint64 // block decompressions (anywhere)

	// Structure population for leakage.
	Routers int
	Banks   int
	L1s     int
	// Engines is the number of de/compression engines in the design:
	// 0 for the baseline, #banks for CC, #banks+#NIs for CNC, #routers
	// for DISCO.
	Engines int
}

// Breakdown is the energy split of one run, in pJ.
type Breakdown struct {
	RouterDyn float64
	LinkDyn   float64
	CacheDyn  float64
	DramDyn   float64
	CompDyn   float64
	Leakage   float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.RouterDyn + b.LinkDyn + b.CacheDyn + b.DramDyn + b.CompDyn + b.Leakage
}

// OnChip sums the on-chip memory-subsystem components (NoC + caches +
// compressors + leakage) — the quantity Fig. 7 of the paper reports;
// off-chip DRAM energy is excluded.
func (b Breakdown) OnChip() float64 {
	return b.RouterDyn + b.LinkDyn + b.CacheDyn + b.CompDyn + b.Leakage
}

// String renders the breakdown compactly in nJ.
func (b Breakdown) String() string {
	return fmt.Sprintf("router=%.1fnJ link=%.1fnJ cache=%.1fnJ dram=%.1fnJ comp=%.1fnJ leak=%.1fnJ total=%.1fnJ",
		b.RouterDyn/1e3, b.LinkDyn/1e3, b.CacheDyn/1e3, b.DramDyn/1e3, b.CompDyn/1e3, b.Leakage/1e3, b.Total()/1e3)
}

// Model evaluates Counts into a Breakdown.
type Model struct {
	P Params
	// Algorithm names the compressor for per-op energy.
	Algorithm string
}

// NewModel builds a model with default parameters.
func NewModel(alg string) *Model { return &Model{P: DefaultParams(), Algorithm: alg} }

// Energy computes the breakdown for the given event counts.
func (m *Model) Energy(c Counts) Breakdown {
	op := CompressorOpEnergy(m.Algorithm)
	leakPerCycle := float64(c.Routers)*m.P.RouterLeak +
		float64(c.Banks)*m.P.BankLeak +
		float64(c.L1s)*m.P.L1Leak +
		float64(c.Engines)*m.P.EngineLeak
	bankDyn := float64(c.BankAccesses) * m.P.BankAccess
	if c.BankBytes > 0 {
		bankDyn = float64(c.BankBytes) / 64 * m.P.BankAccess
	}
	return Breakdown{
		RouterDyn: float64(c.FlitsSwitched) * m.P.RouterFlit,
		LinkDyn:   float64(c.FlitHops) * m.P.LinkFlit,
		CacheDyn: float64(c.L1Accesses)*m.P.L1Access +
			bankDyn +
			float64(c.BankProbes)*m.P.BankTagProbe,
		DramDyn: float64(c.DramAccesses) * m.P.DramAccess,
		CompDyn: float64(c.CompOps+c.DecompOps) * op,
		Leakage: float64(c.Cycles) * leakPerCycle,
	}
}
