package energy

import (
	"math"
	"testing"
)

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{RouterDyn: 1, LinkDyn: 2, CacheDyn: 3, DramDyn: 4, CompDyn: 5, Leakage: 6}
	if b.Total() != 21 {
		t.Errorf("Total = %g, want 21", b.Total())
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestModelEnergyComposition(t *testing.T) {
	m := NewModel("delta")
	c := Counts{
		Cycles: 1000, FlitHops: 10, FlitsSwitched: 20,
		L1Accesses: 5, BankAccesses: 2, BankProbes: 3, DramAccesses: 1,
		CompOps: 4, DecompOps: 6,
		Routers: 16, Banks: 16, L1s: 16, Engines: 16,
	}
	b := m.Energy(c)
	p := DefaultParams()
	if b.RouterDyn != 20*p.RouterFlit {
		t.Error("router dynamic wrong")
	}
	if b.LinkDyn != 10*p.LinkFlit {
		t.Error("link dynamic wrong")
	}
	wantCache := 5*p.L1Access + 2*p.BankAccess + 3*p.BankTagProbe
	if b.CacheDyn != wantCache {
		t.Error("cache dynamic wrong")
	}
	if b.DramDyn != p.DramAccess {
		t.Error("dram wrong")
	}
	if b.CompDyn != 10*CompressorOpEnergy("delta") {
		t.Error("compressor dynamic wrong")
	}
	wantLeak := 1000 * (16*p.RouterLeak + 16*p.BankLeak + 16*p.L1Leak + 16*p.EngineLeak)
	if math.Abs(b.Leakage-wantLeak) > 1e-9 {
		t.Error("leakage wrong")
	}
}

func TestCompressorOpEnergyOrdering(t *testing.T) {
	// More complex pipelines must cost more.
	if !(CompressorOpEnergy("delta") < CompressorOpEnergy("fpc")) {
		t.Error("delta should be cheaper than fpc")
	}
	if !(CompressorOpEnergy("fpc") < CompressorOpEnergy("sc2")) {
		t.Error("fpc should be cheaper than sc2")
	}
	if CompressorOpEnergy("none") != 0 || CompressorOpEnergy("") != 0 {
		t.Error("none must be free")
	}
	if CompressorOpEnergy("mystery") <= 0 {
		t.Error("unknown algorithms need a positive estimate")
	}
}

func TestAreaDiscoMatchesPaper(t *testing.T) {
	r := Area("disco", 16, 4)
	// +17.2% of the router per tile.
	if math.Abs(r.OverheadVsRouterPct-17.2) > 0.05 {
		t.Errorf("router overhead = %.2f%%, want 17.2%%", r.OverheadVsRouterPct)
	}
	// <1% of the 4MB NUCA.
	if r.OverheadVsCachePct >= 1.0 || r.OverheadVsCachePct <= 0 {
		t.Errorf("cache overhead = %.3f%%, want (0,1)%%", r.OverheadVsCachePct)
	}
}

func TestAreaCncDoublesDisco(t *testing.T) {
	d := Area("disco", 16, 4)
	c := Area("cnc", 16, 4)
	if math.Abs(c.EngineTotal-2*d.EngineTotal) > 1e-9 {
		t.Errorf("CNC engine area %.4f should be 2x DISCO's %.4f", c.EngineTotal, d.EngineTotal)
	}
	cc := Area("cc", 16, 4)
	if cc.EngineTotal != d.EngineTotal {
		t.Error("CC and DISCO have equal engine counts")
	}
}

func TestAreaBaselineHasNoEngines(t *testing.T) {
	for _, mode := range []string{"baseline", "ideal"} {
		r := Area(mode, 16, 4)
		if r.Engines != 0 || r.EngineTotal != 0 || r.OverheadVsCachePct != 0 {
			t.Errorf("%s should have zero engine area", mode)
		}
	}
}

func TestLeakageScalesWithCycles(t *testing.T) {
	m := NewModel("delta")
	base := Counts{Cycles: 100, Routers: 4}
	double := base
	double.Cycles = 200
	if m.Energy(double).Leakage != 2*m.Energy(base).Leakage {
		t.Error("leakage must scale linearly with runtime")
	}
}
