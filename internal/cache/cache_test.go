package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCohStateHelpers(t *testing.T) {
	if Invalid.CanRead() || !Shared.CanRead() || !Modified.CanRead() {
		t.Error("CanRead wrong")
	}
	if Shared.CanWrite() || Owned.CanWrite() || !Modified.CanWrite() || !Exclusive.CanWrite() {
		t.Error("CanWrite wrong")
	}
	if Shared.Dirty() || Exclusive.Dirty() || !Modified.Dirty() || !Owned.Dirty() {
		t.Error("Dirty wrong")
	}
	for _, s := range []CohState{Invalid, Shared, Exclusive, Owned, Modified} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
	if CohState(9).String() == "" {
		t.Error("unknown state should still print")
	}
}

// mustL1 builds an L1, failing the test on a geometry error.
func mustL1(t *testing.T, sets, ways int) *L1 {
	t.Helper()
	c, err := NewL1(sets, ways)
	if err != nil {
		t.Fatalf("NewL1(%d, %d): %v", sets, ways, err)
	}
	return c
}

func TestL1BasicHitMiss(t *testing.T) {
	c := mustL1(t, 4, 2)
	if c.Access(0x100, false) {
		t.Error("cold access should miss")
	}
	c.Insert(0x100, Shared)
	if !c.Access(0x100, false) {
		t.Error("read after insert should hit")
	}
	if c.Access(0x100, true) {
		t.Error("write to Shared should be an upgrade miss")
	}
	c.SetState(0x100, Modified)
	if !c.Access(0x100, true) {
		t.Error("write to Modified should hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestL1LRUEviction(t *testing.T) {
	c := mustL1(t, 1, 2) // one set, 2 ways
	c.Insert(1, Shared)
	c.Insert(2, Shared)
	c.Access(1, false) // make 2 the LRU
	v, evicted := c.Insert(3, Shared)
	if !evicted || v.Addr != 2 {
		t.Errorf("expected to evict addr 2, got %+v evicted=%v", v, evicted)
	}
	if c.State(2) != Invalid || c.State(1) != Shared || c.State(3) != Shared {
		t.Error("post-eviction states wrong")
	}
}

func TestL1InsertExistingUpdatesState(t *testing.T) {
	c := mustL1(t, 2, 2)
	c.Insert(4, Shared)
	_, ev := c.Insert(4, Modified)
	if ev {
		t.Error("re-insert should not evict")
	}
	if c.State(4) != Modified {
		t.Error("re-insert should update state")
	}
	if c.Occupancy() != 1 {
		t.Error("duplicate lines created")
	}
}

func TestL1InvalidateAndSetStatePanic(t *testing.T) {
	c := mustL1(t, 2, 2)
	c.Insert(7, Owned)
	if st := c.Invalidate(7); st != Owned {
		t.Errorf("Invalidate returned %v, want O", st)
	}
	if st := c.Invalidate(7); st != Invalid {
		t.Error("double invalidate should return Invalid")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetState on absent line should panic")
		}
	}()
	c.SetState(7, Shared)
}

func TestL1BadGeometryErrors(t *testing.T) {
	for _, g := range [][2]int{{3, 2}, {0, 2}, {-4, 2}, {4, 0}, {4, -1}} {
		if _, err := NewL1(g[0], g[1]); err == nil {
			t.Errorf("NewL1(%d, %d) should report a geometry error", g[0], g[1])
		}
	}
}

func TestL1SetConflictsOnly(t *testing.T) {
	c := mustL1(t, 4, 1)
	c.Insert(0, Shared)
	c.Insert(1, Shared) // different set, no conflict
	if c.Occupancy() != 2 {
		t.Error("different sets should not conflict")
	}
	_, ev := c.Insert(4, Shared) // set 0 again (4 % 4 == 0)
	if !ev {
		t.Error("same-set insert should evict with 1 way")
	}
}

func bankCfg() BankConfig {
	return BankConfig{Sets: 8, Ways: 8, TagFactor: 2, SegmentBytes: 8, Interleave: 16}
}

func TestBankConfigValidate(t *testing.T) {
	good := bankCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []BankConfig{
		{Sets: 3, Ways: 8, TagFactor: 1, SegmentBytes: 8, Interleave: 1},
		{Sets: 8, Ways: 0, TagFactor: 1, SegmentBytes: 8, Interleave: 1},
		{Sets: 8, Ways: 8, TagFactor: 1, SegmentBytes: 7, Interleave: 1},
		{Sets: 8, Ways: 8, TagFactor: 1, SegmentBytes: 8, Interleave: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBankInsertLookup(t *testing.T) {
	b := NewBank(bankCfg())
	l, v := b.Insert(16, 64, false)
	if len(v) != 0 || l == nil {
		t.Fatal("empty bank insert should not evict")
	}
	if l.Segs != 8 || l.SizeBytes != 64 {
		t.Errorf("full line segs = %d", l.Segs)
	}
	if got := b.Lookup(16); got == nil {
		t.Error("lookup after insert missed")
	}
	if b.Lookup(32) != nil {
		t.Error("bogus lookup hit")
	}
	if b.Hits != 1 || b.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", b.Hits, b.Misses)
	}
}

func TestBankCompressedCapacityGain(t *testing.T) {
	// 17-byte lines (3 segments): a set fits floor(64/3)=21 lines but only
	// 16 tags, so 16 lines per set; an uncompressed bank holds 8.
	b := NewBank(bankCfg())
	inserted := 0
	for i := 0; ; i++ {
		addr := Addr(16 * (i*8 + 0)) // same set: addr/16 % 8 == 0 => addr multiple of 128... use set 0
		addr = Addr(uint64(i) * 16 * 8)
		_, v := b.Insert(addr, 17, false)
		if len(v) > 0 {
			break
		}
		inserted++
		if inserted > 64 {
			t.Fatal("no eviction after 64 inserts — capacity accounting broken")
		}
	}
	if inserted != 16 {
		t.Errorf("compressed set held %d lines before eviction, want 16 (tag limit)", inserted)
	}
}

func TestBankUncompressedCapacity(t *testing.T) {
	cfg := bankCfg()
	cfg.TagFactor = 1
	b := NewBank(cfg)
	inserted := 0
	for i := 0; ; i++ {
		_, v := b.Insert(Addr(uint64(i)*16*8), 64, false)
		if len(v) > 0 {
			break
		}
		inserted++
		if inserted > 32 {
			t.Fatal("no eviction")
		}
	}
	if inserted != 8 {
		t.Errorf("uncompressed set held %d lines, want 8", inserted)
	}
}

func TestBankSegmentPressureEviction(t *testing.T) {
	// Mix: 8 full lines fill all 64 segments with 8 tags used of 16; the
	// 9th insert (even 1 segment) must evict by segment pressure.
	b := NewBank(bankCfg())
	for i := 0; i < 8; i++ {
		if _, v := b.Insert(Addr(uint64(i)*16*8), 64, false); len(v) != 0 {
			t.Fatal("premature eviction")
		}
	}
	_, v := b.Insert(Addr(8*16*8), 8, false)
	if len(v) != 1 {
		t.Fatalf("segment-pressure insert evicted %d lines, want 1", len(v))
	}
}

func TestBankLRUVictimOrder(t *testing.T) {
	cfg := bankCfg()
	cfg.TagFactor = 1
	b := NewBank(cfg)
	for i := 0; i < 8; i++ {
		b.Insert(Addr(uint64(i)*16*8), 64, false)
	}
	b.Lookup(0) // refresh addr 0
	_, v := b.Insert(Addr(8*16*8), 64, false)
	if len(v) != 1 || v[0].Line.Addr != Addr(1*16*8) {
		t.Errorf("victim = %+v, want addr %d", v, 16*8)
	}
}

func TestBankPinnedLinesSkipped(t *testing.T) {
	cfg := bankCfg()
	cfg.TagFactor = 1
	b := NewBank(cfg)
	for i := 0; i < 8; i++ {
		l, _ := b.Insert(Addr(uint64(i)*16*8), 64, false)
		if i == 0 {
			l.Pinned = true
		}
	}
	_, v := b.Insert(Addr(8*16*8), 64, false)
	if len(v) != 1 || v[0].Line.Addr == 0 {
		t.Error("pinned LRU line must be skipped")
	}
}

func TestBankResize(t *testing.T) {
	b := NewBank(bankCfg())
	b.Insert(0, 17, false)
	if v := b.Resize(0, 9); len(v) != 0 {
		t.Error("shrink should not evict")
	}
	if l := b.Peek(0); l.Segs != 2 || l.SizeBytes != 9 {
		t.Errorf("after shrink segs=%d size=%d", l.Segs, l.SizeBytes)
	}
	// Fill all remaining segments (7 full lines + one 6-segment line),
	// then grow line 0: must evict others.
	for i := 1; i < 8; i++ {
		b.Insert(Addr(uint64(i)*16*8), 64, false)
	}
	b.Insert(Addr(8*16*8), 48, false)
	v := b.Resize(0, 64)
	if len(v) == 0 {
		t.Error("grow under pressure should evict")
	}
	if l := b.Peek(0); l == nil || l.Segs != 8 {
		t.Error("grown line must survive with 8 segments")
	}
}

func TestBankInvalidate(t *testing.T) {
	b := NewBank(bankCfg())
	l, _ := b.Insert(16, 64, true)
	l.Owner = 3
	cp, ok := b.Invalidate(16)
	if !ok || cp.Owner != 3 || !cp.Dirty {
		t.Error("Invalidate should return the full line copy")
	}
	if _, ok := b.Invalidate(16); ok {
		t.Error("second invalidate should miss")
	}
}

func TestBankDirectoryHelpers(t *testing.T) {
	var l Line
	l.Owner = -1
	if l.HasSharers() {
		t.Error("empty line has no sharers")
	}
	l.AddSharer(3)
	l.AddSharer(10)
	if !l.IsSharer(3) || !l.IsSharer(10) || l.IsSharer(4) {
		t.Error("sharer bitmap wrong")
	}
	lst := l.SharerList()
	if len(lst) != 2 || lst[0] != 3 || lst[1] != 10 {
		t.Errorf("SharerList = %v", lst)
	}
	l.RemoveSharer(3)
	if l.IsSharer(3) || !l.HasSharers() {
		t.Error("RemoveSharer wrong")
	}
	l.RemoveSharer(10)
	l.Owner = 5
	if !l.HasSharers() {
		t.Error("owner counts as sharer presence")
	}
}

func TestBankInsertDuplicatePanics(t *testing.T) {
	b := NewBank(bankCfg())
	b.Insert(16, 64, false)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert should panic")
		}
	}()
	b.Insert(16, 64, false)
}

func TestBankSegsForBounds(t *testing.T) {
	b := NewBank(bankCfg())
	defer func() {
		if recover() == nil {
			t.Error("size 0 should panic")
		}
	}()
	b.Insert(16, 0, false)
}

// Property: a bank never exceeds its segment or tag budget, and lookups
// after insert always hit until evicted.
func TestBankInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBank(bankCfg())
		live := map[Addr]bool{}
		for i := 0; i < 300; i++ {
			addr := Addr(uint64(rng.Intn(64)) * 16)
			switch rng.Intn(3) {
			case 0:
				if b.Peek(addr) == nil {
					size := 1 + rng.Intn(64)
					_, vs := b.Insert(addr, size, rng.Intn(2) == 0)
					for _, v := range vs {
						delete(live, v.Line.Addr)
					}
					live[addr] = true
				}
			case 1:
				if b.Peek(addr) != nil {
					vs := b.Resize(addr, 1+rng.Intn(64))
					for _, v := range vs {
						delete(live, v.Line.Addr)
					}
				}
			default:
				if _, ok := b.Invalidate(addr); ok {
					delete(live, addr)
				}
			}
			// Invariants per set.
			for si := 0; si < 8; si++ {
				segs, lines := 0, 0
				for a := range live {
					if l := b.Peek(a); l != nil && b.setIndex(a) == si {
						segs += l.Segs
						lines++
					}
				}
				if segs > 64 || lines > 16 {
					return false
				}
			}
		}
		// All tracked-live lines must be present.
		for a := range live {
			if b.Peek(a) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForEachIteration(t *testing.T) {
	c := mustL1(t, 4, 2)
	c.Insert(1, Shared)
	c.Insert(9, Modified)
	seen := map[Addr]CohState{}
	c.ForEach(func(a Addr, st CohState) { seen[a] = st })
	if len(seen) != 2 || seen[1] != Shared || seen[9] != Modified {
		t.Errorf("ForEach saw %v", seen)
	}
	b := NewBank(bankCfg())
	b.Insert(16, 17, true)
	n := 0
	b.ForEach(func(l *Line) { n++ })
	if n != 1 {
		t.Errorf("bank ForEach saw %d lines", n)
	}
}
