package cache

import "fmt"

// l1Line is one L1 tag entry.
type l1Line struct {
	addr  Addr
	state CohState
	lru   uint64
}

// L1 is a private, uncompressed, set-associative L1 data cache with true
// LRU replacement (Table 2: 32 KB, 4-way, 64 B lines).
type L1 struct {
	sets   int
	ways   int
	lines  [][]l1Line
	clock  uint64
	Hits   uint64
	Misses uint64
}

// NewL1 builds an L1 with the given geometry. sets must be a power of two;
// bad geometry is a configuration error reported before the run starts,
// not a panic.
func NewL1(sets, ways int) (*L1, error) {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: bad L1 geometry %dx%d (sets must be a positive power of two, ways positive)", sets, ways)
	}
	c := &L1{sets: sets, ways: ways, lines: make([][]l1Line, sets)}
	for i := range c.lines {
		c.lines[i] = make([]l1Line, ways)
	}
	return c, nil
}

// set returns the set index for addr.
func (c *L1) set(addr Addr) int { return int(uint64(addr) & uint64(c.sets-1)) }

// find returns the way holding addr, or -1.
func (c *L1) find(addr Addr) int {
	s := c.lines[c.set(addr)]
	for w := range s {
		if s[w].state != Invalid && s[w].addr == addr {
			return w
		}
	}
	return -1
}

// State returns the line's coherence state (Invalid if absent).
func (c *L1) State(addr Addr) CohState {
	if w := c.find(addr); w >= 0 {
		return c.lines[c.set(addr)][w].state
	}
	return Invalid
}

// Access performs a lookup, updating LRU and hit/miss counters. It reports
// whether the access hits with sufficient permission for the operation.
func (c *L1) Access(addr Addr, write bool) bool {
	c.clock++
	w := c.find(addr)
	if w < 0 {
		c.Misses++
		return false
	}
	line := &c.lines[c.set(addr)][w]
	if write && !line.state.CanWrite() {
		c.Misses++ // upgrade miss
		return false
	}
	line.lru = c.clock
	c.Hits++
	return true
}

// Touch refreshes LRU without counting a hit or miss.
func (c *L1) Touch(addr Addr) {
	c.clock++
	if w := c.find(addr); w >= 0 {
		c.lines[c.set(addr)][w].lru = c.clock
	}
}

// SetState transitions the line's state; it panics if the line is absent
// (protocol bug). Transition to Invalid removes the line.
func (c *L1) SetState(addr Addr, st CohState) {
	w := c.find(addr)
	if w < 0 {
		panic(fmt.Sprintf("cache: SetState(%x) on absent line", uint64(addr)))
	}
	c.lines[c.set(addr)][w].state = st
}

// Invalidate drops the line if present and returns its previous state.
func (c *L1) Invalidate(addr Addr) CohState {
	w := c.find(addr)
	if w < 0 {
		return Invalid
	}
	line := &c.lines[c.set(addr)][w]
	st := line.state
	line.state = Invalid
	return st
}

// Victim describes an evicted line.
type Victim struct {
	Addr  Addr
	State CohState
}

// Insert fills addr in state st, returning the evicted victim if any. The
// caller must already have established coherence permission.
func (c *L1) Insert(addr Addr, st CohState) (Victim, bool) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	c.clock++
	s := c.lines[c.set(addr)]
	if w := c.find(addr); w >= 0 {
		s[w].state = st
		s[w].lru = c.clock
		return Victim{}, false
	}
	// Free way?
	for w := range s {
		if s[w].state == Invalid {
			s[w] = l1Line{addr: addr, state: st, lru: c.clock}
			return Victim{}, false
		}
	}
	// Evict LRU.
	vw := 0
	for w := 1; w < c.ways; w++ {
		if s[w].lru < s[vw].lru {
			vw = w
		}
	}
	v := Victim{Addr: s[vw].addr, State: s[vw].state}
	s[vw] = l1Line{addr: addr, state: st, lru: c.clock}
	return v, true
}

// Occupancy returns the number of valid lines (for tests/diagnostics).
func (c *L1) Occupancy() int {
	n := 0
	for _, s := range c.lines {
		for _, l := range s {
			if l.state != Invalid {
				n++
			}
		}
	}
	return n
}

// ForEach calls f for every valid line (diagnostics/invariant checking).
func (c *L1) ForEach(f func(Addr, CohState)) {
	for _, s := range c.lines {
		for i := range s {
			if s[i].state != Invalid {
				f(s[i].addr, s[i].state)
			}
		}
	}
}
