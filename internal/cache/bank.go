package cache

import "fmt"

// Line is one NUCA bank tag entry, including the directory state the home
// bank keeps for its address slice (inclusive LLC).
type Line struct {
	Addr  Addr
	Valid bool
	Dirty bool
	// Segs is the number of data-array segments the line occupies
	// (compressed size rounded up to segment granularity).
	Segs int
	// SizeBytes is the stored (possibly compressed) size.
	SizeBytes int
	// Pinned lines are mid-transaction and ineligible for eviction.
	Pinned bool
	// Prefetched marks lines installed by the prefetcher and not yet
	// demanded (prefetch-accuracy accounting).
	Prefetched bool

	// Directory state: Owner is the tile holding the line in M/O (-1 when
	// none); Sharers is a bitmap of tiles holding it in S/E.
	Owner   int
	Sharers uint64

	lru uint64
}

// HasSharers reports whether any L1 holds the line.
func (l *Line) HasSharers() bool { return l.Owner >= 0 || l.Sharers != 0 }

// SharerList expands the bitmap into tile ids, excluding Owner.
func (l *Line) SharerList() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if l.Sharers&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// AddSharer sets tile's bit.
func (l *Line) AddSharer(tile int) { l.Sharers |= 1 << uint(tile) }

// RemoveSharer clears tile's bit.
func (l *Line) RemoveSharer(tile int) { l.Sharers &^= 1 << uint(tile) }

// IsSharer reports tile's bit.
func (l *Line) IsSharer(tile int) bool { return l.Sharers&(1<<uint(tile)) != 0 }

// BankConfig describes one NUCA bank.
type BankConfig struct {
	// Sets and Ways give the logical geometry (data capacity =
	// Sets*Ways*64 B).
	Sets int
	Ways int
	// TagFactor multiplies the tag count per set (2 in compressed
	// configurations, so a set can hold up to 2*Ways compressed lines;
	// 1 for uncompressed baselines).
	TagFactor int
	// SegmentBytes is the data-array allocation granularity (8 B).
	SegmentBytes int
	// Interleave is the global bank count; consecutive blocks map to
	// consecutive banks, so within a bank the set index uses addr /
	// Interleave.
	Interleave int
}

// Validate reports geometry errors.
func (c *BankConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: bank sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 || c.TagFactor <= 0 || c.SegmentBytes <= 0 || c.Interleave <= 0 {
		return fmt.Errorf("cache: bank config has non-positive field: %+v", *c)
	}
	if 64%c.SegmentBytes != 0 {
		return fmt.Errorf("cache: segment size %d must divide 64", c.SegmentBytes)
	}
	return nil
}

// Bank is one NUCA LLC bank with a segmented, compression-aware data
// array: each set owns Ways*64/SegmentBytes segments, a line consumes
// ceil(size/SegmentBytes) of them, and up to TagFactor*Ways tags are
// available, so compressed lines raise effective capacity (the standard
// decoupled compressed-cache organization, cf. the paper's references
// [2][3][5]).
type Bank struct {
	cfg        BankConfig
	segsPerSet int
	tagsPerSet int
	sets       [][]Line
	clock      uint64

	Hits   uint64
	Misses uint64
	// Evictions counts data-array evictions (capacity or tag pressure).
	Evictions uint64
}

// NewBank builds a bank.
func NewBank(cfg BankConfig) *Bank {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Bank{
		cfg:        cfg,
		segsPerSet: cfg.Ways * 64 / cfg.SegmentBytes,
		tagsPerSet: cfg.Ways * cfg.TagFactor,
		sets:       make([][]Line, cfg.Sets),
	}
	for i := range b.sets {
		b.sets[i] = make([]Line, b.tagsPerSet)
		for j := range b.sets[i] {
			b.sets[i][j].Owner = -1
		}
	}
	return b
}

// Config returns the bank geometry.
func (b *Bank) Config() BankConfig { return b.cfg }

// setIndex maps a global block address to a set. The index is hashed
// (XOR-folded) so that large power-of-two-aligned regions spread over all
// sets, as real LLC set-index hash functions do.
func (b *Bank) setIndex(addr Addr) int {
	idx := uint64(addr) / uint64(b.cfg.Interleave)
	idx ^= idx >> 9
	idx ^= idx >> 18
	idx ^= idx >> 36
	return int(idx & uint64(b.cfg.Sets-1))
}

// segsFor returns the segment cost of a stored size.
func (b *Bank) segsFor(size int) int {
	if size <= 0 || size > 64 {
		panic(fmt.Sprintf("cache: stored size %d out of range", size))
	}
	return (size + b.cfg.SegmentBytes - 1) / b.cfg.SegmentBytes
}

// Lookup returns the line for addr (nil on miss), counting hit/miss and
// updating LRU.
func (b *Bank) Lookup(addr Addr) *Line {
	b.clock++
	s := b.sets[b.setIndex(addr)]
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			s[i].lru = b.clock
			b.Hits++
			return &s[i]
		}
	}
	b.Misses++
	return nil
}

// Peek returns the line without touching LRU or counters.
func (b *Bank) Peek(addr Addr) *Line {
	s := b.sets[b.setIndex(addr)]
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			return &s[i]
		}
	}
	return nil
}

// usedSegs sums segments held in a set.
func (b *Bank) usedSegs(set []Line) int {
	n := 0
	for i := range set {
		if set[i].Valid {
			n += set[i].Segs
		}
	}
	return n
}

// Insert installs addr with the given stored size, evicting LRU lines as
// needed to free a tag and enough segments. Pinned lines are skipped. The
// returned victims must be handled by the caller (recall/writeback). The
// new line is returned pinned=false, dirty as given, with empty directory.
func (b *Bank) Insert(addr Addr, sizeBytes int, dirty bool) (*Line, []Victim2) {
	segs := b.segsFor(sizeBytes)
	si := b.setIndex(addr)
	set := b.sets[si]
	if l := b.Peek(addr); l != nil {
		panic(fmt.Sprintf("cache: Insert(%x) but line already present", uint64(addr)))
	}
	var victims []Victim2
	for {
		freeTag := -1
		for i := range set {
			if !set[i].Valid {
				freeTag = i
				break
			}
		}
		enoughSegs := b.segsPerSet-b.usedSegs(set) >= segs
		if freeTag >= 0 && enoughSegs {
			b.clock++
			set[freeTag] = Line{
				Addr: addr, Valid: true, Dirty: dirty,
				Segs: segs, SizeBytes: sizeBytes, Owner: -1, lru: b.clock,
			}
			return &set[freeTag], victims
		}
		// Evict the LRU unpinned line.
		vi := -1
		for i := range set {
			if set[i].Valid && !set[i].Pinned && (vi < 0 || set[i].lru < set[vi].lru) {
				vi = i
			}
		}
		if vi < 0 {
			panic("cache: all lines pinned, cannot insert (protocol bug)")
		}
		victims = append(victims, Victim2{Line: set[vi]})
		set[vi].Valid = false
		b.Evictions++
	}
}

// Victim2 is an evicted bank line (full copy, including directory state,
// so the caller can recall L1 copies and write back dirty data).
type Victim2 struct {
	Line Line
}

// Resize changes a resident line's stored size (a writeback replaced its
// content). It may evict OTHER lines to make room when the line grows;
// the line itself is never a victim.
func (b *Bank) Resize(addr Addr, sizeBytes int) []Victim2 {
	l := b.Peek(addr)
	if l == nil {
		panic(fmt.Sprintf("cache: Resize(%x) on absent line", uint64(addr)))
	}
	newSegs := b.segsFor(sizeBytes)
	if newSegs <= l.Segs {
		l.Segs = newSegs
		l.SizeBytes = sizeBytes
		return nil
	}
	si := b.setIndex(addr)
	set := b.sets[si]
	var victims []Victim2
	for b.segsPerSet-b.usedSegs(set)+l.Segs < newSegs {
		vi := -1
		for i := range set {
			if set[i].Valid && !set[i].Pinned && set[i].Addr != addr &&
				(vi < 0 || set[i].lru < set[vi].lru) {
				vi = i
			}
		}
		if vi < 0 {
			panic("cache: cannot grow line, set fully pinned")
		}
		victims = append(victims, Victim2{Line: set[vi]})
		set[vi].Valid = false
		b.Evictions++
	}
	l.Segs = newSegs
	l.SizeBytes = sizeBytes
	return victims
}

// Invalidate drops the line if present, returning a copy.
func (b *Bank) Invalidate(addr Addr) (Line, bool) {
	l := b.Peek(addr)
	if l == nil {
		return Line{}, false
	}
	cp := *l
	l.Valid = false
	return cp, true
}

// Occupancy returns (lines, segments) currently valid (diagnostics).
func (b *Bank) Occupancy() (lines, segs int) {
	for _, s := range b.sets {
		for i := range s {
			if s[i].Valid {
				lines++
				segs += s[i].Segs
			}
		}
	}
	return
}

// ForEach calls f for every valid line (diagnostics/invariant checking).
func (b *Bank) ForEach(f func(*Line)) {
	for _, set := range b.sets {
		for i := range set {
			if set[i].Valid {
				f(&set[i])
			}
		}
	}
}
