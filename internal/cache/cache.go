// Package cache provides the memory-hierarchy substrate of the DISCO
// evaluation platform: private L1 data caches with MOESI states and
// shared NUCA L2 banks whose data arrays are segmented so compressed
// lines occupy fewer segments (higher effective capacity), as assumed by
// all compressed-cache schemes the paper compares (CC, CNC, DISCO, Ideal).
//
// The structures are passive and untimed: the full-system simulator
// (internal/cmp) owns the clock, the coherence protocol and the NoC
// messaging; this package answers "what is in the cache and what must be
// evicted" deterministically.
package cache

import "fmt"

// Addr is a cache-block address (byte address >> 6 for 64-byte lines).
type Addr uint64

// CohState is a MOESI coherence state for an L1 line.
type CohState int

// MOESI states.
const (
	Invalid CohState = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String implements fmt.Stringer.
func (s CohState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("CohState(%d)", int(s))
}

// CanRead reports whether the state grants read permission.
func (s CohState) CanRead() bool { return s != Invalid }

// CanWrite reports whether the state grants write permission.
func (s CohState) CanWrite() bool { return s == Modified || s == Exclusive }

// Dirty reports whether an eviction in this state must write back.
func (s CohState) Dirty() bool { return s == Modified || s == Owned }
