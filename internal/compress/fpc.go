package compress

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, the
// paper's reference [2]): each 32-bit word is matched against a small set
// of frequent patterns and replaced by a 3-bit prefix plus the pattern's
// residual bits. Runs of zero words collapse into a single prefix with a
// 3-bit run length. Table 1 of the DISCO paper lists FPC at 5-cycle
// decompression, ≈1.5× ratio.
//
// Prefixes (per the original FPC paper):
//
//	000 run of 1–8 zero words       (+3 bits run length)
//	001 4-bit sign-extended         (+4 bits)
//	010 8-bit sign-extended         (+8 bits)
//	011 16-bit sign-extended        (+16 bits)
//	100 16-bit padded with zeros    (+16 bits: the nonzero upper halfword)
//	101 two halfwords, each an 8-bit sign-extended value (+16 bits)
//	110 word of repeated bytes      (+8 bits)
//	111 uncompressed                (+32 bits)
type FPC struct{}

// NewFPC returns an FPC compressor.
func NewFPC() *FPC { return &FPC{} }

// Name implements Algorithm.
func (*FPC) Name() string { return "fpc" }

// CompLatency implements Algorithm (pattern match + pack pipeline).
func (*FPC) CompLatency() int { return 3 }

// DecompLatency implements Algorithm (Table 1: 5 cycles).
func (*FPC) DecompLatency() int { return 5 }

const (
	fpcZeroRun   = 0
	fpcSE4       = 1
	fpcSE8       = 2
	fpcSE16      = 3
	fpcPadded16  = 4
	fpcTwoHalf   = 5
	fpcRepByte   = 6
	fpcUncompact = 7
)

// fpcZeroRunAt returns the zero-word run length starting at word i
// (capped at 8, the prefix's run-length field): the mask's trailing-one
// count from bit i, which self-truncates at word 16 because the shifted-
// in high bits are zero.
func fpcZeroRunAt(zero uint16, i int) int {
	run := trailingOnes16(zero >> uint(i))
	if run > 8 {
		run = 8
	}
	return run
}

// trailingOnes16 counts consecutive set low bits.
func trailingOnes16(m uint16) int {
	n := 0
	for m&1 != 0 {
		n++
		m >>= 1
	}
	return n
}

// fpcEncode is the kernel emission path shared by Compress and
// CompressFromProbe: pattern selection reads the precomputed masks, and
// each word's prefix and residual are fused into a single MSB-first
// field (bit-identical to the old prefix-then-residual writes, since
// MSB-first concatenation is associative).
func fpcEncode(name string, block []byte, ws *[16]uint32, m *wordMasks) Compressed {
	var a bitAcc
	for i := 0; i < len(ws); {
		bit := uint16(1) << uint(i)
		if m.zero&bit != 0 {
			run := fpcZeroRunAt(m.zero, i)
			a.emit(fpcZeroRun<<3|uint64(run-1), 6)
			i += run
			continue
		}
		word := uint64(ws[i])
		switch {
		case m.se4&bit != 0:
			a.emit(fpcSE4<<4|word&0xF, 7)
		case m.se8&bit != 0:
			a.emit(fpcSE8<<8|word&0xFF, 11)
		case m.se16&bit != 0:
			a.emit(fpcSE16<<16|word&0xFFFF, 19)
		case m.pad16&bit != 0:
			a.emit(fpcPadded16<<16|word>>16, 19)
		case m.twoHalf&bit != 0:
			a.emit(fpcTwoHalf<<16|(word>>16&0xFF)<<8|word&0xFF, 19)
		case m.repByte&bit != 0:
			a.emit(fpcRepByte<<8|word&0xFF, 11)
		default:
			a.emit(fpcUncompact<<32|word, 35)
		}
		i++
	}
	if a.bits() >= 8*BlockSize {
		return stored(name, block)
	}
	return Compressed{Alg: name, SizeBits: a.bits(), Payload: a.bytes()}
}

// Compress implements Algorithm via the word-parallel kernel: one
// classification pass builds the pattern masks, one emission pass packs
// the block.
func (a *FPC) Compress(block []byte) Compressed {
	checkBlock(block)
	ws := words32(block)
	m := classifyWords32(&ws)
	return fpcEncode(a.Name(), block, &ws, &m)
}

// fpcProbeSize replays the pattern selection over the masks without
// emitting a bit.
func fpcProbeSize(m *wordMasks) int {
	total := 0
	for i := 0; i < 16; {
		bit := uint16(1) << uint(i)
		if m.zero&bit != 0 {
			total += 6
			i += fpcZeroRunAt(m.zero, i)
			continue
		}
		switch {
		case m.se4&bit != 0:
			total += 7
		case m.se8&bit != 0:
			total += 11
		case m.se16&bit != 0:
			total += 19
		case m.pad16&bit != 0:
			total += 19
		case m.twoHalf&bit != 0:
			total += 19
		case m.repByte&bit != 0:
			total += 11
		default:
			total += 35
		}
		i++
	}
	return total
}

// ProbeSizeBits implements ProbeCompressor.
func (a *FPC) ProbeSizeBits(p *BlockProbe) (int, bool) {
	total := fpcProbeSize(&p.masks)
	if total >= 8*BlockSize {
		return 0, false
	}
	return total, true
}

// CompressFromProbe implements ProbeCompressor.
func (a *FPC) CompressFromProbe(block []byte, p *BlockProbe) Compressed {
	return fpcEncode(a.Name(), block, &p.Words, &p.masks)
}

// Decompress implements Algorithm.
func (a *FPC) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	words := 0
	for words < BlockSize/WordSize {
		prefix, ok := r.readBits(3)
		if !ok {
			return nil, ErrCorrupt
		}
		switch prefix {
		case fpcZeroRun:
			rl, ok := r.readBits(3)
			if !ok {
				return nil, ErrCorrupt
			}
			n := int(rl) + 1
			if words+n > BlockSize/WordSize {
				return nil, ErrCorrupt
			}
			for j := 0; j < n; j++ {
				out = appendWord(out, 0)
			}
			words += n
		case fpcSE4, fpcSE8, fpcSE16:
			width := 4
			switch prefix {
			case fpcSE8:
				width = 8
			case fpcSE16:
				width = 16
			}
			v, ok := r.readBits(width)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, width)))
			words++
		case fpcPadded16:
			v, ok := r.readBits(16)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v)<<16)
			words++
		case fpcTwoHalf:
			hi, ok1 := r.readBits(8)
			lo, ok2 := r.readBits(8)
			if !ok1 || !ok2 {
				return nil, ErrCorrupt
			}
			h := uint32(uint16(signExtend(hi, 8)))
			l := uint32(uint16(signExtend(lo, 8)))
			out = appendWord(out, h<<16|l)
			words++
		case fpcRepByte:
			v, ok := r.readBits(8)
			if !ok {
				return nil, ErrCorrupt
			}
			b := uint32(v)
			out = appendWord(out, b|b<<8|b<<16|b<<24)
			words++
		case fpcUncompact:
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v))
			words++
		}
	}
	return out, nil
}

// appendWord appends a 32-bit word little-endian.
func appendWord(out []byte, w uint32) []byte {
	return append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

// SFPC is the simplified FPC variant of Table 1 (4-cycle decompression,
// ≈1.33× ratio): only the zero-word, 8-bit sign-extended, 16-bit
// sign-extended and uncompressed patterns survive, selected by a 2-bit
// prefix. Fewer patterns shorten the decode mux chain (hence the lower
// latency) at the cost of compression ratio.
type SFPC struct{}

// NewSFPC returns a simplified-FPC compressor.
func NewSFPC() *SFPC { return &SFPC{} }

// Name implements Algorithm.
func (*SFPC) Name() string { return "sfpc" }

// CompLatency implements Algorithm.
func (*SFPC) CompLatency() int { return 2 }

// DecompLatency implements Algorithm (Table 1: 4 cycles).
func (*SFPC) DecompLatency() int { return 4 }

const (
	sfpcZero   = 0
	sfpcSE8    = 1
	sfpcSE16   = 2
	sfpcUncomp = 3
)

// sfpcEncode is the kernel emission path shared by Compress and
// CompressFromProbe (prefix and residual fused per word, as in FPC).
func sfpcEncode(name string, block []byte, ws *[16]uint32, m *wordMasks) Compressed {
	var a bitAcc
	for i := 0; i < len(ws); i++ {
		bit := uint16(1) << uint(i)
		word := uint64(ws[i])
		switch {
		case m.zero&bit != 0:
			a.emit(sfpcZero, 2)
		case m.se8&bit != 0:
			a.emit(sfpcSE8<<8|word&0xFF, 10)
		case m.se16&bit != 0:
			a.emit(sfpcSE16<<16|word&0xFFFF, 18)
		default:
			a.emit(sfpcUncomp<<32|word, 34)
		}
	}
	if a.bits() >= 8*BlockSize {
		return stored(name, block)
	}
	return Compressed{Alg: name, SizeBits: a.bits(), Payload: a.bytes()}
}

// Compress implements Algorithm via the word-parallel kernel.
func (a *SFPC) Compress(block []byte) Compressed {
	checkBlock(block)
	ws := words32(block)
	m := classifyWords32(&ws)
	return sfpcEncode(a.Name(), block, &ws, &m)
}

// ProbeSizeBits implements ProbeCompressor.
func (a *SFPC) ProbeSizeBits(p *BlockProbe) (int, bool) {
	m := &p.masks
	total := 0
	for i := 0; i < 16; i++ {
		bit := uint16(1) << uint(i)
		switch {
		case m.zero&bit != 0:
			total += 2
		case m.se8&bit != 0:
			total += 10
		case m.se16&bit != 0:
			total += 18
		default:
			total += 34
		}
	}
	if total >= 8*BlockSize {
		return 0, false
	}
	return total, true
}

// CompressFromProbe implements ProbeCompressor.
func (a *SFPC) CompressFromProbe(block []byte, p *BlockProbe) Compressed {
	return sfpcEncode(a.Name(), block, &p.Words, &p.masks)
}

// Decompress implements Algorithm.
func (a *SFPC) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	for i := 0; i < BlockSize/WordSize; i++ {
		prefix, ok := r.readBits(2)
		if !ok {
			return nil, ErrCorrupt
		}
		switch prefix {
		case sfpcZero:
			out = appendWord(out, 0)
		case sfpcSE8:
			v, ok := r.readBits(8)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, 8)))
		case sfpcSE16:
			v, ok := r.readBits(16)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, 16)))
		case sfpcUncomp:
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v))
		}
	}
	return out, nil
}
