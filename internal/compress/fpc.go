package compress

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, the
// paper's reference [2]): each 32-bit word is matched against a small set
// of frequent patterns and replaced by a 3-bit prefix plus the pattern's
// residual bits. Runs of zero words collapse into a single prefix with a
// 3-bit run length. Table 1 of the DISCO paper lists FPC at 5-cycle
// decompression, ≈1.5× ratio.
//
// Prefixes (per the original FPC paper):
//
//	000 run of 1–8 zero words       (+3 bits run length)
//	001 4-bit sign-extended         (+4 bits)
//	010 8-bit sign-extended         (+8 bits)
//	011 16-bit sign-extended        (+16 bits)
//	100 16-bit padded with zeros    (+16 bits: the nonzero upper halfword)
//	101 two halfwords, each an 8-bit sign-extended value (+16 bits)
//	110 word of repeated bytes      (+8 bits)
//	111 uncompressed                (+32 bits)
type FPC struct{}

// NewFPC returns an FPC compressor.
func NewFPC() *FPC { return &FPC{} }

// Name implements Algorithm.
func (*FPC) Name() string { return "fpc" }

// CompLatency implements Algorithm (pattern match + pack pipeline).
func (*FPC) CompLatency() int { return 3 }

// DecompLatency implements Algorithm (Table 1: 5 cycles).
func (*FPC) DecompLatency() int { return 5 }

const (
	fpcZeroRun   = 0
	fpcSE4       = 1
	fpcSE8       = 2
	fpcSE16      = 3
	fpcPadded16  = 4
	fpcTwoHalf   = 5
	fpcRepByte   = 6
	fpcUncompact = 7
)

// Compress implements Algorithm.
func (a *FPC) Compress(block []byte) Compressed {
	checkBlock(block)
	ws := words32(block)
	// Worst case is 3+32 bits per word (70 bytes); one up-front
	// allocation covers it, so writeBits never regrows.
	w := bitWriter{buf: make([]byte, 0, BlockSize+8)}
	for i := 0; i < len(ws); {
		if ws[i] == 0 {
			run := 1
			for i+run < len(ws) && ws[i+run] == 0 && run < 8 {
				run++
			}
			w.writeBits(fpcZeroRun, 3)
			w.writeBits(uint64(run-1), 3)
			i += run
			continue
		}
		word := ws[i]
		se := int64(int32(word))
		switch {
		case fitsSigned(se, 4):
			w.writeBits(fpcSE4, 3)
			w.writeBits(uint64(word)&0xF, 4)
		case fitsSigned(se, 8):
			w.writeBits(fpcSE8, 3)
			w.writeBits(uint64(word)&0xFF, 8)
		case fitsSigned(se, 16):
			w.writeBits(fpcSE16, 3)
			w.writeBits(uint64(word)&0xFFFF, 16)
		case word&0xFFFF == 0:
			w.writeBits(fpcPadded16, 3)
			w.writeBits(uint64(word>>16), 16)
		case halfIsSE8(uint16(word>>16)) && halfIsSE8(uint16(word)):
			w.writeBits(fpcTwoHalf, 3)
			w.writeBits(uint64(word>>16)&0xFF, 8)
			w.writeBits(uint64(word)&0xFF, 8)
		case isRepByte(word):
			w.writeBits(fpcRepByte, 3)
			w.writeBits(uint64(word)&0xFF, 8)
		default:
			w.writeBits(fpcUncompact, 3)
			w.writeBits(uint64(word), 32)
		}
		i++
	}
	if w.bits() >= 8*BlockSize {
		return stored(a.Name(), block)
	}
	return Compressed{Alg: a.Name(), SizeBits: w.bits(), Payload: w.bytes()}
}

// halfIsSE8 reports whether a 16-bit halfword is an 8-bit sign-extended
// value (its upper byte is all zeros or all ones matching bit 7).
func halfIsSE8(h uint16) bool {
	return fitsSigned(int64(int16(h)), 8)
}

// isRepByte reports whether all four bytes of the word are equal.
func isRepByte(w uint32) bool {
	b := w & 0xFF
	return w == b|b<<8|b<<16|b<<24
}

// Decompress implements Algorithm.
func (a *FPC) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	words := 0
	for words < BlockSize/WordSize {
		prefix, ok := r.readBits(3)
		if !ok {
			return nil, ErrCorrupt
		}
		switch prefix {
		case fpcZeroRun:
			rl, ok := r.readBits(3)
			if !ok {
				return nil, ErrCorrupt
			}
			n := int(rl) + 1
			if words+n > BlockSize/WordSize {
				return nil, ErrCorrupt
			}
			for j := 0; j < n; j++ {
				out = appendWord(out, 0)
			}
			words += n
		case fpcSE4, fpcSE8, fpcSE16:
			width := 4
			switch prefix {
			case fpcSE8:
				width = 8
			case fpcSE16:
				width = 16
			}
			v, ok := r.readBits(width)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, width)))
			words++
		case fpcPadded16:
			v, ok := r.readBits(16)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v)<<16)
			words++
		case fpcTwoHalf:
			hi, ok1 := r.readBits(8)
			lo, ok2 := r.readBits(8)
			if !ok1 || !ok2 {
				return nil, ErrCorrupt
			}
			h := uint32(uint16(signExtend(hi, 8)))
			l := uint32(uint16(signExtend(lo, 8)))
			out = appendWord(out, h<<16|l)
			words++
		case fpcRepByte:
			v, ok := r.readBits(8)
			if !ok {
				return nil, ErrCorrupt
			}
			b := uint32(v)
			out = appendWord(out, b|b<<8|b<<16|b<<24)
			words++
		case fpcUncompact:
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v))
			words++
		}
	}
	return out, nil
}

// appendWord appends a 32-bit word little-endian.
func appendWord(out []byte, w uint32) []byte {
	return append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

// SFPC is the simplified FPC variant of Table 1 (4-cycle decompression,
// ≈1.33× ratio): only the zero-word, 8-bit sign-extended, 16-bit
// sign-extended and uncompressed patterns survive, selected by a 2-bit
// prefix. Fewer patterns shorten the decode mux chain (hence the lower
// latency) at the cost of compression ratio.
type SFPC struct{}

// NewSFPC returns a simplified-FPC compressor.
func NewSFPC() *SFPC { return &SFPC{} }

// Name implements Algorithm.
func (*SFPC) Name() string { return "sfpc" }

// CompLatency implements Algorithm.
func (*SFPC) CompLatency() int { return 2 }

// DecompLatency implements Algorithm (Table 1: 4 cycles).
func (*SFPC) DecompLatency() int { return 4 }

const (
	sfpcZero   = 0
	sfpcSE8    = 1
	sfpcSE16   = 2
	sfpcUncomp = 3
)

// Compress implements Algorithm.
func (a *SFPC) Compress(block []byte) Compressed {
	checkBlock(block)
	ws := words32(block)
	// Worst case is 2+32 bits per word (68 bytes); allocate once.
	w := bitWriter{buf: make([]byte, 0, BlockSize+8)}
	for _, word := range ws {
		se := int64(int32(word))
		switch {
		case word == 0:
			w.writeBits(sfpcZero, 2)
		case fitsSigned(se, 8):
			w.writeBits(sfpcSE8, 2)
			w.writeBits(uint64(word)&0xFF, 8)
		case fitsSigned(se, 16):
			w.writeBits(sfpcSE16, 2)
			w.writeBits(uint64(word)&0xFFFF, 16)
		default:
			w.writeBits(sfpcUncomp, 2)
			w.writeBits(uint64(word), 32)
		}
	}
	if w.bits() >= 8*BlockSize {
		return stored(a.Name(), block)
	}
	return Compressed{Alg: a.Name(), SizeBits: w.bits(), Payload: w.bytes()}
}

// Decompress implements Algorithm.
func (a *SFPC) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	for i := 0; i < BlockSize/WordSize; i++ {
		prefix, ok := r.readBits(2)
		if !ok {
			return nil, ErrCorrupt
		}
		switch prefix {
		case sfpcZero:
			out = appendWord(out, 0)
		case sfpcSE8:
			v, ok := r.readBits(8)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, 8)))
		case sfpcSE16:
			v, ok := r.readBits(16)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(signExtend(v, 16)))
		case sfpcUncomp:
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v))
		}
	}
	return out, nil
}
