package compress

import (
	"bytes"
	"fmt"
	"testing"
)

// equalCompressed reports whether two results are bit-identical
// (including the stored flag and exact payload bytes).
func equalCompressed(a, b Compressed) bool {
	return a.Stored == b.Stored && a.SizeBits == b.SizeBits && bytes.Equal(a.Payload, b.Payload)
}

// kernelRefPair is one codec plus a closure running its retained scalar
// reference encoder.
type kernelRefPair struct {
	alg Algorithm
	ref func([]byte) Compressed
}

// kernelRefPairs returns every codec with a retained scalar reference
// encoder. SC2 is trained on the block zoo; the reference shares the
// trained table. Build once per test — training is not cheap.
func kernelRefPairs(t testing.TB) []kernelRefPair {
	s := NewSC2()
	s.Train(testBlocks(t))
	idx := refSC2Index(s)
	h := NewHybrid(NewDelta(), NewBDI(), NewFPC(), NewSFPC(), NewCPack(), s)
	return []kernelRefPair{
		{NewDelta(), func(b []byte) Compressed { return refCompressDelta("delta", b) }},
		{NewBDI(), func(b []byte) Compressed { return refCompressBDI("bdi", b) }},
		{NewFPC(), func(b []byte) Compressed { return refCompressFPC("fpc", b) }},
		{NewSFPC(), func(b []byte) Compressed { return refCompressSFPC("sfpc", b) }},
		{s, func(b []byte) Compressed { return refCompressSC2(s, idx, b) }},
		{h, func(b []byte) Compressed { return refCompressHybrid(h, b) }},
	}
}

// checkKernelBlock asserts, for one block, that every kernel codec is
// bit-identical to its scalar reference and that every ProbeCompressor
// honours the probe contract: ProbeSizeBits answers (SizeBits, true)
// exactly when Compress returns non-stored, and CompressFromProbe
// reproduces Compress bit for bit.
func checkKernelBlock(t testing.TB, pairs []kernelRefPair, block []byte) {
	p := Probe(block)
	for _, pair := range pairs {
		got := pair.alg.Compress(block)
		want := pair.ref(block)
		if !equalCompressed(got, want) {
			t.Fatalf("%s: kernel/reference mismatch\nblock  %x\nkernel stored=%v size=%d payload=%x\nref    stored=%v size=%d payload=%x",
				pair.alg.Name(), block,
				got.Stored, got.SizeBits, got.Payload,
				want.Stored, want.SizeBits, want.Payload)
		}
		pc, ok := pair.alg.(ProbeCompressor)
		if !ok {
			continue
		}
		bits, feasible := pc.ProbeSizeBits(&p)
		if feasible == got.Stored {
			t.Fatalf("%s: probe feasible=%v but Compress stored=%v (block %x)",
				pair.alg.Name(), feasible, got.Stored, block)
		}
		if feasible {
			if bits != got.SizeBits {
				t.Fatalf("%s: probe size %d, Compress size %d (block %x)",
					pair.alg.Name(), bits, got.SizeBits, block)
			}
			fp := pc.CompressFromProbe(block, &p)
			if !equalCompressed(fp, got) {
				t.Fatalf("%s: CompressFromProbe differs from Compress (block %x)",
					pair.alg.Name(), block)
			}
		}
	}
}

// TestKernelEquivalenceZoo runs the kernel-vs-reference check over the
// deterministic block zoo (the same corpus the round-trip suite uses).
func TestKernelEquivalenceZoo(t *testing.T) {
	pairs := kernelRefPairs(t)
	for i, blk := range testBlocks(t) {
		t.Run(fmt.Sprintf("block%02d", i), func(t *testing.T) {
			checkKernelBlock(t, pairs, blk)
		})
	}
}

// FuzzKernelEquivalence is the differential fuzz target behind
// `make fuzz-smoke`: for arbitrary block content, every word-parallel
// kernel codec must produce bit-identical Compressed output to its
// retained scalar reference encoder, and every ProbeCompressor must
// satisfy the shared-scan probe contract.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(make([]byte, BlockSize))
	for _, blk := range testBlocks(f)[:8] {
		f.Add(append([]byte(nil), blk...))
	}
	pairs := kernelRefPairs(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		block := make([]byte, BlockSize)
		copy(block, data)
		checkKernelBlock(t, pairs, block)
	})
}
