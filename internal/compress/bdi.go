package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.,
// PACT 2012), the delta-family scheme the paper cites as [5] and lists in
// Table 1 (comp 1 cycle, decomp 1–5 cycles, ratio ≈1.57). A block is split
// into equal-width elements (8, 4 or 2 bytes); each element is encoded as a
// narrow signed delta against either an explicit base (the first element
// that is not near zero) or the implicit zero base, selected per element by
// a bitmask — exactly the B+Δ "two bases" formulation of the original
// paper. All seven (base,Δ) geometries plus the zero-block and
// repeated-value special cases are tried and the smallest wins.
type BDI struct{}

// NewBDI returns a BΔI compressor.
func NewBDI() *BDI { return &BDI{} }

// Name implements Algorithm.
func (*BDI) Name() string { return "bdi" }

// CompLatency implements Algorithm (Table 1: 1 cycle).
func (*BDI) CompLatency() int { return 1 }

// DecompLatency implements Algorithm (Table 1: 1~5 cycles; we use the
// midpoint 3, matching the paper's own delta configuration).
func (*BDI) DecompLatency() int { return 3 }

// bdiEncoding identifies a BΔI geometry.
type bdiEncoding struct {
	id        byte // payload tag
	baseBytes int
	deltaByts int
}

// bdiGeometries lists the candidate geometries in the order the original
// hardware evaluates them (all in parallel; ties broken by size).
var bdiGeometries = []bdiEncoding{
	{2, 8, 1}, {3, 8, 2}, {4, 8, 4},
	{5, 4, 1}, {6, 4, 2},
	{7, 2, 1},
}

// bdiEncodingBits is the per-block metadata cost: a 4-bit encoding tag.
const bdiEncodingBits = 4

// Compress implements Algorithm.
func (a *BDI) Compress(block []byte) Compressed {
	checkBlock(block)
	if isZeroBlock(block) {
		// Zero block: 1-byte representation (encoding tag + nothing).
		return Compressed{Alg: a.Name(), SizeBits: bdiEncodingBits + 4, Payload: []byte{0}}
	}
	if rep, ok := repeatedValue(block); ok {
		p := make([]byte, 1+8)
		p[0] = 1
		binary.LittleEndian.PutUint64(p[1:], rep)
		return Compressed{Alg: a.Name(), SizeBits: bdiEncodingBits + 64, Payload: p}
	}
	best := Compressed{SizeBits: 8 * BlockSize}
	found := false
	for _, g := range bdiGeometries {
		c, ok := bdiTry(a.Name(), block, g)
		if ok && (!found || c.SizeBits < best.SizeBits) {
			best, found = c, true
		}
	}
	if found && best.SizeBits < 8*BlockSize {
		return best
	}
	return stored(a.Name(), block)
}

// isZeroBlock reports whether every byte is zero.
func isZeroBlock(block []byte) bool {
	for _, b := range block {
		if b != 0 {
			return false
		}
	}
	return true
}

// repeatedValue reports whether the block is a single 8-byte value
// repeated, returning that value.
func repeatedValue(block []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(block)
	for i := FlitBytes; i < BlockSize; i += FlitBytes {
		if binary.LittleEndian.Uint64(block[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// bdiElement reads the i-th base-width element as an unsigned value.
func bdiElement(block []byte, width, i int) uint64 {
	switch width {
	case 8:
		return binary.LittleEndian.Uint64(block[i*8:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(block[i*4:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(block[i*2:]))
	}
	panic("compress: bad BDI width")
}

// bdiTry attempts one geometry. The explicit base is the first element
// whose delta against zero does not fit (as in the original design); if
// every element is near zero the zero base alone suffices.
func bdiTry(alg string, block []byte, g bdiEncoding) (Compressed, bool) {
	n := BlockSize / g.baseBytes
	dbits := 8 * g.deltaByts
	var base uint64
	haveBase := false
	// Pass 1: find the explicit base.
	for i := 0; i < n; i++ {
		e := bdiElement(block, g.baseBytes, i)
		if !fitsSigned(int64(signExtendWidth(e, g.baseBytes)), dbits) {
			base, haveBase = e, true
			break
		}
	}
	// Pass 2: encode deltas and the base-select mask. Both are bounded by
	// the block geometry (n <= BlockSize/2 elements, len(deltas) <
	// BlockSize), so fixed-size backing arrays keep the scratch off the
	// heap; only the returned payload is allocated.
	var maskArr [BlockSize / 8]byte
	var deltaArr [BlockSize]byte
	mask := maskArr[:(n+7)/8]
	deltas := deltaArr[:0]
	for i := 0; i < n; i++ {
		e := bdiElement(block, g.baseBytes, i)
		se := signExtendWidth(e, g.baseBytes)
		var d int64
		switch {
		case fitsSigned(se, dbits):
			d = se // zero base
		case haveBase && fitsSigned(wrapDiff(e, base, g.baseBytes), dbits):
			d = wrapDiff(e, base, g.baseBytes)
			mask[i/8] |= 1 << uint(i%8) // explicit base
		default:
			return Compressed{}, false
		}
		u := uint64(d)
		for b := 0; b < g.deltaByts; b++ {
			deltas = append(deltas, byte(u>>uint(8*b)))
		}
	}
	baseBytes := 0
	if haveBase {
		baseBytes = g.baseBytes
	}
	sizeBits := bdiEncodingBits + n + 8*baseBytes + 8*len(deltas)
	payload := make([]byte, 0, 2+len(mask)+baseBytes+len(deltas))
	payload = append(payload, g.id)
	if haveBase {
		payload = append(payload, 1)
		var bb [8]byte
		binary.LittleEndian.PutUint64(bb[:], base)
		payload = append(payload, bb[:g.baseBytes]...)
	} else {
		payload = append(payload, 0)
	}
	payload = append(payload, mask...)
	payload = append(payload, deltas...)
	return Compressed{Alg: alg, SizeBits: sizeBits, Payload: payload}, true
}

// signExtendWidth sign-extends a width-byte little-endian element value.
func signExtendWidth(v uint64, widthBytes int) int64 {
	if widthBytes == 8 {
		return int64(v)
	}
	return signExtend(v, 8*widthBytes)
}

// wrapDiff computes the signed difference (e - base) modulo the element
// width, which is what a width-limited subtractor produces.
func wrapDiff(e, base uint64, widthBytes int) int64 {
	d := e - base
	if widthBytes == 8 {
		return int64(d)
	}
	return signExtend(d&(1<<uint(8*widthBytes)-1), 8*widthBytes)
}

// Decompress implements Algorithm.
func (a *BDI) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if len(c.Payload) < 1 {
		return nil, ErrCorrupt
	}
	switch c.Payload[0] {
	case 0:
		return make([]byte, BlockSize), nil
	case 1:
		if len(c.Payload) != 9 {
			return nil, ErrCorrupt
		}
		v := binary.LittleEndian.Uint64(c.Payload[1:])
		out := make([]byte, BlockSize)
		for i := 0; i < BlockSize; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], v)
		}
		return out, nil
	}
	var geo *bdiEncoding
	for i := range bdiGeometries {
		if bdiGeometries[i].id == c.Payload[0] {
			geo = &bdiGeometries[i]
			break
		}
	}
	if geo == nil || len(c.Payload) < 2 {
		return nil, ErrCorrupt
	}
	n := BlockSize / geo.baseBytes
	pos := 1
	haveBase := c.Payload[pos] == 1
	pos++
	var base uint64
	if haveBase {
		if len(c.Payload) < pos+geo.baseBytes {
			return nil, ErrCorrupt
		}
		var bb [8]byte
		copy(bb[:], c.Payload[pos:pos+geo.baseBytes])
		base = binary.LittleEndian.Uint64(bb[:])
		pos += geo.baseBytes
	}
	maskLen := (n + 7) / 8
	if len(c.Payload) != pos+maskLen+n*geo.deltaByts {
		return nil, ErrCorrupt
	}
	mask := c.Payload[pos : pos+maskLen]
	pos += maskLen
	out := make([]byte, BlockSize)
	for i := 0; i < n; i++ {
		var raw uint64
		for b := 0; b < geo.deltaByts; b++ {
			raw |= uint64(c.Payload[pos+b]) << uint(8*b)
		}
		pos += geo.deltaByts
		d := signExtend(raw, 8*geo.deltaByts)
		v := uint64(d)
		if mask[i/8]&(1<<uint(i%8)) != 0 {
			if !haveBase {
				return nil, ErrCorrupt
			}
			v = base + uint64(d)
		}
		switch geo.baseBytes {
		case 8:
			binary.LittleEndian.PutUint64(out[i*8:], v)
		case 4:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	}
	return out, nil
}
