package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.,
// PACT 2012), the delta-family scheme the paper cites as [5] and lists in
// Table 1 (comp 1 cycle, decomp 1–5 cycles, ratio ≈1.57). A block is split
// into equal-width elements (8, 4 or 2 bytes); each element is encoded as a
// narrow signed delta against either an explicit base (the first element
// that is not near zero) or the implicit zero base, selected per element by
// a bitmask — exactly the B+Δ "two bases" formulation of the original
// paper. All seven (base,Δ) geometries plus the zero-block and
// repeated-value special cases are tried and the smallest wins.
type BDI struct{}

// NewBDI returns a BΔI compressor.
func NewBDI() *BDI { return &BDI{} }

// Name implements Algorithm.
func (*BDI) Name() string { return "bdi" }

// CompLatency implements Algorithm (Table 1: 1 cycle).
func (*BDI) CompLatency() int { return 1 }

// DecompLatency implements Algorithm (Table 1: 1~5 cycles; we use the
// midpoint 3, matching the paper's own delta configuration).
func (*BDI) DecompLatency() int { return 3 }

// bdiEncoding identifies a BΔI geometry.
type bdiEncoding struct {
	id        byte // payload tag
	baseBytes int
	deltaByts int
}

// bdiGeometries lists the candidate geometries in the order the original
// hardware evaluates them (all in parallel; ties broken by size). An
// array, so len(bdiGeometries) is a constant the kernel's probe-fact
// storage can use.
var bdiGeometries = [...]bdiEncoding{
	{2, 8, 1}, {3, 8, 2}, {4, 8, 4},
	{5, 4, 1}, {6, 4, 2},
	{7, 2, 1},
}

// bdiEncodingBits is the per-block metadata cost: a 4-bit encoding tag.
const bdiEncodingBits = 4

// bdiRepEncoding builds the repeated-8-byte-value special case.
func bdiRepEncoding(name string, rep uint64) Compressed {
	p := make([]byte, 1+8)
	p[0] = 1
	binary.LittleEndian.PutUint64(p[1:], rep)
	return Compressed{Alg: name, SizeBits: bdiEncodingBits + 64, Payload: p}
}

// bdiBestGeometry picks the winning geometry from probe facts: the
// first strictly-smallest feasible candidate, in hardware evaluation
// order — exactly the old try-them-all loop's selection.
func bdiBestGeometry(facts *[len(bdiGeometries)]bdiFact) int {
	best := -1
	for gi := range facts {
		if !facts[gi].feasible {
			continue
		}
		if best < 0 || facts[gi].sizeBits < facts[best].sizeBits {
			best = gi
		}
	}
	return best
}

// bdiLayout lays out one geometry known feasible (probe facts supply
// the base), replaying the per-element base selection of the scan: zero
// base when the sign-extended element fits, else the explicit base with
// the mask bit set. Only the winner's payload is ever allocated.
func bdiLayout(name string, lanes *[BlockSize / FlitBytes]uint64, ws *[16]uint32, gi int, f *bdiFact) Compressed {
	g := &bdiGeometries[gi]
	n := BlockSize / g.baseBytes
	dbits := 8 * g.deltaByts
	baseBytes := 0
	if f.haveBase {
		baseBytes = g.baseBytes
	}
	maskLen := (n + 7) / 8
	payload := make([]byte, 2+maskLen+baseBytes+n*g.deltaByts)
	payload[0] = g.id
	if f.haveBase {
		payload[1] = 1
		for b := 0; b < g.baseBytes; b++ {
			payload[2+b] = byte(f.base >> uint(8*b))
		}
	}
	mask := payload[2+baseBytes : 2+baseBytes+maskLen]
	pos := 2 + baseBytes + maskLen
	for i := 0; i < n; i++ {
		e := bdiElem(lanes, ws, g.baseBytes, i)
		se := signExtendWidth(e, g.baseBytes)
		var d int64
		if fitsSigned(se, dbits) {
			d = se // zero base
		} else {
			d = wrapDiff(e, f.base, g.baseBytes)
			mask[i/8] |= 1 << uint(i%8) // explicit base
		}
		u := uint64(d)
		for b := 0; b < g.deltaByts; b++ {
			payload[pos+b] = byte(u >> uint(8*b))
		}
		pos += g.deltaByts
	}
	return Compressed{Alg: name, SizeBits: f.sizeBits, Payload: payload}
}

// Compress implements Algorithm via the word-parallel kernel: the six
// geometries are probed allocation-free over the register-resident
// block and only the winner is laid out (the old path laid out every
// feasible geometry and then kept one).
func (a *BDI) Compress(block []byte) Compressed {
	checkBlock(block)
	lanes := words64(block)
	all := uint64(0)
	rep := true
	for _, l := range lanes {
		all |= l
		rep = rep && l == lanes[0]
	}
	if all == 0 {
		// Zero block: 1-byte representation (encoding tag + nothing).
		return Compressed{Alg: a.Name(), SizeBits: bdiEncodingBits + 4, Payload: []byte{0}}
	}
	if rep {
		return bdiRepEncoding(a.Name(), lanes[0])
	}
	var ws [16]uint32
	for i, l := range lanes {
		ws[2*i] = uint32(l)
		ws[2*i+1] = uint32(l >> 32)
	}
	facts := bdiProbe(&lanes, &ws)
	best := bdiBestGeometry(&facts)
	if best < 0 {
		return stored(a.Name(), block)
	}
	return bdiLayout(a.Name(), &lanes, &ws, best, &facts[best])
}

// ProbeSizeBits implements ProbeCompressor.
func (a *BDI) ProbeSizeBits(p *BlockProbe) (int, bool) {
	if p.zeroBlock {
		return bdiEncodingBits + 4, true
	}
	if p.repBlock {
		return bdiEncodingBits + 64, true
	}
	best := bdiBestGeometry(&p.bdi)
	if best < 0 {
		return 0, false
	}
	return p.bdi[best].sizeBits, true
}

// CompressFromProbe implements ProbeCompressor.
func (a *BDI) CompressFromProbe(block []byte, p *BlockProbe) Compressed {
	if p.zeroBlock {
		return Compressed{Alg: a.Name(), SizeBits: bdiEncodingBits + 4, Payload: []byte{0}}
	}
	if p.repBlock {
		return bdiRepEncoding(a.Name(), p.repValue)
	}
	best := bdiBestGeometry(&p.bdi)
	if best < 0 {
		return stored(a.Name(), block)
	}
	return bdiLayout(a.Name(), &p.Lanes, &p.Words, best, &p.bdi[best])
}

// signExtendWidth sign-extends a width-byte little-endian element value.
func signExtendWidth(v uint64, widthBytes int) int64 {
	if widthBytes == 8 {
		return int64(v)
	}
	return signExtend(v, 8*widthBytes)
}

// wrapDiff computes the signed difference (e - base) modulo the element
// width, which is what a width-limited subtractor produces.
func wrapDiff(e, base uint64, widthBytes int) int64 {
	d := e - base
	if widthBytes == 8 {
		return int64(d)
	}
	return signExtend(d&(1<<uint(8*widthBytes)-1), 8*widthBytes)
}

// Decompress implements Algorithm.
func (a *BDI) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if len(c.Payload) < 1 {
		return nil, ErrCorrupt
	}
	switch c.Payload[0] {
	case 0:
		return make([]byte, BlockSize), nil
	case 1:
		if len(c.Payload) != 9 {
			return nil, ErrCorrupt
		}
		v := binary.LittleEndian.Uint64(c.Payload[1:])
		out := make([]byte, BlockSize)
		for i := 0; i < BlockSize; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], v)
		}
		return out, nil
	}
	var geo *bdiEncoding
	for i := range bdiGeometries {
		if bdiGeometries[i].id == c.Payload[0] {
			geo = &bdiGeometries[i]
			break
		}
	}
	if geo == nil || len(c.Payload) < 2 {
		return nil, ErrCorrupt
	}
	n := BlockSize / geo.baseBytes
	pos := 1
	haveBase := c.Payload[pos] == 1
	pos++
	var base uint64
	if haveBase {
		if len(c.Payload) < pos+geo.baseBytes {
			return nil, ErrCorrupt
		}
		var bb [8]byte
		copy(bb[:], c.Payload[pos:pos+geo.baseBytes])
		base = binary.LittleEndian.Uint64(bb[:])
		pos += geo.baseBytes
	}
	maskLen := (n + 7) / 8
	if len(c.Payload) != pos+maskLen+n*geo.deltaByts {
		return nil, ErrCorrupt
	}
	mask := c.Payload[pos : pos+maskLen]
	pos += maskLen
	out := make([]byte, BlockSize)
	for i := 0; i < n; i++ {
		var raw uint64
		for b := 0; b < geo.deltaByts; b++ {
			raw |= uint64(c.Payload[pos+b]) << uint(8*b)
		}
		pos += geo.deltaByts
		d := signExtend(raw, 8*geo.deltaByts)
		v := uint64(d)
		if mask[i/8]&(1<<uint(i%8)) != 0 {
			if !haveBase {
				return nil, ErrCorrupt
			}
			v = base + uint64(d)
		}
		switch geo.baseBytes {
		case 8:
			binary.LittleEndian.PutUint64(out[i*8:], v)
		case 4:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	}
	return out, nil
}
