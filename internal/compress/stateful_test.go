package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// streamBlocks builds a deterministic plaintext block sequence with
// value locality between consecutive blocks (the case the persistent
// delta base exists for) plus pattern edges.
func streamBlocks(n int) [][]byte {
	blocks := make([][]byte, 0, n)
	seed := uint64(0x9E3779B97F4A7C15)
	base := make([]byte, BlockSize)
	for i := 0; i < n; i++ {
		b := make([]byte, BlockSize)
		switch i % 5 {
		case 0: // all-zero
		case 1: // slowly drifting counters: tiny XOR residuals
			copy(b, base)
			for j := 0; j < BlockSize; j += FlitBytes {
				v := binary.LittleEndian.Uint64(b[j:])
				binary.LittleEndian.PutUint64(b[j:], v+uint64(i))
			}
		case 2: // repeated word
			for j := 0; j < BlockSize; j += WordSize {
				binary.LittleEndian.PutUint32(b[j:], uint32(i)*0x01010101)
			}
		case 3: // pseudorandom (incompressible)
			for j := 0; j < BlockSize; j += 8 {
				seed += 0x9E3779B97F4A7C15
				z := seed
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				binary.LittleEndian.PutUint64(b[j:], z^(z>>31))
			}
		case 4: // previous block exactly (zero residual)
			copy(b, base)
		}
		copy(base, b)
		blocks = append(blocks, b)
	}
	return blocks
}

// TestStatefulRoundTrip pushes a block sequence through a fresh
// encoder/decoder pair for every registered codec and requires
// bit-exact recovery plus identical state evolution on both sides.
func TestStatefulRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			ea, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			da, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			enc, dec := NewStateful(ea), NewStateful(da)
			residuals := 0
			for i, b := range streamBlocks(600) {
				sb := enc.Encode(b)
				if sb.Mode == ModeResidual {
					residuals++
				}
				if sb.SizeBits > 8*BlockSize {
					t.Fatalf("block %d: SizeBits %d exceeds stored", i, sb.SizeBits)
				}
				got, err := dec.Decode(sb)
				if err != nil {
					t.Fatalf("block %d (mode %d): %v", i, sb.Mode, err)
				}
				if !bytes.Equal(got, b) {
					t.Fatalf("block %d (mode %d): round-trip mismatch", i, sb.Mode)
				}
			}
			if enc.Blocks() != dec.Blocks() || enc.Blocks() != 600 {
				t.Fatalf("block counts diverged: enc=%d dec=%d", enc.Blocks(), dec.Blocks())
			}
			// The delta-family codecs must actually exploit the base on
			// the drifting-counter / repeated-block subsequences.
			if name == "delta" && residuals == 0 {
				t.Fatalf("delta never chose ModeResidual on a value-local stream")
			}
		})
	}
}

// TestStatefulResidualBeforeBase is a protocol violation: a residual
// block with no prior plaintext must error, not desync.
func TestStatefulResidualBeforeBase(t *testing.T) {
	dec := NewStateful(NewDelta())
	_, err := dec.Decode(StatefulBlock{Mode: ModeResidual, SizeBits: 100, Payload: make([]byte, 16)})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if dec.Blocks() != 0 {
		t.Fatalf("failed decode advanced the stream state")
	}
}

// TestStatefulDecodeCorrupt covers the malformed-payload paths of every
// mode: the decoder must reject and must not advance.
func TestStatefulDecodeCorrupt(t *testing.T) {
	cases := []StatefulBlock{
		{Mode: ModeStored, SizeBits: 8 * BlockSize, Payload: make([]byte, 10)},
		{Mode: ModeStored, SizeBits: 7, Payload: make([]byte, BlockSize)},
		{Mode: ModeDirect, SizeBits: 40, Payload: nil},
		{Mode: BlockMode(42), SizeBits: 8, Payload: make([]byte, 8)},
	}
	for i, sb := range cases {
		dec := NewStateful(NewFPC())
		if _, err := dec.Decode(sb); err == nil {
			t.Fatalf("case %d: corrupt block decoded cleanly", i)
		}
		if dec.Blocks() != 0 {
			t.Fatalf("case %d: failed decode advanced the stream state", i)
		}
	}
}

// TestStatefulReset forgets the base: the first post-Reset encode must
// not emit a residual, and a mirrored Reset keeps the pair in sync.
func TestStatefulReset(t *testing.T) {
	enc, dec := NewStateful(NewDelta()), NewStateful(NewDelta())
	blocks := streamBlocks(10)
	for _, b := range blocks {
		if _, err := dec.Decode(enc.Encode(b)); err != nil {
			t.Fatal(err)
		}
	}
	enc.Reset()
	dec.Reset()
	if enc.Blocks() != 0 {
		t.Fatalf("Reset kept the block count")
	}
	sb := enc.Encode(blocks[1])
	if sb.Mode == ModeResidual {
		t.Fatalf("first post-Reset block used the forgotten base")
	}
	got, err := dec.Decode(sb)
	if err != nil || !bytes.Equal(got, blocks[1]) {
		t.Fatalf("post-Reset round trip failed: %v", err)
	}
}

// TestStatefulTrainableMirrors runs enough blocks through SC²/FVC to
// cross several retrain boundaries; the decode side must track the
// encoder's table rebuilds exactly (any divergence breaks round-trips
// at the first post-retrain block, which the loop would catch).
func TestStatefulTrainableMirrors(t *testing.T) {
	for _, name := range []string{"sc2", "fvc"} {
		t.Run(name, func(t *testing.T) {
			ea, _ := New(name)
			da, _ := New(name)
			enc, dec := NewStateful(ea), NewStateful(da)
			compressed := 0
			for i, b := range streamBlocks(3 * retrainEvery) {
				sb := enc.Encode(b)
				if sb.Mode != ModeStored {
					compressed++
				}
				got, err := dec.Decode(sb)
				if err != nil || !bytes.Equal(got, b) {
					t.Fatalf("block %d: %v", i, err)
				}
			}
			if enc.seen <= retrainEvery {
				t.Fatalf("did not cross a retrain boundary")
			}
			if compressed == 0 {
				t.Fatalf("%s never compressed after online training", name)
			}
		})
	}
}

// TestStatefulProbeParity: the probe fast path must pick the same mode
// and produce the same bytes as a scalar re-derivation via Compress.
func TestStatefulProbeParity(t *testing.T) {
	for _, name := range []string{"delta", "bdi", "fpc", "sfpc", "sc2"} {
		t.Run(name, func(t *testing.T) {
			alg, _ := New(name)
			enc := NewStateful(alg)
			var base [BlockSize]byte
			for i, b := range streamBlocks(200) {
				// Scalar reference on the state BEFORE Encode advances it.
				wantMode, wantBits := ModeStored, 8*BlockSize
				var want Compressed
				if c := alg.Compress(b); !c.Stored && c.SizeBits < wantBits {
					wantMode, wantBits, want = ModeDirect, c.SizeBits, c
				}
				if i > 0 {
					resid := make([]byte, BlockSize)
					for j := range resid {
						resid[j] = b[j] ^ base[j]
					}
					if c := alg.Compress(resid); !c.Stored && c.SizeBits < wantBits {
						wantMode, wantBits, want = ModeResidual, c.SizeBits, c
					}
				}
				sb := enc.Encode(b)
				if sb.Mode != wantMode || sb.SizeBits != wantBits {
					t.Fatalf("block %d: got (mode %d, %d bits), want (mode %d, %d bits)",
						i, sb.Mode, sb.SizeBits, wantMode, wantBits)
				}
				if wantMode != ModeStored && !bytes.Equal(sb.Payload, want.Payload) {
					t.Fatalf("block %d: payload differs from scalar reference", i)
				}
				copy(base[:], b)
			}
		})
	}
}
