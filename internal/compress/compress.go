// Package compress implements the cache-block compression algorithms
// evaluated by the DISCO paper (DAC 2016): the paper's delta-based scheme
// (Section 3.2, Fig. 4), BΔI, FPC, a simplified FPC (SFPC), C-Pack and a
// Huffman-based statistical compressor standing in for SC². All algorithms
// operate on fixed 64-byte cache blocks and report hardware-style
// compressed sizes plus the per-operation latencies of Table 1.
//
// Every algorithm is a real, round-trippable codec — Decompress(Compress(b))
// always reproduces b — so the same package serves the functional simulator
// and the compression-ratio experiments.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the cache-line size in bytes used throughout the paper
// (Table 2: 64 B lines).
const BlockSize = 64

// WordSize is the 32-bit word granularity used by FPC/SFPC/C-Pack.
const WordSize = 4

// FlitBytes is the 64-bit flit payload granularity used by the paper's
// delta compressor (Fig. 4: 8-byte base flit, 1-byte deltas).
const FlitBytes = 8

// ErrCorrupt is returned by Decompress when the encoded payload cannot be
// decoded back into a block.
var ErrCorrupt = errors.New("compress: corrupt compressed payload")

// Compressed is the result of compressing one cache block. SizeBits is the
// hardware storage cost of the encoding, including per-block metadata
// (pattern headers, base-select bits, ...). When no encoding beats the raw
// block the algorithm returns a stored block: Stored is true and SizeBits
// is exactly 8*BlockSize.
type Compressed struct {
	Alg      string // algorithm name, for diagnostics
	SizeBits int    // encoded size in bits, metadata included
	Stored   bool   // true when the block is kept uncompressed
	Payload  []byte // decoder input (implementation-defined layout)
}

// SizeBytes returns the encoded size rounded up to whole bytes, the
// granularity at which caches allocate segments and NIs build flits.
func (c Compressed) SizeBytes() int { return (c.SizeBits + 7) / 8 }

// Ratio returns the compression ratio BlockSize / SizeBytes (≥ 1 is a win).
func (c Compressed) Ratio() float64 { return float64(BlockSize) / float64(c.SizeBytes()) }

// Algorithm is one block compressor. Latencies are in router/cache cycles
// and follow Table 1 of the paper.
type Algorithm interface {
	// Name returns the scheme's short name ("delta", "fpc", ...).
	Name() string
	// CompLatency is the pipeline latency of compressing one block.
	CompLatency() int
	// DecompLatency is the pipeline latency of decompressing one block.
	DecompLatency() int
	// Compress encodes a BlockSize-byte block. It panics if len(block)
	// differs from BlockSize (caller bug, not data-dependent).
	Compress(block []byte) Compressed
	// Decompress decodes a Compressed produced by the same algorithm.
	Decompress(c Compressed) ([]byte, error)
}

// checkBlock panics unless block is exactly one cache line.
func checkBlock(block []byte) {
	if len(block) != BlockSize {
		panic(fmt.Sprintf("compress: block must be %d bytes, got %d", BlockSize, len(block)))
	}
}

// stored builds the fall-back encoding that keeps the block raw.
func stored(alg string, block []byte) Compressed {
	p := make([]byte, BlockSize)
	copy(p, block)
	return Compressed{Alg: alg, SizeBits: 8 * BlockSize, Stored: true, Payload: p}
}

// storedRoundTrip decodes a stored block; shared by all algorithms.
func storedRoundTrip(c Compressed) ([]byte, error) {
	if len(c.Payload) != BlockSize {
		return nil, ErrCorrupt
	}
	out := make([]byte, BlockSize)
	copy(out, c.Payload)
	return out, nil
}

// words32 splits a block into 16 little-endian 32-bit words.
func words32(block []byte) [BlockSize / WordSize]uint32 {
	var w [BlockSize / WordSize]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(block[i*WordSize:])
	}
	return w
}

// words64 splits a block into 8 little-endian 64-bit flit payloads.
func words64(block []byte) [BlockSize / FlitBytes]uint64 {
	var w [BlockSize / FlitBytes]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(block[i*FlitBytes:])
	}
	return w
}
