package compress

import (
	"encoding/binary"
	"sort"
)

// FVC implements frequent-value compression, the scheme the paper's NoC
// compression baselines build on (references [7][8]: Jin et al., MICRO
// 2008; Zhou et al., ASP-DAC 2009): a small table of the most frequent
// 32-bit values, maintained from observed traffic, encodes a matching
// word as a 1-bit flag plus a table index, and a non-matching word as the
// flag plus the raw word. Unlike SC² there is no entropy coding — the
// index is fixed-width — so the hardware is tiny and fast, at the cost of
// compression ratio.
//
// The table adapts online: Observe folds traffic in, Retrain rebuilds the
// table (the hardware variants age entries continuously; periodic rebuild
// is the deterministic equivalent).
type FVC struct {
	values   []uint32
	valueIdx map[uint32]int
	freq     map[uint32]uint64
	trained  bool
}

// fvcTableSize is the frequent-value table depth (32 entries, 5-bit
// index, as in the MICRO'08 design space).
const fvcTableSize = 32

// fvcIndexBits is the per-match index width.
const fvcIndexBits = 5

// NewFVC returns an untrained frequent-value compressor.
func NewFVC() *FVC {
	return &FVC{freq: make(map[uint32]uint64), valueIdx: make(map[uint32]int)}
}

// Name implements Algorithm.
func (*FVC) Name() string { return "fvc" }

// CompLatency implements Algorithm (single table lookup per word pair).
func (*FVC) CompLatency() int { return 2 }

// DecompLatency implements Algorithm (index lookup).
func (*FVC) DecompLatency() int { return 2 }

// Observe folds one block into the value statistics.
func (f *FVC) Observe(block []byte) {
	for i := 0; i+WordSize <= len(block); i += WordSize {
		f.freq[binary.LittleEndian.Uint32(block[i:])]++
	}
}

// Retrain rebuilds the frequent-value table from the statistics.
func (f *FVC) Retrain() {
	type vf struct {
		v uint32
		n uint64
	}
	all := make([]vf, 0, len(f.freq))
	for v, n := range f.freq {
		all = append(all, vf{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})
	if len(all) > fvcTableSize {
		all = all[:fvcTableSize]
	}
	f.values = f.values[:0]
	f.valueIdx = make(map[uint32]int, len(all))
	for i, e := range all {
		f.values = append(f.values, e.v)
		f.valueIdx[e.v] = i
	}
	f.trained = true
}

// Train is Observe over samples followed by Retrain.
func (f *FVC) Train(samples [][]byte) {
	for _, b := range samples {
		f.Observe(b)
	}
	f.Retrain()
}

// Trained reports whether the table has been built.
func (f *FVC) Trained() bool { return f.trained }

// Compress implements Algorithm.
func (f *FVC) Compress(block []byte) Compressed {
	checkBlock(block)
	if !f.trained {
		return stored(f.Name(), block)
	}
	var w bitWriter
	for i := 0; i < BlockSize; i += WordSize {
		word := binary.LittleEndian.Uint32(block[i:])
		if idx, ok := f.valueIdx[word]; ok {
			w.writeBits(1, 1)
			w.writeBits(uint64(idx), fvcIndexBits)
		} else {
			w.writeBits(0, 1)
			w.writeBits(uint64(word), 32)
		}
	}
	if w.bits() >= 8*BlockSize {
		return stored(f.Name(), block)
	}
	return Compressed{Alg: f.Name(), SizeBits: w.bits(), Payload: w.bytes()}
}

// Decompress implements Algorithm.
func (f *FVC) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if !f.trained {
		return nil, ErrCorrupt
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	for i := 0; i < BlockSize/WordSize; i++ {
		flag, ok := r.readBit()
		if !ok {
			return nil, ErrCorrupt
		}
		if flag == 1 {
			idx, ok := r.readBits(fvcIndexBits)
			if !ok || int(idx) >= len(f.values) {
				return nil, ErrCorrupt
			}
			out = appendWord(out, f.values[idx])
			continue
		}
		v, ok := r.readBits(32)
		if !ok {
			return nil, ErrCorrupt
		}
		out = appendWord(out, uint32(v))
	}
	return out, nil
}
