package compress

import (
	"bytes"
	"math/rand"
	"testing"
)

// refWriteBits is the original bit-at-a-time packer, kept as the format
// oracle for the batched writeBits fast path.
func refWriteBits(buf []byte, nbit int, v uint64, n int) ([]byte, int) {
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if nbit%8 == 0 {
			buf = append(buf, 0)
		}
		if bit != 0 {
			buf[nbit/8] |= 0x80 >> uint(nbit%8)
		}
		nbit++
	}
	return buf, nbit
}

func TestWriteBitsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var w bitWriter
		var ref []byte
		refBits := 0
		for field := 0; field < 40; field++ {
			n := rng.Intn(65)
			v := rng.Uint64()
			w.writeBits(v, n)
			ref, refBits = refWriteBits(ref, refBits, v, n)
		}
		if w.bits() != refBits {
			t.Fatalf("trial %d: bits = %d, want %d", trial, w.bits(), refBits)
		}
		if !bytes.Equal(w.bytes(), ref) {
			t.Fatalf("trial %d: buf = %x, want %x", trial, w.bytes(), ref)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		type field struct {
			v uint64
			n int
		}
		var fields []field
		var w bitWriter
		for i := 0; i < 50; i++ {
			n := rng.Intn(65)
			v := rng.Uint64()
			if n < 64 {
				v &= 1<<uint(n) - 1
			}
			fields = append(fields, field{v, n})
			w.writeBits(v, n)
		}
		r := bitReader{buf: w.bytes()}
		for i, f := range fields {
			got, ok := r.readBits(f.n)
			if !ok {
				t.Fatalf("trial %d field %d: underrun", trial, i)
			}
			if got != f.v {
				t.Fatalf("trial %d field %d: read %#x, want %#x (width %d)", trial, i, got, f.v, f.n)
			}
		}
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("writeBits(%d) did not panic", n)
				}
			}()
			var w bitWriter
			w.writeBits(0, n)
		}()
	}
}

func TestReadBitsUnderrun(t *testing.T) {
	r := bitReader{buf: []byte{0xff}}
	if _, ok := r.readBits(9); ok {
		t.Error("readBits(9) on 1 byte should fail")
	}
	if _, ok := r.readBits(8); !ok {
		t.Error("readBits(8) on 1 byte should succeed")
	}
	if r.remaining() != 0 {
		t.Errorf("remaining = %d, want 0", r.remaining())
	}
}
