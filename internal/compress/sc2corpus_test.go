package compress

// SC2 corpus golden test: a committed corpus of sampled blocks, each
// paired with the exact Compressed output (size, stored flag, payload
// bytes) of the trained encoder AT THE TIME THE CORPUS WAS GENERATED —
// before the word-parallel kernel rewrite. The test proves the rewritten
// encoder is byte-identical on real-looking data, independently of the
// differential fuzzer. Regenerate (only when the SC2 *format* changes
// deliberately, never for a perf rewrite) with:
//
//	SC2_CORPUS_UPDATE=1 go test ./internal/compress -run TestSC2CorpusGolden
import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sc2CorpusPath = "testdata/sc2_corpus.txt"

// sc2CorpusValuePool is the deterministic 32-bit value universe the
// corpus draws from; a skewed pick makes low indices frequent so the
// trained table has both short codes and escapes.
func sc2CorpusValuePool() []uint32 {
	rng := rand.New(rand.NewSource(1729))
	pool := make([]uint32, 600)
	for i := range pool {
		pool[i] = rng.Uint32()
	}
	// Sprinkle in hardware-typical values.
	pool[0], pool[1], pool[2], pool[3] = 0, 1, 0xFFFFFFFF, 0x7F3A1234
	return pool
}

func sc2CorpusPick(rng *rand.Rand, pool []uint32) uint32 {
	f := rng.Float64()
	return pool[int(f*f*float64(len(pool)))]
}

// sc2CorpusTrainingBlocks is the deterministic training set.
func sc2CorpusTrainingBlocks() [][]byte {
	rng := rand.New(rand.NewSource(271828))
	pool := sc2CorpusValuePool()
	blocks := make([][]byte, 0, 128)
	for n := 0; n < 128; n++ {
		b := make([]byte, BlockSize)
		for i := 0; i < BlockSize; i += WordSize {
			binary.LittleEndian.PutUint32(b[i:], sc2CorpusPick(rng, pool))
		}
		blocks = append(blocks, b)
	}
	return blocks
}

// sc2CorpusSampleBlocks is the deterministic sampled-block corpus:
// mostly table hits with escape noise, plus all-zero, single-value and
// incompressible extremes (the last exercising the stored bail-out).
func sc2CorpusSampleBlocks() [][]byte {
	rng := rand.New(rand.NewSource(314159))
	pool := sc2CorpusValuePool()
	blocks := make([][]byte, 0, 96)
	for n := 0; n < 90; n++ {
		b := make([]byte, BlockSize)
		for i := 0; i < BlockSize; i += WordSize {
			v := sc2CorpusPick(rng, pool)
			if rng.Intn(5) == 0 {
				v = rng.Uint32() // likely escape
			}
			binary.LittleEndian.PutUint32(b[i:], v)
		}
		blocks = append(blocks, b)
	}
	blocks = append(blocks, make([]byte, BlockSize))
	one := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += WordSize {
		binary.LittleEndian.PutUint32(one[i:], pool[0])
	}
	blocks = append(blocks, one)
	for n := 0; n < 4; n++ {
		b := make([]byte, BlockSize)
		rng.Read(b)
		blocks = append(blocks, b)
	}
	return blocks
}

func sc2CorpusEncoder() *SC2 {
	s := NewSC2()
	s.Train(sc2CorpusTrainingBlocks())
	return s
}

func sc2CorpusLine(block []byte, c Compressed) string {
	st := 0
	if c.Stored {
		st = 1
	}
	return fmt.Sprintf("%d %d %s %s", st, c.SizeBits,
		hex.EncodeToString(block), hex.EncodeToString(c.Payload))
}

func TestSC2CorpusGolden(t *testing.T) {
	s := sc2CorpusEncoder()
	samples := sc2CorpusSampleBlocks()
	if os.Getenv("SC2_CORPUS_UPDATE") == "1" {
		var sb strings.Builder
		sb.WriteString("# stored sizeBits blockHex payloadHex — one line per sampled block.\n")
		for _, b := range samples {
			sb.WriteString(sc2CorpusLine(b, s.Compress(b)))
			sb.WriteByte('\n')
		}
		if err := os.MkdirAll(filepath.Dir(sc2CorpusPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sc2CorpusPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d corpus lines", len(samples))
		return
	}
	f, err := os.Open(sc2CorpusPath)
	if err != nil {
		t.Fatalf("open corpus (regenerate with SC2_CORPUS_UPDATE=1): %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 4 {
			t.Fatalf("corpus line %d: want 4 fields, got %d", n, len(parts))
		}
		wantStored := parts[0] == "1"
		wantBits, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatalf("corpus line %d: bad size: %v", n, err)
		}
		block, err := hex.DecodeString(parts[2])
		if err != nil {
			t.Fatalf("corpus line %d: bad block hex: %v", n, err)
		}
		wantPayload, err := hex.DecodeString(parts[3])
		if err != nil {
			t.Fatalf("corpus line %d: bad payload hex: %v", n, err)
		}
		if n >= len(samples) || !bytes.Equal(block, samples[n]) {
			t.Fatalf("corpus line %d: sampled block drifted from generator", n)
		}
		c := s.Compress(block)
		if c.Stored != wantStored || c.SizeBits != wantBits || !bytes.Equal(c.Payload, wantPayload) {
			t.Fatalf("corpus line %d: encoder output changed: got stored=%v size=%d payload=%x, want stored=%v size=%d payload=%x",
				n, c.Stored, c.SizeBits, c.Payload, wantStored, wantBits, wantPayload)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(samples) {
		t.Fatalf("corpus has %d lines, generator produces %d blocks", n, len(samples))
	}
}
