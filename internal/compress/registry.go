package compress

import "fmt"

// None is the identity "compressor" used by the no-compression baseline:
// every block is stored raw with zero latency.
type None struct{}

// NewNone returns the identity algorithm.
func NewNone() *None { return &None{} }

// Name implements Algorithm.
func (*None) Name() string { return "none" }

// CompLatency implements Algorithm.
func (*None) CompLatency() int { return 0 }

// DecompLatency implements Algorithm.
func (*None) DecompLatency() int { return 0 }

// Compress implements Algorithm.
func (a *None) Compress(block []byte) Compressed {
	checkBlock(block)
	return stored(a.Name(), block)
}

// Decompress implements Algorithm.
func (*None) Decompress(c Compressed) ([]byte, error) { return storedRoundTrip(c) }

// New returns a fresh instance of the named algorithm. SC² is returned
// untrained; callers that measure ratios should Train it on sampled blocks
// first, mirroring the hardware's sampling phase.
func New(name string) (Algorithm, error) {
	switch name {
	case "delta":
		return NewDelta(), nil
	case "bdi":
		return NewBDI(), nil
	case "fpc":
		return NewFPC(), nil
	case "sfpc":
		return NewSFPC(), nil
	case "cpack":
		return NewCPack(), nil
	case "sc2":
		return NewSC2(), nil
	case "fvc":
		return NewFVC(), nil
	case "none":
		return NewNone(), nil
	}
	return nil, fmt.Errorf("compress: unknown algorithm %q", name)
}

// Names lists all registered algorithms (the real compressors first).
func Names() []string {
	return []string{"delta", "bdi", "fpc", "sfpc", "cpack", "sc2", "fvc", "none"}
}

// All returns one fresh instance of every real compressor (excludes
// "none").
func All() []Algorithm {
	return []Algorithm{NewDelta(), NewBDI(), NewFPC(), NewSFPC(), NewCPack(), NewSC2(), NewFVC()}
}
