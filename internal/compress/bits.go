package compress

// bitWriter packs MSB-first bit fields into a byte slice. FPC, C-Pack and
// the Huffman (SC²) coder all emit variable-width fields, which is exactly
// what the corresponding hardware shifters do.
type bitWriter struct {
	buf  []byte
	nbit int // total bits written
}

// writeBits appends the low n bits of v, MSB first. n must be in [0, 64].
func (w *bitWriter) writeBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic("compress: writeBits width out of range")
	}
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[w.nbit/8] |= 0x80 >> uint(w.nbit%8)
		}
		w.nbit++
	}
}

// bits returns the number of bits written so far.
func (w *bitWriter) bits() int { return w.nbit }

// bytes returns the backing buffer (last byte possibly partial).
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader reads MSB-first bit fields written by bitWriter.
type bitReader struct {
	buf []byte
	pos int // bit cursor
}

// readBits reads n bits MSB-first. ok is false on underrun.
func (r *bitReader) readBits(n int) (v uint64, ok bool) {
	if n < 0 || n > 64 || r.pos+n > 8*len(r.buf) {
		return 0, false
	}
	for i := 0; i < n; i++ {
		b := r.buf[r.pos/8]
		bit := (b >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, true
}

// readBit reads a single bit.
func (r *bitReader) readBit() (uint64, bool) { return r.readBits(1) }

// remaining reports how many unread bits are left.
func (r *bitReader) remaining() int { return 8*len(r.buf) - r.pos }

// signExtend interprets the low n bits of v as a two's-complement signed
// value and widens it to 64 bits.
func signExtend(v uint64, n int) int64 {
	shift := uint(64 - n)
	return int64(v<<shift) >> shift
}

// fitsSigned reports whether x is representable as an n-bit two's
// complement value.
func fitsSigned(x int64, n int) bool {
	if n >= 64 {
		return true
	}
	lo := -(int64(1) << uint(n-1))
	hi := int64(1)<<uint(n-1) - 1
	return x >= lo && x <= hi
}
