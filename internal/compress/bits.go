package compress

// bitWriter packs MSB-first bit fields into a byte slice. FPC, C-Pack and
// the Huffman (SC²) coder all emit variable-width fields, which is exactly
// what the corresponding hardware shifters do.
type bitWriter struct {
	buf  []byte
	nbit int // total bits written
}

// writeBits appends the low n bits of v, MSB first. n must be in [0, 64].
func (w *bitWriter) writeBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic("compress: writeBits width out of range")
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	// Grow to the final byte length up front (reusing capacity), then
	// deposit the field in at most three strides: the tail of the current
	// partial byte, whole bytes, and a leading partial byte.
	need := (w.nbit + n + 7) / 8
	for len(w.buf) < need {
		//lint:ignore hotalloc every constructor preallocates buf to the worst-case BlockSize+8 capacity, so this append only extends length within it
		w.buf = append(w.buf, 0)
	}
	if rem := w.nbit % 8; rem != 0 {
		// Fill the free low bits of the current byte.
		free := 8 - rem
		take := n
		if take > free {
			take = free
		}
		w.buf[w.nbit/8] |= byte(v>>uint(n-take)) << uint(free-take)
		w.nbit += take
		n -= take
	}
	for n >= 8 {
		w.buf[w.nbit/8] = byte(v >> uint(n-8))
		w.nbit += 8
		n -= 8
	}
	if n > 0 {
		w.buf[w.nbit/8] = byte(v&(1<<uint(n)-1)) << uint(8-n)
		w.nbit += n
	}
}

// bits returns the number of bits written so far.
func (w *bitWriter) bits() int { return w.nbit }

// bytes returns the backing buffer (last byte possibly partial).
func (w *bitWriter) bytes() []byte { return w.buf }

// bitAcc is the word-parallel kernels' bit emitter: fields accumulate in
// a 64-bit register and spill whole bytes into a fixed worst-case buffer
// — no appends, no per-byte bounds growth, nothing on the heap. The
// byte layout is identical to bitWriter's (MSB-first, zero-padded final
// partial byte); bitAcc only batches the shifts. Callers must keep
// individual fields ≤ 56 bits so the accumulator (at most 7 carried
// bits) never overflows; every codec emits ≤ 35-bit fields.
type bitAcc struct {
	acc   uint64
	nacc  int // meaningful low bits of acc (< 8 after each emit)
	total int // total bits emitted
	n     int // whole bytes spilled into buf
	buf   [BlockSize + 8]byte
}

// emit appends the low nb bits of v, MSB first.
func (a *bitAcc) emit(v uint64, nb int) {
	if nb < 64 {
		v &= 1<<uint(nb) - 1
	}
	a.acc = a.acc<<uint(nb) | v
	a.nacc += nb
	a.total += nb
	for a.nacc >= 8 {
		a.nacc -= 8
		a.buf[a.n] = byte(a.acc >> uint(a.nacc))
		a.n++
	}
}

// bits returns the number of bits emitted so far.
func (a *bitAcc) bits() int { return a.total }

// bytes flushes the partial byte and returns the payload, sized exactly
// like bitWriter.bytes() for the same field sequence.
func (a *bitAcc) bytes() []byte {
	n := a.n
	if a.nacc > 0 {
		n++
	}
	out := make([]byte, n)
	copy(out, a.buf[:a.n])
	if a.nacc > 0 {
		out[a.n] = byte(a.acc&(1<<uint(a.nacc)-1)) << uint(8-a.nacc)
	}
	return out
}

// bitReader reads MSB-first bit fields written by bitWriter.
type bitReader struct {
	buf []byte
	pos int // bit cursor
}

// readBits reads n bits MSB-first. ok is false on underrun.
func (r *bitReader) readBits(n int) (v uint64, ok bool) {
	if n < 0 || n > 64 || r.pos+n > 8*len(r.buf) {
		return 0, false
	}
	// Mirror of writeBits: drain the current partial byte, then whole
	// bytes, then the high bits of a final partial byte.
	if rem := r.pos % 8; rem != 0 && n > 0 {
		avail := 8 - rem
		take := n
		if take > avail {
			take = avail
		}
		b := r.buf[r.pos/8]
		v = uint64(b>>uint(avail-take)) & (1<<uint(take) - 1)
		r.pos += take
		n -= take
	}
	for n >= 8 {
		v = v<<8 | uint64(r.buf[r.pos/8])
		r.pos += 8
		n -= 8
	}
	if n > 0 {
		v = v<<uint(n) | uint64(r.buf[r.pos/8]>>uint(8-n))
		r.pos += n
	}
	return v, true
}

// readBit reads a single bit.
func (r *bitReader) readBit() (uint64, bool) { return r.readBits(1) }

// remaining reports how many unread bits are left.
func (r *bitReader) remaining() int { return 8*len(r.buf) - r.pos }

// signExtend interprets the low n bits of v as a two's-complement signed
// value and widens it to 64 bits.
func signExtend(v uint64, n int) int64 {
	shift := uint(64 - n)
	return int64(v<<shift) >> shift
}

// fitsSigned reports whether x is representable as an n-bit two's
// complement value.
func fitsSigned(x int64, n int) bool {
	if n >= 64 {
		return true
	}
	lo := -(int64(1) << uint(n-1))
	hi := int64(1)<<uint(n-1) - 1
	return x >= lo && x <= hi
}
