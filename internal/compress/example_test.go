package compress_test

import (
	"encoding/binary"
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
)

// ExampleDelta shows the paper's delta scheme on a pointer-rich block:
// eight 8-byte values sharing a base compress into base + one-byte deltas.
func ExampleDelta() {
	block := make([]byte, compress.BlockSize)
	base := uint64(0x7F00_0000_2000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(block[i*8:], base+uint64(i)*8)
	}
	alg := compress.NewDelta()
	c := alg.Compress(block)
	fmt.Printf("%d bytes -> %d bytes (ratio %.2f)\n", compress.BlockSize, c.SizeBytes(), c.Ratio())
	round, _ := alg.Decompress(c)
	fmt.Println("lossless:", binary.LittleEndian.Uint64(round[56:]) == base+56)
	// Output:
	// 64 bytes -> 17 bytes (ratio 3.76)
	// lossless: true
}

// ExampleSC2 shows the statistical compressor's train-then-compress flow.
func ExampleSC2() {
	// The workload's blocks reuse a small set of values.
	mkBlock := func(v uint32) []byte {
		b := make([]byte, compress.BlockSize)
		for i := 0; i < compress.BlockSize; i += 4 {
			binary.LittleEndian.PutUint32(b[i:], v)
		}
		return b
	}
	s := compress.NewSC2()
	s.Train([][]byte{mkBlock(7), mkBlock(42), mkBlock(7)})
	c := s.Compress(mkBlock(7))
	fmt.Println("trained:", s.Trained())
	fmt.Println("compressed under 8 bytes:", c.SizeBytes() < 8)
	// Output:
	// trained: true
	// compressed under 8 bytes: true
}

// ExampleIncrementalDelta shows separate compression of a wormhole packet
// arriving in two fragments (Section 3.3A).
func ExampleIncrementalDelta() {
	flits := []uint64{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	inc := compress.NewIncrementalDelta()
	inc.Absorb(flits[:3]) // first fragment arrives
	inc.Absorb(flits[3:]) // rest of the packet
	fmt.Println("done:", inc.Done())
	fmt.Printf("merged: %d bits, bubble-padded: %d bits\n",
		inc.MergedSizeBits(), inc.FragmentPaddedBits())
	// Output:
	// done: true
	// merged: 129 bits, bubble-padded: 201 bits
}
