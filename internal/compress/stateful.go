package compress

// Stateful adapts a block Algorithm into a streaming codec with
// per-stream persistent state — the building block of internal/stream's
// wire protocol. The paper compresses each 64-byte block separately
// (Section 3.2), which is exactly what makes incremental state cheap:
// a stream position is fully described by (codec instance, previous
// plaintext block), so an encoder/decoder pair stays in sync as long as
// both fold the same plaintext sequence through the same rules.
//
// Per block the encoder considers three encodings and keeps the
// smallest:
//
//	ModeStored   — the raw 64 bytes (the fallback, always available)
//	ModeDirect   — the codec's encoding of the block itself
//	ModeResidual — the codec's encoding of block XOR previousBlock
//
// The residual path is the "persistent delta base": value-similar
// consecutive blocks (counters, pointers into the same heap region,
// tensor rows) XOR to near-zero residuals that the delta-family codecs
// collapse to a few bits. The base is the previous PLAINTEXT block, so
// the decoder reconstructs it for free from its own output; no side
// channel carries state.
//
// Trainable codecs (SC², FVC) are mirrored the same way: both sides
// Observe every plaintext block and Retrain at the same fixed block
// counts, so the value tables on the two ends of a stream are always
// identical when a block is encoded and when it is decoded.
type Stateful struct {
	alg   Algorithm
	pc    ProbeCompressor // non-nil when alg offers the probe fast path
	tr    Trainable       // non-nil when alg adapts online
	base  [BlockSize]byte // previous plaintext block (the delta base)
	resid [BlockSize]byte // XOR-residual scratch
	seen  uint64          // plaintext blocks folded through this side
	probe BlockProbe      // probe scratch (direct candidate)
	rprob BlockProbe      // probe scratch (residual candidate)
}

// Trainable is the online-adaptation surface of SC² and FVC: fold a
// block into the statistics, rebuild the table. Stateful drives it at
// deterministic block counts on both stream ends.
type Trainable interface {
	Observe(block []byte)
	Retrain()
}

// BlockMode selects how one streamed block was encoded.
type BlockMode uint8

const (
	// ModeStored carries the raw 64-byte block.
	ModeStored BlockMode = iota
	// ModeDirect carries the codec's encoding of the block itself.
	ModeDirect
	// ModeResidual carries the codec's encoding of block XOR base.
	ModeResidual
)

// retrainEvery is the fixed cadence (in plaintext blocks) at which a
// Trainable codec rebuilds its table. Both stream directions count the
// same plaintext sequence, so the rebuilds happen at the same points.
const retrainEvery = 256

// StatefulBlock is one encoded streamed block: the mode tag plus the
// codec payload. SizeBits is the hardware-style encoded size
// (ModeStored: exactly 8*BlockSize); the wire layer transmits it so the
// decoder can rebuild the exact Compressed the codec produced.
type StatefulBlock struct {
	Mode     BlockMode
	SizeBits int
	Payload  []byte
}

// NewStateful wraps alg with per-stream persistent state. Each stream
// direction needs its own Stateful (and its own alg instance for
// trainable codecs — the table is part of the stream state).
func NewStateful(alg Algorithm) *Stateful {
	s := &Stateful{alg: alg}
	s.pc, _ = alg.(ProbeCompressor)
	s.tr, _ = alg.(Trainable)
	return s
}

// Alg returns the wrapped block algorithm.
func (s *Stateful) Alg() Algorithm { return s.alg }

// Blocks reports how many plaintext blocks this side has folded in.
func (s *Stateful) Blocks() uint64 { return s.seen }

// Reset forgets the delta base and the block count, returning the
// stream state to its initial position (the codec's trained table, if
// any, is NOT reset — resetting tables would need a mirrored rule the
// wire protocol does not define).
func (s *Stateful) Reset() {
	s.base = [BlockSize]byte{}
	s.seen = 0
}

// advance folds one plaintext block into the shared stream state; the
// exact same call runs on the encode and the decode side.
func (s *Stateful) advance(block []byte) {
	copy(s.base[:], block)
	s.seen++
	if s.tr != nil {
		s.tr.Observe(block)
		if s.seen%retrainEvery == 0 {
			s.tr.Retrain()
		}
	}
}

// Encode compresses one BlockSize-byte block against the persistent
// stream state and advances it. It panics if len(block) != BlockSize
// (caller bug, mirroring Algorithm.Compress).
func (s *Stateful) Encode(block []byte) StatefulBlock {
	checkBlock(block)
	hasBase := s.seen > 0
	if hasBase {
		for i := range s.resid {
			s.resid[i] = block[i] ^ s.base[i]
		}
	}

	mode := ModeStored
	var best Compressed
	bestBits := 8 * BlockSize
	if s.pc != nil {
		// Probe fast path: exact candidate sizes without encoding, then
		// one CompressFromProbe for the winner.
		ProbeInto(&s.probe, block)
		dBits, dOK := s.pc.ProbeSizeBits(&s.probe)
		rBits, rOK := 0, false
		if hasBase {
			ProbeInto(&s.rprob, s.resid[:])
			rBits, rOK = s.pc.ProbeSizeBits(&s.rprob)
		}
		// Strictly-smaller wins; ties prefer direct (no base coupling).
		if dOK && dBits < bestBits {
			mode, bestBits = ModeDirect, dBits
		}
		if rOK && rBits < bestBits {
			mode, bestBits = ModeResidual, rBits
		}
		switch mode {
		case ModeDirect:
			best = s.pc.CompressFromProbe(block, &s.probe)
		case ModeResidual:
			best = s.pc.CompressFromProbe(s.resid[:], &s.rprob)
		}
	} else {
		if c := s.alg.Compress(block); !c.Stored && c.SizeBits < bestBits {
			mode, bestBits, best = ModeDirect, c.SizeBits, c
		}
		if hasBase {
			if c := s.alg.Compress(s.resid[:]); !c.Stored && c.SizeBits < bestBits {
				mode, bestBits, best = ModeResidual, c.SizeBits, c
			}
		}
	}

	out := StatefulBlock{Mode: mode, SizeBits: bestBits}
	if mode == ModeStored {
		out.Payload = make([]byte, BlockSize)
		copy(out.Payload, block)
	} else {
		out.Payload = best.Payload
	}
	s.advance(block)
	return out
}

// Decode reverses Encode and advances the stream state. A
// ModeResidual block arriving before any base exists, or a payload the
// codec rejects, returns an error wrapping ErrCorrupt; the stream state
// is NOT advanced on error (the connection is already broken — the
// caller must tear it down, not resynchronize).
func (s *Stateful) Decode(b StatefulBlock) ([]byte, error) {
	switch b.Mode {
	case ModeStored:
		if len(b.Payload) != BlockSize || b.SizeBits != 8*BlockSize {
			return nil, ErrCorrupt
		}
		out := make([]byte, BlockSize)
		copy(out, b.Payload)
		s.advance(out)
		return out, nil

	case ModeDirect:
		out, err := s.alg.Decompress(Compressed{
			Alg: s.alg.Name(), SizeBits: b.SizeBits, Payload: b.Payload,
		})
		if err != nil {
			return nil, err
		}
		s.advance(out)
		return out, nil

	case ModeResidual:
		if s.seen == 0 {
			return nil, ErrCorrupt
		}
		resid, err := s.alg.Decompress(Compressed{
			Alg: s.alg.Name(), SizeBits: b.SizeBits, Payload: b.Payload,
		})
		if err != nil {
			return nil, err
		}
		if len(resid) != BlockSize {
			return nil, ErrCorrupt
		}
		out := make([]byte, BlockSize)
		for i := range out {
			out[i] = resid[i] ^ s.base[i]
		}
		s.advance(out)
		return out, nil
	}
	return nil, ErrCorrupt
}
