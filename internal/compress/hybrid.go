package compress

import (
	"fmt"
	"strings"
)

// Hybrid runs several compressor units in parallel and keeps the smallest
// encoding — the generalization of Fig. 4's "multiple compression units"
// plus "compressor selection logic" to heterogeneous schemes. The
// selected unit's index is recorded in a small per-block tag so the
// decompressor can dispatch.
//
// Latency is the worst unit's latency (the units run in parallel; the
// selection mux adds nothing at cycle granularity).
type Hybrid struct {
	units []Algorithm
	name  string
}

// NewHybrid combines the given units. It panics on an empty list or on
// nested hybrids (caller bug).
func NewHybrid(units ...Algorithm) *Hybrid {
	if len(units) == 0 {
		panic("compress: hybrid needs at least one unit")
	}
	names := make([]string, len(units))
	for i, u := range units {
		if _, ok := u.(*Hybrid); ok {
			panic("compress: nested hybrid")
		}
		names[i] = u.Name()
	}
	return &Hybrid{units: units, name: "hybrid(" + strings.Join(names, "+") + ")"}
}

// Name implements Algorithm.
func (h *Hybrid) Name() string { return h.name }

// CompLatency implements Algorithm: the slowest parallel unit.
func (h *Hybrid) CompLatency() int {
	m := 0
	for _, u := range h.units {
		if u.CompLatency() > m {
			m = u.CompLatency()
		}
	}
	return m
}

// DecompLatency implements Algorithm: dispatch costs nothing beyond the
// selected unit, but the engine must be provisioned for the slowest.
func (h *Hybrid) DecompLatency() int {
	m := 0
	for _, u := range h.units {
		if u.DecompLatency() > m {
			m = u.DecompLatency()
		}
	}
	return m
}

// hybridTagBits is the per-block unit-select tag.
const hybridTagBits = 3

// Compress implements Algorithm: the fused compress-probe. One shared
// scan (Probe) feeds every probe-aware unit, which answers "cannot win"
// or its exact compressed size without encoding anything; only units
// without a probe path run their full encoder. The winner — selected by
// the same strictly-smallest-size, earliest-unit-wins-ties rule as the
// old run-everything loop, which FuzzKernelEquivalence pins — is then
// encoded once from the precomputed facts. N full encodes become one
// scan plus (usually) one encode.
func (h *Hybrid) Compress(block []byte) Compressed {
	checkBlock(block)
	var p BlockProbe
	ProbeInto(&p, block)
	best := -1
	bestBits := 0
	bestFull := -1 // index of the winning fallback unit, if any
	var bestC Compressed
	for i, u := range h.units {
		if pc, ok := u.(ProbeCompressor); ok {
			bits, feasible := pc.ProbeSizeBits(&p)
			if feasible && (best < 0 || bits < bestBits) {
				best, bestBits, bestFull = i, bits, -1
			}
			continue
		}
		c := u.Compress(block)
		if c.Stored {
			continue
		}
		if best < 0 || c.SizeBits < bestBits {
			best, bestBits, bestFull, bestC = i, c.SizeBits, i, c
		}
	}
	if best < 0 || bestBits+hybridTagBits >= 8*BlockSize {
		return stored(h.name, block)
	}
	if bestFull < 0 {
		bestC = h.units[best].(ProbeCompressor).CompressFromProbe(block, &p)
	}
	// Tag + payload in one allocation (the old append([]byte{tag}, ...)
	// allocated the 1-byte literal and then again for the copy).
	payload := make([]byte, 1+len(bestC.Payload))
	payload[0] = byte(best)
	copy(payload[1:], bestC.Payload)
	return Compressed{
		Alg:      h.name,
		SizeBits: bestC.SizeBits + hybridTagBits,
		Stored:   bestC.Stored,
		Payload:  payload,
	}
}

// Decompress implements Algorithm.
func (h *Hybrid) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if len(c.Payload) < 1 {
		return nil, ErrCorrupt
	}
	idx := int(c.Payload[0])
	if idx >= len(h.units) {
		return nil, fmt.Errorf("compress: hybrid tag %d out of range: %w", idx, ErrCorrupt)
	}
	inner := Compressed{
		Alg:      h.units[idx].Name(),
		SizeBits: c.SizeBits - hybridTagBits,
		Payload:  c.Payload[1:],
	}
	return h.units[idx].Decompress(inner)
}
