package compress

import (
	"container/heap"
	"encoding/binary"
	"sort"
)

// SC2 stands in for the SC² statistical compression cache (Arelakis &
// Stenström, ISCA 2014, the paper's reference [3]). Value statistics are
// sampled from the running workload, a canonical Huffman code is built
// over the most frequent 32-bit values plus an escape symbol, and blocks
// are encoded word by word with that shared code — infrequent words are
// emitted as escape + raw 32 bits. The code table lives in dedicated
// hardware shared by all blocks, so per-block metadata is tiny; the price
// is the longest de/compression latency of Table 1 (comp 6 cycles,
// decomp 8–14 cycles) and the need for a training phase.
//
// An untrained SC2 has an empty value table and therefore stores blocks
// raw; call Train (or Observe + Retrain) before measuring ratios,
// mirroring the sampling phase of the real design.
type SC2 struct {
	values []uint32          // frequent-value table (escape excluded)
	codes  []huffCode        // per symbol; escape is the last entry
	freq   map[uint32]uint64 // accumulated sample statistics
	// Open-addressing value -> packed-codeword table (kernel hot path):
	// power-of-two slot count at ≤0.5 load, multiplicative hash to the
	// top bits, linear probing. lookupCodes[i] packs the canonical
	// codeword as bits<<5|len (len ≥ 1, so 0 marks an empty slot);
	// lookupKeys[i] is only meaningful when its code slot is occupied.
	lookupKeys  []uint32
	lookupCodes []uint32
	lookupShift uint32
	decoder     huffDecoder
	trained     bool
	// DeepDecomp selects the 14-cycle worst-case decompression latency of
	// Table 1 instead of the common-case 8 cycles.
	DeepDecomp bool
}

// huffCode is one canonical Huffman codeword.
type huffCode struct {
	bits uint32
	len  int
}

// sc2TableSize is the frequent-value table capacity (4095 values + escape
// fit a 12-bit symbol space; the SC² hardware proposal uses multi-thousand
// entry code tables).
const sc2TableSize = 4096

// sc2MaxCodeLen caps codeword length, as the hardware decode pipeline does.
const sc2MaxCodeLen = 20

// sc2HeaderBits is the per-block metadata (compressed-size field consulted
// by the segment allocator).
const sc2HeaderBits = 8

// NewSC2 returns an untrained SC² compressor.
func NewSC2() *SC2 {
	return &SC2{freq: make(map[uint32]uint64)}
}

// Name implements Algorithm.
func (*SC2) Name() string { return "sc2" }

// CompLatency implements Algorithm (Table 1: 6 cycles).
func (*SC2) CompLatency() int { return 6 }

// DecompLatency implements Algorithm (Table 1: 8 or 14 cycles).
func (s *SC2) DecompLatency() int {
	if s.DeepDecomp {
		return 14
	}
	return 8
}

// Observe folds one block into the sampling statistics without
// compressing it. Call Retrain afterwards to rebuild the code.
func (s *SC2) Observe(block []byte) {
	for i := 0; i+WordSize <= len(block); i += WordSize {
		s.freq[binary.LittleEndian.Uint32(block[i:])]++
	}
}

// Retrain rebuilds the value table and canonical Huffman code from the
// accumulated statistics.
func (s *SC2) Retrain() {
	type vf struct {
		v uint32
		f uint64
	}
	all := make([]vf, 0, len(s.freq))
	var total uint64
	for v, f := range s.freq {
		all = append(all, vf{v, f})
		total += f
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].v < all[j].v
	})
	if len(all) > sc2TableSize-1 {
		all = all[:sc2TableSize-1]
	}
	s.values = s.values[:0]
	freqs := make([]uint64, len(all)+1)
	var covered uint64
	for _, e := range all {
		s.values = append(s.values, e.v)
		freqs[len(s.values)-1] = e.f + 1
		covered += e.f
	}
	freqs[len(all)] = total - covered + 1 // escape
	lens := huffLengths(freqs, sc2MaxCodeLen)
	s.codes = canonicalAssign(lens)
	s.decoder.build(s.codes)
	s.buildLookup()
	s.trained = true
}

// sc2HashMul is the multiplicative-hash constant (2^32/φ, Knuth).
const sc2HashMul = 0x9E3779B1

// buildLookup (re)builds the open-addressing encode table from the
// trained value set and codeword assignment.
func (s *SC2) buildLookup() {
	size := 16
	for size < 2*len(s.values) {
		size <<= 1
	}
	log2 := 0
	for 1<<uint(log2) < size {
		log2++
	}
	s.lookupKeys = make([]uint32, size)
	s.lookupCodes = make([]uint32, size)
	s.lookupShift = uint32(32 - log2)
	mask := uint32(size - 1)
	for i, v := range s.values {
		c := s.codes[i]
		packed := uint32(c.bits)<<5 | uint32(c.len)
		slot := (v * sc2HashMul) >> s.lookupShift
		for s.lookupCodes[slot] != 0 {
			slot = (slot + 1) & mask
		}
		s.lookupKeys[slot] = v
		s.lookupCodes[slot] = packed
	}
}

// Train is Observe over a sample set followed by Retrain.
func (s *SC2) Train(samples [][]byte) {
	for _, b := range samples {
		s.Observe(b)
	}
	s.Retrain()
}

// Trained reports whether a code has been built from real statistics.
func (s *SC2) Trained() bool { return s.trained }

// escapeSym is the escape's symbol index.
func (s *SC2) escapeSym() int { return len(s.values) }

// lookup returns the packed codeword for a table value, 0 on a miss
// (escape). One multiply-hash plus a near-always-length-1 linear probe
// replaces the old map[uint32]int hot-path lookup.
func (s *SC2) lookup(word uint32) uint32 {
	keys, codes := s.lookupKeys, s.lookupCodes
	mask := uint32(len(codes) - 1)
	i := (word * sc2HashMul) >> s.lookupShift
	for {
		c := codes[i]
		if c == 0 || keys[i] == word {
			return c
		}
		i = (i + 1) & mask
	}
}

// Compress implements Algorithm. The word-parallel kernel path: one
// block load, one open-addressed table lookup per word, batched MSB-
// first emission through a register accumulator. Bit format and the
// per-word stored bail-out are unchanged from the scalar encoder (the
// written bits grow monotonically, so checking after each word's
// emission is exactly the old per-word check).
func (s *SC2) Compress(block []byte) Compressed {
	checkBlock(block)
	if !s.trained {
		return stored(s.Name(), block)
	}
	ws := words32(block)
	esc := s.codes[s.escapeSym()]
	escBits, escLen := uint64(esc.bits), esc.len
	var a bitAcc
	for _, word := range ws {
		if c := s.lookup(word); c != 0 {
			a.emit(uint64(c>>5), int(c&31))
		} else {
			a.emit(escBits, escLen)
			a.emit(uint64(word), 32)
		}
		if a.bits()+sc2HeaderBits >= 8*BlockSize {
			return stored(s.Name(), block)
		}
	}
	return Compressed{Alg: s.Name(), SizeBits: a.bits() + sc2HeaderBits, Payload: a.bytes()}
}

// fillProbe caches this instance's per-word codewords and the exact
// compressed size in the probe (tagged by owner, so a probe shared
// across Hybrid units never leaks another instance's codes).
func (s *SC2) fillProbe(p *BlockProbe) {
	total := 0
	escLen := s.codes[s.escapeSym()].len
	for i, word := range p.Words {
		c := s.lookup(word)
		p.sc2Codes[i] = c
		if c != 0 {
			total += int(c & 31)
		} else {
			total += escLen + 32
		}
	}
	p.sc2Bits = total + sc2HeaderBits
	p.sc2Stored = p.sc2Bits >= 8*BlockSize
	p.sc2Owner = s
}

// ProbeSizeBits implements ProbeCompressor.
func (s *SC2) ProbeSizeBits(p *BlockProbe) (int, bool) {
	if !s.trained {
		return 0, false
	}
	if p.sc2Owner != s {
		s.fillProbe(p)
	}
	if p.sc2Stored {
		return 0, false
	}
	return p.sc2Bits, true
}

// CompressFromProbe implements ProbeCompressor: emission straight from
// the cached codewords, no table lookups.
func (s *SC2) CompressFromProbe(block []byte, p *BlockProbe) Compressed {
	if !s.trained {
		return stored(s.Name(), block)
	}
	if p.sc2Owner != s {
		s.fillProbe(p)
	}
	if p.sc2Stored {
		return stored(s.Name(), block)
	}
	esc := s.codes[s.escapeSym()]
	escBits, escLen := uint64(esc.bits), esc.len
	var a bitAcc
	for i, c := range p.sc2Codes {
		if c != 0 {
			a.emit(uint64(c>>5), int(c&31))
		} else {
			a.emit(escBits, escLen)
			a.emit(uint64(p.Words[i]), 32)
		}
	}
	return Compressed{Alg: s.Name(), SizeBits: a.bits() + sc2HeaderBits, Payload: a.bytes()}
}

// Decompress implements Algorithm.
func (s *SC2) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if !s.trained {
		return nil, ErrCorrupt
	}
	r := bitReader{buf: c.Payload}
	out := make([]byte, 0, BlockSize)
	for i := 0; i < BlockSize/WordSize; i++ {
		sym, ok := s.decoder.decode(&r)
		if !ok {
			return nil, ErrCorrupt
		}
		if sym == s.escapeSym() {
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(v))
			continue
		}
		if sym > len(s.values) {
			return nil, ErrCorrupt
		}
		out = appendWord(out, s.values[sym])
	}
	return out, nil
}

// --- canonical Huffman machinery -------------------------------------------

// huffNode is a Huffman-tree work item.
type huffNode struct {
	weight uint64
	sym    int // -1 for internal
	left   int
	right  int
}

// huffHeap orders node-arena indices by weight (ties by index, for
// determinism).
type huffHeap struct {
	arena *[]huffNode
	idx   []int
}

func (h huffHeap) Len() int { return len(h.idx) }
func (h huffHeap) Less(i, j int) bool {
	a, b := (*h.arena)[h.idx[i]], (*h.arena)[h.idx[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return h.idx[i] < h.idx[j]
}
func (h huffHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *huffHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *huffHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// huffLengths computes code lengths for all symbols, iteratively
// flattening the frequency distribution until the longest code fits in
// maxLen (the standard hardware-friendly length-limiting trick).
func huffLengths(freq []uint64, maxLen int) []int {
	f := append([]uint64(nil), freq...)
	for {
		lens := buildLengths(f)
		maxSeen := 0
		for _, l := range lens {
			if l > maxSeen {
				maxSeen = l
			}
		}
		if maxSeen <= maxLen {
			return lens
		}
		for i := range f {
			f[i] = f[i]/2 + 1
		}
	}
}

// buildLengths runs plain Huffman over the symbol set.
func buildLengths(freq []uint64) []int {
	n := len(freq)
	lens := make([]int, n)
	if n == 0 {
		return lens
	}
	if n == 1 {
		lens[0] = 1
		return lens
	}
	arena := make([]huffNode, 0, 2*n)
	h := huffHeap{arena: &arena}
	for i := 0; i < n; i++ {
		arena = append(arena, huffNode{weight: freq[i], sym: i, left: -1, right: -1})
		h.idx = append(h.idx, i)
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(int)
		b := heap.Pop(&h).(int)
		arena = append(arena, huffNode{weight: arena[a].weight + arena[b].weight, sym: -1, left: a, right: b})
		heap.Push(&h, len(arena)-1)
	}
	root := h.idx[0]
	var walk func(node, depth int)
	walk = func(node, depth int) {
		nd := arena[node]
		if nd.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lens[nd.sym] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)
	return lens
}

// canonicalAssign turns code lengths into canonical codewords.
func canonicalAssign(lens []int) []huffCode {
	n := len(lens)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if lens[order[a]] != lens[order[b]] {
			return lens[order[a]] < lens[order[b]]
		}
		return order[a] < order[b]
	})
	codes := make([]huffCode, n)
	code := uint32(0)
	prevLen := 0
	for _, sym := range order {
		l := lens[sym]
		if prevLen != 0 {
			code = (code + 1) << uint(l-prevLen)
		}
		codes[sym] = huffCode{bits: code, len: l}
		prevLen = l
	}
	return codes
}

// huffDecoder decodes canonical codes by length-first search.
type huffDecoder struct {
	firstCode [sc2MaxCodeLen + 1]uint32
	firstIdx  [sc2MaxCodeLen + 1]int
	count     [sc2MaxCodeLen + 1]int
	symbols   []int
}

// build derives decode tables from the codeword set.
func (d *huffDecoder) build(codes []huffCode) {
	*d = huffDecoder{symbols: make([]int, 0, len(codes))}
	type entry struct {
		sym  int
		code huffCode
	}
	all := make([]entry, 0, len(codes))
	for s, c := range codes {
		all = append(all, entry{s, c})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].code.len != all[b].code.len {
			return all[a].code.len < all[b].code.len
		}
		return all[a].code.bits < all[b].code.bits
	})
	for l := 1; l <= sc2MaxCodeLen; l++ {
		d.firstIdx[l] = len(d.symbols)
		first := true
		for _, e := range all {
			if e.code.len != l {
				continue
			}
			if first {
				d.firstCode[l] = e.code.bits
				first = false
			}
			d.symbols = append(d.symbols, e.sym)
			d.count[l]++
		}
	}
}

// decode consumes one codeword from r.
func (d *huffDecoder) decode(r *bitReader) (int, bool) {
	var code uint32
	for l := 1; l <= sc2MaxCodeLen; l++ {
		b, ok := r.readBit()
		if !ok {
			return 0, false
		}
		code = code<<1 | uint32(b)
		if d.count[l] > 0 {
			off := int(code) - int(d.firstCode[l])
			if off >= 0 && off < d.count[l] {
				return d.symbols[d.firstIdx[l]+off], true
			}
		}
	}
	return 0, false
}
