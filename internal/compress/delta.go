package compress

import (
	"encoding/binary"
	"math/bits"
)

// Delta implements the paper's delta-based compressor (Section 3.2,
// Fig. 4): a 64-byte block is viewed as eight 8-byte flits; flit 0 is kept
// as the explicit base BF0, a zero flit is the second, implicit base, and
// each remaining flit is stored as a signed delta against whichever base
// yields a representable difference. Multiple compressor units try delta
// widths of 1, 2 and 4 bytes and the selection logic keeps the smallest
// result ("compressor selection logic", Fig. 4a).
//
// Latencies follow Table 2 of the paper: 1-cycle compression, 3-cycle
// decompression.
type Delta struct{}

// NewDelta returns the paper's delta compressor.
func NewDelta() *Delta { return &Delta{} }

// Name implements Algorithm.
func (*Delta) Name() string { return "delta" }

// CompLatency implements Algorithm (Table 2: 1 cycle).
func (*Delta) CompLatency() int { return 1 }

// DecompLatency implements Algorithm (Table 2: 3 cycles).
func (*Delta) DecompLatency() int { return 3 }

// deltaFlits is the number of delta-encoded flits (all but the base).
const deltaFlits = BlockSize/FlitBytes - 1

// deltaHeaderBits is the per-block metadata: a 2-bit delta-width code plus
// a 7-bit base-select bitmap (one bit per non-base flit).
const deltaHeaderBits = 2 + deltaFlits

// deltaSizeBits returns the encoded size for delta width d bytes.
func deltaSizeBits(d int) int { return deltaHeaderBits + 8*FlitBytes + deltaFlits*8*d }

// deltaPlan captures one feasible encoding: the delta width and which base
// each non-base flit uses (bit i set = flit i+1 uses the zero base).
type deltaPlan struct {
	width   int
	zeroSel uint8
	deltas  [deltaFlits]int64
}

// planDelta tries to encode flits with width-d deltas. ok is false when
// some flit fits neither base.
func planDelta(flits *[BlockSize / FlitBytes]uint64, d int) (deltaPlan, bool) {
	p := deltaPlan{width: d}
	bits := 8 * d
	for i := 0; i < deltaFlits; i++ {
		dBase := int64(flits[i+1] - flits[0]) // two's-complement wraparound is intended
		dZero := int64(flits[i+1])
		switch {
		case fitsSigned(dZero, bits):
			// Prefer the zero base on ties: an all-zero block then encodes
			// with an all-zero delta vector regardless of BF0.
			p.zeroSel |= 1 << uint(i)
			p.deltas[i] = dZero
		case fitsSigned(dBase, bits):
			p.deltas[i] = dBase
		default:
			return deltaPlan{}, false
		}
	}
	return p, true
}

// halfDeltaElems is the element count at 4-byte ("zero half-flit", §3.2)
// granularity.
const halfDeltaElems = BlockSize / 4

// halfDeltaSizeBits returns the encoded size of the 4-byte-granularity
// unit with width-d deltas: 2-bit unit/width code, a bit of base select
// per element, a 4-byte base, and 15 deltas.
func halfDeltaSizeBits(d int) int {
	return 2 + (halfDeltaElems - 1) + 8*4 + (halfDeltaElems-1)*8*d
}

// minDeltaWidth returns the smallest width in {1,2,4} (capped at max)
// whose signed range holds x, or 0 when none does. x fits k bits iff its
// sign-folded magnitude has fewer than k significant bits.
func minDeltaWidth(x int64, max int) int {
	l := bits.Len64(uint64(x ^ (x >> 63)))
	switch {
	case l < 8:
		return 1
	case l < 16 && max >= 2:
		return 2
	case l < 32 && max >= 4:
		return 4
	}
	return 0
}

// deltaHalfCap returns the widest half-flit delta width that could
// still beat the 8-byte unit's result (0 = don't try): the half-flit
// unit wins ties only by being strictly smaller, and req8 == 1
// (129 bits) beats even Δ1 half-flit (169 bits).
func deltaHalfCap(req8 int) int {
	switch {
	case req8 == 0 || req8 == 4:
		return 2
	case req8 == 2:
		return 1
	}
	return 0
}

// layoutDelta8 lays out the 8-byte-flit encoding at width req8:
// width, base-select bitmap, base flit, then the deltas (little-endian,
// req8 bytes each). The zero base is preferred on ties so an all-zero
// block encodes with an all-zero delta vector.
func layoutDelta8(flits *[BlockSize / FlitBytes]uint64, wZero *[deltaFlits]uint8, req8 int) []byte {
	out := make([]byte, 2+FlitBytes+deltaFlits*req8)
	binary.LittleEndian.PutUint64(out[2:], flits[0])
	var zeroSel uint8
	if req8 == 1 {
		// The dominant width: one byte per delta, no inner loop.
		for i := 0; i < deltaFlits; i++ {
			v := flits[i+1]
			if wZero[i] == 1 {
				zeroSel |= 1 << uint(i)
			} else {
				v -= flits[0]
			}
			out[2+FlitBytes+i] = byte(v)
		}
	} else {
		pos := 2 + FlitBytes
		for i := 0; i < deltaFlits; i++ {
			var v uint64
			if wZero[i] != 0 && int(wZero[i]) <= req8 {
				zeroSel |= 1 << uint(i)
				v = flits[i+1]
			} else {
				v = flits[i+1] - flits[0]
			}
			for b := 0; b < req8; b++ {
				out[pos+b] = byte(v >> uint(8*b))
			}
			pos += req8
		}
	}
	out[0], out[1] = byte(req8), zeroSel
	return out
}

// Compress implements Algorithm. The "multiple compressor units" of
// Fig. 4 are tried in parallel — 8-byte flit granularity with Δ ∈
// {1,2,4} and 4-byte half-flit granularity with Δ ∈ {1,2} — and the
// selection logic keeps the smallest encoding. The width scans are the
// kernel's (deltaWidths8/halfDeltaScan, see kernel.go): feasibility is
// monotone in the delta width, so one pass per granularity finds the
// width the unit bank would select and only the winning plan is laid
// out.
func (a *Delta) Compress(block []byte) Compressed {
	checkBlock(block)
	flits := words64(block)
	req8, wZero := deltaWidths8(&flits)
	if capHalf := deltaHalfCap(req8); capHalf != 0 {
		var ws [16]uint32
		for i, l := range flits {
			ws[2*i] = uint32(l)
			ws[2*i+1] = uint32(l >> 32)
		}
		hz, hb := halfDeltaScan(&ws)
		if reqHalf, ok := halfDeltaReq(&hz, &hb, capHalf); ok {
			return Compressed{Alg: a.Name(), SizeBits: halfDeltaSizeBits(reqHalf), Payload: layoutHalfDelta(&ws, &hz, reqHalf)}
		}
	}
	if req8 == 0 {
		return stored(a.Name(), block)
	}
	return Compressed{Alg: a.Name(), SizeBits: deltaSizeBits(req8), Payload: layoutDelta8(&flits, &wZero, req8)}
}

// ProbeSizeBits implements ProbeCompressor: the unit bank's selection
// replayed over the probe's precomputed widths.
func (a *Delta) ProbeSizeBits(p *BlockProbe) (int, bool) {
	if capHalf := deltaHalfCap(p.delta8Req); capHalf != 0 {
		if reqHalf, ok := halfDeltaReq(&p.halfWZero, &p.halfWBase, capHalf); ok {
			return halfDeltaSizeBits(reqHalf), true
		}
	}
	if p.delta8Req == 0 {
		return 0, false
	}
	return deltaSizeBits(p.delta8Req), true
}

// CompressFromProbe implements ProbeCompressor.
func (a *Delta) CompressFromProbe(block []byte, p *BlockProbe) Compressed {
	if capHalf := deltaHalfCap(p.delta8Req); capHalf != 0 {
		if reqHalf, ok := halfDeltaReq(&p.halfWZero, &p.halfWBase, capHalf); ok {
			return Compressed{Alg: a.Name(), SizeBits: halfDeltaSizeBits(reqHalf), Payload: layoutHalfDelta(&p.Words, &p.halfWZero, reqHalf)}
		}
	}
	if p.delta8Req == 0 {
		return stored(a.Name(), block)
	}
	return Compressed{Alg: a.Name(), SizeBits: deltaSizeBits(p.delta8Req), Payload: layoutDelta8(&p.Lanes, &p.delta8WZero, p.delta8Req)}
}

// Decompress implements Algorithm.
func (a *Delta) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if len(c.Payload) >= 1 && c.Payload[0]&0xF0 == 0xF0 {
		return decodeHalfDelta(c.Payload)
	}
	if len(c.Payload) < 2+FlitBytes {
		return nil, ErrCorrupt
	}
	width := int(c.Payload[0])
	if width != 1 && width != 2 && width != 4 {
		return nil, ErrCorrupt
	}
	if len(c.Payload) != 2+FlitBytes+deltaFlits*width {
		return nil, ErrCorrupt
	}
	zeroSel := c.Payload[1]
	base := binary.LittleEndian.Uint64(c.Payload[2:])
	out := make([]byte, BlockSize)
	binary.LittleEndian.PutUint64(out, base)
	pos := 2 + FlitBytes
	for i := 0; i < deltaFlits; i++ {
		var raw uint64
		for b := 0; b < width; b++ {
			raw |= uint64(c.Payload[pos+b]) << uint(8*b)
		}
		pos += width
		d := signExtend(raw, 8*width)
		v := uint64(d)
		if zeroSel&(1<<uint(i)) == 0 {
			v += base
		}
		binary.LittleEndian.PutUint64(out[(i+1)*FlitBytes:], v)
	}
	return out, nil
}

// decodeHalfDelta reverses encodeHalfDelta.
func decodeHalfDelta(p []byte) ([]byte, error) {
	width := int(p[0] & 0x0F)
	if width != 1 && width != 2 {
		return nil, ErrCorrupt
	}
	if len(p) != 7+(halfDeltaElems-1)*width {
		return nil, ErrCorrupt
	}
	zeroSel := uint16(p[1]) | uint16(p[2])<<8
	base := uint32(p[3]) | uint32(p[4])<<8 | uint32(p[5])<<16 | uint32(p[6])<<24
	out := make([]byte, BlockSize)
	out[0], out[1], out[2], out[3] = p[3], p[4], p[5], p[6]
	pos := 7
	for i := 0; i < halfDeltaElems-1; i++ {
		var raw uint32
		for b := 0; b < width; b++ {
			raw |= uint32(p[pos+b]) << uint(8*b)
		}
		pos += width
		d := uint32(signExtend(uint64(raw), 8*width))
		v := d
		if zeroSel&(1<<uint(i)) == 0 {
			v += base
		}
		off := (i + 1) * 4
		out[off] = byte(v)
		out[off+1] = byte(v >> 8)
		out[off+2] = byte(v >> 16)
		out[off+3] = byte(v >> 24)
	}
	return out, nil
}

// IncrementalDelta is the "separate compression" engine of Section 3.3A:
// under wormhole flow control a packet's flits may arrive at a router in
// fragments, and DISCO compresses each fragment as it arrives, keeping the
// two bases (BF0 and the zero flit) in base registers between fragments.
// Because future flits are unknown, the hardware commits to the 1-byte
// delta width up front; a flit that does not fit either base aborts the
// whole compression (the packet travels uncompressed).
//
// The paper notes that naive separate compression leaves "zero bubbles" in
// buffer entries; DISCO's merge logic concatenates fragment outputs
// bubble-free. MergedSizeBits reports the bubble-free size (identical to
// whole-packet Δ1 compression) while FragmentPaddedBits reports the
// bubble-padded cost a merge-less design would pay.
type IncrementalDelta struct {
	base     uint64
	haveBase bool
	absorbed int   // flits absorbed so far (including the base)
	fragBits []int // raw output bits per fragment
	failed   bool
}

// NewIncrementalDelta returns an engine ready for the first fragment.
func NewIncrementalDelta() *IncrementalDelta { return &IncrementalDelta{} }

// Reset returns the engine to its initial state, retaining the fragment
// bookkeeping's backing array — a recycled engine job absorbs its first
// fragments without reallocating.
func (s *IncrementalDelta) Reset() {
	s.base = 0
	s.haveBase = false
	s.absorbed = 0
	s.fragBits = s.fragBits[:0]
	s.failed = false
}

// Absorb feeds the next fragment of 8-byte flit payloads, in packet order.
// It returns false (and latches failure) if any flit fits neither base at
// the committed 1-byte width.
func (s *IncrementalDelta) Absorb(flits []uint64) bool {
	if s.failed {
		return false
	}
	bits := 0
	for _, f := range flits {
		if s.absorbed >= BlockSize/FlitBytes {
			panic("compress: IncrementalDelta absorbed more than one block")
		}
		if !s.haveBase {
			s.base, s.haveBase = f, true
			s.absorbed++
			bits += 8 * FlitBytes // base stored raw
			continue
		}
		dBase := int64(f - s.base)
		dZero := int64(f)
		if !fitsSigned(dZero, 8) && !fitsSigned(dBase, 8) {
			s.failed = true
			return false
		}
		s.absorbed++
		bits += 8 // one 1-byte delta
	}
	if bits > 0 {
		s.fragBits = append(s.fragBits, bits)
	}
	return true
}

// Failed reports whether compression was aborted.
func (s *IncrementalDelta) Failed() bool { return s.failed }

// Done reports whether a full block has been absorbed successfully.
func (s *IncrementalDelta) Done() bool {
	return !s.failed && s.absorbed == BlockSize/FlitBytes
}

// Absorbed returns the number of flits absorbed so far.
func (s *IncrementalDelta) Absorbed() int { return s.absorbed }

// MergedSizeBits is the bubble-free compressed size after DISCO's fragment
// merging, header included. Only meaningful once Done.
func (s *IncrementalDelta) MergedSizeBits() int {
	if !s.Done() {
		return 8 * BlockSize
	}
	return deltaSizeBits(1)
}

// FragmentPaddedBits is the cost without merge hardware: each fragment's
// output is padded up to whole 8-byte flit entries, leaving zero bubbles.
func (s *IncrementalDelta) FragmentPaddedBits() int {
	total := 0
	for _, b := range s.fragBits {
		flitBits := 8 * FlitBytes
		total += (b + flitBits - 1) / flitBits * flitBits
	}
	return total + deltaHeaderBits
}
