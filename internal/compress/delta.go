package compress

import "encoding/binary"

// Delta implements the paper's delta-based compressor (Section 3.2,
// Fig. 4): a 64-byte block is viewed as eight 8-byte flits; flit 0 is kept
// as the explicit base BF0, a zero flit is the second, implicit base, and
// each remaining flit is stored as a signed delta against whichever base
// yields a representable difference. Multiple compressor units try delta
// widths of 1, 2 and 4 bytes and the selection logic keeps the smallest
// result ("compressor selection logic", Fig. 4a).
//
// Latencies follow Table 2 of the paper: 1-cycle compression, 3-cycle
// decompression.
type Delta struct{}

// NewDelta returns the paper's delta compressor.
func NewDelta() *Delta { return &Delta{} }

// Name implements Algorithm.
func (*Delta) Name() string { return "delta" }

// CompLatency implements Algorithm (Table 2: 1 cycle).
func (*Delta) CompLatency() int { return 1 }

// DecompLatency implements Algorithm (Table 2: 3 cycles).
func (*Delta) DecompLatency() int { return 3 }

// deltaFlits is the number of delta-encoded flits (all but the base).
const deltaFlits = BlockSize/FlitBytes - 1

// deltaHeaderBits is the per-block metadata: a 2-bit delta-width code plus
// a 7-bit base-select bitmap (one bit per non-base flit).
const deltaHeaderBits = 2 + deltaFlits

// deltaSizeBits returns the encoded size for delta width d bytes.
func deltaSizeBits(d int) int { return deltaHeaderBits + 8*FlitBytes + deltaFlits*8*d }

// deltaPlan captures one feasible encoding: the delta width and which base
// each non-base flit uses (bit i set = flit i+1 uses the zero base).
type deltaPlan struct {
	width   int
	zeroSel uint8
	deltas  [deltaFlits]int64
}

// planDelta tries to encode flits with width-d deltas. ok is false when
// some flit fits neither base.
func planDelta(flits *[BlockSize / FlitBytes]uint64, d int) (deltaPlan, bool) {
	p := deltaPlan{width: d}
	bits := 8 * d
	for i := 0; i < deltaFlits; i++ {
		dBase := int64(flits[i+1] - flits[0]) // two's-complement wraparound is intended
		dZero := int64(flits[i+1])
		switch {
		case fitsSigned(dZero, bits):
			// Prefer the zero base on ties: an all-zero block then encodes
			// with an all-zero delta vector regardless of BF0.
			p.zeroSel |= 1 << uint(i)
			p.deltas[i] = dZero
		case fitsSigned(dBase, bits):
			p.deltas[i] = dBase
		default:
			return deltaPlan{}, false
		}
	}
	return p, true
}

// halfDeltaElems is the element count at 4-byte ("zero half-flit", §3.2)
// granularity.
const halfDeltaElems = BlockSize / 4

// halfDeltaSizeBits returns the encoded size of the 4-byte-granularity
// unit with width-d deltas: 2-bit unit/width code, a bit of base select
// per element, a 4-byte base, and 15 deltas.
func halfDeltaSizeBits(d int) int {
	return 2 + (halfDeltaElems - 1) + 8*4 + (halfDeltaElems-1)*8*d
}

// planHalfDelta tries the 4-byte-granularity unit (base = first 4-byte
// element or zero) with width-d deltas.
func planHalfDelta(block []byte, d int) (zeroSel uint16, deltas [halfDeltaElems - 1]int32, ok bool) {
	bits := 8 * d
	var elems [halfDeltaElems]uint32
	for i := range elems {
		elems[i] = uint32(block[i*4]) | uint32(block[i*4+1])<<8 |
			uint32(block[i*4+2])<<16 | uint32(block[i*4+3])<<24
	}
	for i := 0; i < halfDeltaElems-1; i++ {
		dBase := int64(int32(elems[i+1] - elems[0]))
		dZero := int64(int32(elems[i+1]))
		switch {
		case fitsSigned(dZero, bits):
			zeroSel |= 1 << uint(i)
			deltas[i] = int32(dZero)
		case fitsSigned(dBase, bits):
			deltas[i] = int32(dBase)
		default:
			return 0, deltas, false
		}
	}
	return zeroSel, deltas, true
}

// Compress implements Algorithm. The "multiple compressor units" of
// Fig. 4 are tried in parallel — 8-byte flit granularity with Δ ∈
// {1,2,4} and 4-byte half-flit granularity with Δ ∈ {1,2} — and the
// selection logic keeps the smallest encoding.
func (a *Delta) Compress(block []byte) Compressed {
	checkBlock(block)
	flits := words64(block)
	best := Compressed{SizeBits: 8 * BlockSize}
	found := false
	for _, d := range []int{1, 2, 4} {
		plan, ok := planDelta(&flits, d)
		if !ok {
			continue
		}
		if size := deltaSizeBits(d); size < best.SizeBits {
			best = Compressed{Alg: a.Name(), SizeBits: size, Payload: encodeDelta(&flits, plan)}
			found = true
		}
		break // wider 8B deltas only get bigger
	}
	for _, d := range []int{1, 2} {
		zeroSel, deltas, ok := planHalfDelta(block, d)
		if !ok {
			continue
		}
		if size := halfDeltaSizeBits(d); size < best.SizeBits {
			best = Compressed{Alg: a.Name(), SizeBits: size,
				Payload: encodeHalfDelta(block, d, zeroSel, deltas)}
			found = true
		}
		break
	}
	if found {
		return best
	}
	return stored(a.Name(), block)
}

// encodeHalfDelta lays out the 4-byte-granularity unit: marker 0xF0|width,
// 2-byte base-select bitmap, 4-byte base, then the deltas.
func encodeHalfDelta(block []byte, width int, zeroSel uint16, deltas [halfDeltaElems - 1]int32) []byte {
	out := make([]byte, 0, 7+(halfDeltaElems-1)*width)
	out = append(out, byte(0xF0|width), byte(zeroSel), byte(zeroSel>>8))
	out = append(out, block[0], block[1], block[2], block[3])
	for i := 0; i < halfDeltaElems-1; i++ {
		v := uint32(deltas[i])
		for b := 0; b < width; b++ {
			out = append(out, byte(v>>uint(8*b)))
		}
	}
	return out
}

// encodeDelta lays the plan out as bytes: width, base-select bitmap, base
// flit, then the deltas (little-endian, plan.width bytes each).
func encodeDelta(flits *[BlockSize / FlitBytes]uint64, p deltaPlan) []byte {
	out := make([]byte, 0, 2+FlitBytes+deltaFlits*p.width)
	out = append(out, byte(p.width), p.zeroSel)
	out = binary.LittleEndian.AppendUint64(out, flits[0])
	for i := 0; i < deltaFlits; i++ {
		v := uint64(p.deltas[i])
		for b := 0; b < p.width; b++ {
			out = append(out, byte(v>>uint(8*b)))
		}
	}
	return out
}

// Decompress implements Algorithm.
func (a *Delta) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	if len(c.Payload) >= 1 && c.Payload[0]&0xF0 == 0xF0 {
		return decodeHalfDelta(c.Payload)
	}
	if len(c.Payload) < 2+FlitBytes {
		return nil, ErrCorrupt
	}
	width := int(c.Payload[0])
	if width != 1 && width != 2 && width != 4 {
		return nil, ErrCorrupt
	}
	if len(c.Payload) != 2+FlitBytes+deltaFlits*width {
		return nil, ErrCorrupt
	}
	zeroSel := c.Payload[1]
	base := binary.LittleEndian.Uint64(c.Payload[2:])
	out := make([]byte, BlockSize)
	binary.LittleEndian.PutUint64(out, base)
	pos := 2 + FlitBytes
	for i := 0; i < deltaFlits; i++ {
		var raw uint64
		for b := 0; b < width; b++ {
			raw |= uint64(c.Payload[pos+b]) << uint(8*b)
		}
		pos += width
		d := signExtend(raw, 8*width)
		v := uint64(d)
		if zeroSel&(1<<uint(i)) == 0 {
			v += base
		}
		binary.LittleEndian.PutUint64(out[(i+1)*FlitBytes:], v)
	}
	return out, nil
}

// decodeHalfDelta reverses encodeHalfDelta.
func decodeHalfDelta(p []byte) ([]byte, error) {
	width := int(p[0] & 0x0F)
	if width != 1 && width != 2 {
		return nil, ErrCorrupt
	}
	if len(p) != 7+(halfDeltaElems-1)*width {
		return nil, ErrCorrupt
	}
	zeroSel := uint16(p[1]) | uint16(p[2])<<8
	base := uint32(p[3]) | uint32(p[4])<<8 | uint32(p[5])<<16 | uint32(p[6])<<24
	out := make([]byte, BlockSize)
	out[0], out[1], out[2], out[3] = p[3], p[4], p[5], p[6]
	pos := 7
	for i := 0; i < halfDeltaElems-1; i++ {
		var raw uint32
		for b := 0; b < width; b++ {
			raw |= uint32(p[pos+b]) << uint(8*b)
		}
		pos += width
		d := uint32(signExtend(uint64(raw), 8*width))
		v := d
		if zeroSel&(1<<uint(i)) == 0 {
			v += base
		}
		off := (i + 1) * 4
		out[off] = byte(v)
		out[off+1] = byte(v >> 8)
		out[off+2] = byte(v >> 16)
		out[off+3] = byte(v >> 24)
	}
	return out, nil
}

// IncrementalDelta is the "separate compression" engine of Section 3.3A:
// under wormhole flow control a packet's flits may arrive at a router in
// fragments, and DISCO compresses each fragment as it arrives, keeping the
// two bases (BF0 and the zero flit) in base registers between fragments.
// Because future flits are unknown, the hardware commits to the 1-byte
// delta width up front; a flit that does not fit either base aborts the
// whole compression (the packet travels uncompressed).
//
// The paper notes that naive separate compression leaves "zero bubbles" in
// buffer entries; DISCO's merge logic concatenates fragment outputs
// bubble-free. MergedSizeBits reports the bubble-free size (identical to
// whole-packet Δ1 compression) while FragmentPaddedBits reports the
// bubble-padded cost a merge-less design would pay.
type IncrementalDelta struct {
	base     uint64
	haveBase bool
	absorbed int   // flits absorbed so far (including the base)
	fragBits []int // raw output bits per fragment
	failed   bool
}

// NewIncrementalDelta returns an engine ready for the first fragment.
func NewIncrementalDelta() *IncrementalDelta { return &IncrementalDelta{} }

// Absorb feeds the next fragment of 8-byte flit payloads, in packet order.
// It returns false (and latches failure) if any flit fits neither base at
// the committed 1-byte width.
func (s *IncrementalDelta) Absorb(flits []uint64) bool {
	if s.failed {
		return false
	}
	bits := 0
	for _, f := range flits {
		if s.absorbed >= BlockSize/FlitBytes {
			panic("compress: IncrementalDelta absorbed more than one block")
		}
		if !s.haveBase {
			s.base, s.haveBase = f, true
			s.absorbed++
			bits += 8 * FlitBytes // base stored raw
			continue
		}
		dBase := int64(f - s.base)
		dZero := int64(f)
		if !fitsSigned(dZero, 8) && !fitsSigned(dBase, 8) {
			s.failed = true
			return false
		}
		s.absorbed++
		bits += 8 // one 1-byte delta
	}
	if bits > 0 {
		s.fragBits = append(s.fragBits, bits)
	}
	return true
}

// Failed reports whether compression was aborted.
func (s *IncrementalDelta) Failed() bool { return s.failed }

// Done reports whether a full block has been absorbed successfully.
func (s *IncrementalDelta) Done() bool {
	return !s.failed && s.absorbed == BlockSize/FlitBytes
}

// Absorbed returns the number of flits absorbed so far.
func (s *IncrementalDelta) Absorbed() int { return s.absorbed }

// MergedSizeBits is the bubble-free compressed size after DISCO's fragment
// merging, header included. Only meaningful once Done.
func (s *IncrementalDelta) MergedSizeBits() int {
	if !s.Done() {
		return 8 * BlockSize
	}
	return deltaSizeBits(1)
}

// FragmentPaddedBits is the cost without merge hardware: each fragment's
// output is padded up to whole 8-byte flit entries, leaving zero bubbles.
func (s *IncrementalDelta) FragmentPaddedBits() int {
	total := 0
	for _, b := range s.fragBits {
		flitBits := 8 * FlitBytes
		total += (b + flitBits - 1) / flitBits * flitBits
	}
	return total + deltaHeaderBits
}
