package compress

import "math/bits"

// This file is the word-parallel kernel shared by the codec hot paths
// (see DESIGN.md §12). A 64-byte block is loaded ONCE into eight 64-bit
// lanes; every per-word fact the delta-family codecs need — zero words,
// sign-extension widths, base-delta residual widths, BΔI geometry
// feasibility — is computed in a single branch-poor scan over those
// registers and cached in a BlockProbe. Encoders then either answer
// "exact compressed size" straight from the probe (ProbeSizeBits) or lay
// out the winning encoding from the precomputed facts (CompressFromProbe)
// without rescanning the block. The bit formats are unchanged: the
// kernels only restructure HOW the facts are computed, every emitted bit
// is pinned by the scalar reference encoders (reference_test.go), the
// committed SC2 corpus and FuzzKernelEquivalence.

// wordMasks are per-32-bit-word classification bitmaps (bit i = word i):
// the patterns FPC/SFPC match, each derivable from one sign-folded
// leading-zero count per word.
type wordMasks struct {
	zero    uint16 // word == 0
	se4     uint16 // fits 4-bit sign-extended
	se8     uint16 // fits 8-bit sign-extended
	se16    uint16 // fits 16-bit sign-extended
	pad16   uint16 // low halfword all zero
	twoHalf uint16 // both halfwords fit 8-bit sign-extended
	repByte uint16 // all four bytes equal
}

// b16 is the branch-free bool-to-bitmask building block (compiles to a
// flag set, not a jump).
func b16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// classifyWords32 computes the FPC-family pattern masks for all 16 words
// in one pass. A value fits an n-bit two's-complement field iff its
// sign-folded magnitude has at most n-1 significant bits, so one
// bits.Len32 per word answers every sign-extension width at once.
func classifyWords32(ws *[16]uint32) wordMasks {
	var m wordMasks
	for i := 0; i < len(ws); i++ {
		w := ws[i]
		bit := uint16(1) << uint(i)
		l := bits.Len32(w ^ uint32(int32(w)>>31))
		m.zero |= bit * b16(w == 0)
		m.se4 |= bit * b16(l <= 3)
		m.se8 |= bit * b16(l <= 7)
		m.se16 |= bit * b16(l <= 15)
		m.pad16 |= bit * b16(w&0xFFFF == 0)
		hi, lo := uint16(w>>16), uint16(w)
		m.twoHalf |= bit * b16(hi^uint16(int16(hi)>>15) < 0x80 && lo^uint16(int16(lo)>>15) < 0x80)
		m.repByte |= bit * b16(w == (w&0xFF)*0x01010101)
	}
	return m
}

// deltaWidths8 is the width scan of the paper's 8-byte-flit delta unit
// (Fig. 4), shared by Delta.Compress and Probe: wZero[i] is the minimal
// delta width of flit i+1 against the zero base (0 = unrepresentable),
// req is the width the unit bank would select (0 = infeasible).
func deltaWidths8(flits *[BlockSize / FlitBytes]uint64) (req int, wZero [deltaFlits]uint8) {
	req = 1
	for i := 0; i < deltaFlits; i++ {
		wz := minDeltaWidth(int64(flits[i+1]), 4)
		wZero[i] = uint8(wz)
		w := wz
		if w != 1 {
			// Only the BF0 base can improve on (or rescue) this flit.
			if wb := minDeltaWidth(int64(flits[i+1]-flits[0]), 4); wb != 0 && (w == 0 || wb < w) {
				w = wb
			}
		}
		if w == 0 {
			return 0, wZero
		}
		if w > req {
			req = w
		}
	}
	return req, wZero
}

// halfDeltaScan computes, uncapped (width 2 is the widest the half-flit
// unit ever uses), the per-element minimal widths against the zero base
// and the explicit base. Any cap is then evaluated by clamping: a stored
// width above the cap means "unrepresentable at this cap", exactly what
// minDeltaWidth(x, cap) reports.
func halfDeltaScan(ws *[16]uint32) (wZero, wBase [halfDeltaElems - 1]uint8) {
	for i := 0; i < halfDeltaElems-1; i++ {
		wZero[i] = uint8(minDeltaWidth(int64(int32(ws[i+1])), 2))
		wBase[i] = uint8(minDeltaWidth(int64(int32(ws[i+1]-ws[0])), 2))
	}
	return wZero, wBase
}

// halfDeltaReq replays the half-flit unit's width selection at the given
// cap over pre-scanned widths. ok is false when some element fits
// neither base within the cap.
func halfDeltaReq(wZero, wBase *[halfDeltaElems - 1]uint8, max int) (req int, ok bool) {
	req = 1
	for i := 0; i < halfDeltaElems-1; i++ {
		wz := int(wZero[i])
		if wz > max {
			wz = 0
		}
		w := wz
		if w != 1 {
			wb := int(wBase[i])
			if wb > max {
				wb = 0
			}
			if wb != 0 && (w == 0 || wb < w) {
				w = wb
			}
		}
		if w == 0 {
			return 0, false
		}
		if w > req {
			req = w
		}
	}
	return req, true
}

// layoutHalfDelta lays out the half-flit encoding at width req:
// marker 0xF0|width, 2-byte base-select bitmap, 4-byte base, deltas.
func layoutHalfDelta(ws *[16]uint32, wZero *[halfDeltaElems - 1]uint8, req int) []byte {
	out := make([]byte, 7+(halfDeltaElems-1)*req)
	out[3], out[4], out[5], out[6] = byte(ws[0]), byte(ws[0]>>8), byte(ws[0]>>16), byte(ws[0]>>24)
	var zeroSel uint16
	pos := 7
	for i := 0; i < halfDeltaElems-1; i++ {
		var v uint32
		if wZero[i] != 0 && int(wZero[i]) <= req {
			// Prefer the zero base on ties (all-zero tails encode as zeros).
			zeroSel |= 1 << uint(i)
			v = ws[i+1]
		} else {
			v = ws[i+1] - ws[0]
		}
		for b := 0; b < req; b++ {
			out[pos+b] = byte(v >> uint(8*b))
		}
		pos += req
	}
	out[0], out[1], out[2] = byte(0xF0|req), byte(zeroSel), byte(zeroSel>>8)
	return out
}

// bdiFact is one BΔI geometry's probe result: feasibility, the explicit
// base the hardware would latch (the first element whose zero-base delta
// does not fit), and the exact encoded size.
type bdiFact struct {
	feasible bool
	haveBase bool
	base     uint64
	sizeBits int
}

// bdiElem reads the i-th width-byte element from the preloaded lanes.
func bdiElem(lanes *[BlockSize / FlitBytes]uint64, ws *[16]uint32, width, i int) uint64 {
	switch width {
	case 8:
		return lanes[i]
	case 4:
		return uint64(ws[i])
	default:
		return uint64(uint16(ws[i>>1] >> uint(16*(i&1))))
	}
}

// bdiProbe evaluates all six BΔI geometries in one pass each over the
// register-resident elements — no payload is laid out, so probing a
// block allocates nothing. The fused scan is equivalent to the
// two-pass formulation: the base is the first element whose zero delta
// does not fit, elements before it all fit the zero base by definition,
// and elements after it are checked against both bases.
func bdiProbe(lanes *[BlockSize / FlitBytes]uint64, ws *[16]uint32) (facts [len(bdiGeometries)]bdiFact) {
	for gi := range bdiGeometries {
		g := &bdiGeometries[gi]
		n := BlockSize / g.baseBytes
		dbits := 8 * g.deltaByts
		var base uint64
		haveBase := false
		feasible := true
		for i := 0; i < n; i++ {
			e := bdiElem(lanes, ws, g.baseBytes, i)
			if fitsSigned(signExtendWidth(e, g.baseBytes), dbits) {
				continue
			}
			if !haveBase {
				base, haveBase = e, true
				continue // delta against itself is 0
			}
			if fitsSigned(wrapDiff(e, base, g.baseBytes), dbits) {
				continue
			}
			feasible = false
			break
		}
		baseBytes := 0
		if haveBase {
			baseBytes = g.baseBytes
		}
		facts[gi] = bdiFact{
			feasible: feasible,
			haveBase: haveBase,
			base:     base,
			sizeBits: bdiEncodingBits + n + 8*baseBytes + 8*n*g.deltaByts,
		}
	}
	return facts
}

// BlockProbe is one block's shared-scan result: the register-resident
// block plus every per-word fact the probe-aware codecs consume. Compute
// it once with Probe and hand the pointer to each unit — Hybrid does
// exactly that to turn N full encodes into one scan plus one encode.
type BlockProbe struct {
	Lanes [BlockSize / FlitBytes]uint64 // the block, eight 64-bit flits
	Words [16]uint32                    // the same block as 32-bit words

	masks     wordMasks
	zeroBlock bool
	repBlock  bool
	repValue  uint64

	delta8Req   int
	delta8WZero [deltaFlits]uint8
	halfWZero   [halfDeltaElems - 1]uint8
	halfWBase   [halfDeltaElems - 1]uint8

	bdi [len(bdiGeometries)]bdiFact

	// SC2 per-word code cache, filled lazily by the owning SC2 instance
	// (the table is per-instance; a probe can outlive retraining only
	// within one Compress call, which is all Hybrid needs).
	sc2Owner  *SC2
	sc2Bits   int
	sc2Stored bool
	sc2Codes  [16]uint32 // packed bits<<5|len; 0 = escape
}

// Probe runs the shared scan: one load of the block into lanes, then
// every per-word fact in register. It is a hotalloc root — probing must
// never allocate.
func Probe(block []byte) BlockProbe {
	var p BlockProbe
	ProbeInto(&p, block)
	return p
}

// ProbeInto is Probe without the by-value return: callers that pass the
// probe on by pointer (Hybrid) fill their local directly and skip the
// struct copy.
func ProbeInto(p *BlockProbe, block []byte) {
	checkBlock(block)
	*p = BlockProbe{}
	p.Lanes = words64(block)
	all := uint64(0)
	for i, l := range p.Lanes {
		p.Words[2*i] = uint32(l)
		p.Words[2*i+1] = uint32(l >> 32)
		all |= l
	}
	p.zeroBlock = all == 0
	p.repValue = p.Lanes[0]
	p.repBlock = true
	for _, l := range p.Lanes[1:] {
		if l != p.repValue {
			p.repBlock = false
			break
		}
	}
	p.masks = classifyWords32(&p.Words)
	p.delta8Req, p.delta8WZero = deltaWidths8(&p.Lanes)
	p.halfWZero, p.halfWBase = halfDeltaScan(&p.Words)
	p.bdi = bdiProbe(&p.Lanes, &p.Words)
}

// ProbeCompressor is the optional fast path a codec can offer on top of
// the shared scan. The contract, enforced by FuzzKernelEquivalence:
//
//   - ProbeSizeBits(p) returns (c.SizeBits, true) exactly when
//     Compress(block) would return a non-stored c, and (0, false)
//     exactly when it would fall back to a stored block;
//   - CompressFromProbe(block, p) is bit-identical to Compress(block).
//
// Hybrid uses it to skip every losing unit without encoding anything.
type ProbeCompressor interface {
	ProbeSizeBits(p *BlockProbe) (sizeBits int, ok bool)
	CompressFromProbe(block []byte, p *BlockProbe) Compressed
}
