package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// testBlocks builds a deterministic zoo of interesting blocks.
func testBlocks(t testing.TB) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var blocks [][]byte
	add := func(b []byte) {
		if len(b) != BlockSize {
			t.Fatalf("test block has %d bytes", len(b))
		}
		blocks = append(blocks, b)
	}
	// All zeros.
	add(make([]byte, BlockSize))
	// All ones.
	ones := make([]byte, BlockSize)
	for i := range ones {
		ones[i] = 0xFF
	}
	add(ones)
	// Repeated 8-byte value.
	rep := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += 8 {
		binary.LittleEndian.PutUint64(rep[i:], 0xDEADBEEFCAFE0123)
	}
	add(rep)
	// Narrow positive integers in 8-byte slots.
	narrow := make([]byte, BlockSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(narrow[i*8:], uint64(i*3))
	}
	add(narrow)
	// Pointer-like values (large base, small deltas).
	ptr := make([]byte, BlockSize)
	base := uint64(0x00007F3A12340000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(ptr[i*8:], base+uint64(i*24))
	}
	add(ptr)
	// Negative small ints in 32-bit words.
	negs := make([]byte, BlockSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(negs[i*4:], uint32(int32(-int32(i)-1)))
	}
	add(negs)
	// Half-zero, half-random.
	hz := make([]byte, BlockSize)
	rng.Read(hz[32:])
	add(hz)
	// Pure random (incompressible).
	rnd := make([]byte, BlockSize)
	rng.Read(rnd)
	add(rnd)
	// 16-bit values in 32-bit words.
	h16 := make([]byte, BlockSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(h16[i*4:], uint64len16(rng))
	}
	add(h16)
	// Repeated bytes per word.
	rb := make([]byte, BlockSize)
	for i := 0; i < 16; i++ {
		b := byte(0x41 + i)
		binary.LittleEndian.PutUint32(rb[i*4:], uint32(b)|uint32(b)<<8|uint32(b)<<16|uint32(b)<<24)
	}
	add(rb)
	// Upper-half-only words (padded16 pattern).
	up := make([]byte, BlockSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(up[i*4:], uint32(rng.Intn(1<<16))<<16)
	}
	add(up)
	// Text-like ASCII.
	txt := bytes.Repeat([]byte("the quick brown "), 4)
	add(txt[:BlockSize])
	return blocks
}

func uint64len16(rng *rand.Rand) uint32 { return uint32(rng.Intn(1 << 15)) }

// trained returns every algorithm, with the statistical schemes (SC2,
// FVC) trained on the block zoo.
func trained(t testing.TB) []Algorithm {
	algs := All()
	for _, a := range algs {
		switch s := a.(type) {
		case *SC2:
			s.Train(testBlocks(t))
		case *FVC:
			s.Train(testBlocks(t))
		}
	}
	return algs
}

func TestRoundTripZoo(t *testing.T) {
	for _, alg := range trained(t) {
		for i, b := range testBlocks(t) {
			c := alg.Compress(b)
			got, err := alg.Decompress(c)
			if err != nil {
				t.Fatalf("%s block %d: decompress error: %v", alg.Name(), i, err)
			}
			if !bytes.Equal(got, b) {
				t.Fatalf("%s block %d: round trip mismatch", alg.Name(), i)
			}
			if c.SizeBits <= 0 || c.SizeBits > 8*BlockSize {
				t.Fatalf("%s block %d: size %d bits out of range", alg.Name(), i, c.SizeBits)
			}
		}
	}
}

// Property: all algorithms round-trip arbitrary random blocks and never
// report a size above the raw block.
func TestRoundTripProperty(t *testing.T) {
	algs := trained(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, BlockSize)
		// Mix of structured and random content depending on the seed.
		switch seed % 4 {
		case 0:
			rng.Read(b)
		case 1:
			base := rng.Uint64()
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(b[i*8:], base+uint64(rng.Intn(512))-256)
			}
		case 2:
			for i := 0; i < 16; i++ {
				binary.LittleEndian.PutUint32(b[i*4:], uint32(rng.Intn(256)))
			}
		default:
			// sparse
			for i := 0; i < 4; i++ {
				b[rng.Intn(BlockSize)] = byte(rng.Intn(256))
			}
		}
		for _, alg := range algs {
			c := alg.Compress(b)
			if c.SizeBits > 8*BlockSize {
				return false
			}
			got, err := alg.Decompress(c)
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short block")
		}
	}()
	NewDelta().Compress(make([]byte, 10))
}

func TestDeltaZeroBlockCompresses(t *testing.T) {
	d := NewDelta()
	c := d.Compress(make([]byte, BlockSize))
	if c.Stored {
		t.Fatal("zero block should compress")
	}
	if c.SizeBytes() > 17 {
		t.Errorf("zero block size %dB, want <= 17B (Δ1)", c.SizeBytes())
	}
}

func TestDeltaNarrowBlockUsesOneByteDeltas(t *testing.T) {
	b := make([]byte, BlockSize)
	base := uint64(0x1000_0000_0000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i*7))
	}
	c := NewDelta().Compress(b)
	if c.Stored {
		t.Fatal("narrow deltas should compress")
	}
	want := deltaSizeBits(1)
	if c.SizeBits != want {
		t.Errorf("SizeBits = %d, want %d", c.SizeBits, want)
	}
}

func TestDeltaMixedBasesBothUsed(t *testing.T) {
	// Half the flits near zero, half near a large base: needs both bases.
	b := make([]byte, BlockSize)
	base := uint64(0xABCD_0000_1234_0000)
	for i := 0; i < 8; i++ {
		v := uint64(i) // near zero
		if i%2 == 0 {
			v = base + uint64(i)
		}
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	d := NewDelta()
	c := d.Compress(b)
	if c.Stored {
		t.Fatal("dual-base block should compress")
	}
	got, err := d.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
}

func TestDeltaIncompressibleStored(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := make([]byte, BlockSize)
	rng.Read(b)
	c := NewDelta().Compress(b)
	if !c.Stored {
		// Random 64-bit flits essentially never share 4-byte deltas.
		t.Fatalf("random block unexpectedly compressed to %d bits", c.SizeBits)
	}
	if c.SizeBits != 8*BlockSize {
		t.Error("stored block must report full size")
	}
}

func TestDeltaDecompressCorrupt(t *testing.T) {
	d := NewDelta()
	cases := []Compressed{
		{Alg: "delta", SizeBits: 10, Payload: []byte{1}},
		{Alg: "delta", SizeBits: 10, Payload: append([]byte{3, 0}, make([]byte, 20)...)}, // bad width
		{Alg: "delta", SizeBits: 10, Payload: append([]byte{1, 0}, make([]byte, 5)...)},  // short
		{Alg: "delta", Stored: true, Payload: []byte{1, 2}},                              // short stored
	}
	for i, c := range cases {
		if _, err := d.Decompress(c); err == nil {
			t.Errorf("case %d: expected corrupt error", i)
		}
	}
}

func TestBDIZeroAndRepeated(t *testing.T) {
	b := NewBDI()
	z := b.Compress(make([]byte, BlockSize))
	if z.SizeBytes() != 1 {
		t.Errorf("zero block = %dB, want 1B", z.SizeBytes())
	}
	rep := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += 8 {
		binary.LittleEndian.PutUint64(rep[i:], 0x1122334455667788)
	}
	r := b.Compress(rep)
	if r.SizeBytes() != 9 {
		t.Errorf("repeated block = %dB, want 9B (tag+8)", r.SizeBytes())
	}
}

func TestBDIBase8Delta1Size(t *testing.T) {
	// Pointer-style block: 8-byte base + small deltas -> B8Δ1.
	b := make([]byte, BlockSize)
	base := uint64(0x7FFF_0000_0000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i))
	}
	c := NewBDI().Compress(b)
	if c.Stored {
		t.Fatal("should compress")
	}
	// 4 tag bits + 8 mask bits + 8B base + 8 deltas = 4+8+64+64 = 140 bits.
	if c.SizeBits != 140 {
		t.Errorf("SizeBits = %d, want 140", c.SizeBits)
	}
}

func TestBDIRatioOnMix(t *testing.T) {
	// Sanity: BΔI should land in the vicinity of Table 1's 1.5x on a
	// mixed compressible/incompressible set.
	alg := NewBDI()
	var raw, comp int
	for _, b := range testBlocks(t) {
		c := alg.Compress(b)
		raw += BlockSize
		comp += c.SizeBytes()
	}
	ratio := float64(raw) / float64(comp)
	if ratio < 1.2 || ratio > 5 {
		t.Errorf("BDI ratio on zoo = %.2f, expected in [1.2, 5]", ratio)
	}
}

func TestFPCPatterns(t *testing.T) {
	a := NewFPC()
	// One word of each pattern class, rest zeros (zero-run).
	b := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(b[0:], 7)           // SE4
	binary.LittleEndian.PutUint32(b[4:], 0xFFFFFF80)  // SE8 (-128)
	binary.LittleEndian.PutUint32(b[8:], 30000)       // SE16
	binary.LittleEndian.PutUint32(b[12:], 0xABCD0000) // padded16
	binary.LittleEndian.PutUint32(b[16:], 0x00050003) // two halfwords SE8
	binary.LittleEndian.PutUint32(b[20:], 0x51515151) // repeated byte
	binary.LittleEndian.PutUint32(b[24:], 0x12345678) // uncompressed
	c := a.Compress(b)
	if c.Stored {
		t.Fatal("pattern block should compress")
	}
	got, err := a.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
	// 7 words + 9 zero words (2 runs: 8 + 1): prefix cost check.
	// zero runs: 2*(3+3)=12; SE4 3+4=7; SE8 3+8=11; SE16 3+16=19;
	// padded 3+16=19; twohalf 3+16=19; rep 3+8=11; uncmp 3+32=35. total 133.
	if c.SizeBits != 133 {
		t.Errorf("SizeBits = %d, want 133", c.SizeBits)
	}
}

func TestFPCZeroRunSplitsAtEight(t *testing.T) {
	a := NewFPC()
	c := a.Compress(make([]byte, BlockSize)) // 16 zero words = 2 runs of 8
	if c.SizeBits != 12 {
		t.Errorf("all-zero block = %d bits, want 12 (two max runs)", c.SizeBits)
	}
}

func TestSFPCRoundTripAndRatioOrdering(t *testing.T) {
	// SFPC has fewer patterns than FPC, so it can never beat FPC by more
	// than the prefix-width difference; on the zoo its total must be >=
	// FPC's total minus the prefix savings. We assert the coarser
	// property: SFPC total >= FPC total * 0.8.
	fpc, sfpc := NewFPC(), NewSFPC()
	var tf, ts int
	for _, b := range testBlocks(t) {
		tf += fpc.Compress(b).SizeBytes()
		ts += sfpc.Compress(b).SizeBytes()
	}
	if float64(ts) < 0.8*float64(tf) {
		t.Errorf("SFPC (%dB) implausibly beats FPC (%dB)", ts, tf)
	}
}

func TestCPackDictionaryMatch(t *testing.T) {
	a := NewCPack()
	b := make([]byte, BlockSize)
	// Same word repeated: first xxxx, then 15 mmmm matches.
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], 0xCAFEBABE)
	}
	c := a.Compress(b)
	if c.Stored {
		t.Fatal("repeating words should compress")
	}
	// 2+32 for the first + 15*(2+4) = 34+90 = 124 bits.
	if c.SizeBits != 124 {
		t.Errorf("SizeBits = %d, want 124", c.SizeBits)
	}
	got, err := a.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
}

func TestCPackPartialMatch(t *testing.T) {
	a := NewCPack()
	b := make([]byte, BlockSize)
	for i := 0; i < 16; i++ {
		// Shared upper 3 bytes, varying low byte: mmmx after the first.
		binary.LittleEndian.PutUint32(b[i*4:], 0x11223300|uint32(i))
	}
	c := a.Compress(b)
	got, err := a.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
	// 2+32 then 15*(4+4+8).
	if c.SizeBits != 34+15*16 {
		t.Errorf("SizeBits = %d, want %d", c.SizeBits, 34+15*16)
	}
}

func TestSC2UntrainedStoresRandom(t *testing.T) {
	s := NewSC2()
	rng := rand.New(rand.NewSource(9))
	b := make([]byte, BlockSize)
	rng.Read(b)
	c := s.Compress(b)
	if !c.Stored {
		t.Error("untrained SC2 on random data should store")
	}
}

func TestSC2TrainingImprovesRatio(t *testing.T) {
	// Blocks heavy in zero bytes: after training, zeros get short codes.
	blocks := make([][]byte, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range blocks {
		b := make([]byte, BlockSize)
		for j := 0; j < 6; j++ {
			b[rng.Intn(BlockSize)] = byte(rng.Intn(256))
		}
		blocks[i] = b
	}
	s := NewSC2()
	s.Train(blocks)
	if !s.Trained() {
		t.Fatal("Train should mark trained")
	}
	var total int
	for _, b := range blocks {
		c := s.Compress(b)
		got, err := s.Decompress(c)
		if err != nil || !bytes.Equal(got, b) {
			t.Fatal("round trip failed")
		}
		total += c.SizeBytes()
	}
	ratio := float64(len(blocks)*BlockSize) / float64(total)
	if ratio < 2 {
		t.Errorf("trained SC2 ratio on sparse blocks = %.2f, want >= 2", ratio)
	}
}

func TestSC2DeepDecompLatency(t *testing.T) {
	s := NewSC2()
	if s.DecompLatency() != 8 {
		t.Errorf("default decomp latency = %d, want 8", s.DecompLatency())
	}
	s.DeepDecomp = true
	if s.DecompLatency() != 14 {
		t.Errorf("deep decomp latency = %d, want 14", s.DecompLatency())
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) should fail")
	}
	if len(All()) != 7 {
		t.Errorf("All() returned %d algorithms, want 7", len(All()))
	}
}

func TestNoneIsIdentity(t *testing.T) {
	n := NewNone()
	b := testBlocks(t)[4]
	c := n.Compress(b)
	if !c.Stored || c.SizeBytes() != BlockSize {
		t.Error("None must store raw")
	}
	got, err := n.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Error("None round trip failed")
	}
}

func TestLatencyTable(t *testing.T) {
	// Pin the Table 1 / Table 2 latency parameters: simulator results
	// depend on them, so a change must be deliberate.
	cases := []struct {
		alg          Algorithm
		comp, decomp int
	}{
		{NewDelta(), 1, 3},
		{NewBDI(), 1, 3},
		{NewFPC(), 3, 5},
		{NewSFPC(), 2, 4},
		{NewCPack(), 8, 8},
		{NewSC2(), 6, 8},
		{NewNone(), 0, 0},
	}
	for _, c := range cases {
		if c.alg.CompLatency() != c.comp || c.alg.DecompLatency() != c.decomp {
			t.Errorf("%s latencies = %d/%d, want %d/%d",
				c.alg.Name(), c.alg.CompLatency(), c.alg.DecompLatency(), c.comp, c.decomp)
		}
	}
}

func TestCompressedHelpers(t *testing.T) {
	c := Compressed{SizeBits: 9}
	if c.SizeBytes() != 2 {
		t.Errorf("SizeBytes(9 bits) = %d, want 2", c.SizeBytes())
	}
	c = Compressed{SizeBits: 8 * 16}
	if c.Ratio() != 4 {
		t.Errorf("Ratio = %g, want 4", c.Ratio())
	}
}

func TestIncrementalDeltaMatchesWhole(t *testing.T) {
	// A compressible block fed in two fragments must merge to the same
	// size as whole-packet Δ1 compression.
	b := make([]byte, BlockSize)
	base := uint64(0x5500_0000_0000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(i*3))
	}
	flits := words64(b)
	inc := NewIncrementalDelta()
	if !inc.Absorb(flits[:3]) {
		t.Fatal("first fragment should absorb")
	}
	if inc.Done() {
		t.Fatal("not done after partial absorb")
	}
	if !inc.Absorb(flits[3:]) {
		t.Fatal("second fragment should absorb")
	}
	if !inc.Done() {
		t.Fatal("should be done")
	}
	if got, want := inc.MergedSizeBits(), deltaSizeBits(1); got != want {
		t.Errorf("merged = %d bits, want %d", got, want)
	}
	// Bubble-padded cost must be at least the merged cost.
	if inc.FragmentPaddedBits() < inc.MergedSizeBits() {
		t.Error("padded size cannot be smaller than merged size")
	}
}

func TestIncrementalDeltaAbort(t *testing.T) {
	inc := NewIncrementalDelta()
	// Base then a flit that fits neither base at Δ1.
	if !inc.Absorb([]uint64{100}) {
		t.Fatal("base absorb failed")
	}
	if inc.Absorb([]uint64{1 << 40}) {
		t.Fatal("wild flit should abort")
	}
	if !inc.Failed() || inc.Done() {
		t.Error("engine should be failed, not done")
	}
	if inc.MergedSizeBits() != 8*BlockSize {
		t.Error("failed engine must report raw size")
	}
}

func TestIncrementalDeltaZeroBaseOnly(t *testing.T) {
	// All-small flits: every non-base flit fits the zero base.
	inc := NewIncrementalDelta()
	flits := []uint64{1 << 50, 1, 2, 3, 4, 5, 6, 7} // base is huge, rest near zero
	if !inc.Absorb(flits) {
		t.Fatal("should absorb via zero base")
	}
	if !inc.Done() {
		t.Fatal("should be done")
	}
}

func TestIncrementalDeltaOverfeedPanics(t *testing.T) {
	inc := NewIncrementalDelta()
	inc.Absorb(make([]uint64, 8))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overfeed")
		}
	}()
	inc.Absorb([]uint64{0})
}

// Property: incremental delta (when it succeeds) always reports the Δ1
// whole-packet size, and never succeeds on a block the whole-packet Δ1
// plan rejects.
func TestIncrementalDeltaConsistencyProperty(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var flits [8]uint64
		base := rng.Uint64()
		for i := range flits {
			switch rng.Intn(3) {
			case 0:
				flits[i] = base + uint64(rng.Intn(256)) - 128
			case 1:
				flits[i] = uint64(rng.Intn(128))
			default:
				flits[i] = rng.Uint64()
			}
		}
		flits[0] = base
		_, wholeOK := planDelta(&flits, 1)
		inc := NewIncrementalDelta()
		s := int(split)%7 + 1
		ok := inc.Absorb(flits[:s])
		if ok {
			ok = inc.Absorb(flits[s:])
		}
		if wholeOK != (ok && inc.Done()) {
			return false
		}
		if ok && inc.MergedSizeBits() != deltaSizeBits(1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFVCUntrainedStores(t *testing.T) {
	f := NewFVC()
	c := f.Compress(make([]byte, BlockSize))
	if !c.Stored {
		t.Error("untrained FVC should store")
	}
	if _, err := f.Decompress(Compressed{SizeBits: 16, Payload: []byte{0, 1}}); err == nil {
		t.Error("untrained decode should fail")
	}
}

func TestFVCFrequentValueHit(t *testing.T) {
	f := NewFVC()
	// Train on blocks full of zero words and 0xDEADBEEF.
	b := make([]byte, BlockSize)
	for i := 0; i < BlockSize; i += 8 {
		binary.LittleEndian.PutUint32(b[i:], 0xDEADBEEF)
	}
	f.Train([][]byte{b, make([]byte, BlockSize)})
	if !f.Trained() {
		t.Fatal("not trained")
	}
	c := f.Compress(b)
	// All 16 words in the table: 16*(1+5) = 96 bits.
	if c.SizeBits != 96 {
		t.Errorf("SizeBits = %d, want 96", c.SizeBits)
	}
	got, err := f.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
}

func TestFVCMissEscapesRaw(t *testing.T) {
	f := NewFVC()
	f.Train([][]byte{make([]byte, BlockSize)})
	b := make([]byte, BlockSize)
	rng := rand.New(rand.NewSource(4))
	rng.Read(b)
	c := f.Compress(b)
	// 16*(1+32) = 528 bits > 512: stored.
	if !c.Stored {
		t.Errorf("all-miss block should be stored, got %d bits", c.SizeBits)
	}
	// Half zeros, half random: 8*6 + 8*33 = 312 bits.
	for i := 0; i < 32; i++ {
		b[i] = 0
	}
	c = f.Compress(b)
	if c.Stored || c.SizeBits != 312 {
		t.Errorf("half-hit block = %d bits (stored=%v), want 312", c.SizeBits, c.Stored)
	}
	got, err := f.Decompress(c)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatal("round trip failed")
	}
}

func TestFVCTableCapped(t *testing.T) {
	f := NewFVC()
	// Observe more distinct values than the table holds.
	for i := 0; i < 100; i++ {
		b := make([]byte, BlockSize)
		for j := 0; j < BlockSize; j += 4 {
			binary.LittleEndian.PutUint32(b[j:], uint32(i))
		}
		f.Observe(b)
	}
	f.Retrain()
	if len(f.values) != fvcTableSize {
		t.Errorf("table size = %d, want %d", len(f.values), fvcTableSize)
	}
}

func TestHybridPicksBestUnit(t *testing.T) {
	h := NewHybrid(NewDelta(), NewFPC(), NewBDI())
	for i, b := range testBlocks(t) {
		hc := h.Compress(b)
		got, err := h.Decompress(hc)
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("block %d: hybrid round trip failed: %v", i, err)
		}
		// The hybrid must never be worse than any unit by more than its
		// tag bits.
		for _, u := range []Algorithm{NewDelta(), NewFPC(), NewBDI()} {
			uc := u.Compress(b)
			if !uc.Stored && hc.SizeBits > uc.SizeBits+hybridTagBits {
				t.Errorf("block %d: hybrid %d bits worse than %s %d bits",
					i, hc.SizeBits, u.Name(), uc.SizeBits)
			}
		}
	}
}

func TestHybridLatencies(t *testing.T) {
	h := NewHybrid(NewDelta(), NewFPC())
	if h.CompLatency() != 3 || h.DecompLatency() != 5 {
		t.Errorf("hybrid latencies %d/%d, want 3/5 (slowest unit)", h.CompLatency(), h.DecompLatency())
	}
	if h.Name() != "hybrid(delta+fpc)" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestHybridRejectsBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty hybrid should panic")
		}
	}()
	NewHybrid()
}

func TestHybridRejectsNesting(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nested hybrid should panic")
		}
	}()
	NewHybrid(NewHybrid(NewDelta()))
}

func TestHybridCorruptTag(t *testing.T) {
	h := NewHybrid(NewDelta())
	if _, err := h.Decompress(Compressed{SizeBits: 20, Payload: []byte{9, 1, 2}}); err == nil {
		t.Error("out-of-range unit tag should fail")
	}
	if _, err := h.Decompress(Compressed{SizeBits: 20, Payload: nil}); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestHybridRatioBeatsUnits(t *testing.T) {
	// Across the zoo the hybrid's total must be <= every unit's total
	// (up to tag overhead).
	units := []Algorithm{NewDelta(), NewFPC(), NewBDI()}
	h := NewHybrid(NewDelta(), NewFPC(), NewBDI())
	totalH := 0
	totals := make([]int, len(units))
	for _, b := range testBlocks(t) {
		totalH += h.Compress(b).SizeBytes()
		for i, u := range units {
			totals[i] += u.Compress(b).SizeBytes()
		}
	}
	for i, u := range units {
		if totalH > totals[i]+len(testBlocks(t)) {
			t.Errorf("hybrid %dB worse than %s %dB", totalH, u.Name(), totals[i])
		}
	}
}
