package compress

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The versioned compressed-block test-vector corpus (ROADMAP item 5,
// NoiseGo discipline): one committed JSON file per registered codec
// holding (input block, exact compressed bytes) golden pairs. The
// corpus is the interop contract — a distributed worker or an
// independent reimplementation proves codec equivalence by reproducing
// these bytes, and TestCorpusMatchesEncoders makes silent drift of the
// encodings a test failure in this repo first.
//
// Regenerate after an INTENTIONAL format change with
//
//	go test ./internal/compress -run TestCorpusMatchesEncoders -args -update-vectors
//
// and bump corpusFormat when the vector file layout itself changes.

// corpusFormat versions the vector FILE layout (not the codec
// bitstreams — those are pinned by the vector payloads themselves).
const corpusFormat = 1

var updateVectors = flag.Bool("update-vectors", false,
	"rewrite internal/compress/testdata/vectors from the current encoders")

// vectorFile is one codec's committed corpus document.
type vectorFile struct {
	Format int    `json:"format"`
	Codec  string `json:"codec"`
	// TrainedOn documents the deterministic training rule for adaptive
	// codecs: "corpus" means a fresh instance Train()ed on the full
	// corpus input set, in order; "" means the codec is stateless.
	TrainedOn string       `json:"trained_on,omitempty"`
	Vectors   []vectorCase `json:"vectors"`
}

// vectorCase is one golden (input, exact output) pair.
type vectorCase struct {
	Name     string `json:"name"`
	Input    string `json:"input"` // hex, exactly BlockSize bytes
	SizeBits int    `json:"size_bits"`
	Stored   bool   `json:"stored"`
	Payload  string `json:"payload"` // hex, the exact encoder output
}

// corpusInputs is the fixed input-block set: the edge blocks named in
// the roadmap plus pattern blocks that exercise every codec's
// compressible cases and a pseudorandom incompressible block.
func corpusInputs() []struct {
	name  string
	block []byte
} {
	mk := func(fill func(b []byte)) []byte {
		b := make([]byte, BlockSize)
		fill(b)
		return b
	}
	seed := uint64(0xDA7A_C0DE_D15C_0001)
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	return []struct {
		name  string
		block []byte
	}{
		{"all-zero", mk(func(b []byte) {})},
		{"all-ones", mk(func(b []byte) {
			for i := range b {
				b[i] = 0xFF
			}
		})},
		// 32-bit words alternating +1 / -1: sign-extension patterns for
		// FPC/SFPC, alternating-sign deltas for the delta family.
		{"alternating-sign", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += 2 * WordSize {
				binary.LittleEndian.PutUint32(b[i:], 1)
				binary.LittleEndian.PutUint32(b[i+WordSize:], ^uint32(0))
			}
		})},
		// 8-byte flits stepping by the widest delta that still fits the
		// paper's 1..7-byte delta widths: ±(2^55 - 1) around a base.
		{"max-width-deltas", mk(func(b []byte) {
			base := uint64(0x4000_0000_0000_0000)
			step := uint64(1)<<55 - 1
			for i := 0; i < BlockSize; i += FlitBytes {
				v := base
				if (i/FlitBytes)%2 == 1 {
					v = base + step
				}
				binary.LittleEndian.PutUint64(b[i:], v)
			}
		})},
		// Small-magnitude counters: the delta sweet spot.
		{"small-delta-ramp", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += FlitBytes {
				binary.LittleEndian.PutUint64(b[i:], 0x1000_0000+uint64(i)*3)
			}
		})},
		// One 32-bit value repeated: FVC/SC² table hit, BDI zero-delta.
		{"repeated-word", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += WordSize {
				binary.LittleEndian.PutUint32(b[i:], 0xDEADBEEF)
			}
		})},
		// 4-byte base + small positive offsets: the classic BDI block.
		{"bdi-base4-delta1", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += WordSize {
				binary.LittleEndian.PutUint32(b[i:], 0x0808_0000+uint32(i/WordSize))
			}
		})},
		// Zero runs interleaved with small words: FPC's prefix patterns.
		{"fpc-mixed-patterns", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += 2 * WordSize {
				binary.LittleEndian.PutUint32(b[i:], 0)
				binary.LittleEndian.PutUint32(b[i+WordSize:], uint32(int32(-5-int32(i))))
			}
		})},
		// Upper-half of each 32-bit word constant: half-flit deltas.
		{"half-flit-friendly", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += WordSize {
				binary.LittleEndian.PutUint32(b[i:], 0xABCD_0000|uint32(i*7))
			}
		})},
		// Pseudorandom: every codec must fall back to a stored block and
		// say so identically forever.
		{"pseudorandom", mk(func(b []byte) {
			for i := 0; i < BlockSize; i += 8 {
				binary.LittleEndian.PutUint64(b[i:], next())
			}
		})},
	}
}

// corpusAlgorithm returns the codec instance the corpus pins: fresh,
// and for adaptive codecs deterministically trained on the corpus
// inputs themselves (in order). trained reports whether that rule
// applied.
func corpusAlgorithm(t *testing.T, name string) (alg Algorithm, trained bool) {
	t.Helper()
	alg, err := New(name)
	if err != nil {
		t.Fatalf("corpus codec %q: %v", name, err)
	}
	tr, ok := alg.(interface{ Train([][]byte) })
	if !ok {
		return alg, false
	}
	inputs := corpusInputs()
	samples := make([][]byte, len(inputs))
	for i, in := range inputs {
		samples[i] = in.block
	}
	tr.Train(samples)
	return alg, true
}

func vectorsDir(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "vectors")
}

// TestCorpusMatchesEncoders is the drift gate: every committed vector
// must match the current encoder bit for bit, decode back to its input,
// and every registered codec must have a committed file covering every
// corpus input. With -update-vectors it rewrites the files instead.
func TestCorpusMatchesEncoders(t *testing.T) {
	if *updateVectors {
		writeVectorCorpus(t)
	}
	inputs := corpusInputs()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(vectorsDir(t), name+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus file (regenerate with -update-vectors): %v", err)
			}
			var vf vectorFile
			if err := json.Unmarshal(data, &vf); err != nil {
				t.Fatalf("corrupt corpus file %s: %v", path, err)
			}
			if vf.Format != corpusFormat {
				t.Fatalf("corpus format %d, this tree expects %d", vf.Format, corpusFormat)
			}
			if vf.Codec != name {
				t.Fatalf("corpus file %s claims codec %q", path, vf.Codec)
			}
			if len(vf.Vectors) != len(inputs) {
				t.Fatalf("corpus has %d vectors, the input set has %d (regenerate)", len(vf.Vectors), len(inputs))
			}
			alg, trained := corpusAlgorithm(t, name)
			if trained && vf.TrainedOn != "corpus" {
				t.Fatalf("adaptive codec %s: trained_on=%q, want \"corpus\"", name, vf.TrainedOn)
			}
			for i, v := range vf.Vectors {
				if v.Name != inputs[i].name {
					t.Fatalf("vector %d is %q, input set has %q (order is part of the contract)", i, v.Name, inputs[i].name)
				}
				input, err := hex.DecodeString(v.Input)
				if err != nil || len(input) != BlockSize {
					t.Fatalf("vector %q: bad input hex", v.Name)
				}
				if !bytes.Equal(input, inputs[i].block) {
					t.Fatalf("vector %q: committed input differs from the generator's", v.Name)
				}
				wantPayload, err := hex.DecodeString(v.Payload)
				if err != nil {
					t.Fatalf("vector %q: bad payload hex", v.Name)
				}
				c := alg.Compress(input)
				if c.SizeBits != v.SizeBits || c.Stored != v.Stored || !bytes.Equal(c.Payload, wantPayload) {
					t.Errorf("vector %q drifted: got (%d bits, stored=%v, %x), committed (%d bits, stored=%v, %x)",
						v.Name, c.SizeBits, c.Stored, c.Payload, v.SizeBits, v.Stored, wantPayload)
				}
				// The corpus also pins the decoder: committed bytes must
				// decode back to the committed input.
				got, err := alg.Decompress(Compressed{Alg: name, SizeBits: v.SizeBits, Stored: v.Stored, Payload: wantPayload})
				if err != nil {
					t.Errorf("vector %q: committed payload does not decode: %v", v.Name, err)
				} else if !bytes.Equal(got, input) {
					t.Errorf("vector %q: committed payload decodes to the wrong block", v.Name)
				}
			}
		})
	}
}

// writeVectorCorpus regenerates every codec's vector file from the
// current encoders.
func writeVectorCorpus(t *testing.T) {
	t.Helper()
	dir := vectorsDir(t)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		alg, trained := corpusAlgorithm(t, name)
		vf := vectorFile{Format: corpusFormat, Codec: name}
		if trained {
			vf.TrainedOn = "corpus"
		}
		for _, in := range corpusInputs() {
			c := alg.Compress(in.block)
			vf.Vectors = append(vf.Vectors, vectorCase{
				Name:     in.name,
				Input:    hex.EncodeToString(in.block),
				SizeBits: c.SizeBits,
				Stored:   c.Stored,
				Payload:  hex.EncodeToString(c.Payload),
			})
		}
		data, err := json.MarshalIndent(vf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s (%d vectors)\n", path, len(vf.Vectors))
	}
}
