package compress

// CPack implements C-Pack (Chen et al., IEEE TVLSI 2010, the paper's
// reference [4]): each 32-bit word is matched against static frequent
// patterns and against a small FIFO dictionary of recently seen words,
// so both value locality within the line and partial matches are
// exploited. Table 1 of the DISCO paper lists C-Pack at 8-cycle
// decompression.
//
// Per-word codes (from the C-Pack paper, Table I):
//
//	zzzz 00               zero word
//	xxxx 01   +32 bits    uncompressed, pushed into the dictionary
//	mmmm 10   +4 bits     full dictionary match (index)
//	mmxx 1100 +4+16 bits  dict match on upper 2 bytes, lower 2 explicit; pushed
//	zzzx 1101 +8 bits     three zero bytes + one explicit low byte
//	mmmx 1110 +4+8 bits   dict match on upper 3 bytes, low byte explicit; pushed
//
// The dictionary is reset per block so every block stays independently
// decompressible (the hardware compresses paired lines; per-block reset is
// the conservative simplification and is noted in DESIGN.md).
type CPack struct{}

// NewCPack returns a C-Pack compressor.
func NewCPack() *CPack { return &CPack{} }

// Name implements Algorithm.
func (*CPack) Name() string { return "cpack" }

// CompLatency implements Algorithm (2 words/cycle over 16 words).
func (*CPack) CompLatency() int { return 8 }

// DecompLatency implements Algorithm (Table 1: 8 cycles).
func (*CPack) DecompLatency() int { return 8 }

// cpackDictSize is the FIFO dictionary depth (16 entries, 4-bit index).
const cpackDictSize = 16

// cpackDict is the FIFO replacement dictionary shared (in structure) by
// compressor and decompressor.
type cpackDict struct {
	entries [cpackDictSize]uint32
	n       int // valid entries
	next    int // FIFO insertion cursor
}

// push inserts a word FIFO-style.
func (d *cpackDict) push(w uint32) {
	d.entries[d.next] = w
	d.next = (d.next + 1) % cpackDictSize
	if d.n < cpackDictSize {
		d.n++
	}
}

// match scans for the best match, preferring full over 3-byte over 2-byte.
// kind: 0 none, 2 upper-2-byte, 3 upper-3-byte, 4 full.
func (d *cpackDict) match(w uint32) (idx, kind int) {
	best := 0
	bestIdx := -1
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		var k int
		switch {
		case e == w:
			k = 4
		case e>>8 == w>>8:
			k = 3
		case e>>16 == w>>16:
			k = 2
		}
		if k > best {
			best, bestIdx = k, i
		}
	}
	return bestIdx, best
}

// Compress implements Algorithm.
func (a *CPack) Compress(block []byte) Compressed {
	checkBlock(block)
	ws := words32(block)
	// Worst case is 2+32 bits per word (68 bytes); allocate once.
	w := bitWriter{buf: make([]byte, 0, BlockSize+8)}
	var dict cpackDict
	for _, word := range ws {
		if word == 0 {
			w.writeBits(0b00, 2)
			continue
		}
		idx, kind := dict.match(word)
		switch {
		case kind == 4:
			w.writeBits(0b10, 2)
			w.writeBits(uint64(idx), 4)
		case kind == 3:
			w.writeBits(0b1110, 4)
			w.writeBits(uint64(idx), 4)
			w.writeBits(uint64(word)&0xFF, 8)
			dict.push(word)
		case word&0xFFFFFF00 == 0:
			w.writeBits(0b1101, 4)
			w.writeBits(uint64(word)&0xFF, 8)
		case kind == 2:
			w.writeBits(0b1100, 4)
			w.writeBits(uint64(idx), 4)
			w.writeBits(uint64(word)&0xFFFF, 16)
			dict.push(word)
		default:
			w.writeBits(0b01, 2)
			w.writeBits(uint64(word), 32)
			dict.push(word)
		}
	}
	if w.bits() >= 8*BlockSize {
		return stored(a.Name(), block)
	}
	return Compressed{Alg: a.Name(), SizeBits: w.bits(), Payload: w.bytes()}
}

// Decompress implements Algorithm.
func (a *CPack) Decompress(c Compressed) ([]byte, error) {
	if c.Stored {
		return storedRoundTrip(c)
	}
	r := bitReader{buf: c.Payload}
	var dict cpackDict
	out := make([]byte, 0, BlockSize)
	for i := 0; i < BlockSize/WordSize; i++ {
		b0, ok := r.readBit()
		if !ok {
			return nil, ErrCorrupt
		}
		if b0 == 0 {
			b1, ok := r.readBit()
			if !ok {
				return nil, ErrCorrupt
			}
			if b1 == 0 { // 00 zzzz
				out = appendWord(out, 0)
				continue
			}
			// 01 xxxx
			v, ok := r.readBits(32)
			if !ok {
				return nil, ErrCorrupt
			}
			word := uint32(v)
			dict.push(word)
			out = appendWord(out, word)
			continue
		}
		b1, ok := r.readBit()
		if !ok {
			return nil, ErrCorrupt
		}
		if b1 == 0 { // 10 mmmm
			idx, ok := r.readBits(4)
			if !ok || int(idx) >= dict.n {
				return nil, ErrCorrupt
			}
			out = appendWord(out, dict.entries[idx])
			continue
		}
		// 11xx extended codes
		ext, ok := r.readBits(2)
		if !ok {
			return nil, ErrCorrupt
		}
		switch ext {
		case 0b00: // mmxx
			idx, ok1 := r.readBits(4)
			low, ok2 := r.readBits(16)
			if !ok1 || !ok2 || int(idx) >= dict.n {
				return nil, ErrCorrupt
			}
			word := dict.entries[idx]&0xFFFF0000 | uint32(low)
			dict.push(word)
			out = appendWord(out, word)
		case 0b01: // zzzx
			low, ok := r.readBits(8)
			if !ok {
				return nil, ErrCorrupt
			}
			out = appendWord(out, uint32(low))
		case 0b10: // mmmx
			idx, ok1 := r.readBits(4)
			low, ok2 := r.readBits(8)
			if !ok1 || !ok2 || int(idx) >= dict.n {
				return nil, ErrCorrupt
			}
			word := dict.entries[idx]&0xFFFFFF00 | uint32(low)
			dict.push(word)
			out = appendWord(out, word)
		default:
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
