package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecompressNeverPanicsOnGarbage feeds random payloads to every
// decoder: they must return either a block or ErrCorrupt, never panic and
// never return a wrong-sized block. (A router must survive a corrupted
// engine result.)
func TestDecompressNeverPanicsOnGarbage(t *testing.T) {
	algs := trained(t)
	f := func(seed int64, sizeBits uint16, stored bool) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, rng.Intn(80))
		rng.Read(payload)
		c := Compressed{
			Alg:      "fuzz",
			SizeBits: int(sizeBits%600) + 1,
			Stored:   stored,
			Payload:  payload,
		}
		for _, alg := range algs {
			out, err := alg.Decompress(c)
			if err == nil && len(out) != BlockSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTruncatedPayloadsRejected truncates valid encodings at every byte
// boundary: every decoder must fail cleanly (or still produce a full
// block from a prefix that happens to decode, e.g. bit-packed formats
// whose tail bits are padding).
func TestTruncatedPayloadsRejected(t *testing.T) {
	for _, alg := range trained(t) {
		for _, blk := range testBlocks(t)[:6] {
			c := alg.Compress(blk)
			if c.Stored {
				continue
			}
			for cut := 0; cut < len(c.Payload); cut++ {
				tr := c
				tr.Payload = c.Payload[:cut]
				out, err := alg.Decompress(tr)
				if err == nil && len(out) != BlockSize {
					t.Fatalf("%s: truncated payload (cut %d) returned %d bytes",
						alg.Name(), cut, len(out))
				}
			}
		}
	}
}

// TestBitFlipsSurvive flips each bit of a valid encoding: decoders must
// not panic, and when they succeed must return exactly one block.
func TestBitFlipsSurvive(t *testing.T) {
	for _, alg := range trained(t) {
		blk := testBlocks(t)[3] // narrow ints: compresses under all schemes
		c := alg.Compress(blk)
		if c.Stored {
			continue
		}
		for bit := 0; bit < 8*len(c.Payload); bit++ {
			mut := c
			mut.Payload = append([]byte(nil), c.Payload...)
			mut.Payload[bit/8] ^= 1 << uint(7-bit%8)
			out, err := alg.Decompress(mut)
			if err == nil && len(out) != BlockSize {
				t.Fatalf("%s: bit flip %d returned %d bytes", alg.Name(), bit, len(out))
			}
		}
	}
}

// TestCompressIsPure verifies Compress does not alias or mutate its input
// and is deterministic.
func TestCompressIsPure(t *testing.T) {
	for _, alg := range trained(t) {
		for _, blk := range testBlocks(t) {
			orig := append([]byte(nil), blk...)
			c1 := alg.Compress(blk)
			c2 := alg.Compress(blk)
			if !bytes.Equal(blk, orig) {
				t.Fatalf("%s mutated its input", alg.Name())
			}
			if c1.SizeBits != c2.SizeBits || !bytes.Equal(c1.Payload, c2.Payload) {
				t.Fatalf("%s is not deterministic", alg.Name())
			}
			// Mutating the input afterwards must not change the result
			// (no aliasing of the payload buffer).
			blk[0] ^= 0xFF
			if !bytes.Equal(c1.Payload, c2.Payload) {
				t.Fatalf("%s aliases its input", alg.Name())
			}
			blk[0] ^= 0xFF
		}
	}
}

// TestSizeAccountingMatchesPayload: SizeBits must cover the payload the
// decoder actually consumes — the payload may carry padding or be a
// different container, but never more than the hardware size plus
// encoding slack, and a stored block is exactly BlockSize.
func TestSizeAccountingMatchesPayload(t *testing.T) {
	for _, alg := range trained(t) {
		for i, blk := range testBlocks(t) {
			c := alg.Compress(blk)
			if c.Stored {
				if c.SizeBits != 8*BlockSize {
					t.Fatalf("%s block %d: stored with SizeBits %d", alg.Name(), i, c.SizeBits)
				}
				continue
			}
			if c.SizeBytes() > BlockSize {
				t.Fatalf("%s block %d: compressed bigger than raw", alg.Name(), i)
			}
		}
	}
}

// TestRatioMonotonicity: concatenating more zero content never makes a
// block compress worse under any scheme.
func TestRatioMonotonicity(t *testing.T) {
	for _, alg := range trained(t) {
		prevSize := 0
		for zeros := 0; zeros <= BlockSize; zeros += 16 {
			blk := make([]byte, BlockSize)
			rng := rand.New(rand.NewSource(1)) // same suffix randomness each time
			rng.Read(blk)
			for i := 0; i < zeros; i++ {
				blk[i] = 0
			}
			size := alg.Compress(blk).SizeBytes()
			if zeros > 0 && size > prevSize+8 {
				// Allow small non-monotonic wiggle (pattern boundaries),
				// but a strongly zero-padded block must not inflate.
				t.Errorf("%s: %d zero bytes -> %dB, previous %dB", alg.Name(), zeros, size, prevSize)
			}
			prevSize = size
		}
	}
}

// TestSC2EscapeOnlyStream checks a block of entirely unseen values decodes
// correctly through the escape path.
func TestSC2EscapeOnlyStream(t *testing.T) {
	s := NewSC2()
	// Train on zeros only.
	s.Train([][]byte{make([]byte, BlockSize)})
	rng := rand.New(rand.NewSource(5))
	blk := make([]byte, BlockSize)
	rng.Read(blk)
	c := s.Compress(blk)
	out, err := s.Decompress(c)
	if err != nil || !bytes.Equal(out, blk) {
		t.Fatal("escape-only round trip failed")
	}
}

// TestSC2UntrainedDecompressRejected: decoding a non-stored payload with
// an untrained table must fail, not crash.
func TestSC2UntrainedDecompressRejected(t *testing.T) {
	s := NewSC2()
	if _, err := s.Decompress(Compressed{SizeBits: 40, Payload: []byte{1, 2, 3}}); err == nil {
		t.Error("untrained decode should fail")
	}
}

// TestIncrementalDeltaFragmentSizesConsistent: for random fragmentation
// the padded size is monotone in fragment count (more fragments, more
// bubbles) for the same content.
func TestIncrementalDeltaFragmentSizesConsistent(t *testing.T) {
	flits := make([]uint64, 8)
	for i := range flits {
		flits[i] = 0x2000_0000 + uint64(i)
	}
	pad := func(splits []int) int {
		inc := NewIncrementalDelta()
		prev := 0
		for _, s := range splits {
			if !inc.Absorb(flits[prev:s]) {
				t.Fatal("absorb failed")
			}
			prev = s
		}
		if !inc.Absorb(flits[prev:]) || !inc.Done() {
			t.Fatal("final absorb failed")
		}
		return inc.FragmentPaddedBits()
	}
	whole := pad(nil)
	two := pad([]int{4})
	four := pad([]int{2, 4, 6})
	if !(whole <= two && two <= four) {
		t.Errorf("padded bits not monotone in fragmentation: %d, %d, %d", whole, two, four)
	}
}

// FuzzDecompress is the native fuzz target behind `make fuzz-smoke`
// (go test -fuzz=Fuzz): arbitrary payloads through every decoder must
// return a full block or ErrCorrupt — never panic, never a short block.
// Compressing the result of a successful decode must round-trip.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{}, uint16(1), false)
	f.Add([]byte{0x00, 0xFF, 0x13, 0x37}, uint16(32), false)
	f.Add(make([]byte, BlockSize), uint16(8*BlockSize), true)
	algs := trained(f)
	f.Fuzz(func(t *testing.T, payload []byte, sizeBits uint16, stored bool) {
		c := Compressed{
			Alg:      "fuzz",
			SizeBits: int(sizeBits%600) + 1,
			Stored:   stored,
			Payload:  payload,
		}
		for _, alg := range algs {
			out, err := alg.Decompress(c)
			if err != nil {
				continue
			}
			if len(out) != BlockSize {
				t.Fatalf("%s: decoded %d bytes, want %d", alg.Name(), len(out), BlockSize)
			}
			// A decodable block must survive its own compress cycle.
			rt := alg.Compress(out)
			back, err := alg.Decompress(rt)
			if err != nil || !bytes.Equal(back, out) {
				t.Fatalf("%s: round trip after fuzz decode failed: %v", alg.Name(), err)
			}
		}
	})
}
