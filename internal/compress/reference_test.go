package compress

// Scalar reference encoders: verbatim copies of the pre-kernel (word-at-
// a-time, branchy) Compress implementations, retained as the ground
// truth for the word-parallel kernels. FuzzKernelEquivalence asserts the
// rewritten hot paths produce bit-identical Compressed results against
// these references for every codec; the copies deliberately share as
// little as possible with the production code (only the stable bitWriter
// and the sign-extension helpers, whose formats are pinned by their own
// oracle tests).

import "encoding/binary"

// --- delta ------------------------------------------------------------------

func refMinDeltaWidth(x int64, max int) int {
	switch {
	case fitsSigned(x, 8):
		return 1
	case fitsSigned(x, 16) && max >= 2:
		return 2
	case fitsSigned(x, 32) && max >= 4:
		return 4
	}
	return 0
}

func refCompressHalfDelta(block []byte, max int) ([]byte, int) {
	var elems [halfDeltaElems]uint32
	for i := range elems {
		elems[i] = binary.LittleEndian.Uint32(block[i*4:])
	}
	var wZero [halfDeltaElems - 1]int
	req := 1
	for i := 0; i < halfDeltaElems-1; i++ {
		dZero := int64(int32(elems[i+1]))
		wz := refMinDeltaWidth(dZero, max)
		wZero[i] = wz
		w := wz
		if w != 1 {
			dBase := int64(int32(elems[i+1] - elems[0]))
			if wb := refMinDeltaWidth(dBase, max); wb != 0 && (w == 0 || wb < w) {
				w = wb
			}
		}
		if w == 0 {
			return nil, 0
		}
		if w > req {
			req = w
		}
	}
	out := make([]byte, 7+(halfDeltaElems-1)*req)
	out[3], out[4], out[5], out[6] = block[0], block[1], block[2], block[3]
	var zeroSel uint16
	pos := 7
	for i := 0; i < halfDeltaElems-1; i++ {
		var v uint32
		if wZero[i] != 0 && wZero[i] <= req {
			zeroSel |= 1 << uint(i)
			v = elems[i+1]
		} else {
			v = elems[i+1] - elems[0]
		}
		for b := 0; b < req; b++ {
			out[pos+b] = byte(v >> uint(8*b))
		}
		pos += req
	}
	out[0], out[1], out[2] = byte(0xF0|req), byte(zeroSel), byte(zeroSel>>8)
	return out, req
}

func refCompressDelta(name string, block []byte) Compressed {
	flits := words64(block)
	var wZero [deltaFlits]int
	req8 := 1
	for i := 0; i < deltaFlits; i++ {
		wz := refMinDeltaWidth(int64(flits[i+1]), 4)
		wZero[i] = wz
		w := wz
		if w != 1 {
			if wb := refMinDeltaWidth(int64(flits[i+1]-flits[0]), 4); wb != 0 && (w == 0 || wb < w) {
				w = wb
			}
		}
		if w == 0 {
			req8 = 0
			break
		}
		if w > req8 {
			req8 = w
		}
	}
	capHalf := 0
	switch {
	case req8 == 0 || req8 == 4:
		capHalf = 2
	case req8 == 2:
		capHalf = 1
	}
	if capHalf != 0 {
		if payload, reqHalf := refCompressHalfDelta(block, capHalf); payload != nil {
			return Compressed{Alg: name, SizeBits: halfDeltaSizeBits(reqHalf), Payload: payload}
		}
	}
	if req8 == 0 {
		return stored(name, block)
	}
	out := make([]byte, 2+FlitBytes+deltaFlits*req8)
	binary.LittleEndian.PutUint64(out[2:], flits[0])
	var zeroSel uint8
	pos := 2 + FlitBytes
	for i := 0; i < deltaFlits; i++ {
		var v uint64
		if wZero[i] != 0 && wZero[i] <= req8 {
			zeroSel |= 1 << uint(i)
			v = flits[i+1]
		} else {
			v = flits[i+1] - flits[0]
		}
		for b := 0; b < req8; b++ {
			out[pos+b] = byte(v >> uint(8*b))
		}
		pos += req8
	}
	out[0], out[1] = byte(req8), zeroSel
	return Compressed{Alg: name, SizeBits: deltaSizeBits(req8), Payload: out}
}

// --- bdi --------------------------------------------------------------------

func refBDIElement(block []byte, width, i int) uint64 {
	switch width {
	case 8:
		return binary.LittleEndian.Uint64(block[i*8:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(block[i*4:]))
	default:
		return uint64(binary.LittleEndian.Uint16(block[i*2:]))
	}
}

func refBDITry(alg string, block []byte, g bdiEncoding) (Compressed, bool) {
	n := BlockSize / g.baseBytes
	dbits := 8 * g.deltaByts
	var base uint64
	haveBase := false
	for i := 0; i < n; i++ {
		e := refBDIElement(block, g.baseBytes, i)
		if !fitsSigned(int64(signExtendWidth(e, g.baseBytes)), dbits) {
			base, haveBase = e, true
			break
		}
	}
	mask := make([]byte, (n+7)/8)
	deltas := make([]byte, 0, n*g.deltaByts)
	for i := 0; i < n; i++ {
		e := refBDIElement(block, g.baseBytes, i)
		se := signExtendWidth(e, g.baseBytes)
		var d int64
		switch {
		case fitsSigned(se, dbits):
			d = se
		case haveBase && fitsSigned(wrapDiff(e, base, g.baseBytes), dbits):
			d = wrapDiff(e, base, g.baseBytes)
			mask[i/8] |= 1 << uint(i%8)
		default:
			return Compressed{}, false
		}
		u := uint64(d)
		for b := 0; b < g.deltaByts; b++ {
			deltas = append(deltas, byte(u>>uint(8*b)))
		}
	}
	baseBytes := 0
	if haveBase {
		baseBytes = g.baseBytes
	}
	sizeBits := bdiEncodingBits + n + 8*baseBytes + 8*len(deltas)
	payload := make([]byte, 0, 2+len(mask)+baseBytes+len(deltas))
	payload = append(payload, g.id)
	if haveBase {
		payload = append(payload, 1)
		var bb [8]byte
		binary.LittleEndian.PutUint64(bb[:], base)
		payload = append(payload, bb[:g.baseBytes]...)
	} else {
		payload = append(payload, 0)
	}
	payload = append(payload, mask...)
	payload = append(payload, deltas...)
	return Compressed{Alg: alg, SizeBits: sizeBits, Payload: payload}, true
}

func refCompressBDI(name string, block []byte) Compressed {
	zero := true
	for _, b := range block {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return Compressed{Alg: name, SizeBits: bdiEncodingBits + 4, Payload: []byte{0}}
	}
	rep := binary.LittleEndian.Uint64(block)
	isRep := true
	for i := FlitBytes; i < BlockSize; i += FlitBytes {
		if binary.LittleEndian.Uint64(block[i:]) != rep {
			isRep = false
			break
		}
	}
	if isRep {
		p := make([]byte, 1+8)
		p[0] = 1
		binary.LittleEndian.PutUint64(p[1:], rep)
		return Compressed{Alg: name, SizeBits: bdiEncodingBits + 64, Payload: p}
	}
	best := Compressed{SizeBits: 8 * BlockSize}
	found := false
	for _, g := range bdiGeometries {
		c, ok := refBDITry(name, block, g)
		if ok && (!found || c.SizeBits < best.SizeBits) {
			best, found = c, true
		}
	}
	if found && best.SizeBits < 8*BlockSize {
		return best
	}
	return stored(name, block)
}

// --- fpc / sfpc -------------------------------------------------------------

func refHalfIsSE8(h uint16) bool { return fitsSigned(int64(int16(h)), 8) }

func refCompressFPC(name string, block []byte) Compressed {
	ws := words32(block)
	w := bitWriter{buf: make([]byte, 0, BlockSize+8)}
	for i := 0; i < len(ws); {
		if ws[i] == 0 {
			run := 1
			for i+run < len(ws) && ws[i+run] == 0 && run < 8 {
				run++
			}
			w.writeBits(fpcZeroRun, 3)
			w.writeBits(uint64(run-1), 3)
			i += run
			continue
		}
		word := ws[i]
		se := int64(int32(word))
		switch {
		case fitsSigned(se, 4):
			w.writeBits(fpcSE4, 3)
			w.writeBits(uint64(word)&0xF, 4)
		case fitsSigned(se, 8):
			w.writeBits(fpcSE8, 3)
			w.writeBits(uint64(word)&0xFF, 8)
		case fitsSigned(se, 16):
			w.writeBits(fpcSE16, 3)
			w.writeBits(uint64(word)&0xFFFF, 16)
		case word&0xFFFF == 0:
			w.writeBits(fpcPadded16, 3)
			w.writeBits(uint64(word>>16), 16)
		case refHalfIsSE8(uint16(word>>16)) && refHalfIsSE8(uint16(word)):
			w.writeBits(fpcTwoHalf, 3)
			w.writeBits(uint64(word>>16)&0xFF, 8)
			w.writeBits(uint64(word)&0xFF, 8)
		case word == (word&0xFF)|(word&0xFF)<<8|(word&0xFF)<<16|(word&0xFF)<<24:
			w.writeBits(fpcRepByte, 3)
			w.writeBits(uint64(word)&0xFF, 8)
		default:
			w.writeBits(fpcUncompact, 3)
			w.writeBits(uint64(word), 32)
		}
		i++
	}
	if w.bits() >= 8*BlockSize {
		return stored(name, block)
	}
	return Compressed{Alg: name, SizeBits: w.bits(), Payload: w.bytes()}
}

func refCompressSFPC(name string, block []byte) Compressed {
	ws := words32(block)
	w := bitWriter{buf: make([]byte, 0, BlockSize+8)}
	for _, word := range ws {
		se := int64(int32(word))
		switch {
		case word == 0:
			w.writeBits(sfpcZero, 2)
		case fitsSigned(se, 8):
			w.writeBits(sfpcSE8, 2)
			w.writeBits(uint64(word)&0xFF, 8)
		case fitsSigned(se, 16):
			w.writeBits(sfpcSE16, 2)
			w.writeBits(uint64(word)&0xFFFF, 16)
		default:
			w.writeBits(sfpcUncomp, 2)
			w.writeBits(uint64(word), 32)
		}
	}
	if w.bits() >= 8*BlockSize {
		return stored(name, block)
	}
	return Compressed{Alg: name, SizeBits: w.bits(), Payload: w.bytes()}
}

// --- sc2 --------------------------------------------------------------------

// refSC2Index rebuilds the value -> symbol map from the trained table
// (the production encoder no longer keeps a map).
func refSC2Index(s *SC2) map[uint32]int {
	idx := make(map[uint32]int, len(s.values))
	for i, v := range s.values {
		idx[v] = i
	}
	return idx
}

func refCompressSC2(s *SC2, idx map[uint32]int, block []byte) Compressed {
	if !s.trained {
		return stored(s.Name(), block)
	}
	var w bitWriter
	w.buf = make([]byte, 0, BlockSize+8)
	esc := s.codes[s.escapeSym()]
	for i := 0; i < BlockSize; i += WordSize {
		word := binary.LittleEndian.Uint32(block[i:])
		if sym, ok := idx[word]; ok {
			c := s.codes[sym]
			w.writeBits(uint64(c.bits), c.len)
		} else {
			w.writeBits(uint64(esc.bits), esc.len)
			w.writeBits(uint64(word), 32)
		}
		if w.bits()+sc2HeaderBits >= 8*BlockSize {
			return stored(s.Name(), block)
		}
	}
	return Compressed{Alg: s.Name(), SizeBits: w.bits() + sc2HeaderBits, Payload: w.bytes()}
}

// --- hybrid -----------------------------------------------------------------

// refCompressHybrid is the pre-probe selection loop: run every unit's
// full encoder, keep the strictly smallest non-stored result (earliest
// unit wins ties), prepend the unit tag.
func refCompressHybrid(h *Hybrid, block []byte) Compressed {
	best := -1
	var bestC Compressed
	for i, u := range h.units {
		c := u.Compress(block)
		if c.Stored {
			continue
		}
		if best < 0 || c.SizeBits < bestC.SizeBits {
			best, bestC = i, c
		}
	}
	if best < 0 || bestC.SizeBits+hybridTagBits >= 8*BlockSize {
		return stored(h.name, block)
	}
	payload := append([]byte{byte(best)}, bestC.Payload...)
	return Compressed{
		Alg:      h.name,
		SizeBits: bestC.SizeBits + hybridTagBits,
		Stored:   bestC.Stored,
		Payload:  payload,
	}
}
