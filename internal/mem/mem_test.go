package mem

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if _, err := New(Config{Banks: 0, AccessLatency: 1}); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := New(Config{Banks: 1, AccessLatency: 0}); err == nil {
		t.Error("zero latency should fail")
	}
}

func TestUncontendedLatency(t *testing.T) {
	d, _ := New(DefaultConfig())
	done := d.Access(0, false, 100)
	if done != 100+160 {
		t.Errorf("uncontended access done at %d, want 260", done)
	}
	if d.Reads != 1 || d.Writes != 0 {
		t.Error("counters wrong")
	}
}

func TestSameBankContention(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.Access(0, false, 0)
	done := d.Access(8, false, 0) // addr 8 % 8 banks == bank 0
	if done != 48+160 {
		t.Errorf("bank-conflicted access done at %d, want 208", done)
	}
	if d.StallCycles != 48 {
		t.Errorf("StallCycles = %d, want 48", d.StallCycles)
	}
}

func TestDifferentBanksOnlyChannelSerialized(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.Access(0, false, 0)
	done := d.Access(1, true, 0) // bank 1: only channel busy (8 cycles)
	if done != 8+160 {
		t.Errorf("channel-serialized access done at %d, want 168", done)
	}
	if d.Writes != 1 {
		t.Error("write counter wrong")
	}
	if d.Accesses() != 2 {
		t.Error("Accesses wrong")
	}
}

func TestLaterIssueNoStall(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.Access(0, false, 0)
	done := d.Access(8, false, 1000) // long after bank freed
	if done != 1160 {
		t.Errorf("done = %d, want 1160", done)
	}
	if d.StallCycles != 0 {
		t.Error("no stall expected")
	}
}

// Property: completion is never earlier than issue + fixed latency, and
// per-bank completions are strictly separated by BankBusy.
func TestAccessOrderingProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(addrs []uint16, gaps []uint8) bool {
		d, _ := New(cfg)
		now := uint64(0)
		lastPerBank := map[int]uint64{}
		for i, a := range addrs {
			if i < len(gaps) {
				now += uint64(gaps[i])
			}
			done := d.Access(uint64(a), i%2 == 0, now)
			if done < now+cfg.AccessLatency {
				return false
			}
			b := int(uint64(a) % uint64(cfg.Banks))
			if prev, ok := lastPerBank[b]; ok {
				if done < prev+cfg.BankBusy {
					return false
				}
			}
			lastPerBank[b] = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
