// Package mem models the off-chip DRAM of Table 2 (4 GB, 1 rank, 1
// channel, 8 banks) at the fidelity the DISCO evaluation needs: a fixed
// access latency plus bank-busy and channel-serialization contention. The
// DISCO paper treats memory as a latency/energy sink behind the single
// memory controller; detailed DDR timing is out of scope (DESIGN.md §3).
package mem

import "fmt"

// Config describes the DRAM device behind the memory controller.
type Config struct {
	// Banks is the DRAM bank count (Table 2: 8).
	Banks int
	// AccessLatency is the fixed row access latency in core cycles
	// (activate + CAS + transfer start); ~80 ns at 2 GHz.
	AccessLatency uint64
	// BankBusy is the bank recovery time between accesses to the same
	// bank (tRC-ish) in core cycles.
	BankBusy uint64
	// ChannelBusy is the data-bus serialization time per 64-byte transfer
	// in core cycles (single channel).
	ChannelBusy uint64
}

// DefaultConfig returns a 2 GHz-core view of a DDR3-era single channel.
func DefaultConfig() Config {
	return Config{Banks: 8, AccessLatency: 160, BankBusy: 48, ChannelBusy: 8}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("mem: need at least one bank, got %d", c.Banks)
	}
	if c.AccessLatency == 0 {
		return fmt.Errorf("mem: zero access latency")
	}
	return nil
}

// DRAM is the device model. It is driven by the memory controller: each
// Access returns the cycle at which the data is available (read) or
// absorbed (write).
type DRAM struct {
	cfg         Config
	bankFree    []uint64
	channelFree uint64

	Reads  uint64
	Writes uint64
	// StallCycles accumulates contention-induced waiting beyond the fixed
	// latency (diagnostics).
	StallCycles uint64
}

// New builds a DRAM model.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, bankFree: make([]uint64, cfg.Banks)}, nil
}

// bank maps a block address to a DRAM bank.
func (d *DRAM) bank(addr uint64) int { return int(addr % uint64(d.cfg.Banks)) }

// Access schedules one 64-byte read or write issued at cycle `now` and
// returns the completion cycle.
func (d *DRAM) Access(addr uint64, write bool, now uint64) uint64 {
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	b := d.bank(addr)
	start := now
	if d.bankFree[b] > start {
		start = d.bankFree[b]
	}
	if d.channelFree > start {
		start = d.channelFree
	}
	d.StallCycles += start - now
	d.bankFree[b] = start + d.cfg.BankBusy
	d.channelFree = start + d.cfg.ChannelBusy
	return start + d.cfg.AccessLatency
}

// Accesses returns the total access count.
func (d *DRAM) Accesses() uint64 { return d.Reads + d.Writes }
