// Package stats provides small statistics utilities shared by the DISCO
// simulators: online mean/variance accumulators, fixed-bucket histograms,
// named counters and geometric means. Everything is deterministic and
// allocation-light so it can sit on simulator hot paths.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean is an online arithmetic-mean and variance accumulator using
// Welford's algorithm. The zero value is ready to use.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the accumulator.
func (m *Mean) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddN folds the same sample in count times. It is a closed-form O(1)
// update (count copies of x form a zero-variance distribution that is
// merged with the Chan et al. formula), so it is safe on hot paths with
// large counts (e.g. per-flit accounting).
func (m *Mean) AddN(x float64, count uint64) {
	if count == 0 {
		return
	}
	o := Mean{n: count, mean: x, min: x, max: x}
	m.Merge(&o)
}

// N returns the number of samples seen.
func (m *Mean) N() uint64 { return m.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (m *Mean) Mean() float64 { return m.mean }

// Variance returns the sample variance, or 0 with fewer than two samples.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest sample, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Merge folds another accumulator into m (Chan et al. parallel update).
func (m *Mean) Merge(o *Mean) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// Reset returns the accumulator to its zero state.
func (m *Mean) Reset() { *m = Mean{} }

// meanWireSize is the fixed MarshalBinary frame: five 8-byte words.
const meanWireSize = 5 * 8

// MarshalBinary encodes the accumulator as five fixed little-endian
// 64-bit words (n, then the IEEE-754 bits of mean/m2/min/max). The
// encoding is exact — UnmarshalBinary reconstructs a bit-identical
// accumulator — so results persisted by internal/store replay with
// byte-identical derived artifacts. It also satisfies
// encoding.BinaryMarshaler, which encoding/gob consults for types with
// unexported fields.
func (m Mean) MarshalBinary() ([]byte, error) {
	buf := make([]byte, meanWireSize)
	binary.LittleEndian.PutUint64(buf[0:], m.n)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(m.mean))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(m.m2))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(m.min))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(m.max))
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary frame.
func (m *Mean) UnmarshalBinary(data []byte) error {
	if len(data) != meanWireSize {
		return fmt.Errorf("stats: Mean frame is %d bytes, want %d", len(data), meanWireSize)
	}
	m.n = binary.LittleEndian.Uint64(data[0:])
	m.mean = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	m.m2 = math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	m.min = math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	m.max = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	return nil
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped; an empty (or all-skipped) input yields 0.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Histogram is a fixed-width bucket histogram over [0, Buckets*Width) with
// an overflow bucket. The zero value is not usable; construct with
// NewHistogram.
type Histogram struct {
	width    float64
	counts   []uint64
	overflow uint64
	total    uint64
	sum      float64
	max      float64
}

// NewHistogram builds a histogram with the given number of buckets, each
// width wide. It panics on non-positive arguments.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets <= 0 || width <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape %d x %g", buckets, width))
	}
	return &Histogram{width: width, counts: make([]uint64, buckets)}
}

// Add records one sample. Negative samples land in bucket 0.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	if h.total == 1 || x > h.max {
		h.max = x
	}
	if x < 0 {
		h.counts[0]++
		return
	}
	q := x / h.width
	if q >= float64(len(h.counts)) {
		h.overflow++
		return
	}
	h.counts[int(q)]++
}

// N returns the total number of samples.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the mean of all recorded samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Overflow returns the count of samples above the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Max returns the largest sample recorded, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (0<p<=100).
// Bucketed samples report the upper edge of the bucket the percentile
// lands in — i.e. (i+1)*width for bucket i, so the true value is
// overestimated by at most one bucket width. When the percentile lands
// in the overflow bucket the bound is the maximum observed sample (the
// tightest upper bound the histogram still knows), never +Inf.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return h.max
}

// CounterSet is a set of named uint64 counters with deterministic
// (sorted) formatting.
type CounterSet struct {
	m map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (c *CounterSet) Inc(name string, delta uint64) { c.m[name] += delta }

// Get returns the named counter's value (0 if never incremented).
func (c *CounterSet) Get(name string) uint64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *CounterSet) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge adds all counters from o into c.
func (c *CounterSet) Merge(o *CounterSet) {
	for k, v := range o.m {
		c.m[k] += v
	}
}

// String renders the counters one per line, sorted by name.
func (c *CounterSet) String() string {
	var b strings.Builder
	for _, k := range c.Names() {
		fmt.Fprintf(&b, "%-32s %d\n", k, c.m[k])
	}
	return b.String()
}

// Ratio returns a/b as float64, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
