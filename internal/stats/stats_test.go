package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	var m Mean
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5", m.N())
	}
	if !almostEq(m.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %g, want 3", m.Mean())
	}
	if !almostEq(m.Variance(), 2.5, 1e-12) {
		t.Errorf("Variance = %g, want 2.5", m.Variance())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want 1/5", m.Min(), m.Max())
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.StdDev() != 0 || m.N() != 0 {
		t.Error("zero-value Mean should report zeros")
	}
}

func TestMeanSingleSample(t *testing.T) {
	var m Mean
	m.Add(7)
	if m.Variance() != 0 {
		t.Errorf("Variance with one sample = %g, want 0", m.Variance())
	}
	if m.Min() != 7 || m.Max() != 7 {
		t.Error("Min/Max with one sample should equal the sample")
	}
}

func TestMeanAddN(t *testing.T) {
	var a, b Mean
	a.Add(1)
	a.AddN(4, 3)
	b.Add(1)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.N() != b.N() || !almostEq(a.Mean(), b.Mean(), 1e-12) {
		t.Error("AddN should match repeated Add")
	}
	if !almostEq(a.Variance(), b.Variance(), 1e-12) {
		t.Errorf("AddN variance %g, repeated-Add variance %g", a.Variance(), b.Variance())
	}
	if a.Min() != 1 || a.Max() != 4 {
		t.Errorf("AddN min/max = %g/%g, want 1/4", a.Min(), a.Max())
	}
	a.AddN(9, 0)
	if a.N() != b.N() {
		t.Error("AddN with count 0 should be a no-op")
	}
}

// AddN must be a closed-form update, not a loop: folding in a
// flit-count-scale repeat must be instant and exact.
func TestMeanAddNLargeCountClosedForm(t *testing.T) {
	var m Mean
	m.Add(2)
	m.AddN(6, 1<<40)
	if m.N() != 1<<40+1 {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEq(m.Mean(), 6, 1e-6) {
		t.Errorf("Mean = %g, want ~6", m.Mean())
	}
	if m.Min() != 2 || m.Max() != 6 {
		t.Errorf("Min/Max = %g/%g, want 2/6", m.Min(), m.Max())
	}
}

func TestMeanMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var whole, a, b Mean
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 3
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %g != %g", a.Mean(), whole.Mean())
	}
	if !almostEq(a.Variance(), whole.Variance(), 1e-6) {
		t.Errorf("merged variance %g != %g", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestMeanMergeIntoEmpty(t *testing.T) {
	var a, b Mean
	b.Add(2)
	b.Add(4)
	a.Merge(&b)
	if a.N() != 2 || !almostEq(a.Mean(), 3, 1e-12) {
		t.Error("merge into empty should copy")
	}
	var empty Mean
	a.Merge(&empty)
	if a.N() != 2 {
		t.Error("merging empty should be a no-op")
	}
}

func TestMeanReset(t *testing.T) {
	var m Mean
	m.Add(5)
	m.Reset()
	if m.N() != 0 || m.Mean() != 0 {
		t.Error("Reset should zero the accumulator")
	}
}

func TestGeoMean(t *testing.T) {
	g := GeoMean([]float64{1, 4, 16})
	if !almostEq(g, 4, 1e-12) {
		t.Errorf("GeoMean = %g, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Error("GeoMean of non-positive values should be 0")
	}
	if !almostEq(GeoMean([]float64{2, 0, 8}), 4, 1e-12) {
		t.Error("GeoMean should skip non-positive entries")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(10, 1)
	for _, x := range []float64{0.5, 1.5, 1.9, 9.9, 100} {
		h.Add(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 2 || h.Bucket(9) != 1 {
		t.Error("bucket counts wrong")
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if !almostEq(h.Mean(), (0.5+1.5+1.9+9.9+100)/5, 1e-12) {
		t.Errorf("Mean = %g", h.Mean())
	}
}

func TestHistogramNegativeToBucketZero(t *testing.T) {
	h := NewHistogram(4, 2)
	h.Add(-3)
	if h.Bucket(0) != 1 {
		t.Error("negative sample should land in bucket 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100, 1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if p := h.Percentile(50); p != 50 {
		t.Errorf("P50 = %g, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Errorf("P99 = %g, want 99", p)
	}
	if p := h.Percentile(1); p != 1 {
		t.Errorf("P1 = %g, want 1", p)
	}
}

func TestHistogramPercentileOverflow(t *testing.T) {
	h := NewHistogram(2, 1)
	h.Add(10)
	h.Add(25)
	// A percentile landing in the overflow bucket reports the maximum
	// observed sample — a finite, meaningful bound — not +Inf.
	if p := h.Percentile(99); p != 25 {
		t.Errorf("overflow percentile = %g, want max sample 25", p)
	}
	if h.Max() != 25 {
		t.Errorf("Max = %g, want 25", h.Max())
	}
}

func TestHistogramMax(t *testing.T) {
	h := NewHistogram(4, 1)
	if h.Max() != 0 {
		t.Error("empty histogram Max should be 0")
	}
	h.Add(-7)
	if h.Max() != -7 {
		t.Errorf("Max after one negative sample = %g, want -7", h.Max())
	}
	h.Add(3)
	if h.Max() != 3 {
		t.Errorf("Max = %g, want 3", h.Max())
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram(2, 1)
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestNewHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero buckets")
		}
	}()
	NewHistogram(0, 1)
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("missing") != 0 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	o := NewCounterSet()
	o.Inc("a", 9)
	o.Inc("c", 1)
	c.Merge(o)
	if c.Get("a") != 10 || c.Get("c") != 1 {
		t.Error("merge wrong")
	}
	if s := c.String(); len(s) == 0 {
		t.Error("String should not be empty")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
}

// Property: Welford mean equals naive mean for any input.
func TestMeanMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		var m Mean
		sum := 0.0
		for _, x := range clean {
			m.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return m.Mean() == 0
		}
		naive := sum / float64(len(clean))
		return almostEq(m.Mean(), naive, 1e-6*(1+math.Abs(naive)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals samples added, and bucket sum + overflow
// equals total.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(16, 4)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var sum uint64
		for i := 0; i < 16; i++ {
			sum += h.Bucket(i)
		}
		return h.N() == uint64(n) && sum+h.Overflow() == h.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
