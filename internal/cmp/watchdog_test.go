package cmp

import (
	"errors"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/fault"
)

// TestWatchdogDetectsWedge wedges the network — every credit is lost and
// never restored within the run — and checks the progress watchdog fires
// a typed *StallError with a populated diagnostic snapshot, long before
// the MaxCycles budget.
func TestWatchdogDetectsWedge(t *testing.T) {
	cfg := quickCfg(DISCO, "bodytrack")
	cfg.Fault = &fault.Spec{Seed: 1, CreditRate: 1, CreditRecovery: 50_000_000}
	cfg.StallWindow = 2_000
	cfg.MaxCycles = 5_000_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = sys.Run()
	if err == nil {
		t.Fatal("run with every credit lost should stall")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError, got %T: %v", err, err)
	}
	if se.Reason == "" || se.Window == 0 {
		t.Errorf("stall error missing reason/window: %+v", se)
	}
	if se.Cycle >= cfg.MaxCycles {
		t.Errorf("watchdog fired at cycle %d, not before the %d budget", se.Cycle, cfg.MaxCycles)
	}
	if se.Snapshot == nil {
		t.Fatal("stall error carries no snapshot")
	}
	if se.Snapshot.Fault == nil || se.Snapshot.Fault.CreditsOutstanding == 0 {
		t.Errorf("snapshot should show outstanding lost credits: %+v", se.Snapshot.Fault)
	}
	text := se.Snapshot.String()
	if !strings.Contains(text, "lost-credits") {
		t.Errorf("snapshot rendering should show lost credits:\n%s", text)
	}
	if !strings.Contains(err.Error(), "no forward progress") {
		t.Errorf("error should name the stall: %v", err)
	}
}

// TestCycleBudgetIsTyped checks the MaxCycles abort reports through the
// same *StallError type (with a snapshot) instead of a bare string.
func TestCycleBudgetIsTyped(t *testing.T) {
	cfg := quickCfg(Baseline, "bodytrack")
	cfg.MaxCycles = 500 // far too few to finish
	cfg.StallWindow = 1_000_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = sys.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError for budget exhaustion, got %T: %v", err, err)
	}
	if se.Snapshot == nil || !strings.Contains(se.Reason, "budget") {
		t.Errorf("budget stall missing snapshot or reason: %+v", se)
	}
}

// TestChaosRunCompletes is the acceptance scenario: with all three fault
// classes armed the full system must complete without panics and report
// nonzero recovery counters, and the run must stay deterministic.
func TestChaosRunCompletes(t *testing.T) {
	runOnce := func() Results {
		cfg := quickCfg(DISCO, "bodytrack")
		cfg.Fault = &fault.Spec{Seed: 7, EngineRate: 0.5, EngineStuck: 16, PayloadRate: 0.01, CreditRate: 0.005}
		return run(t, cfg)
	}
	r := runOnce()
	if r.Fault == nil {
		t.Fatal("fault-armed run reported no fault stats")
	}
	if r.Fault.EngineFaults == 0 || r.Fault.PayloadFlips == 0 || r.Fault.CreditsDropped == 0 {
		t.Fatalf("chaos run should exercise all three fault classes: %s", r.Fault)
	}
	if r.Fault.BreakerTrips == 0 {
		t.Errorf("engine faults at rate 0.5 should trip the circuit breaker: %s", r.Fault)
	}
	if r.Fault.Recoveries() == 0 {
		t.Errorf("chaos run recovered nothing: %s", r.Fault)
	}
	if !strings.Contains(r.Detailed(), "fault ") {
		t.Error("Detailed() should include the fault line when armed")
	}
	r2 := runOnce()
	if r.Cycles != r2.Cycles || *r.Fault != *r2.Fault {
		t.Errorf("chaos runs with the same seed diverge:\n  %s\n  %s", r.Fault, r2.Fault)
	}
	t.Logf("chaos: cycles=%d %s", r.Cycles, r.Fault)
}

// TestFaultFreeResultsIdentical is the cmp-level zero-overhead-off gate:
// a nil fault spec and a silent one must produce identical Results.
func TestFaultFreeResultsIdentical(t *testing.T) {
	base := run(t, quickCfg(DISCO, "bodytrack"))
	cfg := quickCfg(DISCO, "bodytrack")
	cfg.Fault = &fault.Spec{} // compiled in, disabled
	silent := run(t, cfg)
	if silent.Fault != nil {
		t.Error("silent spec must not produce fault stats")
	}
	if base.Cycles != silent.Cycles || base.AvgMissLatency != silent.AvgMissLatency ||
		base.Net != silent.Net {
		t.Errorf("silent fault spec changed the run: cycles %d vs %d", base.Cycles, silent.Cycles)
	}
}
