package cmp

import (
	"strconv"

	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/noc"
)

// Network exposes the system's NoC for observability attachments
// (tracers, metrics); the returned network is owned by the system.
func (s *System) Network() *noc.Network { return s.net }

// Close releases resources held by the system — currently the NoC's
// worker pool when Config.SimWorkers armed the parallel engine. The
// system remains usable afterwards on the serial engine. No-op when the
// run was serial.
func (s *System) Close() { s.net.Close() }

// AttachMetrics registers the full-system observability surface in reg:
// the NoC scope (see noc.Network.AttachMetrics) plus a "cmp" scope with
// memory-hierarchy counters, latency accumulators and a per-tile
// rollup. interval is the time-series sampling period in cycles (0 =
// noc.DefaultSampleInterval). Call before Run; export after.
func (s *System) AttachMetrics(reg *metrics.Registry, interval uint64) {
	s.net.AttachMetrics(reg, interval)

	cs := reg.Scope("cmp")
	cs.CounterFunc("l2_hits", func() uint64 { return s.l2Hits })
	cs.CounterFunc("l2_misses", func() uint64 { return s.l2Misses })
	cs.CounterFunc("bank_accesses", func() uint64 { return s.bankAccesses })
	cs.CounterFunc("bank_bytes", func() uint64 { return s.bankBytes })
	cs.CounterFunc("dram_accesses", func() uint64 { return s.dramAccesses() })
	cs.CounterFunc("endpoint_compressions", func() uint64 { return s.compOps })
	cs.CounterFunc("endpoint_decompressions", func() uint64 { return s.decompOps })
	cs.CounterFunc("residual_conversions", func() uint64 { return s.residualOps })
	cs.CounterFunc("writeback_packets", func() uint64 { return s.wbPackets })
	cs.ObserveMean("miss_latency_onchip", &s.missLatency)
	cs.ObserveMean("miss_latency_total", &s.missTotal)
	cs.ObserveHistogram("miss_latency_hist", s.missHist)

	for i := 0; i < s.cfg.tiles(); i++ {
		i := i
		ts := cs.Scope("tile", strconv.Itoa(i))
		ts.CounterFunc("l1_hits", func() uint64 { return s.l1s[i].Hits })
		ts.CounterFunc("l1_misses", func() uint64 { return s.l1s[i].Misses })
		ts.CounterFunc("bank_hits", func() uint64 { return s.banks[i].Hits })
		ts.CounterFunc("bank_misses", func() uint64 { return s.banks[i].Misses })
	}

	// Time-series probes: memory-side pulse alongside the NoC's.
	reg.AddSample("cmp.l2_misses", func() float64 { return float64(s.l2Misses) })
	reg.AddSample("cmp.outstanding_txns", func() float64 {
		n := 0
		for _, m := range s.txns {
			n += len(m)
		}
		return float64(n)
	})
}
