package cmp

import (
	"strconv"

	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/obs"
)

// Network exposes the system's NoC for observability attachments
// (tracers, metrics); the returned network is owned by the system.
func (s *System) Network() *noc.Network { return s.net }

// NowCycle returns the current simulated cycle. Safe to read from the
// simulation goroutine or from a probe callback; concurrent readers
// (HTTP handlers) must go through boundary-published snapshots instead.
func (s *System) NowCycle() uint64 { return s.now }

// AttachProfiler arms the NoC's stage-level wall-clock profiler, sized
// to the engine's configured worker count. Purely observational: the
// run's artifacts are byte-identical with or without it.
func (s *System) AttachProfiler(p *obs.PhaseProfiler) { s.net.AttachProfiler(p) }

// SetProbe installs fn to run on the simulation goroutine every `every`
// cycles (0 = the watchdog's period), only at commit boundaries — the
// one point where the network's staged effects are all applied and its
// state is coherent. The obs HTTP endpoint publishes its /status and
// /metrics snapshots from here; because fn runs between Steps on the
// sim goroutine, it can read any system state race-free, and because it
// only READS, the probe cannot perturb the simulation.
func (s *System) SetProbe(every uint64, fn func()) {
	if every == 0 {
		every = watchdogPeriod
	}
	s.probeEvery, s.probeFn = every, fn
}

// Close releases resources held by the system — currently the NoC's
// worker pool when Config.SimWorkers armed the parallel engine. The
// system remains usable afterwards on the serial engine. No-op when the
// run was serial.
func (s *System) Close() { s.net.Close() }

// AttachMetrics registers the full-system observability surface in reg:
// the NoC scope (see noc.Network.AttachMetrics) plus a "cmp" scope with
// memory-hierarchy counters, latency accumulators and a per-tile
// rollup. interval is the time-series sampling period in cycles (0 =
// noc.DefaultSampleInterval). Call before Run; export after.
func (s *System) AttachMetrics(reg *metrics.Registry, interval uint64) {
	s.net.AttachMetrics(reg, interval)

	cs := reg.Scope("cmp")
	cs.CounterFunc("l2_hits", func() uint64 { return s.l2Hits })
	cs.CounterFunc("l2_misses", func() uint64 { return s.l2Misses })
	cs.CounterFunc("bank_accesses", func() uint64 { return s.bankAccesses })
	cs.CounterFunc("bank_bytes", func() uint64 { return s.bankBytes })
	cs.CounterFunc("dram_accesses", func() uint64 { return s.dramAccesses() })
	cs.CounterFunc("endpoint_compressions", func() uint64 { return s.compOps })
	cs.CounterFunc("endpoint_decompressions", func() uint64 { return s.decompOps })
	cs.CounterFunc("residual_conversions", func() uint64 { return s.residualOps })
	cs.CounterFunc("writeback_packets", func() uint64 { return s.wbPackets })
	cs.ObserveMean("miss_latency_onchip", &s.missLatency)
	cs.ObserveMean("miss_latency_total", &s.missTotal)
	cs.ObserveHistogram("miss_latency_hist", s.missHist)

	for i := 0; i < s.cfg.tiles(); i++ {
		i := i
		ts := cs.Scope("tile", strconv.Itoa(i))
		ts.CounterFunc("l1_hits", func() uint64 { return s.l1s[i].Hits })
		ts.CounterFunc("l1_misses", func() uint64 { return s.l1s[i].Misses })
		ts.CounterFunc("bank_hits", func() uint64 { return s.banks[i].Hits })
		ts.CounterFunc("bank_misses", func() uint64 { return s.banks[i].Misses })
	}

	// Time-series probes: memory-side pulse alongside the NoC's.
	reg.AddSample("cmp.l2_misses", func() float64 { return float64(s.l2Misses) })
	reg.AddSample("cmp.outstanding_txns", func() float64 {
		n := 0
		for _, m := range s.txns {
			n += len(m)
		}
		return float64(n)
	})
}
