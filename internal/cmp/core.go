package cmp

import (
	"github.com/disco-sim/disco/internal/cache"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
)

// mshrEntry tracks one outstanding L1 miss.
type mshrEntry struct {
	addr      cache.Addr
	write     bool
	issue     uint64
	measured  bool // issued after warmup: its latency is recorded
	coalesced int  // later accesses satisfied by the same fill
	// invalidated marks that an Inv/FetchInv overtook the fill (possible
	// because read grants release the directory before the requester
	// unblocks): the fill then satisfies the access but is not cached,
	// so no stale copy survives.
	invalidated bool
}

// coreState is one trace-driven core: it issues the profile's access
// stream with its configured gaps, hits in L1 in one cycle, and tolerates
// up to MSHRs outstanding misses (modelling the OoO window of Table 2's
// cores at the fidelity the on-chip-latency metric needs; DESIGN.md §3).
type coreState struct {
	id        int
	gen       trace.Stream
	opsIssued int
	opsDone   int
	gapLeft   int
	pending   *trace.Access
	retry     bool
	mshrs     map[cache.Addr]*mshrEntry
}

// newCore builds core id, driven by the synthetic generator or, when
// Config.Streams is set, by an externally supplied stream.
func newCore(id int, cfg *Config) *coreState {
	var gen trace.Stream
	if cfg.Streams != nil {
		gen = cfg.Streams[id]
	} else {
		gen = trace.NewGenerator(&cfg.Profile, id, cfg.Seed)
	}
	return &coreState{
		id:    id,
		gen:   gen,
		retry: true,
		mshrs: make(map[cache.Addr]*mshrEntry),
	}
}

// step advances the core one cycle.
func (c *coreState) step(s *System) {
	if c.opsIssued >= s.cfg.WarmupOps+s.cfg.OpsPerCore && c.pending == nil {
		return
	}
	if c.gapLeft > 0 {
		c.gapLeft--
		return
	}
	var acc trace.Access
	if c.pending != nil {
		if !c.retry {
			return // still blocked; wait for a fill
		}
		acc = *c.pending
	} else {
		acc = c.gen.Next()
	}
	issued := c.tryIssue(s, acc)
	if !issued {
		c.pending = &acc
		c.retry = false
		return
	}
	c.pending = nil
	c.opsIssued++
	c.gapLeft = acc.Gap
}

// tryIssue attempts one access; false means the core must stall. L1
// hit/miss counters are touched exactly once per issued access (retries
// while the MSHR table is full do not re-count).
func (c *coreState) tryIssue(s *System, acc trace.Access) bool {
	addr := cache.Addr(acc.Addr)
	l1 := s.l1s[c.id]
	// Coalesce with an outstanding miss?
	if m, ok := c.mshrs[addr]; ok {
		if !acc.Write || m.write {
			m.coalesced++
			return true
		}
		return false // write behind a read miss: wait for the fill
	}
	st := l1.State(addr)
	if !st.CanRead() || (acc.Write && !st.CanWrite()) {
		// Definite miss: reserve the MSHR before touching counters.
		if len(c.mshrs) >= s.cfg.MSHRs {
			return false
		}
	}
	if l1.Access(addr, acc.Write) {
		if acc.Write {
			// Writes dirty the line (E -> M silently).
			if l1.State(addr) == cache.Exclusive {
				l1.SetState(addr, cache.Modified)
			}
		}
		c.opsDone++
		return true
	}
	c.mshrs[addr] = &mshrEntry{
		addr: addr, write: acc.Write, issue: s.now,
		measured: c.opsIssued >= s.cfg.WarmupOps,
	}
	kind := mGetS
	if acc.Write {
		kind = mGetX
	}
	s.sendCtrl(kind, addr, c.id, s.homeOf(addr), 0, noc.ClassRequest)
	return true
}
