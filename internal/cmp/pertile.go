package cmp

import (
	"fmt"
	"strings"
)

// TileStats is one tile's local view of a finished run — useful for
// spotting hotspots (the MC tile, hot home banks) and load imbalance.
type TileStats struct {
	Tile        int
	L1Hits      uint64
	L1Misses    uint64
	BankHits    uint64
	BankMisses  uint64
	BankLines   int // valid lines at end of run
	BankSegs    int // occupied segments at end of run
	IsMC        bool
	EngineComps uint64 // in-network compressions at this tile's router
	EngineDecs  uint64
}

// PerTile snapshots per-tile statistics after a run.
func (s *System) PerTile() []TileStats {
	out := make([]TileStats, s.cfg.tiles())
	mcs := make(map[int]bool, len(s.mcNodes))
	for _, n := range s.mcNodes {
		mcs[n] = true
	}
	for i := range out {
		lines, segs := s.banks[i].Occupancy()
		out[i] = TileStats{
			Tile:       i,
			L1Hits:     s.l1s[i].Hits,
			L1Misses:   s.l1s[i].Misses,
			BankHits:   s.banks[i].Hits,
			BankMisses: s.banks[i].Misses,
			BankLines:  lines,
			BankSegs:   segs,
			IsMC:       mcs[i],
		}
		if e := s.net.Routers[i].Engine(); e != nil {
			out[i].EngineComps = e.Compressions
			out[i].EngineDecs = e.Decompressions
		}
	}
	return out
}

// FormatPerTile renders the per-tile table.
func FormatPerTile(ts []TileStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-12s %-12s %-10s %-10s %s\n",
		"tile", "L1 hit/miss", "bank h/m", "lines", "segs", "engine c/d")
	for _, t := range ts {
		mc := ""
		if t.IsMC {
			mc = " [MC]"
		}
		fmt.Fprintf(&b, "%-5d %6d/%-6d %6d/%-6d %-10d %-10d %d/%d%s\n",
			t.Tile, t.L1Hits, t.L1Misses, t.BankHits, t.BankMisses,
			t.BankLines, t.BankSegs, t.EngineComps, t.EngineDecs, mc)
	}
	return b.String()
}
