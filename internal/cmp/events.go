package cmp

import "container/heap"

// event is a closure scheduled for a future cycle.
type event struct {
	cycle uint64
	seq   uint64 // FIFO tie-break for determinism
	fn    func()
}

// eventQueue is a deterministic min-heap of events.
type eventQueue struct {
	items []event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].cycle != q.items[j].cycle {
		return q.items[i].cycle < q.items[j].cycle
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *eventQueue) Push(x interface{}) {
	q.items = append(q.items, x.(event))
}
func (q *eventQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// schedule enqueues fn at the given cycle.
func (q *eventQueue) schedule(cycle uint64, fn func()) {
	q.seq++
	heap.Push(q, event{cycle: cycle, seq: q.seq, fn: fn})
}

// runDue executes every event due at or before cycle, in order.
func (q *eventQueue) runDue(cycle uint64) {
	for q.Len() > 0 && q.items[0].cycle <= cycle {
		ev := heap.Pop(q).(event)
		ev.fn()
	}
}
