// Package cmp is the full-system evaluation vehicle of the DISCO paper:
// a tiled CMP (Table 2) with trace-driven cores, private L1s, a shared
// compressed NUCA L2 (one bank per tile), a directory-based MOESI-lite
// coherence protocol, one memory controller, and the cycle-accurate NoC of
// internal/noc — all clocked together. It implements the five comparison
// points of Section 4.1:
//
//	Baseline — no compression anywhere (Fig. 7 normalization base)
//	Ideal    — compressed LLC + NoC with zero conversion latency
//	          (Figs. 5/6/8 normalization base)
//	CC       — per-bank cache compression; NoC payloads uncompressed
//	CNC      — CC plus per-NI packet de/compression
//	DISCO    — compressed LLC + in-network opportunistic de/compression
package cmp

import (
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
)

// Mode selects the comparison point.
type Mode int

// Comparison modes (Section 4.1).
const (
	Baseline Mode = iota
	Ideal
	CC
	CNC
	DISCO
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Ideal:
		return "ideal"
	case CC:
		return "cc"
	case CNC:
		return "cnc"
	case DISCO:
		return "disco"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// usesCompression reports whether the LLC stores compressed lines.
func (m Mode) usesCompression() bool { return m != Baseline }

// Config describes one full-system run.
type Config struct {
	// Mode is the comparison point.
	Mode Mode
	// Algorithm is the block compressor (ignored for Baseline).
	Algorithm compress.Algorithm

	// K is the mesh radix: K×K tiles, each with a core and a NUCA bank.
	K int
	// MCNode is the tile whose router hosts the memory controller.
	MCNode int
	// ExtraMCNodes optionally adds more memory controllers (Table 2 has a
	// single channel; extra MCs are a sensitivity knob). Blocks interleave
	// across all controllers; each gets its own DRAM channel.
	ExtraMCNodes []int

	// Profile is the workload: it supplies both the default per-core
	// access streams and every block's content.
	Profile trace.Profile
	// Streams optionally overrides the synthetic access streams with
	// externally recorded ones (see trace.ReadTrace / trace.Replay); one
	// per core. Block contents still come from Profile.
	Streams []trace.Stream
	// OpsPerCore is the number of measured memory references per core.
	OpsPerCore int
	// WarmupOps per core run before measurement starts (caches warm up;
	// miss latencies during warmup are not recorded).
	WarmupOps int
	// MaxCycles aborts a run that fails to finish (deadlock guard).
	MaxCycles uint64
	// Seed drives all workload randomness.
	Seed int64

	// MSHRs bounds each core's outstanding misses.
	MSHRs int
	// PrefetchDegree enables a sequential LLC prefetcher: on a demand L2
	// miss the home bank also fetches the next N blocks of its address
	// slice (0 = off, the Table 2 configuration). Prefetch fills travel
	// as ordinary memory data packets, so DISCO compresses them like any
	// other fill (the Section 1 discussion of prefetched blocks).
	PrefetchDegree int
	// L1Sets × L1Ways at 64 B lines (Table 2: 32 KB 4-way → 128×4).
	L1Sets, L1Ways int
	// BankSets × BankWays per NUCA bank (Table 2: 4 MB/16 banks, 8-way →
	// 512×8).
	BankSets, BankWays int
	// TagFactor is the compressed-cache tag multiplier (2 when the LLC
	// stores compressed lines, 1 otherwise). 0 = choose by Mode.
	TagFactor int

	// VCs / BufDepth configure the NoC (Table 2: 2 / 8).
	VCs, BufDepth int
	// FlowControl selects the NoC switching policy (Table 2: wormhole).
	// VCT/store-and-forward require BufDepth >= 9 (whole data packets).
	FlowControl noc.FlowControl
	// BankLatency is the NUCA data access time (Table 2: 4 cycles).
	BankLatency uint64
	// TagLatency is a directory/tag probe.
	TagLatency uint64

	// Disco optionally overrides the DISCO policy configuration; nil uses
	// disco.DefaultConfig(Algorithm). Only consulted in DISCO mode.
	Disco *disco.Config

	// Fault arms deterministic NoC fault injection (see internal/fault).
	// Nil or all-zero rates leave the run byte-identical to a fault-free
	// build.
	Fault *fault.Spec
	// StallWindow is the progress watchdog's no-forward-progress window in
	// cycles: if neither core retirement nor network activity advances for
	// this long the run aborts with a *StallError carrying a diagnostic
	// snapshot. 0 uses DefaultStallWindow.
	StallWindow uint64
	// SimWorkers shards the NoC's per-cycle compute phase across this many
	// workers (noc.Network.SetWorkers); 0 or 1 is the serial engine.
	// Results are byte-identical at any setting. Distinct from simrun's
	// -j, which parallelizes across independent simulations.
	SimWorkers int
}

// DefaultConfig returns the Table 2 platform running the given profile.
func DefaultConfig(mode Mode, alg compress.Algorithm, prof trace.Profile) Config {
	return Config{
		Mode:       mode,
		Algorithm:  alg,
		K:          4,
		MCNode:     0,
		Profile:    prof,
		OpsPerCore: 12000,
		WarmupOps:  6000,
		MaxCycles:  60_000_000,
		Seed:       1,
		MSHRs:      8,
		L1Sets:     128, L1Ways: 4,
		BankSets: 512, BankWays: 8,
		VCs: 2, BufDepth: 8,
		BankLatency: 4,
		TagLatency:  2,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Mode != Baseline && c.Algorithm == nil {
		return fmt.Errorf("cmp: mode %v needs a compression algorithm", c.Mode)
	}
	if c.K < 2 {
		return fmt.Errorf("cmp: K must be >= 2")
	}
	if c.MCNode < 0 || c.MCNode >= c.K*c.K {
		return fmt.Errorf("cmp: MCNode %d out of range", c.MCNode)
	}
	for _, n := range c.ExtraMCNodes {
		if n < 0 || n >= c.K*c.K || n == c.MCNode {
			return fmt.Errorf("cmp: extra MC node %d invalid", n)
		}
	}
	if c.FlowControl != noc.Wormhole && c.BufDepth < 9 {
		return fmt.Errorf("cmp: %v flow control needs BufDepth >= 9 for 64B data packets", c.FlowControl)
	}
	if c.OpsPerCore <= 0 || c.MaxCycles == 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cmp: non-positive run limits")
	}
	if c.L1Sets <= 0 || c.L1Sets&(c.L1Sets-1) != 0 || c.L1Ways <= 0 {
		return fmt.Errorf("cmp: bad L1 geometry %dx%d (sets must be a positive power of two, ways positive)",
			c.L1Sets, c.L1Ways)
	}
	if c.BankSets <= 0 || c.BankWays <= 0 {
		return fmt.Errorf("cmp: bad bank geometry %dx%d", c.BankSets, c.BankWays)
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.Streams != nil && len(c.Streams) != c.tiles() {
		return fmt.Errorf("cmp: %d trace streams for %d cores", len(c.Streams), c.tiles())
	}
	return nil
}

// tiles returns the tile count.
func (c *Config) tiles() int { return c.K * c.K }

// tagFactor resolves the tag multiplier.
func (c *Config) tagFactor() int {
	if c.TagFactor != 0 {
		return c.TagFactor
	}
	if c.Mode.usesCompression() {
		return 2
	}
	return 1
}

// algName is the algorithm name for the energy model.
func (c *Config) algName() string {
	if c.Mode == Baseline || c.Algorithm == nil {
		return "none"
	}
	return c.Algorithm.Name()
}
