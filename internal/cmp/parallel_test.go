package cmp

import (
	"errors"
	"reflect"
	"testing"
)

// TestParallelRunByteIdentical is the cmp-level golden gate for the
// two-phase engine: a full-system DISCO run must produce identical
// Results (latencies, energy, network counters — everything) whether
// the NoC's compute phase runs serially or sharded across workers.
func TestParallelRunByteIdentical(t *testing.T) {
	serial := run(t, quickCfg(DISCO, "ferret"))
	for _, workers := range []int{2, 4, 8} {
		cfg := quickCfg(DISCO, "ferret")
		cfg.SimWorkers = workers
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer sys.Close()
		if got := sys.Network().Workers(); got != workers {
			t.Fatalf("SimWorkers=%d not applied: network reports %d", workers, got)
		}
		parallel, err := sys.Run()
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d: results differ from serial run:\nserial:   %+v\nparallel: %+v",
				workers, serial, parallel)
		}
	}
}

// TestHealthyParallelRunNoStall pins the watchdog fix: sampling the
// progress signature only at post-commit boundaries, a healthy parallel
// run must never trip a *StallError — even with a watchdog window tight
// enough that any mis-sampled (frozen-looking) signature would fire it.
func TestHealthyParallelRunNoStall(t *testing.T) {
	cfg := quickCfg(DISCO, "bodytrack")
	cfg.SimWorkers = 4
	cfg.StallWindow = 4096
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	r, err := sys.Run()
	var se *StallError
	if errors.As(err, &se) {
		t.Fatalf("healthy parallel run tripped the watchdog: %v", se)
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Cycles == 0 {
		t.Error("empty results from parallel run")
	}
	if !sys.Network().AtCommitBoundary() {
		t.Error("network not at a commit boundary after Run returned")
	}
}
