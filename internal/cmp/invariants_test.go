package cmp

import (
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/cache"
)

// freshSys builds an idle system whose caches are empty: a clean slate
// for corrupting state one invariant at a time.
func freshSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(quickCfg(Baseline, "vips"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

// hasViolation reports whether any reported violation contains want.
func hasViolation(got []string, want string) bool {
	for _, v := range got {
		if strings.Contains(v, want) {
			return true
		}
	}
	return false
}

func TestCheckInvariantsCleanOnFreshSystem(t *testing.T) {
	sys := freshSys(t)
	if v := sys.CheckInvariants(); len(v) != 0 {
		t.Fatalf("fresh system reports violations: %v", v)
	}
}

// installLine puts addr in its home bank with a registered owner, the
// state every corruption below starts from.
func installLine(t *testing.T, sys *System, addr cache.Addr, owner int) *cache.Line {
	t.Helper()
	line, _ := sys.banks[sys.homeOf(addr)].Insert(addr, 64, false)
	if line == nil {
		t.Fatal("bank Insert failed on an empty bank")
	}
	line.Owner = owner
	return line
}

// Invariant 1: at most one L1 may hold a line in M or E.
func TestCheckInvariantsFlagsMultipleWriters(t *testing.T) {
	sys := freshSys(t)
	addr := cache.Addr(0x40)
	installLine(t, sys, addr, 0)
	sys.l1s[0].Insert(addr, cache.Modified)
	sys.l1s[1].Insert(addr, cache.Modified)
	v := sys.CheckInvariants()
	if !hasViolation(v, "simultaneous M/E holders") {
		t.Errorf("two M holders not reported: %v", v)
	}
}

// Invariant 2: every valid L1 line must be present in its home bank.
func TestCheckInvariantsFlagsInclusionBreach(t *testing.T) {
	sys := freshSys(t)
	addr := cache.Addr(0x80)
	sys.l1s[2].Insert(addr, cache.Shared) // never installed in the LLC
	v := sys.CheckInvariants()
	if !hasViolation(v, "absent from LLC (inclusion)") {
		t.Errorf("inclusion breach not reported: %v", v)
	}
}

// Invariant 3: a writable L1 copy must be the registered directory owner.
func TestCheckInvariantsFlagsWrongOwner(t *testing.T) {
	sys := freshSys(t)
	addr := cache.Addr(0xC0)
	installLine(t, sys, addr, 5) // directory says tile 5...
	sys.l1s[3].Insert(addr, cache.Modified)
	v := sys.CheckInvariants()
	if !hasViolation(v, "directory owner is 5") {
		t.Errorf("owner mismatch not reported: %v", v)
	}
	// A single writer with the right registration is NOT a violation.
	sys2 := freshSys(t)
	installLine(t, sys2, addr, 3)
	sys2.l1s[3].Insert(addr, cache.Modified)
	if v := sys2.CheckInvariants(); len(v) != 0 {
		t.Errorf("correctly-owned M line flagged: %v", v)
	}
}

// Invariant 4: at rest no line is pinned and no transaction is open.
func TestCheckInvariantsFlagsPinnedAndOutstanding(t *testing.T) {
	sys := freshSys(t)
	addr := cache.Addr(0x100)
	line := installLine(t, sys, addr, -1)
	line.Pinned = true
	home := sys.homeOf(addr)
	sys.txns[home][addr] = &txn{id: 1, addr: addr, home: home}
	v := sys.CheckInvariants()
	if !hasViolation(v, "still pinned") {
		t.Errorf("pinned line not reported: %v", v)
	}
	if !hasViolation(v, "transactions outstanding") {
		t.Errorf("open transaction not reported: %v", v)
	}
}

// TestCheckInvariantsDeterministicOrder corrupts several lines at once
// and checks the report is identical across calls (violations are
// emitted in address order, not map order).
func TestCheckInvariantsDeterministicOrder(t *testing.T) {
	sys := freshSys(t)
	for i := 0; i < 8; i++ {
		addr := cache.Addr(0x200 + i*0x40)
		sys.l1s[i%sys.cfg.tiles()].Insert(addr, cache.Shared) // inclusion breaches
	}
	first := strings.Join(sys.CheckInvariants(), "\n")
	for i := 0; i < 5; i++ {
		if again := strings.Join(sys.CheckInvariants(), "\n"); again != first {
			t.Fatalf("violation order unstable:\n--- first\n%s\n--- again\n%s", first, again)
		}
	}
	if strings.Count(first, "inclusion") != 8 {
		t.Errorf("expected 8 inclusion violations, got:\n%s", first)
	}
}
