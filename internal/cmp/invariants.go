package cmp

import (
	"fmt"
	"sort"

	"github.com/disco-sim/disco/internal/cache"
)

// CheckInvariants walks the whole memory system and reports coherence
// violations. It is meaningful when the system is quiescent (no packets
// in flight, no pending events): the protocol tolerates transient
// staleness (silent S evictions, writebacks in flight), but at rest the
// following must hold:
//
//  1. single-writer: at most one L1 holds a line in M or E;
//  2. inclusion: every valid L1 line is present in its home LLC bank;
//  3. write permission is registered: an L1 in M/E/O is the directory
//     owner of the line;
//  4. no line is left pinned (all transactions completed).
//
// It returns all violations found (empty = clean).
func (s *System) CheckInvariants() []string {
	var out []string
	tiles := s.cfg.tiles()

	type holder struct {
		tile int
		st   cache.CohState
	}
	holders := make(map[cache.Addr][]holder)
	for tile := 0; tile < tiles; tile++ {
		s.forEachL1Line(tile, func(addr cache.Addr, st cache.CohState) {
			holders[addr] = append(holders[addr], holder{tile, st})
		})
	}
	// Report in address order: violation output must be deterministic
	// (map iteration order is randomized).
	addrs := make([]cache.Addr, 0, len(holders))
	for addr := range holders {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		hs := holders[addr]
		writers := 0
		for _, h := range hs {
			if h.st == cache.Modified || h.st == cache.Exclusive {
				writers++
			}
		}
		if writers > 1 {
			out = append(out, fmt.Sprintf("line %x: %d simultaneous M/E holders", uint64(addr), writers))
		}
		home := s.homeOf(addr)
		line := s.banks[home].Peek(addr)
		if line == nil {
			out = append(out, fmt.Sprintf("line %x: cached in L1 but absent from LLC (inclusion)", uint64(addr)))
			continue
		}
		for _, h := range hs {
			if (h.st == cache.Modified || h.st == cache.Exclusive || h.st == cache.Owned) &&
				line.Owner != h.tile {
				out = append(out, fmt.Sprintf("line %x: tile %d holds %v but directory owner is %d",
					uint64(addr), h.tile, h.st, line.Owner))
			}
		}
	}
	for tile := 0; tile < tiles; tile++ {
		s.forEachBankLine(tile, func(l *cache.Line) {
			if l.Pinned {
				out = append(out, fmt.Sprintf("line %x: still pinned at home %d", uint64(l.Addr), tile))
			}
		})
		if len(s.txns[tile]) != 0 {
			out = append(out, fmt.Sprintf("home %d: %d transactions outstanding", tile, len(s.txns[tile])))
		}
	}
	return out
}

// forEachL1Line iterates valid lines of one L1.
func (s *System) forEachL1Line(tile int, f func(cache.Addr, cache.CohState)) {
	s.l1s[tile].ForEach(f)
}

// forEachBankLine iterates valid lines of one bank.
func (s *System) forEachBankLine(tile int, f func(*cache.Line)) {
	s.banks[tile].ForEach(f)
}

// Drain steps the system until the network and event queue are empty or
// the budget runs out; returns true when fully quiescent. Combine with
// CheckInvariants for end-of-run validation.
func (s *System) Drain(budget uint64) bool {
	for i := uint64(0); i < budget; i++ {
		if s.net.Quiescent() && s.events.Len() == 0 {
			return true
		}
		s.Step()
	}
	return s.net.Quiescent() && s.events.Len() == 0
}
