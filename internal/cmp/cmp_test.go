package cmp

import (
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/trace"
)

// quickCfg returns a fast configuration for protocol tests.
func quickCfg(mode Mode, bench string) Config {
	prof, ok := trace.ByName(bench)
	if !ok {
		panic("unknown bench " + bench)
	}
	cfg := DefaultConfig(mode, compress.NewDelta(), prof)
	cfg.OpsPerCore = 1200
	cfg.WarmupOps = 800
	return cfg
}

// run executes a config or fails the test.
func run(t *testing.T, cfg Config) Results {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Baseline: "baseline", Ideal: "ideal", CC: "cc", CNC: "cnc", DISCO: "disco",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should still print")
	}
}

func TestConfigValidation(t *testing.T) {
	prof, _ := trace.ByName("vips")
	good := DefaultConfig(DISCO, compress.NewDelta(), prof)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Algorithm = nil },
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.MCNode = 99 },
		func(c *Config) { c.OpsPerCore = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.Profile.ZipfS = 0.5 },
	}
	for i, mut := range cases {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Baseline does not need an algorithm.
	b := DefaultConfig(Baseline, nil, prof)
	if err := b.Validate(); err != nil {
		t.Errorf("baseline without algorithm rejected: %v", err)
	}
}

func TestTagFactorByMode(t *testing.T) {
	prof, _ := trace.ByName("vips")
	b := DefaultConfig(Baseline, nil, prof)
	if b.tagFactor() != 1 {
		t.Error("baseline tag factor should be 1")
	}
	d := DefaultConfig(DISCO, compress.NewDelta(), prof)
	if d.tagFactor() != 2 {
		t.Error("compressed-mode tag factor should be 2")
	}
	c := DefaultConfig(DISCO, compress.NewDelta(), prof)
	c.TagFactor = 4
	if c.tagFactor() != 4 {
		t.Error("explicit tag factor should win")
	}
}

func TestAllModesComplete(t *testing.T) {
	for _, mode := range []Mode{Baseline, Ideal, CC, CNC, DISCO} {
		r := run(t, quickCfg(mode, "bodytrack"))
		if r.Cycles == 0 || r.Misses == 0 {
			t.Errorf("%v: empty results %+v", mode, r)
		}
		if r.AvgMissLatency <= 0 || r.AvgMissTotal < r.AvgMissLatency {
			t.Errorf("%v: inconsistent latencies on=%f total=%f", mode, r.AvgMissLatency, r.AvgMissTotal)
		}
		if r.Net.Injected != r.Net.Ejected {
			t.Errorf("%v: packet conservation violated: %d != %d", mode, r.Net.Injected, r.Net.Ejected)
		}
		if r.String() == "" {
			t.Error("empty summary")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, quickCfg(DISCO, "ferret"))
	b := run(t, quickCfg(DISCO, "ferret"))
	if a.Cycles != b.Cycles || a.AvgMissLatency != b.AvgMissLatency ||
		a.Net.FlitHops != b.Net.FlitHops || a.Energy.Total() != b.Energy.Total() {
		t.Errorf("simulation not deterministic:\n%s\n%s", a, b)
	}
}

func TestNoLeftoverTransactions(t *testing.T) {
	cfg := quickCfg(DISCO, "vips")
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Drain the network and the event queue: no transaction should be
	// stuck afterwards.
	for i := 0; i < 200000 && (!sys.net.Quiescent() || sys.events.Len() > 0); i++ {
		sys.Step()
	}
	for home, m := range sys.txns {
		for addr, tx := range m {
			t.Errorf("home %d: leftover txn on %x (phase %d)", home, uint64(addr), tx.phase)
		}
	}
}

func TestModeCounters(t *testing.T) {
	base := run(t, quickCfg(Baseline, "freqmine"))
	if base.EndpointComp != 0 || base.EndpointDecomp != 0 || base.Net.Compressions != 0 {
		t.Error("baseline must not compress anything")
	}
	ideal := run(t, quickCfg(Ideal, "freqmine"))
	if ideal.EndpointComp != 0 || ideal.EndpointDecomp != 0 {
		t.Error("ideal conversions must be free (uncounted)")
	}
	cc := run(t, quickCfg(CC, "freqmine"))
	if cc.EndpointComp == 0 || cc.EndpointDecomp == 0 {
		t.Error("CC must pay bank-side conversions")
	}
	if cc.Net.Compressions != 0 {
		t.Error("CC has no in-network engines")
	}
	cnc := run(t, quickCfg(CNC, "freqmine"))
	if cnc.EndpointComp <= cc.EndpointComp {
		t.Error("CNC adds NI compressions on top of CC's")
	}
	d := run(t, quickCfg(DISCO, "freqmine"))
	if d.Net.Compressions == 0 {
		t.Error("DISCO should compress some packets in-network")
	}
	if d.ResidualOps == 0 {
		t.Error("DISCO should also pay some residual conversions")
	}
}

func TestCompressionReducesTraffic(t *testing.T) {
	base := run(t, quickCfg(Baseline, "freqmine"))
	ideal := run(t, quickCfg(Ideal, "freqmine"))
	if ideal.Net.FlitHops >= base.Net.FlitHops {
		t.Errorf("compressed NoC should move fewer flits: %d vs %d",
			ideal.Net.FlitHops, base.Net.FlitHops)
	}
}

func TestCompressedCapacityReducesL2Misses(t *testing.T) {
	// streamcluster's footprint exceeds the LLC; compression (2x tags +
	// segmented array) must cut L2 misses vs the uncompressed baseline.
	cfgB := quickCfg(Baseline, "streamcluster")
	cfgB.OpsPerCore, cfgB.WarmupOps = 2500, 2500
	base := run(t, cfgB)
	cfgI := quickCfg(Ideal, "streamcluster")
	cfgI.OpsPerCore, cfgI.WarmupOps = 2500, 2500
	ideal := run(t, cfgI)
	if ideal.L2Misses >= base.L2Misses {
		t.Errorf("compressed LLC should miss less: %d vs %d", ideal.L2Misses, base.L2Misses)
	}
}

func TestLatencyOrderingIdealDiscoCC(t *testing.T) {
	// The paper's headline shape (Fig. 5): Ideal <= DISCO < CC on
	// compressible workloads. Allow a hair of noise on the Ideal bound.
	cfg := quickCfg(Ideal, "canneal")
	cfg.OpsPerCore, cfg.WarmupOps = 3000, 1500
	ideal := run(t, cfg)
	cfg.Mode = DISCO
	d := run(t, cfg)
	cfg.Mode = CC
	cc := run(t, cfg)
	if d.AvgMissLatency >= cc.AvgMissLatency {
		t.Errorf("DISCO (%.1f) should beat CC (%.1f)", d.AvgMissLatency, cc.AvgMissLatency)
	}
	if d.AvgMissLatency < ideal.AvgMissLatency*0.99 {
		t.Errorf("DISCO (%.1f) cannot beat Ideal (%.1f)", d.AvgMissLatency, ideal.AvgMissLatency)
	}
}

func TestEnergyOrderingDiscoBeatsBaseline(t *testing.T) {
	// Fig. 7 shape: DISCO total energy below the uncompressed baseline.
	cfg := quickCfg(Baseline, "canneal")
	cfg.OpsPerCore, cfg.WarmupOps = 3000, 1500
	base := run(t, cfg)
	cfg.Mode = DISCO
	cfg.Algorithm = compress.NewDelta()
	d := run(t, cfg)
	if d.Energy.Total() >= base.Energy.Total() {
		t.Errorf("DISCO energy %.0f should undercut baseline %.0f",
			d.Energy.Total(), base.Energy.Total())
	}
}

func TestDiscoOverrideConfig(t *testing.T) {
	cfg := quickCfg(DISCO, "vips")
	dc := disco.DefaultConfig(cfg.Algorithm)
	dc.LowPriorityRule = false
	dc.NonBlocking = false
	cfg.Disco = &dc
	r := run(t, cfg)
	if r.Cycles == 0 {
		t.Error("override run failed")
	}
}

func TestSC2TrainedAutomatically(t *testing.T) {
	prof, _ := trace.ByName("dedup")
	sc2 := compress.NewSC2()
	cfg := DefaultConfig(CC, sc2, prof)
	cfg.OpsPerCore, cfg.WarmupOps = 500, 200
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sc2.Trained() {
		t.Error("system should train SC2 at construction")
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEightByEightCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 run is slow")
	}
	cfg := quickCfg(DISCO, "bodytrack")
	cfg.K = 8
	cfg.OpsPerCore, cfg.WarmupOps = 600, 400
	r := run(t, cfg)
	if r.Cycles == 0 || r.Net.Injected != r.Net.Ejected {
		t.Errorf("8x8 run inconsistent: %s", r)
	}
}

func TestTwoByTwoCompletes(t *testing.T) {
	cfg := quickCfg(DISCO, "bodytrack")
	cfg.K = 2
	r := run(t, cfg)
	if r.Cycles == 0 {
		t.Error("2x2 run failed")
	}
}

func TestAllBenchmarksRunDisco(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep is slow")
	}
	for _, name := range trace.Names() {
		cfg := quickCfg(DISCO, name)
		cfg.OpsPerCore, cfg.WarmupOps = 800, 400
		r := run(t, cfg)
		if r.Misses == 0 {
			t.Errorf("%s: no misses recorded", name)
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	got := []int{}
	q.schedule(5, func() { got = append(got, 5) })
	q.schedule(1, func() { got = append(got, 1) })
	q.schedule(3, func() { got = append(got, 30) })
	q.schedule(3, func() { got = append(got, 31) }) // FIFO within a cycle
	q.runDue(2)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("runDue(2) executed %v", got)
	}
	q.runDue(10)
	want := []int{1, 30, 31, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestReplayStreamsDriveSystem(t *testing.T) {
	prof, _ := trace.ByName("vips")
	// Record short synthetic traces, then replay them through the system.
	streams := make([]trace.Stream, 16)
	for i := range streams {
		g := trace.NewGenerator(&prof, i, 99)
		streams[i] = trace.NewReplay(trace.Record(g, 400))
	}
	cfg := DefaultConfig(DISCO, compress.NewDelta(), prof)
	cfg.Streams = streams
	cfg.OpsPerCore, cfg.WarmupOps = 800, 200 // forces the replays to loop
	r := run(t, cfg)
	if r.Misses == 0 {
		t.Error("replayed run recorded no misses")
	}
	// Stream count must match the core count.
	cfg.Streams = streams[:3]
	if _, err := New(cfg); err == nil {
		t.Error("mismatched stream count should be rejected")
	}
}

func TestMultiMCRelievesChannelPressure(t *testing.T) {
	// Four memory controllers at the mesh corners vs one: same workload,
	// strictly fewer DRAM stalls per access and no correctness change.
	cfg1 := quickCfg(Baseline, "streamcluster")
	cfg1.OpsPerCore, cfg1.WarmupOps = 2000, 1000
	one := run(t, cfg1)
	cfg4 := cfg1
	cfg4.ExtraMCNodes = []int{3, 12, 15}
	four := run(t, cfg4)
	if four.DramAccesses == 0 || one.DramAccesses == 0 {
		t.Fatal("no DRAM traffic")
	}
	// Both runs execute the same measured work.
	if four.Misses == 0 || one.Misses == 0 {
		t.Fatal("no misses recorded")
	}
	// Total end-to-end latency should improve (or at least not regress
	// meaningfully) with 4 channels.
	if four.AvgMissTotal > one.AvgMissTotal*1.02 {
		t.Errorf("4 MCs (%.1f) should not be slower than 1 MC (%.1f)",
			four.AvgMissTotal, one.AvgMissTotal)
	}
}

func TestMultiMCValidation(t *testing.T) {
	cfg := quickCfg(Baseline, "vips")
	cfg.ExtraMCNodes = []int{0} // duplicates MCNode
	if _, err := New(cfg); err == nil {
		t.Error("duplicate MC node should be rejected")
	}
	cfg.ExtraMCNodes = []int{99}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range MC node should be rejected")
	}
}

func TestInvariantsHoldAfterDrain(t *testing.T) {
	for _, bench := range []string{"canneal", "vips"} {
		cfg := quickCfg(DISCO, bench)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if !sys.Drain(500000) {
			t.Fatalf("%s: system did not drain", bench)
		}
		if viol := sys.CheckInvariants(); len(viol) != 0 {
			for _, v := range viol[:minInt(len(viol), 10)] {
				t.Errorf("%s: %s", bench, v)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPrefetcherReducesDemandMisses(t *testing.T) {
	base := quickCfg(Baseline, "streamcluster")
	base.OpsPerCore, base.WarmupOps = 2000, 1000
	off := run(t, base)
	cfgP := base
	cfgP.PrefetchDegree = 4
	on := run(t, cfgP)
	if on.PrefetchIssued == 0 {
		t.Fatal("prefetcher issued nothing")
	}
	if on.PrefetchUseful == 0 {
		t.Error("no prefetch was ever useful")
	}
	// Demand L2 misses must drop (prefetches themselves are not counted
	// as demand misses).
	if on.L2Misses >= off.L2Misses {
		t.Errorf("prefetching did not reduce demand misses: %d vs %d", on.L2Misses, off.L2Misses)
	}
	// But total DRAM traffic grows (speculation is not free).
	if on.DramAccesses <= off.DramAccesses {
		t.Errorf("prefetching should add DRAM traffic: %d vs %d", on.DramAccesses, off.DramAccesses)
	}
}

func TestPrefetchTransactionsComplete(t *testing.T) {
	cfg := quickCfg(DISCO, "vips")
	cfg.PrefetchDegree = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !sys.Drain(500000) {
		t.Fatal("no drain with prefetching")
	}
	if viol := sys.CheckInvariants(); len(viol) != 0 {
		t.Errorf("invariants violated with prefetching: %v", viol[:minInt(len(viol), 5)])
	}
}

func TestPerTileStats(t *testing.T) {
	cfg := quickCfg(DISCO, "bodytrack")
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	ts := sys.PerTile()
	if len(ts) != 16 {
		t.Fatalf("tiles = %d", len(ts))
	}
	var l1m, bkm uint64
	mcSeen := false
	for _, s := range ts {
		l1m += s.L1Misses
		bkm += s.BankMisses
		if s.IsMC {
			mcSeen = true
		}
	}
	if l1m == 0 || bkm == 0 {
		t.Error("per-tile counters empty")
	}
	if !mcSeen {
		t.Error("MC tile not flagged")
	}
	out := FormatPerTile(ts)
	if !strings.Contains(out, "[MC]") || !strings.Contains(out, "tile") {
		t.Errorf("FormatPerTile malformed:\n%s", out)
	}
}
