package cmp

import (
	"fmt"

	"github.com/disco-sim/disco/internal/cache"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/energy"
	"github.com/disco-sim/disco/internal/mem"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/stats"
	"github.com/disco-sim/disco/internal/trace"
)

// msgKind enumerates protocol messages.
type msgKind int

const (
	mGetS     msgKind = iota // core -> home: read miss
	mGetX                    // core -> home: write miss / upgrade
	mData                    // home -> core: data grant
	mGrantX                  // home -> core: dataless upgrade grant
	mUnblock                 // core -> home: transaction complete
	mInv                     // home -> sharer: invalidate
	mInvAck                  // sharer -> home
	mFetch                   // home -> owner: send data, downgrade to O
	mFetchInv                // home -> owner: send data, invalidate
	mOwnerWB                 // owner -> home: data for Fetch/FetchInv
	mWB                      // core -> home: L1 victim writeback (data)
	mMemRead                 // home -> MC
	mMemData                 // MC -> home (data)
	mMemWB                   // home -> MC: dirty LLC victim (data)
)

// message is the protocol payload attached to noc.Packet.Meta.
type message struct {
	kind      msgKind
	addr      cache.Addr
	requester int // original requesting tile
	txnID     uint64
	grant     cache.CohState
	// dramCycles is the off-chip service time accumulated by this
	// transaction (DRAM queue + access). The paper's headline metric is
	// *on-chip* data access latency (Fig. 1: routing + de/compression +
	// bank access), so the requester subtracts this from the end-to-end
	// miss time.
	dramCycles uint64
	// cohCycles is coherence serialization (time queued behind another
	// transaction on the same line, plus invalidation/owner-fetch
	// round-trips), likewise excluded from the Fig. 1 path.
	cohCycles uint64
	// arrivedAt stamps when a request reached the home (waiter-delay
	// bookkeeping).
	arrivedAt uint64
}

// System is one full-system simulation instance.
type System struct {
	cfg Config
	net *noc.Network

	cores []*coreState
	l1s   []*cache.L1
	banks []*cache.Bank
	// mcNodes lists all memory-controller tiles; drams[i] is the channel
	// behind mcNodes[i].
	mcNodes []int
	drams   []*mem.DRAM

	events eventQueue
	now    uint64

	txns         []map[cache.Addr]*txn
	nextTxnID    uint64
	nextPktID    uint64
	compCache    map[cache.Addr]compress.Compressed
	contentCache map[cache.Addr][]byte
	contentArena []byte // chunked backing store for contentCache blocks
	sc2Trained   bool

	// Stats.
	missLatency  stats.Mean // on-chip component (the paper's metric)
	missTotal    stats.Mean // end-to-end, DRAM included
	missHist     *stats.Histogram
	l2Hits       uint64
	l2Misses     uint64
	bankAccesses uint64
	bankBytes    uint64
	bankProbes   uint64
	compOps      uint64 // endpoint (bank/NI) compressions
	decompOps    uint64 // endpoint decompressions
	residualOps  uint64 // DISCO conversions paid at ejection
	wbPackets    uint64
	prefIssued   uint64
	prefUseful   uint64

	// Observability probe (see SetProbe): fn runs on the simulation
	// goroutine every probeEvery cycles, only at commit boundaries.
	probeEvery uint64
	probeFn    func()
}

// New builds a system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:          cfg,
		compCache:    make(map[cache.Addr]compress.Compressed),
		contentCache: make(map[cache.Addr][]byte),
		missHist:     stats.NewHistogram(1000, 10),
	}
	ncfg := noc.Config{K: cfg.K, VCs: cfg.VCs, BufDepth: cfg.BufDepth, FlowControl: cfg.FlowControl,
		Fault: cfg.Fault}
	if cfg.Mode == DISCO {
		dc := cfg.Disco
		if dc == nil {
			d := disco.DefaultConfig(cfg.Algorithm)
			dc = &d
		}
		ncfg.Disco = dc
	}
	net, err := noc.New(ncfg)
	if err != nil {
		return nil, err
	}
	s.net = net
	net.SetWorkers(cfg.SimWorkers)
	net.OnEject = s.onEject
	if net.FaultEnabled() && cfg.Algorithm != nil {
		// The sink integrity check must decode with the system's live
		// (possibly trained) compressor instance, not a fresh constructor.
		net.RegisterDecoder(cfg.Algorithm)
	}

	tiles := cfg.tiles()
	s.cores = make([]*coreState, tiles)
	s.l1s = make([]*cache.L1, tiles)
	s.banks = make([]*cache.Bank, tiles)
	s.txns = make([]map[cache.Addr]*txn, tiles)
	for i := 0; i < tiles; i++ {
		l1, err := cache.NewL1(cfg.L1Sets, cfg.L1Ways)
		if err != nil {
			return nil, err
		}
		s.l1s[i] = l1
		s.banks[i] = cache.NewBank(cache.BankConfig{
			Sets: cfg.BankSets, Ways: cfg.BankWays,
			TagFactor: cfg.tagFactor(), SegmentBytes: 8, Interleave: tiles,
		})
		s.txns[i] = make(map[cache.Addr]*txn)
		s.cores[i] = newCore(i, &cfg)
	}
	s.mcNodes = append([]int{cfg.MCNode}, cfg.ExtraMCNodes...)
	for range s.mcNodes {
		d, err := mem.New(mem.DefaultConfig())
		if err != nil {
			return nil, err
		}
		s.drams = append(s.drams, d)
	}
	s.trainSC2()
	return s, nil
}

// mcFor maps a block address to its memory controller index (block
// interleaving across channels).
func (s *System) mcFor(addr cache.Addr) int {
	return int((uint64(addr) / uint64(s.cfg.tiles())) % uint64(len(s.mcNodes)))
}

// mcNodeFor returns the tile hosting addr's memory controller.
func (s *System) mcNodeFor(addr cache.Addr) int { return s.mcNodes[s.mcFor(addr)] }

// dramAccesses sums all channels.
func (s *System) dramAccesses() uint64 {
	var n uint64
	for _, d := range s.drams {
		n += d.Accesses()
	}
	return n
}

// dramWrites sums write counts over all channels (used by tests).
func (s *System) dramWrites() uint64 {
	var n uint64
	for _, d := range s.drams {
		n += d.Writes
	}
	return n
}

// trainSC2 mirrors the value-sampling phase of the statistical
// compressors (SC², FVC): the shared table is built from a sample of the
// workload's blocks before measurement.
func (s *System) trainSC2() {
	type trainable interface {
		Observe([]byte)
		Retrain()
		Trained() bool
	}
	tr, ok := s.cfg.Algorithm.(trainable)
	if !ok || tr.Trained() {
		return
	}
	// Observe copies the values it samples, so one scratch block serves
	// the whole training loop.
	var scratch []byte
	for i := 0; i < 1024; i++ {
		scratch = s.cfg.Profile.AppendContent(scratch[:0], trace.PrivateBase(i%8)+uint64(i*37))
		tr.Observe(scratch)
	}
	tr.Retrain()
	s.sc2Trained = true
}

// content returns a block's (eternal) value, memoized. Data values are a
// pure function of address so compressibility is a stable block property;
// see DESIGN.md §3. Cached blocks are carved out of a chunked arena so a
// long run costs one allocation per 256 blocks instead of one per block.
func (s *System) content(addr cache.Addr) []byte {
	if b, ok := s.contentCache[addr]; ok {
		return b
	}
	const arenaBlocks = 256
	if cap(s.contentArena)-len(s.contentArena) < compress.BlockSize {
		s.contentArena = make([]byte, 0, arenaBlocks*compress.BlockSize)
	}
	off := len(s.contentArena)
	s.contentArena = s.cfg.Profile.AppendContent(s.contentArena, uint64(addr))
	b := s.contentArena[off:len(s.contentArena):len(s.contentArena)]
	s.contentCache[addr] = b
	return b
}

// compressedFor returns (and caches) the block's compressed encoding.
func (s *System) compressedFor(addr cache.Addr) compress.Compressed {
	if c, ok := s.compCache[addr]; ok {
		return c
	}
	c := s.cfg.Algorithm.Compress(s.content(addr))
	s.compCache[addr] = c
	return c
}

// storedSize is the LLC storage cost of a block in the current mode.
func (s *System) storedSize(addr cache.Addr) int {
	if !s.cfg.Mode.usesCompression() {
		return compress.BlockSize
	}
	c := s.compressedFor(addr)
	if c.Stored {
		return compress.BlockSize
	}
	return c.SizeBytes()
}

// homeOf maps a block address to its home tile (block-interleaved NUCA).
func (s *System) homeOf(addr cache.Addr) int { return int(uint64(addr) % uint64(s.cfg.tiles())) }

// pktID mints a packet id.
func (s *System) pktID() uint64 {
	s.nextPktID++
	return s.nextPktID
}

// sendCtrl injects a single-flit control packet.
func (s *System) sendCtrl(kind msgKind, addr cache.Addr, from, to int, txnID uint64, class noc.Class) {
	p := noc.NewControlPacket(s.pktID(), from, to, class)
	p.Meta = &message{kind: kind, addr: addr, requester: from, txnID: txnID}
	s.net.Inject(p)
}

// dataSource describes who is injecting a data packet (the form rules
// differ per Section 4.1 mode).
type dataSource int

const (
	srcBank dataSource = iota // LLC bank (holds the stored form)
	srcCore                   // L1 writeback / owner forward
	srcMC                     // memory fill
)

// sendData builds and injects a data packet carrying addr's block,
// applying the mode's injection-side latency and wire form.
func (s *System) sendData(kind msgKind, addr cache.Addr, from, to int, txnID uint64, grant cache.CohState, src dataSource) {
	s.sendDataDram(kind, addr, from, to, txnID, grant, src, 0)
}

// sendDataDram is sendData with an off-chip service-time annotation that
// rides along to the requester (see message.dramCycles).
func (s *System) sendDataDram(kind msgKind, addr cache.Addr, from, to int, txnID uint64, grant cache.CohState, src dataSource, dram uint64) {
	s.sendDataCoh(kind, addr, from, to, txnID, grant, src, dram, 0)
}

// sendDataCoh additionally annotates coherence-serialization time (see
// message.cohCycles).
func (s *System) sendDataCoh(kind msgKind, addr cache.Addr, from, to int, txnID uint64, grant cache.CohState, src dataSource, dram, coh uint64) {
	msg := &message{kind: kind, addr: addr, requester: from, txnID: txnID, grant: grant,
		dramCycles: dram, cohCycles: coh}
	blk := s.content(addr)
	toBank := kind == mWB || kind == mOwnerWB || kind == mMemData
	delay := uint64(0)

	var p *noc.Packet
	switch s.cfg.Mode {
	case Baseline:
		p = noc.NewDataPacket(s.pktID(), from, to, blk, false)
		p.Compressible = false
	case Ideal:
		// Zero-latency conversions everywhere: every payload travels in
		// its smallest form, free.
		p = noc.NewDataPacket(s.pktID(), from, to, blk, toBank)
		p.Compressible = false
		if c := s.compressedFor(addr); !c.Stored {
			p.ApplyCompression(c)
		}
	case CC:
		// Bank decompresses before packetizing (payload travels raw).
		p = noc.NewDataPacket(s.pktID(), from, to, blk, false)
		p.Compressible = false
		if src == srcBank && s.storedSize(addr) < compress.BlockSize {
			delay += uint64(s.cfg.Algorithm.DecompLatency())
			s.decompOps++
		}
	case CNC:
		// CC's bank behaviour plus an NI compressor on every data packet.
		p = noc.NewDataPacket(s.pktID(), from, to, blk, false)
		p.Compressible = false
		if src == srcBank && s.storedSize(addr) < compress.BlockSize {
			delay += uint64(s.cfg.Algorithm.DecompLatency())
			s.decompOps++
		}
		if c := s.compressedFor(addr); !c.Stored {
			p.ApplyCompression(c)
		}
		delay += uint64(s.cfg.Algorithm.CompLatency())
		s.compOps++
	case DISCO:
		// Banks inject the stored form as-is; cores and the MC inject raw.
		p = noc.NewDataPacket(s.pktID(), from, to, blk, toBank)
		if src == srcBank {
			if c := s.compressedFor(addr); !c.Stored {
				p.ApplyCompression(c)
			}
		}
	}
	p.Meta = msg
	if delay == 0 {
		s.net.Inject(p)
		return
	}
	s.events.schedule(s.now+delay, func() { s.net.Inject(p) })
}

// onEject receives every packet leaving the network and dispatches it
// after the mode's ejection-side latency.
func (s *System) onEject(node int, p *noc.Packet) {
	msg := p.Meta.(*message)
	delay := uint64(0)
	if p.Class == noc.ClassResponse {
		switch s.cfg.Mode {
		case CNC:
			if p.Compressed {
				delay += uint64(s.cfg.Algorithm.DecompLatency())
				s.decompOps++
			}
		case DISCO:
			if !p.InWantedForm() {
				// Residual conversion the in-network overlap did not hide.
				s.residualOps++
				if p.Compressed {
					delay += uint64(s.cfg.Algorithm.DecompLatency())
					s.decompOps++
				} else if !p.CompressionFailed {
					delay += uint64(s.cfg.Algorithm.CompLatency())
					s.compOps++
				}
			}
		}
	}
	s.events.schedule(s.now+delay, func() { s.dispatch(node, p, msg) })
}

// dispatch routes a delivered message to its handler.
func (s *System) dispatch(node int, p *noc.Packet, msg *message) {
	switch msg.kind {
	case mGetS, mGetX:
		s.homeRequest(node, msg)
	case mData, mGrantX:
		s.coreFill(node, msg)
	case mUnblock:
		s.homeUnblock(node, msg)
	case mInv:
		s.coreInv(node, msg)
	case mInvAck:
		s.homeAck(node, msg, false)
	case mFetch, mFetchInv:
		s.coreFetch(node, msg, msg.kind == mFetchInv)
	case mOwnerWB:
		s.homeAck(node, msg, true)
	case mWB:
		s.homeWriteback(node, msg)
	case mMemRead:
		s.mcRead(node, msg)
	case mMemData:
		s.homeMemData(node, msg)
	case mMemWB:
		s.mcWrite(node, msg)
	default:
		panic(fmt.Sprintf("cmp: unknown message kind %d", msg.kind))
	}
}

// Step advances the whole system one cycle.
func (s *System) Step() {
	s.events.runDue(s.now)
	for _, c := range s.cores {
		c.step(s)
	}
	s.net.Step()
	s.now++
}

// finished reports whether every core completed its quota.
func (s *System) finished() bool {
	for _, c := range s.cores {
		if c.opsDone < s.cfg.WarmupOps+s.cfg.OpsPerCore {
			return false
		}
	}
	return true
}

// results snapshots all statistics.
func (s *System) results() Results {
	ns := s.net.Stats()
	var l1Hits, l1Misses uint64
	for _, l1 := range s.l1s {
		l1Hits += l1.Hits
		l1Misses += l1.Misses
	}
	engines := 0
	switch s.cfg.Mode {
	case CC:
		engines = s.cfg.tiles()
	case CNC:
		engines = 2 * s.cfg.tiles()
	case DISCO:
		engines = s.cfg.tiles()
	}
	counts := energy.Counts{
		Cycles:        s.now,
		FlitHops:      ns.FlitHops,
		FlitsSwitched: ns.FlitsSwitched,
		L1Accesses:    l1Hits + l1Misses,
		BankAccesses:  s.bankAccesses,
		BankBytes:     s.bankBytes,
		BankProbes:    s.bankProbes,
		DramAccesses:  s.dramAccesses(),
		CompOps:       s.compOps + ns.Compressions,
		DecompOps:     s.decompOps + ns.Decompressions,
		Routers:       s.cfg.tiles(),
		Banks:         s.cfg.tiles(),
		L1s:           s.cfg.tiles(),
		Engines:       engines,
	}
	model := energy.NewModel(s.cfg.algName())
	return Results{
		Fault:          s.net.FaultStats(),
		Mode:           s.cfg.Mode,
		Benchmark:      s.cfg.Profile.Name,
		Algorithm:      s.cfg.algName(),
		Cycles:         s.now,
		AvgMissLatency: s.missLatency.Mean(),
		AvgMissTotal:   s.missTotal.Mean(),
		MissLatencyP50: s.missHist.Percentile(50),
		MissLatencyP95: s.missHist.Percentile(95),
		Misses:         s.missLatency.N(),
		L1Hits:         l1Hits,
		L1Misses:       l1Misses,
		L2Hits:         s.l2Hits,
		L2Misses:       s.l2Misses,
		DramAccesses:   s.dramAccesses(),
		Net:            ns,
		ResidualOps:    s.residualOps,
		EndpointComp:   s.compOps,
		EndpointDecomp: s.decompOps,
		PrefetchIssued: s.prefIssued,
		PrefetchUseful: s.prefUseful,
		Energy:         model.Energy(counts),
	}
}

// Results summarizes one run.
type Results struct {
	Mode      Mode
	Benchmark string
	Algorithm string

	Cycles uint64
	// AvgMissLatency is the paper's headline metric: mean on-chip data
	// access latency of L1 misses (request issue to fill completion,
	// minus off-chip DRAM service time for L2 misses — "NoC delay and
	// cache bank access delay", Section 4.2).
	AvgMissLatency float64
	// AvgMissTotal is the end-to-end miss latency, DRAM included.
	AvgMissTotal   float64
	MissLatencyP50 float64
	MissLatencyP95 float64
	Misses         uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	DramAccesses     uint64

	Net noc.Stats
	// Fault reports the fault-injection and recovery counters; nil (and
	// omitted from JSON) unless an injector was armed, so fault-free
	// artifacts stay byte-identical.
	Fault *noc.FaultStats `json:",omitempty"`
	// ResidualOps counts DISCO conversions that were NOT hidden in the
	// network (paid at ejection).
	ResidualOps    uint64
	EndpointComp   uint64
	EndpointDecomp uint64
	// PrefetchIssued/Useful report the optional LLC prefetcher's activity.
	PrefetchIssued uint64
	PrefetchUseful uint64

	Energy energy.Breakdown
}

// Detailed renders a multi-line report (used by discosim -run).
func (r Results) Detailed() string {
	respShare := 0.0
	if r.Net.FlitHops > 0 {
		respShare = float64(r.Net.FlitHopsByClass[noc.ClassResponse]) / float64(r.Net.FlitHops)
	}
	faultLine := ""
	if r.Fault != nil {
		faultLine = fmt.Sprintf("\n  fault %s", r.Fault)
	}
	return fmt.Sprintf(
		"mode=%s bench=%s alg=%s\n"+
			"  cycles           %d\n"+
			"  on-chip latency  %.1f cycles (p50 %.0f, p95 %.0f); end-to-end %.1f\n"+
			"  L1   %d hits / %d misses (%.1f%% miss)\n"+
			"  L2   %d hits / %d misses; DRAM %d accesses\n"+
			"  NoC  %d packets, %d flit-hops (%.0f%% response), queueing %.1f cyc/pkt\n"+
			"  NoC  delay breakdown queue %.1f + serialization %.1f + engine %.1f cyc/pkt; overlap %.0f%% (%d of %d engine cycles hidden)\n"+
			"  comp endpoint %d+%d, in-network %d+%d, residual %d%s\n"+
			"  energy %s",
		r.Mode, r.Benchmark, r.Algorithm,
		r.Cycles,
		r.AvgMissLatency, r.MissLatencyP50, r.MissLatencyP95, r.AvgMissTotal,
		r.L1Hits, r.L1Misses, 100*float64(r.L1Misses)/float64(maxu(r.L1Hits+r.L1Misses, 1)),
		r.L2Hits, r.L2Misses, r.DramAccesses,
		r.Net.Ejected, r.Net.FlitHops, respShare*100, r.Net.QueueCycles.Mean(),
		r.Net.QueueDelay.Mean(), r.Net.SerialDelay.Mean(), r.Net.EngineDelay.Mean(),
		100*r.Net.OverlapRatio(), r.Net.PktEngineCycles-r.Net.PktEngineExposed, r.Net.PktEngineCycles,
		r.EndpointComp, r.EndpointDecomp, r.Net.Compressions, r.Net.Decompressions, r.ResidualOps, faultLine,
		r.Energy)
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%-9s %-13s lat=%7.1f cycles=%8d L1miss=%6d L2miss=%6d dram=%5d flits=%8d E=%.1fuJ",
		r.Mode, r.Benchmark, r.AvgMissLatency, r.Cycles, r.L1Misses, r.L2Misses,
		r.DramAccesses, r.Net.FlitHops, r.Energy.Total()/1e6)
}
