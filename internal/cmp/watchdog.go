package cmp

import (
	"fmt"

	"github.com/disco-sim/disco/internal/noc"
)

// DefaultStallWindow is the progress watchdog's no-forward-progress
// window (cycles) when Config.StallWindow is 0. A healthy Table 2 run
// retires work every few cycles; 100k idle cycles means a wedge.
const DefaultStallWindow = 100_000

// watchdogPeriod is how often (cycles) the watchdog samples the progress
// signature; coarse enough to stay off the hot path.
const watchdogPeriod = 256

// StallError reports a run that stopped making forward progress (or
// exhausted its cycle budget). Unlike the old bare-string abort it
// carries a structured diagnostic Snapshot of everything in flight, so a
// wedged simulation is debuggable from its error value. Detect with
// errors.As(err, &*StallError).
type StallError struct {
	Mode      Mode
	Benchmark string
	// Cycle is when the watchdog fired; Window is how long the progress
	// signature had been frozen (0 when the cycle budget ran out).
	Cycle  uint64
	Window uint64
	Reason string
	// Snapshot is the network's in-flight state at the stall: per-router
	// VC occupancy and credits, engine/breaker state, NI backlogs.
	Snapshot *noc.Snapshot
}

// Error implements error with a one-line headline; the full picture is in
// Snapshot.String().
func (e *StallError) Error() string {
	return fmt.Sprintf("cmp: %v/%s stalled at cycle %d (%s); %s",
		e.Mode, e.Benchmark, e.Cycle, e.Reason, e.Snapshot.Summary())
}

// progressSignature folds every forward-progress counter into one value:
// core retirement plus network injection, ejection, link traversals and
// crossbar activity. Any real progress changes at least one term.
//
// It must only be sampled at a commit boundary (noc.AtCommitBoundary):
// mid-step, the two-phase engine's counters are partially staged — and
// on the parallel engine written concurrently — so a mid-cycle sample
// could both misread progress and race.
func (s *System) progressSignature() uint64 {
	var sig uint64
	for _, c := range s.cores {
		sig += uint64(c.opsDone)
	}
	ns := s.net.Stats()
	return sig + ns.Injected + ns.Ejected + ns.FlitHops + ns.FlitsSwitched
}

// stallError builds a *StallError with the current diagnostic snapshot
// and dumps the in-flight packets to the tracer (EvStall events).
func (s *System) stallError(window uint64, reason string) *StallError {
	s.net.DumpStall()
	return &StallError{
		Mode:      s.cfg.Mode,
		Benchmark: s.cfg.Profile.Name,
		Cycle:     s.now,
		Window:    window,
		Reason:    reason,
		Snapshot:  s.net.Snapshot(),
	}
}

// Run executes the simulation and returns its results. Instead of a bare
// cycle-budget abort, a progress watchdog samples a progress signature
// every watchdogPeriod cycles: if nothing moved for StallWindow cycles —
// a deadlock, a livelock, or a fault-wedged link — the run returns a
// typed *StallError carrying a structured snapshot. The MaxCycles budget
// remains as the outer bound and reports through the same type.
func (s *System) Run() (Results, error) {
	window := s.cfg.StallWindow
	if window == 0 {
		window = DefaultStallWindow
	}
	lastSig := s.progressSignature()
	lastChange := s.now
	for !s.finished() {
		if s.now >= s.cfg.MaxCycles {
			return Results{}, s.stallError(0, fmt.Sprintf("cycle budget %d exhausted", s.cfg.MaxCycles))
		}
		s.Step()
		if s.probeFn != nil && s.now%s.probeEvery == 0 && s.net.AtCommitBoundary() {
			s.probeFn()
		}
		if s.now%watchdogPeriod != 0 || !s.net.AtCommitBoundary() {
			// Sample only at post-commit boundaries: between Steps all
			// staged effects are applied and the counters are coherent.
			continue
		}
		if sig := s.progressSignature(); sig != lastSig {
			lastSig = sig
			lastChange = s.now
		} else if s.now-lastChange >= window {
			return Results{}, s.stallError(s.now-lastChange,
				fmt.Sprintf("no forward progress for %d cycles", s.now-lastChange))
		}
	}
	return s.results(), nil
}
