package cmp

import (
	"github.com/disco-sim/disco/internal/cache"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/noc"
)

// txnPhase tracks a home transaction.
type txnPhase int

const (
	phProbe   txnPhase = iota // tag/directory lookup in flight
	phMem                     // waiting for the memory fill
	phCollect                 // waiting for invalidation acks / owner data
	phUnblock                 // response sent, waiting for Unblock
)

// txn is one blocking directory transaction, serialized per line at the
// home bank (MOESI-lite; see DESIGN.md §3).
type txn struct {
	id           uint64
	addr         cache.Addr
	home         int
	requester    int
	write        bool
	phase        txnPhase
	pendingAcks  int
	dramCycles   uint64
	cohCycles    uint64
	collectStart uint64
	waiters      []*message
}

// homeRequest handles GetS/GetX arriving at the home bank.
func (s *System) homeRequest(home int, msg *message) {
	msg.arrivedAt = s.now
	if t, ok := s.txns[home][msg.addr]; ok {
		t.waiters = append(t.waiters, msg)
		return
	}
	s.startTxn(home, msg, nil)
}

// startTxn creates and launches a transaction, inheriting queued waiters.
func (s *System) startTxn(home int, msg *message, inherited []*message) {
	s.nextTxnID++
	t := &txn{
		id: s.nextTxnID, addr: msg.addr, home: home,
		requester: msg.requester, write: msg.kind == mGetX,
		cohCycles: s.now - msg.arrivedAt, // time spent queued behind another txn
		waiters:   inherited,
	}
	s.txns[home][msg.addr] = t
	s.events.schedule(s.now+s.cfg.TagLatency, func() { s.txnProbe(t) })
}

// txnProbe performs the tag + directory lookup.
func (s *System) txnProbe(t *txn) {
	s.bankProbes++
	bank := s.banks[t.home]
	line := bank.Lookup(t.addr)
	if line == nil {
		s.l2Misses++
		t.phase = phMem
		s.sendCtrl(mMemRead, t.addr, t.home, s.mcNodeFor(t.addr), t.id, noc.ClassRequest)
		s.issuePrefetches(t.home, t.addr)
		return
	}
	if line.Prefetched {
		line.Prefetched = false
		s.prefUseful++
	}
	s.l2Hits++
	line.Pinned = true
	s.txnCollect(t, line)
}

// issuePrefetches launches sequential prefetch transactions for the next
// blocks of this bank's address slice (stride = bank count).
func (s *System) issuePrefetches(home int, addr cache.Addr) {
	deg := s.cfg.PrefetchDegree
	if deg <= 0 {
		return
	}
	stride := cache.Addr(s.cfg.tiles())
	for k := 1; k <= deg; k++ {
		pa := addr + cache.Addr(k)*stride
		if _, busy := s.txns[home][pa]; busy || s.banks[home].Peek(pa) != nil {
			continue
		}
		s.nextTxnID++
		t := &txn{id: s.nextTxnID, addr: pa, home: home, requester: -1, phase: phMem}
		s.txns[home][pa] = t
		s.prefIssued++
		s.sendCtrl(mMemRead, pa, home, s.mcNodeFor(pa), t.id, noc.ClassRequest)
	}
}

// txnCollect issues invalidations / owner fetches and waits for acks.
func (s *System) txnCollect(t *txn, line *cache.Line) {
	acks := 0
	if t.write {
		for _, sh := range line.SharerList() {
			if sh == t.requester {
				continue
			}
			s.sendCtrl(mInv, t.addr, t.home, sh, t.id, noc.ClassCoherence)
			acks++
		}
		if line.Owner >= 0 && line.Owner != t.requester {
			s.sendCtrl(mFetchInv, t.addr, t.home, line.Owner, t.id, noc.ClassCoherence)
			acks++
		}
	} else if line.Owner >= 0 && line.Owner != t.requester {
		s.sendCtrl(mFetch, t.addr, t.home, line.Owner, t.id, noc.ClassCoherence)
		acks++
	}
	t.pendingAcks = acks
	if acks == 0 {
		s.txnRespond(t)
		return
	}
	t.collectStart = s.now
	t.phase = phCollect
}

// homeAck consumes InvAck / OwnerWB at the home.
func (s *System) homeAck(home int, msg *message, isData bool) {
	t, ok := s.txns[home][msg.addr]
	if !ok || t.id != msg.txnID {
		// Stray ack from an asynchronous victim recall.
		if isData {
			s.strayOwnerData(home, msg)
		}
		return
	}
	if isData {
		// Owner's data refreshes the LLC copy.
		s.bankAccesses++
		s.bankBytes += uint64(s.storedSize(msg.addr))
		if line := s.banks[home].Peek(msg.addr); line != nil {
			line.Dirty = true
		}
	}
	t.pendingAcks--
	if t.pendingAcks == 0 {
		t.cohCycles += s.now - t.collectStart // invalidation / owner round-trip
		s.txnRespond(t)
	}
}

// strayOwnerData handles owner data from a victim recall whose line is
// already gone: it continues to memory.
func (s *System) strayOwnerData(home int, msg *message) {
	if line := s.banks[home].Peek(msg.addr); line != nil {
		s.bankAccesses++
		s.bankBytes += uint64(s.storedSize(msg.addr))
		line.Dirty = true
		return
	}
	s.sendData(mMemWB, msg.addr, home, s.mcNodeFor(msg.addr), 0, cache.Invalid, srcCore)
}

// txnRespond updates the directory and sends the grant.
func (s *System) txnRespond(t *txn) {
	line := s.banks[t.home].Peek(t.addr)
	if line == nil {
		panic("cmp: responding transaction lost its (pinned) line")
	}
	if t.requester < 0 {
		// Prefetch transaction: the fill itself was the goal.
		line.Prefetched = true
		s.finishTxn(t)
		return
	}
	t.phase = phUnblock
	if t.write {
		hadCopy := line.Owner == t.requester || line.IsSharer(t.requester)
		line.Sharers = 0
		line.Owner = t.requester
		if hadCopy {
			// Upgrade: dataless grant.
			s.sendCtrl(mGrantX, t.addr, t.home, t.requester, t.id, noc.ClassCoherence)
			return
		}
		s.events.schedule(s.now+s.cfg.BankLatency, func() {
			s.bankAccesses++
			s.bankBytes += uint64(s.storedSize(t.addr))
			s.sendDataCoh(mData, t.addr, t.home, t.requester, t.id, cache.Modified, srcBank, t.dramCycles, t.cohCycles)
		})
		return
	}
	grant := cache.Shared
	if !line.HasSharers() {
		grant = cache.Exclusive
		line.Owner = t.requester // silent E->M makes the E holder the owner
	} else {
		line.AddSharer(t.requester)
	}
	// Read grants that involved no third party (no owner fetch) release
	// the line immediately: the directory state is already consistent, so
	// serializing further readers behind an Unblock round-trip would only
	// throttle read-shared hot lines (real directories do the same).
	if t.pendingAcks == 0 && !t.write {
		g := grant
		s.events.schedule(s.now+s.cfg.BankLatency, func() {
			s.bankAccesses++
			s.bankBytes += uint64(s.storedSize(t.addr))
			s.sendDataCoh(mData, t.addr, t.home, t.requester, 0, g, srcBank, t.dramCycles, t.cohCycles)
		})
		s.finishTxn(t)
		return
	}
	g := grant
	s.events.schedule(s.now+s.cfg.BankLatency, func() {
		s.bankAccesses++
		s.bankBytes += uint64(s.storedSize(t.addr))
		s.sendDataCoh(mData, t.addr, t.home, t.requester, t.id, g, srcBank, t.dramCycles, t.cohCycles)
	})
}

// finishTxn releases the line and drains waiters (shared by the immediate
// and Unblock completion paths).
func (s *System) finishTxn(t *txn) {
	if line := s.banks[t.home].Peek(t.addr); line != nil {
		line.Pinned = false
	}
	delete(s.txns[t.home], t.addr)
	for i, w := range t.waiters {
		switch w.kind {
		case mWB:
			s.applyWriteback(t.home, w)
		case mGetS, mGetX:
			s.startTxn(t.home, w, t.waiters[i+1:])
			return
		}
	}
}

// homeUnblock finishes a transaction and drains waiters.
func (s *System) homeUnblock(home int, msg *message) {
	t, ok := s.txns[home][msg.addr]
	if !ok || t.id != msg.txnID {
		return
	}
	s.finishTxn(t)
}

// homeWriteback handles an L1 victim writeback at the home.
func (s *System) homeWriteback(home int, msg *message) {
	if t, ok := s.txns[home][msg.addr]; ok {
		t.waiters = append(t.waiters, msg)
		return
	}
	s.applyWriteback(home, msg)
}

// applyWriteback folds the writeback into the LLC (or forwards it to
// memory when the line is gone).
func (s *System) applyWriteback(home int, msg *message) {
	s.wbPackets++
	line := s.banks[home].Peek(msg.addr)
	if line == nil {
		s.sendData(mMemWB, msg.addr, home, s.mcNodeFor(msg.addr), 0, cache.Invalid, srcCore)
		return
	}
	s.bankAccesses++
	s.bankBytes += uint64(s.storedSize(msg.addr))
	line.Dirty = true
	if line.Owner == msg.requester {
		line.Owner = -1
	}
	line.RemoveSharer(msg.requester)
	// Bank-side fill compression latency (CC/CNC recompress the block the
	// NI handed them; DISCO/Ideal banks receive the stored form or paid at
	// ejection already).
	if s.cfg.Mode == CC || s.cfg.Mode == CNC {
		s.compOps++
	}
}

// homeMemData installs a memory fill and resumes the transaction.
func (s *System) homeMemData(home int, msg *message) {
	t, ok := s.txns[home][msg.addr]
	if !ok || t.id != msg.txnID || t.phase != phMem {
		return // stale fill (cannot normally happen)
	}
	t.dramCycles = msg.dramCycles
	fill := func() {
		size := s.storedSize(t.addr)
		line, victims := s.banks[home].Insert(t.addr, size, false)
		line.Pinned = true
		s.bankAccesses++
		s.bankBytes += uint64(size)
		for _, v := range victims {
			s.evictVictim(home, v)
		}
		s.txnCollect(t, line)
	}
	if s.cfg.Mode == CC || s.cfg.Mode == CNC {
		// The bank compressor sits on the fill path.
		s.compOps++
		s.events.schedule(s.now+uint64(s.cfg.Algorithm.CompLatency()), fill)
		return
	}
	fill()
}

// evictVictim tears down an evicted LLC line: recall L1 copies
// (fire-and-forget) and write dirty data back to memory.
func (s *System) evictVictim(home int, v cache.Victim2) {
	for _, sh := range v.Line.SharerList() {
		s.sendCtrl(mInv, v.Line.Addr, home, sh, 0, noc.ClassCoherence)
	}
	if v.Line.Owner >= 0 {
		s.sendCtrl(mFetchInv, v.Line.Addr, home, v.Line.Owner, 0, noc.ClassCoherence)
		return // the owner's data will continue to memory via strayOwnerData
	}
	if v.Line.Dirty {
		s.sendData(mMemWB, v.Line.Addr, home, s.mcNodeFor(v.Line.Addr), 0, cache.Invalid, srcBank)
	}
}

// --- Memory controller ---------------------------------------------------

// mcRead services a fill request at the memory controller.
func (s *System) mcRead(node int, msg *message) {
	ready := s.drams[s.mcFor(msg.addr)].Access(uint64(msg.addr), false, s.now)
	home, id := msg.requester, msg.txnID
	wait := ready - s.now
	s.events.schedule(ready, func() {
		s.sendDataDram(mMemData, msg.addr, node, home, id, cache.Invalid, srcMC, wait)
	})
}

// mcWrite absorbs a writeback at the memory controller.
func (s *System) mcWrite(_ int, msg *message) {
	s.drams[s.mcFor(msg.addr)].Access(uint64(msg.addr), true, s.now)
}

// --- Core-side protocol handlers ------------------------------------------

// coreInv invalidates an L1 copy and acks. An invalidation that overtakes
// an in-flight fill poisons the fill (see mshrEntry.invalidated).
func (s *System) coreInv(node int, msg *message) {
	s.l1s[node].Invalidate(msg.addr)
	if m, ok := s.cores[node].mshrs[msg.addr]; ok {
		m.invalidated = true
	}
	if msg.txnID != 0 {
		s.sendCtrl(mInvAck, msg.addr, node, msg.requester, msg.txnID, noc.ClassCoherence)
	}
}

// coreFetch services Fetch/FetchInv at the (possibly former) owner.
func (s *System) coreFetch(node int, msg *message, inv bool) {
	st := s.l1s[node].State(msg.addr)
	switch {
	case inv:
		s.l1s[node].Invalidate(msg.addr)
		if m, ok := s.cores[node].mshrs[msg.addr]; ok {
			m.invalidated = true
		}
	case st.Dirty():
		s.l1s[node].SetState(msg.addr, cache.Owned)
	case st == cache.Exclusive:
		// A read fetch downgrades a clean-exclusive copy to Shared.
		s.l1s[node].SetState(msg.addr, cache.Shared)
	}
	// Data values are address-deterministic, so an ex-owner whose
	// writeback is still in flight can regenerate the payload.
	s.sendData(mOwnerWB, msg.addr, node, msg.requester, msg.txnID, cache.Invalid, srcCore)
}

// coreFill completes a miss at the requesting core.
func (s *System) coreFill(node int, msg *message) {
	c := s.cores[node]
	m, ok := c.mshrs[msg.addr]
	if !ok {
		return // stray (cannot normally happen)
	}
	grant := msg.grant
	if msg.kind == mGrantX {
		grant = cache.Modified
	}
	if m.invalidated {
		// The grant was overtaken by an invalidation: satisfy the access
		// without caching a stale copy.
		grant = cache.Invalid
	}
	if grant != cache.Invalid {
		victim, evicted := s.l1s[node].Insert(msg.addr, grant)
		if evicted && victim.State.Dirty() {
			s.sendData(mWB, victim.Addr, node, s.homeOf(victim.Addr), 0, cache.Invalid, srcCore)
		}
	}
	if m.measured {
		total := s.now - m.issue
		onchip := total - msg.dramCycles - msg.cohCycles
		s.missLatency.Add(float64(onchip))
		s.missTotal.Add(float64(total))
		s.missHist.Add(float64(onchip))
	}
	c.opsDone += 1 + m.coalesced
	delete(c.mshrs, msg.addr)
	c.retry = true
	if msg.txnID != 0 {
		s.sendCtrl(mUnblock, msg.addr, node, s.homeOf(msg.addr), msg.txnID, noc.ClassCoherence)
	}
}

// compressibleSanity asserts BlockSize assumptions once at init.
var _ = func() int {
	if compress.BlockSize != 64 {
		panic("cmp: protocol assumes 64-byte lines")
	}
	return 0
}()
