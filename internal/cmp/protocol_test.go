package cmp

import (
	"testing"

	"github.com/disco-sim/disco/internal/cache"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
)

// protoSystem builds a small system whose cores are driven manually: the
// profile is irrelevant because we inject protocol messages directly.
func protoSystem(t *testing.T, mode Mode) *System {
	t.Helper()
	prof, _ := trace.ByName("bodytrack")
	cfg := DefaultConfig(mode, compress.NewDelta(), prof)
	cfg.OpsPerCore = 1 // cores idle after one op; we drive the protocol
	cfg.WarmupOps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Silence the cores entirely.
	for _, c := range s.cores {
		c.opsIssued = cfg.WarmupOps + cfg.OpsPerCore
		c.opsDone = c.opsIssued
	}
	return s
}

// drive steps until the predicate holds or the budget runs out.
func drive(t *testing.T, s *System, cycles int, pred func() bool) {
	t.Helper()
	for i := 0; i < cycles; i++ {
		if pred() {
			return
		}
		s.Step()
	}
	if !pred() {
		t.Fatal("condition not reached within cycle budget")
	}
}

// requestFill issues a GetS/GetX from a core and waits for the fill.
func requestFill(t *testing.T, s *System, core int, addr cache.Addr, write bool) {
	t.Helper()
	c := s.cores[core]
	c.mshrs[addr] = &mshrEntry{addr: addr, write: write, issue: s.now}
	kind := mGetS
	if write {
		kind = mGetX
	}
	s.sendCtrl(kind, addr, core, s.homeOf(addr), 0, noc.ClassRequest)
	drive(t, s, 20000, func() bool {
		_, outstanding := c.mshrs[addr]
		return !outstanding
	})
}

func TestProtocolReadThenUpgrade(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(1) + 5)
	requestFill(t, s, 1, addr, false)
	if st := s.l1s[1].State(addr); st != cache.Exclusive {
		t.Fatalf("lone reader should get E, got %v", st)
	}
	// Second reader downgrades the grant to S.
	requestFill(t, s, 2, addr, false)
	if st := s.l1s[2].State(addr); st != cache.Shared {
		t.Fatalf("second reader should get S, got %v", st)
	}
	// Writer upgrades; other copies are invalidated.
	requestFill(t, s, 2, addr, true)
	if st := s.l1s[2].State(addr); st != cache.Modified {
		t.Fatalf("writer should hold M, got %v", st)
	}
	drive(t, s, 5000, func() bool { return s.l1s[1].State(addr) == cache.Invalid })
	home := s.homeOf(addr)
	line := s.banks[home].Peek(addr)
	if line == nil || line.Owner != 2 {
		t.Fatalf("directory owner should be 2: %+v", line)
	}
}

func TestProtocolOwnerForwarding(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(2) + 9)
	// Core 3 writes (M), then core 4 reads: the owner must downgrade to O
	// and the home must serve fresh data.
	requestFill(t, s, 3, addr, true)
	if st := s.l1s[3].State(addr); st != cache.Modified {
		t.Fatalf("writer state = %v", st)
	}
	requestFill(t, s, 4, addr, false)
	if st := s.l1s[3].State(addr); st != cache.Owned {
		t.Errorf("previous owner should be O, got %v", st)
	}
	if st := s.l1s[4].State(addr); st != cache.Shared {
		t.Errorf("reader should be S, got %v", st)
	}
	home := s.homeOf(addr)
	line := s.banks[home].Peek(addr)
	if line == nil || !line.Dirty {
		t.Error("home copy should be dirty after owner forward")
	}
}

func TestProtocolWritebackToPresentLine(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(3) + 77)
	requestFill(t, s, 5, addr, true)
	// Simulate an L1 eviction writeback.
	s.l1s[5].Invalidate(addr)
	s.sendData(mWB, addr, 5, s.homeOf(addr), 0, cache.Invalid, srcCore)
	home := s.homeOf(addr)
	drive(t, s, 5000, func() bool {
		l := s.banks[home].Peek(addr)
		return l != nil && l.Dirty && l.Owner == -1
	})
}

func TestProtocolWritebackToAbsentLineGoesToMemory(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(3) + 101)
	before := s.dramWrites()
	// Writeback for a line the LLC does not hold: must continue to DRAM.
	s.sendData(mWB, addr, 5, s.homeOf(addr), 0, cache.Invalid, srcCore)
	drive(t, s, 5000, func() bool { return s.dramWrites() == before+1 })
}

func TestProtocolInvalidateAbsentLineStillAcks(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(1) + 200)
	// Core 7 never held the line; a stray Inv must be acked (txnID!=0) and
	// not crash.
	s.sendCtrl(mInv, addr, s.homeOf(addr), 7, 42, noc.ClassCoherence)
	for i := 0; i < 200; i++ {
		s.Step()
	}
}

func TestProtocolQueuedRequestsServedInOrder(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(2) + 300)
	// Two concurrent readers for the same cold line: both must complete.
	c1, c2 := s.cores[1], s.cores[2]
	c1.mshrs[addr] = &mshrEntry{addr: addr, issue: s.now}
	c2.mshrs[addr] = &mshrEntry{addr: addr, issue: s.now}
	s.sendCtrl(mGetS, addr, 1, s.homeOf(addr), 0, noc.ClassRequest)
	s.sendCtrl(mGetS, addr, 2, s.homeOf(addr), 0, noc.ClassRequest)
	drive(t, s, 30000, func() bool {
		_, o1 := c1.mshrs[addr]
		_, o2 := c2.mshrs[addr]
		return !o1 && !o2
	})
	if s.l1s[1].State(addr) == cache.Invalid || s.l1s[2].State(addr) == cache.Invalid {
		t.Error("both readers should hold the line")
	}
}

func TestProtocolDISCOBankStoresCompressed(t *testing.T) {
	s := protoSystem(t, DISCO)
	addr := cache.Addr(trace.PrivateBase(1) + 11)
	requestFill(t, s, 1, addr, false)
	home := s.homeOf(addr)
	line := s.banks[home].Peek(addr)
	if line == nil {
		t.Fatal("fill did not install the line")
	}
	want := s.storedSize(addr)
	if line.SizeBytes != want {
		t.Errorf("stored size = %d, want %d", line.SizeBytes, want)
	}
	if want < compress.BlockSize && line.Segs >= 8 {
		t.Errorf("compressed line should take fewer segments, got %d", line.Segs)
	}
}

func TestProtocolBaselineStoresRaw(t *testing.T) {
	s := protoSystem(t, Baseline)
	addr := cache.Addr(trace.PrivateBase(1) + 12)
	requestFill(t, s, 1, addr, false)
	line := s.banks[s.homeOf(addr)].Peek(addr)
	if line == nil || line.SizeBytes != compress.BlockSize {
		t.Errorf("baseline must store 64B lines: %+v", line)
	}
}

func TestProtocolL2VictimRecall(t *testing.T) {
	s := protoSystem(t, Baseline)
	// Fill one set of one bank beyond capacity so a directory-tracked
	// victim gets recalled from its sharer.
	// Bank geometry: 512 sets, 8 ways, interleave 16 banks. Use bank 0,
	// and addresses that map to the same set: addr = j * 16 * 512.
	var addrs []cache.Addr
	for j := 0; j < 9; j++ {
		addrs = append(addrs, cache.Addr(uint64(j)*16*512*7919)) // spread via hash anyway
	}
	// Simpler: just fill many lines via core 1 reads and verify inclusion
	// is maintained for whatever got evicted.
	for i, a := range addrs {
		requestFill(t, s, 1, a, false)
		_ = i
	}
	// Every line still in L1 must be present in the LLC (inclusion), once
	// all recalls have drained.
	for i := 0; i < 20000; i++ {
		s.Step()
	}
	for _, a := range addrs {
		if s.l1s[1].State(a) != cache.Invalid {
			if s.banks[s.homeOf(a)].Peek(a) == nil {
				t.Errorf("inclusion violated for %x", uint64(a))
			}
		}
	}
}
