// Package trace generates the synthetic PARSEC-2.1-like workloads that
// drive the full-system simulator. The real PARSEC traces are not
// redistributable, and the DISCO figures only depend on per-benchmark
// aggregate behaviour: miss rates (footprint + locality), traffic volume
// (memory intensity, read/write mix, sharing) and value compressibility
// (pattern mix). Each Profile controls those knobs explicitly and
// deterministically, which is the substitution DESIGN.md §3 documents.
//
// Block contents are a pure function of (profile, block address), so a
// block reads back with the same compressibility wherever it flows —
// exactly the property the cache/NoC compressors exploit.
package trace

import (
	"fmt"
	"math/rand"

	"github.com/disco-sim/disco/internal/compress"
)

// PatternMix weighs the value-pattern classes a benchmark's cache blocks
// draw from. Weights need not sum to 1; they are normalized.
type PatternMix struct {
	// Zero: all-zero blocks (BSS, freshly calloc'd buffers).
	Zero float64
	// Repeat: one 8-byte value repeated (memset-style fills).
	Repeat float64
	// Narrow: 32-bit integers with small magnitudes (counters, indices).
	Narrow float64
	// Pointer: 64-bit values sharing a heap base (pointer-rich nodes).
	Pointer float64
	// Float: doubles with clustered exponents and noisy mantissas.
	Float float64
	// Text: small-alphabet byte data (strings, genomes, ASCII).
	Text float64
	// Random: incompressible data (hashes, compressed media).
	Random float64
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the PARSEC benchmark this profile stands in for.
	Name string
	// FootprintBlocks is each core's private working set in 64 B blocks.
	FootprintBlocks int
	// SharedBlocks is the size of the globally shared region.
	SharedBlocks int
	// SharedFraction is the probability an access targets the shared
	// region (drives coherence traffic).
	SharedFraction float64
	// ReadFraction is the probability a private-region access is a load.
	ReadFraction float64
	// SharedWriteFraction is the probability a shared-region access is a
	// store. Shared data in PARSEC-class workloads is overwhelmingly
	// read-mostly; writes ping-pong lines between cores, so this knob is
	// kept small and separate.
	SharedWriteFraction float64
	// MeanGap is the mean number of non-memory cycles between successive
	// memory accesses of one core (memory intensity knob).
	MeanGap float64
	// ZipfS is the Zipf skew of block reuse (>1; higher = more locality).
	ZipfS float64
	// Mix is the value-pattern mix of the benchmark's data.
	Mix PatternMix
	// Seed decorrelates profiles that otherwise share parameters.
	Seed int64
}

// Validate reports profile errors.
func (p *Profile) Validate() error {
	if p.FootprintBlocks < 2 || p.SharedBlocks < 2 {
		return fmt.Errorf("trace: profile %q footprints too small", p.Name)
	}
	if p.SharedFraction < 0 || p.SharedFraction > 1 || p.ReadFraction < 0 || p.ReadFraction > 1 ||
		p.SharedWriteFraction < 0 || p.SharedWriteFraction > 1 {
		return fmt.Errorf("trace: profile %q fractions out of range", p.Name)
	}
	if p.ZipfS <= 1 {
		return fmt.Errorf("trace: profile %q ZipfS must exceed 1", p.Name)
	}
	if p.MeanGap < 0 {
		return fmt.Errorf("trace: profile %q negative gap", p.Name)
	}
	return nil
}

// Address-space layout (block addresses): each core owns a private slab;
// one region is shared by all cores.
const (
	privateRegionBits = 24
	sharedRegionBase  = uint64(1) << 40
)

// PrivateBase returns the base block address of core's private region.
func PrivateBase(core int) uint64 { return uint64(core+1) << privateRegionBits }

// IsShared reports whether a block address is in the shared region.
func IsShared(addr uint64) bool { return addr >= sharedRegionBase }

// splitmix64 is a deterministic hash for content derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Content deterministically materializes the 64-byte content of a block.
// The pattern class is chosen by hashing the address against the profile's
// mix, so a benchmark's blocks are a stable population.
func (p *Profile) Content(addr uint64) []byte {
	return p.AppendContent(nil, addr)
}

// blockZero seeds AppendContent's 64 block bytes in one append.
var blockZero [compress.BlockSize]byte

// AppendContent appends the block's 64 bytes to dst and returns the
// extended slice. Hot paths pass a reused scratch buffer (dst[:0]) to
// materialize blocks without a per-call allocation; the bytes produced
// are identical to Content's.
func (p *Profile) AppendContent(dst []byte, addr uint64) []byte {
	h := splitmix64(addr ^ uint64(p.Seed)*0x9E3779B97F4A7C15)
	total := p.Mix.Zero + p.Mix.Repeat + p.Mix.Narrow + p.Mix.Pointer +
		p.Mix.Float + p.Mix.Text + p.Mix.Random
	if total <= 0 {
		total = 1
	}
	pick := float64(h%1000000) / 1000000 * total
	rng := rand.New(rand.NewSource(int64(splitmix64(h))))
	dst = append(dst, blockZero[:]...)
	b := dst[len(dst)-compress.BlockSize:]
	switch {
	case pick < p.Mix.Zero:
		// all zeros
	case pick < p.Mix.Zero+p.Mix.Repeat:
		// memset-style fill with one of the program's few fill patterns.
		v := p.pool("repeat", rng.Intn(16))
		for i := 0; i < 64; i += 8 {
			putU64(b[i:], v)
		}
	case pick < p.Mix.Zero+p.Mix.Repeat+p.Mix.Narrow:
		// Small integers drawn from the program's live value population
		// (counters, sizes, enum codes recur across blocks).
		for i := 0; i < 64; i += 4 {
			v := int32(p.pool("narrow", rng.Intn(256))%4096) - 2048
			putU32(b[i:], uint32(v))
		}
	case pick < p.Mix.Zero+p.Mix.Repeat+p.Mix.Narrow+p.Mix.Pointer:
		// Pointers into a handful of allocation arenas: one arena base per
		// block, small aligned offsets.
		base := p.pool("ptrbase", rng.Intn(32)) & 0x0000_7FFF_FFFF_0000
		for i := 0; i < 64; i += 8 {
			putU64(b[i:], base+uint64(rng.Intn(4096))*16)
		}
	case pick < p.Mix.Zero+p.Mix.Repeat+p.Mix.Narrow+p.Mix.Pointer+p.Mix.Float:
		// Doubles over a small set of exponents with mantissas recurring
		// from the program's computed-constant population — the value
		// locality statistical compressors (SC²) exploit.
		exp := (0x3FF0 + p.pool("exp", rng.Intn(16))%16) << 48
		for i := 0; i < 64; i += 8 {
			mant := p.pool("mant", rng.Intn(512)) & 0xFFFF_FFFF
			putU64(b[i:], exp|mant)
		}
	case pick < total-p.Mix.Random:
		// Text: 4-byte chunks drawn from the document's recurring n-gram
		// population — pattern compressors get little traction here while
		// statistical (SC²-style) compression shines, as in real text.
		const alphabet = "etaoin shrdlucm"
		for i := 0; i < 64; i += 4 {
			gram := p.pool("text", rng.Intn(384))
			for j := 0; j < 4; j++ {
				b[i+j] = alphabet[int(byte(gram>>uint(8*j)))%len(alphabet)]
			}
		}
	default:
		_, _ = rng.Read(b) // documented to never fail
	}
	return dst
}

// pool returns element k of the profile's deterministic value pool for a
// pattern class. Pools model cross-block value reuse: a program's live
// values (fill patterns, counters, heap bases, computed constants) recur
// in many blocks.
func (p *Profile) pool(class string, k int) uint64 {
	h := uint64(p.Seed)
	for _, c := range class {
		h = h*131 + uint64(c)
	}
	return splitmix64(h*0x9E3779B97F4A7C15 + uint64(k))
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}

// Access is one memory reference of a core.
type Access struct {
	// Addr is the block address.
	Addr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of non-memory cycles preceding this access.
	Gap int
}

// Generator produces one core's deterministic access stream.
type Generator struct {
	prof       *Profile
	core       int
	err        error // latched construction error; Next returns zeros
	rng        *rand.Rand
	zipfPriv   *rand.Zipf
	zipfShared *rand.Zipf
}

// NewGenerator builds core's stream for the profile. The same
// (profile, core, seed) always yields the same stream.
//
// An invalid profile does not panic: the error is latched, Next returns
// zero accesses, and Err reports the problem — callers that validated
// the profile up front (the cmp harness does) never see it, and callers
// that didn't get a diagnosable stream instead of a crash.
func NewGenerator(p *Profile, core int, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		return &Generator{prof: p, core: core, err: err}
	}
	rng := rand.New(rand.NewSource(seed ^ int64(splitmix64(uint64(core)+uint64(p.Seed)<<20))))
	return &Generator{
		prof:       p,
		core:       core,
		rng:        rng,
		zipfPriv:   rand.NewZipf(rng, p.ZipfS, 2, uint64(p.FootprintBlocks-1)),
		zipfShared: rand.NewZipf(rng, p.ZipfS, 2, uint64(p.SharedBlocks-1)),
	}
}

// Err returns the latched construction error, or nil for a usable
// generator.
func (g *Generator) Err() error { return g.err }

// Next returns the next access.
func (g *Generator) Next() Access {
	if g.err != nil {
		return Access{}
	}
	var addr uint64
	var write bool
	if g.rng.Float64() < g.prof.SharedFraction {
		addr = sharedRegionBase + g.zipfShared.Uint64()
		write = g.rng.Float64() < g.prof.SharedWriteFraction
	} else {
		addr = PrivateBase(g.core) + g.zipfPriv.Uint64()
		write = g.rng.Float64() >= g.prof.ReadFraction
	}
	gap := 0
	if g.prof.MeanGap > 0 {
		gap = int(g.rng.ExpFloat64() * g.prof.MeanGap)
		if gap > 1000 {
			gap = 1000
		}
	}
	return Access{Addr: addr, Write: write, Gap: gap}
}
