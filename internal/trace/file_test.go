package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("vips")
	g := NewGenerator(&p, 0, 3)
	orig := Record(g, 500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("length %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if orig[i] != back[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, orig[i], back[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"xyz r 0\n",         // bad address
		"10 q 0\n",          // bad op
		"10 r -1\n",         // negative gap
		"10 r\n",            // missing field
		"10 r 0 extra oh\n", // too many fields... (4 fields? "extra oh" makes 5)
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1f w 3\n   \n# tail\n20 r 0\n"
	accs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 2 || accs[0].Addr != 0x1f || !accs[0].Write || accs[0].Gap != 3 {
		t.Fatalf("parsed %+v", accs)
	}
}

func TestReplayLoops(t *testing.T) {
	r := NewReplay([]Access{{Addr: 1}, {Addr: 2}})
	seq := []uint64{1, 2, 1, 2, 1}
	for i, want := range seq {
		if got := r.Next().Addr; got != want {
			t.Fatalf("step %d: got %d want %d", i, got, want)
		}
	}
	if r.Loops != 2 {
		t.Errorf("Loops = %d, want 2", r.Loops)
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReplay(nil)
}

func TestGeneratorImplementsStream(t *testing.T) {
	p, _ := ByName("vips")
	var s Stream = NewGenerator(&p, 0, 1)
	if s.Next().Addr == 0 {
		t.Log("first access at address 0 (allowed)") // just exercise the interface
	}
}
