package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a plain-text trace format so the simulator can be
// driven by externally captured access streams (the paper drives its
// platform from gem5; anyone with real traces can convert them to this
// format instead of using the synthetic profiles).
//
// Format: one access per line,
//
//	<block-addr-hex> <r|w> <gap>
//
// '#' starts a comment; blank lines are ignored.

// WriteTrace serializes a stream of accesses.
func WriteTrace(w io.Writer, accs []Access) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# disco trace v1: <block-addr-hex> <r|w> <gap>"); err != nil {
		return err
	}
	for _, a := range accs {
		op := "r"
		if a.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "%x %s %d\n", a.Addr, op, a.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file.
func ReadTrace(r io.Reader) ([]Access, error) {
	var out []Access
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		addr, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[0])
		}
		var write bool
		switch fields[1] {
		case "r":
		case "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		gap, err := strconv.Atoi(fields[2])
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[2])
		}
		out = append(out, Access{Addr: addr, Write: write, Gap: gap})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stream produces one core's memory accesses; both the synthetic
// Generator and replayed file traces implement it.
type Stream interface {
	// Next returns the next access. Implementations must be infinite
	// (replay streams loop).
	Next() Access
}

// Replay replays a recorded access list, looping at the end so it can
// drive runs of any length.
type Replay struct {
	accs []Access
	pos  int
	// Loops counts how many times the stream wrapped (diagnostics).
	Loops int
}

// NewReplay wraps a non-empty access list; it panics on an empty list
// (caller bug).
func NewReplay(accs []Access) *Replay {
	if len(accs) == 0 {
		panic("trace: replay of empty trace")
	}
	return &Replay{accs: accs}
}

// Next implements Stream.
func (r *Replay) Next() Access {
	a := r.accs[r.pos]
	r.pos++
	if r.pos == len(r.accs) {
		r.pos = 0
		r.Loops++
	}
	return a
}

// Record captures n accesses from a generator (e.g. to snapshot a
// synthetic workload into a shareable trace file).
func Record(s Stream, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
