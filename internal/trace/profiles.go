package trace

// Profiles returns the 12 synthetic PARSEC-2.1 stand-ins used by the
// evaluation (Figs. 5–8). Knobs were chosen to span the behaviours that
// drive the paper's results:
//
//   - footprint vs. the 4 MB LLC → L2 miss rate & capacity sensitivity
//     (canneal/streamcluster spill; swaptions/blackscholes fit);
//   - MeanGap → memory intensity and hence NoC load;
//   - SharedFraction → coherence traffic share;
//   - Mix → per-benchmark compressibility (float-heavy codes compress
//     mildly, integer/pointer codes compress well, media/hash data barely).
func Profiles() []Profile {
	return []Profile{
		{Name: "blackscholes", FootprintBlocks: 768, SharedBlocks: 512,
			SharedFraction: 0.05, ReadFraction: 0.85, SharedWriteFraction: 0.02, MeanGap: 12, ZipfS: 1.80, Seed: 101,
			Mix: PatternMix{Float: 0.45, Narrow: 0.20, Zero: 0.20, Random: 0.15}},
		{Name: "bodytrack", FootprintBlocks: 1536, SharedBlocks: 1024,
			SharedFraction: 0.12, ReadFraction: 0.75, SharedWriteFraction: 0.02, MeanGap: 6, ZipfS: 1.65, Seed: 102,
			Mix: PatternMix{Float: 0.30, Narrow: 0.30, Zero: 0.15, Text: 0.05, Random: 0.20}},
		{Name: "canneal", FootprintBlocks: 6144, SharedBlocks: 4096,
			SharedFraction: 0.20, ReadFraction: 0.80, SharedWriteFraction: 0.02, MeanGap: 3, ZipfS: 1.45, Seed: 103,
			Mix: PatternMix{Pointer: 0.45, Narrow: 0.20, Zero: 0.10, Random: 0.25}},
		{Name: "dedup", FootprintBlocks: 3072, SharedBlocks: 2048,
			SharedFraction: 0.15, ReadFraction: 0.70, SharedWriteFraction: 0.02, MeanGap: 5, ZipfS: 1.60, Seed: 104,
			Mix: PatternMix{Text: 0.25, Repeat: 0.10, Narrow: 0.15, Zero: 0.15, Random: 0.35}},
		{Name: "facesim", FootprintBlocks: 4096, SharedBlocks: 2048,
			SharedFraction: 0.10, ReadFraction: 0.75, SharedWriteFraction: 0.02, MeanGap: 5, ZipfS: 1.60, Seed: 105,
			Mix: PatternMix{Float: 0.50, Zero: 0.15, Narrow: 0.15, Random: 0.20}},
		{Name: "ferret", FootprintBlocks: 2048, SharedBlocks: 2048,
			SharedFraction: 0.18, ReadFraction: 0.80, SharedWriteFraction: 0.02, MeanGap: 6, ZipfS: 1.65, Seed: 106,
			Mix: PatternMix{Narrow: 0.30, Float: 0.25, Text: 0.10, Zero: 0.10, Random: 0.25}},
		{Name: "fluidanimate", FootprintBlocks: 3072, SharedBlocks: 1536,
			SharedFraction: 0.12, ReadFraction: 0.70, SharedWriteFraction: 0.02, MeanGap: 5, ZipfS: 1.60, Seed: 107,
			Mix: PatternMix{Float: 0.55, Zero: 0.15, Narrow: 0.10, Random: 0.20}},
		{Name: "freqmine", FootprintBlocks: 2048, SharedBlocks: 1024,
			SharedFraction: 0.10, ReadFraction: 0.85, SharedWriteFraction: 0.02, MeanGap: 8, ZipfS: 1.70, Seed: 108,
			Mix: PatternMix{Narrow: 0.45, Zero: 0.20, Pointer: 0.15, Random: 0.20}},
		{Name: "streamcluster", FootprintBlocks: 8192, SharedBlocks: 1024,
			SharedFraction: 0.08, ReadFraction: 0.90, SharedWriteFraction: 0.02, MeanGap: 2, ZipfS: 1.40, Seed: 109,
			Mix: PatternMix{Float: 0.45, Narrow: 0.20, Zero: 0.15, Random: 0.20}},
		{Name: "swaptions", FootprintBlocks: 512, SharedBlocks: 256,
			SharedFraction: 0.05, ReadFraction: 0.80, SharedWriteFraction: 0.02, MeanGap: 14, ZipfS: 1.80, Seed: 110,
			Mix: PatternMix{Float: 0.40, Narrow: 0.25, Zero: 0.20, Random: 0.15}},
		{Name: "vips", FootprintBlocks: 2048, SharedBlocks: 512,
			SharedFraction: 0.10, ReadFraction: 0.65, SharedWriteFraction: 0.02, MeanGap: 5, ZipfS: 1.65, Seed: 111,
			Mix: PatternMix{Narrow: 0.40, Zero: 0.20, Repeat: 0.10, Random: 0.30}},
		{Name: "x264", FootprintBlocks: 4096, SharedBlocks: 2048,
			SharedFraction: 0.18, ReadFraction: 0.70, SharedWriteFraction: 0.02, MeanGap: 3, ZipfS: 1.50, Seed: 112,
			Mix: PatternMix{Narrow: 0.30, Repeat: 0.10, Zero: 0.15, Random: 0.45}},
	}
}

// ByName returns the named profile, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists all profile names in evaluation order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i := range ps {
		out[i] = ps[i].Name
	}
	return out
}
