package trace

import (
	"bytes"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("expected 12 PARSEC profiles, got %d", len(ps))
	}
	seen := map[string]bool{}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			t.Errorf("profile %s: %v", ps[i].Name, err)
		}
		if seen[ps[i].Name] {
			t.Errorf("duplicate profile %s", ps[i].Name)
		}
		seen[ps[i].Name] = true
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("canneal")
	if !ok || p.Name != "canneal" {
		t.Error("ByName(canneal) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
	if len(Names()) != 12 {
		t.Error("Names length wrong")
	}
}

func TestContentDeterministic(t *testing.T) {
	p, _ := ByName("ferret")
	for addr := uint64(0); addr < 100; addr++ {
		a := p.Content(addr)
		b := p.Content(addr)
		if !bytes.Equal(a, b) {
			t.Fatalf("content of addr %d not deterministic", addr)
		}
		if len(a) != compress.BlockSize {
			t.Fatal("wrong block size")
		}
	}
}

func TestAppendContentMatchesContent(t *testing.T) {
	p, _ := ByName("x264")
	var scratch []byte
	for addr := uint64(0); addr < 200; addr += 3 {
		scratch = p.AppendContent(scratch[:0], addr)
		if want := p.Content(addr); !bytes.Equal(scratch, want) {
			t.Fatalf("AppendContent(addr=%d) = %x, want %x", addr, scratch, want)
		}
	}
	// Appending must extend dst, not clobber it.
	prefix := []byte{1, 2, 3}
	out := p.AppendContent(prefix, 42)
	if len(out) != 3+compress.BlockSize || !bytes.Equal(out[:3], prefix) {
		t.Fatalf("AppendContent did not extend the prefix: len=%d", len(out))
	}
	if !bytes.Equal(out[3:], p.Content(42)) {
		t.Fatal("appended bytes differ from Content")
	}
}

func TestContentDiffersAcrossProfiles(t *testing.T) {
	a, _ := ByName("canneal")
	b, _ := ByName("dedup")
	same := 0
	for addr := uint64(0); addr < 50; addr++ {
		if bytes.Equal(a.Content(addr), b.Content(addr)) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("profiles produce identical content for %d/50 blocks", same)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("bodytrack")
	g1 := NewGenerator(&p, 3, 42)
	g2 := NewGenerator(&p, 3, 42)
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorCoresDiffer(t *testing.T) {
	p, _ := ByName("bodytrack")
	g1 := NewGenerator(&p, 0, 42)
	g2 := NewGenerator(&p, 1, 42)
	same := 0
	for i := 0; i < 100; i++ {
		if g1.Next().Addr == g2.Next().Addr {
			same++
		}
	}
	if same > 50 {
		t.Error("different cores produce near-identical private streams")
	}
}

func TestGeneratorAddressRegions(t *testing.T) {
	p, _ := ByName("canneal") // 25% shared
	g := NewGenerator(&p, 2, 7)
	shared, private := 0, 0
	for i := 0; i < 5000; i++ {
		a := g.Next()
		if IsShared(a.Addr) {
			shared++
		} else {
			private++
			base := PrivateBase(2)
			if a.Addr < base || a.Addr >= base+uint64(p.FootprintBlocks) {
				t.Fatalf("private access %#x outside region", a.Addr)
			}
		}
	}
	frac := float64(shared) / 5000
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("shared fraction = %.2f, want ≈0.25", frac)
	}
}

func TestGeneratorReadWriteMix(t *testing.T) {
	p, _ := ByName("vips") // 65% reads
	g := NewGenerator(&p, 0, 9)
	writes := 0
	for i := 0; i < 5000; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / 5000
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("write fraction = %.2f, want ≈0.35", frac)
	}
}

func TestGeneratorGapMean(t *testing.T) {
	p, _ := ByName("swaptions") // MeanGap 16
	g := NewGenerator(&p, 0, 5)
	sum := 0
	const N = 10000
	for i := 0; i < N; i++ {
		sum += g.Next().Gap
	}
	mean := float64(sum) / N
	if mean < 10 || mean > 22 {
		t.Errorf("mean gap = %.1f, want ≈16", mean)
	}
}

func TestGeneratorLocality(t *testing.T) {
	// Zipf reuse: the top-32 hottest blocks should absorb a large share
	// of accesses.
	p, _ := ByName("blackscholes")
	g := NewGenerator(&p, 0, 3)
	counts := map[uint64]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		counts[g.Next().Addr]++
	}
	// Find total of top 32.
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	// partial selection
	sum32 := 0
	for k := 0; k < 32; k++ {
		best := -1
		for i, c := range top {
			if best < 0 || c > top[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		sum32 += top[best]
		top[best] = -1
	}
	if frac := float64(sum32) / N; frac < 0.2 {
		t.Errorf("top-32 blocks absorb only %.2f of accesses; locality too weak", frac)
	}
}

// Compressibility shape: pointer/integer-heavy profiles must compress
// better under delta than media-like ones, and the overall mean should be
// in Table 1's neighbourhood (≈1.3–2.5× for delta/BDI).
func TestProfileCompressibilityShape(t *testing.T) {
	ratio := func(name string) float64 {
		p, _ := ByName(name)
		alg := compress.NewBDI()
		raw, comp := 0, 0
		for addr := uint64(0); addr < 400; addr++ {
			c := alg.Compress(p.Content(PrivateBase(0) + addr))
			raw += compress.BlockSize
			comp += c.SizeBytes()
		}
		return float64(raw) / float64(comp)
	}
	rf, rx := ratio("freqmine"), ratio("x264")
	if rf <= rx {
		t.Errorf("freqmine ratio %.2f should exceed x264 ratio %.2f", rf, rx)
	}
	if rf < 1.3 || rf > 6 {
		t.Errorf("freqmine BDI ratio %.2f outside plausible band", rf)
	}
	if rx < 1.0 || rx > 3 {
		t.Errorf("x264 BDI ratio %.2f outside plausible band", rx)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("vips")
	cases := []func(*Profile){
		func(p *Profile) { p.FootprintBlocks = 1 },
		func(p *Profile) { p.SharedBlocks = 0 },
		func(p *Profile) { p.SharedFraction = 1.5 },
		func(p *Profile) { p.ReadFraction = -0.1 },
		func(p *Profile) { p.ZipfS = 1.0 },
		func(p *Profile) { p.MeanGap = -1 },
	}
	for i, mut := range cases {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewGeneratorLatchesInvalidProfile(t *testing.T) {
	p, _ := ByName("vips")
	p.ZipfS = 0.5
	g := NewGenerator(&p, 0, 1)
	if g.Err() == nil {
		t.Fatal("invalid profile should latch an error")
	}
	// A latched generator stays inert instead of crashing mid-run.
	for i := 0; i < 3; i++ {
		if a := g.Next(); a != (Access{}) {
			t.Fatalf("Next on a latched generator = %+v, want zero", a)
		}
	}
	if good, _ := ByName("vips"); NewGenerator(&good, 0, 1).Err() != nil {
		t.Error("valid profile latched an error")
	}
}
