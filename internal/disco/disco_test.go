package disco

import (
	"encoding/binary"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
)

func TestDefaultConfigValidates(t *testing.T) {
	cfg := DefaultConfig(compress.NewDelta())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if !cfg.NonBlocking || !cfg.SeparateFlit || !cfg.LowPriorityRule || !cfg.ResponseOnly {
		t.Error("default config should enable all paper mechanisms")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	var c Config
	if err := c.Validate(); err == nil {
		t.Error("nil algorithm should fail")
	}
	c = DefaultConfig(compress.NewDelta())
	c.Beta = -1
	if err := c.Validate(); err == nil {
		t.Error("negative coefficient should fail")
	}
}

func TestConfidenceEq1(t *testing.T) {
	cfg := Config{Gamma: 0.5, CCth: 1}
	cand := Candidate{RemoteOccupancy: 3, LocalOccupancy: 4}
	if got := cfg.Confidence(cand); got != 5 {
		t.Errorf("Eq.1 confidence = %g, want 5", got)
	}
	if !cfg.Confident(cand) {
		t.Error("5 > CCth=1 should be confident")
	}
	if cfg.Confident(Candidate{RemoteOccupancy: 1}) {
		t.Error("1 > 1 is false; should not be confident")
	}
}

func TestConfidenceEq2HopPenalty(t *testing.T) {
	cfg := Config{Alpha: 0.5, Beta: 1, CDth: 0}
	near := Candidate{RemoteOccupancy: 2, LocalOccupancy: 2, HopsRemaining: 1, Decompress: true}
	far := Candidate{RemoteOccupancy: 2, LocalOccupancy: 2, HopsRemaining: 6, Decompress: true}
	if !cfg.Confident(near) {
		t.Error("near-destination candidate should pass (2+1-1=2>0)")
	}
	if cfg.Confident(far) {
		t.Error("far candidate should be rejected (2+1-6=-3)")
	}
}

func TestSelectCandidatePicksLargestMargin(t *testing.T) {
	cfg := Config{Gamma: 1, Alpha: 1, Beta: 1, CCth: 2, CDth: 0}
	cands := []Candidate{
		{RemoteOccupancy: 1}, // conf 1, below CCth
		{RemoteOccupancy: 5}, // margin 3
		{RemoteOccupancy: 4, HopsRemaining: 1, Decompress: true}, // margin 3
		{RemoteOccupancy: 9}, // margin 7, winner
	}
	if got := cfg.SelectCandidate(cands); got != 3 {
		t.Errorf("SelectCandidate = %d, want 3", got)
	}
	if got := cfg.SelectCandidate([]Candidate{{RemoteOccupancy: 1}}); got != -1 {
		t.Errorf("no confident candidate should return -1, got %d", got)
	}
	if got := cfg.SelectCandidate(nil); got != -1 {
		t.Error("empty candidate list should return -1")
	}
}

// narrowBlock returns a delta-compressible block and its flits.
func narrowBlock() ([]byte, []uint64) {
	b := make([]byte, compress.BlockSize)
	base := uint64(0x4400_0000_0000)
	flits := make([]uint64, 8)
	for i := 0; i < 8; i++ {
		v := base + uint64(i*5)
		flits[i] = v
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b, flits
}

func TestEngineCompressWholePacket(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	block, flits := narrowBlock()
	j := e.StartCompress(7, flits, 8, 100)
	if j == nil {
		t.Fatal("StartCompress returned nil on idle engine")
	}
	j.SetBlock(block)
	if !e.Busy() {
		t.Fatal("engine should be busy")
	}
	// Delta comp latency is 1: not done at cycle 100, done at 101.
	if done := e.Tick(100); done != nil {
		t.Fatal("finished before latency elapsed")
	}
	done := e.Tick(101)
	if done == nil || done.State != JobDone {
		t.Fatalf("job not done at latency boundary: %+v", done)
	}
	if e.Busy() {
		t.Error("engine should be idle after completion")
	}
	res := done.Result()
	if res.Stored || res.SizeBytes() >= compress.BlockSize {
		t.Error("compressible block should have shrunk")
	}
	if e.Compressions != 1 {
		t.Errorf("Compressions = %d, want 1", e.Compressions)
	}
}

func TestEngineBusyRejectsSecondJob(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	_, flits := narrowBlock()
	if e.StartCompress(1, flits, 8, 0) == nil {
		t.Fatal("first job rejected")
	}
	if e.StartCompress(2, flits, 8, 0) != nil {
		t.Error("busy engine must reject a second job")
	}
	if e.StartDecompress(3, compress.Compressed{}, 0) != nil {
		t.Error("busy engine must reject decompress too")
	}
}

func TestEngineSeparateCompressionFragments(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	block, flits := narrowBlock()
	j := e.StartCompress(9, flits[:3], 8, 10)
	j.SetBlock(block)
	// Latency elapsed but fragments missing: no completion.
	if done := e.Tick(12); done != nil {
		t.Fatal("completed without all fragments")
	}
	if j.State != JobCommitted {
		t.Error("job should commit once past the latency window")
	}
	e.Absorb(flits[3:6])
	if done := e.Tick(13); done != nil {
		t.Fatal("still missing fragments")
	}
	e.Absorb(flits[6:])
	done := e.Tick(14)
	if done == nil || done.State != JobDone {
		t.Fatal("job should finish after final fragment")
	}
	if done.Result().SizeBytes() != 17 {
		t.Errorf("merged Δ1 size = %dB, want 17", done.Result().SizeBytes())
	}
}

func TestEngineStrictIncrementalAbortsOnWildFlit(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	_, flits := narrowBlock()
	j := e.StartCompress(4, flits[:4], 8, 0)
	j.SetBlock(make([]byte, compress.BlockSize))
	e.Absorb([]uint64{1 << 40, 0, 0, 0}) // does not fit Δ1 against either base
	done := e.Tick(5)
	if done == nil || done.State != JobAborted {
		t.Fatal("wild flit should abort a strict incremental job")
	}
	if e.Failures != 1 {
		t.Errorf("Failures = %d, want 1", e.Failures)
	}
	if e.Busy() {
		t.Error("engine should be free after abort")
	}
}

func TestEngineGenericStreamingCompress(t *testing.T) {
	// FPC engine: generic streaming mode assembles bytes and compresses
	// at the end.
	e := NewEngine(compress.NewFPC())
	b := make([]byte, compress.BlockSize) // zero block, very compressible
	flits := make([]uint64, 8)
	j := e.StartCompress(5, flits[:2], 8, 0)
	_ = j
	e.Absorb(flits[2:])
	var done *Job
	for c := uint64(1); c < 10 && done == nil; c++ {
		done = e.Tick(c)
	}
	if done == nil || done.State != JobDone {
		t.Fatal("streaming job should finish")
	}
	out, err := compress.NewFPC().Decompress(done.Result())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := range out {
		if out[i] != b[i] {
			t.Fatal("streamed compression corrupted the block")
		}
	}
}

func TestEngineGenericStreamingAbortsOnIncompressible(t *testing.T) {
	e := NewEngine(compress.NewFPC())
	flits := make([]uint64, 8)
	for i := range flits {
		flits[i] = 0x9E3779B97F4A7C15 * uint64(i+1) // pseudorandom
	}
	e.StartCompress(6, flits, 8, 0)
	var done *Job
	for c := uint64(1); c < 10 && done == nil; c++ {
		done = e.Tick(c)
	}
	if done == nil || done.State != JobAborted {
		t.Fatal("incompressible stream should abort")
	}
}

func TestEngineDecompress(t *testing.T) {
	alg := compress.NewDelta()
	e := NewEngine(alg)
	block, _ := narrowBlock()
	c := alg.Compress(block)
	e.StartDecompress(11, c, 0)
	// Decomp latency 3: done at cycle 3.
	if done := e.Tick(2); done != nil {
		t.Fatal("early completion")
	}
	done := e.Tick(3)
	if done == nil || done.State != JobDone {
		t.Fatal("decompress should finish at latency")
	}
	got := done.Block()
	for i := range got {
		if got[i] != block[i] {
			t.Fatal("decompressed content mismatch")
		}
	}
	if e.Decompressions != 1 {
		t.Error("Decompressions counter wrong")
	}
}

func TestEngineNonBlockingRelease(t *testing.T) {
	e := NewEngine(compress.NewSC2()) // 6-cycle comp: wide pending window
	flits := make([]uint64, 8)
	e.StartCompress(21, flits, 8, 0)
	if !e.CanRelease(21) {
		t.Fatal("pending job should be releasable")
	}
	if e.CanRelease(99) {
		t.Error("wrong packet id should not be releasable")
	}
	e.Release(21)
	if e.Busy() {
		t.Error("release should free the engine")
	}
	if e.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", e.Aborts)
	}
}

func TestEngineCommittedJobNotReleasable(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	block, flits := narrowBlock()
	j := e.StartCompress(31, flits[:4], 8, 0)
	j.SetBlock(block)
	e.Tick(1) // latency met, fragments missing -> committed
	if e.CanRelease(31) {
		t.Error("committed job must not be releasable")
	}
	defer func() {
		if recover() == nil {
			t.Error("Release on committed job should panic")
		}
	}()
	e.Release(31)
}

func TestEngineDropIfCurrent(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	_, flits := narrowBlock()
	e.StartCompress(41, flits, 8, 0)
	e.DropIfCurrent(42) // wrong id: no-op
	if !e.Busy() {
		t.Fatal("wrong-id drop should not free engine")
	}
	e.DropIfCurrent(41)
	if e.Busy() {
		t.Error("drop should free engine")
	}
}

func TestJobKindString(t *testing.T) {
	if JobCompress.String() != "compress" || JobDecompress.String() != "decompress" {
		t.Error("JobKind.String wrong")
	}
}

func TestAdaptiveThresholds(t *testing.T) {
	cfg := DefaultConfig(compress.NewDelta())
	// Static when Adaptive off.
	cc, cd := cfg.Thresholds(0.9)
	if cc != cfg.CCth || cd != cfg.CDth {
		t.Error("non-adaptive config should return static thresholds")
	}
	cfg.Adaptive = true
	cfg.AdaptiveGain = 1
	hiCC, hiCD := cfg.Thresholds(1.0) // congested: thresholds drop
	loCC, loCD := cfg.Thresholds(0.0) // idle: thresholds rise
	if !(hiCC < cfg.CCth && cfg.CCth < loCC) {
		t.Errorf("CCth not monotone in congestion: %.1f / %.1f / %.1f", hiCC, cfg.CCth, loCC)
	}
	if !(hiCD < cfg.CDth && cfg.CDth < loCD) {
		t.Errorf("CDth not monotone in congestion: %.1f / %.1f / %.1f", hiCD, cfg.CDth, loCD)
	}
	// Out-of-range congestion is clamped.
	cl, _ := cfg.Thresholds(7)
	if cl != hiCC {
		t.Error("congestion should clamp to [0,1]")
	}
	cfg.AdaptiveGain = 0
	cc, _ = cfg.Thresholds(1)
	if cc != cfg.CCth {
		t.Error("zero gain should disable adaptation")
	}
}

func TestSelectCandidateAt(t *testing.T) {
	cfg := Config{Gamma: 1, Alpha: 1, Beta: 1}
	cands := []Candidate{{RemoteOccupancy: 3}}
	if cfg.SelectCandidateAt(cands, 5, 5) != -1 {
		t.Error("high explicit threshold should reject")
	}
	if cfg.SelectCandidateAt(cands, 1, 1) != 0 {
		t.Error("low explicit threshold should accept")
	}
}

func TestJobResultPanicsWhenUnfinished(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	_, flits := narrowBlock()
	j := e.StartCompress(55, flits[:2], 8, 0)
	defer func() {
		if recover() == nil {
			t.Error("Result on unfinished job should panic")
		}
	}()
	j.Result()
}

func TestStreamedBlockPanicsWithoutContent(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	_, flits := narrowBlock()
	e.StartCompress(56, flits, 8, 0)
	// Strict incremental job without SetBlock: completion must panic
	// loudly (router bug) rather than emit garbage.
	defer func() {
		if recover() == nil {
			t.Error("completion without SetBlock should panic")
		}
	}()
	e.Tick(5)
}

func TestEngineAbsorbWithoutJobPanics(t *testing.T) {
	e := NewEngine(compress.NewDelta())
	defer func() {
		if recover() == nil {
			t.Error("Absorb without job should panic")
		}
	}()
	e.Absorb([]uint64{1})
}
