// Package disco implements the paper's contribution: the DISCO arbitrator
// (packet filter + confidence counter, Section 3.2 step 2, Eq. 1 and 2),
// the per-router de/compression engine with shadow-packet semantics
// (step 3), and the incremental "separate compression" machinery needed
// under wormhole flow control (Section 3.3A).
//
// The package is transport-agnostic: it never imports the NoC simulator.
// The router (internal/noc) feeds it credit-derived pressure observations
// and drives the engine clock; this mirrors the hardware split between the
// DISCO arbitrator and the router's RC/VA/SA units in Fig. 2/3.
package disco

import (
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
)

// Config collects the DISCO policy parameters. The empirical coefficients
// and thresholds correspond to γ, α, β, CCth and CDth of Eq. 1/2; the
// booleans gate the mechanisms Sections 3.2–3.3 introduce so each can be
// ablated independently.
type Config struct {
	// Algorithm is the block compressor used by every router engine.
	Algorithm compress.Algorithm

	// Gamma weights local pressure for compression candidates (Eq. 1).
	Gamma float64
	// Alpha weights local pressure for decompression candidates (Eq. 2).
	Alpha float64
	// Beta penalizes remaining hop distance for decompression candidates
	// (Eq. 2), discouraging early decompression.
	Beta float64
	// CCth is the compression confidence threshold of Eq. 1.
	CCth float64
	// CDth is the decompression confidence threshold of Eq. 2.
	CDth float64

	// NonBlocking enables shadow-packet release: a packet whose port frees
	// up mid-job is sent immediately and the engine job is invalidated
	// (Section 3.2 step 3).
	NonBlocking bool
	// SeparateFlit enables incremental compression of packet fragments
	// under wormhole flow control (Section 3.3A). Without it a packet can
	// only be compressed when it fits entirely in one input VC.
	SeparateFlit bool
	// LowPriorityRule gives compressible-but-uncompressed packets lower
	// switch-allocation priority (Section 3.3B).
	LowPriorityRule bool
	// ResponseOnly restricts compression to data/response packets
	// (Section 3.3C); request/coherence packets are never touched.
	ResponseOnly bool
	// CompressCoreBound also compresses packets whose destination wants
	// them uncompressed (pure traffic optimization; off by default, and
	// off in the paper's configuration).
	CompressCoreBound bool

	// Adaptive enables congestion-aware threshold scaling. The paper
	// observes that the best CCth/CDth depend on the NoC congestion
	// condition but fixes them "for simplicity", leaving the on-line
	// version as future work (end of Section 3.2); this implements it:
	// each router tracks a congestion EWMA and shifts both thresholds
	// down under pressure (aggressive overlap) and up when idle (avoid
	// mis-predictions).
	Adaptive bool
	// AdaptiveGain scales the threshold shift per unit of congestion
	// imbalance. 0 disables even when Adaptive is set.
	AdaptiveGain float64
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation (Table 2): non-blocking separate-flit compression with the
// scheduling rule and response-only selection. Thresholds were calibrated
// on the synthetic PARSEC mix (see experiments/calibrate_test.go).
func DefaultConfig(alg compress.Algorithm) Config {
	return Config{
		Algorithm:       alg,
		Gamma:           0.5,
		Alpha:           0.5,
		Beta:            1.0,
		CCth:            1.0,
		CDth:            0.0,
		NonBlocking:     true,
		SeparateFlit:    true,
		LowPriorityRule: true,
		ResponseOnly:    true,
	}
}

// Validate reports configuration errors early.
func (c *Config) Validate() error {
	if c.Algorithm == nil {
		return fmt.Errorf("disco: Config.Algorithm must be set")
	}
	if c.Gamma < 0 || c.Alpha < 0 || c.Beta < 0 {
		return fmt.Errorf("disco: coefficients must be non-negative")
	}
	return nil
}

// Candidate is one idling packet reported by the router after VA/SA
// arbitration (a "loser" in the paper's terms), together with the
// credit-derived pressure observations the confidence counter consumes.
type Candidate struct {
	// RemoteOccupancy is the occupied-slot count of the downstream input
	// buffers at the packet's RC output port (derived from credit_in).
	RemoteOccupancy int
	// LocalOccupancy counts buffered flits in this router's other input
	// VCs that contend for the same output port (derived from credit_out
	// bookkeeping in the local VA).
	LocalOccupancy int
	// HopsRemaining is the packet's remaining hop distance to its
	// destination (RC_Hop in Eq. 2). Only used for decompression.
	HopsRemaining int
	// Decompress distinguishes the two candidate types of Section 3.2.
	Decompress bool
}

// Confidence evaluates Eq. 1 (compression) or Eq. 2 (decompression) for
// the candidate.
func (c *Config) Confidence(cand Candidate) float64 {
	if cand.Decompress {
		return float64(cand.RemoteOccupancy) +
			c.Alpha*float64(cand.LocalOccupancy) -
			c.Beta*float64(cand.HopsRemaining)
	}
	return float64(cand.RemoteOccupancy) + c.Gamma*float64(cand.LocalOccupancy)
}

// Confident reports whether the candidate's confidence clears its
// threshold (CCth or CDth).
func (c *Config) Confident(cand Candidate) bool {
	if cand.Decompress {
		return c.Confidence(cand) > c.CDth
	}
	return c.Confidence(cand) > c.CCth
}

// Thresholds returns the effective (CCth, CDth) pair for a router whose
// congestion EWMA is `congestion` ∈ [0,1] (buffered flits over capacity).
// With Adaptive off this is just the static pair.
func (c *Config) Thresholds(congestion float64) (ccth, cdth float64) {
	if !c.Adaptive || c.AdaptiveGain == 0 {
		return c.CCth, c.CDth
	}
	if congestion < 0 {
		congestion = 0
	} else if congestion > 1 {
		congestion = 1
	}
	adj := c.AdaptiveGain * (0.5 - congestion) * 8
	return c.CCth + adj, c.CDth + adj
}

// SelectCandidate picks the candidate with the highest confidence margin
// above its static threshold, or -1 when none clears it. The router calls
// this with all VA/SA losers of the cycle (the "packet filter" of Fig. 3).
func (c *Config) SelectCandidate(cands []Candidate) int {
	return c.SelectCandidateAt(cands, c.CCth, c.CDth)
}

// SelectCandidateAt is SelectCandidate with explicit (possibly adaptive)
// thresholds.
func (c *Config) SelectCandidateAt(cands []Candidate, ccth, cdth float64) int {
	best, bestMargin := -1, 0.0
	for i, cand := range cands {
		th := ccth
		if cand.Decompress {
			th = cdth
		}
		margin := c.Confidence(cand) - th
		if margin <= 0 {
			continue
		}
		if best == -1 || margin > bestMargin {
			best, bestMargin = i, margin
		}
	}
	return best
}
