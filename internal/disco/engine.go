package disco

import (
	"encoding/binary"
	"fmt"

	"github.com/disco-sim/disco/internal/compress"
)

// JobKind distinguishes the engine's two operations.
type JobKind int

// Engine job kinds.
const (
	JobCompress JobKind = iota
	JobDecompress
)

// String implements fmt.Stringer.
func (k JobKind) String() string {
	if k == JobCompress {
		return "compress"
	}
	return "decompress"
}

// JobState is the lifecycle of an engine job.
type JobState int

// Engine job states.
const (
	// JobPending: the engine is within the initial latency window; the
	// shadow packet is still released on a mis-predicted grant
	// (non-blocking compression).
	JobPending JobState = iota
	// JobCommitted: the result is being produced / fragments are being
	// absorbed; the packet must wait for completion.
	JobCommitted
	// JobDone: the transformed packet is ready to replace its shadow.
	JobDone
	// JobAborted: the job was invalidated (non-blocking release or
	// incompressible content).
	JobAborted
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobCommitted:
		return "committed"
	case JobDone:
		return "done"
	case JobAborted:
		return "aborted"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one de/compression operation on one packet. PacketID ties it back
// to the router's packet; the engine never dereferences router state.
type Job struct {
	Kind     JobKind
	PacketID uint64
	State    JobState

	// Faulted marks a job hit by an injected transient engine fault: it
	// stays busy (and pending, so the shadow remains releasable) for the
	// engine's stuck window, then aborts. The router distinguishes these
	// aborts from content failures — a faulted packet is NOT latched
	// incompressible, and they feed the per-router circuit breaker.
	Faulted bool

	startCycle uint64
	latency    int

	// Compression bookkeeping.
	inc       *compress.IncrementalDelta // strict separate-flit mode (delta)
	streamBuf []byte                     // generic streaming mode
	absorbed  int                        // payload flits absorbed
	total     int                        // payload flits expected
	result    compress.Compressed
	haveRes   bool

	// Decompression bookkeeping.
	src   compress.Compressed
	block []byte
}

// Engine is the single per-router de/compression unit of Fig. 2(a). It
// processes one job at a time; the DISCO arbitrator refuses new candidates
// while it is busy.
type Engine struct {
	alg compress.Algorithm
	cur *Job

	// retired is the most recently finished (or dropped) job, recycled at
	// the next Start*: the Job struct, its IncrementalDelta and its stream
	// buffer are reused, so a steady-state engine starts jobs without
	// allocating. Callers may read a finished job's fields only until the
	// next Start* on the same engine — the cycle engine consumes results
	// within the stage that collected them, so this is never observable.
	retired *Job

	// strictIncremental selects IncrementalDelta semantics (Δ1 commitment,
	// possible abort) for separate compression; only meaningful when the
	// algorithm is the paper's delta scheme.
	strictIncremental bool

	// faultFn, when non-nil, is consulted at job start: true marks the
	// job Faulted (see Job.Faulted). stuckCycles is the busy window a
	// faulted job holds the engine before aborting. The oracle is a plain
	// closure so the engine stays decoupled from the fault package.
	faultFn     func() bool
	stuckCycles int

	// Stats.
	Compressions   uint64
	Decompressions uint64
	Aborts         uint64
	Failures       uint64 // incompressible content discovered mid-job
	Faults         uint64 // injected transient faults (stuck-busy aborts)
	BusyCycles     uint64
}

// NewEngine builds an engine around the configured algorithm. Delta
// engines use the paper's strict Δ1 incremental mode for separate
// compression; other algorithms stream words through their regular
// pipeline.
func NewEngine(alg compress.Algorithm) *Engine {
	_, isDelta := alg.(*compress.Delta)
	return &Engine{alg: alg, strictIncremental: isDelta}
}

// Algorithm returns the engine's compressor.
func (e *Engine) Algorithm() compress.Algorithm { return e.alg }

// SetFaultOracle arms fault injection: f is consulted once per started
// job, and a faulted job stays stuck-busy for stuck cycles before
// aborting. Pass nil to disarm.
func (e *Engine) SetFaultOracle(f func() bool, stuck int) {
	e.faultFn = f
	if stuck < 1 {
		stuck = 1
	}
	e.stuckCycles = stuck
}

// Busy reports whether a job is in flight.
func (e *Engine) Busy() bool { return e.cur != nil }

// Current returns the in-flight job, or nil.
func (e *Engine) Current() *Job { return e.cur }

// retire hands a job that just left the engine to the recycler.
func (e *Engine) retire(j *Job) {
	e.cur = nil
	e.retired = j
}

// takeJob returns a zeroed Job, recycling the retired one (and its
// incremental scratch) when available.
func (e *Engine) takeJob() *Job {
	j := e.retired
	if j == nil {
		return &Job{}
	}
	e.retired = nil
	inc, buf := j.inc, j.streamBuf
	*j = Job{}
	if inc != nil {
		inc.Reset()
		j.inc = inc
	}
	if buf != nil {
		j.streamBuf = buf[:0]
	}
	return j
}

// StartCompress begins compressing a packet whose payload will arrive as
// totalFlits 8-byte flits. The engine is seeded with the flits already
// resident (possibly all of them). Returns the job, or nil if the engine
// is busy.
func (e *Engine) StartCompress(pktID uint64, resident []uint64, totalFlits int, now uint64) *Job {
	if e.cur != nil {
		return nil
	}
	j := e.takeJob()
	j.Kind = JobCompress
	j.PacketID = pktID
	j.startCycle = now
	j.latency = e.alg.CompLatency()
	j.total = totalFlits
	if e.strictIncremental && j.inc == nil {
		j.inc = compress.NewIncrementalDelta()
	}
	if e.faultFn != nil && e.faultFn() {
		j.Faulted = true
	}
	e.cur = j
	e.absorb(resident)
	return j
}

// StartDecompress begins decompressing a fully resident packet.
func (e *Engine) StartDecompress(pktID uint64, src compress.Compressed, now uint64) *Job {
	if e.cur != nil {
		return nil
	}
	j := e.takeJob()
	j.Kind = JobDecompress
	j.PacketID = pktID
	j.startCycle = now
	j.latency = e.alg.DecompLatency()
	j.src = src
	if e.faultFn != nil && e.faultFn() {
		j.Faulted = true
	}
	e.cur = j
	return j
}

// Absorb feeds newly arrived payload flits of the in-flight compression
// job (separate compression, Section 3.3A).
func (e *Engine) Absorb(flits []uint64) {
	if e.cur == nil || e.cur.Kind != JobCompress {
		panic("disco: Absorb without a compression job")
	}
	e.absorb(flits)
}

// absorb feeds flits into whichever incremental backend the job uses.
func (e *Engine) absorb(flits []uint64) {
	j := e.cur
	if j.State == JobAborted || j.Faulted {
		// A faulted job will abort after its stuck window regardless of
		// content; don't let the content path abort it first (that would
		// mask the fault and skip the stuck-busy cost).
		return
	}
	j.absorbed += len(flits)
	if j.absorbed > j.total {
		panic("disco: absorbed more flits than the packet holds")
	}
	if j.inc != nil {
		if !j.inc.Absorb(flits) {
			j.State = JobAborted
			e.Failures++
			return
		}
		return
	}
	for _, f := range flits {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], f)
		j.streamBuf = append(j.streamBuf, b[:]...)
	}
}

// Tick advances the engine one cycle and returns a finished job exactly
// once (state JobDone or JobAborted), or nil. now is the current cycle.
func (e *Engine) Tick(now uint64) *Job {
	j := e.cur
	if j == nil {
		return nil
	}
	e.BusyCycles++
	if j.Faulted {
		// Injected transient fault: the engine is stuck busy for the
		// configured window, the job stays pending (shadow releasable the
		// whole time), then it aborts.
		if now >= j.startCycle+uint64(e.stuckCycles) {
			j.State = JobAborted
			e.Faults++
			e.retire(j)
			return j
		}
		return nil
	}
	if j.State == JobAborted {
		e.retire(j)
		return j
	}
	latencyMet := now >= j.startCycle+uint64(j.latency)
	if !latencyMet {
		return nil
	}
	// Past the initial latency window the result is committed: a
	// mis-predicted grant can no longer release the shadow.
	if j.State == JobPending {
		j.State = JobCommitted
	}
	switch j.Kind {
	case JobCompress:
		if j.absorbed < j.total {
			return nil // waiting for upstream fragments
		}
		if !j.haveRes {
			if j.inc != nil {
				if !j.inc.Done() {
					j.State = JobAborted
					e.Failures++
					e.retire(j)
					return j
				}
				// Round-trippable result: re-encode with the whole-block
				// compressor but charge the merged incremental size.
				res := e.alg.Compress(j.streamedBlock())
				res.SizeBits = j.inc.MergedSizeBits()
				j.result = res
			} else {
				res := e.alg.Compress(j.streamedBlock())
				if res.Stored {
					j.State = JobAborted
					e.Failures++
					e.retire(j)
					return j
				}
				j.result = res
			}
			j.haveRes = true
		}
		j.State = JobDone
		e.Compressions++
		e.retire(j)
		return j
	case JobDecompress:
		block, err := e.alg.Decompress(j.src)
		if err != nil {
			j.State = JobAborted
			e.Failures++
			e.retire(j)
			return j
		}
		j.block = block
		j.State = JobDone
		e.Decompressions++
		e.retire(j)
		return j
	}
	return nil
}

// streamedBlock reconstructs the absorbed payload for the whole-block
// fallback encoder. For strict incremental jobs the flits were consumed by
// IncrementalDelta, so the router re-supplies the block via SetBlock before
// completion; see SetBlock.
func (j *Job) streamedBlock() []byte {
	if len(j.block) == compress.BlockSize {
		return j.block
	}
	if len(j.streamBuf) != compress.BlockSize {
		panic("disco: compression job completed without a full block")
	}
	return j.streamBuf
}

// SetBlock supplies the packet's uncompressed content for jobs whose
// incremental backend does not retain bytes (strict delta mode). The
// router owns the functional payload, so this is a cheap reference pass.
func (j *Job) SetBlock(block []byte) { j.block = block }

// Result returns the compressed encoding of a finished compression job.
func (j *Job) Result() compress.Compressed {
	if !j.haveRes {
		panic("disco: Result on unfinished job")
	}
	return j.result
}

// Block returns the decompressed content of a finished decompression job.
func (j *Job) Block() []byte { return j.block }

// CanRelease reports whether a mis-predicted grant may release the shadow
// packet (non-blocking compression): only while the job is still pending.
func (e *Engine) CanRelease(pktID uint64) bool {
	return e.cur != nil && e.cur.PacketID == pktID && e.cur.State == JobPending
}

// Release aborts the in-flight job for pktID (shadow released to SA). The
// caller must have checked CanRelease; Release on a committed job panics.
//
// A Faulted job is the exception: the packet's shadow is released as
// usual (the packet escapes — that is the graceful-degradation path),
// but the fault wedged the hardware, not the packet, so the engine stays
// stuck-busy for the remainder of its fault window. Tick still reports
// the faulted job once the window elapses, so the router's fault
// accounting and circuit breaker see every injected fault even when the
// victim packet left early.
func (e *Engine) Release(pktID uint64) {
	if !e.CanRelease(pktID) {
		panic("disco: Release on non-releasable job")
	}
	if e.cur.Faulted {
		return
	}
	e.retire(e.cur)
	e.Aborts++
}

// DropIfCurrent aborts whatever job is running for pktID regardless of
// state; used when the packet is torn down (e.g. simulation drain).
func (e *Engine) DropIfCurrent(pktID uint64) {
	if e.cur != nil && e.cur.PacketID == pktID {
		e.retire(e.cur)
		e.Aborts++
	}
}
