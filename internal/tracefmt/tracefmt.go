// Package tracefmt defines the simulator's compact binary trace format
// and its reader. Text traces (noc.WriterTracer) are convenient for
// eyeballing short runs but unbounded for long ones; the binary format
// stores the same event stream — plus the per-packet latency breakdown
// on ejection — in length-prefixed varint records that cmd/discotrace
// analyzes offline.
//
// Layout:
//
//	header:  magic "DTRC" | uvarint version | uvarint nodes
//	record:  uvarint payloadLen | payload
//	payload: kind byte | uvarint cycle | varint router |
//	         flags byte (bit0: packet present) | packet fields
//	packet:  uvarint id | uvarint src | uvarint dst | class byte |
//	         pflags byte | uvarint flits | uvarint hops |
//	         uvarint conversions | uvarint queueing |
//	         uvarint engineCycles | uvarint engineStall
//
// Records are length-prefixed so a reader can skip payload bytes it
// does not understand: fields may be appended in future versions
// without breaking old readers, and readers treat a truncated packet
// tail as zero values (forward and backward compatible).
//
// The writer lives in internal/noc (BinaryTracer), which imports this
// package for the encoding; this package imports nothing from the
// simulator, so analysis tools stay decoupled from simulation code.
package tracefmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic is the 4-byte file signature.
const Magic = "DTRC"

// Version is the current format version.
const Version = 1

// maxRecordLen bounds one record payload; a larger length prefix means
// a corrupt or misaligned file.
const maxRecordLen = 1 << 16

// Kind is a compact event-kind code. Codes are stable wire values; the
// string forms match the noc tracer event kinds.
type Kind uint8

// Event kind codes (wire values — append only).
const (
	KindInvalid Kind = iota
	KindInject
	KindEject
	KindRoute
	KindVAGrant
	KindSAGrant
	KindEngineStart
	KindEngineCommit
	KindEngineDone
	KindEngineRelease
	KindEngineFail
	KindEngineFault
	KindBreakerTrip
	KindBreakerArm
	KindPayloadFlip
	KindFaultRecover
	KindCreditDrop
	KindStall
	numKinds
)

// kindNames mirrors the noc tracer's string kinds.
var kindNames = [numKinds]string{
	KindInvalid:       "invalid",
	KindInject:        "inject",
	KindEject:         "eject",
	KindRoute:         "route",
	KindVAGrant:       "va-grant",
	KindSAGrant:       "sa-grant",
	KindEngineStart:   "engine-start",
	KindEngineCommit:  "engine-commit",
	KindEngineDone:    "engine-done",
	KindEngineRelease: "engine-release",
	KindEngineFail:    "engine-fail",
	KindEngineFault:   "engine-fault",
	KindBreakerTrip:   "breaker-trip",
	KindBreakerArm:    "breaker-rearm",
	KindPayloadFlip:   "payload-flip",
	KindFaultRecover:  "fault-recover",
	KindCreditDrop:    "credit-drop",
	KindStall:         "stall",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString maps a tracer event-kind string to its wire code
// (KindInvalid for unknown strings).
func KindFromString(s string) Kind {
	for k := KindInject; k < numKinds; k++ {
		if kindNames[k] == s {
			return k
		}
	}
	return KindInvalid
}

// Packet flag bits.
const (
	PFCompressed   = 1 << 0
	PFCompressible = 1 << 1
	PFFailed       = 1 << 2
	PFWantComp     = 1 << 3
)

// PacketInfo is the per-packet slice of a record. The latency fields
// (Queueing, EngineCycles, EngineStall) are cumulative counters and are
// final only on KindEject records.
type PacketInfo struct {
	ID    uint64
	Src   int
	Dst   int
	Class uint8
	Flags uint8 // PF* bits
	Flits int

	Hops         int
	Conversions  int
	Queueing     uint64
	EngineCycles uint64
	EngineStall  uint64
}

// Compressed reports the PFCompressed bit.
func (p *PacketInfo) Compressed() bool { return p.Flags&PFCompressed != 0 }

// Compressible reports the PFCompressible bit.
func (p *PacketInfo) Compressible() bool { return p.Flags&PFCompressible != 0 }

// Record is one trace event.
type Record struct {
	Cycle     uint64
	Router    int // -1 for NI-level events
	Kind      Kind
	HasPacket bool
	Pkt       PacketInfo
}

// AppendHeader appends the file header to buf.
func AppendHeader(buf []byte, nodes int) []byte {
	buf = append(buf, Magic...)
	buf = binary.AppendUvarint(buf, Version)
	buf = binary.AppendUvarint(buf, uint64(nodes))
	return buf
}

// AppendRecord appends one length-prefixed record to buf.
func AppendRecord(buf []byte, rec *Record) []byte {
	var p []byte
	p = append(p, byte(rec.Kind))
	p = binary.AppendUvarint(p, rec.Cycle)
	p = binary.AppendVarint(p, int64(rec.Router))
	var flags byte
	if rec.HasPacket {
		flags |= 1
	}
	p = append(p, flags)
	if rec.HasPacket {
		pk := &rec.Pkt
		p = binary.AppendUvarint(p, pk.ID)
		p = binary.AppendUvarint(p, uint64(pk.Src))
		p = binary.AppendUvarint(p, uint64(pk.Dst))
		p = append(p, pk.Class, pk.Flags)
		p = binary.AppendUvarint(p, uint64(pk.Flits))
		p = binary.AppendUvarint(p, uint64(pk.Hops))
		p = binary.AppendUvarint(p, uint64(pk.Conversions))
		p = binary.AppendUvarint(p, pk.Queueing)
		p = binary.AppendUvarint(p, pk.EngineCycles)
		p = binary.AppendUvarint(p, pk.EngineStall)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// Reader decodes a binary trace stream.
type Reader struct {
	br      *bufio.Reader
	version uint64
	nodes   int
	scratch []byte
}

// NewReader wraps r and consumes the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tracefmt: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("tracefmt: bad magic %q (not a binary trace?)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tracefmt: reading version: %w", err)
	}
	if version == 0 || version > Version {
		return nil, fmt.Errorf("tracefmt: unsupported version %d (have %d)", version, Version)
	}
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tracefmt: reading node count: %w", err)
	}
	return &Reader{br: br, version: version, nodes: int(nodes)}, nil
}

// Version returns the stream's format version.
func (r *Reader) Version() int { return int(r.version) }

// Nodes returns the network node count recorded in the header (0 when
// the writer did not know it).
func (r *Reader) Nodes() int { return r.nodes }

// Next decodes the next record. It returns io.EOF cleanly at the end of
// the stream and io.ErrUnexpectedEOF on truncation mid-record.
func (r *Reader) Next() (Record, error) {
	var rec Record
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("tracefmt: reading record length: %w", err)
	}
	if n == 0 || n > maxRecordLen {
		return rec, fmt.Errorf("tracefmt: implausible record length %d", n)
	}
	if cap(r.scratch) < int(n) {
		r.scratch = make([]byte, n)
	}
	p := r.scratch[:n]
	if _, err := io.ReadFull(r.br, p); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return rec, fmt.Errorf("tracefmt: reading record body: %w", err)
	}
	d := decoder{buf: p}
	rec.Kind = Kind(d.byte())
	rec.Cycle = d.uvarint()
	rec.Router = int(d.varint())
	flags := d.byte()
	if flags&1 != 0 {
		rec.HasPacket = true
		pk := &rec.Pkt
		pk.ID = d.uvarint()
		pk.Src = int(d.uvarint())
		pk.Dst = int(d.uvarint())
		pk.Class = d.byte()
		pk.Flags = d.byte()
		pk.Flits = int(d.uvarint())
		pk.Hops = int(d.uvarint())
		pk.Conversions = int(d.uvarint())
		pk.Queueing = d.uvarint()
		pk.EngineCycles = d.uvarint()
		pk.EngineStall = d.uvarint()
	}
	if d.bad {
		return rec, fmt.Errorf("tracefmt: corrupt record at cycle %d", rec.Cycle)
	}
	return rec, nil
}

// decoder walks one record payload. Running off the end of the payload
// yields zero values with bad unset ONLY when the payload ended exactly
// on a field boundary (shorter records from older writers); a varint
// cut mid-field sets bad.
type decoder struct {
	buf []byte
	bad bool
}

func (d *decoder) byte() byte {
	if len(d.buf) == 0 {
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if len(d.buf) == 0 {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.bad = true
		d.buf = nil
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if len(d.buf) == 0 {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.bad = true
		d.buf = nil
		return 0
	}
	d.buf = d.buf[n:]
	return v
}
