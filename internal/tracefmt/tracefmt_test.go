package tracefmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Cycle: 0, Router: -1, Kind: KindInject, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1,
				Flags: PFCompressible | PFWantComp, Flits: 9}},
		{Cycle: 7, Router: 3, Kind: KindRoute, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1, Flits: 9}},
		{Cycle: 12, Router: 3, Kind: KindEngineStart, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1, Flits: 9}},
		{Cycle: 40, Router: 15, Kind: KindEject, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1,
				Flags: PFCompressed | PFCompressible, Flits: 4,
				Hops: 6, Conversions: 1, Queueing: 11, EngineCycles: 9, EngineStall: 2}},
		{Cycle: 41, Router: 2, Kind: KindVAGrant}, // packetless record
	}
	buf := AppendHeader(nil, 16)
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 16 || r.Version() != Version {
		t.Errorf("header nodes=%d version=%d", r.Nodes(), r.Version())
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Errorf("record %d round-trip:\n got %+v\nwant %+v", i, got, recs[i])
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at stream end, got %v", err)
	}
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := KindInject; k < numKinds; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("no-such-event") != KindInvalid {
		t.Error("unknown kind string should map to KindInvalid")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic should be rejected")
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, Magic...)
	buf = append(buf, 0x7f, 0) // version 127, nodes 0
	if _, err := NewReader(bytes.NewReader(buf)); err == nil {
		t.Error("future version should be rejected")
	}
}

func TestTruncatedRecordReported(t *testing.T) {
	rec := Record{Cycle: 5, Router: 1, Kind: KindEject, HasPacket: true,
		Pkt: PacketInfo{ID: 9, Flits: 4}}
	buf := AppendHeader(nil, 4)
	buf = AppendRecord(buf, &rec)
	r, err := NewReader(bytes.NewReader(buf[:len(buf)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record should error")
	}
}

// TestTruncatedHeader pins NewReader's behavior on every header cut
// point: inside the magic, after it, and inside the varint fields.
func TestTruncatedHeader(t *testing.T) {
	full := AppendHeader(nil, 300) // nodes=300 needs a 2-byte uvarint
	for cut := 0; cut < len(full); cut++ {
		if _, err := NewReader(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("header truncated to %d of %d bytes accepted", cut, len(full))
		}
	}
	if _, err := NewReader(bytes.NewReader(full)); err != nil {
		t.Errorf("intact header rejected: %v", err)
	}
}

// TestImplausibleRecordLength pins the corruption guard on the length
// prefix: zero and anything beyond maxRecordLen are structural errors,
// not allocations.
func TestImplausibleRecordLength(t *testing.T) {
	for _, c := range []struct {
		name   string
		length uint64
	}{
		{"zero length", 0},
		{"oversized length", maxRecordLen + 1},
	} {
		buf := AppendHeader(nil, 4)
		var tmp [10]byte
		n := binary.PutUvarint(tmp[:], c.length)
		buf = append(buf, tmp[:n]...)
		r, err := NewReader(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Next()
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: want implausible-length error, got %v", c.name, err)
		}
	}
}

// TestCorruptMidVarint cuts a varint mid-field but keeps the record
// length honest: the payload ends inside the cycle field's continuation
// bytes, which must surface as a corrupt-record error rather than a
// silent zero.
func TestCorruptMidVarint(t *testing.T) {
	payload := []byte{byte(KindRoute), 0x80} // cycle varint: continuation bit, then nothing
	buf := AppendHeader(nil, 4)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("want corrupt-record error for mid-varint cut, got %v", err)
	}
}

// TestUnknownEventKind pins forward compatibility: a kind code this
// reader does not know decodes without error (analyzers skip what they
// do not recognize) and stringifies as kind(N).
func TestUnknownEventKind(t *testing.T) {
	payload := []byte{200, 5, 4, 0} // kind 200, cycle 5, router 2, no packet
	buf := AppendHeader(nil, 4)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("unknown kind should decode: %v", err)
	}
	if rec.Kind != Kind(200) || rec.Cycle != 5 || rec.Router != 2 {
		t.Errorf("decoded %+v, want kind 200 at cycle 5 router 2", rec)
	}
	if got := rec.Kind.String(); got != "kind(200)" {
		t.Errorf("Kind.String() = %q, want kind(200)", got)
	}
}

// TestShortRecordZeroFills pins backward compatibility: a payload that
// ends exactly on a field boundary (an older writer that knew fewer
// fields) decodes cleanly with the missing fields zeroed, unlike the
// mid-varint cut above.
func TestShortRecordZeroFills(t *testing.T) {
	payload := []byte{byte(KindStall), 9, 6} // cycle 9, router 3; flags byte absent
	buf := AppendHeader(nil, 4)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("field-boundary short record should decode: %v", err)
	}
	want := Record{Kind: KindStall, Cycle: 9, Router: 3}
	if rec != want {
		t.Errorf("decoded %+v, want %+v", rec, want)
	}
}

// TestTruncatedBodyIsUnexpectedEOF pins the error identity contract
// readers dispatch on: truncation inside a record body is
// io.ErrUnexpectedEOF (never a clean io.EOF), at every cut point.
func TestTruncatedBodyIsUnexpectedEOF(t *testing.T) {
	rec := Record{Cycle: 5, Router: 1, Kind: KindEject, HasPacket: true,
		Pkt: PacketInfo{ID: 9, Flits: 4, Queueing: 300, EngineStall: 7}}
	header := AppendHeader(nil, 4)
	full := AppendRecord(header, &rec)
	for cut := len(header) + 2; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d of %d: want io.ErrUnexpectedEOF, got %v", cut, len(full), err)
		}
	}
}

// A reader must tolerate records with extra trailing bytes (fields
// appended by a future writer at the same version).
func TestExtraTailBytesSkipped(t *testing.T) {
	rec := Record{Cycle: 5, Router: 2, Kind: KindRoute}
	var payload []byte
	payload = append(payload, byte(rec.Kind))
	payload = append(payload, 5)    // cycle uvarint
	payload = append(payload, 4)    // router zigzag varint (2)
	payload = append(payload, 0)    // flags: no packet
	payload = append(payload, 0xaa) // unknown future field
	buf := AppendHeader(nil, 4)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Errorf("got %+v, want %+v", got, rec)
	}
}
