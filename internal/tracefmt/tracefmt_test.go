package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Cycle: 0, Router: -1, Kind: KindInject, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1,
				Flags: PFCompressible | PFWantComp, Flits: 9}},
		{Cycle: 7, Router: 3, Kind: KindRoute, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1, Flits: 9}},
		{Cycle: 12, Router: 3, Kind: KindEngineStart, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1, Flits: 9}},
		{Cycle: 40, Router: 15, Kind: KindEject, HasPacket: true,
			Pkt: PacketInfo{ID: 1, Src: 0, Dst: 15, Class: 1,
				Flags: PFCompressed | PFCompressible, Flits: 4,
				Hops: 6, Conversions: 1, Queueing: 11, EngineCycles: 9, EngineStall: 2}},
		{Cycle: 41, Router: 2, Kind: KindVAGrant}, // packetless record
	}
	buf := AppendHeader(nil, 16)
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 16 || r.Version() != Version {
		t.Errorf("header nodes=%d version=%d", r.Nodes(), r.Version())
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Errorf("record %d round-trip:\n got %+v\nwant %+v", i, got, recs[i])
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at stream end, got %v", err)
	}
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := KindInject; k < numKinds; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("no-such-event") != KindInvalid {
		t.Error("unknown kind string should map to KindInvalid")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic should be rejected")
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, Magic...)
	buf = append(buf, 0x7f, 0) // version 127, nodes 0
	if _, err := NewReader(bytes.NewReader(buf)); err == nil {
		t.Error("future version should be rejected")
	}
}

func TestTruncatedRecordReported(t *testing.T) {
	rec := Record{Cycle: 5, Router: 1, Kind: KindEject, HasPacket: true,
		Pkt: PacketInfo{ID: 9, Flits: 4}}
	buf := AppendHeader(nil, 4)
	buf = AppendRecord(buf, &rec)
	r, err := NewReader(bytes.NewReader(buf[:len(buf)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record should error")
	}
}

// A reader must tolerate records with extra trailing bytes (fields
// appended by a future writer at the same version).
func TestExtraTailBytesSkipped(t *testing.T) {
	rec := Record{Cycle: 5, Router: 2, Kind: KindRoute}
	var payload []byte
	payload = append(payload, byte(rec.Kind))
	payload = append(payload, 5)    // cycle uvarint
	payload = append(payload, 4)    // router zigzag varint (2)
	payload = append(payload, 0)    // flags: no packet
	payload = append(payload, 0xaa) // unknown future field
	buf := AppendHeader(nil, 4)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	r, err := NewReader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Errorf("got %+v, want %+v", got, rec)
	}
}
