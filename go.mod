module github.com/disco-sim/disco

go 1.22
