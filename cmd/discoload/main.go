// Command discoload is the load generator and correctness harness for
// discod (ROADMAP item 1's "millions of users" axis): it opens N
// concurrent compressed streams against a live server, pushes M blocks
// of deterministic, value-local payload through each, and verifies the
// echoed bytes match what was sent — bit-exactly, per stream, for
// every negotiated codec.
//
// The stream jobs are sharded over a bounded worker pool following the
// internal/simrun conventions: a fixed set of goroutines, an atomic
// cursor handing out stream indices in chunks, and the main goroutine
// participating as one of the workers.
//
// Exit codes:
//
//	0 — every stream round-tripped byte-exactly
//	1 — corruption or stream errors (counted in the report)
//	2 — configuration error
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/obs"
	"github.com/disco-sim/disco/internal/stream"
)

const (
	ExitOK     = 0
	ExitFailed = 1
	ExitConfig = 2
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// report is the machine-readable run summary (-report), uploaded as a
// CI artifact by the stream job.
type report struct {
	Addr        string   `json:"addr"`
	Streams     int      `json:"streams"`
	BlocksEach  int      `json:"blocks_each"`
	Codecs      []string `json:"codecs"`
	Workers     int      `json:"workers"`
	Seed        uint64   `json:"seed"`
	OK          int64    `json:"ok"`
	Corrupt     int64    `json:"corrupt"`
	Errors      int64    `json:"errors"`
	BytesSent   int64    `json:"bytes_sent"`
	ElapsedSecs float64  `json:"elapsed_secs"`
	MBPerSec    float64  `json:"mb_per_sec"`
	BlocksPerS  float64  `json:"blocks_per_sec"`
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("discoload", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7060", "discod stream address")
		streams    = fs.Int("streams", 100, "concurrent streams to open")
		blocks     = fs.Int("blocks", 50, "64-byte blocks to push per stream")
		codecsFlag = fs.String("codec", "all", "codec to negotiate, or \"all\" to round-robin the registry")
		workers    = fs.Int("workers", 0, "worker goroutines (0 = min(streams, 4*GOMAXPROCS))")
		seed       = fs.Uint64("seed", 1, "payload PRNG seed (per-stream streams derive from it)")
		reportPath = fs.String("report", "", "write a JSON throughput/correctness report here")
		timeout    = fs.Duration("timeout", 2*time.Minute, "per-stream deadline")
	)
	if err := fs.Parse(args); err != nil {
		return ExitConfig
	}
	rep := obs.NewReporter(os.Stderr, "discoload")
	if *streams < 1 || *blocks < 1 {
		rep.Infof("config: -streams and -blocks must be positive")
		return ExitConfig
	}
	var codecs []string
	if *codecsFlag == "all" {
		codecs = compress.Names()
	} else {
		for _, name := range strings.Split(*codecsFlag, ",") {
			if _, err := compress.New(name); err != nil {
				rep.Infof("config: %v", err)
				return ExitConfig
			}
			codecs = append(codecs, name)
		}
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = 4 * runtime.GOMAXPROCS(0)
	}
	if nWorkers > *streams {
		nWorkers = *streams
	}

	var okCount, corrupt, errCount, bytesSent atomic.Int64
	start := time.Now()

	// simrun worker conventions: atomic cursor, chunked claims, the
	// caller participates as the last worker. The claim size shrinks as
	// the worker count approaches the stream count so that -workers N
	// -streams N really runs N streams concurrently (the soak gate).
	chunk := int64((*streams + nWorkers - 1) / nWorkers)
	if chunk > 8 {
		chunk = 8
	}
	var cursor atomic.Int64
	work := func() {
		for {
			end := cursor.Add(chunk)
			begin := end - chunk
			if begin >= int64(*streams) {
				return
			}
			if end > int64(*streams) {
				end = int64(*streams)
			}
			for i := begin; i < end; i++ {
				codec := codecs[int(i)%len(codecs)]
				sent, err := runStream(*addr, codec, int(i), *blocks, *seed, *timeout)
				bytesSent.Add(sent)
				switch {
				case err == nil:
					okCount.Add(1)
				case strings.Contains(err.Error(), "corrupt echo"):
					corrupt.Add(1)
					rep.Infof("stream %d (%s): %v", i, codec, err)
				default:
					errCount.Add(1)
					rep.Infof("stream %d (%s): %v", i, codec, err)
				}
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers-1; w++ {
		wg.Add(1)
		go func() { defer wg.Done(); work() }()
	}
	work()
	wg.Wait()

	elapsed := time.Since(start)
	r := report{
		Addr: *addr, Streams: *streams, BlocksEach: *blocks,
		Codecs: codecs, Workers: nWorkers, Seed: *seed,
		OK: okCount.Load(), Corrupt: corrupt.Load(), Errors: errCount.Load(),
		BytesSent:   bytesSent.Load(),
		ElapsedSecs: elapsed.Seconds(),
	}
	if r.ElapsedSecs > 0 {
		r.MBPerSec = float64(r.BytesSent) / (1 << 20) / r.ElapsedSecs
		r.BlocksPerS = float64(r.OK) * float64(*blocks) / r.ElapsedSecs
	}
	rep.Infof("%d/%d streams ok (%d corrupt, %d errors), %.1f MiB sent in %.2fs (%.1f MiB/s)",
		r.OK, *streams, r.Corrupt, r.Errors, float64(r.BytesSent)/(1<<20), r.ElapsedSecs, r.MBPerSec)
	if *reportPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			rep.Infof("report: %v", err)
			return ExitFailed
		}
	}
	if r.Corrupt > 0 || r.Errors > 0 || r.OK != int64(*streams) {
		return ExitFailed
	}
	return ExitOK
}

// runStream opens one compressed stream, writes blocks of deterministic
// payload while a reader goroutine verifies the echo byte-for-byte,
// half-closes, and drains. Returns bytes sent and the first error.
func runStream(addr, codec string, idx, blocks int, seed uint64, timeout time.Duration) (int64, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, fmt.Errorf("dial: %w", err)
	}
	defer func() { _ = nc.Close() }()
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	c, err := stream.Client(nc, codec)
	if err != nil {
		return 0, fmt.Errorf("handshake: %w", err)
	}
	// Client clears the handshake deadline; re-arm the whole-stream one.
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}

	// The reader goroutine verifies the echo concurrently with the
	// writes — the echo loop is synchronous on the server, so a client
	// that wrote everything before reading anything would deadlock on
	// full TCP windows (by design: that IS the backpressure).
	var got []byte
	readErr := make(chan error, 1)
	total := blocks * compress.BlockSize
	go func() {
		buf := make([]byte, 0, total)
		tmp := make([]byte, 4096)
		for len(buf) < total {
			n, err := c.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				got = buf
				readErr <- fmt.Errorf("read after %d bytes: %w", len(buf), err)
				return
			}
		}
		// Expect EOF next (server mirrors our half-close).
		if _, err := c.Read(tmp); err == nil {
			got = buf
			readErr <- fmt.Errorf("peer sent more than the %d expected bytes", total)
			return
		}
		got = buf
		readErr <- nil
	}()

	payload := streamPayload(seed, uint64(idx), blocks)
	var sent int64
	// Mixed write granularities exercise the partial-block path: the
	// frame layer re-blocks at 64 bytes regardless.
	for off := 0; off < len(payload); {
		n := 64
		switch (off / 64) % 3 {
		case 1:
			n = 160
		case 2:
			n = 24
		}
		if off+n > len(payload) {
			n = len(payload) - off
		}
		m, err := c.Write(payload[off : off+n])
		sent += int64(m)
		if err != nil {
			<-readErr // don't leak the reader
			return sent, fmt.Errorf("write: %w", err)
		}
		off += n
	}
	if err := c.CloseWrite(); err != nil {
		<-readErr
		return sent, fmt.Errorf("close-write: %w", err)
	}
	if err := <-readErr; err != nil {
		return sent, err
	}
	// The frame layer preserves byte counts exactly (padding never
	// reaches the application), so the echo must equal the payload.
	if !bytes.Equal(got, payload) {
		return sent, fmt.Errorf("corrupt echo: got %d bytes, want %d (first diff at %d)",
			len(got), len(payload), firstDiff(got, payload))
	}
	return sent, nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// streamPayload builds stream idx's deterministic payload: value-local
// 64-bit counters (the delta-residual sweet spot), repeated words,
// zero runs and pseudorandom spans, mixed per block so every codec
// exercises both its compressible and its stored paths.
func streamPayload(seed, idx uint64, blocks int) []byte {
	out := make([]byte, blocks*compress.BlockSize)
	s := seed ^ (idx+1)*0x9E3779B97F4A7C15
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	counter := next()
	for b := 0; b < blocks; b++ {
		blk := out[b*compress.BlockSize : (b+1)*compress.BlockSize]
		switch b % 4 {
		case 0: // drifting counters
			for i := 0; i < len(blk); i += 8 {
				binary.LittleEndian.PutUint64(blk[i:], counter+uint64(i))
			}
			counter += uint64(b%7) + 1
		case 1: // repeated word
			w := uint32(next())
			for i := 0; i < len(blk); i += 4 {
				binary.LittleEndian.PutUint32(blk[i:], w)
			}
		case 2: // zero run (leave zeroed)
		case 3: // pseudorandom
			for i := 0; i < len(blk); i += 8 {
				binary.LittleEndian.PutUint64(blk[i:], next())
			}
		}
	}
	return out
}
