package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldBench = `
goos: linux
BenchmarkCompressDelta     	    2000	      1625 ns/op	  39.38 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressDelta     	    2000	      1980 ns/op	  32.32 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressFPC-8     	    2000	      6476 ns/op	      72 B/op	       7 allocs/op
BenchmarkNoCStepIdle       	    2000	      2736 ns/op
BenchmarkTraceGeneration   	    2000	       845.0 ns/op
BenchmarkTraceGeneration   	    2000	       691.0 ns/op
PASS
`

const newBench = `
BenchmarkCompressDelta-8   	    2000	      1100 ns/op	      80 B/op	       1 allocs/op
BenchmarkCompressFPC       	    2000	      7500 ns/op	      80 B/op	       1 allocs/op
BenchmarkNoCStepIdle-8     	    2000	      2800 ns/op
BenchmarkBlockContent      	    2000	     11618 ns/op
PASS
`

func parse(t *testing.T, s string) map[string]benchResult {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, oldBench)
	if len(m) != 4 {
		t.Fatalf("parsed %d benches, want 4: %v", len(m), m)
	}
	// Repeated lines (from -count>1) keep the lowest ns/op, whichever
	// order they appear in.
	d := m["BenchmarkCompressDelta"]
	if d.NsPerOp != 1625 || d.BytesPerOp != 144 || d.AllocsPerOp != 3 {
		t.Errorf("CompressDelta = %+v", d)
	}
	// The -8 GOMAXPROCS suffix must be stripped so runs from different
	// machines compare.
	if _, ok := m["BenchmarkCompressFPC"]; !ok {
		t.Error("suffixed name BenchmarkCompressFPC-8 not normalized")
	}
	if n := m["BenchmarkNoCStepIdle"]; n.AllocsPerOp != -1 || n.BytesPerOp != -1 {
		t.Errorf("absent memory fields should be -1, got %+v", n)
	}
	if tg := m["BenchmarkTraceGeneration"]; tg.NsPerOp != 691.0 {
		t.Errorf("min-of-repeats / fractional ns/op parsed as %v", tg.NsPerOp)
	}
}

func TestCompareGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	gate := regexp.MustCompile(`Compress|NoCStep`)
	report, failed := compare(old, cur, gate, 10)
	// FPC regressed 6476 -> 7500 (+15.8%): must fail the 10% gate.
	if len(failed) != 1 || failed[0] != "BenchmarkCompressFPC" {
		t.Errorf("failed = %v, want [BenchmarkCompressFPC]", failed)
	}
	// Delta improved and NoCStepIdle regressed only 2.3%: both pass.
	if !strings.Contains(report, "REGRESSION") {
		t.Error("report should mark the regression")
	}
	if !strings.Contains(report, "(no baseline for BenchmarkBlockContent)") {
		t.Error("new-only benchmarks should be noted")
	}
	// TraceGeneration is absent from the new file: silently skipped from
	// the table but present in neither failure list.
	if strings.Contains(report, "TraceGeneration") {
		t.Error("benchmarks missing from the new run should not be compared")
	}
}

func TestCompareNoGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	_, failed := compare(old, cur, nil, 10)
	if len(failed) != 0 {
		t.Errorf("no gate should never fail, got %v", failed)
	}
}

func TestDeltaPct(t *testing.T) {
	if d := deltaPct(100, 90); d != -10 {
		t.Errorf("deltaPct(100,90) = %v", d)
	}
	if d := deltaPct(0, 50); d != 0 {
		t.Errorf("deltaPct(0,50) = %v, want 0 (guard)", d)
	}
}
